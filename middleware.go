package zygos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zygos/internal/core"
	"zygos/internal/stats"
)

// ErrCompleted is returned by ResponseWriter and Completion methods when
// the request's reply has already been produced.
var ErrCompleted = core.ErrCompleted

// lockedHistogram is a mutex-guarded stats.Histogram: recordings arrive
// from every worker and, for detached replies, from arbitrary
// application goroutines.
type lockedHistogram struct {
	mu sync.Mutex
	h  *stats.Histogram
}

func (l *lockedHistogram) record(d time.Duration) {
	l.mu.Lock()
	if l.h == nil {
		l.h = stats.NewHistogram()
	}
	l.h.Record(d.Nanoseconds())
	l.mu.Unlock()
}

func (l *lockedHistogram) snapshot() LatencySnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.h == nil || l.h.Count() == 0 {
		return LatencySnapshot{}
	}
	return LatencySnapshot{
		Count: l.h.Count(),
		Mean:  time.Duration(l.h.Mean()),
		P50:   time.Duration(l.h.Percentile(0.50)),
		P99:   time.Duration(l.h.Percentile(0.99)),
		Max:   time.Duration(l.h.Max()),
	}
}

// String renders the snapshot in microseconds, the paper's unit of
// record.
func (s LatencySnapshot) String() string {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return fmt.Sprintf("n=%d mean=%.2fus p50=%.2fus p99=%.2fus max=%.2fus",
		s.Count, us(s.Mean), us(s.P50), us(s.P99), us(s.Max))
}

// routeRec is one wire method's share of the traffic: a dispatch
// counter and an end-to-end latency histogram. The LatencyRecording
// middleware creates one per method on first sight.
type routeRec struct {
	count atomic.Uint64
	lat   lockedHistogram
}

// routeRec returns the record for a wire method, creating it on first
// sight. The read-lock fast path keeps steady-state recording cheap and
// allocation-free.
func (s *Server) routeRec(method uint16) *routeRec {
	s.routeMu.RLock()
	r := s.routeRecs[method]
	s.routeMu.RUnlock()
	if r != nil {
		return r
	}
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	if r = s.routeRecs[method]; r != nil {
		return r
	}
	if s.routeRecs == nil {
		s.routeRecs = make(map[uint16]*routeRec)
	}
	r = new(routeRec)
	s.routeRecs[method] = r
	return r
}

// LatencyRecording returns middleware that records each request's queue
// delay (arrival to handler start) and end-to-end latency (arrival to
// reply completion, including time spent detached) into the server's
// histograms — overall and per wire method. Snapshots appear in
// Stats().QueueDelay, Stats().Latency, and Stats().Routes.
func (s *Server) LatencyRecording() Middleware {
	return func(next Handler) Handler {
		return func(w ResponseWriter, req *Request) {
			s.qdelay.record(req.QueueDelay)
			route := s.routeRec(req.Method)
			route.count.Add(1)
			next(&timingWriter{inner: w, s: s, route: route, start: req.ArrivedAt}, req)
		}
	}
}

// timingWriter records end-to-end latency when the reply completes,
// following the request through Detach. Shed rejections are excluded:
// they complete in near-zero time and would dilute the tail-latency
// metric exactly when overload makes it interesting (they are counted
// in Stats().Shed instead).
type timingWriter struct {
	inner ResponseWriter
	s     *Server
	route *routeRec
	start time.Time
}

func (w *timingWriter) finish(err error) error {
	if err == nil {
		d := time.Since(w.start)
		w.s.latency.record(d)
		w.route.lat.record(d)
	}
	return err
}

func (w *timingWriter) Reply(payload []byte) error { return w.finish(w.inner.Reply(payload)) }
func (w *timingWriter) Error(code uint8, msg string) error {
	if code == StatusShed {
		return w.inner.Error(code, msg)
	}
	return w.finish(w.inner.Error(code, msg))
}
func (w *timingWriter) Detach() Completion {
	return &timingCompletion{co: w.inner.Detach(), w: w}
}

type timingCompletion struct {
	co Completion
	w  *timingWriter
}

func (c *timingCompletion) Reply(payload []byte) error { return c.w.finish(c.co.Reply(payload)) }
func (c *timingCompletion) Error(code uint8, msg string) error {
	if code == StatusShed {
		return c.co.Error(code, msg)
	}
	return c.w.finish(c.co.Error(code, msg))
}

// AdmissionControl returns middleware that sheds load once the runtime's
// backlog — every request parsed off the wire whose reply has not
// completed yet, whether queued behind busy workers, executing, or
// detached — exceeds maxDepth. Instead of letting excess requests stall
// in ever-deeper queues, the server answers them immediately with
// StatusShed on the wire, which clients see as a typed *StatusError.
// Shed requests are counted in Stats().Shed.
//
// Because the signal is the runtime-wide queue depth rather than a count
// of running handlers, shedding engages for purely synchronous
// workloads (where concurrency is bounded by the core count but queues
// grow without bound) as well as for detach-heavy ones.
func (s *Server) AdmissionControl(maxDepth int) Middleware {
	return func(next Handler) Handler {
		return func(w ResponseWriter, req *Request) {
			if s.rt.Backlog() > int64(maxDepth) {
				s.shed.Add(1)
				w.Error(StatusShed, "admission control: queue depth exceeded")
				return
			}
			next(w, req)
		}
	}
}
