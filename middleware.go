package zygos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zygos/internal/core"
	"zygos/internal/proto"
	"zygos/internal/stats"
)

// ErrCompleted is returned by ResponseWriter and Completion methods when
// the request's reply has already been produced.
var ErrCompleted = core.ErrCompleted

// lockedHistogram is a mutex-guarded stats.Histogram: recordings arrive
// from every worker and, for detached replies, from arbitrary
// application goroutines.
type lockedHistogram struct {
	mu sync.Mutex
	h  *stats.Histogram
}

func (l *lockedHistogram) record(d time.Duration) {
	l.mu.Lock()
	if l.h == nil {
		l.h = stats.NewHistogram()
	}
	l.h.Record(d.Nanoseconds())
	l.mu.Unlock()
}

func (l *lockedHistogram) snapshot() LatencySnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.h == nil || l.h.Count() == 0 {
		return LatencySnapshot{}
	}
	return LatencySnapshot{
		Count: l.h.Count(),
		Mean:  time.Duration(l.h.Mean()),
		P50:   time.Duration(l.h.Percentile(0.50)),
		P99:   time.Duration(l.h.Percentile(0.99)),
		Max:   time.Duration(l.h.Max()),
	}
}

// String renders the snapshot in microseconds, the paper's unit of
// record.
func (s LatencySnapshot) String() string {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return fmt.Sprintf("n=%d mean=%.2fus p50=%.2fus p99=%.2fus max=%.2fus",
		s.Count, us(s.Mean), us(s.P50), us(s.P99), us(s.Max))
}

// routeRec is one wire method's share of the traffic: dispatch, shed,
// expiry, and SLO-attainment counters plus an end-to-end latency
// histogram. Created per method on first sight by whichever of the
// recording or admission middleware (or the scheduler's expiry
// callback) touches the route first.
type routeRec struct {
	count     atomic.Uint64
	shed      atomic.Uint64
	expired   atomic.Uint64
	sloMet    atomic.Uint64
	sloMissed atomic.Uint64
	lat       lockedHistogram
}

// routeRec returns the record for a wire method, creating it on first
// sight. The read-lock fast path keeps steady-state recording cheap and
// allocation-free.
func (s *Server) routeRec(method uint16) *routeRec {
	s.routeMu.RLock()
	r := s.routeRecs[method]
	s.routeMu.RUnlock()
	if r != nil {
		return r
	}
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	if r = s.routeRecs[method]; r != nil {
		return r
	}
	if s.routeRecs == nil {
		s.routeRecs = make(map[uint16]*routeRec)
	}
	r = new(routeRec)
	s.routeRecs[method] = r
	return r
}

// LatencyRecording returns middleware that records each request's queue
// delay (arrival to handler start) and end-to-end latency (arrival to
// reply completion, including time spent detached) into the server's
// histograms — overall and per wire method. Snapshots appear in
// Stats().QueueDelay, Stats().Latency, and Stats().Routes.
func (s *Server) LatencyRecording() Middleware {
	return func(next Handler) Handler {
		return func(w ResponseWriter, req *Request) {
			s.qdelay.record(req.QueueDelay)
			route := s.routeRec(req.Method)
			route.count.Add(1)
			tw := &timingWriter{inner: w, s: s, route: route, start: req.ArrivedAt}
			tw.deadline, _ = req.Deadline()
			next(tw, req)
		}
	}
}

// timingWriter records end-to-end latency when the reply completes,
// following the request through Detach. Shed and deadline-expired
// rejections are excluded: they complete in near-zero time and would
// dilute the tail-latency metric exactly when overload makes it
// interesting (they are counted in Stats().Shed / Stats().Expired
// instead). Budgeted requests additionally score the route's SLO
// attainment: did the reply land inside the wire deadline?
type timingWriter struct {
	inner    ResponseWriter
	s        *Server
	route    *routeRec
	start    time.Time
	deadline time.Time
}

func (w *timingWriter) finish(err error) error {
	if err == nil {
		now := time.Now()
		d := now.Sub(w.start)
		w.s.latency.record(d)
		w.route.lat.record(d)
		if !w.deadline.IsZero() {
			if now.Before(w.deadline) {
				w.route.sloMet.Add(1)
			} else {
				w.route.sloMissed.Add(1)
			}
		}
	}
	return err
}

func (w *timingWriter) Reply(payload []byte) error { return w.finish(w.inner.Reply(payload)) }
func (w *timingWriter) Error(code uint8, msg string) error {
	if code == StatusShed || code == StatusDeadlineExceeded {
		return w.inner.Error(code, msg)
	}
	return w.finish(w.inner.Error(code, msg))
}
func (w *timingWriter) Detach() Completion {
	return &timingCompletion{co: w.inner.Detach(), w: w}
}

type timingCompletion struct {
	co Completion
	w  *timingWriter
}

func (c *timingCompletion) Reply(payload []byte) error { return c.w.finish(c.co.Reply(payload)) }
func (c *timingCompletion) Error(code uint8, msg string) error {
	if code == StatusShed || code == StatusDeadlineExceeded {
		return c.co.Error(code, msg)
	}
	return c.w.finish(c.co.Error(code, msg))
}

// AdmissionControl returns middleware that sheds load once the runtime's
// backlog — every request parsed off the wire whose reply has not
// completed yet, whether queued behind busy workers, executing, or
// detached — exceeds maxDepth. Instead of letting excess requests stall
// in ever-deeper queues, the server answers them immediately with
// StatusShed on the wire, which clients see as a typed *StatusError.
// Shed requests are counted in Stats().Shed.
//
// Because the signal is the runtime-wide queue depth rather than a count
// of running handlers, shedding engages for purely synchronous
// workloads (where concurrency is bounded by the core count but queues
// grow without bound) as well as for detach-heavy ones.
func (s *Server) AdmissionControl(maxDepth int) Middleware {
	return func(next Handler) Handler {
		return func(w ResponseWriter, req *Request) {
			if backlog := s.rt.Backlog(); backlog > int64(maxDepth) {
				s.shedReq(w, req, backlog, int64(maxDepth), 0)
				return
			}
			next(w, req)
		}
	}
}

// RouteAwareAdmission returns middleware that sheds load by declared
// shed priority instead of uniformly: route p's threshold is
// maxDepth>>p, so as the backlog climbs the cheap-to-sacrifice routes
// (ShedPriority 1, 2, …) are rejected first while the routes the SLO
// protects keep admitting until the full limit. With TPC-C's mix that
// means the 4%-of-traffic StockLevel scan sheds long before the 45%
// NewOrder path feels anything. Shed replies carry a retry-after hint
// ("retry-after-us=<n>; …") sized to the excess backlog's estimated
// drain time; clients recover it with RetryAfter and the RetryPolicy
// honors it. Hints come from mux's copy-on-write SLO table, so
// declaring SLOs while serving is safe.
func (s *Server) RouteAwareAdmission(mux *Mux, maxDepth int) Middleware {
	return func(next Handler) Handler {
		return func(w ResponseWriter, req *Request) {
			slo := mux.SLOHints()[req.Method]
			limit := int64(maxDepth) >> slo.ShedPriority
			if limit < 1 {
				limit = 1
			}
			if backlog := s.rt.Backlog(); backlog > limit {
				s.shedReq(w, req, backlog, limit, slo.Cost)
				return
			}
			next(w, req)
		}
	}
}

// shedReq rejects one request with StatusShed, a retry-after hint in
// the payload, and the server- and route-level shed counters bumped.
func (s *Server) shedReq(w ResponseWriter, req *Request, backlog, limit int64, cost time.Duration) {
	s.shed.Add(1)
	s.routeRec(req.Method).shed.Add(1)
	hint := retryAfterHint(backlog-limit, cost, s.rt.Cores())
	w.Error(StatusShed, proto.FormatRetryAfter(hint, "admission control: queue depth exceeded"))
}

// retryAfterHint estimates when a shed caller should retry: the time
// for the excess backlog above the admission limit to drain across the
// worker pool, at the route's declared cost (nominal 100µs when
// undeclared), clamped to keep hints sane under both trickles and
// avalanches. Deliberately atomic-read cheap — it runs on the shed
// path, which IS the hot path during overload.
func retryAfterHint(excess int64, cost time.Duration, cores int) time.Duration {
	if cost <= 0 {
		cost = 100 * time.Microsecond
	}
	if cores < 1 {
		cores = 1
	}
	d := time.Duration(excess) * cost / time.Duration(cores)
	if d < 50*time.Microsecond {
		d = 50 * time.Microsecond
	}
	if d > 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	return d
}

// SLOEnforcement returns middleware that keeps slow handlers from
// blowing fast routes' budgets:
//
//   - Requests whose wire deadline has already passed when the chain
//     runs them are answered StatusDeadlineExceeded without invoking
//     the handler — a second expiry gate behind the scheduler's, which
//     catches budget lost inside outer middleware.
//   - Routes whose declared Cost exceeds their declared Budget are
//     pre-detached: the handler runs on its own goroutine while the
//     worker moves on to steal or run budgeted work, so a
//     milliseconds-long scan cannot pin a core that microsecond
//     requests are queued behind. Per-connection reply ordering is
//     preserved by the runtime's completion tokens, exactly as with an
//     explicit Detach.
//
// Detached-by-policy handlers observe the same ResponseWriter contract;
// a handler that calls Detach itself simply gets the same Completion
// back. Place SLOEnforcement after admission and recording middleware.
func (s *Server) SLOEnforcement(mux *Mux) Middleware {
	return func(next Handler) Handler {
		return func(w ResponseWriter, req *Request) {
			if rem, ok := req.RemainingBudget(); ok && rem <= 0 {
				s.routeRec(req.Method).expired.Add(1)
				w.Error(StatusDeadlineExceeded, "deadline budget exhausted in middleware")
				return
			}
			slo := mux.SLOHints()[req.Method]
			if slo.Cost > 0 && slo.Budget > 0 && slo.Cost >= slo.Budget {
				co := w.Detach()
				go next(detachedWriter{co}, req)
				return
			}
			next(w, req)
		}
	}
}

// detachedWriter presents an already-detached request's Completion as a
// ResponseWriter, so handlers auto-detached by SLOEnforcement run
// unmodified. Detach is idempotent here: the request already left its
// worker.
type detachedWriter struct{ co Completion }

func (w detachedWriter) Reply(payload []byte) error         { return w.co.Reply(payload) }
func (w detachedWriter) Error(code uint8, msg string) error { return w.co.Error(code, msg) }
func (w detachedWriter) Detach() Completion                 { return w.co }
