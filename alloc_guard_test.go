// Allocation guards: CI fails if the zero-allocation hot path regresses.
//
// testing.AllocsPerRun counts mallocs process-wide, so the worker
// goroutines' share of the round trip is included. The thresholds allow
// a small fraction of an allocation per op — a GC pass in mid-run can
// evict sync.Pools and force a handful of refills — while still failing
// loudly if a per-request allocation sneaks back in (pre-pooling, the
// echo round trip cost ~26 allocs/op).
package zygos

import (
	"testing"

	"zygos/internal/proto"
)

// allocBudget is the tolerated average allocations per operation for a
// steady-state zero-allocation path.
const allocBudget = 1.0

func TestAllocsMemnetEchoRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is load-bearing; skip under -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates and sync.Pool drops Puts under -race")
	}
	srv, err := NewServer(Config{
		Cores:   2,
		Handler: func(w ResponseWriter, req *Request) { w.Reply(req.Payload) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := srv.NewClient()
	defer c.Close()
	payload := []byte("0123456789abcdef")
	var buf []byte
	call := func() {
		r, err := c.CallInto(payload, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = r
	}
	// Warm every pool on the path: segments, parse buffers, contexts,
	// requests, frames, TX scratch, waiters.
	for i := 0; i < 512; i++ {
		call()
	}
	allocs := testing.AllocsPerRun(2000, call)
	if allocs >= allocBudget {
		t.Fatalf("memnet echo round trip allocates %.2f/op; budget %.2f (zero-allocation hot path regressed)", allocs, allocBudget)
	}
}

// The method-routed echo round trip — v3 frames both ways, Mux
// dispatch, CallMethodInto — must stay as allocation-free as the legacy
// path: routing adds a map lookup, not an allocation.
func TestAllocsRoutedEchoRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is load-bearing; skip under -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates and sync.Pool drops Puts under -race")
	}
	const method = 7
	mux := NewMux()
	mux.HandleFunc(method, func(w ResponseWriter, req *Request) { w.Reply(req.Payload) })
	srv, err := NewServer(Config{Cores: 2, Handler: mux.Handler()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := srv.NewClient()
	defer c.Close()
	payload := []byte("0123456789abcdef")
	var buf []byte
	call := func() {
		r, err := c.CallMethodInto(method, payload, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = r
	}
	for i := 0; i < 512; i++ {
		call()
	}
	allocs := testing.AllocsPerRun(2000, call)
	if allocs >= allocBudget {
		t.Fatalf("routed echo round trip allocates %.2f/op; budget %.2f (method dispatch must stay allocation-free)", allocs, allocBudget)
	}
}

// The v2 reply encode path — what Ctx.complete does per reply — must be
// allocation-free when the destination buffer is reused.
func TestAllocsReplyEncodeV2(t *testing.T) {
	payload := []byte("0123456789abcdef0123456789abcdef")
	m := proto.Message{ID: 42, Payload: payload, Status: proto.StatusOK, V2: true}
	buf := make([]byte, 0, proto.FrameSizeV2(len(payload)))
	allocs := testing.AllocsPerRun(5000, func() {
		buf = proto.AppendMessage(buf[:0], m)
	})
	if allocs != 0 {
		t.Fatalf("v2 reply encode allocates %.2f/op; want 0", allocs)
	}
}

// The v3 reply encode (method-carrying frames) holds the same bar.
func TestAllocsReplyEncodeV3(t *testing.T) {
	payload := []byte("0123456789abcdef0123456789abcdef")
	m := proto.Message{ID: 42, Method: 7, Payload: payload, Status: proto.StatusOK, V3: true}
	buf := make([]byte, 0, proto.FrameSizeV3(len(payload)))
	allocs := testing.AllocsPerRun(5000, func() {
		buf = proto.AppendMessage(buf[:0], m)
	})
	if allocs != 0 {
		t.Fatalf("v3 reply encode allocates %.2f/op; want 0", allocs)
	}
}
