package zygos

import (
	"errors"
	"time"

	"zygos/internal/cluster"
)

// Cluster tier: a ClusterCaller fronts N zygos servers behind one
// Caller, adding tail-aware balancing (P2C/JSQ on piggybacked depth),
// hedged requests past an adaptive per-route P99 deadline, and
// replica-aware keyed routing on a consistent-hash ring. See package
// internal/cluster for the mechanism documentation.
//
//	cl := zygos.NewCluster(zygos.ClusterConfig{
//		Policy: zygos.PolicyP2C,
//		Hedge:  zygos.HedgeConfig{Enabled: true},
//	})
//	cl.Add("a", clientA)
//	cl.Add("b", clientB)
//	resp, err := cl.CallMethod(method, payload) // a Caller, as before
//
// Mounted behind ProxyHandler on a front server, the cluster becomes a
// standalone proxy tier (cmd/zygos-proxy).

// ClusterCaller fans requests over a set of backend callers; it
// implements Caller, so applications swap a single-server client for a
// cluster without code changes.
type ClusterCaller = cluster.Cluster

// ClusterConfig parameterizes a ClusterCaller.
type ClusterConfig = cluster.Config

// HedgeConfig configures duplicate requests past the adaptive per-route
// deadline.
type HedgeConfig = cluster.HedgeConfig

// Balancer is the load-aware backend picker the cluster routes with.
type Balancer = cluster.Balancer

// ClusterStats snapshots the cluster's tail-management and health
// counters.
type ClusterStats = cluster.Stats

// ClusterBackendStats is one backend's slice of the cluster load and
// health view.
type ClusterBackendStats = cluster.BackendStats

// BreakerConfig parameterizes the cluster's per-backend circuit
// breaker; the zero value enables it with defaults.
type BreakerConfig = cluster.BreakerConfig

// ClusterPolicy selects the unkeyed balancing policy.
type ClusterPolicy = cluster.Policy

// Balancing policies for ClusterConfig.Policy.
const (
	// PolicyRoundRobin rotates through backends, load-blind.
	PolicyRoundRobin = cluster.RoundRobin
	// PolicyP2C sends to the less loaded of two random backends.
	PolicyP2C = cluster.P2C
	// PolicyJSQ sends to the least loaded backend overall.
	PolicyJSQ = cluster.JSQ
)

// ErrNoBackends reports a cluster with no eligible backends.
var ErrNoBackends = cluster.ErrNoBackends

// ErrClusterClosed reports calls issued against a closed cluster;
// requests still in flight at Close settle with it too.
var ErrClusterClosed = cluster.ErrClusterClosed

// NewCluster creates an empty cluster; wire members in with Add. Every
// zygos client type (Client, TCPClient, ManagedClient) is a valid
// backend; backends whose transport exposes OnDepth feed the balancer
// their live scheduling depth.
func NewCluster(cfg ClusterConfig) *ClusterCaller { return cluster.New(cfg) }

// KVKeyFunc is the ClusterConfig.KeyFunc for the kv application's
// routed methods: GET reads, SET and DELETE write.
func KVKeyFunc(method uint16, payload []byte) (key []byte, write, ok bool) {
	return cluster.KVKeyFunc(method, payload)
}

var (
	_ Caller       = (*ClusterCaller)(nil)
	_ BudgetCaller = (*ClusterCaller)(nil)
)

// ProxyHandler adapts a cluster into a server Handler, making the
// server a protocol-level proxy: each incoming request detaches from
// its worker, forwards through the cluster, and completes when the
// winning backend reply lands. Status errors from backends — and from
// the cluster's own front-tier admission gate — propagate with their
// original code, so a StatusShed refused at the proxy looks to the
// client exactly like one refused at a backend; transport-level
// failures surface as StatusInternal. One-way requests forward as
// one-way and complete immediately (nothing is transmitted for them).
//
// Requests carrying a wire deadline budget are forwarded with the
// budget *remaining* at the proxy — the hop's queueing and parse time
// is deducted, not re-granted — and a request whose budget is already
// gone is answered StatusDeadlineExceeded without touching a backend.
func ProxyHandler(cl *ClusterCaller) Handler {
	return func(w ResponseWriter, req *Request) {
		if req.OneWay {
			if req.Method != 0 {
				_ = cl.SendMethodOneWay(req.Method, req.Payload)
			} else {
				_ = cl.SendOneWay(req.Payload)
			}
			_ = w.Reply(nil)
			return
		}
		var budget time.Duration
		if rem, ok := req.RemainingBudget(); ok {
			if rem <= 0 {
				_ = w.Error(StatusDeadlineExceeded, "proxy: deadline budget exhausted")
				return
			}
			budget = rem
		}
		co := w.Detach()
		cb := func(resp []byte, err error) {
			if err == nil {
				_ = co.Reply(resp)
				return
			}
			var se *StatusError
			if errors.As(err, &se) {
				_ = co.Error(se.Code, se.Msg)
				return
			}
			_ = co.Error(StatusInternal, "proxy: "+err.Error())
		}
		var err error
		switch {
		case req.Method != 0 && budget > 0:
			err = cl.SendMethodBudgetAsync(req.Method, req.Payload, budget, cb)
		case req.Method != 0:
			err = cl.SendMethodAsync(req.Method, req.Payload, cb)
		case budget > 0:
			err = cl.SendBudgetAsync(req.Payload, budget, cb)
		default:
			err = cl.SendAsync(req.Payload, cb)
		}
		if err != nil {
			var se *StatusError
			if errors.As(err, &se) {
				_ = co.Error(se.Code, se.Msg)
				return
			}
			_ = co.Error(StatusInternal, "proxy: "+err.Error())
		}
	}
}
