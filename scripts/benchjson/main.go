// Command benchjson converts `go test -bench -benchmem` output on stdin
// into the BENCH_hotpath.json trajectory file. It updates one section
// (-label, default "current") and preserves the rest, so the committed
// baseline survives regeneration:
//
//	go test -run '^$' -bench BenchmarkHotPath -benchmem . | go run ./scripts/benchjson -out BENCH_hotpath.json
//
// The first run against a missing file also seeds the "baseline"
// section, bootstrapping the trajectory.
//
// With -gate PCT it becomes a regression gate instead: the stdin results
// are compared against the committed reference section of -out ("current",
// falling back to "baseline"), nothing is written, and the exit status is
// nonzero if any benchmark's ns/op regressed by more than PCT percent:
//
//	go test -run '^$' -bench BenchmarkHotPath -benchmem . | go run ./scripts/benchjson -out BENCH_hotpath.json -gate 25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's measurement. Extra carries custom
// b.ReportMetric units beyond the standard three — "bytes/conn",
// "goroutines", and whatever future benchmarks report — keyed by unit.
type Result struct {
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  float64            `json:"b_op"`
	AllocsPerOp float64            `json:"allocs_op"`
	Iterations  int64              `json:"n"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Section is one labelled snapshot of the benchmark suite.
type Section struct {
	Label      string            `json:"label,omitempty"`
	Date       string            `json:"date"`
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_hotpath.json", "trajectory file to update")
	label := flag.String("label", "current", "section to replace (baseline|current|smoke|...)")
	note := flag.String("note", "", "free-form note stored in the section")
	gate := flag.Float64("gate", 0, "regression gate: compare stdin ns/op against the committed reference section of -out (current, else baseline), write nothing, exit nonzero beyond this percentage")
	flag.Parse()

	benches := parse(os.Stdin)
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no Benchmark lines on stdin")
		os.Exit(1)
	}

	if *gate > 0 {
		os.Exit(runGate(*out, *gate, benches))
	}

	doc := map[string]*Section{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not a trajectory file: %v\n", *out, err)
			os.Exit(1)
		}
	}
	sec := &Section{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Note:       *note,
		Benchmarks: benches,
	}
	doc[*label] = sec
	if doc["baseline"] == nil && *label == "current" {
		// Bootstrap the baseline only from a real measurement pass, never
		// from a 1x smoke section, and mark how it came to be.
		doc["baseline"] = &Section{
			Label:      "baseline",
			Date:       sec.Date,
			Note:       strings.TrimSpace("bootstrapped from first `make bench` run. " + *note),
			Benchmarks: benches,
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s section %q\n", len(benches), *out, *label)
}

// runGate compares the measured benches against the committed reference
// section of the trajectory file — "current" (the most recent committed
// measurement), falling back to "baseline" — and returns the process
// exit code: 0 when every shared benchmark's ns/op (and every
// latency-shaped "*ns" extra metric, e.g. the fan-out p99-ns) is within
// gatePct percent of its reference, 1 otherwise. Anchoring to "current" matters:
// gating against the never-updated baseline would let a benchmark that
// has since improved severalfold regress all the way back without
// tripping. Benchmarks missing from the reference are reported but do
// not fail the gate (they gain a reference at the next `make bench`).
func runGate(out string, gatePct float64, benches map[string]Result) int {
	data, err := os.ReadFile(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: -gate needs a committed trajectory: %v\n", err)
		return 1
	}
	doc := map[string]*Section{}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s is not a trajectory file: %v\n", out, err)
		return 1
	}
	base := doc["current"]
	if base == nil || len(base.Benchmarks) == 0 {
		base = doc["baseline"]
	}
	if base == nil || len(base.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %s has no current or baseline section to gate against\n", out)
		return 1
	}
	names := make([]string, 0, len(benches))
	for name := range benches {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	check := func(name, unit string, cur, ref float64) {
		delta := (cur - ref) / ref * 100
		verdict := "ok"
		if delta > gatePct {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate: %-40s %10.0f %s vs %s %10.0f (%+6.1f%%, limit +%.0f%%) %s\n",
			name, cur, unit, base.Label, ref, delta, gatePct, verdict)
	}
	for _, name := range names {
		cur := benches[name]
		b, ok := base.Benchmarks[name]
		if !ok || b.NsPerOp == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: gate: %-40s %10.0f ns/op (no reference, skipped)\n", name, cur.NsPerOp)
			continue
		}
		check(name, "ns/op", cur.NsPerOp, b.NsPerOp)
		// Latency-shaped extra metrics gate too: the cluster fan-out
		// benchmarks report tail latency as p99-ns (and p50-ns), and a
		// tail regression must fail the gate even when the mean ns/op
		// stays flat. Units are compared only where the reference has a
		// nonzero value; non-latency extras (bytes/conn, goroutines) are
		// machine-shape metrics, not gated.
		extras := make([]string, 0, len(b.Extra))
		for unit := range b.Extra {
			if strings.HasSuffix(unit, "ns") && b.Extra[unit] > 0 {
				extras = append(extras, unit)
			}
		}
		sort.Strings(extras)
		for _, unit := range extras {
			cv, reported := cur.Extra[unit]
			if !reported || cv == 0 {
				// A benchmark that stops emitting a gated latency metric
				// must fail, not sail through with a -100% "improvement":
				// silently dropping p99-ns is how a tail gate dies.
				fmt.Fprintf(os.Stderr, "benchjson: gate: %-40s %s in reference %q but not reported by the run\n",
					name, unit, base.Label)
				failed = true
				continue
			}
			check(name+" "+unit, unit, cv, b.Extra[unit])
		}
	}
	// The reverse direction must fail too: a benchmark present in the
	// committed reference but absent from the run (renamed, or filtered
	// out by a narrowed -bench regex) would otherwise slip out of the
	// gate silently.
	missing := make([]string, 0)
	for name := range base.Benchmarks {
		if _, ok := benches[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "benchjson: gate: %-32s in reference %q but not measured (renamed or filtered out?)\n", name, base.Label)
		failed = true
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: gate failed: ns/op regression beyond %.0f%% of the committed reference, or reference benchmarks missing from the run\n", gatePct)
		return 1
	}
	return 0
}

// parse extracts Benchmark lines of the form
//
//	BenchmarkName-8   12345   987.6 ns/op   12 B/op   3 allocs/op
//
// from r. Missing -benchmem columns simply leave zeros.
func parse(r *os.File) map[string]Result {
	benches := map[string]Result{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw line so piping through benchjson still shows the run.
		fmt.Println(line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := strings.SplitN(f[0], "-", 2)[0]
		n, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: n}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				// Custom b.ReportMetric units ("bytes/conn", ...).
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[f[i+1]] = v
			}
		}
		benches[name] = res
	}
	return benches
}
