// Command benchjson converts `go test -bench -benchmem` output on stdin
// into the BENCH_hotpath.json trajectory file. It updates one section
// (-label, default "current") and preserves the rest, so the committed
// baseline survives regeneration:
//
//	go test -run '^$' -bench BenchmarkHotPath -benchmem . | go run ./scripts/benchjson -out BENCH_hotpath.json
//
// The first run against a missing file also seeds the "baseline"
// section, bootstrapping the trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  float64 `json:"b_op"`
	AllocsPerOp float64 `json:"allocs_op"`
	Iterations  int64   `json:"n"`
}

// Section is one labelled snapshot of the benchmark suite.
type Section struct {
	Label      string            `json:"label,omitempty"`
	Date       string            `json:"date"`
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_hotpath.json", "trajectory file to update")
	label := flag.String("label", "current", "section to replace (baseline|current|smoke|...)")
	note := flag.String("note", "", "free-form note stored in the section")
	flag.Parse()

	benches := parse(os.Stdin)
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no Benchmark lines on stdin")
		os.Exit(1)
	}

	doc := map[string]*Section{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not a trajectory file: %v\n", *out, err)
			os.Exit(1)
		}
	}
	sec := &Section{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Note:       *note,
		Benchmarks: benches,
	}
	doc[*label] = sec
	if doc["baseline"] == nil && *label == "current" {
		// Bootstrap the baseline only from a real measurement pass, never
		// from a 1x smoke section, and mark how it came to be.
		doc["baseline"] = &Section{
			Label:      "baseline",
			Date:       sec.Date,
			Note:       strings.TrimSpace("bootstrapped from first `make bench` run. " + *note),
			Benchmarks: benches,
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s section %q\n", len(benches), *out, *label)
}

// parse extracts Benchmark lines of the form
//
//	BenchmarkName-8   12345   987.6 ns/op   12 B/op   3 allocs/op
//
// from r. Missing -benchmem columns simply leave zeros.
func parse(r *os.File) map[string]Result {
	benches := map[string]Result{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw line so piping through benchjson still shows the run.
		fmt.Println(line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := strings.SplitN(f[0], "-", 2)[0]
		n, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: n}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		benches[name] = res
	}
	return benches
}
