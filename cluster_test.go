package zygos

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDepthFramesPiggyback proves the health-frame loop end to end: a
// v3 request to a DepthFrames server delivers a depth report to the
// client's OnDepth hook, while legacy (v2) traffic never does — a
// pre-v3 peer must never see Magic3 bytes.
func TestDepthFramesPiggyback(t *testing.T) {
	srv, err := NewServer(Config{
		Cores:       2,
		Handler:     func(w ResponseWriter, req *Request) { w.Reply(req.Payload) },
		DepthFrames: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var reports atomic.Int64
	c := srv.NewClient()
	defer c.Close()
	c.OnDepth(func(depth uint32) { reports.Add(1) })

	// Legacy traffic only: the connection has never spoken v3, so the
	// server must not append health frames.
	for i := 0; i < 3; i++ {
		if _, err := c.Call([]byte("legacy")); err != nil {
			t.Fatal(err)
		}
	}
	if got := reports.Load(); got != 0 {
		t.Fatalf("v2-only connection received %d depth reports; must receive none", got)
	}

	// One v3 frame latches the connection; replies now carry depth.
	if _, err := c.CallMethod(0, []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if got := reports.Load(); got == 0 {
		t.Fatal("no depth report after v3 traffic on a DepthFrames server")
	}
}

// TestServerDepths sanity-checks the cheap depth accessor: idle servers
// report zero, and the snapshot flattens into a uint32 for the wire.
func TestServerDepths(t *testing.T) {
	srv, err := NewServer(Config{
		Cores:   2,
		Handler: func(w ResponseWriter, req *Request) { w.Reply(nil) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if d := srv.Depths(); d.Backlog != 0 || d.Ingress != 0 || d.Ready != 0 || d.Load() != 0 {
		t.Fatalf("idle server depth snapshot %+v", d)
	}
}

// TestClusterHedgeCancel drives the first-wins contract: with one
// deliberately slow backend, every call still returns the fast
// backend's reply — requests that landed on the slow backend are
// rescued by a hedge — and the slow replies are discarded as losers
// when they eventually arrive.
func TestClusterHedgeCancel(t *testing.T) {
	const method = 7
	slowDelay := 60 * time.Millisecond

	mkBackend := func(tag string, delay time.Duration) *Server {
		mux := NewMux()
		mux.HandleFunc(method, func(w ResponseWriter, req *Request) {
			if delay == 0 {
				w.Reply([]byte(tag))
				return
			}
			co := w.Detach()
			go func() {
				time.Sleep(delay)
				co.Reply([]byte(tag))
			}()
		})
		srv, err := NewServer(Config{Cores: 2, Handler: mux.Handler(), DepthFrames: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		return srv
	}
	slow := mkBackend("slow", slowDelay)
	fast := mkBackend("fast", 0)

	// Round-robin guarantees the slow backend gets primaries; the cold
	// hedge deadline (MaxDelay) is far below the slow service time, so
	// those primaries are hedged onto the fast backend and lose.
	cl := NewCluster(ClusterConfig{
		Policy: PolicyRoundRobin,
		Hedge:  HedgeConfig{Enabled: true, MinDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	cl.Add("slow", slow.NewClient())
	cl.Add("fast", fast.NewClient())
	defer cl.Close()

	const calls = 6
	for i := 0; i < calls; i++ {
		resp, err := cl.CallMethod(method, []byte("x"))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if string(resp) != "fast" {
			t.Fatalf("call %d returned %q; hedging must rescue slow primaries", i, resp)
		}
	}

	st := cl.Stats()
	if st.Calls != calls {
		t.Fatalf("stats.Calls = %d, want %d", st.Calls, calls)
	}
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("no hedges recorded (hedges=%d wins=%d) with a %v-slow backend", st.Hedges, st.HedgeWins, slowDelay)
	}

	// The slow backend's replies arrive long after the hedges won; each
	// must be discarded as a loser, not delivered.
	deadline := time.Now().Add(10 * time.Second)
	for cl.Stats().Losers < st.HedgeWins {
		if time.Now().After(deadline) {
			t.Fatalf("losers=%d never caught up to hedge wins=%d", cl.Stats().Losers, st.HedgeWins)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterStatusErrorIsFinal pins the error semantics: an
// application-level StatusError is a valid final reply — it wins
// immediately and is never retried on another backend.
func TestClusterStatusErrorIsFinal(t *testing.T) {
	const method = 9
	var handled atomic.Int64
	mkBackend := func() *Server {
		mux := NewMux()
		mux.HandleFunc(method, func(w ResponseWriter, req *Request) {
			handled.Add(1)
			w.Error(StatusAppError, "nope")
		})
		srv, err := NewServer(Config{Cores: 2, Handler: mux.Handler()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		return srv
	}
	cl := NewCluster(ClusterConfig{Policy: PolicyRoundRobin})
	cl.Add("a", mkBackend().NewClient())
	cl.Add("b", mkBackend().NewClient())
	defer cl.Close()

	_, err := cl.CallMethod(method, []byte("x"))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != StatusAppError || se.Msg != "nope" {
		t.Fatalf("got %v, want StatusAppError(nope)", err)
	}
	if got := handled.Load(); got != 1 {
		t.Fatalf("handler ran %d times for one StatusError call, want 1 (no retry)", got)
	}
	if st := cl.Stats(); st.Failovers != 0 {
		t.Fatalf("StatusError triggered %d failovers; it must be final", st.Failovers)
	}
}

// TestClusterReplicaRouting checks keyed routing: writes fan out to
// exactly Replicas ring owners, and every read for the key lands inside
// that owner set.
func TestClusterReplicaRouting(t *testing.T) {
	const (
		methodRead  uint16 = 10
		methodWrite uint16 = 11
		backends           = 4
		replicas           = 2
	)
	type hitSet struct {
		mu     sync.Mutex
		writes map[string]int
		reads  map[string]int
	}
	hits := make([]*hitSet, backends)
	servers := make([]*Server, backends)
	for i := range servers {
		h := &hitSet{writes: map[string]int{}, reads: map[string]int{}}
		hits[i] = h
		mux := NewMux()
		mux.HandleFunc(methodRead, func(w ResponseWriter, req *Request) {
			h.mu.Lock()
			h.reads[string(req.Payload)]++
			h.mu.Unlock()
			w.Reply([]byte("r"))
		})
		mux.HandleFunc(methodWrite, func(w ResponseWriter, req *Request) {
			h.mu.Lock()
			h.writes[string(req.Payload)]++
			h.mu.Unlock()
			w.Reply([]byte("w"))
		})
		srv, err := NewServer(Config{Cores: 2, Handler: mux.Handler()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		servers[i] = srv
	}

	cl := NewCluster(ClusterConfig{
		Policy:   PolicyP2C,
		Replicas: replicas,
		KeyFunc: func(method uint16, payload []byte) ([]byte, bool, bool) {
			switch method {
			case methodRead:
				return payload, false, true
			case methodWrite:
				return payload, true, true
			}
			return nil, false, false
		},
	})
	names := []string{"n0", "n1", "n2", "n3"}
	for i, s := range servers {
		cl.Add(names[i], s.NewClient())
	}
	defer cl.Close()

	keys := []string{"alpha", "bravo", "charlie", "delta", "echo-key"}
	for _, key := range keys {
		if _, err := cl.CallMethod(methodWrite, []byte(key)); err != nil {
			t.Fatalf("write %s: %v", key, err)
		}
	}
	// Secondary replica writes complete asynchronously; settle them.
	for _, s := range servers {
		if !s.Flush(5 * time.Second) {
			t.Fatal("flush timed out")
		}
	}

	owners := make(map[string][]int)
	for _, key := range keys {
		for i, h := range hits {
			h.mu.Lock()
			n := h.writes[key]
			h.mu.Unlock()
			if n > 0 {
				owners[key] = append(owners[key], i)
				if n != 1 {
					t.Fatalf("key %s written %d times on backend %d, want 1", key, n, i)
				}
			}
		}
		if len(owners[key]) != replicas {
			t.Fatalf("key %s written to %d backends, want %d", key, len(owners[key]), replicas)
		}
	}

	const readsPer = 10
	for _, key := range keys {
		for i := 0; i < readsPer; i++ {
			if _, err := cl.CallMethod(methodRead, []byte(key)); err != nil {
				t.Fatalf("read %s: %v", key, err)
			}
		}
	}
	for _, key := range keys {
		own := map[int]bool{}
		for _, i := range owners[key] {
			own[i] = true
		}
		total := 0
		for i, h := range hits {
			h.mu.Lock()
			n := h.reads[key]
			h.mu.Unlock()
			if n > 0 && !own[i] {
				t.Fatalf("key %s read %d times on non-owner backend %d (owners %v)", key, n, i, owners[key])
			}
			total += n
		}
		if total != readsPer {
			t.Fatalf("key %s: %d reads arrived, want %d", key, total, readsPer)
		}
	}
}

// TestClusterFailover proves transport errors are not final: with one
// backend torn down, calls land on the survivor via failover.
func TestClusterFailover(t *testing.T) {
	const method = 12
	mkBackend := func(tag string) *Server {
		mux := NewMux()
		mux.HandleFunc(method, func(w ResponseWriter, req *Request) { w.Reply([]byte(tag)) })
		srv, err := NewServer(Config{Cores: 2, Handler: mux.Handler()})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	dead := mkBackend("dead")
	alive := mkBackend("alive")
	t.Cleanup(alive.Close)

	deadClient := dead.NewClient()
	cl := NewCluster(ClusterConfig{Policy: PolicyRoundRobin})
	cl.Add("dead", deadClient)
	cl.Add("alive", alive.NewClient())
	defer cl.Close()

	// Kill one backend: its client now fails every send.
	deadClient.Close()
	dead.Close()

	for i := 0; i < 4; i++ {
		resp, err := cl.CallMethod(method, []byte("x"))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if string(resp) != "alive" {
			t.Fatalf("call %d answered by %q", i, resp)
		}
	}
	if st := cl.Stats(); st.Failovers == 0 {
		t.Fatal("no failovers recorded with a dead backend in rotation")
	}
}

// TestMuxRejectsHealthMethod pins the reservation: application code
// cannot mount a handler on the health-frame method.
func TestMuxRejectsHealthMethod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Handle(MethodHealth) did not panic")
		}
	}()
	NewMux().HandleFunc(MethodHealth, func(w ResponseWriter, req *Request) {})
}
