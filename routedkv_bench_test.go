// BenchmarkHotPathRoutedKV exercises the method-dispatched hot path end
// to end with a real application behind it: the kv store mounted on a
// Mux, driven closed-loop over memnet with a GET-heavy GET/SET mix (15
// GETs per SET, ETC-flavoured). Versus the echo benchmarks this adds
// the v3 frame, the Mux table lookup, and the store's shard work — the
// configuration BENCH_hotpath.json tracks for the routed serving path.
// It lives in package zygos_test because internal/kv imports zygos to
// register its routes.
package zygos_test

import (
	"fmt"
	"testing"

	"zygos"
	"zygos/internal/kv"
)

func BenchmarkHotPathRoutedKV(b *testing.B) {
	store := kv.NewStore(32, 64<<20)
	srv, err := zygos.NewServer(zygos.Config{
		Cores:   2,
		Handler: store.NewMux().Handler(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := srv.NewClient()
	defer c.Close()

	// A fixed keyspace, preloaded, with the request payloads pre-encoded
	// so the measured loop is the serving path, not the generator.
	const keys = 512
	getReqs := make([][]byte, keys)
	setReqs := make([][]byte, keys)
	value := []byte("0123456789abcdef0123456789abcdef")
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("key-%08d-pad-pad", i))
		getReqs[i] = key
		setReqs[i] = kv.EncodeSetPayload(nil, key, value)
		if _, err := c.CallMethod(kv.MethodSet, setReqs[i]); err != nil {
			b.Fatal(err)
		}
	}

	var buf []byte
	// Warm the pools before measuring.
	for i := 0; i < 128; i++ {
		r, err := c.CallMethodInto(kv.MethodGet, getReqs[i%keys], buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = r
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % keys
		var r []byte
		var err error
		if i%16 == 15 {
			r, err = c.CallMethodInto(kv.MethodSet, setReqs[k], buf[:0])
		} else {
			r, err = c.CallMethodInto(kv.MethodGet, getReqs[k], buf[:0])
		}
		if err != nil {
			b.Fatal(err)
		}
		if len(r) == 0 || r[0] == kv.ReplyMiss {
			b.Fatalf("unexpected reply %v", r)
		}
		buf = r
	}
}
