package zygos

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func newEchoServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Handler == nil {
		cfg.Handler = func(w ResponseWriter, req *Request) { w.Reply(req.Payload) }
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestServerInProcess(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 2})
	c := s.NewClient()
	defer c.Close()
	resp, err := c.Call([]byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hi" {
		t.Fatalf("got %q", resp)
	}
	if s.Cores() != 2 {
		t.Fatalf("Cores() = %d", s.Cores())
	}
}

func TestServerOverTCP(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	c, err := DialClient(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call([]byte("tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "tcp" {
		t.Fatalf("got %q", resp)
	}
}

func TestNilReplyIsOneWay(t *testing.T) {
	var mu sync.Mutex
	seen := 0
	s := newEchoServer(t, Config{Cores: 1, Handler: func(w ResponseWriter, req *Request) {
		mu.Lock()
		seen++
		mu.Unlock()
		if bytes.Equal(req.Payload, []byte("oneway")) {
			return // no reply: one-way semantics
		}
		w.Reply(req.Payload)
	}})
	c := s.NewClient()
	defer c.Close()
	if err := c.SendAsync([]byte("oneway"), func(_ []byte, err error) {
		// The callback fires with an error at client teardown; only a
		// successful reply would violate one-way semantics.
		if err == nil {
			t.Error("one-way request must not be answered")
		}
	}); err != nil {
		t.Fatal(err)
	}
	// A follow-up round trip proves the one-way request was processed.
	if _, err := c.Call([]byte("sync")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if seen != 2 {
		t.Fatalf("handler ran %d times, want 2", seen)
	}
}

func TestRequestMetadata(t *testing.T) {
	got := make(chan Request, 1)
	s := newEchoServer(t, Config{Cores: 2, Handler: func(w ResponseWriter, req *Request) {
		select {
		case got <- *req:
		default:
		}
		w.Reply(req.Payload)
	}})
	c := s.NewClient()
	defer c.Close()
	if _, err := c.Call([]byte("meta")); err != nil {
		t.Fatal(err)
	}
	req := <-got
	if req.Conn == 0 {
		t.Error("Conn must be set")
	}
	if req.Worker < 0 || req.Worker >= 2 {
		t.Errorf("Worker %d out of range", req.Worker)
	}
	if string(req.Payload) != "meta" {
		t.Errorf("payload %q", req.Payload)
	}
}

func TestStatsAndStealFraction(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 4, Handler: func(w ResponseWriter, req *Request) {
		time.Sleep(200 * time.Microsecond)
		w.Reply(req.Payload)
	}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		c := s.NewClient()
		defer c.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.Call([]byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Events != 400 {
		t.Fatalf("events %d, want 400", st.Events)
	}
	if st.Conns < 8 {
		t.Fatalf("conns %d, want >= 8", st.Conns)
	}
	if f := st.StealFraction(); f < 0 || f > 1 {
		t.Fatalf("steal fraction %v out of range", f)
	}
	if (Stats{}).StealFraction() != 0 {
		t.Fatal("zero stats must have zero steal fraction")
	}
}

func TestPartitionedModeNeverSteals(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 4, Partitioned: true, Handler: func(w ResponseWriter, req *Request) {
		time.Sleep(100 * time.Microsecond)
		w.Reply(req.Payload)
	}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		c := s.NewClient()
		defer c.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := c.Call([]byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Steals != 0 {
		t.Fatalf("partitioned server stole %d events", st.Steals)
	}
}

func TestConfigRequiresHandler(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Fatal("NewServer without handler must fail")
	}
}

func TestFlush(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 2})
	c := s.NewClient()
	defer c.Close()
	for i := 0; i < 100; i++ {
		if err := c.SendAsync([]byte(fmt.Sprintf("%d", i)), func([]byte, error) {}); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Flush(5 * time.Second) {
		t.Fatal("flush timed out")
	}
	if st := s.Stats(); st.Events != 100 {
		t.Fatalf("events %d after flush, want 100", st.Events)
	}
}
