package zygos

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"zygos/internal/proto"
	"zygos/internal/pubsub"
	"zygos/internal/tcpnet"
)

// waitUntilTrue polls cond until it returns true or the deadline passes.
func waitUntilTrue(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

// Subscribe → Publish → PUSH delivery over the in-process transport,
// with filter matching, unsubscribe, and stats accounting.
func TestPubSubEndToEndInproc(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 2})
	c := s.NewClient()
	defer c.Close()

	var got atomic.Uint64
	var lastID atomic.Uint32
	sub, err := c.Subscribe(7, FilterAll(), SubscribeOptions{}, func(frameID uint32, payload []byte) {
		lastID.Store(frameID)
		if string(payload) != fmt.Sprintf("evt-%d", frameID) {
			t.Errorf("frame %d payload %q", frameID, payload)
		}
		got.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Topic() != 7 {
		t.Fatalf("Topic() = %d", sub.Topic())
	}

	for i := uint32(1); i <= 10; i++ {
		if n := s.Publish(7, i, []byte(fmt.Sprintf("evt-%d", i))); n != 1 {
			t.Fatalf("Publish matched %d subs", n)
		}
	}
	waitUntilTrue(t, 2*time.Second, func() bool { return got.Load() == 10 }, "10 pushes delivered")
	if lastID.Load() != 10 {
		t.Fatalf("last frame ID %d", lastID.Load())
	}

	// RPC traffic on the same connection still works.
	if resp, err := c.Call([]byte("still-rpc")); err != nil || string(resp) != "still-rpc" {
		t.Fatalf("RPC alongside subscription: %q %v", resp, err)
	}

	st := s.Stats().PubSub
	if st.Published < 10 || st.Delivered < 10 || st.Subscriptions != 1 {
		t.Fatalf("stats %+v", st)
	}

	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Unsubscribe(); err != nil { // idempotent
		t.Fatal(err)
	}
	if n := s.Publish(7, 11, []byte("evt-11")); n != 0 {
		t.Fatalf("publish after unsubscribe matched %d", n)
	}
	waitUntilTrue(t, time.Second, func() bool { return s.Stats().PubSub.Subscriptions == 0 }, "subscription retired")
}

// Exact/mask/range filters select frames on the wire path, not just in
// the bus unit tests.
func TestPubSubWireFilters(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 2})
	c := s.NewClient()
	defer c.Close()

	var exact, masked, ranged atomic.Uint64
	if _, err := c.Subscribe(3, FilterExact(5), SubscribeOptions{}, func(id uint32, _ []byte) { exact.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe(3, FilterMask(0x100, 0xF00), SubscribeOptions{}, func(id uint32, _ []byte) { masked.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe(3, FilterRange(20, 29), SubscribeOptions{}, func(id uint32, _ []byte) { ranged.Add(1) }); err != nil {
		t.Fatal(err)
	}

	s.Publish(3, 5, []byte("x"))     // exact only
	s.Publish(3, 0x105, []byte("x")) // mask only
	s.Publish(3, 25, []byte("x"))    // range only
	s.Publish(3, 9999, []byte("x"))  // nobody

	waitUntilTrue(t, 2*time.Second, func() bool {
		return exact.Load() == 1 && masked.Load() == 1 && ranged.Load() == 1
	}, "each filter matched exactly its frame")
	// A FilterFunc subscription cannot travel on the wire.
	if _, err := c.Subscribe(3, FilterFunc(func(PushFrame) bool { return true }), SubscribeOptions{}, func(uint32, []byte) {}); err == nil {
		t.Fatal("FilterFunc over the wire must fail")
	}
}

// The TCP path: subscribe over a socket, receive pushes interleaved
// with RPC replies on the same connection.
func TestPubSubOverTCP(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	c, err := DialClient(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var got atomic.Uint64
	sub, err := c.Subscribe(4, FilterAll(), SubscribeOptions{Buffer: 512}, func(id uint32, payload []byte) {
		got.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 100; i++ {
		s.Publish(4, i, []byte("tcp-push"))
		if i%10 == 0 {
			if resp, err := c.Call([]byte("rpc")); err != nil || string(resp) != "rpc" {
				t.Fatalf("interleaved RPC: %q %v", resp, err)
			}
		}
	}
	waitUntilTrue(t, 3*time.Second, func() bool { return got.Load() == 100 }, "100 TCP pushes delivered")
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
}

// A ConnManager logical caller can subscribe; pushes demultiplex by
// subscription ID alongside reply IDs on the shared socket.
func TestPubSubManagedClient(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	m := NewConnManager(l.Addr().String(), 1, time.Second)
	defer m.Close()
	caller, err := m.NewCaller()
	if err != nil {
		t.Fatal(err)
	}
	mc := caller.(*ManagedClient)

	var got atomic.Uint64
	sub, err := mc.Subscribe(6, FilterAll(), SubscribeOptions{}, func(id uint32, payload []byte) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	// A second caller on the same socket keeps calling while pushes flow.
	other, err := m.NewCaller()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 50; i++ {
		s.Publish(6, i, []byte("managed"))
		if resp, err := other.Call([]byte("shared")); err != nil || string(resp) != "shared" {
			t.Fatalf("co-resident caller: %q %v", resp, err)
		}
	}
	waitUntilTrue(t, 3*time.Second, func() bool { return got.Load() == 50 }, "managed pushes delivered")
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
}

// The fair-queuing acceptance bound: a firehose subscription on the
// same connection as a closed-loop echo caller must not degrade the
// echo P99 more than 2x (plus a small floor absorbing scheduler noise).
func TestPushFairQueuing(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	s := newEchoServer(t, Config{Cores: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	// Dial with a bounded receive buffer: the bound under test is the
	// server's egress fairness, so client-side kernel queueing (which
	// would buffer megabytes of push bytes ahead of the echo reply on
	// loopback) is capped to keep it out of the measurement.
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tc := nc.(*net.TCPConn)
	_ = tc.SetNoDelay(true)
	_ = tc.SetReadBuffer(128 << 10)
	c := &TCPClient{tc: tcpnet.NewClientOn(nc)}
	defer c.Close()

	measureP99 := func(n int) time.Duration {
		lats := make([]time.Duration, 0, n)
		var buf []byte
		for i := 0; i < n; i++ {
			t0 := time.Now()
			resp, err := c.CallInto([]byte("echo-probe"), buf[:0])
			if err != nil {
				t.Fatalf("echo call: %v", err)
			}
			buf = resp
			lats = append(lats, time.Since(t0))
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[n*99/100]
	}

	// Warm up, then baseline P99 with no push traffic.
	measureP99(200)
	base := measureP99(1000)

	// Firehose subscription on the same connection: small ring,
	// drop-oldest, payload big enough to keep the egress busy.
	var got atomic.Uint64
	sub, err := c.Subscribe(9, FilterAll(), SubscribeOptions{Buffer: 256}, func(uint32, []byte) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	firehoseDone := make(chan struct{})
	go func() {
		defer close(firehoseDone)
		// Paced bursts, not a busy loop: ~1.2 GB/s offered is far more
		// than the subscription ring and the fairness-gated egress will
		// move — the ring keeps dropping — without monopolizing the CPU
		// on small machines, which would measure Go scheduler starvation
		// instead of egress fairness.
		payload := make([]byte, 4096)
		var i uint32
		for {
			select {
			case <-stop:
				return
			default:
			}
			for burst := 0; burst < 300; burst++ {
				i++
				s.Publish(9, i, payload)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	hot := measureP99(1000)
	close(stop)
	<-firehoseDone
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}

	if got.Load() == 0 {
		t.Fatal("firehose delivered nothing — test not exercising push egress")
	}
	limit := 2 * base
	if floor := 5 * time.Millisecond; limit < floor {
		limit = floor
	}
	if hot > limit {
		// Race instrumentation slows the client parse path an order of
		// magnitude, so the bound only holds uninstrumented; under race
		// the test still exercises the full concurrent machinery.
		if raceEnabled {
			t.Skipf("latency bound skipped under race: P99 %v > %v", hot, limit)
		}
		t.Fatalf("echo P99 under firehose %v exceeds bound %v (baseline %v)", hot, limit, base)
	}
	t.Logf("echo P99: baseline %v, under firehose %v (bound %v), pushes delivered %d, drops %d",
		base, hot, limit, got.Load(), s.Stats().PubSub.Dropped)
}

// rawSubscribe dials a raw TCP connection, sends a v4 SUBSCRIBE, and
// reads the ack — a subscriber that then never reads again, for
// backpressure tests.
func rawSubscribe(t *testing.T, addr string, topic uint16, policy uint8, qcap uint16) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := pubsub.AppendSubSpec(nil, pubsub.SubSpec{Policy: policy, QCap: qcap})
	if err != nil {
		t.Fatal(err)
	}
	frame := proto.AppendFrameV4(nil, proto.Message{ID: 1, Method: topic, SubID: 77, Kind: proto.KindSubscribe, Payload: spec})
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	ack := make([]byte, proto.HeaderSizeV4)
	if _, err := io.ReadFull(nc, ack); err != nil {
		t.Fatalf("reading SUBSCRIBE ack: %v", err)
	}
	if ack[3] != proto.Magic4 {
		t.Fatalf("ack version byte %#x", ack[3])
	}
	return nc
}

// Drop-oldest must never block the publisher: a subscriber that stops
// reading entirely bounds its damage to its own ring, publishers keep
// running at full speed, and the evictions are counted.
func TestDropOldestNeverBlocksPublisher(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)

	nc := rawSubscribe(t, l.Addr().String(), 12, uint8(DropOldest), 8)
	defer nc.Close()
	waitUntilTrue(t, 2*time.Second, func() bool { return s.Stats().PubSub.Subscriptions == 1 }, "subscription installed")

	// The peer never reads another byte. Publish far more than the ring
	// (8) and the socket could absorb; the publisher must finish fast.
	payload := make([]byte, 1024)
	start := time.Now()
	for i := uint32(0); i < 50000; i++ {
		s.Publish(12, i, payload)
	}
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("publisher took %v — blocked on a stalled subscriber", elapsed)
	}
	st := s.Stats().PubSub
	if st.Dropped == 0 {
		t.Fatal("stalled subscriber produced no drops")
	}
	if st.Published < 50000 {
		t.Fatalf("published %d", st.Published)
	}
	t.Logf("50k publishes in %v with stalled subscriber: %d dropped, %d pushed", elapsed, st.Dropped, st.Pushed)
}

// The disconnect policy reaps a subscriber that cannot keep up: its
// connection closes and its subscription is unhooked from the bus.
func TestDisconnectPolicyReapsSlowSubscriber(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)

	nc := rawSubscribe(t, l.Addr().String(), 13, uint8(Disconnect), 8)
	defer nc.Close()
	waitUntilTrue(t, 2*time.Second, func() bool { return s.Stats().PubSub.Subscriptions == 1 }, "subscription installed")

	payload := make([]byte, 4096)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().PubSub.Subscriptions != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow subscriber never reaped under disconnect policy")
		}
		for i := uint32(0); i < 1000; i++ {
			s.Publish(13, i, payload)
		}
	}
	// The reap unhooked the bus entry too: publishes now match nobody.
	waitUntilTrue(t, 2*time.Second, func() bool { return s.Publish(13, 0, payload) == 0 }, "bus entry unhooked")
}

// RelayTopic forwards pushes across a hop: frames published on a
// backend server reach a subscriber of the front server.
func TestRelayTopic(t *testing.T) {
	backend := newEchoServer(t, Config{Cores: 2})
	front := newEchoServer(t, Config{Cores: 2})

	bc := backend.NewClient()
	defer bc.Close()
	relay, err := RelayTopic(front, bc, 21, FilterAll(), SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Unsubscribe()

	fc := front.NewClient()
	defer fc.Close()
	var got atomic.Uint64
	if _, err := fc.Subscribe(21, FilterAll(), SubscribeOptions{}, func(id uint32, payload []byte) {
		if string(payload) == "behind-the-proxy" {
			got.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}

	for i := uint32(0); i < 20; i++ {
		backend.Publish(21, i, []byte("behind-the-proxy"))
	}
	waitUntilTrue(t, 3*time.Second, func() bool { return got.Load() == 20 }, "relayed pushes delivered")
}

// SubscribeLocal registers in-process delivery, including FilterFunc
// predicates the wire cannot carry.
func TestSubscribeLocalFuncFilter(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 2})
	var got atomic.Uint64
	sub := s.SubscribeLocal(30, FilterFunc(func(f PushFrame) bool { return f.ID%2 == 0 }), func(f PushFrame) {
		got.Add(1)
	})
	defer sub.Unsubscribe()
	for i := uint32(0); i < 10; i++ {
		s.Publish(30, i, nil)
	}
	if got.Load() != 5 {
		t.Fatalf("predicate matched %d of 10", got.Load())
	}
}

// StreamStats publishes JSON snapshots on TopicStats while the topic
// has subscribers, and only one stream may run per server.
func TestStreamStats(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 2})
	c := s.NewClient()
	defer c.Close()

	stop, err := s.StreamStats(5 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StreamStats(time.Second); err != ErrAlreadyStreaming {
		t.Fatalf("second stream: %v", err)
	}

	snapCh := make(chan []byte, 1)
	sub, err := c.Subscribe(TopicStats, FilterAll(), SubscribeOptions{}, func(id uint32, payload []byte) {
		select {
		case snapCh <- append([]byte(nil), payload...):
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Generate some traffic so the snapshot is non-trivial.
	if _, err := c.Call([]byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case raw := <-snapCh:
		var st Stats
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("snapshot not valid Stats JSON: %v\n%s", err, raw)
		}
		if st.PubSub.Subscriptions == 0 {
			t.Fatalf("snapshot shows no subscriptions: %+v", st.PubSub)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no stats push arrived")
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // idempotent
	// After stop, a new stream may start.
	stop2, err := s.StreamStats(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	stop2()
}

// Closing a client connection retires its server-side subscriptions:
// the bus stops matching and the live-subscription gauge returns to 0.
func TestConnCloseRetiresSubscriptions(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 2})
	c := s.NewClient()
	if _, err := c.Subscribe(40, FilterAll(), SubscribeOptions{}, func(uint32, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if n := s.Publish(40, 1, []byte("x")); n != 1 {
		t.Fatalf("matched %d", n)
	}
	c.Close()
	waitUntilTrue(t, 2*time.Second, func() bool {
		return s.Stats().PubSub.Subscriptions == 0 && s.Publish(40, 2, []byte("x")) == 0
	}, "close retired the subscription")
}
