//go:build !race

package zygos

// raceEnabled reports whether the race detector is active; allocation
// guards skip under it (instrumentation allocates, and sync.Pool
// deliberately drops Puts in race mode).
const raceEnabled = false
