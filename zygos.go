// Package zygos is a Go implementation of the ZygOS execution model
// (Prekas, Kogias, Bugnion — SOSP '17): a work-conserving scheduler for
// microsecond-scale RPC serving that eliminates head-of-line blocking
// through per-connection shuffle queues, work stealing across cores, and
// prompt kernel-side TX of stolen work's replies.
//
// A Server owns a fixed pool of per-core workers. Each connection is
// steered to a home worker by RSS-style flow hashing; its requests are
// parsed there and published on the home's shuffle queue, from which idle
// workers steal. A connection is owned exclusively while its events
// execute, so pipelined requests on one connection are answered in order
// with no application-level locking — the paper's §4.3 guarantee.
//
// # Handlers, methods, and replies
//
// The application is a set of method-routed Handlers in the style of
// net/http: a Mux maps each wire method ID (carried in the v3 frame
// header) to a handler, and the Mux itself is the server's Handler:
//
//	mux := zygos.NewMux()
//	mux.HandleFunc(1, func(w zygos.ResponseWriter, req *zygos.Request) {
//		w.Reply(append([]byte("echo:"), req.Payload...))
//	})
//	mux.HandleFunc(2, func(w zygos.ResponseWriter, req *zygos.Request) {
//		w.Error(zygos.StatusAppError, "not implemented")
//	})
//	srv, _ := zygos.NewServer(zygos.Config{Cores: 4, Handler: mux.Handler()})
//	defer srv.Close()
//	l, _ := net.Listen("tcp", ":9000")
//	go srv.Serve(l)
//
//	c, _ := zygos.DialClient(":9000", time.Second)
//	resp, _ := c.CallMethod(1, []byte("hi"))
//
// Requests from v1/v2 clients carry no method and dispatch to method 0,
// the legacy route; calling an unregistered method returns a
// StatusNoMethod *StatusError. Single-operation servers can skip the
// Mux entirely and set Config.Handler to a bare Handler, exactly as
// before.
//
// A handler completes each request exactly once — successfully with
// Reply, or with a wire-level status code with Error, which clients see
// as a typed *StatusError. A handler that returns without replying sends
// nothing (one-way semantics).
//
// Long tasks need not pin their worker: Detach returns a Completion that
// can finish the reply later from any goroutine, while the worker moves
// on to run or steal other events. Replies — detached or not — are always
// transmitted in per-connection request order; the runtime's completion
// tokens and TX sequencer enforce it.
//
//	Handler: func(w zygos.ResponseWriter, req *zygos.Request) {
//		co := w.Detach()
//		go func() { co.Reply(slowLookup(req.Payload)) }()
//	}
//
// Cross-cutting concerns stack as middleware:
//
//	srv.Use(srv.LatencyRecording(), srv.AdmissionControl(1024))
//
// In-process clients (srv.NewClient) and TCP clients (DialClient) share
// the Caller interface and the same calling conventions.
package zygos

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"zygos/internal/core"
	"zygos/internal/memnet"
	"zygos/internal/proto"
	"zygos/internal/pubsub"
	"zygos/internal/tcpnet"
)

// Wire status codes carried in the reply header's status byte (v2
// framing). StatusOK replies deliver their payload; any other status
// surfaces to callers as *StatusError.
const (
	// StatusOK is a successful reply.
	StatusOK = proto.StatusOK
	// StatusAppError is an application-level error; the message travels
	// as the reply payload.
	StatusAppError = proto.StatusAppError
	// StatusShed reports that admission control rejected the request
	// before it ran.
	StatusShed = proto.StatusShed
	// StatusInternal reports a server-side failure.
	StatusInternal = proto.StatusInternal
	// StatusNoMethod reports that the request named a method no handler
	// is registered for (the Mux's NotFound reply).
	StatusNoMethod = proto.StatusNoMethod
	// StatusDeadlineExceeded reports that the request's wire deadline
	// budget expired before (or while) the server could serve it — the
	// reply nobody is waiting for anymore, answered without running the
	// handler.
	StatusDeadlineExceeded = proto.StatusDeadlineExceeded
)

// Typed sentinels for errors.Is: a *StatusError matches when its code
// matches, regardless of message, so callers can branch on the class of
// rejection without string inspection:
//
//	if errors.Is(err, zygos.ErrShed) { backoff(RetryAfter(err)) }
var (
	// ErrShed matches replies rejected by admission control
	// (StatusShed).
	ErrShed = proto.ErrShed
	// ErrDeadlineExceeded matches replies whose deadline budget ran out
	// server-side (StatusDeadlineExceeded).
	ErrDeadlineExceeded = proto.ErrDeadlineExceeded
)

// RetryAfter extracts the server's retry-after hint from a shed error,
// if err is (or wraps) a *StatusError whose message carries one. Shed
// replies produced by the admission middleware and the cluster front
// tier embed the hint; zero, false otherwise.
func RetryAfter(err error) (time.Duration, bool) {
	var se *StatusError
	if !errors.As(err, &se) {
		return 0, false
	}
	d, _, ok := proto.ParseRetryAfter(se.Msg)
	return d, ok
}

// StatusError is the typed error clients receive when a reply carries a
// non-OK wire status. Use errors.As to inspect the code:
//
//	var se *zygos.StatusError
//	if errors.As(err, &se) && se.Code == zygos.StatusShed { backoff() }
type StatusError = proto.StatusError

// StatusText returns a short human-readable name for a status code.
func StatusText(code uint8) string { return proto.StatusText(code) }

// ErrCallTimeout is returned by CallTimeout/CallMethodTimeout (and by
// cluster calls bounded by ClusterConfig.CallTimeout) when no final
// reply arrived within the deadline. The late reply, if it ever lands,
// is discarded without corrupting pooled buffers or the reply demux.
var ErrCallTimeout = proto.ErrCallTimeout

// MethodHealth is the reserved wire method ID (0xFFFF) carrying
// piggybacked depth reports (Config.DepthFrames); it never reaches a
// Handler and cannot be registered on a Mux.
const MethodHealth = proto.MethodHealth

// Request is one incoming RPC delivered to a Handler. Middleware may
// annotate it; the pointer is shared down the chain.
//
// Ownership: the Request and its Payload are valid for the duration of
// the handler invocation — Payload is a view into a pooled parse buffer
// and the Request itself is recycled when the handler returns. A handler
// that called Detach keeps both until it completes the reply through the
// Completion; anything retained beyond that must be copied first.
type Request struct {
	// ID is the client-assigned request identifier echoed on the reply.
	ID uint64
	// Method is the wire method ID naming the operation (v3 frames);
	// zero for v1/v2 frames, which carry no method — the legacy route.
	// A Mux dispatches on it; the reply header echoes it.
	Method uint16
	// Payload is the request body.
	Payload []byte
	// Conn identifies the connection the request arrived on.
	Conn uint64
	// Worker is the index of the worker executing the handler — useful
	// for per-core sharding inside applications.
	Worker int
	// Stolen reports whether the request executes on a non-home worker.
	Stolen bool
	// OneWay reports that the sender expects no reply; Reply and Error
	// still complete the request but transmit nothing.
	OneWay bool
	// ArrivedAt is when the request was parsed off the wire on its home
	// core.
	ArrivedAt time.Time
	// QueueDelay is how long the request waited between arrival and the
	// start of its activation — the scheduler-induced delay the paper's
	// tail-latency argument is about. Requests executing in one
	// activation batch (pipelined on the same connection) share the
	// batch's start timestamp: a predecessor's handler time is service
	// order imposed by per-connection exclusivity, not scheduling, and
	// is visible in the end-to-end Latency histogram instead.
	QueueDelay time.Duration

	// deadline is the absolute deadline derived from the wire budget
	// (FlagDeadline extension); zero when the request carried none.
	deadline time.Time
}

// Deadline returns the request's absolute deadline, derived on arrival
// from the wire deadline budget, and whether the request carried one.
// Handlers use it to size their own work — skipping optional stages,
// truncating scans — to what the caller will still wait for.
func (r *Request) Deadline() (time.Time, bool) {
	return r.deadline, !r.deadline.IsZero()
}

// RemainingBudget returns the time left until the request's deadline
// (negative once passed) and whether the request carried a budget.
func (r *Request) RemainingBudget() (time.Duration, bool) {
	if r.deadline.IsZero() {
		return 0, false
	}
	return time.Until(r.deadline), true
}

// ResponseWriter completes a request. Exactly one completion wins —
// Reply, Error, or a detached Completion's — and later attempts return
// core.ErrCompleted. Replies are delivered in per-connection request
// order regardless of completion order.
type ResponseWriter interface {
	// Reply completes the request successfully with payload.
	Reply(payload []byte) error
	// Error completes the request with a wire-level status code; msg
	// travels as the reply payload. Clients surface it as *StatusError.
	Error(code uint8, msg string) error
	// Detach releases the request from its worker: the handler may
	// return immediately and complete the reply later, from any
	// goroutine, through the returned Completion.
	Detach() Completion
}

// Completion is a detached request's reply handle. It is safe for use
// from any goroutine.
type Completion interface {
	Reply(payload []byte) error
	Error(code uint8, msg string) error
}

// Handler processes one request and completes it through w. Handlers run
// with exclusive ownership of their connection: two requests from the
// same connection never execute concurrently, and replies are
// transmitted in request order.
type Handler func(w ResponseWriter, req *Request)

// SyncHandler adapts the legacy synchronous signature — return the reply
// payload, or nil to send no reply — to a Handler. It eases migration;
// new code should use the ResponseWriter form directly.
func SyncHandler(f func(req *Request) []byte) Handler {
	return func(w ResponseWriter, req *Request) {
		if resp := f(req); resp != nil {
			w.Reply(resp)
		}
	}
}

// Middleware wraps a Handler with a cross-cutting concern. Chains are
// installed with Server.Use; the first middleware installed is the
// outermost. A middleware may wrap w to observe the reply — including
// replies completed after Detach.
type Middleware func(next Handler) Handler

// Config parameterizes a Server.
type Config struct {
	// Cores is the number of scheduler workers; defaults to GOMAXPROCS.
	Cores int
	// Handler is the application; required.
	Handler Handler
	// Partitioned disables work stealing, degrading the scheduler to a
	// shared-nothing dataplane (the IX baseline's behaviour). Ablation.
	Partitioned bool
	// NoInterrupts disables the IPI-analogue kernel proxying, reproducing
	// the paper's cooperative "ZygOS (no interrupts)" variant. Ablation.
	NoInterrupts bool
	// ParkInterval bounds idle workers' sleep between steal scans;
	// defaults to 100µs.
	ParkInterval time.Duration
	// LockOSThread pins each worker goroutine to an OS thread.
	LockOSThread bool
	// IdleTimeout closes TCP connections with no wire activity for this
	// long, returning their pooled buffers. Zero (the default) disables
	// reaping.
	IdleTimeout time.Duration
	// Pollers overrides the TCP transport's poller goroutine count
	// (default min(GOMAXPROCS, 4)). The transport's goroutine budget is
	// O(Pollers + accept shards), independent of connection count.
	Pollers int
	// DepthFrames piggybacks the server's live scheduling depth onto
	// each reply batch as a reserved-method v3 health frame (~20 bytes
	// per egress flush, read from atomic counters). Clients that
	// installed OnDepth receive it; all others drop it for free. A
	// cluster tier's tail-aware balancer routes on these.
	DepthFrames bool
}

// LatencySnapshot summarizes one of the server's latency histograms.
type LatencySnapshot struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Stats is a snapshot of scheduler and middleware counters.
type Stats struct {
	// Events is the number of application events executed.
	Events uint64
	// Steals counts events executed by a non-home worker.
	Steals uint64
	// Proxies counts kernel steps executed on another worker's behalf —
	// the stand-in for the paper's inter-processor interrupts.
	Proxies uint64
	// Conns counts connections ever created.
	Conns uint64
	// Detached counts requests whose handlers detached their reply.
	Detached uint64
	// Parks counts times an idle worker committed to sleep on its
	// eventcount; with wake-on-demand parking this tracks genuine idle
	// transitions, not a poll interval.
	Parks uint64
	// Wakes counts demand wakes delivered to parked workers by
	// publishers (ingress arrivals, ready publications, steal
	// propagation). Wakes ≪ Parks means workers mostly ride the
	// watchdog; Wakes ≈ Parks means the fabric is waking them exactly
	// when work arrives.
	Wakes uint64
	// Shed counts requests rejected by the admission middleware
	// (AdmissionControl or RouteAwareAdmission).
	Shed uint64
	// Expired counts requests the scheduler answered
	// StatusDeadlineExceeded because their wire deadline budget had
	// already run out when they reached the front of the queue — work
	// shed for free instead of executed for nobody.
	Expired uint64
	// Latency summarizes end-to-end latency (arrival to reply,
	// including detached time); populated once LatencyRecording is
	// installed.
	Latency LatencySnapshot
	// QueueDelay summarizes scheduling delay (arrival to handler
	// start); populated once LatencyRecording is installed.
	QueueDelay LatencySnapshot
	// Routes breaks the traffic down by wire method ID — the
	// per-operation view the paper's request-type-mix analysis needs.
	// Populated once LatencyRecording is installed; method 0 aggregates
	// legacy (v1/v2) traffic. Nil until the first recorded request.
	Routes map[uint16]RouteStats
	// Net is the TCP transport's connection registry snapshot. All
	// zeros for servers never serving TCP.
	Net NetStats
	// PubSub is the streaming/pub-sub slice: bus publishes and fan-out
	// deliveries, push frames sent and dropped, live subscriptions.
	PubSub PubSubStats
}

// NetStats is a snapshot of the TCP transport's connection registry.
type NetStats struct {
	// Open is the number of currently open TCP connections.
	Open int
	// Idle is how many open connections have been quiet past the idle
	// threshold.
	Idle int
	// Accepted counts connections ever accepted.
	Accepted uint64
	// Reaped counts connections closed by the idle-timeout reaper
	// (Config.IdleTimeout).
	Reaped uint64
	// Pollers is the number of transport poller goroutines.
	Pollers int
	// AcceptShards is the number of listeners currently being served —
	// with ListenShards, the SO_REUSEPORT accept shard count.
	AcceptShards int
	// EgressBytesResident is the total capacity of per-connection
	// egress staging buffers currently retained.
	EgressBytesResident int64
}

// RouteStats is one method's slice of the traffic.
type RouteStats struct {
	// Count is the number of requests dispatched to the route,
	// including those still in flight.
	Count uint64
	// Shed counts the route's requests rejected by admission control.
	Shed uint64
	// Expired counts the route's requests answered
	// StatusDeadlineExceeded because their budget ran out in the queue.
	Expired uint64
	// SLOMet and SLOMissed split the route's completed budgeted
	// requests by whether the reply finished inside the wire deadline —
	// the per-route attainment the SLO experiment gates on. Requests
	// carrying no budget count in neither.
	SLOMet    uint64
	SLOMissed uint64
	// Latency summarizes the route's completed requests end to end
	// (arrival to reply, detached time included).
	Latency LatencySnapshot
}

// Attainment returns the fraction of the route's budgeted completions
// that met their deadline; 1 when no budgeted request has completed.
func (r RouteStats) Attainment() float64 {
	total := r.SLOMet + r.SLOMissed
	if total == 0 {
		return 1
	}
	return float64(r.SLOMet) / float64(total)
}

// StealFraction returns steals per executed event (the Figure 8 metric).
func (s Stats) StealFraction() float64 {
	if s.Events == 0 {
		return 0
	}
	return float64(s.Steals) / float64(s.Events)
}

// ProxyFraction returns proxied kernel steps per executed event — how
// often the IPI analogue fired relative to useful work, the companion
// metric to StealFraction for the paper's interrupt-cost discussion.
func (s Stats) ProxyFraction() float64 {
	if s.Events == 0 {
		return 0
	}
	return float64(s.Proxies) / float64(s.Events)
}

// Server is a ZygOS-style RPC server.
type Server struct {
	rt  *core.Runtime
	mem *memnet.Transport
	tcp *tcpnet.Server

	// The middleware chain. handler holds the composed Handler; Use
	// recomputes it under mu. The hot path loads it atomically.
	mu      sync.Mutex
	base    Handler
	mws     []Middleware
	handler atomic.Value // of Handler

	latency lockedHistogram
	qdelay  lockedHistogram
	shed    atomic.Uint64

	// Per-route (per wire method) records, created on first sight of a
	// method by the LatencyRecording middleware. Reads vastly outnumber
	// the one-time inserts, hence the RWMutex.
	routeMu   sync.RWMutex
	routeRecs map[uint16]*routeRec

	// The pub-sub fan-out bus and the per-connection record of which bus
	// subscriptions each wire connection holds, so connection teardown
	// (via the runtime's OnConnClosed) unhooks its fan-out entries.
	bus            *pubsub.Bus
	subMu          sync.Mutex
	connSubs       map[uint64][]connSub
	statsStreaming atomic.Bool
}

// NewServer creates and starts a server's worker pool.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Handler == nil {
		return nil, errors.New("zygos: Config.Handler is required")
	}
	s := &Server{
		base:     cfg.Handler,
		bus:      pubsub.NewBus(),
		connSubs: make(map[uint64][]connSub),
	}
	s.handler.Store(cfg.Handler)
	rt, err := core.New(core.Config{
		Cores: cfg.Cores,
		Handler: core.HandlerFunc(func(ctx *core.Ctx, c *core.Conn, m proto.Message) {
			if m.V4 {
				// v4 control frames (SUBSCRIBE/UNSUBSCRIBE) are runtime
				// traffic, not application requests: they never reach the
				// Handler or its middleware chain.
				s.handleV4(ctx, c, m)
				return
			}
			req := reqPool.Get().(*Request)
			*req = Request{
				ID:         m.ID,
				Method:     m.Method,
				Payload:    m.Payload,
				Conn:       c.ID(),
				Worker:     ctx.Worker(),
				Stolen:     ctx.Stolen(),
				OneWay:     m.Flags&proto.FlagOneWay != 0,
				ArrivedAt:  ctx.ArrivedAt(),
				QueueDelay: ctx.QueueDelay(),
			}
			if dl, ok := ctx.Deadline(); ok {
				req.deadline = dl
			}
			h := s.handler.Load().(Handler)
			h(coreWriter{ctx}, req)
			if !ctx.Detached() {
				// The handler is done with the request (detached handlers
				// keep it until their Completion resolves and are left to
				// the garbage collector).
				*req = Request{}
				reqPool.Put(req)
			}
		}),
		DisableStealing: cfg.Partitioned,
		DisableProxy:    cfg.NoInterrupts,
		ParkInterval:    cfg.ParkInterval,
		LockOSThread:    cfg.LockOSThread,
		DepthFrames:     cfg.DepthFrames,
		// Attribute scheduler-level deadline expiries to their route so
		// Stats().Routes reflects who lost budget in the queue.
		OnExpired: func(method uint16) { s.routeRec(method).expired.Add(1) },
		// Unhook a closed connection's bus subscriptions so the fan-out
		// stops delivering into dead push queues.
		OnConnClosed: s.dropConnSubs,
	})
	if err != nil {
		return nil, err
	}
	s.rt = rt
	s.mem = memnet.NewTransport(rt)
	var topts []tcpnet.Option
	if cfg.IdleTimeout > 0 {
		topts = append(topts, tcpnet.WithIdleTimeout(cfg.IdleTimeout))
	}
	if cfg.Pollers > 0 {
		topts = append(topts, tcpnet.WithPollers(cfg.Pollers))
	}
	s.tcp = tcpnet.NewServer(rt, topts...)
	return s, nil
}

// Use appends middleware to the server's chain and recomposes it. The
// first middleware installed is the outermost (it sees the request
// first and the reply last). Installing middleware while requests are in
// flight is safe; each request binds the chain current at its delivery.
func (s *Server) Use(mws ...Middleware) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mws = append(s.mws, mws...)
	h := s.base
	for i := len(s.mws) - 1; i >= 0; i-- {
		h = s.mws[i](h)
	}
	s.handler.Store(h)
}

// reqPool recycles Request objects across handler invocations; detached
// requests are excluded since their handler goroutine may hold them
// arbitrarily long.
var reqPool = sync.Pool{New: func() any { return new(Request) }}

// coreWriter adapts the runtime's per-event Ctx to the public
// ResponseWriter.
type coreWriter struct {
	ctx *core.Ctx
}

func (w coreWriter) Reply(payload []byte) error         { return w.ctx.Reply(payload) }
func (w coreWriter) Error(code uint8, msg string) error { return w.ctx.Error(code, msg) }
func (w coreWriter) Detach() Completion                 { return w.ctx.Detach() }

// Serve accepts TCP connections on l until l closes or Close is called.
func (s *Server) Serve(l net.Listener) error {
	return s.tcp.Serve(l)
}

// ListenShards opens shards TCP listeners sharing addr via SO_REUSEPORT
// (on Linux; elsewhere it degrades to a single listener), so the kernel
// spreads incoming connections across independent accept loops. Serve
// each returned listener in its own goroutine:
//
//	ls, _ := zygos.ListenShards(":9000", srv.Cores())
//	for _, l := range ls {
//		go srv.Serve(l)
//	}
func ListenShards(addr string, shards int) ([]net.Listener, error) {
	return tcpnet.ListenShards(addr, shards)
}

// NewClient returns an in-process client connection that exercises the
// full scheduling path (parser, shuffle queue, stealing, ordered TX)
// without sockets.
func (s *Server) NewClient() *Client {
	return &Client{cc: s.mem.Dial()}
}

// Stats returns a snapshot of scheduler and middleware counters.
func (s *Server) Stats() Stats {
	st := s.rt.Stats()
	out := Stats{
		Events:     st.Events,
		Steals:     st.Steals,
		Proxies:    st.Proxies,
		Conns:      st.Conns,
		Detached:   st.Detached,
		Parks:      st.Parks,
		Wakes:      st.Wakes,
		Shed:       s.shed.Load(),
		Expired:    st.Expired,
		Latency:    s.latency.snapshot(),
		QueueDelay: s.qdelay.snapshot(),
	}
	s.routeMu.RLock()
	if len(s.routeRecs) > 0 {
		out.Routes = make(map[uint16]RouteStats, len(s.routeRecs))
		for method, r := range s.routeRecs {
			out.Routes[method] = RouteStats{
				Count:     r.count.Load(),
				Shed:      r.shed.Load(),
				Expired:   r.expired.Load(),
				SLOMet:    r.sloMet.Load(),
				SLOMissed: r.sloMissed.Load(),
				Latency:   r.lat.snapshot(),
			}
		}
	}
	s.routeMu.RUnlock()
	bs := s.bus.Stats()
	out.PubSub = PubSubStats{
		Published:     bs.Published,
		Delivered:     bs.Delivered,
		Pushed:        st.PushSent,
		Dropped:       st.PushDropped,
		Subscriptions: int(st.Subs),
	}
	ns := s.tcp.NetStats()
	out.Net = NetStats{
		Open:                ns.Open,
		Idle:                ns.Idle,
		Accepted:            ns.Accepted,
		Reaped:              ns.Reaped,
		Pollers:             ns.Pollers,
		AcceptShards:        ns.AcceptShards,
		EgressBytesResident: ns.EgressBytesResident,
	}
	return out
}

// DepthSnapshot is the server's instantaneous scheduling depth — the
// load signal the depth piggyback stamps on the wire. See
// core.DepthSnapshot for field semantics.
type DepthSnapshot = core.DepthSnapshot

// Depths returns the server's instantaneous scheduling depths:
// allocation-free atomic reads, cheap enough for the reply hot path and
// for polling balancers, where the full Stats() snapshot (which builds
// per-route maps) is not.
func (s *Server) Depths() DepthSnapshot { return s.rt.Depths() }

// Cores returns the number of scheduler workers.
func (s *Server) Cores() int { return s.rt.Cores() }

// Flush blocks until all ingested requests have executed and replied —
// including detached replies — or the timeout elapses. Intended for
// tests and orderly shutdown.
func (s *Server) Flush(timeout time.Duration) bool { return s.rt.Flush(timeout) }

// Close stops the TCP acceptor (if any) and the worker pool.
func (s *Server) Close() {
	s.tcp.Close()
	s.rt.Close()
}

// Caller is one client connection to a Server, independent of transport.
// Both Client (in-process) and TCPClient satisfy it; load generators and
// benchmarks program against Caller so one code path drives either.
//
// The method-less calls travel as v2 frames and land on the server's
// method-0 (legacy) route; the Method variants carry a wire method ID in
// a v3 frame and are routed by the server's Mux.
type Caller interface {
	// Call issues a request and blocks for its reply. Non-OK reply
	// statuses surface as *StatusError. The returned slice is owned by
	// the caller.
	Call(payload []byte) ([]byte, error)
	// CallInto is Call with a caller-owned reply buffer: the reply
	// payload is appended to buf and the extended slice returned.
	// Reusing the returned buffer makes closed-loop calling
	// allocation-free at steady state.
	CallInto(payload, buf []byte) ([]byte, error)
	// CallMethod issues a method-routed request and blocks for its
	// reply.
	CallMethod(method uint16, payload []byte) ([]byte, error)
	// CallMethodInto is CallMethod with a caller-owned reply buffer.
	CallMethodInto(method uint16, payload, buf []byte) ([]byte, error)
	// CallTimeout is Call bounded by a deadline: on expiry it returns
	// ErrCallTimeout promptly and the late reply, if one ever arrives,
	// is discarded safely. d <= 0 means no deadline.
	CallTimeout(payload []byte, d time.Duration) ([]byte, error)
	// CallMethodTimeout is CallMethod bounded by a deadline (see
	// CallTimeout).
	CallMethodTimeout(method uint16, payload []byte, d time.Duration) ([]byte, error)
	// SendAsync issues a request; cb runs exactly once with the reply
	// payload or an error. The resp slice is valid only for the duration
	// of the callback. This is the open-loop primitive.
	SendAsync(payload []byte, cb func(resp []byte, err error)) error
	// SendMethodAsync is SendAsync with a wire method ID.
	SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error
	// SendOneWay issues a fire-and-forget request: the server executes
	// it but transmits no reply.
	SendOneWay(payload []byte) error
	// SendMethodOneWay is SendOneWay with a wire method ID.
	SendMethodOneWay(method uint16, payload []byte) error
	// Close tears down the connection; outstanding calls fail.
	Close()
}

// BudgetCaller is the optional capability of callers that can stamp an
// explicit deadline budget on an open-loop send (closed-loop calls get
// one automatically from CallTimeout/CallMethodTimeout). Client,
// TCPClient, ManagedClient, and ClusterClient all implement it; code
// holding a Caller type-asserts for it.
type BudgetCaller interface {
	// SendMethodBudgetAsync is SendMethodAsync with a deadline budget
	// carried on the wire (FlagDeadline extension): the server sheds the
	// request unserved if the budget runs out in its queues and orders
	// ready work earliest-deadline-first. d <= 0 sends no budget.
	SendMethodBudgetAsync(method uint16, payload []byte, d time.Duration, cb func(resp []byte, err error)) error
}

var (
	_ Caller       = (*Client)(nil)
	_ Caller       = (*TCPClient)(nil)
	_ BudgetCaller = (*Client)(nil)
	_ BudgetCaller = (*TCPClient)(nil)
	_ BudgetCaller = (*ManagedClient)(nil)
)

// Client is an in-process connection to a Server. It is safe for
// concurrent use and supports pipelining.
type Client struct {
	cc *memnet.ClientConn
}

// Call issues a request and blocks for its reply.
func (c *Client) Call(payload []byte) ([]byte, error) { return c.cc.Call(payload) }

// CallInto issues a request, blocks for its reply, and appends the reply
// payload to buf, returning the extended slice. Reusing the returned
// buffer across calls makes the round trip allocation-free at steady
// state.
func (c *Client) CallInto(payload, buf []byte) ([]byte, error) { return c.cc.CallInto(payload, buf) }

// CallMethod issues a method-routed request (v3 frame) and blocks for
// its reply.
func (c *Client) CallMethod(method uint16, payload []byte) ([]byte, error) {
	return c.cc.CallMethod(method, payload)
}

// CallMethodInto is CallMethod with a caller-owned reply buffer, the
// allocation-free closed-loop form.
func (c *Client) CallMethodInto(method uint16, payload, buf []byte) ([]byte, error) {
	return c.cc.CallMethodInto(method, payload, buf)
}

// CallTimeout is Call bounded by d: on expiry it returns ErrCallTimeout
// promptly and the late reply is discarded safely. d <= 0 means no
// deadline.
func (c *Client) CallTimeout(payload []byte, d time.Duration) ([]byte, error) {
	return c.cc.CallTimeout(payload, d)
}

// CallMethodTimeout is CallMethod bounded by d (see CallTimeout).
func (c *Client) CallMethodTimeout(method uint16, payload []byte, d time.Duration) ([]byte, error) {
	return c.cc.CallMethodTimeout(method, payload, d)
}

// Home returns the index of the worker this connection is homed on (its
// RSS queue). Useful for locality-aware sharding and for constructing
// skewed workloads in tests.
func (c *Client) Home() int { return c.cc.ServerConn().Home() }

// SendAsync issues a request; cb runs exactly once with the reply payload
// or an error. This is the open-loop load-generation primitive.
func (c *Client) SendAsync(payload []byte, cb func(resp []byte, err error)) error {
	return c.cc.SendAsync(payload, cb)
}

// SendMethodAsync is SendAsync with a wire method ID (v3 frame).
func (c *Client) SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error {
	return c.cc.SendMethodAsync(method, payload, cb)
}

// SendMethodBudgetAsync is SendMethodAsync with a wire deadline budget
// (see BudgetCaller).
func (c *Client) SendMethodBudgetAsync(method uint16, payload []byte, d time.Duration, cb func(resp []byte, err error)) error {
	return c.cc.SendMethodBudgetAsync(method, payload, d, cb)
}

// OnDepth installs f to receive the server's live scheduling depth from
// piggybacked health frames (servers started with Config.DepthFrames).
// The cluster tier's balancer installs this to route on live queue
// depth; f must be cheap — it runs on the reply delivery path.
func (c *Client) OnDepth(f func(depth uint32)) { c.cc.OnDepth(f) }

// SendOneWay issues a fire-and-forget request: the server executes it
// but transmits no reply.
func (c *Client) SendOneWay(payload []byte) error { return c.cc.SendOneWay(payload) }

// SendMethodOneWay is SendOneWay with a wire method ID (v3 frame).
func (c *Client) SendMethodOneWay(method uint16, payload []byte) error {
	return c.cc.SendMethodOneWay(method, payload)
}

// Close tears down the connection; outstanding calls fail.
func (c *Client) Close() { c.cc.Close() }

// DialClient connects to a remote Server over TCP.
func DialClient(addr string, timeout time.Duration) (*TCPClient, error) {
	tc, err := tcpnet.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	return &TCPClient{tc: tc}, nil
}

// TCPClient is a TCP connection to a Server, with the same calling
// conventions as Client.
type TCPClient struct {
	tc *tcpnet.Client
}

// Call issues a request and blocks for its reply.
func (c *TCPClient) Call(payload []byte) ([]byte, error) { return c.tc.Call(payload) }

// CallInto issues a request, blocks for its reply, and appends the reply
// payload to buf, returning the extended slice. Reusing the returned
// buffer across calls makes the client side allocation-free at steady
// state.
func (c *TCPClient) CallInto(payload, buf []byte) ([]byte, error) {
	return c.tc.CallInto(payload, buf)
}

// CallMethod issues a method-routed request (v3 frame) and blocks for
// its reply.
func (c *TCPClient) CallMethod(method uint16, payload []byte) ([]byte, error) {
	return c.tc.CallMethod(method, payload)
}

// CallMethodInto is CallMethod with a caller-owned reply buffer, the
// allocation-free closed-loop form.
func (c *TCPClient) CallMethodInto(method uint16, payload, buf []byte) ([]byte, error) {
	return c.tc.CallMethodInto(method, payload, buf)
}

// CallTimeout is Call bounded by d: on expiry it returns ErrCallTimeout
// promptly and the late reply is discarded safely. d <= 0 means no
// deadline.
func (c *TCPClient) CallTimeout(payload []byte, d time.Duration) ([]byte, error) {
	return c.tc.CallTimeout(payload, d)
}

// CallMethodTimeout is CallMethod bounded by d (see CallTimeout).
func (c *TCPClient) CallMethodTimeout(method uint16, payload []byte, d time.Duration) ([]byte, error) {
	return c.tc.CallMethodTimeout(method, payload, d)
}

// SendAsync issues a request; cb runs exactly once with the reply or an
// error.
func (c *TCPClient) SendAsync(payload []byte, cb func(resp []byte, err error)) error {
	return c.tc.SendAsync(payload, cb)
}

// SendMethodAsync is SendAsync with a wire method ID (v3 frame).
func (c *TCPClient) SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error {
	return c.tc.SendMethodAsync(method, payload, cb)
}

// SendMethodBudgetAsync is SendMethodAsync with a wire deadline budget
// (see BudgetCaller).
func (c *TCPClient) SendMethodBudgetAsync(method uint16, payload []byte, d time.Duration, cb func(resp []byte, err error)) error {
	return c.tc.SendMethodBudgetAsync(method, payload, d, cb)
}

// OnDepth installs f to receive the server's live scheduling depth from
// piggybacked health frames (servers started with Config.DepthFrames).
func (c *TCPClient) OnDepth(f func(depth uint32)) { c.tc.OnDepth(f) }

// SendOneWay issues a fire-and-forget request: the server executes it
// but transmits no reply.
func (c *TCPClient) SendOneWay(payload []byte) error { return c.tc.SendOneWay(payload) }

// SendMethodOneWay is SendOneWay with a wire method ID (v3 frame).
func (c *TCPClient) SendMethodOneWay(method uint16, payload []byte) error {
	return c.tc.SendMethodOneWay(method, payload)
}

// Close tears down the connection; outstanding calls fail.
func (c *TCPClient) Close() { c.tc.Close() }

// ConnManager multiplexes many logical Callers onto a small fixed set
// of TCP connections: an application tier with thousands of logical
// clients holds `sockets` sockets and reader goroutines instead of
// thousands, and small concurrent requests from callers sharing a
// socket coalesce into single write syscalls.
//
// Ownership rules: NewCaller hands out a view of a shared socket —
// closing a returned Caller only retires that caller and never closes
// the socket; Close on the manager closes every socket and fails every
// outstanding request. Sockets are dialed lazily on first use and
// redialed after socket-level failures.
type ConnManager struct {
	cm *tcpnet.ConnManager
}

// NewConnManager creates a manager holding at most sockets physical
// connections to addr.
func NewConnManager(addr string, sockets int, timeout time.Duration) *ConnManager {
	return &ConnManager{cm: tcpnet.NewConnManager(addr, sockets, timeout)}
}

// NewCaller returns a logical Caller multiplexed onto one of the
// manager's sockets (round-robin assignment), with the same calling
// conventions as Client and TCPClient.
func (m *ConnManager) NewCaller() (Caller, error) {
	mc, err := m.cm.NewCaller()
	if err != nil {
		return nil, err
	}
	return &ManagedClient{mc: mc}, nil
}

// OnDepth installs f to receive the server's live scheduling depth from
// piggybacked health frames, across every socket the manager holds
// (present and future — the hook survives redials). Passing nil
// uninstalls.
func (m *ConnManager) OnDepth(f func(depth uint32)) { m.cm.OnDepth(f) }

// Sockets reports how many physical connections are currently dialed.
func (m *ConnManager) Sockets() int { return m.cm.Sockets() }

// Close tears down every socket; outstanding calls fail.
func (m *ConnManager) Close() { m.cm.Close() }

// ManagedClient is a logical client multiplexed over a ConnManager
// socket. See ConnManager for the ownership rules.
type ManagedClient struct {
	mc *tcpnet.ManagedCaller
}

var _ Caller = (*ManagedClient)(nil)

// Call issues a request and blocks for its reply.
func (c *ManagedClient) Call(payload []byte) ([]byte, error) { return c.mc.Call(payload) }

// CallInto is Call with a caller-owned reply buffer, the
// allocation-free closed-loop form.
func (c *ManagedClient) CallInto(payload, buf []byte) ([]byte, error) {
	return c.mc.CallInto(payload, buf)
}

// CallMethod issues a method-routed request (v3 frame) and blocks for
// its reply.
func (c *ManagedClient) CallMethod(method uint16, payload []byte) ([]byte, error) {
	return c.mc.CallMethod(method, payload)
}

// CallMethodInto is CallMethod with a caller-owned reply buffer.
func (c *ManagedClient) CallMethodInto(method uint16, payload, buf []byte) ([]byte, error) {
	return c.mc.CallMethodInto(method, payload, buf)
}

// CallTimeout is Call bounded by d: on expiry it returns ErrCallTimeout
// promptly and the late reply is discarded safely. d <= 0 means no
// deadline.
func (c *ManagedClient) CallTimeout(payload []byte, d time.Duration) ([]byte, error) {
	return c.mc.CallTimeout(payload, d)
}

// CallMethodTimeout is CallMethod bounded by d (see CallTimeout).
func (c *ManagedClient) CallMethodTimeout(method uint16, payload []byte, d time.Duration) ([]byte, error) {
	return c.mc.CallMethodTimeout(method, payload, d)
}

// SendAsync issues a request; cb runs exactly once with the reply or an
// error.
func (c *ManagedClient) SendAsync(payload []byte, cb func(resp []byte, err error)) error {
	return c.mc.SendAsync(payload, cb)
}

// SendMethodAsync is SendAsync with a wire method ID (v3 frame).
func (c *ManagedClient) SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error {
	return c.mc.SendMethodAsync(method, payload, cb)
}

// SendMethodBudgetAsync is SendMethodAsync with a wire deadline budget
// (see BudgetCaller).
func (c *ManagedClient) SendMethodBudgetAsync(method uint16, payload []byte, d time.Duration, cb func(resp []byte, err error)) error {
	return c.mc.SendMethodBudgetAsync(method, payload, d, cb)
}

// OnDepth installs f to receive the server's live scheduling depth from
// piggybacked health frames arriving on this caller's socket. The hook
// survives redials of the underlying socket.
func (c *ManagedClient) OnDepth(f func(depth uint32)) { c.mc.OnDepth(f) }

// SendOneWay issues a fire-and-forget request: the server executes it
// but transmits no reply.
func (c *ManagedClient) SendOneWay(payload []byte) error { return c.mc.SendOneWay(payload) }

// SendMethodOneWay is SendOneWay with a wire method ID (v3 frame).
func (c *ManagedClient) SendMethodOneWay(method uint16, payload []byte) error {
	return c.mc.SendMethodOneWay(method, payload)
}

// Close retires the logical caller; the shared socket stays open for
// the manager's other callers.
func (c *ManagedClient) Close() { c.mc.Close() }
