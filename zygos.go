// Package zygos is a Go implementation of the ZygOS execution model
// (Prekas, Kogias, Bugnion — SOSP '17): a work-conserving scheduler for
// microsecond-scale RPC serving that eliminates head-of-line blocking
// through per-connection shuffle queues, work stealing across cores, and
// prompt kernel-side TX of stolen work's replies.
//
// A Server owns a fixed pool of per-core workers. Each connection is
// steered to a home worker by RSS-style flow hashing; its requests are
// parsed there and published on the home's shuffle queue, from which idle
// workers steal. A connection is owned exclusively while its events
// execute, so pipelined requests on one connection are answered in order
// with no application-level locking — the paper's §4.3 guarantee.
//
// Quick start:
//
//	srv, _ := zygos.NewServer(zygos.Config{
//		Cores: 4,
//		Handler: func(req zygos.Request) []byte {
//			return append([]byte("echo:"), req.Payload...)
//		},
//	})
//	defer srv.Close()
//	l, _ := net.Listen("tcp", ":9000")
//	go srv.Serve(l)
//
// or, in-process (no sockets):
//
//	c := srv.NewClient()
//	resp, _ := c.Call([]byte("hi"))
package zygos

import (
	"errors"
	"net"
	"time"

	"zygos/internal/core"
	"zygos/internal/memnet"
	"zygos/internal/proto"
	"zygos/internal/tcpnet"
)

// Request is one incoming RPC delivered to a Handler.
type Request struct {
	// ID is the client-assigned request identifier echoed on the reply.
	ID uint64
	// Payload is the request body.
	Payload []byte
	// Conn identifies the connection the request arrived on.
	Conn uint64
	// Worker is the index of the worker executing the handler — useful
	// for per-core sharding inside applications.
	Worker int
	// Stolen reports whether the request executes on a non-home worker.
	Stolen bool
}

// Handler processes one request and returns the reply payload. Returning
// nil sends no reply (one-way requests). Handlers run with exclusive
// ownership of their connection: two requests from the same connection
// never execute concurrently, and replies are transmitted in request
// order.
type Handler func(req Request) []byte

// Config parameterizes a Server.
type Config struct {
	// Cores is the number of scheduler workers; defaults to GOMAXPROCS.
	Cores int
	// Handler is the application; required.
	Handler Handler
	// Partitioned disables work stealing, degrading the scheduler to a
	// shared-nothing dataplane (the IX baseline's behaviour). Ablation.
	Partitioned bool
	// NoInterrupts disables the IPI-analogue kernel proxying, reproducing
	// the paper's cooperative "ZygOS (no interrupts)" variant. Ablation.
	NoInterrupts bool
	// ParkInterval bounds idle workers' sleep between steal scans;
	// defaults to 100µs.
	ParkInterval time.Duration
	// LockOSThread pins each worker goroutine to an OS thread.
	LockOSThread bool
}

// Stats is a snapshot of scheduler counters.
type Stats struct {
	// Events is the number of application events executed.
	Events uint64
	// Steals counts events executed by a non-home worker.
	Steals uint64
	// Proxies counts kernel steps executed on another worker's behalf —
	// the stand-in for the paper's inter-processor interrupts.
	Proxies uint64
	// Conns counts connections ever created.
	Conns uint64
}

// StealFraction returns steals per executed event (the Figure 8 metric).
func (s Stats) StealFraction() float64 {
	if s.Events == 0 {
		return 0
	}
	return float64(s.Steals) / float64(s.Events)
}

// Server is a ZygOS-style RPC server.
type Server struct {
	rt  *core.Runtime
	mem *memnet.Transport
	tcp *tcpnet.Server
}

// NewServer creates and starts a server's worker pool.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Handler == nil {
		return nil, errors.New("zygos: Config.Handler is required")
	}
	h := cfg.Handler
	rt, err := core.New(core.Config{
		Cores: cfg.Cores,
		Handler: core.HandlerFunc(func(ctx *core.Ctx, c *core.Conn, m proto.Message) {
			resp := h(Request{
				ID:      m.ID,
				Payload: m.Payload,
				Conn:    c.ID(),
				Worker:  ctx.Worker(),
				Stolen:  ctx.Stolen(),
			})
			if resp != nil {
				ctx.Send(m.ID, resp)
			}
		}),
		DisableStealing: cfg.Partitioned,
		DisableProxy:    cfg.NoInterrupts,
		ParkInterval:    cfg.ParkInterval,
		LockOSThread:    cfg.LockOSThread,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{rt: rt}
	s.mem = memnet.NewTransport(rt)
	s.tcp = tcpnet.NewServer(rt)
	return s, nil
}

// Serve accepts TCP connections on l until l closes or Close is called.
func (s *Server) Serve(l net.Listener) error {
	return s.tcp.Serve(l)
}

// NewClient returns an in-process client connection that exercises the
// full scheduling path (parser, shuffle queue, stealing, ordered TX)
// without sockets.
func (s *Server) NewClient() *Client {
	return &Client{cc: s.mem.Dial()}
}

// Stats returns a snapshot of scheduler counters.
func (s *Server) Stats() Stats {
	st := s.rt.Stats()
	return Stats{Events: st.Events, Steals: st.Steals, Proxies: st.Proxies, Conns: st.Conns}
}

// Cores returns the number of scheduler workers.
func (s *Server) Cores() int { return s.rt.Cores() }

// Flush blocks until all ingested requests have executed and replied, or
// the timeout elapses. Intended for tests and orderly shutdown.
func (s *Server) Flush(timeout time.Duration) bool { return s.rt.Flush(timeout) }

// Close stops the TCP acceptor (if any) and the worker pool.
func (s *Server) Close() {
	s.tcp.Close()
	s.rt.Close()
}

// Client is an in-process connection to a Server. It is safe for
// concurrent use and supports pipelining.
type Client struct {
	cc *memnet.ClientConn
}

// Call issues a request and blocks for its reply.
func (c *Client) Call(payload []byte) ([]byte, error) { return c.cc.Call(payload) }

// Home returns the index of the worker this connection is homed on (its
// RSS queue). Useful for locality-aware sharding and for constructing
// skewed workloads in tests.
func (c *Client) Home() int { return c.cc.ServerConn().Home() }

// SendAsync issues a request; cb runs exactly once with the reply payload
// or an error. This is the open-loop load-generation primitive.
func (c *Client) SendAsync(payload []byte, cb func(resp []byte, err error)) error {
	return c.cc.SendAsync(payload, cb)
}

// Close tears down the connection; outstanding calls fail.
func (c *Client) Close() { c.cc.Close() }

// DialClient connects to a remote Server over TCP.
func DialClient(addr string, timeout time.Duration) (*TCPClient, error) {
	tc, err := tcpnet.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	return &TCPClient{tc: tc}, nil
}

// TCPClient is a TCP connection to a Server, with the same calling
// conventions as Client.
type TCPClient struct {
	tc *tcpnet.Client
}

// Call issues a request and blocks for its reply.
func (c *TCPClient) Call(payload []byte) ([]byte, error) { return c.tc.Call(payload) }

// SendAsync issues a request; cb runs exactly once with the reply or an
// error.
func (c *TCPClient) SendAsync(payload []byte, cb func(resp []byte, err error)) error {
	return c.tc.SendAsync(payload, cb)
}

// Close tears down the connection; outstanding calls fail.
func (c *TCPClient) Close() { c.tc.Close() }
