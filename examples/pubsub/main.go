// pubsub: a near-cache kept coherent by the kv store's invalidation
// stream — the cache-invalidation pattern the v4 SUBSCRIBE/PUSH frames
// exist for. A writer mutates the store over TCP while a reader serves
// from a local map, subscribed to the invalidation topic: every SET or
// effective DELETE the server handles pushes [op][key] with frame ID
// InvalidationID(key), and the reader evicts on sight instead of
// polling or TTL-guessing.
//
//	go run ./examples/pubsub
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"net"
	"sync"

	"zygos"
	"zygos/internal/kv"
)

// nearCache is the reader's local view: values it has fetched, evicted
// the moment the server says they changed.
type nearCache struct {
	mu            sync.Mutex
	vals          map[string][]byte
	hits, misses  int
	invalidations int
}

func (nc *nearCache) get(key string) ([]byte, bool) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	v, ok := nc.vals[key]
	if ok {
		nc.hits++
	} else {
		nc.misses++
	}
	return v, ok
}

func (nc *nearCache) fill(key string, v []byte) {
	nc.mu.Lock()
	nc.vals[key] = append([]byte(nil), v...)
	nc.mu.Unlock()
}

func (nc *nearCache) evict(key string) {
	nc.mu.Lock()
	delete(nc.vals, key)
	nc.invalidations++
	nc.mu.Unlock()
}

// setPayload builds the routed SET payload: [klen:2 LE][key][value].
func setPayload(key, value string) []byte {
	p := binary.LittleEndian.AppendUint16(nil, uint16(len(key)))
	return append(append(p, key...), value...)
}

func main() {
	store := kv.NewStore(8, 16<<20)
	srv, err := zygos.NewServer(zygos.Config{
		Cores:   2,
		Handler: store.NewMux().Handler(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	// Wire the store's handlers to publish invalidation events; the
	// server itself is the Publisher.
	store.PublishInvalidations(srv)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)

	// Reader: one connection carries both its GET traffic and the
	// invalidation subscription — pushes ride the same fair-queued
	// egress as the replies.
	reader, err := zygos.DialClient(l.Addr().String(), 0)
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()
	cache := &nearCache{vals: make(map[string][]byte)}
	evicted := make(chan string, 64)
	sub, err := reader.Subscribe(kv.MethodInvalidate, zygos.FilterAll(), zygos.SubscribeOptions{},
		func(_ uint32, payload []byte) {
			op, key, err := kv.DecodeInvalidation(payload)
			if err != nil {
				return
			}
			k := string(key) // copy: the payload is only valid during the callback
			cache.evict(k)
			opName := "set"
			if op == kv.InvalDelete {
				opName = "delete"
			}
			fmt.Printf("reader: invalidated %q (%s)\n", k, opName)
			evicted <- k
		})
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Unsubscribe()

	get := func(key string) string {
		if v, ok := cache.get(key); ok {
			return string(v)
		}
		resp, err := reader.CallMethod(kv.MethodGet, []byte(key))
		if err != nil {
			log.Fatal(err)
		}
		if len(resp) < 1 || resp[0] != kv.ReplyHit {
			return "<miss>"
		}
		cache.fill(key, resp[1:])
		return string(resp[1:])
	}

	// Writer: a separate connection mutating the store.
	writer, err := zygos.DialClient(l.Addr().String(), 0)
	if err != nil {
		log.Fatal(err)
	}
	defer writer.Close()
	set := func(key, value string) {
		if _, err := writer.CallMethod(kv.MethodSet, setPayload(key, value)); err != nil {
			log.Fatal(err)
		}
	}

	set("greeting", "v1")
	fmt.Printf("reader: get greeting = %q (fetched)\n", get("greeting"))
	fmt.Printf("reader: get greeting = %q (near-cache)\n", get("greeting"))

	// The writer changes the key; the push evicts the reader's copy, so
	// the next get refetches the new value instead of serving v1
	// forever.
	set("greeting", "v2")
	for k := range evicted {
		if k == "greeting" {
			break
		}
	}
	fmt.Printf("reader: get greeting = %q (refetched after invalidation)\n", get("greeting"))

	if _, err := writer.CallMethod(kv.MethodDelete, []byte("greeting")); err != nil {
		log.Fatal(err)
	}
	for k := range evicted {
		if k == "greeting" {
			break
		}
	}
	fmt.Printf("reader: get greeting = %q (after delete)\n", get("greeting"))

	cache.mu.Lock()
	fmt.Printf("near-cache: hits=%d misses=%d invalidations=%d\n",
		cache.hits, cache.misses, cache.invalidations)
	cache.mu.Unlock()
	st := srv.Stats().PubSub
	fmt.Printf("server: published=%d pushed=%d dropped=%d subscriptions=%d\n",
		st.Published, st.Pushed, st.Dropped, st.Subscriptions)
}
