// Quickstart: a minimal ZygOS-style RPC server with an in-process client.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"zygos"
)

func main() {
	srv, err := zygos.NewServer(zygos.Config{
		Cores: 4,
		Handler: func(req zygos.Request) []byte {
			return append([]byte("echo: "), req.Payload...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	client := srv.NewClient()
	defer client.Close()

	start := time.Now()
	resp, err := client.Call([]byte("hello, shuffle queue"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reply: %q (round trip %v)\n", resp, time.Since(start))

	// Pipelined requests on one connection come back in order — the §4.3
	// ordering guarantee, with no locking in the handler.
	const n = 5
	done := make(chan string, n)
	for i := 0; i < n; i++ {
		payload := fmt.Sprintf("req-%d", i)
		if err := client.SendAsync([]byte(payload), func(resp []byte, err error) {
			if err != nil {
				done <- "error: " + err.Error()
				return
			}
			done <- string(resp)
		}); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		fmt.Println("pipelined:", <-done)
	}

	st := srv.Stats()
	fmt.Printf("stats: events=%d steals=%d proxies=%d conns=%d\n",
		st.Events, st.Steals, st.Proxies, st.Conns)
}
