// Quickstart: a minimal ZygOS-style RPC server with an in-process client,
// showing the ResponseWriter API — synchronous replies, wire-level
// errors, a detached (deferred) reply, and the middleware chain.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"zygos"
)

func main() {
	srv, err := zygos.NewServer(zygos.Config{
		Cores: 4,
		Handler: func(w zygos.ResponseWriter, req *zygos.Request) {
			switch {
			case bytes.Equal(req.Payload, []byte("boom")):
				// Errors travel as a wire status, distinguishable from
				// any payload; clients see a typed *zygos.StatusError.
				w.Error(zygos.StatusAppError, "that one always fails")
			case bytes.Equal(req.Payload, []byte("slow")):
				// A long task detaches: the worker is immediately free
				// to run or steal other events, and the reply completes
				// later from another goroutine — still delivered in
				// request order.
				co := w.Detach()
				go func() {
					time.Sleep(2 * time.Millisecond)
					co.Reply([]byte("slow reply, ordered anyway"))
				}()
			default:
				w.Reply(append([]byte("echo: "), req.Payload...))
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Cross-cutting concerns stack as middleware: latency histograms
	// (surfaced in srv.Stats()) and queue-depth admission control.
	srv.Use(srv.LatencyRecording(), srv.AdmissionControl(1024))

	client := srv.NewClient()
	defer client.Close()

	start := time.Now()
	resp, err := client.Call([]byte("hello, shuffle queue"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reply: %q (round trip %v)\n", resp, time.Since(start))

	if _, err := client.Call([]byte("boom")); err != nil {
		fmt.Printf("error reply: %v\n", err)
	}

	// Pipelined requests on one connection come back in order — the §4.3
	// ordering guarantee — even when the "slow" request's reply is
	// completed late by a detached goroutine.
	payloads := []string{"req-0", "slow", "req-2", "req-3", "req-4"}
	done := make(chan string, len(payloads))
	for _, p := range payloads {
		if err := client.SendAsync([]byte(p), func(resp []byte, err error) {
			if err != nil {
				done <- "error: " + err.Error()
				return
			}
			done <- string(resp)
		}); err != nil {
			log.Fatal(err)
		}
	}
	for range payloads {
		fmt.Println("pipelined:", <-done)
	}

	st := srv.Stats()
	fmt.Printf("stats: events=%d steals=%d proxies=%d conns=%d detached=%d shed=%d\n",
		st.Events, st.Steals, st.Proxies, st.Conns, st.Detached, st.Shed)
	fmt.Printf("latency: %v\n", st.Latency)
}
