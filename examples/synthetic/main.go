// Synthetic work-conservation demo: the paper's core claim, live on the
// real runtime. All traffic lands on connections homed on one worker; a
// partitioned (IX-style) scheduler serializes it there, while the ZygOS
// scheduler's shuffle layer lets every other worker steal — the same
// requests finish several times faster, and the steal counters show why.
//
//	go run ./examples/synthetic
package main

import (
	"fmt"
	"log"
	"time"

	"zygos"
)

const (
	workers  = 4
	tasks    = 32
	taskTime = 2 * time.Millisecond
)

func run(partitioned bool) (time.Duration, zygos.Stats) {
	srv, err := zygos.NewServer(zygos.Config{
		Cores:       workers,
		Partitioned: partitioned,
		Handler: func(w zygos.ResponseWriter, req *zygos.Request) {
			deadline := time.Now().Add(taskTime)
			for time.Now().Before(deadline) {
			}
			w.Reply([]byte{1})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Dial until we hold `tasks` connections all homed on worker 0 (RSS
	// hashing decides; reject the rest) — a worst-case persistent
	// imbalance for a shared-nothing dataplane.
	var skewed []*zygos.Client
	for len(skewed) < tasks {
		c := srv.NewClient()
		if c.Home() == 0 {
			skewed = append(skewed, c)
		} else {
			c.Close()
		}
	}
	defer func() {
		for _, c := range skewed {
			c.Close()
		}
	}()

	start := time.Now()
	done := make(chan error, tasks)
	for _, c := range skewed {
		if err := c.SendAsync([]byte("work"), func(_ []byte, err error) { done <- err }); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < tasks; i++ {
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
	return time.Since(start), srv.Stats()
}

func main() {
	serial := time.Duration(tasks) * taskTime
	fmt.Printf("%d tasks x %v, all homed on worker 0 of %d (serial floor %v)\n\n",
		tasks, taskTime, workers, serial)

	elapsedPart, statsPart := run(true)
	fmt.Printf("partitioned (IX-style):  %8v  steals=%d\n",
		elapsedPart.Round(time.Millisecond), statsPart.Steals)

	elapsedZy, statsZy := run(false)
	fmt.Printf("zygos (work stealing):   %8v  steals=%d proxies=%d\n",
		elapsedZy.Round(time.Millisecond), statsZy.Steals, statsZy.Proxies)

	fmt.Printf("\nspeedup from work conservation: %.1fx\n",
		float64(elapsedPart)/float64(elapsedZy))
}
