// fanout: the tail-at-scale experiment behind the cluster tier. Four
// backend runtimes serve an echo route, one of them with a deliberate
// 3ms straggler delay; a front-tier Cluster fans each request out K
// ways and waits for all replies, so request latency is the max over K
// sub-calls. The table shows why a load-blind balancer cannot fix the
// tail — at K=8 nearly every fan-out touches the straggler — and how
// hedging past the adaptive P99 deadline reclaims it.
//
//	go run ./examples/fanout
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"zygos"
)

const (
	method    = 1
	backends  = 4
	slowDelay = 3 * time.Millisecond
	rounds    = 200
)

func main() {
	servers := make([]*zygos.Server, backends)
	for i := range servers {
		delay := time.Duration(0)
		if i == backends-1 {
			delay = slowDelay
		}
		servers[i] = newBackend(delay)
		defer servers[i].Close()
	}

	configs := []struct {
		name   string
		policy zygos.ClusterPolicy
		hedge  bool
	}{
		{"round-robin", zygos.PolicyRoundRobin, false},
		{"p2c", zygos.PolicyP2C, false},
		{"p2c+hedge", zygos.PolicyP2C, true},
	}

	fmt.Printf("%d backends, one with a %v straggler; %d fan-outs per cell\n\n", backends, slowDelay, rounds)
	fmt.Printf("%-12s %8s %12s %12s %12s\n", "policy", "fanout", "p50", "p99", "hedges")
	for _, cfg := range configs {
		for _, k := range []int{1, 8, 16} {
			cl := zygos.NewCluster(zygos.ClusterConfig{
				Policy: cfg.policy,
				Hedge: zygos.HedgeConfig{
					Enabled:  cfg.hedge,
					MinDelay: 200 * time.Microsecond,
					MaxDelay: time.Millisecond,
				},
			})
			for i, s := range servers {
				cl.Add(fmt.Sprintf("backend-%d", i), s.NewClient())
			}
			p50, p99 := run(cl, k)
			st := cl.Stats()
			fmt.Printf("%-12s %8d %12v %12v %12d\n", cfg.name, k, p50, p99, st.Hedges)
			cl.Close()
		}
	}
}

func newBackend(delay time.Duration) *zygos.Server {
	mux := zygos.NewMux()
	mux.HandleFunc(method, func(w zygos.ResponseWriter, req *zygos.Request) {
		if delay == 0 {
			w.Reply(req.Payload)
			return
		}
		// Detach and sleep off-runtime: the straggler yields its cores
		// instead of blocking a worker, and replies a static buffer
		// because the request payload is recycled once the handler
		// returns.
		co := w.Detach()
		go func() {
			time.Sleep(delay)
			co.Reply([]byte("late"))
		}()
	})
	srv, err := zygos.NewServer(zygos.Config{
		Cores:       2,
		Handler:     mux.Handler(),
		DepthFrames: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return srv
}

// run drives `rounds` K-way fan-outs through the cluster and returns
// the P50 and P99 fan-out latencies.
func run(cl *zygos.ClusterCaller, k int) (p50, p99 time.Duration) {
	payload := []byte("0123456789abcdef")
	lat := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		var wg sync.WaitGroup
		for j := 0; j < k; j++ {
			wg.Add(1)
			err := cl.SendMethodAsync(method, payload, func(_ []byte, err error) {
				if err != nil {
					log.Fatal(err)
				}
				wg.Done()
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		wg.Wait()
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p int) time.Duration {
		idx := len(lat) * p / 100
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return lat[idx].Round(time.Microsecond)
	}
	return pct(50), pct(99)
}
