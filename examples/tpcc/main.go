// tpcc: the Silo-style transactional database served over the ZygOS
// runtime, executing the TPC-C mix — the in-process version of the
// paper's §6.3 setup, finishing with the TPC-C consistency checks.
//
//	go run ./examples/tpcc
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	"zygos"
	"zygos/internal/mutilate"
	"zygos/internal/silo"
	"zygos/internal/tpcc"
)

func main() {
	db := silo.NewDB(10 * time.Millisecond)
	defer db.Close()
	store, err := tpcc.Load(db, tpcc.Config{
		Warehouses:           2,
		CustomersPerDistrict: 300,
		Items:                5000,
		InitialOrders:        150,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded TPC-C: 2 warehouses")

	// One RNG per worker: a worker runs one handler at a time.
	rngs := make([]*rand.Rand, 256)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i) + 13))
	}
	srv, err := zygos.NewServer(zygos.Config{
		Cores: 4,
		Handler: func(w zygos.ResponseWriter, req *zygos.Request) {
			rng := rngs[req.Worker]
			tt := tpcc.Pick(rng)
			err := store.Run(req.Worker, rng, tt)
			if err != nil && !errors.Is(err, silo.ErrUserAbort) {
				w.Error(zygos.StatusAppError, err.Error())
				return
			}
			w.Reply([]byte{0})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	var targets []mutilate.Target
	var clients []*zygos.Client
	for i := 0; i < 16; i++ {
		c := srv.NewClient()
		clients = append(clients, c)
		targets = append(targets, c)
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	rep := mutilate.Run(mutilate.Config{
		Targets:    targets,
		RatePerSec: 2000,
		Requests:   10000,
		Warmup:     1000,
		Gen:        func(rng *rand.Rand) []byte { return []byte{0} },
		Check:      func(resp []byte) bool { return len(resp) == 1 && resp[0] == 0 },
		Seed:       3,
	})
	fmt.Printf("TPC-C over RPC: offered=%.0f TPS achieved=%.0f TPS errors=%d\n",
		rep.OfferedRPS, rep.AchievedRPS, rep.Errors)
	fmt.Printf("  end-to-end latency %s\n", rep.Latencies.Summarize())

	commits, aborts := db.Stats()
	st := srv.Stats()
	fmt.Printf("database: commits=%d aborts=%d\n", commits, aborts)
	fmt.Printf("scheduler: events=%d steals=%d (%.1f%%) proxies=%d\n",
		st.Events, st.Steals, st.StealFraction()*100, st.Proxies)

	if err := store.CheckConsistency(); err != nil {
		log.Fatalf("CONSISTENCY VIOLATION: %v", err)
	}
	fmt.Println("TPC-C consistency checks 1-4: OK")
}
