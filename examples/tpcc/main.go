// tpcc: the Silo-style transactional database served over the ZygOS
// runtime, executing the TPC-C mix — the in-process version of the
// paper's §6.3 setup, finishing with the TPC-C consistency checks.
//
//	go run ./examples/tpcc
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"zygos"
	"zygos/internal/mutilate"
	"zygos/internal/silo"
	"zygos/internal/tpcc"
)

func main() {
	db := silo.NewDB(10 * time.Millisecond)
	defer db.Close()
	store, err := tpcc.Load(db, tpcc.Config{
		Warehouses:           2,
		CustomersPerDistrict: 300,
		Items:                5000,
		InitialOrders:        150,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded TPC-C: 2 warehouses")

	// Each of the five TPC-C transactions is its own method route; the
	// client draws the 45/43/4/4/4 mix and names the transaction in the
	// frame header, so the server needs no dispatch switch and the
	// per-transaction tail is observable per route.
	srv, err := zygos.NewServer(zygos.Config{
		Cores:   4,
		Handler: store.NewMux(13).Handler(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.Use(srv.LatencyRecording())

	var targets []mutilate.Target
	var clients []*zygos.Client
	for i := 0; i < 16; i++ {
		c := srv.NewClient()
		clients = append(clients, c)
		targets = append(targets, c)
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	rep := mutilate.Run(mutilate.Config{
		Targets:    targets,
		RatePerSec: 2000,
		Requests:   10000,
		Warmup:     1000,
		Gen:        func(rng *rand.Rand) (uint16, []byte) { return tpcc.PickMethod(rng), nil },
		Check:      func(resp []byte) bool { return len(resp) == 1 && resp[0] == 0 },
		Seed:       3,
	})
	fmt.Printf("TPC-C over RPC: offered=%.0f TPS achieved=%.0f TPS errors=%d\n",
		rep.OfferedRPS, rep.AchievedRPS, rep.Errors)
	fmt.Printf("  end-to-end latency %s\n", rep.Latencies.Summarize())

	commits, aborts := db.Stats()
	st := srv.Stats()
	fmt.Printf("database: commits=%d aborts=%d\n", commits, aborts)
	fmt.Printf("scheduler: events=%d steals=%d (%.1f%%) proxies=%d\n",
		st.Events, st.Steals, st.StealFraction()*100, st.Proxies)
	// Per-transaction tails, straight off the route histograms.
	for tt := tpcc.TxNewOrder; tt <= tpcc.TxStockLevel; tt++ {
		if rs, ok := st.Routes[tt.Method()]; ok {
			fmt.Printf("  route %-12s count=%-6d %v\n", tt, rs.Count, rs.Latency)
		}
	}

	if err := store.CheckConsistency(); err != nil {
		log.Fatalf("CONSISTENCY VIOLATION: %v", err)
	}
	fmt.Println("TPC-C consistency checks 1-4: OK")
}
