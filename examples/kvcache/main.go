// kvcache: the memcached-like store served by the ZygOS runtime, driven
// by the mutilate-style open-loop generator with the Facebook USR and ETC
// workload models — the in-process version of the paper's §6.2 setup.
//
//	go run ./examples/kvcache
package main

import (
	"fmt"
	"log"
	"math/rand"

	"zygos"
	"zygos/internal/kv"
	"zygos/internal/mutilate"
)

func main() {
	store := kv.NewStore(32, 64<<20)
	// The store mounts as method routes: GET/SET/DELETE each have a wire
	// method ID, and the Mux dispatches on the frame header — no opcode
	// byte in the payload, no dispatch switch in the handler.
	srv, err := zygos.NewServer(zygos.Config{
		Cores:   4,
		Handler: store.NewMux().Handler(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.Use(srv.LatencyRecording())

	for _, model := range []mutilate.KVModel{mutilate.USR(5000), mutilate.ETC(5000)} {
		// Preload the keyspace (mutilate's --loadonly phase).
		loader := srv.NewClient()
		rng := rand.New(rand.NewSource(7))
		for _, payload := range model.Preload(rng) {
			if _, err := loader.CallMethod(kv.MethodSet, payload); err != nil {
				log.Fatal(err)
			}
		}
		loader.Close()

		// Open connections and generate open-loop load.
		var targets []mutilate.Target
		var clients []*zygos.Client
		for i := 0; i < 16; i++ {
			c := srv.NewClient()
			clients = append(clients, c)
			targets = append(targets, c)
		}
		rep := mutilate.Run(mutilate.Config{
			Targets:    targets,
			RatePerSec: 20000,
			Requests:   40000,
			Warmup:     4000,
			Gen:        model.Gen(),
			Check:      func(resp []byte) bool { return len(resp) > 0 },
			Seed:       11,
		})
		for _, c := range clients {
			c.Close()
		}

		fmt.Printf("%s: offered=%.0f/s achieved=%.0f/s errors=%d\n",
			model.Name, rep.OfferedRPS, rep.AchievedRPS, rep.Errors)
		fmt.Printf("  latency %s\n", rep.Latencies.Summarize())
	}

	cs := store.Stats()
	st := srv.Stats()
	fmt.Printf("cache: hits=%d misses=%d evictions=%d bytes=%d\n",
		cs.Hits, cs.Misses, cs.Evictions, cs.Bytes)
	fmt.Printf("scheduler: events=%d steals=%d (%.1f%%) proxies=%d\n",
		st.Events, st.Steals, st.StealFraction()*100, st.Proxies)
	fmt.Printf("server-side latency: %v\n", st.Latency)
	// Per-operation tails: the request-type mix is exactly where tails
	// diverge, and method routing makes it observable per route.
	names := map[uint16]string{kv.MethodGet: "GET", kv.MethodSet: "SET", kv.MethodDelete: "DELETE"}
	for _, m := range []uint16{kv.MethodGet, kv.MethodSet, kv.MethodDelete} {
		if rs, ok := st.Routes[m]; ok {
			fmt.Printf("  route %-6s count=%-7d %v\n", names[m], rs.Count, rs.Latency)
		}
	}
}
