// Pub-sub fan-out benchmark: the streaming-tier numbers behind
// BENCH_pubsub.json (make bench-pubsub). A grid of subscriber counts ×
// publish burst sizes drives the filtered bus and the per-connection
// fair-queued push egress: every cell publishes b.N bursts into a
// topic with N subscribed connections while a co-resident closed-loop
// echo caller shares the first subscriber's connection — the
// interference measurement the fair-queuing design exists for.
//
// ns/op is the cost of one published burst. The extra metrics:
// push-ns is the publisher-side cost per delivered frame (encode +
// ring insert, never blocking), dropfrac is the fraction of deliveries
// evicted under drop-oldest (environment-dependent, recorded but not
// gated — no -ns suffix), and p99-ns is the co-resident echo caller's
// tail while the firehose runs, the number the egress quota is
// supposed to protect. A fair-queuing regression shows up as p99-ns
// inflation long before ns/op moves.
package zygos

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func BenchmarkPubSubFanout(b *testing.B) {
	// No "-" in sub-benchmark names: benchjson truncates the key at the
	// first dash (the GOMAXPROCS suffix).
	for _, subs := range []int{1, 8, 32} {
		for _, burst := range []int{1, 64} {
			b.Run(fmt.Sprintf("subs%dburst%d", subs, burst), func(b *testing.B) {
				benchPubSubFanout(b, subs, burst)
			})
		}
	}
}

func benchPubSubFanout(b *testing.B, subs, burst int) {
	const (
		echoRoute uint16 = 1
		fanTopic  uint16 = 9
	)
	mux := NewMux()
	mux.HandleFunc(echoRoute, func(w ResponseWriter, req *Request) { w.Reply(req.Payload) })
	srv, err := NewServer(Config{Cores: 2, Handler: mux.Handler()})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	var received atomic.Int64
	clients := make([]*Client, subs)
	for i := range clients {
		c := srv.NewClient()
		defer c.Close()
		clients[i] = c
		if _, err := c.Subscribe(fanTopic, FilterAll(), SubscribeOptions{Buffer: 1024},
			func(_ uint32, _ []byte) { received.Add(1) }); err != nil {
			b.Fatal(err)
		}
	}

	// Co-resident RPC: an echo caller on the first subscriber's
	// connection, racing the push firehose for the same egress. Its
	// latencies become p99-ns. The caller samples at a paced rate
	// rather than closed-loop flat out: it exists to measure the
	// interference pushes cause, and an unpaced loop would keep the
	// server's workers spinning and measure scheduler starvation on
	// small machines instead.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var lat []time.Duration
	wg.Add(1)
	go func() {
		defer wg.Done()
		payload := []byte("coresident")
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			if _, err := clients[0].CallMethod(echoRoute, payload); err != nil {
				return
			}
			lat = append(lat, time.Since(t0))
			time.Sleep(200 * time.Microsecond)
		}
	}()

	payload := make([]byte, 64)
	var id uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			id++
			srv.Publish(fanTopic, id, payload)
		}
		runtime.Gosched()
	}
	b.StopTimer()
	close(stop)
	wg.Wait()

	st := srv.Stats().PubSub
	frames := int64(b.N) * int64(burst)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(frames*int64(subs)), "push-ns")
	if st.Delivered > 0 {
		b.ReportMetric(float64(st.Dropped)/float64(st.Delivered), "dropfrac")
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		idx := len(lat) * 99 / 100
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		b.ReportMetric(float64(lat[idx].Nanoseconds()), "p99-ns")
	}
}
