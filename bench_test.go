// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index), plus
// microbenchmarks of the real runtime. Set ZYGOS_FULL=1 to run the dense
// grids used for EXPERIMENTS.md; the default keeps a full -bench=. pass
// laptop-sized.
package zygos_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"zygos"
	"zygos/internal/experiments"
)

func benchOpts() experiments.Options {
	return experiments.Options{
		Full: os.Getenv("ZYGOS_FULL") == "1",
		Tiny: os.Getenv("ZYGOS_FULL") != "1", // keep `go test -bench=.` short by default
		Seed: 1,
	}
}

func runExperiment(b *testing.B, id string) {
	gen, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opt := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := gen(opt)
		if len(res.Tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
		if i == 0 && testing.Verbose() {
			res.Render(os.Stdout)
		}
	}
}

// BenchmarkFig2QueueingModels regenerates Figure 2 (queueing theory).
func BenchmarkFig2QueueingModels(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3BaselineEfficiency regenerates Figure 3 (baseline max
// load @ SLO vs task size).
func BenchmarkFig3BaselineEfficiency(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig6LatencyThroughput regenerates Figure 6 (p99 vs throughput,
// 10µs and 25µs tasks).
func BenchmarkFig6LatencyThroughput(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7ZygosEfficiency regenerates Figure 7 (max load @ SLO
// including ZygOS).
func BenchmarkFig7ZygosEfficiency(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8StealRate regenerates Figure 8 (steals/event vs load).
func BenchmarkFig8StealRate(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Memcached regenerates Figure 9 (memcached ETC/USR).
func BenchmarkFig9Memcached(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10aSiloCCDF regenerates Figure 10a (TPC-C service times).
func BenchmarkFig10aSiloCCDF(b *testing.B) { runExperiment(b, "fig10a") }

// BenchmarkFig10bSiloLatency regenerates Figure 10b (Silo TPC-C latency
// vs throughput).
func BenchmarkFig10bSiloLatency(b *testing.B) { runExperiment(b, "fig10b") }

// BenchmarkTable1SiloSummary regenerates Table 1 (max load @ SLO and
// fractional-load tails).
func BenchmarkTable1SiloSummary(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig11SLOTradeoff regenerates Figure 11 (SLO choice flips the
// winner).
func BenchmarkFig11SLOTradeoff(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkAblationStealCosts runs the steal/IPI cost-sensitivity
// ablation (DESIGN.md §6).
func BenchmarkAblationStealCosts(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkRuntimeEchoInProc measures round-trip request/response
// throughput of the real runtime over the in-memory transport.
func BenchmarkRuntimeEchoInProc(b *testing.B) {
	srv, err := zygos.NewServer(zygos.Config{
		Cores:   2,
		Handler: func(w zygos.ResponseWriter, req *zygos.Request) { w.Reply(req.Payload) },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := srv.NewClient()
	defer c.Close()
	payload := []byte("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimePipelined measures pipelined (open-loop) throughput
// with many outstanding requests per connection.
func BenchmarkRuntimePipelined(b *testing.B) {
	srv, err := zygos.NewServer(zygos.Config{
		Cores:   2,
		Handler: func(w zygos.ResponseWriter, req *zygos.Request) { w.Reply(req.Payload) },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := srv.NewClient()
	defer c.Close()
	var wg sync.WaitGroup
	payload := []byte("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		if err := c.SendAsync(payload, func([]byte, error) { wg.Done() }); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
}

// BenchmarkRuntimeStealingSkewed measures throughput when all load homes
// on one worker and the rest must steal — the work-conservation fast
// path.
func BenchmarkRuntimeStealingSkewed(b *testing.B) {
	srv, err := zygos.NewServer(zygos.Config{
		Cores: 4,
		Handler: func(w zygos.ResponseWriter, req *zygos.Request) {
			// A small spin makes stealing worthwhile; completion is
			// observed through the response.
			deadline := time.Now().Add(20 * time.Microsecond)
			for time.Now().Before(deadline) {
			}
			w.Reply([]byte{1})
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	var skewed []*zygos.Client
	for len(skewed) < 8 {
		c := srv.NewClient()
		if c.Home() == 0 {
			skewed = append(skewed, c)
		} else {
			c.Close()
		}
	}
	defer func() {
		for _, c := range skewed {
			c.Close()
		}
	}()
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		c := skewed[i%len(skewed)]
		if err := c.SendAsync(nil, func([]byte, error) { wg.Done() }); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			wg.Wait()
		}
	}
	wg.Wait()
	if st := srv.Stats(); st.Steals == 0 && b.N > 256 {
		b.Log("warning: no steals observed under skew")
	}
	_ = fmt.Sprint()
}
