module zygos

go 1.24
