package zygos

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zygos/internal/proto"
)

// Error() surfaces on the client as a typed *StatusError carrying the
// wire status code and message, over both transports.
func TestErrorSurfacesAsStatusError(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 2, Handler: func(w ResponseWriter, req *Request) {
		if bytes.HasPrefix(req.Payload, []byte("fail")) {
			w.Error(StatusAppError, "handler rejected it")
			return
		}
		w.Reply(req.Payload)
	}})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	tcp, err := DialClient(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	inproc := s.NewClient()
	defer inproc.Close()

	for name, c := range map[string]Caller{"inproc": inproc, "tcp": tcp} {
		resp, err := c.Call([]byte("fail please"))
		if resp != nil {
			t.Fatalf("%s: error reply must carry no payload, got %q", name, resp)
		}
		var se *StatusError
		if !errors.As(err, &se) {
			t.Fatalf("%s: want *StatusError, got %v", name, err)
		}
		if se.Code != StatusAppError || se.Msg != "handler rejected it" {
			t.Fatalf("%s: got %+v", name, se)
		}
		if resp, err := c.Call([]byte("ok")); err != nil || string(resp) != "ok" {
			t.Fatalf("%s: success path broken after error: %q %v", name, resp, err)
		}
	}
}

// The acceptance test for deferred replies: pipelined requests on one
// connection where even-numbered requests detach and complete out of
// order — from foreign goroutines, with stealing active on 4 cores —
// must still be answered in request order.
func TestDetachOrderingUnderStealing(t *testing.T) {
	const n = 80
	type pendingReply struct {
		co  Completion
		idx uint64
	}
	detached := make(chan pendingReply, n)
	var stolen atomic.Uint64
	s := newEchoServer(t, Config{Cores: 4, Handler: func(w ResponseWriter, req *Request) {
		if req.Stolen {
			stolen.Add(1)
		}
		if req.Payload[0]%2 == 0 {
			detached <- pendingReply{co: w.Detach(), idx: uint64(req.Payload[0])}
			return
		}
		// Odd requests spin a little so the home worker stays busy and
		// idle workers steal.
		deadline := time.Now().Add(50 * time.Microsecond)
		for time.Now().Before(deadline) {
		}
		w.Reply(req.Payload)
	}})

	// Complete detached requests in reverse arrival order.
	go func() {
		var held []pendingReply
		for p := range detached {
			held = append(held, p)
			if len(held) == n/2 {
				for i := len(held) - 1; i >= 0; i-- {
					held[i].co.Reply([]byte{byte(held[i].idx)})
				}
				held = nil
			}
		}
	}()

	c := s.NewClient()
	defer c.Close()
	var mu sync.Mutex
	var order []byte
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		if err := c.SendAsync([]byte{byte(i)}, func(resp []byte, err error) {
			if err == nil && len(resp) == 1 {
				mu.Lock()
				order = append(order, resp[0])
				mu.Unlock()
			}
			done <- struct{}{}
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatalf("timed out after %d replies", i)
		}
	}
	close(detached)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != n {
		t.Fatalf("%d replies arrived, want %d", len(order), n)
	}
	for i, b := range order {
		if int(b) != i {
			t.Fatalf("reply %d carries payload %d: detached replies reordered (order=%v)", i, b, order)
		}
	}
}

// Middleware composes outermost-first, sees every request, and may
// annotate the shared *Request.
func TestMiddlewareChainOrder(t *testing.T) {
	var mu sync.Mutex
	var trace []string
	mw := func(name string) Middleware {
		return func(next Handler) Handler {
			return func(w ResponseWriter, req *Request) {
				mu.Lock()
				trace = append(trace, name)
				mu.Unlock()
				next(w, req)
			}
		}
	}
	s := newEchoServer(t, Config{Cores: 1})
	s.Use(mw("outer"))
	s.Use(mw("inner"))
	c := s.NewClient()
	defer c.Close()
	if _, err := c.Call([]byte("x")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(trace) != 2 || trace[0] != "outer" || trace[1] != "inner" {
		t.Fatalf("middleware ran in order %v, want [outer inner]", trace)
	}
}

// LatencyRecording populates Stats().Latency and Stats().QueueDelay,
// and follows detached requests to their actual completion.
func TestLatencyRecordingMiddleware(t *testing.T) {
	const detachDelay = 2 * time.Millisecond
	s := newEchoServer(t, Config{Cores: 2, Handler: func(w ResponseWriter, req *Request) {
		if bytes.Equal(req.Payload, []byte("slow")) {
			co := w.Detach()
			go func() {
				time.Sleep(detachDelay)
				co.Reply([]byte("slow done"))
			}()
			return
		}
		w.Reply(req.Payload)
	}})
	s.Use(s.LatencyRecording())
	c := s.NewClient()
	defer c.Close()
	for i := 0; i < 10; i++ {
		if _, err := c.Call([]byte("fast")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Call([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Latency.Count != 11 {
		t.Fatalf("latency count %d, want 11", st.Latency.Count)
	}
	if st.QueueDelay.Count != 11 {
		t.Fatalf("queue-delay count %d, want 11", st.QueueDelay.Count)
	}
	// The detached request's end-to-end latency must include its
	// detached time, so the observed max is at least detachDelay.
	if st.Latency.Max < detachDelay {
		t.Fatalf("latency max %v does not cover the detached completion (want >= %v)", st.Latency.Max, detachDelay)
	}
	if st.Latency.String() == "" {
		t.Fatal("snapshot must render")
	}
}

// AdmissionControl sheds excess load with StatusShed on the wire instead
// of queueing it, and releases depth when replies complete.
func TestAdmissionControlSheds(t *testing.T) {
	release := make(chan struct{})
	s := newEchoServer(t, Config{Cores: 1, Handler: func(w ResponseWriter, req *Request) {
		if bytes.Equal(req.Payload, []byte("block")) {
			co := w.Detach()
			go func() {
				<-release
				co.Reply([]byte("unblocked"))
			}()
			return
		}
		w.Reply(req.Payload)
	}})
	s.Use(s.AdmissionControl(1))

	blocker := s.NewClient()
	defer blocker.Close()
	blocked := make(chan error, 1)
	if err := blocker.SendAsync([]byte("block"), func(_ []byte, err error) { blocked <- err }); err != nil {
		t.Fatal(err)
	}
	// Wait until the blocker occupies the single admission slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Detached == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never detached")
		}
		time.Sleep(100 * time.Microsecond)
	}

	c := s.NewClient()
	defer c.Close()
	_, err := c.Call([]byte("shed me"))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != StatusShed {
		t.Fatalf("want StatusShed StatusError, got %v", err)
	}
	if got := s.Stats().Shed; got != 1 {
		t.Fatalf("Shed counter %d, want 1", got)
	}

	close(release)
	if err := <-blocked; err != nil {
		t.Fatalf("blocked request failed: %v", err)
	}
	// Slot released: the next request is admitted again.
	if resp, err := c.Call([]byte("fine now")); err != nil || string(resp) != "fine now" {
		t.Fatalf("post-release call: %q %v", resp, err)
	}
	if got := s.Stats().Shed; got != 1 {
		t.Fatalf("Shed counter %d after release, want still 1", got)
	}
}

// One-way sends execute on the server without producing a reply, over
// both transports.
func TestSendOneWay(t *testing.T) {
	var seen atomic.Int64
	s := newEchoServer(t, Config{Cores: 2, Handler: func(w ResponseWriter, req *Request) {
		if req.OneWay {
			seen.Add(1)
			// Reply on a one-way request is suppressed, not an error.
			if err := w.Reply([]byte("ignored")); err != nil {
				t.Errorf("one-way reply errored: %v", err)
			}
			return
		}
		w.Reply(req.Payload)
	}})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	tcp, err := DialClient(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	inproc := s.NewClient()
	defer inproc.Close()

	if err := inproc.SendOneWay([]byte("async-1")); err != nil {
		t.Fatal(err)
	}
	if err := tcp.SendOneWay([]byte("async-2")); err != nil {
		t.Fatal(err)
	}
	// Round trips on the same connections prove the one-ways executed
	// and nothing stray arrived in their place.
	if resp, err := inproc.Call([]byte("sync")); err != nil || string(resp) != "sync" {
		t.Fatalf("inproc follow-up: %q %v", resp, err)
	}
	if resp, err := tcp.Call([]byte("sync")); err != nil || string(resp) != "sync" {
		t.Fatalf("tcp follow-up: %q %v", resp, err)
	}
	if !s.Flush(5 * time.Second) {
		t.Fatal("flush timed out")
	}
	if got := seen.Load(); got != 2 {
		t.Fatalf("one-way handler ran %d times, want 2", got)
	}
}

// The legacy synchronous signature keeps working through the SyncHandler
// adapter, including its nil-means-no-reply convention.
func TestSyncHandlerAdapter(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 1, Handler: SyncHandler(func(req *Request) []byte {
		if bytes.Equal(req.Payload, []byte("quiet")) {
			return nil
		}
		return append([]byte("sync:"), req.Payload...)
	})})
	c := s.NewClient()
	defer c.Close()
	resp, err := c.Call([]byte("hi"))
	if err != nil || string(resp) != "sync:hi" {
		t.Fatalf("got %q %v", resp, err)
	}
	// nil return = one-way; a follow-up call proves no stray reply.
	if err := c.SendOneWay([]byte("quiet")); err != nil {
		t.Fatal(err)
	}
	if resp, err := c.Call([]byte("again")); err != nil || string(resp) != "sync:again" {
		t.Fatalf("got %q %v", resp, err)
	}
}

// Duplicate completions return ErrCompleted at the public API level.
func TestDuplicateCompletionErrCompleted(t *testing.T) {
	errs := make(chan error, 2)
	s := newEchoServer(t, Config{Cores: 1, Handler: func(w ResponseWriter, req *Request) {
		errs <- w.Reply([]byte("one"))
		errs <- w.Reply([]byte("two"))
	}})
	c := s.NewClient()
	defer c.Close()
	if resp, err := c.Call([]byte("x")); err != nil || string(resp) != "one" {
		t.Fatalf("got %q %v", resp, err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("first reply: %v", err)
	}
	if err := <-errs; !errors.Is(err, ErrCompleted) {
		t.Fatalf("second reply: got %v, want ErrCompleted", err)
	}
}

// A Caller-generic driver works identically over both transports — the
// contract zygos-loadgen and zygos-bench rely on.
func TestCallerGenericDriver(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)

	drive := func(c Caller) error {
		defer c.Close()
		for i := 0; i < 20; i++ {
			want := fmt.Sprintf("req-%d", i)
			resp, err := c.Call([]byte(want))
			if err != nil {
				return err
			}
			if string(resp) != want {
				return fmt.Errorf("got %q want %q", resp, want)
			}
		}
		return nil
	}

	if err := drive(s.NewClient()); err != nil {
		t.Fatalf("inproc: %v", err)
	}
	tcp, err := DialClient(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := drive(tcp); err != nil {
		t.Fatalf("tcp: %v", err)
	}
}

// Request metadata is populated for middleware: arrival time, queue
// delay, worker, stolen flag.
func TestRequestTimingMetadata(t *testing.T) {
	got := make(chan Request, 1)
	start := time.Now()
	s := newEchoServer(t, Config{Cores: 2, Handler: func(w ResponseWriter, req *Request) {
		select {
		case got <- *req:
		default:
		}
		w.Reply(req.Payload)
	}})
	c := s.NewClient()
	defer c.Close()
	if _, err := c.Call([]byte("t")); err != nil {
		t.Fatal(err)
	}
	req := <-got
	if req.ArrivedAt.Before(start) || req.ArrivedAt.After(time.Now()) {
		t.Fatalf("ArrivedAt %v out of range", req.ArrivedAt)
	}
	if req.QueueDelay < 0 || req.QueueDelay > time.Second {
		t.Fatalf("QueueDelay %v implausible", req.QueueDelay)
	}
	if req.OneWay {
		t.Fatal("two-way request marked one-way")
	}
}

// Payloads that cannot be represented in the v2 length field are
// rejected at send time, and oversized handler replies degrade to a
// wire error instead of corrupting the connection.
func TestOversizedPayloadRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates large payloads")
	}
	s := newEchoServer(t, Config{Cores: 1, Handler: func(w ResponseWriter, req *Request) {
		if bytes.Equal(req.Payload, []byte("grow")) {
			w.Reply(make([]byte, 1<<24)) // one byte past MaxPayloadV2
			return
		}
		w.Reply(req.Payload)
	}})
	c := s.NewClient()
	defer c.Close()

	if err := c.SendAsync(make([]byte, 1<<24), func([]byte, error) {}); !errors.Is(err, proto.ErrPayloadTooLarge) {
		t.Fatalf("oversized request: got %v, want ErrPayloadTooLarge", err)
	}
	if err := c.SendOneWay(make([]byte, 1<<24)); !errors.Is(err, proto.ErrPayloadTooLarge) {
		t.Fatalf("oversized one-way: got %v, want ErrPayloadTooLarge", err)
	}

	_, err := c.Call([]byte("grow"))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != StatusInternal {
		t.Fatalf("oversized reply: got %v, want StatusInternal StatusError", err)
	}
	// The connection survives intact.
	if resp, err := c.Call([]byte("ok")); err != nil || string(resp) != "ok" {
		t.Fatalf("connection broken after oversized reply: %q %v", resp, err)
	}
}

// Admission control must engage for purely synchronous workloads too:
// the shed signal is the runtime-wide backlog of parsed-but-unanswered
// events, not a count of running handlers (which the core count bounds).
func TestAdmissionControlShedsSyncBacklog(t *testing.T) {
	gate := make(chan struct{})
	var first atomic.Bool
	s := newEchoServer(t, Config{Cores: 1, Handler: func(w ResponseWriter, req *Request) {
		if first.CompareAndSwap(false, true) {
			<-gate // pin the only worker so the burst piles up behind it
		}
		w.Reply(req.Payload)
	}})
	const depth = 4
	s.Use(s.AdmissionControl(depth))
	c := s.NewClient()
	defer c.Close()

	const n = 64
	var shed, served atomic.Int64
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		if err := c.SendAsync([]byte("x"), func(_ []byte, err error) {
			var se *StatusError
			switch {
			case err == nil:
				served.Add(1)
			case errors.As(err, &se) && se.Code == StatusShed:
				shed.Add(1)
			}
			done <- struct{}{}
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatalf("timed out after %d replies", i)
		}
	}
	if shed.Load() == 0 {
		t.Fatal("synchronous burst shed nothing: admission control never engaged")
	}
	if served.Load() == 0 {
		t.Fatal("everything was shed")
	}
	if got := uint64(shed.Load()); s.Stats().Shed != got {
		t.Fatalf("Stats().Shed = %d, clients saw %d sheds", s.Stats().Shed, got)
	}
}
