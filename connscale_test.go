// Goroutine-budget proof for the readiness-poller transport: the
// server's goroutine count is O(pollers + accept shards), independent
// of connection count. A thousand idle connections must not add a
// thousand goroutines — or any per-connection goroutines at all.
package zygos

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestGoroutineBudgetIdleConns(t *testing.T) {
	if testing.Short() {
		t.Skip("1k connections in -short mode")
	}
	const conns = 1000

	srv, err := NewServer(Config{Cores: 2, Handler: func(w ResponseWriter, req *Request) {
		w.Reply(req.Payload)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	addr := l.Addr().String()

	// Warm the transport (pollers, sweeper, accept loop all running)
	// before taking the goroutine baseline.
	warm, err := DialClient(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Call([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	warm.Close()
	for srv.Stats().Net.Open != 0 {
		time.Sleep(time.Millisecond)
	}
	baseline := runtime.NumGoroutine()

	// Raw net.Conns on the client side so no client goroutines pollute
	// the count; the server side is what is being measured.
	raw := make([]net.Conn, 0, conns)
	defer func() {
		for _, nc := range raw {
			nc.Close()
		}
	}()
	var mu sync.Mutex
	var wg sync.WaitGroup
	var dialErr error
	sem := make(chan struct{}, 16)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if dialErr == nil {
					dialErr = err
				}
				return
			}
			raw = append(raw, nc)
		}()
	}
	wg.Wait()
	if dialErr != nil {
		t.Fatal(dialErr)
	}

	deadline := time.Now().Add(30 * time.Second)
	for srv.Stats().Net.Open != conns {
		if time.Now().After(deadline) {
			t.Fatalf("server registered %d/%d connections", srv.Stats().Net.Open, conns)
		}
		time.Sleep(10 * time.Millisecond)
	}

	grew := runtime.NumGoroutine() - baseline
	if grew > 8 {
		t.Fatalf("%d idle connections grew the goroutine count by %d; "+
			"the transport budget is O(pollers+shards), not O(conns)", conns, grew)
	}

	// The transport is still live under the load: a fresh client gets a
	// round trip through the same pollers.
	c, err := DialClient(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Call([]byte("ping")); err != nil || string(resp) != "ping" {
		t.Fatalf("echo under 1k idle conns: %q %v", resp, err)
	}
}
