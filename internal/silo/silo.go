// Package silo is an in-memory transactional database in the style of
// Silo (Tu et al., SOSP '13), the system the ZygOS paper uses for its
// TPC-C evaluation: optimistic concurrency control with an epoch-based
// commit protocol over an ordered concurrent index (internal/silo/btree
// standing in for Masstree).
//
// The commit protocol follows Silo §4:
//
//  1. lock the write set in deterministic (table, key) order, installing
//     locked "absent" placeholders for inserts;
//  2. take an epoch fence;
//  3. validate the read set — every record read must have an unchanged
//     version and must not be locked by another transaction — and the
//     node set: every index leaf observed by a scan or an absent read
//     must be unmodified (phantom protection);
//  4. pick a TID greater than every observed TID, in the current epoch;
//  5. apply writes, stamping the new TID, and release locks.
//
// Lock acquisition uses try-lock with abort-and-retry instead of Silo's
// spinning, which cannot deadlock and suits an OCC retry loop. As in the
// ZygOS paper's evaluation (§6.3.1), epoch-based garbage collection is
// out of scope: deleted records are unlinked from the index and reclaimed
// by the Go collector once concurrent readers drain.
package silo

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zygos/internal/silo/btree"
)

// ErrConflict aborts a transaction whose read set, node set, or write
// locks failed validation; callers retry (see Run).
var ErrConflict = errors.New("silo: transaction conflict")

// ErrUserAbort is returned by Run when the transaction body requested a
// rollback (e.g., TPC-C's 1% intentionally-aborted NewOrder transactions).
var ErrUserAbort = errors.New("silo: user abort")

// TID word layout: [epoch:23][sequence:38][dead:1][absent:1][lock:1].
const (
	lockBit    = uint64(1)
	absentBit  = uint64(2)
	deadBit    = uint64(4)
	seqShift   = 3
	epochShift = 41
	seqMask    = (uint64(1) << (epochShift - seqShift)) - 1
)

func packTID(epoch, seq uint64) uint64 {
	return epoch<<epochShift | seq<<seqShift
}

// versionOf strips the lock bit; the comparable version keeps the absent
// and dead bits (observing a record live and validating it deleted must
// fail, and vice versa).
func versionOf(word uint64) uint64 { return word &^ lockBit }

// Record is one row version holder: the value is replaced wholesale on
// write (installed rows are immutable) and the TID word carries Silo's
// version protocol.
type Record struct {
	tid atomic.Uint64
	val atomic.Value // holds rowBox
}

// rowBox wraps row values so atomic.Value accepts differing concrete
// types, including nil rows in placeholders.
type rowBox struct{ v any }

// stableRead returns a consistent (value, word) snapshot via the seqlock
// pattern of Silo §4.2.1. Dead records (rolled-back insert placeholders)
// are permanently locked and returned as-is; their version can never
// validate.
//
// Unlike Silo's pinned cores, Go goroutines can be descheduled while
// holding a record lock, so the spin yields to the scheduler after a few
// iterations: without the yield, spinning readers can occupy every CPU
// and starve the very writer they are waiting for.
func (r *Record) stableRead() (any, uint64) {
	for spins := 0; ; spins++ {
		w1 := r.tid.Load()
		if w1&deadBit != 0 {
			return nil, w1
		}
		if w1&lockBit != 0 {
			if spins > 16 {
				runtime.Gosched()
			}
			continue // a committer is installing; the window is tiny
		}
		box, _ := r.val.Load().(rowBox)
		w2 := r.tid.Load()
		if w1 == w2 {
			return box.v, w1
		}
	}
}

func (r *Record) tryLock() bool {
	w := r.tid.Load()
	return w&(lockBit|deadBit) == 0 && r.tid.CompareAndSwap(w, w|lockBit)
}

func (r *Record) unlock() {
	for {
		w := r.tid.Load()
		if r.tid.CompareAndSwap(w, w&^lockBit) {
			return
		}
	}
}

// Table is one named, ordered tree of records.
type Table struct {
	name string
	idx  *btree.Tree
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Len returns the number of index entries (including not-yet-collected
// absent records).
func (t *Table) Len() int { return t.idx.Len() }

// LoadInsert installs a row non-transactionally. It is the bulk-load path
// for benchmark population and must not run concurrently with
// transactions on the same key space.
func (t *Table) LoadInsert(key []byte, row any) {
	rec := &Record{}
	rec.val.Store(rowBox{v: row})
	rec.tid.Store(packTID(1, 0))
	t.idx.Put(key, rec)
}

// DB is a Silo-style in-memory database.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table

	epoch   atomic.Uint64
	stopGen chan struct{}
	genOnce sync.Once

	tidMu    sync.Mutex
	lastTIDs map[int]*uint64

	commits atomic.Uint64
	aborts  atomic.Uint64
}

// NewDB returns an empty database with the epoch counter running.
// epochInterval controls advancement (Silo uses 40ms); zero selects 10ms.
func NewDB(epochInterval time.Duration) *DB {
	if epochInterval <= 0 {
		epochInterval = 10 * time.Millisecond
	}
	db := &DB{
		tables:   make(map[string]*Table),
		stopGen:  make(chan struct{}),
		lastTIDs: make(map[int]*uint64),
	}
	db.epoch.Store(1)
	go func() {
		t := time.NewTicker(epochInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				db.epoch.Add(1)
			case <-db.stopGen:
				return
			}
		}
	}()
	return db
}

// Close stops the epoch generator.
func (db *DB) Close() {
	db.genOnce.Do(func() { close(db.stopGen) })
}

// Epoch returns the current global epoch.
func (db *DB) Epoch() uint64 { return db.epoch.Load() }

// Stats returns cumulative commit and abort counts.
func (db *DB) Stats() (commits, aborts uint64) {
	return db.commits.Load(), db.aborts.Load()
}

// CreateTable registers a table; creating an existing table is an error.
func (db *DB) CreateTable(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("silo: table %q exists", name)
	}
	t := &Table{name: name, idx: btree.New()}
	db.tables[name] = t
	return t, nil
}

// MustTable returns a registered table, panicking if absent (schema
// errors are programming errors).
func (db *DB) MustTable(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		panic(fmt.Sprintf("silo: unknown table %q", name))
	}
	return t
}

func (db *DB) lastTIDSlot(worker int) *uint64 {
	db.tidMu.Lock()
	defer db.tidMu.Unlock()
	p, ok := db.lastTIDs[worker]
	if !ok {
		p = new(uint64)
		db.lastTIDs[worker] = p
	}
	return p
}

// writeKind distinguishes write-set entries.
type writeKind int

const (
	writeUpdate writeKind = iota // upsert
	writeInsert                  // must not exist as a live row
	writeDelete
)

type writeEntry struct {
	table *Table
	key   []byte
	kind  writeKind
	val   any
	rec   *Record
	added bool // this txn installed the index placeholder
}

type readEntry struct {
	rec  *Record
	word uint64
}

// Txn is one transaction. A Txn is used by a single goroutine.
type Txn struct {
	db     *DB
	worker int

	reads    []readEntry
	readIdx  map[*Record]struct{}
	writes   []writeEntry
	writeIdx map[string]int
	nodes    []btree.NodeVersion
	lastTID  *uint64
	done     bool
}

// Begin starts a transaction attributed to the given worker (core) index,
// which keeps that worker's TIDs monotonic as Silo requires.
func (db *DB) Begin(worker int) *Txn {
	return &Txn{
		db:       db,
		worker:   worker,
		readIdx:  make(map[*Record]struct{}),
		writeIdx: make(map[string]int),
		lastTID:  db.lastTIDSlot(worker),
	}
}

func wkey(t *Table, key []byte) string {
	return t.name + "\x00" + string(key)
}

// Get returns the row stored under key, observing the transaction's own
// buffered writes first.
func (t *Txn) Get(tbl *Table, key []byte) (any, bool) {
	if i, ok := t.writeIdx[wkey(tbl, key)]; ok {
		w := t.writes[i]
		if w.kind == writeDelete {
			return nil, false
		}
		return w.val, true
	}
	v, found, nv := tbl.idx.GetVersioned(key)
	if !found {
		// Absent read: remember the leaf so a racing insert aborts us.
		t.nodes = append(t.nodes, nv)
		return nil, false
	}
	rec := v.(*Record)
	row, word := rec.stableRead()
	t.trackRead(rec, word)
	if word&(absentBit|deadBit) != 0 {
		return nil, false
	}
	return row, true
}

func (t *Txn) trackRead(rec *Record, word uint64) {
	if _, ok := t.readIdx[rec]; ok {
		// Keep the first observation; if the record changed in between,
		// validation fails on that first word anyway.
		return
	}
	t.readIdx[rec] = struct{}{}
	t.reads = append(t.reads, readEntry{rec: rec, word: word})
}

// Put buffers an upsert.
func (t *Txn) Put(tbl *Table, key []byte, row any) {
	t.bufferWrite(tbl, key, writeUpdate, row)
}

// Insert buffers the insertion of a key expected to be new. A live row
// under the key at commit time is treated as a conflict: under OCC retry
// semantics a racing insert invalidates whatever read justified the key
// choice.
func (t *Txn) Insert(tbl *Table, key []byte, row any) {
	t.bufferWrite(tbl, key, writeInsert, row)
}

// Delete buffers the removal of a key.
func (t *Txn) Delete(tbl *Table, key []byte) {
	t.bufferWrite(tbl, key, writeDelete, nil)
}

func (t *Txn) bufferWrite(tbl *Table, key []byte, kind writeKind, row any) {
	k := wkey(tbl, key)
	if i, ok := t.writeIdx[k]; ok {
		t.writes[i].kind = kind
		t.writes[i].val = row
		return
	}
	t.writeIdx[k] = len(t.writes)
	t.writes = append(t.writes, writeEntry{
		table: tbl,
		key:   append([]byte(nil), key...),
		kind:  kind,
		val:   row,
	})
}

// Scan visits live rows with keys in [from, to) in ascending order,
// observing the transaction's own buffered updates and deletes for keys
// already in the index. fn returning false stops the scan. Touched index
// leaves join the node set for commit-time phantom validation. Rows
// buffered by this transaction's own Inserts are not visited (they are
// not in the index until commit).
func (t *Txn) Scan(tbl *Table, from, to []byte, fn func(key []byte, row any) bool) {
	nvs := tbl.idx.Scan(from, to, func(key []byte, v any) bool {
		rec := v.(*Record)
		if i, ok := t.writeIdx[wkey(tbl, key)]; ok {
			w := t.writes[i]
			if w.kind == writeDelete {
				return true
			}
			return fn(key, w.val)
		}
		row, word := rec.stableRead()
		t.trackRead(rec, word)
		if word&(absentBit|deadBit) != 0 {
			return true
		}
		return fn(key, row)
	})
	t.nodes = append(t.nodes, nvs...)
}

// Commit runs the Silo commit protocol. On ErrConflict all effects have
// been rolled back and the transaction may be retried.
func (t *Txn) Commit() error {
	if t.done {
		return errors.New("silo: transaction already finished")
	}
	t.done = true

	// Phase 1: lock the write set in deterministic order.
	order := make([]int, len(t.writes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		wa, wb := &t.writes[order[a]], &t.writes[order[b]]
		if wa.table.name != wb.table.name {
			return wa.table.name < wb.table.name
		}
		return bytes.Compare(wa.key, wb.key) < 0
	})

	var locked []*writeEntry
	abort := func() error {
		t.releaseLocked(locked)
		t.db.aborts.Add(1)
		return ErrConflict
	}

	for _, oi := range order {
		w := &t.writes[oi]
		if !t.resolveAndLock(w) {
			return abort()
		}
		locked = append(locked, w)
		if w.kind == writeInsert && !w.added && w.rec.tid.Load()&absentBit == 0 {
			// A live row already exists under this key.
			return abort()
		}
	}

	// Fence: the serialization epoch.
	epoch := t.db.epoch.Load()

	// Phase 2: validate the read set and node set.
	for _, re := range t.reads {
		w := re.rec.tid.Load()
		if versionOf(w) != versionOf(re.word) {
			return abort()
		}
		if w&lockBit != 0 && !t.inWriteSet(re.rec) {
			return abort()
		}
	}
	for _, nv := range t.nodes {
		if !nv.Validate() {
			return abort()
		}
	}

	// Phase 3: compute the TID and install the writes.
	maxSeen := *t.lastTID
	for _, re := range t.reads {
		if v := versionOf(re.word); v > maxSeen {
			maxSeen = v
		}
	}
	for i := range t.writes {
		if v := versionOf(t.writes[i].rec.tid.Load()); v > maxSeen {
			maxSeen = v
		}
	}
	seq := (maxSeen >> seqShift) & seqMask
	tidEpoch := maxSeen >> epochShift
	if epoch > tidEpoch {
		tidEpoch, seq = epoch, 0
	} else {
		seq++
	}
	newTID := packTID(tidEpoch, seq)
	*t.lastTID = newTID

	for _, oi := range order {
		w := &t.writes[oi]
		switch w.kind {
		case writeDelete:
			// Publish the deletion (absent, unlocked), then unlink the key.
			// Readers holding the record pointer see the absent version;
			// the leaf version bump aborts overlapping scanners.
			w.rec.val.Store(rowBox{})
			w.rec.tid.Store(newTID | absentBit)
			w.table.idx.Delete(w.key)
		default:
			w.rec.val.Store(rowBox{v: w.val})
			w.rec.tid.Store(newTID) // publishes and unlocks
		}
	}
	t.db.commits.Add(1)
	return nil
}

// resolveAndLock binds the write entry to its record, installing a locked
// absent placeholder for keys not yet in the index, and acquires the
// record lock. It reports false on lock failure.
func (t *Txn) resolveAndLock(w *writeEntry) bool {
	v, found := w.table.idx.Get(w.key)
	if found {
		w.rec = v.(*Record)
		return w.rec.tryLock()
	}
	if w.kind == writeDelete {
		// Deleting a key that is gone: the read justifying the delete is
		// stale.
		return false
	}
	rec := &Record{}
	rec.val.Store(rowBox{})
	rec.tid.Store(absentBit | lockBit)
	prev, existed := w.table.idx.PutIfAbsent(w.key, rec)
	if existed {
		w.rec = prev.(*Record)
		return w.rec.tryLock()
	}
	w.rec = rec
	w.added = true
	return true
}

// releaseLocked rolls back phase-1 effects: locked pre-existing records
// are unlocked; placeholders this transaction installed are unlinked and
// poisoned (left permanently locked+dead) so that racing transactions
// holding the stale pointer abort instead of writing to a dangling
// record.
func (t *Txn) releaseLocked(locked []*writeEntry) {
	for _, w := range locked {
		if w.added {
			w.rec.tid.Store(absentBit | deadBit | lockBit)
			w.table.idx.Delete(w.key)
			w.added = false
			continue
		}
		w.rec.unlock()
	}
}

func (t *Txn) inWriteSet(rec *Record) bool {
	for i := range t.writes {
		if t.writes[i].rec == rec {
			return true
		}
	}
	return false
}

// Abort rolls back a transaction that has not committed. Buffered writes
// are discarded; nothing was installed (phase 1 only runs inside Commit).
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.db.aborts.Add(1)
}

// Run executes fn in a transaction, retrying on ErrConflict up to
// maxRetries (≤0 selects 100). fn returning ErrUserAbort rolls back and
// returns ErrUserAbort without retrying; any other error from fn aborts
// and is returned as-is.
//
// Retries back off quadratically after the first few attempts. Without
// backoff, scan-heavy transactions (TPC-C Delivery, StockLevel) livelock
// against a stream of inserts invalidating their node sets: every retry
// re-scans, gets invalidated again, and burns a core. A short randomized
// pause lets the conflicting insert stream drain past.
func (db *DB) Run(worker, maxRetries int, fn func(tx *Txn) error) error {
	if maxRetries <= 0 {
		maxRetries = 100
	}
	for attempt := 0; attempt < maxRetries; attempt++ {
		tx := db.Begin(worker)
		if err := fn(tx); err != nil {
			tx.Abort()
			return err
		}
		err := tx.Commit()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrConflict) {
			return err
		}
		if attempt >= 2 {
			pause := time.Duration(attempt*attempt) * 3 * time.Microsecond
			if pause > 300*time.Microsecond {
				pause = 300 * time.Microsecond
			}
			time.Sleep(pause)
		}
	}
	return fmt.Errorf("silo: transaction starved after %d retries: %w", maxRetries, ErrConflict)
}
