// Package btree implements the ordered index underneath the Silo-style
// transaction engine: a concurrent B+-tree with per-node reader/writer
// lock coupling ("crabbing") and linked leaves for range scans.
//
// It stands in for Silo's Masstree. Two Masstree properties matter to the
// transaction protocol and are preserved here:
//
//   - concurrent readers and writers without a global lock, and
//   - per-leaf version counters, bumped on every structural or membership
//     change, which the engine's commit protocol re-validates to prevent
//     phantoms (Silo §4.5).
//
// Deletions remove keys from leaves but never merge nodes (the classical
// simplification, also used by several production B-trees); lookups and
// scans remain correct, underfull leaves are simply tolerated.
package btree

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// maxKeys is the node fan-out. 32 keeps trees shallow while exercising
// splits heavily in tests.
const maxKeys = 32

// node is both internal node and leaf. For internal nodes children[i]
// holds keys < keys[i] (children has len(keys)+1 entries). For leaves,
// vals[i] corresponds to keys[i] and next links the right sibling.
type node struct {
	mu      sync.RWMutex
	leaf    bool
	keys    [][]byte
	childs  []*node
	vals    []any
	next    *node
	version atomic.Uint64 // bumped on every leaf membership change
}

// Tree is a concurrent B+-tree mapping byte-string keys to values.
type Tree struct {
	root  atomic.Pointer[node]
	count atomic.Int64
}

// New returns an empty tree.
func New() *Tree {
	t := &Tree{}
	t.root.Store(&node{leaf: true})
	return t
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return int(t.count.Load()) }

// NodeVersion is a leaf snapshot captured during reads; the transaction
// engine revalidates these at commit to detect phantoms.
type NodeVersion struct {
	n *node
	v uint64
}

// Validate reports whether the leaf is unchanged since capture.
func (nv NodeVersion) Validate() bool { return nv.n.version.Load() == nv.v }

// lockedRoot returns the current root with the requested lock held,
// retrying if a root split swapped the pointer in between.
func (t *Tree) lockedRoot(write bool) *node {
	for {
		r := t.root.Load()
		if write {
			r.mu.Lock()
		} else {
			r.mu.RLock()
		}
		if t.root.Load() == r {
			return r
		}
		if write {
			r.mu.Unlock()
		} else {
			r.mu.RUnlock()
		}
	}
}

// search returns the index of the first key >= k, and whether it equals k.
func search(keys [][]byte, k []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	eq := lo < len(keys) && bytes.Equal(keys[lo], k)
	return lo, eq
}

// childIndex returns which child to descend into for key k.
func childIndex(keys [][]byte, k []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(k, keys[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// descendRead crabs read locks from the root to the leaf containing k and
// returns the leaf, read-locked.
func (t *Tree) descendRead(k []byte) *node {
	n := t.lockedRoot(false)
	for !n.leaf {
		c := n.childs[childIndex(n.keys, k)]
		c.mu.RLock()
		n.mu.RUnlock()
		n = c
	}
	return n
}

// Get returns the value stored under k.
func (t *Tree) Get(k []byte) (any, bool) {
	n := t.descendRead(k)
	defer n.mu.RUnlock()
	i, eq := search(n.keys, k)
	if !eq {
		return nil, false
	}
	return n.vals[i], true
}

// GetVersioned is Get plus the leaf version snapshot, so absent reads can
// be revalidated at commit (phantom protection for point misses).
func (t *Tree) GetVersioned(k []byte) (any, bool, NodeVersion) {
	n := t.descendRead(k)
	defer n.mu.RUnlock()
	nv := NodeVersion{n: n, v: n.version.Load()}
	i, eq := search(n.keys, k)
	if !eq {
		return nil, false, nv
	}
	return n.vals[i], true, nv
}

// Put inserts or replaces the value under k, returning the previous value
// if any. The key is copied.
func (t *Tree) Put(k []byte, v any) (prev any, existed bool) {
	leaf, locked := t.descendWrite(k)
	i, eq := search(leaf.keys, k)
	if eq {
		prev = leaf.vals[i]
		leaf.vals[i] = v
		leaf.version.Add(1)
		unlockAll(locked)
		return prev, true
	}
	kc := append([]byte(nil), k...)
	leaf.keys = insertKey(leaf.keys, i, kc)
	leaf.vals = insertVal(leaf.vals, i, v)
	leaf.version.Add(1)
	t.count.Add(1)
	if len(leaf.keys) > maxKeys {
		t.splitUp(locked)
	}
	unlockAll(locked)
	return nil, false
}

// PutIfAbsent inserts v under k only if k is not present. It returns the
// value that is in the tree after the call and whether it was already
// there. The key is copied.
func (t *Tree) PutIfAbsent(k []byte, v any) (cur any, existed bool) {
	leaf, locked := t.descendWrite(k)
	i, eq := search(leaf.keys, k)
	if eq {
		cur = leaf.vals[i]
		unlockAll(locked)
		return cur, true
	}
	kc := append([]byte(nil), k...)
	leaf.keys = insertKey(leaf.keys, i, kc)
	leaf.vals = insertVal(leaf.vals, i, v)
	leaf.version.Add(1)
	t.count.Add(1)
	if len(leaf.keys) > maxKeys {
		t.splitUp(locked)
	}
	unlockAll(locked)
	return v, false
}

// Delete removes k, reporting whether it was present. Nodes are never
// merged; structure above leaves only grows.
func (t *Tree) Delete(k []byte) bool {
	// Descend with read crabbing to the leaf's parent, then write-lock the
	// leaf. Lock order stays strictly top-down, so this cannot deadlock
	// with inserts (which take write locks top-down).
	n := t.lockedRoot(false)
	if n.leaf {
		// Single-node tree: upgrade by restarting with a write lock.
		n.mu.RUnlock()
		return t.deleteRootLeaf(k)
	}
	for {
		c := n.childs[childIndex(n.keys, k)]
		if c.leaf {
			c.mu.Lock()
			n.mu.RUnlock()
			ok := deleteFromLeaf(c, k)
			if ok {
				t.count.Add(-1)
			}
			c.mu.Unlock()
			return ok
		}
		c.mu.RLock()
		n.mu.RUnlock()
		n = c
	}
}

func (t *Tree) deleteRootLeaf(k []byte) bool {
	for {
		r := t.root.Load()
		r.mu.Lock()
		if t.root.Load() != r {
			r.mu.Unlock()
			continue
		}
		ok := false
		if r.leaf {
			ok = deleteFromLeaf(r, k)
			if ok {
				t.count.Add(-1)
			}
			r.mu.Unlock()
			return ok
		}
		// The root grew an internal level since we looked: retry the
		// general path.
		r.mu.Unlock()
		return t.Delete(k)
	}
}

func deleteFromLeaf(leaf *node, k []byte) bool {
	i, eq := search(leaf.keys, k)
	if !eq {
		return false
	}
	leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
	leaf.vals = append(leaf.vals[:i], leaf.vals[i+1:]...)
	leaf.version.Add(1)
	return true
}

// descendWrite locks the path needed for an insert: write locks crab from
// the root, releasing ancestors once the child has room for a split key.
// It returns the leaf and the list of still-locked nodes (root-first,
// leaf last).
func (t *Tree) descendWrite(k []byte) (*node, []*node) {
	n := t.lockedRoot(true)
	locked := []*node{n}
	for !n.leaf {
		c := n.childs[childIndex(n.keys, k)]
		c.mu.Lock()
		if len(c.keys) < maxKeys { // child cannot split its parent
			unlockAll(locked)
			locked = locked[:0]
		}
		locked = append(locked, c)
		n = c
	}
	return n, locked
}

func unlockAll(nodes []*node) {
	for _, n := range nodes {
		n.mu.Unlock()
	}
}

// splitUp splits the overfull tail of the locked path, propagating
// separators upward. All nodes in locked are write-locked, root-first.
func (t *Tree) splitUp(locked []*node) {
	for i := len(locked) - 1; i >= 0; i-- {
		n := locked[i]
		if len(n.keys) <= maxKeys {
			return
		}
		sep, right := splitNode(n)
		if i > 0 {
			parent := locked[i-1]
			j := childIndex(parent.keys, sep)
			parent.keys = insertKey(parent.keys, j, sep)
			parent.childs = insertChild(parent.childs, j+1, right)
			continue
		}
		// Root split: grow a new root. n is the current root (validated
		// under its lock in lockedRoot), so the swap is safe.
		newRoot := &node{
			keys:   [][]byte{sep},
			childs: []*node{n, right},
		}
		t.root.Store(newRoot)
	}
}

// splitNode splits an overfull node in half, returning the separator key
// and the new right sibling.
func splitNode(n *node) ([]byte, *node) {
	mid := len(n.keys) / 2
	right := &node{leaf: n.leaf}
	if n.leaf {
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		right.next = n.next
		n.next = right
		n.version.Add(1)
		right.version.Add(1)
		sep := append([]byte(nil), right.keys[0]...)
		return sep, right
	}
	sep := n.keys[mid]
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.childs = append(right.childs, n.childs[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.childs = n.childs[: mid+1 : mid+1]
	return sep, right
}

func insertKey(keys [][]byte, i int, k []byte) [][]byte {
	keys = append(keys, nil)
	copy(keys[i+1:], keys[i:])
	keys[i] = k
	return keys
}

func insertVal(vals []any, i int, v any) []any {
	vals = append(vals, nil)
	copy(vals[i+1:], vals[i:])
	vals[i] = v
	return vals
}

func insertChild(childs []*node, i int, c *node) []*node {
	childs = append(childs, nil)
	copy(childs[i+1:], childs[i:])
	childs[i] = c
	return childs
}

// Scan visits keys in [from, to) in ascending order, calling fn for each;
// fn returning false stops the scan. It returns the leaf versions touched,
// for commit-time phantom validation. A nil to scans to the end.
func (t *Tree) Scan(from, to []byte, fn func(k []byte, v any) bool) []NodeVersion {
	var versions []NodeVersion
	n := t.descendRead(from)
	for {
		versions = append(versions, NodeVersion{n: n, v: n.version.Load()})
		i, _ := search(n.keys, from)
		for ; i < len(n.keys); i++ {
			if to != nil && bytes.Compare(n.keys[i], to) >= 0 {
				n.mu.RUnlock()
				return versions
			}
			if !fn(n.keys[i], n.vals[i]) {
				n.mu.RUnlock()
				return versions
			}
		}
		next := n.next
		if next == nil {
			n.mu.RUnlock()
			return versions
		}
		next.mu.RLock()
		n.mu.RUnlock()
		n = next
	}
}
