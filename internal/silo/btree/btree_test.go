package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func k(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestPutGet(t *testing.T) {
	tr := New()
	if _, ok := tr.Get(k(1)); ok {
		t.Fatal("empty tree must miss")
	}
	prev, existed := tr.Put(k(1), "a")
	if existed || prev != nil {
		t.Fatal("fresh insert must not report previous")
	}
	v, ok := tr.Get(k(1))
	if !ok || v != "a" {
		t.Fatalf("got %v %v", v, ok)
	}
	prev, existed = tr.Put(k(1), "b")
	if !existed || prev != "a" {
		t.Fatalf("replace: prev=%v existed=%v", prev, existed)
	}
	if v, _ := tr.Get(k(1)); v != "b" {
		t.Fatal("replace did not take")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestManyInsertsSplits(t *testing.T) {
	tr := New()
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Put(k(i), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len=%d want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(k(i))
		if !ok || v != i {
			t.Fatalf("key %d: got %v %v", i, v, ok)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Put(k(i), i)
	}
	for i := 0; i < 1000; i += 2 {
		if !tr.Delete(k(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Delete(k(0)) {
		t.Fatal("double delete must fail")
	}
	if tr.Len() != 500 {
		t.Fatalf("Len=%d want 500", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		_, ok := tr.Get(k(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d present=%v want %v", i, ok, want)
		}
	}
}

func TestDeleteOnRootLeaf(t *testing.T) {
	tr := New()
	tr.Put(k(1), 1)
	tr.Put(k(2), 2)
	if !tr.Delete(k(1)) || tr.Delete(k(1)) {
		t.Fatal("root-leaf delete semantics broken")
	}
	if tr.Len() != 1 {
		t.Fatal("Len wrong")
	}
}

func TestScanRange(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Put(k(i*2), i*2) // even keys only
	}
	var got []int
	tr.Scan(k(100), k(200), func(key []byte, v any) bool {
		got = append(got, v.(int))
		return true
	})
	want := 0
	for i := 100; i < 200; i += 2 {
		if got[want] != i {
			t.Fatalf("scan[%d]=%d want %d", want, got[want], i)
		}
		want++
	}
	if len(got) != want {
		t.Fatalf("scan returned %d keys want %d", len(got), want)
	}
}

func TestScanEarlyStopAndOpenEnd(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(k(i), i)
	}
	var got []int
	tr.Scan(k(90), nil, func(key []byte, v any) bool {
		got = append(got, v.(int))
		return len(got) < 5
	})
	if len(got) != 5 || got[0] != 90 || got[4] != 94 {
		t.Fatalf("got %v", got)
	}
}

func TestScanOrdering(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		tr.Put(k(rng.Intn(100000)), i)
	}
	var prev []byte
	tr.Scan(nil, nil, func(key []byte, v any) bool {
		if prev != nil && bytes.Compare(prev, key) >= 0 {
			t.Fatal("scan out of order")
		}
		prev = append(prev[:0], key...)
		return true
	})
}

func TestNodeVersionChangesOnMutation(t *testing.T) {
	tr := New()
	tr.Put(k(1), 1)
	_, _, nv := tr.GetVersioned(k(2)) // absent read
	if !nv.Validate() {
		t.Fatal("fresh version must validate")
	}
	tr.Put(k(2), 2) // phantom insert into the same leaf
	if nv.Validate() {
		t.Fatal("insert into scanned leaf must invalidate version")
	}
}

func TestScanVersionsDetectPhantom(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i += 2 {
		tr.Put(k(i), i)
	}
	versions := tr.Scan(k(10), k(30), func([]byte, any) bool { return true })
	ok := true
	for _, nv := range versions {
		ok = ok && nv.Validate()
	}
	if !ok {
		t.Fatal("unmodified scan must validate")
	}
	tr.Put(k(11), 11) // phantom in range
	ok = true
	for _, nv := range versions {
		ok = ok && nv.Validate()
	}
	if ok {
		t.Fatal("phantom insert must invalidate a scanned leaf version")
	}
}

func TestKeyCopied(t *testing.T) {
	tr := New()
	key := []byte{1, 2, 3}
	tr.Put(key, "v")
	key[0] = 9 // mutate caller's buffer
	if _, ok := tr.Get([]byte{1, 2, 3}); !ok {
		t.Fatal("tree must copy keys on insert")
	}
}

// Property: the tree agrees with a reference map under random ops.
func TestMatchesReferenceMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		tr := New()
		ref := map[string]int{}
		rng := rand.New(rand.NewSource(seed))
		for opIdx, raw := range ops {
			key := k(int(raw % 512))
			switch rng.Intn(3) {
			case 0:
				tr.Put(key, opIdx)
				ref[string(key)] = opIdx
			case 1:
				got := tr.Delete(key)
				_, want := ref[string(key)]
				if got != want {
					return false
				}
				delete(ref, string(key))
			default:
				v, ok := tr.Get(key)
				want, wok := ref[string(key)]
				if ok != wok || (ok && v.(int) != want) {
					return false
				}
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		// Full scan must equal sorted reference.
		var keys []string
		for s := range ref {
			keys = append(keys, s)
		}
		sort.Strings(keys)
		i := 0
		okScan := true
		tr.Scan(nil, nil, func(key []byte, v any) bool {
			if i >= len(keys) || string(key) != keys[i] || v.(int) != ref[keys[i]] {
				okScan = false
				return false
			}
			i++
			return true
		})
		return okScan && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Concurrency: parallel writers on disjoint key ranges plus concurrent
// readers and scanners. Run under -race.
func TestConcurrentDisjointWriters(t *testing.T) {
	tr := New()
	const writers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Put(k(w*per+i), w)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			tr.Scan(nil, nil, func([]byte, any) bool { return true })
		}
	}()
	wg.Wait()
	<-done
	if tr.Len() != writers*per {
		t.Fatalf("Len=%d want %d", tr.Len(), writers*per)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < per; i++ {
			if v, ok := tr.Get(k(w*per + i)); !ok || v != w {
				t.Fatalf("key %d lost", w*per+i)
			}
		}
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	tr := New()
	for i := 0; i < 4096; i++ {
		tr.Put(k(i), i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 3000; i++ {
				key := k(rng.Intn(8192))
				switch rng.Intn(4) {
				case 0:
					tr.Put(key, g)
				case 1:
					tr.Delete(key)
				case 2:
					tr.Get(key)
				default:
					n := 0
					tr.Scan(key, nil, func([]byte, any) bool {
						n++
						return n < 20
					})
				}
			}
		}(g)
	}
	wg.Wait()
	// Structural sanity: scan visits Len() keys in order.
	n := 0
	var prev []byte
	tr.Scan(nil, nil, func(key []byte, v any) bool {
		if prev != nil && bytes.Compare(prev, key) >= 0 {
			t.Fatal("order violated after concurrent ops")
		}
		prev = append(prev[:0], key...)
		n++
		return true
	})
	if n != tr.Len() {
		t.Fatalf("scan saw %d keys, Len()=%d", n, tr.Len())
	}
}

func TestStringKeys(t *testing.T) {
	tr := New()
	words := []string{"pear", "apple", "fig", "banana", "cherry", "fig2"}
	for i, w := range words {
		tr.Put([]byte(w), i)
	}
	var got []string
	tr.Scan([]byte("b"), []byte("g"), func(key []byte, v any) bool {
		got = append(got, string(key))
		return true
	})
	want := []string{"banana", "cherry", "fig", "fig2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Put(k(i), i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := 0; i < 100000; i++ {
		tr.Put(k(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(k(i % 100000))
	}
}
