package silo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func newDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB(time.Millisecond)
	t.Cleanup(db.Close)
	return db
}

func TestBasicCommit(t *testing.T) {
	db := newDB(t)
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin(0)
	tx.Insert(tbl, key(1), "v1")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin(0)
	v, ok := tx.Get(tbl, key(1))
	if !ok || v != "v1" {
		t.Fatalf("got %v %v", v, ok)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c, a := db.Stats()
	if c != 2 || a != 0 {
		t.Fatalf("stats %d/%d", c, a)
	}
}

func TestReadOwnWrites(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable("t")
	tx := db.Begin(0)
	tx.Insert(tbl, key(1), "a")
	if v, ok := tx.Get(tbl, key(1)); !ok || v != "a" {
		t.Fatal("must read own insert")
	}
	tx.Put(tbl, key(1), "b")
	if v, _ := tx.Get(tbl, key(1)); v != "b" {
		t.Fatal("must read own update")
	}
	tx.Delete(tbl, key(1))
	if _, ok := tx.Get(tbl, key(1)); ok {
		t.Fatal("must observe own delete")
	}
	tx.Abort()
}

func TestUpdateAndDelete(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable("t")
	mustRun(t, db, func(tx *Txn) error { tx.Insert(tbl, key(1), 10); return nil })
	mustRun(t, db, func(tx *Txn) error { tx.Put(tbl, key(1), 20); return nil })
	mustRun(t, db, func(tx *Txn) error {
		if v, ok := tx.Get(tbl, key(1)); !ok || v != 20 {
			t.Fatalf("got %v %v", v, ok)
		}
		tx.Delete(tbl, key(1))
		return nil
	})
	mustRun(t, db, func(tx *Txn) error {
		if _, ok := tx.Get(tbl, key(1)); ok {
			t.Fatal("deleted row visible")
		}
		return nil
	})
}

func mustRun(t *testing.T, db *DB, fn func(tx *Txn) error) {
	t.Helper()
	if err := db.Run(0, 0, fn); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDuplicateConflicts(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable("t")
	mustRun(t, db, func(tx *Txn) error { tx.Insert(tbl, key(1), "x"); return nil })
	tx := db.Begin(0)
	tx.Insert(tbl, key(1), "y")
	if err := tx.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("duplicate insert: got %v, want conflict", err)
	}
}

func TestWriteWriteConflictAborts(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable("t")
	mustRun(t, db, func(tx *Txn) error { tx.Insert(tbl, key(1), 0); return nil })

	// Reader validates against a concurrent committed write.
	tx1 := db.Begin(0)
	v, _ := tx1.Get(tbl, key(1))
	_ = v
	tx1.Put(tbl, key(1), 1)

	tx2 := db.Begin(1)
	tx2.Get(tbl, key(1))
	tx2.Put(tbl, key(1), 2)
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale read-modify-write: got %v, want conflict", err)
	}
}

func TestPhantomProtectionPointMiss(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable("t")
	tx1 := db.Begin(0)
	if _, ok := tx1.Get(tbl, key(5)); ok {
		t.Fatal("key must be absent")
	}
	tx1.Insert(tbl, key(100), "unrelated")

	// A concurrent insert materializes the key tx1 observed as absent.
	mustRun(t, db, func(tx *Txn) error { tx.Insert(tbl, key(5), "phantom"); return nil })

	if err := tx1.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("phantom point-miss: got %v, want conflict", err)
	}
}

func TestPhantomProtectionScan(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable("t")
	for i := 0; i < 20; i += 2 {
		mustRun(t, db, func(tx *Txn) error { tx.Insert(tbl, key(i), i); return nil })
	}
	tx1 := db.Begin(0)
	sum := 0
	tx1.Scan(tbl, key(0), key(20), func(k []byte, row any) bool {
		sum += row.(int)
		return true
	})
	tx1.Put(tbl, key(100), sum)

	mustRun(t, db, func(tx *Txn) error { tx.Insert(tbl, key(3), 3); return nil })

	if err := tx1.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("phantom in scanned range: got %v, want conflict", err)
	}
}

func TestScanSeesOwnUpdatesAndDeletes(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable("t")
	for i := 0; i < 5; i++ {
		mustRun(t, db, func(tx *Txn) error { tx.Insert(tbl, key(i), i); return nil })
	}
	tx := db.Begin(0)
	tx.Put(tbl, key(2), 200)
	tx.Delete(tbl, key(3))
	var got []int
	tx.Scan(tbl, nil, nil, func(k []byte, row any) bool {
		got = append(got, row.(int))
		return true
	})
	want := fmt.Sprint([]int{0, 1, 200, 4})
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v want %v", got, want)
	}
	tx.Abort()
}

func TestUserAbort(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable("t")
	err := db.Run(0, 0, func(tx *Txn) error {
		tx.Insert(tbl, key(1), "x")
		return ErrUserAbort
	})
	if !errors.Is(err, ErrUserAbort) {
		t.Fatalf("got %v", err)
	}
	mustRun(t, db, func(tx *Txn) error {
		if _, ok := tx.Get(tbl, key(1)); ok {
			t.Fatal("aborted insert visible")
		}
		return nil
	})
}

func TestCreateTableTwiceFails(t *testing.T) {
	db := newDB(t)
	if _, err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t"); err == nil {
		t.Fatal("duplicate table must fail")
	}
	if db.MustTable("t") == nil {
		t.Fatal("MustTable must return the table")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustTable of unknown table must panic")
		}
	}()
	db.MustTable("nope")
}

func TestCommitTwiceFails(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable("t")
	tx := db.Begin(0)
	tx.Insert(tbl, key(1), 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("second commit must fail")
	}
}

func TestLoadInsertVisible(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable("t")
	for i := 0; i < 100; i++ {
		tbl.LoadInsert(key(i), i)
	}
	if tbl.Len() != 100 {
		t.Fatalf("Len=%d", tbl.Len())
	}
	mustRun(t, db, func(tx *Txn) error {
		n := 0
		tx.Scan(tbl, nil, nil, func(k []byte, row any) bool { n++; return true })
		if n != 100 {
			t.Fatalf("scan saw %d rows", n)
		}
		return nil
	})
}

// The classic serializability smoke test: concurrent transfers between
// accounts preserve the total balance.
func TestBankTransferInvariant(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable("accounts")
	const accounts = 20
	const initial = 1000
	for i := 0; i < accounts; i++ {
		tbl.LoadInsert(key(i), initial)
	}
	const workers = 8
	const transfers = 400
	var wg sync.WaitGroup
	var starved atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := (w*31 + i) % accounts
				to := (from + 1 + i%7) % accounts
				if from == to {
					continue
				}
				err := db.Run(w, 1000, func(tx *Txn) error {
					fv, ok1 := tx.Get(tbl, key(from))
					tv, ok2 := tx.Get(tbl, key(to))
					if !ok1 || !ok2 {
						t.Error("account missing")
						return ErrUserAbort
					}
					amount := 1 + i%5
					tx.Put(tbl, key(from), fv.(int)-amount)
					tx.Put(tbl, key(to), tv.(int)+amount)
					return nil
				})
				if err != nil {
					starved.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if starved.Load() > 0 {
		t.Fatalf("%d transfers starved", starved.Load())
	}
	total := 0
	mustRun(t, db, func(tx *Txn) error {
		total = 0
		tx.Scan(tbl, nil, nil, func(k []byte, row any) bool {
			total += row.(int)
			return true
		})
		return nil
	})
	if total != accounts*initial {
		t.Fatalf("money not conserved: %d, want %d", total, accounts*initial)
	}
}

// Concurrent insert/delete/scan stress; verifies commits+aborts add up and
// the table converges to the expected membership. Run under -race.
func TestConcurrentInsertDeleteStress(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable("t")
	const workers = 6
	const keys = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key((w*131 + i*17) % keys)
				switch i % 3 {
				case 0:
					db.Run(w, 50, func(tx *Txn) error {
						tx.Put(tbl, k, w)
						return nil
					})
				case 1:
					db.Run(w, 50, func(tx *Txn) error {
						if _, ok := tx.Get(tbl, k); ok {
							tx.Delete(tbl, k)
						}
						return nil
					})
				default:
					db.Run(w, 50, func(tx *Txn) error {
						tx.Scan(tbl, k, nil, func([]byte, any) bool { return false })
						return nil
					})
				}
			}
		}(w)
	}
	wg.Wait()
	// Post-condition: every live row is readable and consistent.
	mustRun(t, db, func(tx *Txn) error {
		tx.Scan(tbl, nil, nil, func(k []byte, row any) bool {
			if row == nil {
				t.Error("live row with nil value")
			}
			return true
		})
		return nil
	})
	c, a := db.Stats()
	t.Logf("commits=%d aborts=%d", c, a)
	if c == 0 {
		t.Fatal("no commits")
	}
}

// Serializability under read-modify-write on one hot counter: the final
// value equals the number of successful increments.
func TestCounterSerializability(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable("t")
	tbl.LoadInsert(key(0), 0)
	const workers = 8
	const perWorker = 200
	var committed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := db.Run(w, 0, func(tx *Txn) error {
					v, _ := tx.Get(tbl, key(0))
					tx.Put(tbl, key(0), v.(int)+1)
					return nil
				})
				if err == nil {
					committed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	var final int
	mustRun(t, db, func(tx *Txn) error {
		v, _ := tx.Get(tbl, key(0))
		final = v.(int)
		return nil
	})
	if int64(final) != committed.Load() {
		t.Fatalf("counter=%d, committed=%d: lost or duplicated increments", final, committed.Load())
	}
}

func TestEpochAdvances(t *testing.T) {
	db := newDB(t)
	e0 := db.Epoch()
	time.Sleep(20 * time.Millisecond)
	if db.Epoch() <= e0 {
		t.Fatal("epoch did not advance")
	}
}

func TestTIDsMonotonicPerWorker(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable("t")
	var last uint64
	for i := 0; i < 100; i++ {
		mustRun(t, db, func(tx *Txn) error { tx.Put(tbl, key(i), i); return nil })
		cur := *db.lastTIDSlot(0)
		if cur <= last {
			t.Fatalf("TID not monotonic: %d then %d", last, cur)
		}
		last = cur
	}
}
