package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30, func(Time) { got = append(got, 3) })
	s.At(10, func(Time) { got = append(got, 1) })
	s.At(20, func(Time) { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %d, want 30", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func(Time) { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events must run in scheduling order, got %v", got)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	s := New(1)
	var at Time
	s.After(100, func(now Time) {
		at = now
		s.After(50, func(now Time) { at = now })
	})
	s.Run()
	if at != 150 {
		t.Fatalf("nested After landed at %d, want 150", at)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1)
	fired := false
	s.After(-5, func(Time) { fired = true })
	s.Run()
	if !fired || s.Now() != 0 {
		t.Fatal("negative delay should clamp to now")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(10, func(Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past must panic")
			}
		}()
		s.At(5, func(Time) {})
	})
	s.Run()
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	h := s.At(10, func(Time) { fired = true })
	s.Cancel(h)
	s.Cancel(h) // double-cancel is a no-op
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancel of zero Handle is a no-op.
	s.Cancel(Handle{})
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func(now Time) { fired = append(fired, now) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", len(fired))
	}
	if s.Now() != 25 {
		t.Fatalf("clock = %d, want 25", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("total fired %d, want 4", len(fired))
	}
	if s.Now() != 100 {
		t.Fatalf("clock = %d, want 100", s.Now())
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	s := New(1)
	h := s.At(5, func(Time) { t.Error("cancelled event ran") })
	s.Cancel(h)
	ran := false
	s.At(10, func(Time) { ran = true })
	s.RunUntil(20)
	if !ran {
		t.Fatal("live event did not run")
	}
}

func TestPending(t *testing.T) {
	s := New(1)
	h1 := s.At(10, func(Time) {})
	s.At(20, func(Time) {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Cancel(h1)
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d after cancel, want 1", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after run, want 0", s.Pending())
	}
}

func TestStepsCounter(t *testing.T) {
	s := New(1)
	for i := Time(0); i < 5; i++ {
		s.At(i, func(Time) {})
	}
	s.Run()
	if s.Steps() != 5 {
		t.Fatalf("Steps = %d, want 5", s.Steps())
	}
}

// Property: any batch of randomly-timed events is dispatched in
// nondecreasing time order, and ties respect scheduling order.
func TestDispatchOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		s := New(1)
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, raw := range times {
			at := Time(raw % 100) // force collisions
			i := i
			s.At(at, func(now Time) { got = append(got, rec{now, i}) })
		}
		s.Run()
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismBySeed(t *testing.T) {
	run := func(seed int64) []Time {
		s := New(seed)
		var out []Time
		var tick func(Time)
		n := 0
		tick = func(now Time) {
			out = append(out, now)
			n++
			if n < 100 {
				s.After(Time(s.Rand.Intn(1000)), tick)
			}
		}
		s.After(0, tick)
		s.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("same seed, different event counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different timelines")
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical timelines (suspicious)")
	}
}

func TestHeapStressAgainstReference(t *testing.T) {
	// Schedule and cancel randomly; verify dispatch matches a reference sort.
	rng := rand.New(rand.NewSource(11))
	s := New(1)
	type ev struct {
		at   Time
		seq  int
		dead bool
	}
	var evs []*ev
	var handles []Handle
	for i := 0; i < 2000; i++ {
		at := Time(rng.Intn(10000))
		e := &ev{at: at, seq: i}
		evs = append(evs, e)
		idx := i
		handles = append(handles, s.At(at, func(now Time) {
			if evs[idx].dead {
				t.Errorf("cancelled event %d fired", idx)
			}
			evs[idx].at = -now // mark fired, remember when
		}))
	}
	for i := 0; i < 500; i++ {
		k := rng.Intn(len(handles))
		evs[k].dead = true
		s.Cancel(handles[k])
	}
	s.Run()
	for i, e := range evs {
		if e.dead {
			continue
		}
		if e.at > 0 {
			t.Fatalf("live event %d never fired", i)
		}
	}
}

func BenchmarkSchedule(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.After(Time(i%1000), func(Time) {})
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}
