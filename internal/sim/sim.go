// Package sim is a small deterministic discrete-event simulation kernel.
//
// Time is an int64 count of nanoseconds since simulation start. Events are
// scheduled onto a binary-heap calendar and dispatched in (time, sequence)
// order, so simultaneous events fire in their scheduling order and a run is
// a pure function of its seed.
//
// The kernel is deliberately minimal: higher layers (internal/queueing,
// internal/dataplane) build queueing stations, NICs, cores and schedulers
// on top of it.
package sim

import (
	"container/heap"
	"math/rand"
)

// Time is a simulation timestamp in nanoseconds.
type Time = int64

// Event is a closure scheduled to run at a point in simulated time.
type Event func(now Time)

type item struct {
	at   Time
	seq  uint64
	call Event
	idx  int
	dead bool
}

type calendar []*item

func (c calendar) Len() int { return len(c) }
func (c calendar) Less(i, j int) bool {
	if c[i].at != c[j].at {
		return c[i].at < c[j].at
	}
	return c[i].seq < c[j].seq
}
func (c calendar) Swap(i, j int) {
	c[i], c[j] = c[j], c[i]
	c[i].idx = i
	c[j].idx = j
}
func (c *calendar) Push(x any) {
	it := x.(*item)
	it.idx = len(*c)
	*c = append(*c, it)
}
func (c *calendar) Pop() any {
	old := *c
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*c = old[:n-1]
	return it
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ it *item }

// Sim is a discrete-event simulator instance.
type Sim struct {
	now   Time
	seq   uint64
	cal   calendar
	Rand  *rand.Rand
	steps uint64
}

// New returns a simulator whose random stream is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{Rand: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time.
func (s *Sim) Now() Time { return s.now }

// Steps returns the number of events dispatched so far.
func (s *Sim) Steps() uint64 { return s.steps }

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it always indicates a model bug.
func (s *Sim) At(at Time, fn Event) Handle {
	if at < s.now {
		panic("sim: scheduling event in the past")
	}
	it := &item{at: at, seq: s.seq, call: fn}
	s.seq++
	heap.Push(&s.cal, it)
	return Handle{it: it}
}

// After schedules fn to run delay nanoseconds from now.
func (s *Sim) After(delay Time, fn Event) Handle {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Sim) Cancel(h Handle) {
	if h.it == nil || h.it.dead {
		return
	}
	h.it.dead = true
}

// Step dispatches the next event. It reports false when the calendar is empty.
func (s *Sim) Step() bool {
	for len(s.cal) > 0 {
		it := heap.Pop(&s.cal).(*item)
		if it.dead {
			continue
		}
		s.now = it.at
		s.steps++
		it.call(s.now)
		return true
	}
	return false
}

// Run dispatches events until the calendar is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil dispatches events with timestamps ≤ deadline, advancing the clock
// to exactly deadline if the calendar empties or only later events remain.
func (s *Sim) RunUntil(deadline Time) {
	for len(s.cal) > 0 {
		// Peek.
		it := s.cal[0]
		if it.dead {
			heap.Pop(&s.cal)
			continue
		}
		if it.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of scheduled (non-cancelled) events.
func (s *Sim) Pending() int {
	n := 0
	for _, it := range s.cal {
		if !it.dead {
			n++
		}
	}
	return n
}
