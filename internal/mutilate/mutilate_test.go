package mutilate

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"zygos/internal/kv"
)

// fakeTarget answers every request immediately on the caller's goroutine.
type fakeTarget struct {
	calls atomic.Int64
	fail  bool
}

func (f *fakeTarget) SendMethodAsync(method uint16, payload []byte, cb func([]byte, error)) error {
	f.calls.Add(1)
	if f.fail {
		cb(nil, errors.New("boom"))
		return nil
	}
	cb([]byte{kv.ReplyHit}, nil)
	return nil
}

func TestRunCompletesAllRequests(t *testing.T) {
	tgt := &fakeTarget{}
	rep := Run(Config{
		Targets:    []Target{tgt},
		RatePerSec: 1e6,
		Requests:   500,
		Warmup:     100,
		Gen:        func(rng *rand.Rand) (uint16, []byte) { return 0, []byte{1} },
		Seed:       1,
	})
	if rep.Sent != 500 {
		t.Fatalf("sent %d", rep.Sent)
	}
	if rep.Completed != 400 {
		t.Fatalf("completed %d, want 400 measured", rep.Completed)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors %d", rep.Errors)
	}
	if rep.Latencies.Len() != 400 {
		t.Fatalf("latencies %d", rep.Latencies.Len())
	}
	if rep.AchievedRPS <= 0 {
		t.Fatal("achieved rate missing")
	}
}

func TestRunCountsErrors(t *testing.T) {
	tgt := &fakeTarget{fail: true}
	rep := Run(Config{
		Targets:    []Target{tgt},
		RatePerSec: 1e6,
		Requests:   100,
		Gen:        func(rng *rand.Rand) (uint16, []byte) { return 0, []byte{1} },
		Seed:       1,
	})
	if rep.Errors != 100 || rep.Completed != 0 {
		t.Fatalf("errors=%d completed=%d", rep.Errors, rep.Completed)
	}
}

func TestRunCheckRejects(t *testing.T) {
	tgt := &fakeTarget{}
	rep := Run(Config{
		Targets:    []Target{tgt},
		RatePerSec: 1e6,
		Requests:   50,
		Gen:        func(rng *rand.Rand) (uint16, []byte) { return 0, []byte{1} },
		Check:      func(resp []byte) bool { return false },
		Seed:       1,
	})
	if rep.Errors != 50 {
		t.Fatalf("errors=%d", rep.Errors)
	}
}

func TestRunSpreadsOverTargets(t *testing.T) {
	a, b := &fakeTarget{}, &fakeTarget{}
	Run(Config{
		Targets:    []Target{a, b},
		RatePerSec: 1e6,
		Requests:   1000,
		Gen:        func(rng *rand.Rand) (uint16, []byte) { return 0, []byte{1} },
		Seed:       3,
	})
	ca, cb := a.calls.Load(), b.calls.Load()
	if ca == 0 || cb == 0 {
		t.Fatalf("load not spread: %d/%d", ca, cb)
	}
	if ca+cb != 1000 {
		t.Fatalf("total %d", ca+cb)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing config must panic")
		}
	}()
	Run(Config{})
}

// decodeRouted splits one method-routed model request into key and
// value (value nil for GETs).
func decodeRouted(t *testing.T, method uint16, p []byte) (key, value []byte) {
	t.Helper()
	switch method {
	case kv.MethodGet:
		return p, nil
	case kv.MethodSet:
		k, v, err := kv.DecodeSetPayload(p)
		if err != nil {
			t.Fatal(err)
		}
		return k, v
	}
	t.Fatalf("unexpected method %d", method)
	return nil, nil
}

func TestETCModelShape(t *testing.T) {
	m := ETC(1000)
	rng := rand.New(rand.NewSource(1))
	gets, sets := 0, 0
	gen := m.Gen()
	for i := 0; i < 20000; i++ {
		method, p := gen(rng)
		key, value := decodeRouted(t, method, p)
		if len(key) < 12 || len(key) > 250 {
			t.Fatalf("key length %d out of range", len(key))
		}
		switch method {
		case kv.MethodGet:
			gets++
		case kv.MethodSet:
			sets++
			if len(value) < 1 || len(value) > 8192 {
				t.Fatalf("value length %d out of range", len(value))
			}
		}
	}
	frac := float64(gets) / float64(gets+sets)
	if frac < 0.95 || frac > 0.99 {
		t.Fatalf("ETC GET fraction %.3f, want ~0.968", frac)
	}
}

func TestUSRModelShape(t *testing.T) {
	m := USR(1000)
	rng := rand.New(rand.NewSource(2))
	gen := m.Gen()
	gets := 0
	const n = 20000
	for i := 0; i < n; i++ {
		method, p := gen(rng)
		key, value := decodeRouted(t, method, p)
		if len(key) < 19 || len(key) > 21 {
			t.Fatalf("USR key length %d", len(key))
		}
		if method == kv.MethodGet {
			gets++
		} else if len(value) != 2 {
			t.Fatalf("USR value length %d", len(value))
		}
	}
	frac := float64(gets) / n
	if frac < 0.99 {
		t.Fatalf("USR GET fraction %.4f, want ~0.998", frac)
	}
}

// The legacy generator still emits the opcode-in-payload encoding on
// method 0, for driving pre-routing servers.
func TestLegacyGenShape(t *testing.T) {
	m := USR(100)
	rng := rand.New(rand.NewSource(5))
	gen := m.LegacyGen()
	for i := 0; i < 200; i++ {
		method, p := gen(rng)
		if method != 0 {
			t.Fatalf("legacy gen produced method %d", method)
		}
		if _, _, _, err := kv.DecodeRequest(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPreloadCoversKeyspace(t *testing.T) {
	m := USR(100)
	rng := rand.New(rand.NewSource(3))
	payloads := m.Preload(rng)
	if len(payloads) != 100 {
		t.Fatalf("preload %d payloads", len(payloads))
	}
	seen := map[string]bool{}
	for _, p := range payloads {
		key, _, err := kv.DecodeSetPayload(p)
		if err != nil {
			t.Fatal("preload must be routed SET payloads")
		}
		seen[string(key[:12])] = true
	}
	if len(seen) != 100 {
		t.Fatalf("preload covered %d distinct keys", len(seen))
	}
}

func TestKeyDeterministicPerIndex(t *testing.T) {
	m := USR(10)
	rng := rand.New(rand.NewSource(4))
	a := m.keyN(rng, 7)
	b := m.keyN(rng, 7)
	if string(a[:12]) != string(b[:12]) {
		t.Fatal("key identity must be deterministic in the index")
	}
}
