// Package mutilate is an open-loop load generator in the spirit of the
// mutilate tool the paper uses (§3.2): Poisson arrivals spread over many
// connections, latency measured per request, with the ETC and USR
// memcached workload models of Atikoglu et al. (the Facebook traces) and
// arbitrary request generators for other applications.
//
// Latency is measured from the request's scheduled (intended) arrival
// time, not from the moment the sender got around to writing it, so a
// slow server cannot hide queueing delay by slowing the generator down —
// the "coordinated omission" correction open-loop methodology requires.
package mutilate

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"zygos/internal/dist"
	"zygos/internal/kv"
	"zygos/internal/stats"
)

// Target is one connection to the system under test. Both zygos.Client
// and zygos.TCPClient satisfy it. Requests travel method-routed (v3
// frames); a Gen returning method 0 drives the target's legacy route.
type Target interface {
	SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error
}

// Config parameterizes a load-generation run.
type Config struct {
	// Targets are the open connections load is spread over; each request
	// picks one uniformly at random (the paper's high fan-in pattern).
	Targets []Target
	// RatePerSec is the offered load.
	RatePerSec float64
	// Requests is the total number of requests to issue.
	Requests int
	// Warmup requests are issued but excluded from measurement.
	Warmup int
	// Gen builds the next request: the wire method it targets and its
	// payload. Single-operation workloads return a constant method
	// (0 for a server without a Mux).
	Gen func(rng *rand.Rand) (method uint16, payload []byte)
	// Check optionally validates each response; failures count as errors.
	Check func(resp []byte) bool
	Seed  int64
}

// Report is the outcome of a run.
type Report struct {
	Latencies   *stats.Sample // ns, measured from scheduled arrival
	Sent        int
	Completed   int
	Errors      int
	OfferedRPS  float64
	AchievedRPS float64
	Elapsed     time.Duration
}

// Run drives the configured open-loop workload to completion (all
// responses received or failed).
func Run(cfg Config) Report {
	if len(cfg.Targets) == 0 || cfg.Gen == nil || cfg.RatePerSec <= 0 || cfg.Requests <= 0 {
		panic("mutilate: Targets, Gen, RatePerSec and Requests are required")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	arrivals := dist.PoissonArrivals{RatePerSec: cfg.RatePerSec}

	rep := Report{
		Latencies:  stats.NewSample(cfg.Requests),
		OfferedRPS: cfg.RatePerSec,
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var errs atomic.Int64

	start := time.Now()
	next := start
	for i := 0; i < cfg.Requests; i++ {
		// Open loop: arrival times come from the Poisson process alone.
		next = next.Add(time.Duration(arrivals.NextGap(rng)))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		method, payload := cfg.Gen(rng)
		target := cfg.Targets[rng.Intn(len(cfg.Targets))]
		scheduled := next
		measured := i >= cfg.Warmup
		wg.Add(1)
		err := target.SendMethodAsync(method, payload, func(resp []byte, err error) {
			defer wg.Done()
			if err != nil || (cfg.Check != nil && !cfg.Check(resp)) {
				errs.Add(1)
				return
			}
			if measured {
				lat := time.Since(scheduled).Nanoseconds()
				mu.Lock()
				rep.Latencies.Add(lat)
				rep.Completed++
				mu.Unlock()
			}
		})
		if err != nil {
			wg.Done()
			errs.Add(1)
			continue
		}
		rep.Sent++
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	rep.Errors = int(errs.Load())
	if rep.Elapsed > 0 {
		rep.AchievedRPS = float64(rep.Sent) / rep.Elapsed.Seconds()
	}
	return rep
}

// KVModel generates memcached-style GET/SET traffic over a fixed keyspace.
type KVModel struct {
	// Name identifies the model ("etc", "usr", ...).
	Name string
	// Keys is the keyspace size; keys are "key-<n>" padded to KeyLen.
	Keys int
	// KeyLen draws a key length in bytes.
	KeyLen func(rng *rand.Rand) int
	// ValueLen draws a value length in bytes for SETs.
	ValueLen func(rng *rand.Rand) int
	// GetFraction is the fraction of GET operations.
	GetFraction float64
}

// ETC approximates the Facebook ETC workload as modeled by mutilate:
// ~30:1 GET:SET, short keys (generalized-extreme-value-ish lengths around
// 30 bytes) and generalized-Pareto value sizes (scale 214.48, shape
// 0.3482), clamped to sane bounds.
func ETC(keys int) KVModel {
	valDist := dist.GeneralizedPareto{MuLoc: 15, Scale: 214.476, Shape: 0.348238}
	return KVModel{
		Name: "etc",
		Keys: keys,
		KeyLen: func(rng *rand.Rand) int {
			n := 20 + int(rng.ExpFloat64()*10)
			if n > 250 {
				n = 250
			}
			return n
		},
		ValueLen: func(rng *rand.Rand) int {
			n := int(valDist.Sample(rng))
			if n < 1 {
				n = 1
			}
			if n > 8192 {
				n = 8192
			}
			return n
		},
		GetFraction: 30.0 / 31.0,
	}
}

// USR approximates the Facebook USR workload: 99.8% GETs, 19-21 byte
// keys, 2 byte values — the near-deterministic tiny-task case the paper
// calls a near worst case for ZygOS (§6.2).
func USR(keys int) KVModel {
	return KVModel{
		Name:        "usr",
		Keys:        keys,
		KeyLen:      func(rng *rand.Rand) int { return 19 + rng.Intn(3) },
		ValueLen:    func(rng *rand.Rand) int { return 2 },
		GetFraction: 0.998,
	}
}

// draw makes one model decision — GET or SET, which key, and (for SETs)
// the value — shared by both generators so routed and legacy runs stay
// statistically identical.
func (m KVModel) draw(rng *rand.Rand) (isGet bool, key, val []byte) {
	key = m.key(rng)
	if rng.Float64() < m.GetFraction {
		return true, key, nil
	}
	val = make([]byte, m.ValueLen(rng))
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	return false, key, val
}

// Gen returns a method-routed request generator for the model, suitable
// for Config.Gen: GETs target kv.MethodGet with the bare key as
// payload, SETs target kv.MethodSet with the routed [klen][key][value]
// encoding — the opcode byte the legacy encoding spent per request now
// travels in the frame header where the server routes on it.
func (m KVModel) Gen() func(rng *rand.Rand) (uint16, []byte) {
	return func(rng *rand.Rand) (uint16, []byte) {
		isGet, key, val := m.draw(rng)
		if isGet {
			return kv.MethodGet, key
		}
		return kv.MethodSet, kv.EncodeSetPayload(nil, key, val)
	}
}

// LegacyGen is Gen in the pre-routing encoding: every request targets
// method 0 with an opcode byte in the payload. It exists to drive the
// legacy route of a routed server (interop testing) or a server without
// a Mux.
func (m KVModel) LegacyGen() func(rng *rand.Rand) (uint16, []byte) {
	return func(rng *rand.Rand) (uint16, []byte) {
		isGet, key, val := m.draw(rng)
		if isGet {
			return 0, kv.EncodeGet(nil, key)
		}
		return 0, kv.EncodeSet(nil, key, val)
	}
}

// Preload returns kv.MethodSet payloads (routed encoding) covering the
// whole keyspace, used to warm the store before measuring (mutilate's
// --loadonly phase): send each with CallMethod(kv.MethodSet, p).
func (m KVModel) Preload(rng *rand.Rand) [][]byte {
	out := make([][]byte, 0, m.Keys)
	for i := 0; i < m.Keys; i++ {
		key := m.keyN(rng, i)
		val := make([]byte, m.ValueLen(rng))
		out = append(out, kv.EncodeSetPayload(nil, key, val))
	}
	return out
}

func (m KVModel) key(rng *rand.Rand) []byte {
	return m.keyN(rng, rng.Intn(m.Keys))
}

// keyN builds the n-th key, deterministically, padded to the drawn
// length.
func (m KVModel) keyN(rng *rand.Rand, n int) []byte {
	kl := m.KeyLen(rng)
	if kl < 12 {
		kl = 12
	}
	key := make([]byte, kl)
	copy(key, "key-")
	for i := 4; i < 12; i++ {
		key[i] = byte('0' + n%10)
		n /= 10
	}
	for i := 12; i < kl; i++ {
		key[i] = 'x'
	}
	return key
}
