package faultnet

import (
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn with byte-level fault injection on the write
// path. Reads pass through untouched: injecting on one side is enough to
// fault both directions of an RPC (a corrupted request breaks the reply
// too), and it keeps the fault model easy to reason about in tests.
//
// Conn deliberately does not implement syscall.Conn, so tcpnet servers
// fall back to their portable deadline-scan poller for wrapped
// connections and tcpnet clients read them through the plain read loop.
type Conn struct {
	net.Conn
	in *injector

	// wmu serializes faulted writes so a Partial's two segments are not
	// interleaved with another goroutine's frame.
	wmu sync.Mutex
}

// WrapConn wraps nc with the faults described by plan.
func WrapConn(nc net.Conn, plan Plan) *Conn {
	return &Conn{Conn: nc, in: newInjector(plan)}
}

// FaultStats returns the injected-fault counters so far.
func (c *Conn) FaultStats() Stats { return c.in.stats() }

func (c *Conn) Write(b []byte) (int, error) {
	a, lat := c.in.decide()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	switch a {
	case Delay:
		// Client writers block on their own goroutines; server writers on
		// the portable poller tolerate sub-millisecond stalls. Keep
		// injected write latency small in plans that wrap servers.
		time.Sleep(lat)
		return c.Conn.Write(b)
	case Partial:
		// Two segments with a scheduling gap: exercises every reader's
		// short-read resumption without changing the byte stream.
		half := len(b) / 2
		if half == 0 {
			return c.Conn.Write(b)
		}
		n, err := c.Conn.Write(b[:half])
		if err != nil {
			return n, err
		}
		time.Sleep(50 * time.Microsecond)
		m, err := c.Conn.Write(b[half:])
		return n + m, err
	case Corrupt:
		// Flip one byte. The peer sees a garbage frame: bad magic, bad
		// length, or a scrambled payload — all three are wire-level
		// corruption modes the parser must survive without wedging the
		// process or losing buffer accounting.
		if len(b) == 0 {
			return c.Conn.Write(b)
		}
		cp := append([]byte(nil), b...)
		cp[int(c.in.pick(len(cp)))] ^= 0x55
		return c.Conn.Write(cp)
	case Reset, Blackhole:
		// Mid-write reset: a prefix escapes, then the conn dies under the
		// writer. The peer sees a truncated stream then EOF.
		if len(b) > 1 {
			c.Conn.Write(b[:len(b)/2])
		}
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	return c.Conn.Write(b)
}

// pick returns a deterministic index in [0,n).
func (in *injector) pick(n int) int64 {
	in.mu.Lock()
	v := in.rng.Int63n(int64(n))
	in.mu.Unlock()
	return v
}

// Listener wraps a net.Listener so every accepted conn is fault-
// injected. Conn i gets an independent injector seeded from Plan.Seed
// and i, so a multi-conn chaos run still replays from one seed.
type Listener struct {
	net.Listener
	plan Plan

	mu    sync.Mutex
	n     int64
	conns []*Conn
}

// WrapListener wraps l with per-accepted-conn fault injection.
func WrapListener(l net.Listener, plan Plan) *Listener {
	return &Listener{Listener: l, plan: plan}
}

func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	p := l.plan
	p.Seed = l.plan.Seed + 0x5851f42d4c957f2d*l.n // large odd stride decorrelates per-conn streams
	l.n++
	fc := WrapConn(nc, p)
	l.conns = append(l.conns, fc)
	l.mu.Unlock()
	return fc, nil
}

// FaultStats sums the counters across all accepted conns.
func (l *Listener) FaultStats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s Stats
	for _, c := range l.conns {
		cs := c.in.stats()
		s.Ops += cs.Ops
		s.Delays += cs.Delays
		s.Partials += cs.Partials
		s.Resets += cs.Resets
		s.Blackholes += cs.Blackholes
		s.DropReplies += cs.DropReplies
		s.Corrupts += cs.Corrupts
		s.DropDepths += cs.DropDepths
	}
	return s
}
