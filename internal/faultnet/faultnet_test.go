package faultnet

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// stubCaller is a minimal in-process transport: every request gets an
// immediate "ok" reply on the calling goroutine.
type stubCaller struct {
	mu    sync.Mutex
	sends int
}

func (s *stubCaller) reply(cb func([]byte, error)) error {
	s.mu.Lock()
	s.sends++
	s.mu.Unlock()
	cb([]byte("ok"), nil)
	return nil
}

func (s *stubCaller) call() ([]byte, error) {
	s.mu.Lock()
	s.sends++
	s.mu.Unlock()
	return []byte("ok"), nil
}

func (s *stubCaller) Call(p []byte) ([]byte, error)                        { return s.call() }
func (s *stubCaller) CallInto(p, b []byte) ([]byte, error)                 { return s.call() }
func (s *stubCaller) CallMethod(m uint16, p []byte) ([]byte, error)        { return s.call() }
func (s *stubCaller) CallMethodInto(m uint16, p, b []byte) ([]byte, error) { return s.call() }
func (s *stubCaller) SendAsync(p []byte, cb func([]byte, error)) error     { return s.reply(cb) }
func (s *stubCaller) SendMethodAsync(m uint16, p []byte, cb func([]byte, error)) error {
	return s.reply(cb)
}
func (s *stubCaller) SendOneWay(p []byte) error { s.mu.Lock(); s.sends++; s.mu.Unlock(); return nil }
func (s *stubCaller) SendMethodOneWay(m uint16, p []byte) error {
	s.mu.Lock()
	s.sends++
	s.mu.Unlock()
	return nil
}
func (s *stubCaller) Close() {}

func (s *stubCaller) count() int { s.mu.Lock(); defer s.mu.Unlock(); return s.sends }

func TestScriptPinsActions(t *testing.T) {
	inner := &stubCaller{}
	script := []Action{Pass, Blackhole, Reset, DropReply, Delay}
	fc := WrapCaller(inner, Plan{
		Seed:   1,
		Script: func(op uint64) (Action, bool) { return script[op%uint64(len(script))], true },
	})

	var mu sync.Mutex
	got := make(map[int][]byte)
	errs := make(map[int]error)
	fired := 0
	for i := 0; i < len(script); i++ {
		i := i
		err := fc.SendAsync([]byte("req"), func(resp []byte, err error) {
			mu.Lock()
			got[i] = append([]byte(nil), resp...)
			errs[i] = err
			fired++
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("op %d sync err: %v", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := fired
		mu.Unlock()
		if n >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if fired != 3 {
		t.Fatalf("fired = %d callbacks, want 3 (pass, reset, delay)", fired)
	}
	if string(got[0]) != "ok" || errs[0] != nil {
		t.Fatalf("pass op: %q, %v", got[0], errs[0])
	}
	if _, ok := got[1]; ok {
		t.Fatal("blackholed op fired its callback")
	}
	if !errors.Is(errs[2], ErrInjectedReset) {
		t.Fatalf("reset op err = %v", errs[2])
	}
	if _, ok := got[3]; ok {
		t.Fatal("drop-reply op fired its callback")
	}
	if string(got[4]) != "ok" || errs[4] != nil {
		t.Fatalf("delayed op: %q, %v", got[4], errs[4])
	}
	// Blackhole never reaches the inner transport; everything else does.
	if c := inner.count(); c != 4 {
		t.Fatalf("inner sends = %d, want 4", c)
	}
	st := fc.FaultStats()
	if st.Blackholes != 1 || st.Resets != 1 || st.DropReplies != 1 || st.Delays != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSeededPlanIsDeterministic(t *testing.T) {
	mix := func(seed int64) Stats {
		fc := WrapCaller(&stubCaller{}, Plan{
			Seed: seed, PReset: 0.1, PBlackhole: 0.1, PDropReply: 0.1, PDelay: 0.2,
		})
		for i := 0; i < 400; i++ {
			fc.SendAsync([]byte("x"), func([]byte, error) {})
		}
		s := fc.FaultStats()
		s.Delays = 0 // delayed callbacks may still be in flight; counts already noted at decide time
		return s
	}
	a, b := mix(42), mix(42)
	a.Delays, b.Delays = 0, 0
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := mix(43)
	if a == c {
		t.Fatalf("different seeds produced identical fault mix: %+v", a)
	}
}

func TestDelayedReplyIsCopied(t *testing.T) {
	// The inner transport recycles its parse buffer as soon as the
	// callback returns; a delayed reply must not observe the recycled
	// bytes.
	buf := []byte("live")
	inner := &funcCaller{send: func(p []byte, cb func([]byte, error)) error {
		cb(buf, nil)
		copy(buf, "DEAD") // simulate recycling
		return nil
	}}
	fc := WrapCaller(inner, Plan{Seed: 1, Script: func(uint64) (Action, bool) { return Delay, true }})
	ch := make(chan string, 1)
	if err := fc.SendAsync([]byte("x"), func(resp []byte, err error) { ch <- string(resp) }); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-ch:
		if got != "live" {
			t.Fatalf("delayed reply = %q, want %q (buffer recycled under the delay)", got, "live")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delayed reply never arrived")
	}
}

// funcCaller adapts one send function to the full Caller surface.
type funcCaller struct {
	send func(p []byte, cb func([]byte, error)) error
}

func (f *funcCaller) Call(p []byte) ([]byte, error)                        { panic("unused") }
func (f *funcCaller) CallInto(p, b []byte) ([]byte, error)                 { panic("unused") }
func (f *funcCaller) CallMethod(m uint16, p []byte) ([]byte, error)        { panic("unused") }
func (f *funcCaller) CallMethodInto(m uint16, p, b []byte) ([]byte, error) { panic("unused") }
func (f *funcCaller) SendAsync(p []byte, cb func([]byte, error)) error     { return f.send(p, cb) }
func (f *funcCaller) SendMethodAsync(m uint16, p []byte, cb func([]byte, error)) error {
	return f.send(p, cb)
}
func (f *funcCaller) SendOneWay(p []byte) error                 { return nil }
func (f *funcCaller) SendMethodOneWay(m uint16, p []byte) error { return nil }
func (f *funcCaller) Close()                                    {}
