// Package faultnet injects reproducible faults into the RPC stack so
// failure-domain behavior — deadlines, circuit breakers, hedge settling,
// buffer accounting — can be proven under test rather than asserted.
//
// Two wrapping layers compose with the rest of the tree:
//
//   - WrapCaller wraps any transport implementing the 9-method Caller
//     surface (memnet client, tcpnet client, managed caller, cluster) and
//     injects call-level faults: dist-driven added latency, blackholed
//     peers (the callback never fires — what a wedged server looks like),
//     mid-call connection resets (server executes, reply lost), dropped
//     replies, and depth-frame loss.
//   - WrapConn / WrapListener wrap a net.Conn / net.Listener and inject
//     byte-level faults on the write path: added latency, partial writes,
//     corrupt frames, and mid-write resets. Wrapped conns intentionally do
//     not implement syscall.Conn, so a tcpnet server routes them to its
//     portable fallback poller and a tcpnet client reads them through a
//     plain read loop — no epoll assumptions are violated.
//
// Every injector is a pure function of Plan.Seed plus the op sequence, so
// a failing chaos run replays exactly from its logged seed. A Script hook
// can pin specific ops to specific faults when a test needs a scheduled
// interleaving instead of a probabilistic one.
package faultnet

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"zygos/internal/dist"
)

// Caller is the transport surface faultnet wraps — the same structural
// interface internal/cluster accepts for a backend, so a wrapped caller
// drops into a Cluster (or anywhere else) unchanged.
type Caller interface {
	Call(payload []byte) ([]byte, error)
	CallInto(payload, buf []byte) ([]byte, error)
	CallMethod(method uint16, payload []byte) ([]byte, error)
	CallMethodInto(method uint16, payload, buf []byte) ([]byte, error)
	SendAsync(payload []byte, cb func(resp []byte, err error)) error
	SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error
	SendOneWay(payload []byte) error
	SendMethodOneWay(method uint16, payload []byte) error
	Close()
}

// ErrInjectedReset is the error a faulted call or write observes when the
// plan resets the connection mid-call: from the caller's view the request
// may or may not have executed, exactly like a real TCP RST.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Action is one injected fault decision.
type Action int

const (
	// Pass forwards the op unmodified.
	Pass Action = iota
	// Delay adds Plan.Latency (or DefaultDelay) before the op completes.
	Delay
	// Partial splits a conn write into two segments with a gap between
	// them (conn layer only; a caller-level Partial is treated as Pass).
	Partial
	// Reset fails the op with ErrInjectedReset after the request has been
	// forwarded: the peer executes it but the reply is lost.
	Reset
	// Blackhole swallows the op entirely — the request is never forwarded
	// and the callback never fires (caller layer; conns treat it as Reset).
	Blackhole
	// DropReply forwards the request but discards the reply, without an
	// error — a one-way packet-loss fault only a deadline can unstick
	// (caller layer only).
	DropReply
	// Corrupt flips one byte of a conn write so the peer sees a truncated
	// or garbage frame (conn layer only).
	Corrupt
)

// DefaultDelay is the injected latency when Plan.Latency is nil.
const DefaultDelay = 200 * time.Microsecond

// Plan is a seeded fault schedule. Zero-value probabilities inject
// nothing; Script, when set, is consulted first and its decision wins
// whenever ok is true.
type Plan struct {
	Seed int64

	// Per-op fault probabilities in [0,1], evaluated in order: reset,
	// blackhole, drop-reply, corrupt, partial, delay.
	PReset     float64
	PBlackhole float64
	PDropReply float64
	PCorrupt   float64
	PPartial   float64
	PDelay     float64

	// PDropDepth drops piggybacked depth reports at the caller layer,
	// starving the balancer of load signal.
	PDropDepth float64

	// Latency samples the added delay for Delay actions (nanoseconds);
	// nil means DefaultDelay.
	Latency dist.Dist

	// Script, when non-nil, pins op n (0-based, per wrapper) to an
	// action. Return ok=false to fall through to the probabilities.
	Script func(op uint64) (a Action, ok bool)
}

// Stats counts injected faults, for test assertions.
type Stats struct {
	Ops         uint64
	Delays      uint64
	Partials    uint64
	Resets      uint64
	Blackholes  uint64
	DropReplies uint64
	Corrupts    uint64
	DropDepths  uint64
}

// injector makes seeded fault decisions. The rng is guarded by mu so one
// injector can serve concurrent ops deterministically *in aggregate*
// (the exact op→fault mapping under concurrency depends on arrival
// order, but the fault mix does not).
type injector struct {
	plan Plan

	mu  sync.Mutex
	rng *rand.Rand
	op  uint64

	delays      atomic.Uint64
	partials    atomic.Uint64
	resets      atomic.Uint64
	blackholes  atomic.Uint64
	dropReplies atomic.Uint64
	corrupts    atomic.Uint64
	dropDepths  atomic.Uint64
}

func newInjector(plan Plan) *injector {
	return &injector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// decide picks the action for the next op and, for Delay, its duration.
func (in *injector) decide() (Action, time.Duration) {
	in.mu.Lock()
	n := in.op
	in.op++
	// One roll per op even when a Script decides, so a given seed
	// replays the same probabilistic tail regardless of Script edits.
	roll := in.rng.Float64()
	lat := int64(DefaultDelay)
	if in.plan.Latency != nil {
		lat = in.plan.Latency.Sample(in.rng)
	}
	in.mu.Unlock()

	if in.plan.Script != nil {
		if a, ok := in.plan.Script(n); ok {
			return in.note(a), time.Duration(lat)
		}
	}
	p := &in.plan
	switch {
	case roll < p.PReset:
		return in.note(Reset), 0
	case roll < p.PReset+p.PBlackhole:
		return in.note(Blackhole), 0
	case roll < p.PReset+p.PBlackhole+p.PDropReply:
		return in.note(DropReply), 0
	case roll < p.PReset+p.PBlackhole+p.PDropReply+p.PCorrupt:
		return in.note(Corrupt), 0
	case roll < p.PReset+p.PBlackhole+p.PDropReply+p.PCorrupt+p.PPartial:
		return in.note(Partial), 0
	case roll < p.PReset+p.PBlackhole+p.PDropReply+p.PCorrupt+p.PPartial+p.PDelay:
		return in.note(Delay), time.Duration(lat)
	}
	return Pass, 0
}

func (in *injector) note(a Action) Action {
	switch a {
	case Delay:
		in.delays.Add(1)
	case Partial:
		in.partials.Add(1)
	case Reset:
		in.resets.Add(1)
	case Blackhole:
		in.blackholes.Add(1)
	case DropReply:
		in.dropReplies.Add(1)
	case Corrupt:
		in.corrupts.Add(1)
	}
	return a
}

// dropDepth decides whether one depth report is lost.
func (in *injector) dropDepth() bool {
	if in.plan.PDropDepth <= 0 {
		return false
	}
	in.mu.Lock()
	drop := in.rng.Float64() < in.plan.PDropDepth
	in.mu.Unlock()
	if drop {
		in.dropDepths.Add(1)
	}
	return drop
}

func (in *injector) stats() Stats {
	in.mu.Lock()
	ops := in.op
	in.mu.Unlock()
	return Stats{
		Ops:         ops,
		Delays:      in.delays.Load(),
		Partials:    in.partials.Load(),
		Resets:      in.resets.Load(),
		Blackholes:  in.blackholes.Load(),
		DropReplies: in.dropReplies.Load(),
		Corrupts:    in.corrupts.Load(),
		DropDepths:  in.dropDepths.Load(),
	}
}

// FaultyCaller wraps an inner transport Caller with call-level fault
// injection. It implements Caller itself plus the OnDepth/Depth pass-
// throughs the cluster tier probes for, so it is a drop-in backend.
type FaultyCaller struct {
	inner Caller
	in    *injector
}

// WrapCaller wraps inner with the faults described by plan.
func WrapCaller(inner Caller, plan Plan) *FaultyCaller {
	return &FaultyCaller{inner: inner, in: newInjector(plan)}
}

// FaultStats returns the injected-fault counters so far.
func (f *FaultyCaller) FaultStats() Stats { return f.in.stats() }

// sendFaulted applies the caller-level fault model to one async send.
// fwd forwards the request to the inner transport with the given
// callback; it returns the transport's synchronous error, if any.
func (f *FaultyCaller) sendFaulted(cb func(resp []byte, err error), fwd func(cb func(resp []byte, err error)) error) error {
	a, lat := f.in.decide()
	switch a {
	case Blackhole:
		// Wedged peer: the request vanishes and the callback never
		// fires. Only a deadline above us can unstick the op.
		return nil
	case Reset:
		// The request is forwarded (the peer executes it) but the
		// connection "dies" before the reply: the real reply is
		// discarded and the caller observes a reset shortly after.
		err := fwd(func([]byte, error) {})
		if err != nil {
			return err
		}
		time.AfterFunc(DefaultDelay, func() { cb(nil, ErrInjectedReset) })
		return nil
	case DropReply:
		// Forwarded, executed, reply lost without any signal.
		return fwd(func([]byte, error) {})
	case Delay:
		// The reply is held back by lat. resp is a view into the
		// transport's parse buffer, which is recycled once the real
		// callback returns — so it must be copied before deferring.
		return fwd(func(resp []byte, err error) {
			var cp []byte
			if resp != nil {
				cp = append(cp, resp...)
			}
			time.AfterFunc(lat, func() { cb(cp, err) })
		})
	default:
		return fwd(cb)
	}
}

// callFaulted runs one blocking call through the async fault model.
func (f *FaultyCaller) callFaulted(buf []byte, fwd func(cb func(resp []byte, err error)) error) ([]byte, error) {
	type res struct {
		resp []byte
		err  error
	}
	ch := make(chan res, 1)
	err := f.sendFaulted(func(resp []byte, err error) {
		if resp != nil {
			resp = append(buf, resp...)
		}
		ch <- res{resp, err}
	}, fwd)
	if err != nil {
		return nil, err
	}
	r := <-ch // a Blackhole/DropReply on a blocking call hangs, as it would in production
	return r.resp, r.err
}

func (f *FaultyCaller) Call(payload []byte) ([]byte, error) {
	return f.callFaulted(nil, func(cb func([]byte, error)) error {
		return f.inner.SendAsync(payload, cb)
	})
}

func (f *FaultyCaller) CallInto(payload, buf []byte) ([]byte, error) {
	return f.callFaulted(buf, func(cb func([]byte, error)) error {
		return f.inner.SendAsync(payload, cb)
	})
}

func (f *FaultyCaller) CallMethod(method uint16, payload []byte) ([]byte, error) {
	return f.callFaulted(nil, func(cb func([]byte, error)) error {
		return f.inner.SendMethodAsync(method, payload, cb)
	})
}

func (f *FaultyCaller) CallMethodInto(method uint16, payload, buf []byte) ([]byte, error) {
	return f.callFaulted(buf, func(cb func([]byte, error)) error {
		return f.inner.SendMethodAsync(method, payload, cb)
	})
}

func (f *FaultyCaller) SendAsync(payload []byte, cb func(resp []byte, err error)) error {
	return f.sendFaulted(cb, func(fcb func([]byte, error)) error {
		return f.inner.SendAsync(payload, fcb)
	})
}

func (f *FaultyCaller) SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error {
	return f.sendFaulted(cb, func(fcb func([]byte, error)) error {
		return f.inner.SendMethodAsync(method, payload, fcb)
	})
}

// budgetSender mirrors the optional deadline-budget surface of the
// inner transports, so a wrapped caller still carries wire budgets
// (the cluster tier type-asserts for it at every dispatch).
type budgetSender interface {
	SendMethodBudgetAsync(method uint16, payload []byte, d time.Duration, cb func(resp []byte, err error)) error
}

// SendMethodBudgetAsync forwards a budget-stamped send through the
// fault plan; if the inner transport has no budget surface the budget
// is dropped and the send degrades to SendMethodAsync.
func (f *FaultyCaller) SendMethodBudgetAsync(method uint16, payload []byte, d time.Duration, cb func(resp []byte, err error)) error {
	bs, ok := f.inner.(budgetSender)
	if !ok {
		return f.SendMethodAsync(method, payload, cb)
	}
	return f.sendFaulted(cb, func(fcb func([]byte, error)) error {
		return bs.SendMethodBudgetAsync(method, payload, d, fcb)
	})
}

func (f *FaultyCaller) oneWayFaulted(fwd func() error) error {
	a, _ := f.in.decide()
	switch a {
	case Blackhole, DropReply:
		return nil
	case Reset:
		return ErrInjectedReset
	}
	return fwd()
}

func (f *FaultyCaller) SendOneWay(payload []byte) error {
	return f.oneWayFaulted(func() error { return f.inner.SendOneWay(payload) })
}

func (f *FaultyCaller) SendMethodOneWay(method uint16, payload []byte) error {
	return f.oneWayFaulted(func() error { return f.inner.SendMethodOneWay(method, payload) })
}

func (f *FaultyCaller) Close() { f.inner.Close() }

// depthSink mirrors the optional depth-report surface of the inner
// transports (memnet client, managed caller): the cluster tier type-
// asserts for it when wiring balancer load signal.
type depthSink interface {
	OnDepth(fn func(depth uint32))
}

// OnDepth forwards depth reports from the inner transport, dropping a
// PDropDepth fraction so tests can starve the balancer of load signal.
// It is a no-op if the inner transport has no depth surface.
func (f *FaultyCaller) OnDepth(fn func(depth uint32)) {
	ds, ok := f.inner.(depthSink)
	if !ok {
		return
	}
	ds.OnDepth(func(depth uint32) {
		if f.in.dropDepth() {
			return
		}
		fn(depth)
	})
}
