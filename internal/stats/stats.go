// Package stats provides the measurement primitives used throughout the
// ZygOS reproduction: exact percentile computation over recorded samples,
// a log-bucketed histogram for high-volume latency recording (HDR-style),
// complementary CDFs, and small summary helpers.
//
// All latency values are expressed in nanoseconds as int64, matching the
// simulator clock (internal/sim) and time.Duration.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample is a collection of raw observations. The zero value is ready to use.
// Sample keeps every observation and therefore computes exact percentiles;
// use Histogram for bounded-memory recording of very large runs.
type Sample struct {
	values []int64
	sorted bool
}

// NewSample returns a Sample with capacity preallocated for n observations.
func NewSample(n int) *Sample {
	return &Sample{values: make([]int64, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(v int64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// Len reports the number of recorded observations.
func (s *Sample) Len() int { return len(s.values) }

// Reset discards all observations but keeps the allocated capacity.
func (s *Sample) Reset() {
	s.values = s.values[:0]
	s.sorted = false
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Slice(s.values, func(i, j int) bool { return s.values[i] < s.values[j] })
		s.sorted = true
	}
}

// Percentile returns the value at quantile p in [0,1] using the
// nearest-rank method. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) int64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 1 {
		return s.values[len(s.values)-1]
	}
	rank := int(math.Ceil(p * float64(len(s.values))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s.values) {
		rank = len(s.values)
	}
	return s.values[rank-1]
}

// P99 is shorthand for Percentile(0.99), the paper's SLO metric.
func (s *Sample) P99() int64 { return s.Percentile(0.99) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += float64(v)
	}
	return sum / float64(len(s.values))
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() int64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() int64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[0]
}

// StdDev returns the population standard deviation of the sample.
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := float64(v) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// CCDF returns the complementary cumulative distribution P[X > x] evaluated
// at each recorded value, as (value, probability) pairs sorted by value.
// Duplicate values are merged. It returns nil for an empty sample.
func (s *Sample) CCDF() []CCDFPoint {
	if len(s.values) == 0 {
		return nil
	}
	s.ensureSorted()
	n := len(s.values)
	var out []CCDFPoint
	for i := 0; i < n; {
		j := i
		for j < n && s.values[j] == s.values[i] {
			j++
		}
		out = append(out, CCDFPoint{Value: s.values[i], Prob: float64(n-j) / float64(n)})
		i = j
	}
	return out
}

// CCDFPoint is one point of a complementary CDF: Prob = P[X > Value].
type CCDFPoint struct {
	Value int64
	Prob  float64
}

// Summary holds the classical summary statistics of a run.
type Summary struct {
	Count  int
	Mean   float64
	P50    int64
	P90    int64
	P95    int64
	P99    int64
	P999   int64
	Max    int64
	StdDev float64
}

// Summarize computes a Summary from the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		Count:  s.Len(),
		Mean:   s.Mean(),
		P50:    s.Percentile(0.50),
		P90:    s.Percentile(0.90),
		P95:    s.Percentile(0.95),
		P99:    s.Percentile(0.99),
		P999:   s.Percentile(0.999),
		Max:    s.Max(),
		StdDev: s.StdDev(),
	}
}

// String renders the summary in microseconds, the paper's unit of record.
func (s Summary) String() string {
	us := func(v int64) float64 { return float64(v) / 1e3 }
	return fmt.Sprintf("n=%d mean=%.2fus p50=%.2fus p90=%.2fus p99=%.2fus p999=%.2fus max=%.2fus",
		s.Count, s.Mean/1e3, us(s.P50), us(s.P90), us(s.P99), us(s.P999), us(s.Max))
}
