package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Percentile(0.99) != 0 || s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	if s.CCDF() != nil {
		t.Fatal("empty sample CCDF should be nil")
	}
}

func TestSamplePercentileNearestRank(t *testing.T) {
	s := NewSample(10)
	for i := int64(1); i <= 10; i++ {
		s.Add(i * 10)
	}
	cases := []struct {
		p    float64
		want int64
	}{
		{0.0, 10}, {0.1, 10}, {0.5, 50}, {0.90, 90}, {0.99, 100}, {1.0, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestSampleOrderInsensitive(t *testing.T) {
	a := NewSample(0)
	b := NewSample(0)
	vals := []int64{5, 3, 9, 1, 7, 7, 2}
	for _, v := range vals {
		a.Add(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Add(vals[i])
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("percentile %v differs by insertion order", p)
		}
	}
}

func TestSampleStats(t *testing.T) {
	s := NewSample(4)
	for _, v := range []int64{2, 4, 4, 10} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
	if got := s.Max(); got != 10 {
		t.Errorf("Max = %v, want 10", got)
	}
	want := math.Sqrt((9 + 1 + 1 + 25) / 4.0)
	if got := s.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestSampleReset(t *testing.T) {
	s := NewSample(2)
	s.Add(1)
	s.Add(2)
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("reset should empty the sample")
	}
	s.Add(7)
	if s.Percentile(0.5) != 7 {
		t.Fatal("sample unusable after reset")
	}
}

func TestCCDF(t *testing.T) {
	s := NewSample(4)
	for _, v := range []int64{1, 1, 2, 4} {
		s.Add(v)
	}
	pts := s.CCDF()
	want := []CCDFPoint{{1, 0.5}, {2, 0.25}, {4, 0}}
	if len(pts) != len(want) {
		t.Fatalf("CCDF len = %d, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("CCDF[%d] = %+v, want %+v", i, pts[i], want[i])
		}
	}
}

func TestCCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSample(1000)
	for i := 0; i < 1000; i++ {
		s.Add(rng.Int63n(500))
	}
	pts := s.CCDF()
	for i := 1; i < len(pts); i++ {
		if pts[i].Value <= pts[i-1].Value {
			t.Fatal("CCDF values must be strictly increasing")
		}
		if pts[i].Prob > pts[i-1].Prob {
			t.Fatal("CCDF probabilities must be non-increasing")
		}
	}
	if pts[len(pts)-1].Prob != 0 {
		t.Fatal("last CCDF point must have probability 0")
	}
}

func TestSummaryString(t *testing.T) {
	s := NewSample(1)
	s.Add(12345)
	sum := s.Summarize()
	if sum.Count != 1 || sum.P99 != 12345 {
		t.Fatalf("unexpected summary %+v", sum)
	}
	if sum.String() == "" {
		t.Fatal("String should be non-empty")
	}
}

// Property: histogram percentile is within one bucket (≤1% relative error for
// values ≥128) of the exact sample percentile.
func TestHistogramMatchesSample(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram()
		s := NewSample(5000)
		for i := 0; i < 5000; i++ {
			// Mix scales: ns to tens of ms.
			var v int64
			switch rng.Intn(3) {
			case 0:
				v = rng.Int63n(1000)
			case 1:
				v = rng.Int63n(1000000)
			default:
				v = rng.Int63n(50000000)
			}
			h.Record(v)
			s.Add(v)
		}
		for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
			exact := s.Percentile(p)
			est := h.Percentile(p)
			if est < exact {
				t.Fatalf("p%v: histogram %d below exact %d", p, est, exact)
			}
			// Upper bound error: one bucket width ≈ value/128 + 1.
			slack := exact/64 + 2
			if est > exact+slack {
				t.Fatalf("p%v: histogram %d too far above exact %d", p, est, exact)
			}
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Record(100)
	h.Record(200)
	h.Record(300)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 200 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 300 || h.Min() != 100 {
		t.Fatalf("Max/Min = %d/%d", h.Max(), h.Min())
	}
	if h.String() == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("negative values must clamp to 0, got min %d", h.Min())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(0); i < 100; i++ {
		a.Record(i)
		b.Record(i + 1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 1099 || a.Min() != 0 {
		t.Fatalf("merged max/min = %d/%d", a.Max(), a.Min())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset should clear histogram")
	}
	h.Record(9)
	if h.Percentile(1) != 9 {
		t.Fatal("histogram unusable after reset")
	}
}

// Property: bucketIndex is monotone and bucketLow inverts it.
func TestBucketIndexProperties(t *testing.T) {
	h := NewHistogram()
	f := func(raw uint32) bool {
		v := int64(raw)
		i := h.bucketIndex(v)
		lo := h.bucketLow(i)
		up := h.bucketUp(i)
		return lo <= v && v <= up && h.bucketIndex(lo) == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	h := NewHistogram()
	prev := -1
	for v := int64(0); v < 100000; v += 37 {
		i := h.bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = i
	}
}

func TestLeadingZeros(t *testing.T) {
	if leadingZeros64(0) != 64 {
		t.Fatal("lz(0) != 64")
	}
	if leadingZeros64(1) != 63 {
		t.Fatal("lz(1) != 63")
	}
	if leadingZeros64(1<<63) != 0 {
		t.Fatal("lz(msb) != 0")
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i%1000) * 1000)
	}
}

func BenchmarkSamplePercentile(b *testing.B) {
	s := NewSample(100000)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		s.Add(rng.Int63n(1000000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.sorted = false
		_ = s.Percentile(0.99)
	}
}

func TestSortStability(t *testing.T) {
	// Percentile must equal a manual sort's nearest-rank result.
	rng := rand.New(rand.NewSource(3))
	s := NewSample(0)
	var raw []int64
	for i := 0; i < 997; i++ {
		v := rng.Int63n(10000)
		s.Add(v)
		raw = append(raw, v)
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	rank := int(math.Ceil(0.99 * float64(len(raw))))
	if got := s.Percentile(0.99); got != raw[rank-1] {
		t.Fatalf("p99 = %d, want %d", got, raw[rank-1])
	}
}
