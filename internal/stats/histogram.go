package stats

import (
	"fmt"
	"math"
)

// Histogram is a log-bucketed latency histogram in the spirit of HDR
// histograms: values are grouped into buckets whose width grows
// geometrically, giving a bounded relative error over a very wide dynamic
// range with O(1) recording and fixed memory.
//
// The default layout (see NewHistogram) covers [0, ~1 hour) in nanoseconds
// with a relative error under 1%, which is ample for microsecond-scale
// latency work.
type Histogram struct {
	// subBuckets is the number of linear sub-buckets per power-of-two
	// "segment"; higher means finer resolution.
	subBuckets int
	shift      uint // log2(subBuckets)
	counts     []uint64
	total      uint64
	sum        float64
	max        int64
	min        int64
}

// NewHistogram returns a histogram with 128 linear sub-buckets per binary
// order of magnitude (relative error < 1/128 ≈ 0.8%).
func NewHistogram() *Histogram {
	const sub = 128
	h := &Histogram{
		subBuckets: sub,
		shift:      7,
		min:        math.MaxInt64,
	}
	// 64 segments cover the entire non-negative int64 range.
	h.counts = make([]uint64, (64-h.shift)*uint(sub)+uint(sub))
	return h
}

// bucketIndex maps a value to its bucket index.
func (h *Histogram) bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < int64(h.subBuckets) {
		return int(v)
	}
	// Position of the highest set bit.
	msb := 63 - leadingZeros64(uint64(v))
	seg := msb - int(h.shift) // how far above the linear range we are
	sub := int(v >> uint(seg))
	// sub is in [subBuckets, 2*subBuckets).
	return (seg+1)*h.subBuckets + (sub - h.subBuckets)
}

// bucketLow returns the lowest value mapping to bucket index i; used to
// reconstruct representative values when iterating.
func (h *Histogram) bucketLow(i int) int64 {
	if i < h.subBuckets {
		return int64(i)
	}
	seg := i/h.subBuckets - 1
	sub := i%h.subBuckets + h.subBuckets
	return int64(sub) << uint(seg)
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	idx := h.bucketIndex(v)
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean of recorded observations (exact, not bucketed).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the maximum recorded value (exact).
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Min returns the minimum recorded value (exact).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Percentile returns an upper-bound estimate of the value at quantile p,
// accurate to the bucket resolution.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(p * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			// Upper edge of bucket i, clamped to the true max.
			up := h.bucketUp(i)
			if up > h.max {
				up = h.max
			}
			return up
		}
	}
	return h.max
}

func (h *Histogram) bucketUp(i int) int64 {
	if i+1 < len(h.counts) {
		return h.bucketLow(i+1) - 1
	}
	return math.MaxInt64
}

// Merge adds all observations recorded in other into h. The two histograms
// must have the same layout (both from NewHistogram).
func (h *Histogram) Merge(other *Histogram) {
	if other.subBuckets != h.subBuckets {
		panic("stats: merging histograms with different layouts")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.max > h.max {
			h.max = other.max
		}
		if other.min < h.min {
			h.min = other.min
		}
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.max = 0
	h.min = math.MaxInt64
}

// String summarizes the histogram in microseconds.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.2fus p50=%.2fus p99=%.2fus max=%.2fus",
		h.total, h.Mean()/1e3,
		float64(h.Percentile(0.50))/1e3,
		float64(h.Percentile(0.99))/1e3,
		float64(h.max)/1e3)
}
