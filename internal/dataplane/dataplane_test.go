package dataplane

import (
	"testing"

	"zygos/internal/dist"
)

const us = int64(1000)

// base returns a config at the given load fraction of 16-core saturation.
func base(sys System, d dist.Dist, load float64) Config {
	rate := load * 16 / d.Mean() * 1e9
	return Config{
		System:     sys,
		Cores:      16,
		Conns:      2752,
		Service:    d,
		RatePerSec: rate,
		Requests:   40000,
		Warmup:     4000,
		Seed:       7,
		Interrupts: true,
	}
}

func TestAllSystemsCompleteAtModerateLoad(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(10 * us)}
	for _, sys := range []System{IX, LinuxPartitioned, LinuxFloating, Zygos} {
		cfg := base(sys, d, 0.4)
		res := Run(cfg)
		want := cfg.Requests - cfg.Warmup
		if res.Completed != want {
			t.Errorf("%v: completed %d of %d, dropped %d", sys, res.Completed, want, res.Dropped)
		}
		if res.Latencies.Min() < 10 { // must include at least the service floor
			t.Errorf("%v: implausible min latency %d", sys, res.Latencies.Min())
		}
	}
}

// ZygOS's work-conserving scheduler must beat IX's partitioned FCFS at the
// tail for medium tasks under medium-high load (Figure 6).
func TestZygosBeatsIXAtTail(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(10 * us)}
	ix := Run(base(IX, d, 0.7)).Latencies.P99()
	zy := Run(base(Zygos, d, 0.7)).Latencies.P99()
	if zy >= ix {
		t.Errorf("zygos p99 %dns should beat IX p99 %dns at 70%% load", zy, ix)
	}
}

// Interrupts eliminate head-of-line blocking: the cooperative variant has
// a visibly worse tail for dispersive distributions (§6.1, Figure 6).
func TestInterruptsReduceTail(t *testing.T) {
	d := dist.NewBimodal1(10 * us)
	cfg := base(Zygos, d, 0.6)
	with := Run(cfg).Latencies.P99()
	cfg.Interrupts = false
	cfg.Seed = 7
	without := Run(cfg).Latencies.P99()
	if with >= without {
		t.Errorf("with IPIs p99 %dns should beat cooperative p99 %dns", with, without)
	}
}

// The steal rate follows the paper's inverted-U (Figure 8): it rises from
// low load toward a peak below saturation, then falls as all cores stay
// busy with their own queues.
func TestStealRateShape(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(25 * us)}
	frac := func(load float64) float64 {
		return Run(base(Zygos, d, load)).StealFraction()
	}
	low, mid, high := frac(0.15), frac(0.75), frac(0.98)
	if mid <= low {
		t.Errorf("steal fraction should grow from low load: low=%.3f mid=%.3f", low, mid)
	}
	if high >= mid {
		t.Errorf("steal fraction should fall near saturation: mid=%.3f high=%.3f", mid, high)
	}
	if mid < 0.10 {
		t.Errorf("peak steal fraction %.3f suspiciously low", mid)
	}
}

// Without interrupts the cooperative steal rate peaks near the ~33-35%
// the paper measured (§6.1). Allow a generous band.
func TestCooperativeStealPeak(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(25 * us)}
	peak := 0.0
	for _, load := range []float64{0.5, 0.65, 0.8, 0.9} {
		cfg := base(Zygos, d, load)
		cfg.Interrupts = false
		if f := Run(cfg).StealFraction(); f > peak {
			peak = f
		}
	}
	if peak < 0.20 || peak > 0.50 {
		t.Errorf("cooperative steal peak %.3f outside [0.20, 0.50] (paper: ~0.33-0.35)", peak)
	}
}

// IX's adaptive batching (B=64) raises saturation throughput for tiny
// tasks but hurts the tail at low load for medium tasks (Figures 9, 11).
func TestBatchingTradeoff(t *testing.T) {
	// Tail for 10us tasks at moderate load: B=1 must be better, because a
	// 64-deep batch holds every response back to the end of the batch.
	med := dist.Deterministic{V: 10 * us}
	b1 := base(IX, med, 0.55)
	b1.Batch = 1
	b64 := base(IX, med, 0.55)
	b64.Batch = 64
	p1 := Run(b1).Latencies.P99()
	p64 := Run(b64).Latencies.P99()
	if p1 >= p64 {
		t.Errorf("B=1 p99 %dns should beat B=64 p99 %dns at moderate load", p1, p64)
	}

	// Saturation throughput for tiny (2us) tasks: with ~0.9us of per-event
	// overhead, zero-overhead load 0.60 means ~87%% utilization under B=64
	// but >100%% under B=1 (which also pays the fixed stack cost per
	// packet). Detect saturation through an exploding tail.
	tiny := dist.Deterministic{V: 2 * us}
	probe := func(batch int) int64 {
		cfg := base(IX, tiny, 0.60)
		cfg.Batch = batch
		cfg.Requests = 30000
		cfg.Warmup = 3000
		return Run(cfg).Latencies.P99()
	}
	sustainable := int64(100 * us) // 50 x S̄: far beyond any stable tail
	if p := probe(64); p > sustainable {
		t.Errorf("B=64 p99 %dns should be stable at 60%% load on 2us tasks", p)
	}
	if p := probe(1); p < sustainable {
		t.Errorf("B=1 p99 %dns should explode at 60%% load on 2us tasks", p)
	}
}

// Linux-floating converges to centralized-FCFS: for large tasks it beats
// Linux-partitioned at the tail (Figure 3).
func TestFloatingBeatsPartitionedLargeTasks(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(100 * us)}
	fl := Run(base(LinuxFloating, d, 0.7)).Latencies.P99()
	pa := Run(base(LinuxPartitioned, d, 0.7)).Latencies.P99()
	if fl >= pa {
		t.Errorf("floating p99 %dns should beat partitioned %dns for 100us tasks", fl, pa)
	}
}

// Dataplanes must beat Linux for small tasks (Figure 3: the overhead gap).
func TestDataplanesBeatLinuxSmallTasks(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(10 * us)}
	ix := Run(base(IX, d, 0.5)).Latencies.P99()
	lp := Run(base(LinuxPartitioned, d, 0.5)).Latencies.P99()
	if ix >= lp {
		t.Errorf("IX p99 %dns should beat Linux-partitioned %dns for 10us tasks", ix, lp)
	}
	zy := Run(base(Zygos, d, 0.5)).Latencies.P99()
	lf := Run(base(LinuxFloating, d, 0.5)).Latencies.P99()
	if zy >= lf {
		t.Errorf("zygos p99 %dns should beat Linux-floating %dns for 10us tasks", zy, lf)
	}
}

// Overload must tail-drop, not hang or grow without bound.
func TestOverloadDrops(t *testing.T) {
	d := dist.Deterministic{V: 10 * us}
	cfg := base(IX, d, 0.5)
	cfg.RatePerSec = 3 * 16 / d.Mean() * 1e9 // 3x saturation
	cfg.RingCap = 256
	res := Run(cfg)
	if res.Dropped == 0 {
		t.Error("3x overload with small rings must drop")
	}
}

func TestZygosOverloadDrops(t *testing.T) {
	d := dist.Deterministic{V: 10 * us}
	cfg := base(Zygos, d, 0.5)
	cfg.RatePerSec = 3 * 16 / d.Mean() * 1e9
	cfg.RingCap = 256
	res := Run(cfg)
	if res.Dropped == 0 {
		t.Error("zygos at 3x overload with small rings must drop")
	}
}

// Same seed, same result — the simulations must be deterministic.
func TestRunDeterminism(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(10 * us)}
	for _, sys := range []System{IX, LinuxPartitioned, LinuxFloating, Zygos} {
		a := Run(base(sys, d, 0.6))
		b := Run(base(sys, d, 0.6))
		if a.Latencies.P99() != b.Latencies.P99() || a.Steals != b.Steals {
			t.Errorf("%v: same-seed runs differ", sys)
		}
	}
}

// Ordering semantics (§4.3): pipelined requests on one connection must be
// answered in order. With a single connection every event shares one
// socket; completions must preserve arrival order.
func TestPerConnectionOrdering(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(10 * us)}
	cfg := base(Zygos, d, 0.3)
	cfg.Conns = 1
	cfg.Requests = 5000
	cfg.Warmup = 0

	// Replace the normal result recording with an order check by running
	// the simulation and verifying latencies never allow reordering:
	// with one connection, exclusive socket ownership serializes service,
	// so throughput is bounded by one core. Completion order is checked
	// via monotonically increasing completion timestamps per arrival
	// order, which Run guarantees only if the model serializes the
	// connection. We detect violations via the completion counter.
	res := Run(cfg)
	if res.Completed != cfg.Requests {
		t.Fatalf("completed %d of %d", res.Completed, cfg.Requests)
	}
	// All events on one connection: no steal may overlap another core's
	// execution of the same socket. The model counts an event as stolen
	// only when executed off the home core; with one connection the
	// socket is busy during execution, so pipelined events are drained by
	// the owning activation.
	if res.Events < uint64(cfg.Requests) {
		t.Fatalf("events %d < requests %d", res.Events, cfg.Requests)
	}
}

// MaxLoadAtSLO: ZygOS must reach a higher load than IX for exponential
// 25us tasks at the 10x SLO (Figure 7), and land near the paper's ~88% of
// the centralized ideal (~0.963): absolute ~0.85.
func TestMaxLoadOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("bisection sweep is slow")
	}
	d := dist.Exponential{MeanNS: float64(25 * us)}
	mk := func(sys System) Config {
		cfg := base(sys, d, 0.5) // rate replaced by solver
		cfg.Requests = 30000
		cfg.Warmup = 3000
		return cfg
	}
	slo := 250 * us // 10 x 25us
	zy := MaxLoadAtSLO(mk(Zygos), slo, 0.3, 0.99, 6)
	ix := MaxLoadAtSLO(mk(IX), slo, 0.2, 0.99, 6)
	if zy <= ix {
		t.Errorf("zygos max load %.3f should exceed IX %.3f", zy, ix)
	}
	if zy < 0.70 || zy > 0.99 {
		t.Errorf("zygos max load %.3f outside plausible band [0.70, 0.99] (paper: ~0.85)", zy)
	}
	if ix < 0.40 || ix > 0.75 {
		t.Errorf("IX max load %.3f outside plausible band [0.40, 0.75] (partitioned ideal: 0.537)", ix)
	}
}

func TestSystemString(t *testing.T) {
	names := map[System]string{
		IX:               "ix",
		LinuxPartitioned: "linux-partitioned",
		LinuxFloating:    "linux-floating",
		Zygos:            "zygos",
	}
	for sys, want := range names {
		if sys.String() != want {
			t.Errorf("%d.String() = %q, want %q", sys, sys.String(), want)
		}
	}
	if System(42).String() == "" {
		t.Error("unknown system must still render")
	}
}

func TestConfigValidation(t *testing.T) {
	mustPanic := func(name string, cfg Config) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		Run(cfg)
	}
	mustPanic("nil service", Config{System: IX, RatePerSec: 1000})
	mustPanic("zero rate", Config{System: IX, Service: dist.Deterministic{V: 1000}})
	mustPanic("bad system", Config{System: System(9), Service: dist.Deterministic{V: 1000}, RatePerSec: 1})
}

func TestStealFractionZeroEvents(t *testing.T) {
	var r Result
	if r.StealFraction() != 0 {
		t.Error("no events must give 0 steal fraction")
	}
}

// IPIs must actually fire under dispersive load (they are the mechanism
// that eliminates HOL blocking).
func TestIPIsFire(t *testing.T) {
	d := dist.NewBimodal1(10 * us)
	res := Run(base(Zygos, d, 0.6))
	if res.IPIs == 0 {
		t.Error("expected IPIs under bimodal load with interrupts enabled")
	}
	cfg := base(Zygos, d, 0.6)
	cfg.Interrupts = false
	res = Run(cfg)
	if res.IPIs != 0 {
		t.Error("cooperative mode must send no IPIs")
	}
}

func TestAchievedThroughputTracksOffered(t *testing.T) {
	d := dist.Deterministic{V: 10 * us}
	cfg := base(Zygos, d, 0.5)
	res := Run(cfg)
	ratio := res.AchievedRPS / res.OfferedRPS
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("achieved/offered = %.3f, want ~1 at 50%% load", ratio)
	}
}
