package dataplane

import (
	"testing"

	"zygos/internal/dist"
)

// A single-core ZygOS has nobody to steal from or interrupt; it must
// degenerate to a plain FCFS server without deadlock or counters firing.
func TestSingleCore(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(10 * us)}
	cfg := Config{
		System:     Zygos,
		Cores:      1,
		Conns:      64,
		Service:    d,
		RatePerSec: 0.5 / d.Mean() * 1e9,
		Requests:   20000,
		Warmup:     2000,
		Seed:       3,
		Interrupts: true,
	}
	res := Run(cfg)
	if res.Completed != 18000 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.Steals != 0 {
		t.Fatalf("single core stole %d events", res.Steals)
	}
	if res.IPIs != 0 {
		t.Fatalf("single core sent %d IPIs", res.IPIs)
	}
}

// Low fan-in (fewer connections than cores x queue depth) exercises the
// per-connection serialization: with very few connections, per-connection
// ordering limits parallelism but nothing may deadlock or drop.
func TestLowFanIn(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(10 * us)}
	for _, conns := range []int{1, 2, 8} {
		cfg := base(Zygos, d, 0.3)
		cfg.Conns = conns
		cfg.Requests = 20000
		cfg.Warmup = 2000
		res := Run(cfg)
		if res.Completed != 18000 {
			t.Fatalf("conns=%d completed %d", conns, res.Completed)
		}
	}
}

// Back-to-back events on one connection are processed by a single
// activation (the §6.2 implicit batching): with one connection and bursty
// arrivals, events must never interleave across cores — observable as
// zero steals while an activation drains the queue... at minimum the
// run completes with per-connection serialization intact.
func TestImplicitBatchingSingleConn(t *testing.T) {
	d := dist.Deterministic{V: 5 * us}
	cfg := base(Zygos, d, 0.2)
	cfg.Conns = 1
	cfg.Requests = 10000
	cfg.Warmup = 1000
	res := Run(cfg)
	if res.Completed != 9000 {
		t.Fatalf("completed %d", res.Completed)
	}
	// One connection bounds throughput at one core's rate; sojourns can
	// exceed naive expectations but the system must remain stable at 20%
	// aggregate load (= 3.2x one core's capacity... so drops are in fact
	// acceptable here only via ring overflow; ensure no silent loss).
	total := int(res.Dropped) + res.Completed + cfg.Warmup
	if total < cfg.Requests {
		t.Fatalf("lost requests: dropped=%d completed=%d", res.Dropped, res.Completed)
	}
}

// The three-layer model must hold up under the pathological bimodal-2
// distribution (0.1% of requests are 500x the mean): ZygOS's stealing
// plus IPIs keep the tail bounded by the giant tasks themselves, while a
// partitioned system's tail explodes by queueing behind them.
func TestBimodal2Pathology(t *testing.T) {
	d := dist.NewBimodal2(10 * us)
	zy := Run(base(Zygos, d, 0.5)).Latencies.P99()
	ix := Run(base(IX, d, 0.5)).Latencies.P99()
	if zy >= ix {
		t.Errorf("bimodal-2: zygos p99 %dns should beat IX %dns", zy, ix)
	}
}

// Cost-model zero value must be replaced by defaults, not used as "free".
func TestZeroCostsGetDefaults(t *testing.T) {
	d := dist.Deterministic{V: 10 * us}
	cfg := base(IX, d, 0.5)
	cfg.Costs = CostModel{}
	res := Run(cfg)
	// With defaults applied, minimum latency must exceed pure service
	// time (there is always stack overhead).
	if res.Latencies.Min() <= 10*us {
		t.Fatalf("min latency %dns implies zero-cost model was used", res.Latencies.Min())
	}
}

// Warmup must actually exclude early samples.
func TestWarmupExcluded(t *testing.T) {
	d := dist.Deterministic{V: 10 * us}
	cfg := base(IX, d, 0.5)
	cfg.Requests = 10000
	cfg.Warmup = 9000
	res := Run(cfg)
	if res.Completed != 1000 {
		t.Fatalf("measured %d, want 1000", res.Completed)
	}
}
