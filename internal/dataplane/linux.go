package dataplane

import (
	"zygos/internal/nicsim"
	"zygos/internal/sim"
)

// linuxModel simulates the two Linux event-driven configurations of §3.3.
//
// Partitioned mode pins each connection's events to its RSS home core,
// where a dedicated thread loops epoll_wait(maxevents=1) → read → handler →
// write. This is partitioned-FCFS plus per-event syscall cost and
// scheduling jitter.
//
// Floating mode places all connections in one shared pool served by every
// thread (the EPOLLEXCLUSIVE pattern): work-conserving centralized-FCFS
// plus the same syscall costs, a pool lock, and a wakeup latency when an
// idle (sleeping) thread must be kicked.
type linuxModel struct {
	s        *sim.Sim
	cfg      Config
	rss      *nicsim.RSS
	done     func(*Request, sim.Time)
	res      *Result
	floating bool

	// Partitioned state: one queue per core.
	queues []*nicsim.Ring[*Request]
	busy   []bool

	// Floating state: one shared queue, idle-thread count.
	shared *nicsim.Ring[*Request]
	idle   int
}

func newLinuxModel(s *sim.Sim, cfg Config, rss *nicsim.RSS, done func(*Request, sim.Time), res *Result, floating bool) *linuxModel {
	m := &linuxModel{s: s, cfg: cfg, rss: rss, done: done, res: res, floating: floating}
	if floating {
		// The shared pool is bounded only by socket memory; scale the cap
		// with core count so saturation behaviour matches partitioned mode.
		m.shared = nicsim.NewRing[*Request](cfg.RingCap * cfg.Cores)
		m.idle = cfg.Cores
	} else {
		for i := 0; i < cfg.Cores; i++ {
			m.queues = append(m.queues, nicsim.NewRing[*Request](cfg.RingCap))
		}
		m.busy = make([]bool, cfg.Cores)
	}
	return m
}

func (m *linuxModel) arrive(now sim.Time, r *Request) {
	if m.floating {
		if !m.shared.Push(r) {
			m.res.Dropped++
			return
		}
		if m.idle > 0 {
			m.idle--
			// An idle worker sleeps in epoll_wait; waking it costs a futex
			// round trip before it can pick up the event.
			m.s.After(m.cfg.Costs.WakeLatency, func(at sim.Time) { m.serveShared(at) })
		}
		return
	}
	core := m.rss.Queue(uint64(r.Conn))
	if !m.queues[core].Push(r) {
		m.res.Dropped++
		return
	}
	if !m.busy[core] {
		m.busy[core] = true
		m.servePartitioned(now, core)
	}
}

// eventCost draws the per-event syscall-path cost: fixed epoll/read/write
// path, lognormal jitter, and a rare scheduler/softirq hiccup that is the
// dominant contributor to Linux's small-task tail (§3.4).
func (m *linuxModel) eventCost() int64 {
	c := m.cfg.Costs.SyscallFixed + lognormalJitter(m.s, m.cfg.Costs.SyscallJitter, m.cfg.Costs.SyscallSigma)
	if m.cfg.Costs.HiccupProb > 0 && m.s.Rand.Float64() < m.cfg.Costs.HiccupProb {
		c += m.cfg.Costs.HiccupCost
	}
	return c
}

func (m *linuxModel) servePartitioned(now sim.Time, core int) {
	r, ok := m.queues[core].Pop()
	if !ok {
		m.busy[core] = false
		return
	}
	cost := m.eventCost() + r.Service
	m.s.At(now+cost, func(end sim.Time) {
		m.res.Events++
		m.done(r, end)
		m.servePartitioned(end, core)
	})
}

func (m *linuxModel) serveShared(now sim.Time) {
	r, ok := m.shared.Pop()
	if !ok {
		m.idle++
		return
	}
	cost := m.cfg.Costs.LockCost + m.cfg.Costs.FloatingContention + m.eventCost() + r.Service
	m.s.At(now+cost, func(end sim.Time) {
		m.res.Events++
		m.done(r, end)
		m.serveShared(end)
	})
}
