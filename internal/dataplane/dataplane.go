// Package dataplane contains discrete-event full-system models of the four
// server architectures the paper compares (§3.3, §6):
//
//   - IX: a shared-nothing, run-to-completion dataplane with adaptive
//     bounded batching (no stealing; partitioned-FCFS behaviour plus
//     per-packet costs that batching amortizes);
//   - Linux-partitioned: per-core epoll with connections pinned by RSS
//     (partitioned-FCFS plus syscall costs and scheduling jitter);
//   - Linux-floating: one shared connection pool served by all cores
//     (centralized-FCFS plus syscall/wakeup costs);
//   - ZygOS: the paper's contribution — per-core networking, a shuffle
//     layer with work stealing, remote batched syscalls executed on the
//     home core, and inter-processor interrupts that eliminate
//     head-of-line blocking (optional, as in the paper's
//     "no interrupts" ablation).
//
// The models share one cost vocabulary (CostModel) so differences between
// systems come from architecture, not parameter drift. Defaults are
// calibrated so the curves land in the same regime as the paper's testbed
// (per-packet dataplane costs well under 1 µs, Linux syscall paths of a few
// µs with tail jitter); EXPERIMENTS.md records paper-vs-measured for every
// figure.
package dataplane

import (
	"fmt"

	"zygos/internal/dist"
	"zygos/internal/nicsim"
	"zygos/internal/sim"
	"zygos/internal/stats"
)

// System selects which architecture to simulate.
type System int

// The modeled systems.
const (
	IX System = iota
	LinuxPartitioned
	LinuxFloating
	Zygos
)

// String implements fmt.Stringer.
func (sys System) String() string {
	switch sys {
	case IX:
		return "ix"
	case LinuxPartitioned:
		return "linux-partitioned"
	case LinuxFloating:
		return "linux-floating"
	case Zygos:
		return "zygos"
	}
	return fmt.Sprintf("System(%d)", int(sys))
}

// CostModel holds the per-operation costs (all in nanoseconds) that
// separate a real system from its zero-overhead queueing ideal.
type CostModel struct {
	// Dataplane (IX and ZygOS) costs.
	NetStackFixed  int64 // fixed cost of one network-stack invocation
	NetStackPerPkt int64 // per-packet RX protocol processing
	TXPerPkt       int64 // per-packet TX protocol processing + doorbell
	AppDispatch    int64 // per-event cost to cross kernel/user (event conditions + batched syscalls)

	// ZygOS-specific costs.
	StealCost       int64 // remote shuffle-queue steal (trylock + cacheline transfers)
	PollDelay       int64 // time for an idle core to notice remote work
	IPISendCost     int64 // sender-side cost of an IPI
	IPILatency      int64 // delivery latency of an IPI
	IPIHandler      int64 // fixed handler cost paid by the interrupted core
	ZygosInterleave int64 // per-event cache-locality penalty of interleaving user and kernel code instead of batch run-to-completion (§6.2)

	// Linux costs.
	SyscallFixed       int64   // epoll_wait + read + write fixed path per event
	SyscallSigma       float64 // lognormal sigma of syscall-path jitter
	SyscallJitter      int64   // mean of the jitter component added to SyscallFixed
	WakeLatency        int64   // futex/epoll wakeup of a sleeping thread
	LockCost           int64   // shared-pool lock acquisition (floating mode)
	FloatingContention int64   // per-event cost of sharing one epoll set and socket pool across all threads (floating mode)
	HiccupProb         float64 // probability of a scheduler/softirq hiccup per event
	HiccupCost         int64   // cost of one hiccup
}

// DefaultCosts returns the calibrated cost model used for all headline
// experiments. See DESIGN.md §1 for the calibration rationale.
func DefaultCosts() CostModel {
	return CostModel{
		NetStackFixed:  600,
		NetStackPerPkt: 300,
		TXPerPkt:       250,
		AppDispatch:    350,

		// Exit-less (ELI-style) IPIs are cheap: sub-µs delivery and a
		// handler that only replenishes the shuffle queue and flushes TX.
		StealCost:       400,
		PollDelay:       200,
		IPISendCost:     200,
		IPILatency:      800,
		IPIHandler:      300,
		ZygosInterleave: 150,

		// The Linux event path (epoll_wait + read + write, softirq TCP
		// processing) costs a few µs per event with a heavy jitter tail;
		// this is what makes Linux lose the small-task regime in Figure 3
		// despite being work-conserving in floating mode. Floating mode
		// additionally pays a wakeup per event picked up by a sleeping
		// thread and contention on the shared pool, which is why IX beats
		// it below ~20 µs tasks (§3.4) even without work conservation.
		SyscallFixed:       3400,
		SyscallSigma:       1.1,
		SyscallJitter:      1000,
		WakeLatency:        3000,
		LockCost:           500,
		FloatingContention: 4200,
		HiccupProb:         0.005,
		HiccupCost:         30000,
	}
}

// Config parameterizes one dataplane simulation run.
type Config struct {
	System     System
	Cores      int       // worker cores (the paper uses 16)
	Conns      int       // open connections (the paper uses 2752)
	Service    dist.Dist // service-time distribution
	RatePerSec float64   // offered load, requests per second
	Requests   int       // arrivals to generate
	Warmup     int       // arrivals excluded from measurement
	Seed       int64
	Batch      int  // IX adaptive batching bound B (default 64); RX batch bound elsewhere
	Interrupts bool // ZygOS: enable IPIs (the paper's default)
	RingCap    int  // per-core NIC ring capacity (default 4096)
	Costs      CostModel
}

func (c *Config) fillDefaults() {
	if c.Cores <= 0 {
		c.Cores = 16
	}
	if c.Conns <= 0 {
		c.Conns = 2752
	}
	if c.Requests <= 0 {
		c.Requests = 100000
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.RingCap <= 0 {
		c.RingCap = 4096
	}
	zero := CostModel{}
	if c.Costs == zero {
		c.Costs = DefaultCosts()
	}
}

// Request is one in-flight RPC in the simulation.
type Request struct {
	Conn    int
	Arrival sim.Time
	Service int64
	idx     int
}

// Result aggregates one run's measurements.
type Result struct {
	Latencies   *stats.Sample // end-to-end (arrival at NIC to response TX), ns
	Completed   int           // measured completions
	Dropped     uint64        // tail-dropped requests (ring overflow)
	Events      uint64        // application events processed (ZygOS)
	Steals      uint64        // events executed by a non-home core (ZygOS)
	IPIs        uint64        // inter-processor interrupts sent (ZygOS)
	OfferedRPS  float64
	AchievedRPS float64
	duration    sim.Time
}

// StealFraction returns steals per application event, the metric of
// Figure 8. It returns 0 when no events were processed.
func (r Result) StealFraction() float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.Steals) / float64(r.Events)
}

// model is the interface each simulated system implements. Arrivals are
// injected by the shared driver; completion is reported through the
// callback installed at construction.
type model interface {
	arrive(now sim.Time, r *Request)
}

// Run simulates the configured system under an open-loop Poisson workload
// spread over Conns connections, as generated by the paper's mutilate
// setup, and returns the measured latency distribution and counters.
func Run(cfg Config) Result {
	cfg.fillDefaults()
	if cfg.Service == nil {
		panic("dataplane: Config.Service is required")
	}
	if cfg.RatePerSec <= 0 {
		panic("dataplane: Config.RatePerSec must be positive")
	}
	s := sim.New(cfg.Seed)
	rss := nicsim.NewRSS(cfg.Cores)

	res := Result{Latencies: stats.NewSample(cfg.Requests - cfg.Warmup)}
	var lastCompletion sim.Time
	complete := func(r *Request, done sim.Time) {
		if r.idx >= cfg.Warmup {
			res.Latencies.Add(done - r.Arrival)
			res.Completed++
		}
		if done > lastCompletion {
			lastCompletion = done
		}
	}

	var m model
	switch cfg.System {
	case IX:
		m = newIXModel(s, cfg, rss, complete, &res)
	case LinuxPartitioned:
		m = newLinuxModel(s, cfg, rss, complete, &res, false)
	case LinuxFloating:
		m = newLinuxModel(s, cfg, rss, complete, &res, true)
	case Zygos:
		m = newZygosModel(s, cfg, rss, complete, &res)
	default:
		panic(fmt.Sprintf("dataplane: unknown system %v", cfg.System))
	}

	arrivals := dist.PoissonArrivals{RatePerSec: cfg.RatePerSec}
	var firstArrival, lastArrival sim.Time
	var inject func(at sim.Time, idx int)
	inject = func(at sim.Time, idx int) {
		if idx >= cfg.Requests {
			return
		}
		s.At(at, func(now sim.Time) {
			svc := cfg.Service.Sample(s.Rand)
			if svc < 1 {
				svc = 1
			}
			r := &Request{
				Conn:    s.Rand.Intn(cfg.Conns),
				Arrival: now,
				Service: svc,
				idx:     idx,
			}
			if idx == 0 {
				firstArrival = now
			}
			lastArrival = now
			m.arrive(now, r)
		})
		inject(at+arrivals.NextGap(s.Rand), idx+1)
	}
	inject(0, 0)
	s.Run()

	res.OfferedRPS = cfg.RatePerSec
	span := lastCompletion - firstArrival
	if span <= 0 {
		span = lastArrival - firstArrival + 1
	}
	res.duration = span
	totalDone := res.Completed + cfg.Warmup // approximation; warmup completions ≈ warmup arrivals
	if int(res.Dropped) > 0 {
		totalDone = res.Completed
	}
	res.AchievedRPS = float64(totalDone) / (float64(span) / 1e9)
	return res
}

// MaxLoadAtSLO sweeps offered load by bisection and returns the maximum
// load fraction (of the n-core saturation rate n/S̄) whose measured p99
// stays within slo. The eval at each probe uses the provided base config
// with only the arrival rate replaced.
func MaxLoadAtSLO(base Config, slo int64, lo, hi float64, iters int) float64 {
	base.fillDefaults()
	satRate := float64(base.Cores) / base.Service.Mean() * 1e9 // req/s at 100% load
	eval := func(load float64) int64 {
		cfg := base
		cfg.RatePerSec = load * satRate
		r := Run(cfg)
		if r.Dropped > 0 || r.Completed < (base.Requests-base.Warmup)*99/100 {
			// Saturated or lossy runs violate any SLO.
			return slo + 1
		}
		if r.AchievedRPS < 0.9*cfg.RatePerSec {
			// The drain phase dominated the run: the system fell behind the
			// offered rate even though nothing dropped.
			return slo + 1
		}
		return r.Latencies.P99()
	}
	if eval(hi) <= slo {
		return hi
	}
	if eval(lo) > slo {
		return 0
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		if eval(mid) <= slo {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// lognormalJitter draws a lognormal jitter with the configured mean and
// sigma; mean==0 disables it.
func lognormalJitter(s *sim.Sim, meanNS int64, sigma float64) int64 {
	if meanNS <= 0 {
		return 0
	}
	d := dist.NewLognormalMean(float64(meanNS), sigma)
	return d.Sample(s.Rand)
}
