package dataplane

import (
	"zygos/internal/nicsim"
	"zygos/internal/sim"
)

// ixModel simulates the IX dataplane (§2.2, §3.3): RSS partitions
// connections onto cores; each core runs to completion over adaptively
// bounded batches — it dequeues up to B packets from its hardware ring,
// carries the whole batch through the networking stack, runs the
// application handler for every event, and transmits all responses at the
// end of the batch. There is no communication between cores, so a loaded
// core cannot shed work to an idle one (partitioned-FCFS behaviour), and a
// long task holds back every other event in its batch and ring
// (head-of-line blocking).
type ixModel struct {
	s     *sim.Sim
	cfg   Config
	rss   *nicsim.RSS
	done  func(*Request, sim.Time)
	res   *Result
	cores []*ixCore
}

type ixCore struct {
	ring *nicsim.Ring[*Request]
	busy bool
}

func newIXModel(s *sim.Sim, cfg Config, rss *nicsim.RSS, done func(*Request, sim.Time), res *Result) *ixModel {
	m := &ixModel{s: s, cfg: cfg, rss: rss, done: done, res: res}
	for i := 0; i < cfg.Cores; i++ {
		m.cores = append(m.cores, &ixCore{ring: nicsim.NewRing[*Request](cfg.RingCap)})
	}
	return m
}

func (m *ixModel) arrive(now sim.Time, r *Request) {
	c := m.cores[m.rss.Queue(uint64(r.Conn))]
	if !c.ring.Push(r) {
		m.res.Dropped++
		return
	}
	if !c.busy {
		c.busy = true
		m.runBatch(now, c)
	}
}

// runBatch executes one run-to-completion iteration: RX batch → app × k →
// TX batch. All completions land at the end of the batch, which is exactly
// what bounded batching trades for throughput (Figure 11).
func (m *ixModel) runBatch(now sim.Time, c *ixCore) {
	k := c.ring.Len()
	if k > m.cfg.Batch {
		k = m.cfg.Batch
	}
	if k == 0 {
		c.busy = false
		return
	}
	batch := make([]*Request, 0, k)
	for i := 0; i < k; i++ {
		r, _ := c.ring.Pop()
		batch = append(batch, r)
	}
	cost := m.cfg.Costs.NetStackFixed + int64(k)*m.cfg.Costs.NetStackPerPkt
	for _, r := range batch {
		cost += r.Service + m.cfg.Costs.AppDispatch
	}
	cost += int64(k) * m.cfg.Costs.TXPerPkt
	m.s.At(now+cost, func(end sim.Time) {
		for _, r := range batch {
			m.res.Events++
			m.done(r, end)
		}
		m.runBatch(end, c)
	})
}
