package dataplane

import (
	"zygos/internal/nicsim"
	"zygos/internal/sim"
)

// zygosModel simulates the ZygOS architecture (§4): per-core NIC rings and
// networking stacks (coherency-free on the home core), a per-core shuffle
// queue of ready connections that idle remote cores steal from, remote
// batched syscalls shipped back to the home core for TX ordering, and
// inter-processor interrupts that force a home core busy in application
// code to replenish its shuffle queue and flush remote syscalls —
// eliminating head-of-line blocking. Setting Config.Interrupts=false gives
// the paper's cooperative "ZygOS (no interrupts)" variant.
type zygosModel struct {
	s     *sim.Sim
	cfg   Config
	rss   *nicsim.RSS
	done  func(*Request, sim.Time)
	res   *Result
	cores []*zcore
	conns []*zconn
	scan  []int // scratch for randomized victim order
}

type connState int

const (
	connIdle connState = iota
	connReady
	connBusy
)

// zconn is the simulated protocol control block: per-connection event
// queue plus the Figure 5 state machine.
type zconn struct {
	id    int
	home  int
	state connState
	pcb   []*Request // pending events, FIFO
}

type coreState int

const (
	coreIdle coreState = iota
	coreKernel
	coreApp
)

type zcore struct {
	id       int
	ring     *nicsim.Ring[*Request] // NIC hardware/software receive queue
	shuffle  []*zconn               // ready connections (FIFO), stealable
	remoteTX []*Request             // remote batched syscalls awaiting home-core TX
	state    coreState
	waking   bool // a wake event is already scheduled
	ipiBound bool // an IPI is in flight to this core

	// Preemption bookkeeping for the current application segment.
	appEnd    sim.Time
	appHandle sim.Handle
	appResume func(end sim.Time)
}

func newZygosModel(s *sim.Sim, cfg Config, rss *nicsim.RSS, done func(*Request, sim.Time), res *Result) *zygosModel {
	m := &zygosModel{s: s, cfg: cfg, rss: rss, done: done, res: res}
	for i := 0; i < cfg.Cores; i++ {
		m.cores = append(m.cores, &zcore{id: i, ring: nicsim.NewRing[*Request](cfg.RingCap)})
		m.scan = append(m.scan, i)
	}
	for i := 0; i < cfg.Conns; i++ {
		m.conns = append(m.conns, &zconn{id: i, home: rss.Queue(uint64(i))})
	}
	return m
}

func (m *zygosModel) arrive(now sim.Time, r *Request) {
	conn := m.conns[r.Conn]
	home := m.cores[conn.home]
	if !home.ring.Push(r) {
		m.res.Dropped++
		return
	}
	if home.state == coreIdle {
		m.wake(home, 0)
		return
	}
	// The home core is busy: give an idle remote core a chance to notice
	// the pending packet (it will steal, or IPI the home core).
	m.wakeOneIdle()
}

// wake schedules a core to re-run its main loop after delay, once.
func (m *zygosModel) wake(c *zcore, delay int64) {
	if c.waking {
		return
	}
	c.waking = true
	m.s.After(delay, func(now sim.Time) {
		c.waking = false
		if c.state == coreIdle {
			m.step(c, now)
		}
	})
}

// wakeOneIdle wakes one randomly chosen idle core after the polling
// detection delay, emulating the randomized idle-loop scan of §5.
func (m *zygosModel) wakeOneIdle() { m.wakeIdle(1) }

// wakeIdle wakes up to n randomly chosen idle cores. One wake per unit of
// newly-available work keeps the drain parallel, as concurrent idle-loop
// polling does in the real system.
func (m *zygosModel) wakeIdle(n int) {
	idle := m.idleCores()
	for i := 0; i < n && len(idle) > 0; i++ {
		k := m.s.Rand.Intn(len(idle))
		m.wake(idle[k], m.cfg.Costs.PollDelay)
		idle[k] = idle[len(idle)-1]
		idle = idle[:len(idle)-1]
	}
}

func (m *zygosModel) idleCores() []*zcore {
	var out []*zcore
	for _, c := range m.cores {
		if c.state == coreIdle && !c.waking {
			out = append(out, c)
		}
	}
	return out
}

// step is the per-core main loop. Priority order: flush remote syscalls
// (latency-critical TX for stolen work), serve the shuffle queue, run the
// network stack over the local ring when the shuffle queue is empty, then
// steal (§5 idle-loop order).
func (m *zygosModel) step(c *zcore, now sim.Time) {
	switch {
	case len(c.remoteTX) > 0:
		m.flushRemoteTX(c, now, func(end sim.Time) { m.step(c, end) })
	case len(c.shuffle) > 0:
		conn := c.shuffle[0]
		c.shuffle = c.shuffle[1:]
		m.activate(c, conn, now)
	case c.ring.Len() > 0:
		m.netstack(c, now)
	default:
		m.stealScan(c, now)
	}
}

// flushRemoteTX transmits all responses queued by remote cores. It runs in
// kernel mode on the home core, preserving coherency-free TX ordering.
func (m *zygosModel) flushRemoteTX(c *zcore, now sim.Time, next func(sim.Time)) {
	ops := c.remoteTX
	c.remoteTX = nil
	c.state = coreKernel
	var cost int64
	for _, r := range ops {
		cost += m.cfg.Costs.TXPerPkt
		req, at := r, now+cost
		m.s.At(at, func(end sim.Time) { m.done(req, end) })
	}
	m.s.At(now+cost, func(end sim.Time) { next(end) })
}

// netstack runs one bounded batch of RX protocol processing on the local
// ring, then enqueues newly-ready connections into the shuffle queue.
func (m *zygosModel) netstack(c *zcore, now sim.Time) {
	k := c.ring.Len()
	if k > m.cfg.Batch {
		k = m.cfg.Batch
	}
	batch := make([]*Request, 0, k)
	for i := 0; i < k; i++ {
		r, _ := c.ring.Pop()
		batch = append(batch, r)
	}
	c.state = coreKernel
	cost := m.cfg.Costs.NetStackFixed + int64(k)*m.cfg.Costs.NetStackPerPkt
	m.s.At(now+cost, func(end sim.Time) {
		newReady := 0
		for _, r := range batch {
			conn := m.conns[r.Conn]
			conn.pcb = append(conn.pcb, r)
			if conn.state == connIdle {
				conn.state = connReady
				c.shuffle = append(c.shuffle, conn)
				newReady++
			}
		}
		if newReady > 0 {
			// Stealable work just appeared; let idle cores race for it.
			m.wakeIdle(newReady)
		}
		m.step(c, end)
	})
}

// activate processes one ready connection on core c (home or remote). Per
// §4.3 the executing core owns the socket exclusively until every event
// condition present at dequeue time has been handled and its replies sent,
// giving ordered responses for pipelined requests (and the implicit
// same-flow batching discussed in §6.2).
func (m *zygosModel) activate(c *zcore, conn *zconn, now sim.Time) {
	conn.state = connBusy
	n := len(conn.pcb) // snapshot: events arriving mid-activation wait
	home := m.cores[conn.home]
	stolen := c != home

	var processNext func(i int, at sim.Time)
	finish := func(at sim.Time) {
		if len(conn.pcb) > 0 {
			// More data arrived while we held the socket: back to ready,
			// re-enqueued on the home core's shuffle queue.
			conn.state = connReady
			home.shuffle = append(home.shuffle, conn)
			if home.state == coreIdle {
				m.wake(home, 0)
			} else {
				m.wakeOneIdle()
			}
		} else {
			conn.state = connIdle
		}
		m.step(c, at)
	}
	processNext = func(i int, at sim.Time) {
		if i >= n {
			finish(at)
			return
		}
		r := conn.pcb[0]
		conn.pcb = conn.pcb[1:]
		m.res.Events++
		if stolen {
			m.res.Steals++
		}
		dur := r.Service + m.cfg.Costs.AppDispatch + m.cfg.Costs.ZygosInterleave
		m.appSegment(c, at, dur, func(end sim.Time) {
			if !stolen {
				// Home execution: eager TX inline (kernel segment).
				c.state = coreKernel
				tx := m.cfg.Costs.TXPerPkt
				req := r
				m.s.At(end+tx, func(txEnd sim.Time) {
					m.done(req, txEnd)
					processNext(i+1, txEnd)
				})
				return
			}
			// Stolen execution: ship the batched syscalls home.
			home.remoteTX = append(home.remoteTX, r)
			switch {
			case home.state == coreIdle:
				m.wake(home, 0)
				processNext(i+1, end)
			case home.state == coreApp && m.cfg.Interrupts:
				// Pay the IPI send cost in kernel mode, then continue.
				c.state = coreKernel
				m.sendIPI(home, end)
				m.s.At(end+m.cfg.Costs.IPISendCost, func(k sim.Time) { processNext(i+1, k) })
			default:
				// Home is in kernel mode (or interrupts are disabled): it
				// will flush on its next loop iteration.
				processNext(i+1, end)
			}
		})
	}
	processNext(0, now)
}

// appSegment runs dur nanoseconds of user-level execution on c, the only
// core state IPIs may interrupt. fn receives the (possibly extended)
// segment end time.
func (m *zygosModel) appSegment(c *zcore, now sim.Time, dur int64, fn func(end sim.Time)) {
	c.state = coreApp
	c.appEnd = now + dur
	c.appResume = fn
	m.scheduleAppEnd(c)
}

func (m *zygosModel) scheduleAppEnd(c *zcore) {
	c.appHandle = m.s.At(c.appEnd, func(end sim.Time) {
		resume := c.appResume
		c.appResume = nil
		resume(end)
	})
}

// sendIPI delivers an exit-less IPI to the target core after the delivery
// latency. Delivery is deduplicated per target (hardware coalescing); IPIs
// are hints, so one arriving when the target is no longer at user level is
// simply dropped (§5).
func (m *zygosModel) sendIPI(target *zcore, now sim.Time) {
	if target.ipiBound {
		return
	}
	target.ipiBound = true
	m.res.IPIs++
	m.s.At(now+m.cfg.Costs.IPILatency, func(at sim.Time) {
		target.ipiBound = false
		if target.state != coreApp {
			return // lost hint: kernel code runs with interrupts disabled
		}
		m.ipiHandler(target, at)
	})
}

// ipiHandler implements the two duties of the shared IPI handler (§4.5):
// (1) process incoming packets if the shuffle queue is empty, and
// (2) execute all remote system calls and transmit pending responses.
// The handler's cost extends the interrupted application segment.
func (m *zygosModel) ipiHandler(c *zcore, now sim.Time) {
	extra := m.cfg.Costs.IPIHandler

	if len(c.shuffle) == 0 && c.ring.Len() > 0 {
		k := c.ring.Len()
		if k > m.cfg.Batch {
			k = m.cfg.Batch
		}
		batch := make([]*Request, 0, k)
		for i := 0; i < k; i++ {
			r, _ := c.ring.Pop()
			batch = append(batch, r)
		}
		netCost := m.cfg.Costs.NetStackFixed + int64(k)*m.cfg.Costs.NetStackPerPkt
		effectAt := now + m.cfg.Costs.IPIHandler + netCost
		m.s.At(effectAt, func(at sim.Time) {
			newReady := 0
			for _, r := range batch {
				conn := m.conns[r.Conn]
				conn.pcb = append(conn.pcb, r)
				if conn.state == connIdle {
					conn.state = connReady
					c.shuffle = append(c.shuffle, conn)
					newReady++
				}
			}
			if newReady > 0 {
				m.wakeIdle(newReady)
			}
		})
		extra += netCost
	}

	if len(c.remoteTX) > 0 {
		ops := c.remoteTX
		c.remoteTX = nil
		for _, r := range ops {
			extra += m.cfg.Costs.TXPerPkt
			req, at := r, now+extra
			m.s.At(at, func(end sim.Time) { m.done(req, end) })
		}
	}

	// Push back the interrupted application segment by the handler cost.
	c.appEnd += extra
	m.s.Cancel(c.appHandle)
	m.scheduleAppEnd(c)
}

// stealScan is the idle loop (§5): scan other cores' shuffle queues first,
// then their raw packet queues, in randomized order. Finding a stealable
// connection costs StealCost; finding only undrained packets on a core
// stuck in application code triggers an IPI (when enabled). If nothing is
// found the core goes idle.
func (m *zygosModel) stealScan(c *zcore, now sim.Time) {
	m.s.Rand.Shuffle(len(m.scan), func(i, j int) { m.scan[i], m.scan[j] = m.scan[j], m.scan[i] })

	// Pass 1: shuffle queues.
	for _, v := range m.scan {
		victim := m.cores[v]
		if victim == c || len(victim.shuffle) == 0 {
			continue
		}
		conn := victim.shuffle[0]
		victim.shuffle = victim.shuffle[1:]
		c.state = coreKernel
		m.s.At(now+m.cfg.Costs.StealCost, func(at sim.Time) {
			m.activate(c, conn, at)
		})
		return
	}

	// Pass 2: raw packet queues of cores that cannot drain them.
	if m.cfg.Interrupts {
		for _, v := range m.scan {
			victim := m.cores[v]
			if victim == c || victim.ring.Len() == 0 {
				continue
			}
			if victim.state == coreApp && !victim.ipiBound {
				c.state = coreKernel
				m.sendIPI(victim, now)
				m.s.At(now+m.cfg.Costs.IPISendCost, func(at sim.Time) { m.step(c, at) })
				return
			}
		}
	}

	c.state = coreIdle
}
