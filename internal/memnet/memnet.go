// Package memnet provides an in-process transport for the runtime: a
// client "connection" whose request frames are delivered straight into the
// runtime's ingress path and whose replies come back through the normal
// home-core TX path. It exists so tests, examples and benchmarks can
// exercise the full scheduling architecture — parser, shuffle queue,
// stealing, remote syscalls — without sockets.
package memnet

import (
	"errors"
	"sync"
	"time"

	"zygos/internal/core"
	"zygos/internal/proto"
)

// ErrClosed is returned by calls on a closed client connection.
var ErrClosed = errors.New("memnet: connection closed")

// Transport creates in-memory client connections bound to one runtime.
type Transport struct {
	rt *core.Runtime
}

// NewTransport binds a transport to a runtime.
func NewTransport(rt *core.Runtime) *Transport {
	return &Transport{rt: rt}
}

// ClientConn is one in-memory client connection. It is safe for concurrent
// use; requests may be pipelined.
type ClientConn struct {
	rt     *core.Runtime
	server *core.Conn
	disp   *proto.Dispatcher

	mu     sync.Mutex
	closed bool
}

// replyWriter delivers the server's reply frames into the client-side
// dispatcher, standing in for the response path of a socket.
type replyWriter struct {
	cc *ClientConn
}

// WriteReply implements core.ReplyWriter.
func (w replyWriter) WriteReply(frame []byte) error {
	return w.cc.disp.Feed(frame)
}

// CloseTransport implements core.TransportCloser: when the runtime
// poisons the connection (malformed stream), outstanding client calls
// fail instead of hanging.
func (w replyWriter) CloseTransport() {
	w.cc.disp.Close()
	w.cc.disp.ReleaseParser()
}

// Dial creates a new client connection. The server side is registered with
// the runtime and steered to its home worker by RSS, as any flow would be.
func (t *Transport) Dial() *ClientConn {
	cc := &ClientConn{rt: t.rt, disp: proto.NewDispatcher()}
	cc.server = t.rt.NewConn(replyWriter{cc})
	return cc
}

// ServerConn exposes the runtime-side connection, for tests that assert on
// scheduling state.
func (c *ClientConn) ServerConn() *core.Conn { return c.server }

// sendFrame encodes m into a pooled segment and hands it straight to
// the runtime — no intermediate copies. When the home worker's ingress
// ring is full this call blocks (spin-then-park) until the kernel step
// drains it: the same backpressure a socket write would exert. Legacy
// (method-less) sends travel as v2 frames, method-routed sends as v3,
// so both wire paths stay exercised in-process.
func (c *ClientConn) sendFrame(m proto.Message) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	frame := proto.AppendMessage(c.rt.GetSegment(proto.FrameSizeMsg(m)), m)
	return c.rt.IngressOwned(c.server, frame)
}

// SendAsync issues a request and invokes cb with the reply payload (or an
// error) exactly once. Replies carrying a non-OK wire status surface as
// *proto.StatusError. The resp slice is a view into a pooled parse
// buffer valid only for the duration of the callback; retain a copy. It
// is the open-loop primitive the load generator uses.
func (c *ClientConn) SendAsync(payload []byte, cb func(resp []byte, err error)) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	id, err := c.disp.Register(cb)
	if err != nil {
		return err
	}
	return c.sendFrame(proto.Message{ID: id, Payload: payload, V2: true})
}

// SendMethodAsync is SendAsync with a method identifier: the request
// travels as a v3 frame and the server routes it by method.
func (c *ClientConn) SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	id, err := c.disp.Register(cb)
	if err != nil {
		return err
	}
	return c.sendFrame(proto.Message{ID: id, Method: method, Payload: payload, V3: true})
}

// SendMethodBudgetAsync is SendMethodAsync with a deadline budget: the
// request frame carries the remaining time the caller is willing to
// wait (FlagDeadline extension), so the server can shed it once it is
// already useless and schedule it earliest-deadline-first until then.
// d <= 0 sends no budget.
func (c *ClientConn) SendMethodBudgetAsync(method uint16, payload []byte, d time.Duration, cb func(resp []byte, err error)) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	id, err := c.disp.Register(cb)
	if err != nil {
		return err
	}
	return c.sendFrame(proto.Message{ID: id, Method: method, Payload: payload, V3: true, Budget: proto.BudgetMicros(d)})
}

// SendOneWay issues a fire-and-forget request: the server executes it
// but sends no reply, and no client-side state is kept.
func (c *ClientConn) SendOneWay(payload []byte) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	return c.sendFrame(proto.Message{Flags: proto.FlagOneWay, Payload: payload, V2: true})
}

// SendMethodOneWay is SendOneWay with a method identifier (v3 frame).
func (c *ClientConn) SendMethodOneWay(method uint16, payload []byte) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	return c.sendFrame(proto.Message{Flags: proto.FlagOneWay, Method: method, Payload: payload, V3: true})
}

// Call issues a request and blocks for its reply. The returned slice is
// owned by the caller.
func (c *ClientConn) Call(payload []byte) ([]byte, error) {
	return c.CallInto(payload, nil)
}

// CallInto issues a request, blocks for its reply, and appends the reply
// payload to buf, returning the extended slice. Passing a reused buffer
// makes the round trip allocation-free at steady state.
func (c *ClientConn) CallInto(payload, buf []byte) ([]byte, error) {
	w := proto.GetWaiter(buf)
	if err := c.SendAsync(payload, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.Wait()
}

// CallMethod issues a method-routed request and blocks for its reply.
func (c *ClientConn) CallMethod(method uint16, payload []byte) ([]byte, error) {
	return c.CallMethodInto(method, payload, nil)
}

// CallMethodInto is CallMethod with a caller-owned reply buffer, the
// allocation-free closed-loop form.
func (c *ClientConn) CallMethodInto(method uint16, payload, buf []byte) ([]byte, error) {
	w := proto.GetWaiter(buf)
	if err := c.SendMethodAsync(method, payload, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.Wait()
}

// CallTimeout is Call bounded by d: on expiry it returns
// proto.ErrCallTimeout promptly and the late reply, if it ever arrives,
// is discarded at the waiter. d <= 0 means no deadline.
func (c *ClientConn) CallTimeout(payload []byte, d time.Duration) ([]byte, error) {
	if len(payload) > proto.MaxPayloadV2 {
		return nil, proto.ErrPayloadTooLarge
	}
	w := proto.GetWaiter(nil)
	id, err := c.disp.Register(w.Callback())
	if err != nil {
		w.Abandon()
		return nil, err
	}
	// The deadline doubles as the wire budget: the server sees how long
	// this caller will actually wait and sheds/schedules accordingly.
	if err := c.sendFrame(proto.Message{ID: id, Payload: payload, V2: true, Budget: proto.BudgetMicros(d)}); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.WaitTimeout(d)
}

// CallMethodTimeout is CallMethod bounded by d (see CallTimeout).
func (c *ClientConn) CallMethodTimeout(method uint16, payload []byte, d time.Duration) ([]byte, error) {
	w := proto.GetWaiter(nil)
	if err := c.SendMethodBudgetAsync(method, payload, d, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.WaitTimeout(d)
}

// OnDepth installs f to receive the server's scheduling depth from
// piggybacked health frames (servers started with depth reporting
// append one to each reply batch). Passing nil uninstalls. f must be
// cheap — it runs on the reply delivery path.
func (c *ClientConn) OnDepth(f func(depth uint32)) {
	c.disp.SetDepthFunc(f)
}

// Subscribe sends a v4 SUBSCRIBE for topic carrying spec (an encoded
// pubsub subscription spec: policy, queue capacity, filter), installs h
// to receive matching PUSH frames, and blocks for the server's ack.
// Returns the client-chosen subscription ID that demultiplexes the
// pushes. h runs on the reply delivery path and must not block; the
// payload slice is valid only for the duration of the call.
func (c *ClientConn) Subscribe(topic uint16, spec []byte, h func(frameID uint32, payload []byte)) (uint32, error) {
	subID, err := c.disp.RegisterPush(h)
	if err != nil {
		return 0, err
	}
	w := proto.GetWaiter(nil)
	id, err := c.disp.Register(w.Callback())
	if err != nil {
		c.disp.UnregisterPush(subID)
		w.Abandon()
		return 0, err
	}
	if err := c.sendFrame(proto.Message{ID: id, Method: topic, SubID: subID, Kind: proto.KindSubscribe, V4: true, Payload: spec}); err != nil {
		c.disp.UnregisterPush(subID)
		w.Abandon()
		return 0, err
	}
	if _, err := w.Wait(); err != nil {
		c.disp.UnregisterPush(subID)
		return 0, err
	}
	return subID, nil
}

// Unsubscribe retires subscription subID on topic: the push handler is
// removed immediately (pushes already in flight may deliver once) and
// the server acks the v4 UNSUBSCRIBE.
func (c *ClientConn) Unsubscribe(topic uint16, subID uint32) error {
	c.disp.UnregisterPush(subID)
	w := proto.GetWaiter(nil)
	id, err := c.disp.Register(w.Callback())
	if err != nil {
		w.Abandon()
		return err
	}
	if err := c.sendFrame(proto.Message{ID: id, Method: topic, SubID: subID, Kind: proto.KindUnsubscribe, V4: true}); err != nil {
		w.Abandon()
		return err
	}
	_, err = w.Wait()
	return err
}

// WriteRaw injects raw bytes into the server-side stream, bypassing
// framing. Tests use it to exercise malformed input handling.
func (c *ClientConn) WriteRaw(data []byte) error {
	return c.rt.Ingress(c.server, data)
}

// Close tears the connection down: the server side stops accepting
// ingress and outstanding calls fail with ErrDispatcherClosed.
func (c *ClientConn) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.rt.CloseConn(c.server)
	c.disp.Close()
	c.disp.ReleaseParser()
}
