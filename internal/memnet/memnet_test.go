package memnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"zygos/internal/core"
	"zygos/internal/proto"
)

func newRT(t *testing.T, h core.Handler) *core.Runtime {
	t.Helper()
	rt, err := core.New(core.Config{Cores: 2, Handler: h})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func echo() core.Handler {
	return core.HandlerFunc(func(ctx *core.Ctx, c *core.Conn, m proto.Message) {
		ctx.Reply(m.Payload)
	})
}

func TestCallRoundTrip(t *testing.T) {
	rt := newRT(t, echo())
	cc := NewTransport(rt).Dial()
	defer cc.Close()
	resp, err := cc.Call([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hello" {
		t.Fatalf("got %q", resp)
	}
}

func TestConcurrentCalls(t *testing.T) {
	rt := newRT(t, echo())
	tr := NewTransport(rt)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		cc := tr.Dial()
		defer cc.Close()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				want := fmt.Sprintf("g%d-%d", g, i)
				resp, err := cc.Call([]byte(want))
				if err != nil {
					t.Error(err)
					return
				}
				if string(resp) != want {
					t.Errorf("got %q want %q", resp, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSendAsyncPipelining(t *testing.T) {
	rt := newRT(t, echo())
	cc := NewTransport(rt).Dial()
	defer cc.Close()
	const n = 200
	done := make(chan string, n)
	for i := 0; i < n; i++ {
		payload := fmt.Sprintf("req-%d", i)
		if err := cc.SendAsync([]byte(payload), func(resp []byte, err error) {
			if err != nil {
				done <- "err:" + err.Error()
				return
			}
			done <- string(resp)
		}); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]bool{}
	for i := 0; i < n; i++ {
		select {
		case r := <-done:
			got[r] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d replies", i)
		}
	}
	for i := 0; i < n; i++ {
		if !got[fmt.Sprintf("req-%d", i)] {
			t.Fatalf("missing reply %d", i)
		}
	}
}

func TestCloseFailsOutstanding(t *testing.T) {
	block := make(chan struct{})
	h := core.HandlerFunc(func(ctx *core.Ctx, c *core.Conn, m proto.Message) {
		<-block
		ctx.Reply(nil)
	})
	rt := newRT(t, h)
	cc := NewTransport(rt).Dial()
	errCh := make(chan error, 1)
	if err := cc.SendAsync([]byte("x"), func(_ []byte, err error) {
		errCh <- err
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	cc.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, proto.ErrDispatcherClosed) {
			t.Fatalf("want ErrDispatcherClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("outstanding call never failed")
	}
	close(block)
	if err := cc.SendAsync([]byte("y"), func([]byte, error) {}); err == nil {
		t.Fatal("send after close must error")
	}
	if _, err := cc.Call([]byte("z")); err == nil {
		t.Fatal("call after close must error")
	}
	cc.Close() // idempotent
}

func TestWriteRawMalformed(t *testing.T) {
	rt := newRT(t, echo())
	cc := NewTransport(rt).Dial()
	defer cc.Close()
	bad := make([]byte, proto.HeaderSize)
	bad[3] = 0x7f
	if err := cc.WriteRaw(bad); err != nil {
		t.Fatal(err)
	}
	rt.Flush(2 * time.Second)
	if !cc.ServerConn().Closed() {
		t.Fatal("malformed stream must poison the server conn")
	}
}

func TestDistinctHomes(t *testing.T) {
	rt := newRT(t, echo())
	tr := NewTransport(rt)
	homes := map[int]bool{}
	for i := 0; i < 64; i++ {
		homes[tr.Dial().ServerConn().Home()] = true
	}
	if len(homes) < 2 {
		t.Fatal("64 connections should spread over both workers")
	}
}
