package cluster

import "encoding/binary"

// The kv application's routed wire contract (internal/kv), restated
// here because kv imports the zygos root package and cluster sits
// beneath it: GET and DELETE payloads are the bare key, SET payloads
// are [klen:2 LE][key][value]. These are wire-protocol facts — the kv
// conformance tests pin them — not private kv internals.
const (
	kvMethodGet    uint16 = 1
	kvMethodSet    uint16 = 2
	kvMethodDelete uint16 = 3
)

// KVKeyFunc is the KeyFunc for the kv application's routed methods:
// GET reads, SET and DELETE write. Unknown methods are unkeyed and
// fall back to policy balancing, so mixed workloads (kv plus other
// routes) work on one cluster.
func KVKeyFunc(method uint16, payload []byte) (key []byte, write, ok bool) {
	switch method {
	case kvMethodGet:
		return payload, false, true
	case kvMethodDelete:
		return payload, true, true
	case kvMethodSet:
		if len(payload) < 2 {
			return nil, false, false
		}
		klen := int(binary.LittleEndian.Uint16(payload[0:2]))
		if len(payload) < 2+klen {
			return nil, false, false
		}
		return payload[2 : 2+klen], true, true
	}
	return nil, false, false
}
