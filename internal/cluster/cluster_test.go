package cluster

import (
	"encoding/binary"
	"testing"
	"time"
)

func mkBackends(names ...string) []*Backend {
	bs := make([]*Backend, len(names))
	for i, n := range names {
		bs[i] = &Backend{name: n}
	}
	return bs
}

// The ring is a pure function of backend names: two rings built from
// the same membership route every key identically, owners are distinct,
// and the owner count clamps to the membership size.
func TestRingDeterministicOwners(t *testing.T) {
	names := []string{"10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000", "10.0.0.4:9000"}
	a := buildRing(mkBackends(names...))
	bsB := mkBackends(names...)
	b := buildRing(bsB)
	bsA := mkBackends(names...)

	keys := []string{"user:17", "user:42", "session:abc", "k", ""}
	for _, key := range keys {
		oa := a.owners([]byte(key), 2, bsA)
		ob := b.owners([]byte(key), 2, bsB)
		if len(oa) != 2 || len(ob) != 2 {
			t.Fatalf("key %q: owner counts %d/%d, want 2", key, len(oa), len(ob))
		}
		for i := range oa {
			if oa[i].name != ob[i].name {
				t.Fatalf("key %q: ring not deterministic (%s vs %s at %d)", key, oa[i].name, ob[i].name, i)
			}
		}
		if oa[0] == oa[1] {
			t.Fatalf("key %q: duplicate owner %s", key, oa[0].name)
		}
	}

	if got := a.owners([]byte("x"), 10, bsA); len(got) != len(names) {
		t.Fatalf("replicas beyond membership returned %d owners, want %d", len(got), len(names))
	}
}

// Vnode placement must spread keys: no backend owns a wildly outsized
// share of primaries.
func TestRingBalance(t *testing.T) {
	bs := mkBackends("a", "b", "c", "d")
	r := buildRing(bs)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		var k [8]byte
		binary.LittleEndian.PutUint64(k[:], uint64(i)*0x9E3779B97F4A7C15)
		counts[r.owners(k[:], 1, bs)[0].name]++
	}
	for n, c := range counts {
		if c < keys/8 || c > keys/2 {
			t.Fatalf("backend %s owns %d/%d primaries; vnode spread is broken (%v)", n, c, keys, counts)
		}
	}
}

// Least must score by inflight plus fresh reported depth, and stale
// depth reports must stop counting after the TTL.
func TestBalancerScoring(t *testing.T) {
	bs := mkBackends("a", "b")
	bl := NewBalancer(JSQ, 10*time.Millisecond)

	bs[0].inflight.Store(5)
	if got := bl.Least(bs, nil); got != bs[1] {
		t.Fatalf("Least picked %s, want b (a has 5 inflight)", got.name)
	}

	// A fresh depth report outweighs a small inflight edge.
	bs[0].inflight.Store(0)
	bs[1].inflight.Store(1)
	bs[0].NoteDepth(50)
	if got := bl.Least(bs, nil); got != bs[1] {
		t.Fatalf("Least ignored fresh depth report on a")
	}

	// Stale reports decay: backdate the report past the TTL.
	bs[0].depthAt.Store(time.Now().Add(-time.Second).UnixNano())
	if got := bl.Least(bs, nil); got != bs[0] {
		t.Fatalf("Least still counts a depth report older than the TTL")
	}

	// Exclusion skips already-tried backends.
	if got := bl.Least(bs, []*Backend{bs[0]}); got != bs[1] {
		t.Fatalf("Least returned an excluded backend")
	}
	if got := bl.Least(bs, bs); got != nil {
		t.Fatalf("Least with everything excluded returned %v", got)
	}
}

// P2C and RoundRobin must respect exclusion and never return nil while
// an eligible backend remains.
func TestBalancerPickExclusion(t *testing.T) {
	bs := mkBackends("a", "b", "c")
	for _, pol := range []Policy{RoundRobin, P2C, JSQ} {
		bl := NewBalancer(pol, 0)
		seen := map[string]bool{}
		for i := 0; i < 200; i++ {
			b := bl.Pick(bs, []*Backend{bs[0]})
			if b == nil {
				t.Fatalf("%v: Pick returned nil with eligible backends", pol)
			}
			if b == bs[0] {
				t.Fatalf("%v: Pick returned the excluded backend", pol)
			}
			seen[b.name] = true
		}
		// Load-aware policies break score ties deterministically, so
		// only round-robin owes coverage of every eligible backend.
		if pol == RoundRobin && len(seen) != 2 {
			t.Fatalf("%v: picks covered %v, want both eligible backends", pol, seen)
		}
	}
}

// RoundRobin must rotate evenly with no exclusions.
func TestBalancerRoundRobinRotation(t *testing.T) {
	bs := mkBackends("a", "b", "c")
	bl := NewBalancer(RoundRobin, 0)
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[bl.Pick(bs, nil).name]++
	}
	for n, c := range counts {
		if c != 100 {
			t.Fatalf("round robin gave %s %d/300 picks (%v)", n, c, counts)
		}
	}
}

// The tracker's deadline is MaxDelay cold, adapts to the observed P99
// once the window fills, and clamps to the configured bounds.
func TestTrackerAdaptiveDeadline(t *testing.T) {
	cfg := HedgeConfig{MinDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}
	tr := &tracker{}

	if got := tr.delay(cfg); got != cfg.MaxDelay {
		t.Fatalf("cold deadline %v, want MaxDelay %v", got, cfg.MaxDelay)
	}

	// Uniform 10ms latencies: deadline converges near 10ms.
	for i := 0; i < hedgeWindow; i++ {
		tr.record(10*time.Millisecond, cfg)
	}
	if got := tr.delay(cfg); got != 10*time.Millisecond {
		t.Fatalf("deadline %v after uniform 10ms window, want 10ms", got)
	}

	// Microsecond latencies: clamped up to MinDelay. Two full windows,
	// so a periodic recompute definitely runs after the last slow
	// sample has aged out of the ring.
	for i := 0; i < 2*hedgeWindow; i++ {
		tr.record(5*time.Microsecond, cfg)
	}
	if got := tr.delay(cfg); got != cfg.MinDelay {
		t.Fatalf("deadline %v after fast window, want MinDelay %v", got, cfg.MinDelay)
	}

	// Second-long latencies: clamped down to MaxDelay.
	for i := 0; i < 2*hedgeWindow; i++ {
		tr.record(time.Second, cfg)
	}
	if got := tr.delay(cfg); got != cfg.MaxDelay {
		t.Fatalf("deadline %v after slow window, want MaxDelay %v", got, cfg.MaxDelay)
	}
}

// KVKeyFunc must mirror the kv application's wire layout: bare keys for
// GET/DELETE, [klen:2][key][value] for SET, and reject short payloads.
func TestKVKeyFunc(t *testing.T) {
	if k, w, ok := KVKeyFunc(kvMethodGet, []byte("mykey")); !ok || w || string(k) != "mykey" {
		t.Fatalf("GET: key=%q write=%v ok=%v", k, w, ok)
	}
	if k, w, ok := KVKeyFunc(kvMethodDelete, []byte("mykey")); !ok || !w || string(k) != "mykey" {
		t.Fatalf("DELETE: key=%q write=%v ok=%v", k, w, ok)
	}
	set := binary.LittleEndian.AppendUint16(nil, 3)
	set = append(set, []byte("keyvalue")...)
	if k, w, ok := KVKeyFunc(kvMethodSet, set); !ok || !w || string(k) != "key" {
		t.Fatalf("SET: key=%q write=%v ok=%v", k, w, ok)
	}
	if _, _, ok := KVKeyFunc(kvMethodSet, []byte{9}); ok {
		t.Fatal("short SET payload reported ok")
	}
	if _, _, ok := KVKeyFunc(kvMethodSet, binary.LittleEndian.AppendUint16(nil, 40)); ok {
		t.Fatal("truncated SET payload reported ok")
	}
	if _, _, ok := KVKeyFunc(999, []byte("x")); ok {
		t.Fatal("unknown method reported keyed")
	}
}

// ParsePolicy round-trips the flag spellings.
func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{RoundRobin, P2C, JSQ} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus")
	}
}
