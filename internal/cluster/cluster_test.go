package cluster

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeCaller is a scriptable transport: sends are refused synchronously
// (err), answered inline (autoReply), or parked until fail/reply
// delivers a verdict. hook runs inside every async send, before the
// verdict, to force cross-attempt interleavings a real transport only
// hits under races.
type fakeCaller struct {
	name      string
	err       error  // non-nil: refuse every send synchronously
	autoReply []byte // non-nil: answer every async send inline
	hook      func()

	mu  sync.Mutex
	cbs []func([]byte, error)
}

func (f *fakeCaller) send(cb func([]byte, error)) error {
	if f.hook != nil {
		f.hook()
	}
	if f.err != nil {
		return f.err
	}
	if f.autoReply != nil {
		cb(f.autoReply, nil)
		return nil
	}
	f.mu.Lock()
	f.cbs = append(f.cbs, cb)
	f.mu.Unlock()
	return nil
}

// fail delivers err to every parked send, as a transport would on
// connection teardown.
func (f *fakeCaller) fail(err error) {
	f.mu.Lock()
	cbs := f.cbs
	f.cbs = nil
	f.mu.Unlock()
	for _, cb := range cbs {
		cb(nil, err)
	}
}

func (f *fakeCaller) SendAsync(p []byte, cb func([]byte, error)) error { return f.send(cb) }
func (f *fakeCaller) SendMethodAsync(m uint16, p []byte, cb func([]byte, error)) error {
	return f.send(cb)
}
func (f *fakeCaller) SendOneWay(p []byte) error                 { return f.err }
func (f *fakeCaller) SendMethodOneWay(m uint16, p []byte) error { return f.err }
func (f *fakeCaller) Call(p []byte) ([]byte, error)             { return nil, errors.New("unused") }
func (f *fakeCaller) CallInto(p, b []byte) ([]byte, error)      { return nil, errors.New("unused") }
func (f *fakeCaller) CallMethod(m uint16, p []byte) ([]byte, error) {
	return nil, errors.New("unused")
}
func (f *fakeCaller) CallMethodInto(m uint16, p, b []byte) ([]byte, error) {
	return nil, errors.New("unused")
}
func (f *fakeCaller) Close() {}

// A hedge refused synchronously after the primary's transport failure
// must still settle the op: the primary's finish saw the hedge counted
// outstanding and deferred to it, so if the refusal merely decremented
// the count the callback would never fire and a blocking Call would
// hang forever.
func TestHedgeDispatchFailureSettles(t *testing.T) {
	transportErr := errors.New("conn reset")
	dialErr := errors.New("dial backoff")

	holder := &fakeCaller{name: "holder"} // parks the primary attempt
	refuser := &fakeCaller{name: "refuser", err: dialErr}
	// Deliver the primary's failure inside the hedge's send, after the
	// hedge is counted outstanding but before its synchronous refusal:
	// the exact interleaving that stranded the op.
	refuser.hook = func() { holder.fail(transportErr) }

	cl := New(Config{
		Policy: JSQ, // ties break to the first backend: primary is deterministic
		Hedge:  HedgeConfig{Enabled: true, MaxDelay: time.Millisecond},
	})
	cl.Add("holder", holder)
	cl.Add("refuser", refuser)
	defer cl.Close()

	var fires atomic.Int32
	done := make(chan error, 2)
	if err := cl.SendMethodAsync(1, []byte("x"), func(resp []byte, err error) {
		fires.Add(1)
		done <- err
	}); err != nil {
		t.Fatalf("SendMethodAsync: %v", err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("op settled with a nil error; both attempts failed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("op hung: callback never fired after the hedge dispatch was refused")
	}
	time.Sleep(10 * time.Millisecond)
	if n := fires.Load(); n != 1 {
		t.Fatalf("callback fired %d times, want exactly 1", n)
	}
}

// A secondary replica write lost to a transport error must be counted:
// the primary's reply hides the loss from the caller while reads route
// to any owner, so the counter is the only signal of the stale replica.
func TestReplicaWriteFailureCounted(t *testing.T) {
	cl := New(Config{
		Policy:   JSQ,
		Replicas: 2,
		KeyFunc: func(method uint16, payload []byte) ([]byte, bool, bool) {
			return payload, true, true
		},
	})
	a := &fakeCaller{name: "a", autoReply: []byte("ok")}
	b := &fakeCaller{name: "b", autoReply: []byte("ok")}
	cl.Add("a", a)
	cl.Add("b", b)
	defer cl.Close()

	// Ring order decides which backend is the key's primary; break the
	// secondary so the write fan-out loses it while the primary reply
	// still succeeds.
	owners := cl.view.Load().(*membership).ring.owners([]byte("key"), 2, cl.Backends())
	if len(owners) != 2 {
		t.Fatalf("got %d owners, want 2", len(owners))
	}
	owners[1].c.(*fakeCaller).err = errors.New("secondary down")

	resp, err := cl.CallMethod(5, []byte("key"))
	if err != nil || string(resp) != "ok" {
		t.Fatalf("primary write failed: resp=%q err=%v", resp, err)
	}
	if got := cl.Stats().ReplicaWriteFailures; got != 1 {
		t.Fatalf("ReplicaWriteFailures = %d, want 1", got)
	}
	if inf := owners[1].inflight.Load(); inf != 0 {
		t.Fatalf("failed secondary left inflight = %d, want 0", inf)
	}
}

// Legacy (method-less) traffic must not share a latency window with
// routed method-0 traffic: the two routes can have unrelated latency
// profiles, and conflating them skews both adaptive hedge deadlines.
func TestTrackerKeySeparatesLegacy(t *testing.T) {
	cl := New(Config{})
	if cl.trackerFor(0, true) == cl.trackerFor(0, false) {
		t.Fatal("legacy and method-0 routed traffic share a tracker")
	}
	if cl.trackerFor(3, false) != cl.trackerFor(3, false) {
		t.Fatal("trackerFor is not stable for a fixed route")
	}
}

func mkBackends(names ...string) []*Backend {
	bs := make([]*Backend, len(names))
	for i, n := range names {
		bs[i] = &Backend{name: n}
	}
	return bs
}

// The ring is a pure function of backend names: two rings built from
// the same membership route every key identically, owners are distinct,
// and the owner count clamps to the membership size.
func TestRingDeterministicOwners(t *testing.T) {
	names := []string{"10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000", "10.0.0.4:9000"}
	a := buildRing(mkBackends(names...))
	bsB := mkBackends(names...)
	b := buildRing(bsB)
	bsA := mkBackends(names...)

	keys := []string{"user:17", "user:42", "session:abc", "k", ""}
	for _, key := range keys {
		oa := a.owners([]byte(key), 2, bsA)
		ob := b.owners([]byte(key), 2, bsB)
		if len(oa) != 2 || len(ob) != 2 {
			t.Fatalf("key %q: owner counts %d/%d, want 2", key, len(oa), len(ob))
		}
		for i := range oa {
			if oa[i].name != ob[i].name {
				t.Fatalf("key %q: ring not deterministic (%s vs %s at %d)", key, oa[i].name, ob[i].name, i)
			}
		}
		if oa[0] == oa[1] {
			t.Fatalf("key %q: duplicate owner %s", key, oa[0].name)
		}
	}

	if got := a.owners([]byte("x"), 10, bsA); len(got) != len(names) {
		t.Fatalf("replicas beyond membership returned %d owners, want %d", len(got), len(names))
	}
}

// Vnode placement must spread keys: no backend owns a wildly outsized
// share of primaries.
func TestRingBalance(t *testing.T) {
	bs := mkBackends("a", "b", "c", "d")
	r := buildRing(bs)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		var k [8]byte
		binary.LittleEndian.PutUint64(k[:], uint64(i)*0x9E3779B97F4A7C15)
		counts[r.owners(k[:], 1, bs)[0].name]++
	}
	for n, c := range counts {
		if c < keys/8 || c > keys/2 {
			t.Fatalf("backend %s owns %d/%d primaries; vnode spread is broken (%v)", n, c, keys, counts)
		}
	}
}

// Least must score by inflight plus fresh reported depth, and stale
// depth reports must stop counting after the TTL.
func TestBalancerScoring(t *testing.T) {
	bs := mkBackends("a", "b")
	bl := NewBalancer(JSQ, 10*time.Millisecond)

	bs[0].inflight.Store(5)
	if got := bl.Least(bs, nil); got != bs[1] {
		t.Fatalf("Least picked %s, want b (a has 5 inflight)", got.name)
	}

	// A fresh depth report outweighs a small inflight edge.
	bs[0].inflight.Store(0)
	bs[1].inflight.Store(1)
	bs[0].NoteDepth(50)
	if got := bl.Least(bs, nil); got != bs[1] {
		t.Fatalf("Least ignored fresh depth report on a")
	}

	// Stale reports decay: backdate the report past the TTL.
	bs[0].depthAt.Store(time.Now().Add(-time.Second).UnixNano())
	if got := bl.Least(bs, nil); got != bs[0] {
		t.Fatalf("Least still counts a depth report older than the TTL")
	}

	// Exclusion skips already-tried backends.
	if got := bl.Least(bs, []*Backend{bs[0]}); got != bs[1] {
		t.Fatalf("Least returned an excluded backend")
	}
	if got := bl.Least(bs, bs); got != nil {
		t.Fatalf("Least with everything excluded returned %v", got)
	}
}

// P2C and RoundRobin must respect exclusion and never return nil while
// an eligible backend remains.
func TestBalancerPickExclusion(t *testing.T) {
	bs := mkBackends("a", "b", "c")
	for _, pol := range []Policy{RoundRobin, P2C, JSQ} {
		bl := NewBalancer(pol, 0)
		seen := map[string]bool{}
		for i := 0; i < 200; i++ {
			b := bl.Pick(bs, []*Backend{bs[0]})
			if b == nil {
				t.Fatalf("%v: Pick returned nil with eligible backends", pol)
			}
			if b == bs[0] {
				t.Fatalf("%v: Pick returned the excluded backend", pol)
			}
			seen[b.name] = true
		}
		// Load-aware policies break score ties deterministically, so
		// only round-robin owes coverage of every eligible backend.
		if pol == RoundRobin && len(seen) != 2 {
			t.Fatalf("%v: picks covered %v, want both eligible backends", pol, seen)
		}
	}
}

// RoundRobin must rotate evenly with no exclusions.
func TestBalancerRoundRobinRotation(t *testing.T) {
	bs := mkBackends("a", "b", "c")
	bl := NewBalancer(RoundRobin, 0)
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[bl.Pick(bs, nil).name]++
	}
	for n, c := range counts {
		if c != 100 {
			t.Fatalf("round robin gave %s %d/300 picks (%v)", n, c, counts)
		}
	}
}

// The tracker's deadline is MaxDelay cold, adapts to the observed P99
// once the window fills, and clamps to the configured bounds.
func TestTrackerAdaptiveDeadline(t *testing.T) {
	cfg := HedgeConfig{MinDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}
	tr := &tracker{}

	if got := tr.delay(cfg); got != cfg.MaxDelay {
		t.Fatalf("cold deadline %v, want MaxDelay %v", got, cfg.MaxDelay)
	}

	// Uniform 10ms latencies: deadline converges near 10ms.
	for i := 0; i < hedgeWindow; i++ {
		tr.record(10*time.Millisecond, cfg)
	}
	if got := tr.delay(cfg); got != 10*time.Millisecond {
		t.Fatalf("deadline %v after uniform 10ms window, want 10ms", got)
	}

	// Microsecond latencies: clamped up to MinDelay. Two full windows,
	// so a periodic recompute definitely runs after the last slow
	// sample has aged out of the ring.
	for i := 0; i < 2*hedgeWindow; i++ {
		tr.record(5*time.Microsecond, cfg)
	}
	if got := tr.delay(cfg); got != cfg.MinDelay {
		t.Fatalf("deadline %v after fast window, want MinDelay %v", got, cfg.MinDelay)
	}

	// Second-long latencies: clamped down to MaxDelay.
	for i := 0; i < 2*hedgeWindow; i++ {
		tr.record(time.Second, cfg)
	}
	if got := tr.delay(cfg); got != cfg.MaxDelay {
		t.Fatalf("deadline %v after slow window, want MaxDelay %v", got, cfg.MaxDelay)
	}
}

// KVKeyFunc must mirror the kv application's wire layout: bare keys for
// GET/DELETE, [klen:2][key][value] for SET, and reject short payloads.
func TestKVKeyFunc(t *testing.T) {
	if k, w, ok := KVKeyFunc(kvMethodGet, []byte("mykey")); !ok || w || string(k) != "mykey" {
		t.Fatalf("GET: key=%q write=%v ok=%v", k, w, ok)
	}
	if k, w, ok := KVKeyFunc(kvMethodDelete, []byte("mykey")); !ok || !w || string(k) != "mykey" {
		t.Fatalf("DELETE: key=%q write=%v ok=%v", k, w, ok)
	}
	set := binary.LittleEndian.AppendUint16(nil, 3)
	set = append(set, []byte("keyvalue")...)
	if k, w, ok := KVKeyFunc(kvMethodSet, set); !ok || !w || string(k) != "key" {
		t.Fatalf("SET: key=%q write=%v ok=%v", k, w, ok)
	}
	if _, _, ok := KVKeyFunc(kvMethodSet, []byte{9}); ok {
		t.Fatal("short SET payload reported ok")
	}
	if _, _, ok := KVKeyFunc(kvMethodSet, binary.LittleEndian.AppendUint16(nil, 40)); ok {
		t.Fatal("truncated SET payload reported ok")
	}
	if _, _, ok := KVKeyFunc(999, []byte("x")); ok {
		t.Fatal("unknown method reported keyed")
	}
}

// ParsePolicy round-trips the flag spellings.
func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{RoundRobin, P2C, JSQ} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus")
	}
}
