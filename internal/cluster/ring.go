package cluster

import "sort"

// ringVnodes is how many virtual nodes each backend contributes; 64
// keeps the per-backend key-share imbalance within a few percent while
// the ring stays small enough that ownership lookups are one binary
// search over a few hundred entries.
const ringVnodes = 64

// ringEntry maps one vnode hash to the index of its backend in the
// membership snapshot the ring was built against.
type ringEntry struct {
	hash uint64
	idx  int
}

// hashRing is an immutable consistent-hash ring over one membership
// snapshot. Rings are rebuilt on Add and swapped atomically, so lookups
// never lock.
type hashRing struct {
	entries []ringEntry
	members int
}

// fnv64 is FNV-1a, the ring's key hash. Inlined rather than
// hash/fnv so hashing a key allocates nothing.
func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer, used to spread one backend's
// vnode hashes across the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// buildRing hashes every backend's name into ringVnodes points. The
// placement depends only on backend names, so two front tiers with the
// same membership route keys identically.
func buildRing(bs []*Backend) *hashRing {
	if len(bs) == 0 {
		return nil
	}
	r := &hashRing{entries: make([]ringEntry, 0, len(bs)*ringVnodes), members: len(bs)}
	for i, b := range bs {
		base := fnv64([]byte(b.name))
		for v := 0; v < ringVnodes; v++ {
			r.entries = append(r.entries, ringEntry{hash: mix64(base + uint64(v)*0x9E3779B97F4A7C15), idx: i})
		}
	}
	sort.Slice(r.entries, func(i, j int) bool { return r.entries[i].hash < r.entries[j].hash })
	return r
}

// owners returns the first replicas distinct backends clockwise from
// key's point on the ring, resolved against bs (the membership snapshot
// the ring was built from). The first owner is the key's primary.
func (r *hashRing) owners(key []byte, replicas int, bs []*Backend) []*Backend {
	if r == nil || len(r.entries) == 0 {
		return nil
	}
	if replicas > r.members {
		replicas = r.members
	}
	h := fnv64(key)
	start := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].hash >= h })
	out := make([]*Backend, 0, replicas)
	for i := 0; i < len(r.entries) && len(out) < replicas; i++ {
		e := r.entries[(start+i)%len(r.entries)]
		b := bs[e.idx]
		dup := false
		for _, o := range out {
			if o == b {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, b)
		}
	}
	return out
}
