// Package cluster is the front tier of a zygos deployment: one Cluster
// fans a single Caller-shaped stream of requests out over N backend
// runtimes, picking backends by live load, hedging slow requests
// against a second replica, and routing keyed operations onto a
// consistent-hash ring.
//
// The three tail-latency mechanisms compose the "tail at scale" recipe
// on top of the paper's single-node work-conserving scheduler:
//
//   - Balancing: round-robin, power-of-two-choices, or join-shortest-
//     queue over a score combining the client's own in-flight count with
//     the backend's self-reported scheduling depth (carried back as
//     piggybacked health frames, see proto.MethodHealth). Reported
//     depth decays after DepthTTL so a silent backend is judged only by
//     local knowledge.
//
//   - Hedging: a request outstanding past an adaptive per-route P99
//     deadline is duplicated to a second backend; the first final reply
//     wins and the loser is discarded on arrival. Application-level
//     errors (wire StatusError) are final replies and win; transport
//     errors instead fail over to a fresh backend.
//
//   - Replica routing: a KeyFunc extracts the key and read/write
//     direction from a payload; reads go to the least-loaded of the
//     key's R ring owners, writes fan out to all owners with the
//     primary's reply returned. Writes are never hedged (duplicating a
//     non-idempotent operation is not a latency optimization).
package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"zygos/internal/proto"
)

// Caller is the transport-side contract a backend connection must
// satisfy; it mirrors the zygos.Caller method set exactly, so any zygos
// client (in-process, TCP, or managed) plugs in directly — and a
// *Cluster itself satisfies it, so tiers stack.
type Caller interface {
	Call(payload []byte) ([]byte, error)
	CallInto(payload, buf []byte) ([]byte, error)
	CallMethod(method uint16, payload []byte) ([]byte, error)
	CallMethodInto(method uint16, payload, buf []byte) ([]byte, error)
	SendAsync(payload []byte, cb func(resp []byte, err error)) error
	SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error
	SendOneWay(payload []byte) error
	SendMethodOneWay(method uint16, payload []byte) error
	Close()
}

// depthSource is the optional transport capability the balancer feeds
// on: transports that expose OnDepth deliver the backend's piggybacked
// health frames.
type depthSource interface {
	OnDepth(f func(depth uint32))
}

// budgetSender is the optional transport capability deadline budgets
// ride on: transports that can stamp the FlagDeadline wire extension
// let the cluster forward each request's *remaining* budget to the
// backend, re-computed at every dispatch so queueing and hedging delays
// inside the cluster are charged against the caller's deadline rather
// than silently absorbed. All zygos clients implement it; transports
// that don't simply get no budget (the op-level deadline timer still
// protects the caller).
type budgetSender interface {
	SendMethodBudgetAsync(method uint16, payload []byte, d time.Duration, cb func(resp []byte, err error)) error
}

var (
	// ErrNoBackends reports a cluster with no (eligible) backends.
	ErrNoBackends = errors.New("cluster: no backends")
	// ErrClusterClosed reports calls on a closed cluster; requests still
	// in flight when Close runs settle with it too, so every callback
	// fires exactly once even across shutdown.
	ErrClusterClosed = errors.New("cluster: closed")
	// ErrClosed is the pre-hardening name for ErrClusterClosed.
	ErrClosed = ErrClusterClosed
)

// Policy selects how the balancer spreads unkeyed requests.
type Policy int

const (
	// RoundRobin rotates through backends, load-blind. The baseline.
	RoundRobin Policy = iota
	// P2C picks two backends at random and sends to the less loaded —
	// near-JSQ tail behaviour at O(1) cost and without herding.
	P2C
	// JSQ scans every backend and sends to the least loaded.
	JSQ
)

// String names the policy as accepted by ParsePolicy.
func (p Policy) String() string {
	switch p {
	case P2C:
		return "p2c"
	case JSQ:
		return "jsq"
	default:
		return "rr"
	}
}

// ParsePolicy maps a flag string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "rr", "roundrobin", "round-robin":
		return RoundRobin, nil
	case "p2c", "power-of-two":
		return P2C, nil
	case "jsq", "shortest-queue":
		return JSQ, nil
	}
	return RoundRobin, errors.New("cluster: unknown policy " + s)
}

// KeyFunc extracts the routing key from a method-routed request.
// Returning ok=false leaves the request unkeyed (balanced across all
// backends); write=true routes it to every ring owner of the key.
type KeyFunc func(method uint16, payload []byte) (key []byte, write, ok bool)

// HedgeConfig parameterizes request hedging.
type HedgeConfig struct {
	// Enabled turns hedging on.
	Enabled bool
	// MinDelay floors the adaptive hedge deadline; defaults to 100µs.
	// It bounds the duplicate-send rate when the route is uniformly
	// fast.
	MinDelay time.Duration
	// MaxDelay caps the deadline and is also the deadline used before
	// a route has latency history; defaults to 20ms.
	MaxDelay time.Duration
}

// Config parameterizes a Cluster.
type Config struct {
	// Policy is the unkeyed balancing policy; defaults to P2C.
	Policy Policy
	// Hedge configures duplicate requests past the adaptive deadline.
	Hedge HedgeConfig
	// Replicas is the number of ring owners per key; 0 or 1 with a nil
	// KeyFunc disables keyed routing.
	Replicas int
	// KeyFunc extracts routing keys; nil disables keyed routing.
	KeyFunc KeyFunc
	// DepthTTL bounds how long a piggybacked depth report keeps
	// counting toward a backend's score; defaults to 10ms.
	DepthTTL time.Duration
	// CallTimeout is the default per-request deadline: a request with no
	// final reply after this long settles with proto.ErrCallTimeout,
	// even against a blackholed backend. 0 means no deadline (the
	// pre-hardening behaviour); per-call CallTimeout/CallMethodTimeout
	// override it.
	CallTimeout time.Duration
	// Breaker parameterizes per-backend health tracking; the zero value
	// enables it with defaults.
	Breaker BreakerConfig
	// NoReadFallback keeps keyed reads pinned to their ring owners even
	// when every owner is tripped Down. Default (false): a keyed read
	// whose owners are all unhealthy falls back to any healthy backend —
	// potentially stale, but bounded staleness beats unavailability for
	// most kv reads.
	NoReadFallback bool
	// MaxClusterDepth is the front-tier admission limit: a new request
	// is shed with a StatusShed *proto.StatusError — before any backend
	// sees a byte of it — once the summed cluster load (client-side
	// in-flight plus fresh self-reported backend depths) exceeds it.
	// Shedding at the front tier is strictly cheaper than at the
	// backends: the refused request consumes no socket write, no
	// backend parse, and no scheduler slot anywhere in the fleet. The
	// shed message carries a retry-after hint. 0 disables.
	MaxClusterDepth int
}

const (
	defaultMinHedge = 100 * time.Microsecond
	defaultMaxHedge = 20 * time.Millisecond
	defaultDepthTTL = 10 * time.Millisecond
	// maxAttempts bounds sends per logical request: the primary plus
	// one rescue (hedge or failover).
	maxAttempts = 2
)

// Backend is one member runtime of the cluster: its connection plus the
// live load signals the balancer scores it by.
type Backend struct {
	name string
	c    Caller

	// inflight is the client-side count of requests outstanding on
	// this backend — knowledge the balancer always has, even before
	// the first health frame arrives.
	inflight atomic.Int64
	// depth/depthAt hold the backend's last self-reported scheduling
	// depth (piggybacked health frame) and its arrival time.
	depth   atomic.Uint32
	depthAt atomic.Int64

	// br is the per-backend circuit breaker (see breaker.go). Zero value
	// is Up.
	br breaker
}

// Name returns the identifier the backend was added under.
func (b *Backend) Name() string { return b.name }

// NoteDepth records a depth report; transports with OnDepth hooks are
// wired to it automatically.
func (b *Backend) NoteDepth(d uint32) {
	b.depth.Store(d)
	b.depthAt.Store(nanotime())
}

func nanotime() int64 { return time.Now().UnixNano() }

// score is the balancer's load estimate: local in-flight plus the
// reported depth while it is fresh.
func (b *Backend) score(now, ttl int64) int64 {
	s := b.inflight.Load()
	if at := b.depthAt.Load(); at > 0 && now-at <= ttl {
		s += int64(b.depth.Load())
	}
	return s
}

// Balancer picks backends by policy over the live score. It is
// stateless apart from the rotation counter and the RNG word, both
// lock-free, so Pick is safe from any goroutine.
type Balancer struct {
	policy Policy
	ttl    int64

	rr  atomic.Uint64
	rng atomic.Uint64
}

// NewBalancer returns a balancer with the given policy; depthTTL <= 0
// defaults to 10ms.
func NewBalancer(policy Policy, depthTTL time.Duration) *Balancer {
	if depthTTL <= 0 {
		depthTTL = defaultDepthTTL
	}
	return &Balancer{policy: policy, ttl: int64(depthTTL)}
}

// rand is a lock-free splitmix64 step: an atomic add of the golden
// gamma followed by a stateless mix, so concurrent pickers never
// contend on a mutex for randomness.
func (bl *Balancer) rand() uint64 {
	x := bl.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func excluded(b *Backend, exclude []*Backend) bool {
	for _, e := range exclude {
		if e == b {
			return true
		}
	}
	return false
}

// ineligible reports whether b is out of the running: already tried by
// this request, or rejected by the health predicate.
func ineligible(b *Backend, exclude []*Backend, skip func(*Backend) bool) bool {
	return excluded(b, exclude) || (skip != nil && skip(b))
}

// Pick selects a backend from bs by policy, skipping exclude (backends
// already tried by this request). Returns nil if none is eligible.
func (bl *Balancer) Pick(bs []*Backend, exclude []*Backend) *Backend {
	return bl.pick(bs, exclude, nil)
}

// pick is Pick with a health predicate: backends for which skip returns
// true are treated like excluded ones.
func (bl *Balancer) pick(bs []*Backend, exclude []*Backend, skip func(*Backend) bool) *Backend {
	n := len(bs)
	if n == 0 {
		return nil
	}
	switch bl.policy {
	case P2C:
		if n-len(exclude) > 2 {
			now := nanotime()
			r := bl.rand()
			i := int(r % uint64(n))
			j := int((r >> 32) % uint64(n-1))
			if j >= i {
				j++
			}
			a, b := bs[i], bs[j]
			if ineligible(a, exclude, skip) {
				a = nil
			}
			if ineligible(b, exclude, skip) {
				b = nil
			}
			switch {
			case a == nil && b == nil:
				return bl.least(bs, exclude, skip)
			case a == nil:
				return b
			case b == nil:
				return a
			}
			if b.score(now, bl.ttl) < a.score(now, bl.ttl) {
				return b
			}
			return a
		}
		// Too few distinct candidates for a random pair; degrade to a
		// full scan.
		return bl.least(bs, exclude, skip)
	case JSQ:
		return bl.least(bs, exclude, skip)
	default: // RoundRobin
		start := bl.rr.Add(1)
		for k := 0; k < n; k++ {
			b := bs[int((start+uint64(k))%uint64(n))]
			if !ineligible(b, exclude, skip) {
				return b
			}
		}
		return nil
	}
}

// Least returns the lowest-score backend in bs, skipping exclude.
func (bl *Balancer) Least(bs []*Backend, exclude []*Backend) *Backend {
	return bl.least(bs, exclude, nil)
}

// least is Least with a health predicate.
func (bl *Balancer) least(bs []*Backend, exclude []*Backend, skip func(*Backend) bool) *Backend {
	now := nanotime()
	var best *Backend
	var bestScore int64
	for _, b := range bs {
		if ineligible(b, exclude, skip) {
			continue
		}
		s := b.score(now, bl.ttl)
		if best == nil || s < bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// Cluster fans requests out over its backends. It satisfies Caller (and
// structurally zygos.Caller), so applications swap a single-server
// client for a cluster without code changes.
type Cluster struct {
	cfg Config
	bal *Balancer

	mu   sync.Mutex   // guards Add/Remove rebuilding the view below
	view atomic.Value // *membership

	trackers sync.Map // trackerKey (uint32) → *tracker
	closed   atomic.Bool

	// opMu guards ops, the registry of undecided requests. Close settles
	// every registered op with ErrClusterClosed — cancelling its hedge
	// and deadline timers — instead of relying on transport teardown to
	// fail them eventually (or never, for a blackholed backend).
	opMu sync.Mutex
	ops  map[*op]struct{}

	nCalls        atomic.Uint64
	nHedges       atomic.Uint64
	nHedgeWins    atomic.Uint64
	nFailovers    atomic.Uint64
	nLosers       atomic.Uint64
	nReplicaErrs  atomic.Uint64
	nBrTrips      atomic.Uint64
	nBrProbes     atomic.Uint64
	nBrReadmits   atomic.Uint64
	nDeadlines    atomic.Uint64
	nReadFallback atomic.Uint64
	nShed         atomic.Uint64
}

// New creates an empty cluster; wire members in with Add.
func New(cfg Config) *Cluster {
	if cfg.Hedge.MinDelay <= 0 {
		cfg.Hedge.MinDelay = defaultMinHedge
	}
	if cfg.Hedge.MaxDelay <= 0 {
		cfg.Hedge.MaxDelay = defaultMaxHedge
	}
	if cfg.DepthTTL <= 0 {
		cfg.DepthTTL = defaultDepthTTL
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Breaker.Threshold <= 0 {
		cfg.Breaker.Threshold = defaultBrThreshold
	}
	if cfg.Breaker.Cooldown <= 0 {
		cfg.Breaker.Cooldown = defaultBrCooldown
	}
	if cfg.Breaker.ProbeTimeout <= 0 {
		cfg.Breaker.ProbeTimeout = defaultBrProbeTimeout
	}
	c := &Cluster{
		cfg: cfg,
		bal: NewBalancer(cfg.Policy, cfg.DepthTTL),
		ops: make(map[*op]struct{}),
	}
	c.view.Store(&membership{})
	return c
}

// membership is one immutable (backends, ring) snapshot. Bundling the
// two in a single atomic value means a lookup can never pair a ring with
// a differently-sized backend slice — which, after Remove, would resolve
// vnode indices out of range.
type membership struct {
	bs   []*Backend
	ring *hashRing
}

// Add registers a backend under name. If the transport exposes OnDepth
// (all zygos clients do), the balancer is subscribed to its piggybacked
// depth reports. Safe to call while the cluster is serving; in-flight
// picks use the previous membership snapshot.
func (c *Cluster) Add(name string, caller Caller) *Backend {
	b := &Backend{name: name, c: caller}
	if ds, ok := caller.(depthSource); ok {
		ds.OnDepth(b.NoteDepth)
	}
	c.mu.Lock()
	old := c.Backends()
	bs := make([]*Backend, len(old), len(old)+1)
	copy(bs, old)
	bs = append(bs, b)
	c.view.Store(&membership{bs: bs, ring: buildRing(bs)})
	c.mu.Unlock()
	return b
}

// Remove drops the backend registered under name from the membership:
// the ring is rebuilt and no new picks will select it, but requests
// already dispatched to it complete normally. The removed Backend is
// returned so the caller can Close its transport once drained (the
// cluster does not, since the caller may own pooled connections shared
// elsewhere); nil if no backend has that name.
func (c *Cluster) Remove(name string) *Backend {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.Backends()
	var removed *Backend
	bs := make([]*Backend, 0, len(old))
	for _, b := range old {
		if removed == nil && b.name == name {
			removed = b
			continue
		}
		bs = append(bs, b)
	}
	if removed != nil {
		c.view.Store(&membership{bs: bs, ring: buildRing(bs)})
	}
	return removed
}

// Backends returns the current membership snapshot.
func (c *Cluster) Backends() []*Backend {
	return c.view.Load().(*membership).bs
}

// Stats is a snapshot of the cluster's tail-management counters.
type Stats struct {
	// Calls counts logical requests accepted.
	Calls uint64
	// Hedges counts duplicate sends issued past the hedge deadline.
	Hedges uint64
	// HedgeWins counts requests whose hedge attempt produced the
	// winning reply.
	HedgeWins uint64
	// Failovers counts re-sends after a transport-level failure.
	Failovers uint64
	// Losers counts final replies that arrived after another attempt
	// had already won and were discarded.
	Losers uint64
	// ReplicaWriteFailures counts secondary replica writes lost to
	// transport errors. The logical reply is driven by the primary
	// alone, so without this counter a dropped secondary write — and
	// the stale reads it causes on that replica — would be invisible.
	ReplicaWriteFailures uint64
	// BreakerTrips counts backend transitions to Down.
	BreakerTrips uint64
	// BreakerProbes counts half-open probe requests claimed against
	// cooled-down backends.
	BreakerProbes uint64
	// BreakerReadmits counts Down/Probe backends restored to Up by a
	// successful reply.
	BreakerReadmits uint64
	// DeadlinesExpired counts requests settled with ErrCallTimeout.
	DeadlinesExpired uint64
	// ReadFallbacks counts keyed reads served by a non-owner because
	// every ring owner was tripped Down.
	ReadFallbacks uint64
	// Shed counts requests rejected by front-tier admission
	// (Config.MaxClusterDepth) before reaching any backend.
	Shed uint64
	// Backends is the per-member load view.
	Backends []BackendStats
}

// BackendStats is one backend's slice of the cluster load view.
type BackendStats struct {
	Name     string
	Inflight int64
	Depth    uint32
	// DepthAge is how long ago the depth report arrived; negative if
	// none ever has.
	DepthAge time.Duration
	// State is the breaker state: "up", "down", or "probe".
	State string
	// Fails is the consecutive transport-failure streak.
	Fails int32
}

// Stats snapshots the counters.
func (c *Cluster) Stats() Stats {
	bs := c.Backends()
	s := Stats{
		Calls:                c.nCalls.Load(),
		Hedges:               c.nHedges.Load(),
		HedgeWins:            c.nHedgeWins.Load(),
		Failovers:            c.nFailovers.Load(),
		Losers:               c.nLosers.Load(),
		ReplicaWriteFailures: c.nReplicaErrs.Load(),
		BreakerTrips:         c.nBrTrips.Load(),
		BreakerProbes:        c.nBrProbes.Load(),
		BreakerReadmits:      c.nBrReadmits.Load(),
		DeadlinesExpired:     c.nDeadlines.Load(),
		ReadFallbacks:        c.nReadFallback.Load(),
		Shed:                 c.nShed.Load(),
		Backends:             make([]BackendStats, len(bs)),
	}
	now := nanotime()
	for i, b := range bs {
		age := time.Duration(-1)
		if at := b.depthAt.Load(); at > 0 {
			age = time.Duration(now - at)
		}
		s.Backends[i] = BackendStats{
			Name:     b.name,
			Inflight: b.inflight.Load(),
			Depth:    b.depth.Load(),
			DepthAge: age,
			State:    b.State(),
			Fails:    b.br.fails.Load(),
		}
	}
	return s
}

// Close settles every in-flight request with ErrClusterClosed —
// cancelling pending hedge and deadline timers so none can fire into a
// dead cluster — then closes the backend connections. Every callback
// still fires exactly once; replies racing Close are dropped as losers.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	// Snapshot under opMu: trackOp re-checks closed under the same lock,
	// so an op missing from this snapshot was either already settled or
	// refused registration — nothing slips between.
	c.opMu.Lock()
	pending := make([]*op, 0, len(c.ops))
	for o := range c.ops {
		pending = append(pending, o)
	}
	c.opMu.Unlock()
	for _, o := range pending {
		o.mu.Lock()
		if o.done {
			o.mu.Unlock()
			continue
		}
		o.settleLocked()
		o.cb(nil, ErrClusterClosed)
	}
	for _, b := range c.Backends() {
		b.c.Close()
	}
}

// trackOp registers an undecided op for settlement at Close. It returns
// false — and the op must not dispatch — when the cluster is already
// closed; checking under opMu closes the race against Close's snapshot.
func (c *Cluster) trackOp(o *op) bool {
	c.opMu.Lock()
	if c.closed.Load() {
		c.opMu.Unlock()
		return false
	}
	c.ops[o] = struct{}{}
	c.opMu.Unlock()
	return true
}

func (c *Cluster) untrackOp(o *op) {
	c.opMu.Lock()
	delete(c.ops, o)
	c.opMu.Unlock()
}

// pickFor selects the next backend for a request: least-loaded among
// the key's owners when the request is keyed, policy pick otherwise —
// in both cases preferring breaker-healthy backends.
//
// probe marks primary picks: a cooled-down Down backend may claim the
// request as its half-open probe, and when every candidate is tripped
// the pick falls through to health-blind (the attempt doubles as an
// early probe rather than inventing a fail-fast mode primaries never
// had). Rescue picks (hedges, failovers) instead return nil when
// nothing healthy remains — duplicating a request onto a backend known
// to be down is pure waste.
//
// fallback lets a keyed read escape to any healthy non-owner when every
// ring owner is down; writes never set it (a write landing off-ring is
// silent data misplacement).
func (c *Cluster) pickFor(owners []*Backend, tried []*Backend, probe, fallback bool) *Backend {
	keyed := len(owners) > 0
	pool := owners
	if !keyed {
		pool = c.Backends()
	}
	if c.cfg.Breaker.Disabled {
		return c.rawPick(pool, tried, keyed)
	}
	if probe {
		now := nanotime()
		for _, b := range pool {
			if !excluded(b, tried) && c.tryClaimProbe(b, now) {
				return b
			}
		}
	}
	if b := c.healthyPick(pool, tried, keyed); b != nil {
		return b
	}
	if keyed && fallback && !c.cfg.NoReadFallback {
		if b := c.healthyPick(c.Backends(), tried, false); b != nil {
			c.nReadFallback.Add(1)
			return b
		}
	}
	if probe {
		return c.rawPick(pool, tried, keyed)
	}
	return nil
}

func (c *Cluster) rawPick(pool, tried []*Backend, keyed bool) *Backend {
	if keyed {
		return c.bal.Least(pool, tried)
	}
	return c.bal.Pick(pool, tried)
}

func (c *Cluster) healthyPick(pool, tried []*Backend, keyed bool) *Backend {
	if keyed {
		return c.bal.least(pool, tried, brUnhealthy)
	}
	return c.bal.pick(pool, tried, brUnhealthy)
}

// route resolves keyed routing for a request: the owner set and whether
// it is a write (fan out, never hedge).
func (c *Cluster) route(method uint16, legacy bool, payload []byte) (owners []*Backend, write bool) {
	kf := c.cfg.KeyFunc
	if kf == nil || legacy {
		return nil, false
	}
	key, w, ok := kf(method, payload)
	if !ok {
		return nil, false
	}
	mv := c.view.Load().(*membership)
	if mv.ring == nil {
		return nil, false
	}
	return mv.ring.owners(key, c.cfg.Replicas, mv.bs), w
}

// op is one logical request in flight: up to maxAttempts sends racing,
// first final reply wins.
type op struct {
	c       *Cluster
	method  uint16
	legacy  bool
	payload []byte // cluster-owned copy: rescue sends outlive the caller's slice
	cb      func(resp []byte, err error)
	owners  []*Backend // non-nil restricts rescue picks to the replica set

	// fallback permits keyed-read escape to a non-owner when every owner
	// is tripped Down; never set for writes.
	fallback bool

	// deadline is the op's absolute deadline (zero = none). Every
	// dispatch — primary, hedge, or failover — stamps the budget
	// *remaining* at that moment onto the wire, so time already burned
	// queueing or waiting out the hedge delay is not re-granted to the
	// backend.
	deadline time.Time

	mu          sync.Mutex
	done        bool
	attempts    int
	outstanding int
	tried       []*Backend
	timer       *time.Timer // hedge
	dtimer      *time.Timer // deadline
}

// dispatch issues one attempt to b. On synchronous error the callback
// will never run for this attempt; the caller owns the bookkeeping.
func (o *op) dispatch(b *Backend, isHedge bool) error {
	b.inflight.Add(1)
	start := time.Now()
	cb := func(resp []byte, err error) { o.finish(b, isHedge, start, resp, err) }
	var err error
	switch {
	case o.legacy:
		err = b.c.SendAsync(o.payload, cb)
	case !o.deadline.IsZero():
		if bs, ok := b.c.(budgetSender); ok {
			rem := time.Until(o.deadline)
			if rem <= 0 {
				// Already out of budget: stamp the floor instead of omitting
				// the extension (no budget means *unlimited* on the wire), so
				// the backend sheds it as expired-on-arrival for free.
				rem = time.Microsecond
			}
			err = bs.SendMethodBudgetAsync(o.method, o.payload, rem, cb)
		} else {
			err = b.c.SendMethodAsync(o.method, o.payload, cb)
		}
	default:
		err = b.c.SendMethodAsync(o.method, o.payload, cb)
	}
	if err != nil {
		b.inflight.Add(-1)
		// A synchronous refusal means the transport already knows the
		// peer is unreachable (dial backoff, closed manager): trip now so
		// later picks — including this op's own rescues — skip it.
		o.c.noteBackendFailure(b, true)
	}
	return err
}

// finish is every attempt's completion. Exactly one final reply reaches
// o.cb; late finals are counted as losers and dropped, transport
// failures fail over while attempts remain.
func (o *op) finish(b *Backend, isHedge bool, start time.Time, resp []byte, err error) {
	b.inflight.Add(-1)
	final := err == nil || isStatusErr(err)
	if final {
		o.c.noteBackendSuccess(b)
	} else {
		o.c.noteBackendFailure(b, false)
	}
	o.mu.Lock()
	o.outstanding--
	if o.done {
		o.mu.Unlock()
		if final {
			o.c.nLosers.Add(1)
		}
		return
	}
	if final {
		o.settleLocked()
		o.c.trackerFor(o.method, o.legacy).record(time.Since(start), o.c.cfg.Hedge)
		if isHedge {
			o.c.nHedgeWins.Add(1)
		}
		o.cb(resp, err)
		return
	}
	// Transport failure. If another attempt is still racing, let it
	// decide the outcome; otherwise fail over once, then give up.
	if o.outstanding > 0 {
		o.mu.Unlock()
		return
	}
	if o.attempts < maxAttempts && !o.c.closed.Load() {
		if nb := o.c.pickFor(o.owners, o.tried, false, o.fallback); nb != nil {
			o.attempts++
			o.outstanding++
			o.tried = append(o.tried, nb)
			o.mu.Unlock()
			o.c.nFailovers.Add(1)
			if o.dispatch(nb, false) != nil {
				o.noteDispatchFailed(err)
			}
			return
		}
	}
	o.settleLocked()
	o.cb(nil, err)
}

// isStatusErr reports whether err is an application-level StatusError —
// a valid final reply, as opposed to a transport failure.
func isStatusErr(err error) bool {
	var se *proto.StatusError
	return errors.As(err, &se)
}

// noteDispatchFailed is the bookkeeping for an attempt whose dispatch
// failed synchronously after it had been counted outstanding (the
// transport callback will never run for it). If another attempt is
// still racing it decides the outcome; otherwise rescue while the
// attempt budget lasts, and failing that settle the op with err so
// o.cb still fires exactly once. Without the settle, a hedge refused
// synchronously (e.g. dial backoff) after the primary's transport
// failure would leave the op undecided and a blocking Call hung
// forever.
func (o *op) noteDispatchFailed(err error) {
	o.mu.Lock()
	for {
		o.outstanding--
		if o.done || o.outstanding > 0 {
			o.mu.Unlock()
			return
		}
		if o.attempts >= maxAttempts || o.c.closed.Load() {
			break
		}
		nb := o.c.pickFor(o.owners, o.tried, false, o.fallback)
		if nb == nil {
			break
		}
		o.attempts++
		o.outstanding++
		o.tried = append(o.tried, nb)
		o.mu.Unlock()
		o.c.nFailovers.Add(1)
		if o.dispatch(nb, false) == nil {
			return
		}
		o.mu.Lock()
	}
	o.settleLocked()
	o.cb(nil, err)
}

// settleLocked marks the op decided, stops its hedge and deadline
// timers, and deregisters it from the Close registry. Caller holds
// o.mu; it is released here so cb runs lock-free. (The registry lock is
// only taken after o.mu is dropped, so settle and Close can never
// deadlock against each other.)
func (o *op) settleLocked() {
	o.done = true
	if o.timer != nil {
		o.timer.Stop()
	}
	if o.dtimer != nil {
		o.dtimer.Stop()
	}
	o.mu.Unlock()
	o.c.untrackOp(o)
}

// fireHedge runs on the hedge timer: the primary is outstanding past
// the route's deadline, so race a duplicate on a second backend.
func (o *op) fireHedge() {
	o.mu.Lock()
	if o.done || o.attempts >= maxAttempts || o.c.closed.Load() {
		o.mu.Unlock()
		return
	}
	nb := o.c.pickFor(o.owners, o.tried, false, o.fallback)
	if nb == nil {
		o.mu.Unlock()
		return
	}
	o.attempts++
	o.outstanding++
	o.tried = append(o.tried, nb)
	o.mu.Unlock()
	o.c.nHedges.Add(1)
	if err := o.dispatch(nb, true); err != nil {
		o.noteDispatchFailed(err)
	}
}

// fireDeadline runs on the deadline timer: the op has no final reply
// within its budget, so settle with ErrCallTimeout now. Attempts still
// racing resolve as losers; a blackholed backend cannot hold the caller
// hostage.
func (o *op) fireDeadline() {
	o.mu.Lock()
	if o.done {
		o.mu.Unlock()
		return
	}
	o.c.nDeadlines.Add(1)
	o.settleLocked()
	o.cb(nil, proto.ErrCallTimeout)
}

// effTimeout resolves a per-call deadline override against the
// configured default: d > 0 wins, d == 0 inherits Config.CallTimeout,
// and d < 0 forces no deadline.
func (c *Cluster) effTimeout(d time.Duration) time.Duration {
	if d != 0 {
		if d < 0 {
			return 0
		}
		return d
	}
	return c.cfg.CallTimeout
}

// sendAsync is the shared async entry: route, replicate writes, arm
// the hedge and deadline timers, dispatch the primary, and fail over
// synchronous refusals. d is the per-call deadline override (see
// effTimeout).
func (c *Cluster) sendAsync(method uint16, legacy bool, payload []byte, d time.Duration, cb func(resp []byte, err error)) error {
	if c.closed.Load() {
		return ErrClusterClosed
	}
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	if err := c.admit(); err != nil {
		return err
	}
	c.nCalls.Add(1)
	owners, write := c.route(method, legacy, payload)
	if write && len(owners) > 1 {
		// Replicate to the secondaries now — transports encode
		// synchronously, so the caller's payload is still valid — and
		// drive the logical reply off the primary alone. A secondary
		// send lost to a transport error (StatusError means the write
		// reached the backend) is counted: the primary's reply hides it
		// from the caller, and reads route to any owner.
		for _, sb := range owners[1:] {
			sb.inflight.Add(1)
			rb := sb
			cb := func(_ []byte, err error) {
				rb.inflight.Add(-1)
				if err != nil && !isStatusErr(err) {
					c.nReplicaErrs.Add(1)
					c.noteBackendFailure(rb, false)
				} else {
					c.noteBackendSuccess(rb)
				}
			}
			if err := sb.c.SendMethodAsync(method, payload, cb); err != nil {
				rb.inflight.Add(-1)
				c.nReplicaErrs.Add(1)
				c.noteBackendFailure(rb, true)
			}
		}
		owners = owners[:1:1]
	}
	o := &op{
		c:        c,
		method:   method,
		legacy:   legacy,
		payload:  append([]byte(nil), payload...),
		cb:       cb,
		owners:   owners,
		fallback: len(owners) > 0 && !write,
	}
	b := c.pickFor(owners, nil, true, o.fallback)
	if b == nil {
		return ErrNoBackends
	}
	if !c.trackOp(o) {
		return ErrClusterClosed
	}
	// Arm the timers under o.mu: both fire callbacks take the lock
	// before touching the op, so holding it across the assignments
	// orders them against a timer that fires immediately.
	o.mu.Lock()
	o.attempts = 1
	o.outstanding = 1
	o.tried = append(o.tried, b)
	if c.cfg.Hedge.Enabled && !write {
		delay := c.trackerFor(method, legacy).delay(c.cfg.Hedge)
		o.timer = time.AfterFunc(delay, o.fireHedge)
	}
	if t := c.effTimeout(d); t > 0 {
		o.deadline = time.Now().Add(t)
		o.dtimer = time.AfterFunc(t, o.fireDeadline)
	}
	o.mu.Unlock()
	err := o.dispatch(b, false)
	if err == nil {
		return nil
	}
	// The primary transport refused synchronously; try one failover
	// before surfacing the error (the callback has not and will not
	// run for the refused attempt).
	o.mu.Lock()
	o.outstanding--
	if o.outstanding > 0 { // a hedge raced in already; let it decide
		o.mu.Unlock()
		return nil
	}
	if o.done { // a hedge raced in and already completed the op
		o.mu.Unlock()
		return nil
	}
	nb := c.pickFor(owners, o.tried, false, o.fallback)
	if nb == nil || o.attempts >= maxAttempts {
		o.settleLocked()
		return err
	}
	o.attempts++
	o.outstanding++
	o.tried = append(o.tried, nb)
	o.mu.Unlock()
	c.nFailovers.Add(1)
	if derr := o.dispatch(nb, false); derr != nil {
		o.mu.Lock()
		o.outstanding--
		if o.done || o.outstanding > 0 {
			o.mu.Unlock()
			return nil
		}
		o.settleLocked()
		return derr
	}
	return nil
}

// admit is the front-tier admission gate: with MaxClusterDepth set, a
// request is refused with a StatusShed *proto.StatusError (carrying a
// retry-after hint) once the fleet-wide load estimate exceeds the
// limit. The estimate is the same score the balancer routes on — local
// in-flight plus fresh self-reported depths — summed over the
// membership, all atomic reads.
func (c *Cluster) admit() error {
	limit := int64(c.cfg.MaxClusterDepth)
	if limit <= 0 {
		return nil
	}
	bs := c.Backends()
	now := nanotime()
	ttl := int64(c.cfg.DepthTTL)
	var depth int64
	for _, b := range bs {
		depth += b.score(now, ttl)
	}
	if depth <= limit {
		return nil
	}
	c.nShed.Add(1)
	// Drain-time estimate at a nominal 100µs per queued request spread
	// over the fleet; clamped like the server-side hint.
	per := 100 * time.Microsecond
	n := len(bs)
	if n < 1 {
		n = 1
	}
	hint := time.Duration(depth-limit) * per / time.Duration(n)
	if hint < 50*time.Microsecond {
		hint = 50 * time.Microsecond
	}
	if hint > 10*time.Millisecond {
		hint = 10 * time.Millisecond
	}
	return &proto.StatusError{
		Code: proto.StatusShed,
		Msg:  proto.FormatRetryAfter(hint, "cluster admission: fleet depth exceeded"),
	}
}

// sendOneWay routes a fire-and-forget request: keyed writes fan out to
// every owner, everything else goes to one picked backend.
func (c *Cluster) sendOneWay(method uint16, legacy bool, payload []byte) error {
	if c.closed.Load() {
		return ErrClusterClosed
	}
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	if err := c.admit(); err != nil {
		return err
	}
	c.nCalls.Add(1)
	owners, write := c.route(method, legacy, payload)
	if write && len(owners) > 1 {
		var err error
		for i, b := range owners {
			if e := b.c.SendMethodOneWay(method, payload); e != nil {
				c.noteBackendFailure(b, true)
				if i > 0 {
					c.nReplicaErrs.Add(1)
				}
				if err == nil {
					err = e
				}
			}
		}
		return err
	}
	var tried []*Backend
	for attempt := 0; attempt < maxAttempts; attempt++ {
		b := c.pickFor(owners, tried, attempt == 0, !write && len(owners) > 0)
		if b == nil {
			if attempt == 0 {
				return ErrNoBackends
			}
			break
		}
		var err error
		if legacy {
			err = b.c.SendOneWay(payload)
		} else {
			err = b.c.SendMethodOneWay(method, payload)
		}
		if err == nil {
			return nil
		}
		// A one-way send fails only synchronously; the transport is
		// refusing writes to this peer right now.
		c.noteBackendFailure(b, true)
		tried = append(tried, b)
		if attempt == maxAttempts-1 {
			return err
		}
		c.nFailovers.Add(1)
	}
	return ErrNoBackends
}

// SendAsync issues a legacy (method-less) request; cb runs exactly once
// with the winning reply or the terminal error.
func (c *Cluster) SendAsync(payload []byte, cb func(resp []byte, err error)) error {
	return c.sendAsync(0, true, payload, 0, cb)
}

// SendMethodAsync is SendAsync with a wire method ID (v3 frame).
func (c *Cluster) SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error {
	return c.sendAsync(method, false, payload, 0, cb)
}

// SendMethodBudgetAsync is SendMethodAsync with a deadline budget: the
// budget is both the op-level deadline (the request settles with
// proto.ErrCallTimeout when it runs out) and the wire budget stamped —
// as the time *remaining* — on every dispatch, primary or rescue. d == 0
// inherits Config.CallTimeout; d < 0 disables the deadline (and stamps
// nothing).
func (c *Cluster) SendMethodBudgetAsync(method uint16, payload []byte, d time.Duration, cb func(resp []byte, err error)) error {
	return c.sendAsync(method, false, payload, d, cb)
}

// SendBudgetAsync is the legacy (method-less) SendAsync bounded by a
// deadline budget. v2 sends through the generic Caller interface cannot
// re-stamp the wire extension, but the op-level deadline still bounds
// how long the caller can be held.
func (c *Cluster) SendBudgetAsync(payload []byte, d time.Duration, cb func(resp []byte, err error)) error {
	return c.sendAsync(0, true, payload, d, cb)
}

// SendOneWay issues a fire-and-forget request to one backend.
func (c *Cluster) SendOneWay(payload []byte) error {
	return c.sendOneWay(0, true, payload)
}

// SendMethodOneWay is SendOneWay with a wire method ID; keyed writes
// fan out to every replica.
func (c *Cluster) SendMethodOneWay(method uint16, payload []byte) error {
	return c.sendOneWay(method, false, payload)
}

// Call issues a legacy request and blocks for the winning reply.
func (c *Cluster) Call(payload []byte) ([]byte, error) {
	return c.CallInto(payload, nil)
}

// CallInto is Call with a caller-owned reply buffer.
func (c *Cluster) CallInto(payload, buf []byte) ([]byte, error) {
	w := proto.GetWaiter(buf)
	if err := c.SendAsync(payload, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.Wait()
}

// CallMethod issues a method-routed request and blocks for the winning
// reply.
func (c *Cluster) CallMethod(method uint16, payload []byte) ([]byte, error) {
	return c.CallMethodInto(method, payload, nil)
}

// CallMethodInto is CallMethod with a caller-owned reply buffer.
func (c *Cluster) CallMethodInto(method uint16, payload, buf []byte) ([]byte, error) {
	w := proto.GetWaiter(buf)
	if err := c.SendMethodAsync(method, payload, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.Wait()
}

// CallTimeout is Call with a per-call deadline: the op settles with
// proto.ErrCallTimeout after d even if every attempt is wedged. d == 0
// inherits Config.CallTimeout; d < 0 disables the deadline entirely.
func (c *Cluster) CallTimeout(payload []byte, d time.Duration) ([]byte, error) {
	w := proto.GetWaiter(nil)
	if err := c.sendAsync(0, true, payload, d, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	// The op-level deadline drives the callback, so a plain Wait cannot
	// hang; no waiter-level timer needed.
	return w.Wait()
}

// CallMethodTimeout is CallMethod with a per-call deadline (see
// CallTimeout).
func (c *Cluster) CallMethodTimeout(method uint16, payload []byte, d time.Duration) ([]byte, error) {
	w := proto.GetWaiter(nil)
	if err := c.sendAsync(method, false, payload, d, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.Wait()
}
