// Package cluster is the front tier of a zygos deployment: one Cluster
// fans a single Caller-shaped stream of requests out over N backend
// runtimes, picking backends by live load, hedging slow requests
// against a second replica, and routing keyed operations onto a
// consistent-hash ring.
//
// The three tail-latency mechanisms compose the "tail at scale" recipe
// on top of the paper's single-node work-conserving scheduler:
//
//   - Balancing: round-robin, power-of-two-choices, or join-shortest-
//     queue over a score combining the client's own in-flight count with
//     the backend's self-reported scheduling depth (carried back as
//     piggybacked health frames, see proto.MethodHealth). Reported
//     depth decays after DepthTTL so a silent backend is judged only by
//     local knowledge.
//
//   - Hedging: a request outstanding past an adaptive per-route P99
//     deadline is duplicated to a second backend; the first final reply
//     wins and the loser is discarded on arrival. Application-level
//     errors (wire StatusError) are final replies and win; transport
//     errors instead fail over to a fresh backend.
//
//   - Replica routing: a KeyFunc extracts the key and read/write
//     direction from a payload; reads go to the least-loaded of the
//     key's R ring owners, writes fan out to all owners with the
//     primary's reply returned. Writes are never hedged (duplicating a
//     non-idempotent operation is not a latency optimization).
package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"zygos/internal/proto"
)

// Caller is the transport-side contract a backend connection must
// satisfy; it mirrors the zygos.Caller method set exactly, so any zygos
// client (in-process, TCP, or managed) plugs in directly — and a
// *Cluster itself satisfies it, so tiers stack.
type Caller interface {
	Call(payload []byte) ([]byte, error)
	CallInto(payload, buf []byte) ([]byte, error)
	CallMethod(method uint16, payload []byte) ([]byte, error)
	CallMethodInto(method uint16, payload, buf []byte) ([]byte, error)
	SendAsync(payload []byte, cb func(resp []byte, err error)) error
	SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error
	SendOneWay(payload []byte) error
	SendMethodOneWay(method uint16, payload []byte) error
	Close()
}

// depthSource is the optional transport capability the balancer feeds
// on: transports that expose OnDepth deliver the backend's piggybacked
// health frames.
type depthSource interface {
	OnDepth(f func(depth uint32))
}

var (
	// ErrNoBackends reports a cluster with no (eligible) backends.
	ErrNoBackends = errors.New("cluster: no backends")
	// ErrClosed reports calls on a closed cluster.
	ErrClosed = errors.New("cluster: closed")
)

// Policy selects how the balancer spreads unkeyed requests.
type Policy int

const (
	// RoundRobin rotates through backends, load-blind. The baseline.
	RoundRobin Policy = iota
	// P2C picks two backends at random and sends to the less loaded —
	// near-JSQ tail behaviour at O(1) cost and without herding.
	P2C
	// JSQ scans every backend and sends to the least loaded.
	JSQ
)

// String names the policy as accepted by ParsePolicy.
func (p Policy) String() string {
	switch p {
	case P2C:
		return "p2c"
	case JSQ:
		return "jsq"
	default:
		return "rr"
	}
}

// ParsePolicy maps a flag string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "rr", "roundrobin", "round-robin":
		return RoundRobin, nil
	case "p2c", "power-of-two":
		return P2C, nil
	case "jsq", "shortest-queue":
		return JSQ, nil
	}
	return RoundRobin, errors.New("cluster: unknown policy " + s)
}

// KeyFunc extracts the routing key from a method-routed request.
// Returning ok=false leaves the request unkeyed (balanced across all
// backends); write=true routes it to every ring owner of the key.
type KeyFunc func(method uint16, payload []byte) (key []byte, write, ok bool)

// HedgeConfig parameterizes request hedging.
type HedgeConfig struct {
	// Enabled turns hedging on.
	Enabled bool
	// MinDelay floors the adaptive hedge deadline; defaults to 100µs.
	// It bounds the duplicate-send rate when the route is uniformly
	// fast.
	MinDelay time.Duration
	// MaxDelay caps the deadline and is also the deadline used before
	// a route has latency history; defaults to 20ms.
	MaxDelay time.Duration
}

// Config parameterizes a Cluster.
type Config struct {
	// Policy is the unkeyed balancing policy; defaults to P2C.
	Policy Policy
	// Hedge configures duplicate requests past the adaptive deadline.
	Hedge HedgeConfig
	// Replicas is the number of ring owners per key; 0 or 1 with a nil
	// KeyFunc disables keyed routing.
	Replicas int
	// KeyFunc extracts routing keys; nil disables keyed routing.
	KeyFunc KeyFunc
	// DepthTTL bounds how long a piggybacked depth report keeps
	// counting toward a backend's score; defaults to 10ms.
	DepthTTL time.Duration
}

const (
	defaultMinHedge = 100 * time.Microsecond
	defaultMaxHedge = 20 * time.Millisecond
	defaultDepthTTL = 10 * time.Millisecond
	// maxAttempts bounds sends per logical request: the primary plus
	// one rescue (hedge or failover).
	maxAttempts = 2
)

// Backend is one member runtime of the cluster: its connection plus the
// live load signals the balancer scores it by.
type Backend struct {
	name string
	c    Caller

	// inflight is the client-side count of requests outstanding on
	// this backend — knowledge the balancer always has, even before
	// the first health frame arrives.
	inflight atomic.Int64
	// depth/depthAt hold the backend's last self-reported scheduling
	// depth (piggybacked health frame) and its arrival time.
	depth   atomic.Uint32
	depthAt atomic.Int64
}

// Name returns the identifier the backend was added under.
func (b *Backend) Name() string { return b.name }

// NoteDepth records a depth report; transports with OnDepth hooks are
// wired to it automatically.
func (b *Backend) NoteDepth(d uint32) {
	b.depth.Store(d)
	b.depthAt.Store(nanotime())
}

func nanotime() int64 { return time.Now().UnixNano() }

// score is the balancer's load estimate: local in-flight plus the
// reported depth while it is fresh.
func (b *Backend) score(now, ttl int64) int64 {
	s := b.inflight.Load()
	if at := b.depthAt.Load(); at > 0 && now-at <= ttl {
		s += int64(b.depth.Load())
	}
	return s
}

// Balancer picks backends by policy over the live score. It is
// stateless apart from the rotation counter and the RNG word, both
// lock-free, so Pick is safe from any goroutine.
type Balancer struct {
	policy Policy
	ttl    int64

	rr  atomic.Uint64
	rng atomic.Uint64
}

// NewBalancer returns a balancer with the given policy; depthTTL <= 0
// defaults to 10ms.
func NewBalancer(policy Policy, depthTTL time.Duration) *Balancer {
	if depthTTL <= 0 {
		depthTTL = defaultDepthTTL
	}
	return &Balancer{policy: policy, ttl: int64(depthTTL)}
}

// rand is a lock-free splitmix64 step: an atomic add of the golden
// gamma followed by a stateless mix, so concurrent pickers never
// contend on a mutex for randomness.
func (bl *Balancer) rand() uint64 {
	x := bl.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func excluded(b *Backend, exclude []*Backend) bool {
	for _, e := range exclude {
		if e == b {
			return true
		}
	}
	return false
}

// Pick selects a backend from bs by policy, skipping exclude (backends
// already tried by this request). Returns nil if none is eligible.
func (bl *Balancer) Pick(bs []*Backend, exclude []*Backend) *Backend {
	n := len(bs)
	if n == 0 {
		return nil
	}
	switch bl.policy {
	case P2C:
		if n-len(exclude) > 2 {
			now := nanotime()
			r := bl.rand()
			i := int(r % uint64(n))
			j := int((r >> 32) % uint64(n-1))
			if j >= i {
				j++
			}
			a, b := bs[i], bs[j]
			if excluded(a, exclude) {
				a = nil
			}
			if excluded(b, exclude) {
				b = nil
			}
			switch {
			case a == nil && b == nil:
				return bl.Least(bs, exclude)
			case a == nil:
				return b
			case b == nil:
				return a
			}
			if b.score(now, bl.ttl) < a.score(now, bl.ttl) {
				return b
			}
			return a
		}
		// Too few distinct candidates for a random pair; degrade to a
		// full scan.
		return bl.Least(bs, exclude)
	case JSQ:
		return bl.Least(bs, exclude)
	default: // RoundRobin
		start := bl.rr.Add(1)
		for k := 0; k < n; k++ {
			b := bs[int((start+uint64(k))%uint64(n))]
			if !excluded(b, exclude) {
				return b
			}
		}
		return nil
	}
}

// Least returns the lowest-score backend in bs, skipping exclude.
func (bl *Balancer) Least(bs []*Backend, exclude []*Backend) *Backend {
	now := nanotime()
	var best *Backend
	var bestScore int64
	for _, b := range bs {
		if excluded(b, exclude) {
			continue
		}
		s := b.score(now, bl.ttl)
		if best == nil || s < bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// Cluster fans requests out over its backends. It satisfies Caller (and
// structurally zygos.Caller), so applications swap a single-server
// client for a cluster without code changes.
type Cluster struct {
	cfg Config
	bal *Balancer

	mu       sync.Mutex   // guards Add rebuilding the views below
	backends atomic.Value // []*Backend
	ring     atomic.Value // *hashRing

	trackers sync.Map // trackerKey (uint32) → *tracker
	closed   atomic.Bool

	nCalls       atomic.Uint64
	nHedges      atomic.Uint64
	nHedgeWins   atomic.Uint64
	nFailovers   atomic.Uint64
	nLosers      atomic.Uint64
	nReplicaErrs atomic.Uint64
}

// New creates an empty cluster; wire members in with Add.
func New(cfg Config) *Cluster {
	if cfg.Hedge.MinDelay <= 0 {
		cfg.Hedge.MinDelay = defaultMinHedge
	}
	if cfg.Hedge.MaxDelay <= 0 {
		cfg.Hedge.MaxDelay = defaultMaxHedge
	}
	if cfg.DepthTTL <= 0 {
		cfg.DepthTTL = defaultDepthTTL
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	c := &Cluster{cfg: cfg, bal: NewBalancer(cfg.Policy, cfg.DepthTTL)}
	c.backends.Store([]*Backend(nil))
	c.ring.Store((*hashRing)(nil))
	return c
}

// Add registers a backend under name. If the transport exposes OnDepth
// (all zygos clients do), the balancer is subscribed to its piggybacked
// depth reports. Safe to call while the cluster is serving; in-flight
// picks use the previous membership snapshot.
func (c *Cluster) Add(name string, caller Caller) *Backend {
	b := &Backend{name: name, c: caller}
	if ds, ok := caller.(depthSource); ok {
		ds.OnDepth(b.NoteDepth)
	}
	c.mu.Lock()
	old := c.backends.Load().([]*Backend)
	bs := make([]*Backend, len(old), len(old)+1)
	copy(bs, old)
	bs = append(bs, b)
	c.backends.Store(bs)
	c.ring.Store(buildRing(bs))
	c.mu.Unlock()
	return b
}

// Backends returns the current membership snapshot.
func (c *Cluster) Backends() []*Backend {
	return c.backends.Load().([]*Backend)
}

// Stats is a snapshot of the cluster's tail-management counters.
type Stats struct {
	// Calls counts logical requests accepted.
	Calls uint64
	// Hedges counts duplicate sends issued past the hedge deadline.
	Hedges uint64
	// HedgeWins counts requests whose hedge attempt produced the
	// winning reply.
	HedgeWins uint64
	// Failovers counts re-sends after a transport-level failure.
	Failovers uint64
	// Losers counts final replies that arrived after another attempt
	// had already won and were discarded.
	Losers uint64
	// ReplicaWriteFailures counts secondary replica writes lost to
	// transport errors. The logical reply is driven by the primary
	// alone, so without this counter a dropped secondary write — and
	// the stale reads it causes on that replica — would be invisible.
	ReplicaWriteFailures uint64
	// Backends is the per-member load view.
	Backends []BackendStats
}

// BackendStats is one backend's slice of the cluster load view.
type BackendStats struct {
	Name     string
	Inflight int64
	Depth    uint32
	// DepthAge is how long ago the depth report arrived; negative if
	// none ever has.
	DepthAge time.Duration
}

// Stats snapshots the counters.
func (c *Cluster) Stats() Stats {
	bs := c.Backends()
	s := Stats{
		Calls:                c.nCalls.Load(),
		Hedges:               c.nHedges.Load(),
		HedgeWins:            c.nHedgeWins.Load(),
		Failovers:            c.nFailovers.Load(),
		Losers:               c.nLosers.Load(),
		ReplicaWriteFailures: c.nReplicaErrs.Load(),
		Backends:             make([]BackendStats, len(bs)),
	}
	now := nanotime()
	for i, b := range bs {
		age := time.Duration(-1)
		if at := b.depthAt.Load(); at > 0 {
			age = time.Duration(now - at)
		}
		s.Backends[i] = BackendStats{
			Name:     b.name,
			Inflight: b.inflight.Load(),
			Depth:    b.depth.Load(),
			DepthAge: age,
		}
	}
	return s
}

// Close closes every backend connection; outstanding calls fail through
// their transports.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	for _, b := range c.Backends() {
		b.c.Close()
	}
}

// pickFor selects the next backend for a request: least-loaded among
// the key's owners when the request is keyed, policy pick otherwise.
func (c *Cluster) pickFor(owners []*Backend, tried []*Backend) *Backend {
	if len(owners) > 0 {
		return c.bal.Least(owners, tried)
	}
	return c.bal.Pick(c.Backends(), tried)
}

// route resolves keyed routing for a request: the owner set and whether
// it is a write (fan out, never hedge).
func (c *Cluster) route(method uint16, legacy bool, payload []byte) (owners []*Backend, write bool) {
	kf := c.cfg.KeyFunc
	if kf == nil || legacy {
		return nil, false
	}
	key, w, ok := kf(method, payload)
	if !ok {
		return nil, false
	}
	ring := c.ring.Load().(*hashRing)
	if ring == nil {
		return nil, false
	}
	return ring.owners(key, c.cfg.Replicas, c.Backends()), w
}

// op is one logical request in flight: up to maxAttempts sends racing,
// first final reply wins.
type op struct {
	c       *Cluster
	method  uint16
	legacy  bool
	payload []byte // cluster-owned copy: rescue sends outlive the caller's slice
	cb      func(resp []byte, err error)
	owners  []*Backend // non-nil restricts rescue picks to the replica set

	mu          sync.Mutex
	done        bool
	attempts    int
	outstanding int
	tried       []*Backend
	timer       *time.Timer
}

// dispatch issues one attempt to b. On synchronous error the callback
// will never run for this attempt; the caller owns the bookkeeping.
func (o *op) dispatch(b *Backend, isHedge bool) error {
	b.inflight.Add(1)
	start := time.Now()
	cb := func(resp []byte, err error) { o.finish(b, isHedge, start, resp, err) }
	var err error
	if o.legacy {
		err = b.c.SendAsync(o.payload, cb)
	} else {
		err = b.c.SendMethodAsync(o.method, o.payload, cb)
	}
	if err != nil {
		b.inflight.Add(-1)
	}
	return err
}

// finish is every attempt's completion. Exactly one final reply reaches
// o.cb; late finals are counted as losers and dropped, transport
// failures fail over while attempts remain.
func (o *op) finish(b *Backend, isHedge bool, start time.Time, resp []byte, err error) {
	b.inflight.Add(-1)
	final := err == nil || isStatusErr(err)
	o.mu.Lock()
	o.outstanding--
	if o.done {
		o.mu.Unlock()
		if final {
			o.c.nLosers.Add(1)
		}
		return
	}
	if final {
		o.settleLocked()
		o.c.trackerFor(o.method, o.legacy).record(time.Since(start), o.c.cfg.Hedge)
		if isHedge {
			o.c.nHedgeWins.Add(1)
		}
		o.cb(resp, err)
		return
	}
	// Transport failure. If another attempt is still racing, let it
	// decide the outcome; otherwise fail over once, then give up.
	if o.outstanding > 0 {
		o.mu.Unlock()
		return
	}
	if o.attempts < maxAttempts && !o.c.closed.Load() {
		if nb := o.c.pickFor(o.owners, o.tried); nb != nil {
			o.attempts++
			o.outstanding++
			o.tried = append(o.tried, nb)
			o.mu.Unlock()
			o.c.nFailovers.Add(1)
			if o.dispatch(nb, false) != nil {
				o.noteDispatchFailed(err)
			}
			return
		}
	}
	o.settleLocked()
	o.cb(nil, err)
}

// isStatusErr reports whether err is an application-level StatusError —
// a valid final reply, as opposed to a transport failure.
func isStatusErr(err error) bool {
	var se *proto.StatusError
	return errors.As(err, &se)
}

// noteDispatchFailed is the bookkeeping for an attempt whose dispatch
// failed synchronously after it had been counted outstanding (the
// transport callback will never run for it). If another attempt is
// still racing it decides the outcome; otherwise rescue while the
// attempt budget lasts, and failing that settle the op with err so
// o.cb still fires exactly once. Without the settle, a hedge refused
// synchronously (e.g. dial backoff) after the primary's transport
// failure would leave the op undecided and a blocking Call hung
// forever.
func (o *op) noteDispatchFailed(err error) {
	o.mu.Lock()
	for {
		o.outstanding--
		if o.done || o.outstanding > 0 {
			o.mu.Unlock()
			return
		}
		if o.attempts >= maxAttempts || o.c.closed.Load() {
			break
		}
		nb := o.c.pickFor(o.owners, o.tried)
		if nb == nil {
			break
		}
		o.attempts++
		o.outstanding++
		o.tried = append(o.tried, nb)
		o.mu.Unlock()
		o.c.nFailovers.Add(1)
		if o.dispatch(nb, false) == nil {
			return
		}
		o.mu.Lock()
	}
	o.settleLocked()
	o.cb(nil, err)
}

// settleLocked marks the op decided and stops the hedge timer. Caller
// holds o.mu; it is released here so cb runs lock-free.
func (o *op) settleLocked() {
	o.done = true
	if o.timer != nil {
		o.timer.Stop()
	}
	o.mu.Unlock()
}

// fireHedge runs on the hedge timer: the primary is outstanding past
// the route's deadline, so race a duplicate on a second backend.
func (o *op) fireHedge() {
	o.mu.Lock()
	if o.done || o.attempts >= maxAttempts || o.c.closed.Load() {
		o.mu.Unlock()
		return
	}
	nb := o.c.pickFor(o.owners, o.tried)
	if nb == nil {
		o.mu.Unlock()
		return
	}
	o.attempts++
	o.outstanding++
	o.tried = append(o.tried, nb)
	o.mu.Unlock()
	o.c.nHedges.Add(1)
	if err := o.dispatch(nb, true); err != nil {
		o.noteDispatchFailed(err)
	}
}

// sendAsync is the shared async entry: route, replicate writes, arm
// the hedge, dispatch the primary, and fail over synchronous refusals.
func (c *Cluster) sendAsync(method uint16, legacy bool, payload []byte, cb func(resp []byte, err error)) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	c.nCalls.Add(1)
	owners, write := c.route(method, legacy, payload)
	if write && len(owners) > 1 {
		// Replicate to the secondaries now — transports encode
		// synchronously, so the caller's payload is still valid — and
		// drive the logical reply off the primary alone. A secondary
		// send lost to a transport error (StatusError means the write
		// reached the backend) is counted: the primary's reply hides it
		// from the caller, and reads route to any owner.
		for _, sb := range owners[1:] {
			sb.inflight.Add(1)
			rb := sb
			cb := func(_ []byte, err error) {
				rb.inflight.Add(-1)
				if err != nil && !isStatusErr(err) {
					c.nReplicaErrs.Add(1)
				}
			}
			if err := sb.c.SendMethodAsync(method, payload, cb); err != nil {
				rb.inflight.Add(-1)
				c.nReplicaErrs.Add(1)
			}
		}
		owners = owners[:1:1]
	}
	o := &op{
		c:       c,
		method:  method,
		legacy:  legacy,
		payload: append([]byte(nil), payload...),
		cb:      cb,
		owners:  owners,
	}
	b := c.pickFor(owners, nil)
	if b == nil {
		return ErrNoBackends
	}
	o.attempts = 1
	o.outstanding = 1
	o.tried = append(o.tried, b)
	if c.cfg.Hedge.Enabled && !write {
		delay := c.trackerFor(method, legacy).delay(c.cfg.Hedge)
		o.timer = time.AfterFunc(delay, o.fireHedge)
	}
	err := o.dispatch(b, false)
	if err == nil {
		return nil
	}
	// The primary transport refused synchronously; try one failover
	// before surfacing the error (the callback has not and will not
	// run for the refused attempt).
	o.mu.Lock()
	o.outstanding--
	if o.outstanding > 0 { // a hedge raced in already; let it decide
		o.mu.Unlock()
		return nil
	}
	if o.done { // a hedge raced in and already completed the op
		o.mu.Unlock()
		return nil
	}
	nb := c.pickFor(owners, o.tried)
	if nb == nil || o.attempts >= maxAttempts {
		o.settleLocked()
		return err
	}
	o.attempts++
	o.outstanding++
	o.tried = append(o.tried, nb)
	o.mu.Unlock()
	c.nFailovers.Add(1)
	if derr := o.dispatch(nb, false); derr != nil {
		o.mu.Lock()
		o.outstanding--
		if o.done || o.outstanding > 0 {
			o.mu.Unlock()
			return nil
		}
		o.settleLocked()
		return derr
	}
	return nil
}

// sendOneWay routes a fire-and-forget request: keyed writes fan out to
// every owner, everything else goes to one picked backend.
func (c *Cluster) sendOneWay(method uint16, legacy bool, payload []byte) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	c.nCalls.Add(1)
	owners, write := c.route(method, legacy, payload)
	if write && len(owners) > 1 {
		var err error
		for i, b := range owners {
			if e := b.c.SendMethodOneWay(method, payload); e != nil {
				if i > 0 {
					c.nReplicaErrs.Add(1)
				}
				if err == nil {
					err = e
				}
			}
		}
		return err
	}
	var tried []*Backend
	for attempt := 0; attempt < maxAttempts; attempt++ {
		b := c.pickFor(owners, tried)
		if b == nil {
			if attempt == 0 {
				return ErrNoBackends
			}
			break
		}
		var err error
		if legacy {
			err = b.c.SendOneWay(payload)
		} else {
			err = b.c.SendMethodOneWay(method, payload)
		}
		if err == nil {
			return nil
		}
		tried = append(tried, b)
		if attempt == maxAttempts-1 {
			return err
		}
		c.nFailovers.Add(1)
	}
	return ErrNoBackends
}

// SendAsync issues a legacy (method-less) request; cb runs exactly once
// with the winning reply or the terminal error.
func (c *Cluster) SendAsync(payload []byte, cb func(resp []byte, err error)) error {
	return c.sendAsync(0, true, payload, cb)
}

// SendMethodAsync is SendAsync with a wire method ID (v3 frame).
func (c *Cluster) SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error {
	return c.sendAsync(method, false, payload, cb)
}

// SendOneWay issues a fire-and-forget request to one backend.
func (c *Cluster) SendOneWay(payload []byte) error {
	return c.sendOneWay(0, true, payload)
}

// SendMethodOneWay is SendOneWay with a wire method ID; keyed writes
// fan out to every replica.
func (c *Cluster) SendMethodOneWay(method uint16, payload []byte) error {
	return c.sendOneWay(method, false, payload)
}

// Call issues a legacy request and blocks for the winning reply.
func (c *Cluster) Call(payload []byte) ([]byte, error) {
	return c.CallInto(payload, nil)
}

// CallInto is Call with a caller-owned reply buffer.
func (c *Cluster) CallInto(payload, buf []byte) ([]byte, error) {
	w := proto.GetWaiter(buf)
	if err := c.SendAsync(payload, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.Wait()
}

// CallMethod issues a method-routed request and blocks for the winning
// reply.
func (c *Cluster) CallMethod(method uint16, payload []byte) ([]byte, error) {
	return c.CallMethodInto(method, payload, nil)
}

// CallMethodInto is CallMethod with a caller-owned reply buffer.
func (c *Cluster) CallMethodInto(method uint16, payload, buf []byte) ([]byte, error) {
	w := proto.GetWaiter(buf)
	if err := c.SendMethodAsync(method, payload, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.Wait()
}
