package cluster

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"zygos/internal/proto"
)

// trip forces b Down with a cooldown too far out for any probe claim,
// the state a sustained dial backoff leaves behind.
func trip(b *Backend) {
	b.br.state.Store(brDown)
	b.br.retryAt.Store(nanotime() + int64(time.Hour))
}

// A synchronous dispatch refusal means the transport already knows the
// peer is unreachable, so it must trip the breaker immediately — and
// later requests must route around the backend instead of burning
// their single failover attempt rediscovering it.
func TestBreakerSyncRefusalTripsAndSkips(t *testing.T) {
	dialErr := errors.New("dial backoff")
	bad := &fakeCaller{name: "bad", err: dialErr}
	good := &fakeCaller{name: "good", autoReply: []byte("ok")}

	cl := New(Config{
		Policy:  JSQ, // ties break to the first backend: primary is deterministic
		Breaker: BreakerConfig{Cooldown: time.Hour},
	})
	cl.Add("bad", bad)
	cl.Add("good", good)
	defer cl.Close()

	// First request discovers the refusal: primary refused, breaker
	// trips, the failover serves it.
	resp, err := cl.CallMethod(1, []byte("x"))
	if err != nil || string(resp) != "ok" {
		t.Fatalf("first call: resp=%q err=%v", resp, err)
	}
	s := cl.Stats()
	if s.BreakerTrips != 1 || s.Failovers != 1 {
		t.Fatalf("after discovery: trips=%d failovers=%d, want 1/1", s.BreakerTrips, s.Failovers)
	}

	// Later requests skip the tripped backend at pick time: no more
	// failovers, no more sends into the refusing transport.
	var refusals atomic.Int32
	bad.hook = func() { refusals.Add(1) }
	for i := 0; i < 10; i++ {
		if resp, err := cl.CallMethod(1, []byte("x")); err != nil || string(resp) != "ok" {
			t.Fatalf("call %d: resp=%q err=%v", i, resp, err)
		}
	}
	s = cl.Stats()
	if s.Failovers != 1 {
		t.Fatalf("tripped backend still burns failovers: %d, want 1", s.Failovers)
	}
	if n := refusals.Load(); n != 0 {
		t.Fatalf("tripped backend received %d sends, want 0", n)
	}
	if st := cl.Backends()[0].State(); st != "down" {
		t.Fatalf("refusing backend state %q, want down", st)
	}
}

// Asynchronous transport failures trip only after Threshold consecutive
// losses: one flaky reply must not eject a backend.
func TestBreakerThresholdTrips(t *testing.T) {
	transportErr := errors.New("conn reset")
	h := &fakeCaller{name: "h"}
	cl := New(Config{
		Policy:  JSQ,
		Breaker: BreakerConfig{Threshold: 3, Cooldown: time.Hour},
	})
	b := cl.Add("h", h)
	defer cl.Close()

	for i := 1; i <= 3; i++ {
		done := make(chan error, 1)
		if err := cl.SendMethodAsync(1, []byte("x"), func(_ []byte, err error) { done <- err }); err != nil {
			t.Fatalf("send %d refused: %v", i, err)
		}
		h.fail(transportErr)
		if err := <-done; !errors.Is(err, transportErr) {
			t.Fatalf("send %d settled with %v, want transport error", i, err)
		}
		if i < 3 {
			if st := b.State(); st != "up" {
				t.Fatalf("backend tripped after %d failures (threshold 3): %q", i, st)
			}
		}
	}
	if st := b.State(); st != "down" {
		t.Fatalf("backend state %q after 3 consecutive failures, want down", st)
	}
	if s := cl.Stats(); s.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", s.BreakerTrips)
	}
}

// After the cooldown a primary request claims the Down backend as its
// half-open probe; a successful probe readmits it.
func TestBreakerProbeReadmits(t *testing.T) {
	h := &fakeCaller{name: "h", err: errors.New("dial backoff")}
	cl := New(Config{
		Policy:  JSQ,
		Breaker: BreakerConfig{Cooldown: time.Millisecond},
	})
	b := cl.Add("h", h)
	defer cl.Close()

	// Trip via sync refusal; the lone backend leaves no failover, so the
	// call surfaces the refusal.
	if _, err := cl.CallMethod(1, []byte("x")); err == nil {
		t.Fatal("call against a refusing lone backend succeeded")
	}
	if st := b.State(); st != "down" {
		t.Fatalf("state %q after refusal, want down", st)
	}

	// Peer recovers; after the cooldown the next primary pick probes it.
	h.mu.Lock()
	h.err = nil
	h.autoReply = []byte("ok")
	h.mu.Unlock()
	time.Sleep(5 * time.Millisecond)

	resp, err := cl.CallMethod(1, []byte("x"))
	if err != nil || string(resp) != "ok" {
		t.Fatalf("probe call: resp=%q err=%v", resp, err)
	}
	if st := b.State(); st != "up" {
		t.Fatalf("state %q after successful probe, want up", st)
	}
	s := cl.Stats()
	if s.BreakerProbes != 1 || s.BreakerReadmits != 1 {
		t.Fatalf("probes=%d readmits=%d, want 1/1", s.BreakerProbes, s.BreakerReadmits)
	}
}

// A failed probe re-trips immediately and re-arms the cooldown — the
// backend must not flap between Probe and eligible.
func TestBreakerFailedProbeRetrips(t *testing.T) {
	h := &fakeCaller{name: "h", err: errors.New("dial backoff")}
	cl := New(Config{
		Policy:  JSQ,
		Breaker: BreakerConfig{Cooldown: time.Millisecond},
	})
	b := cl.Add("h", h)
	defer cl.Close()

	if _, err := cl.CallMethod(1, []byte("x")); err == nil {
		t.Fatal("call against a refusing lone backend succeeded")
	}
	time.Sleep(5 * time.Millisecond)
	// Still refusing: the probe is claimed, refused, and re-trips.
	if _, err := cl.CallMethod(1, []byte("x")); err == nil {
		t.Fatal("probe against a still-refusing backend succeeded")
	}
	if st := b.State(); st != "down" {
		t.Fatalf("state %q after failed probe, want down", st)
	}
	s := cl.Stats()
	if s.BreakerProbes != 1 || s.BreakerTrips != 2 {
		t.Fatalf("probes=%d trips=%d, want 1/2", s.BreakerProbes, s.BreakerTrips)
	}
}

// Hedge (rescue) picks must skip tripped backends rather than duplicate
// a request onto a peer known to be down.
func TestHedgeSkipsTrippedBackend(t *testing.T) {
	holder := &fakeCaller{name: "holder"} // parks the primary attempt
	refuser := &fakeCaller{name: "refuser", err: errors.New("dial backoff")}
	good := &fakeCaller{name: "good", autoReply: []byte("ok")}
	var refuserSends atomic.Int32
	refuser.hook = func() { refuserSends.Add(1) }

	cl := New(Config{
		Policy:  JSQ,
		Hedge:   HedgeConfig{Enabled: true, MaxDelay: 2 * time.Millisecond},
		Breaker: BreakerConfig{Cooldown: time.Hour},
	})
	cl.Add("holder", holder)
	rb := cl.Add("refuser", refuser)
	cl.Add("good", good)
	defer cl.Close()
	trip(rb) // sustained dial backoff already tripped it

	resp, err := cl.CallMethod(1, []byte("x"))
	if err != nil || string(resp) != "ok" {
		t.Fatalf("resp=%q err=%v", resp, err)
	}
	s := cl.Stats()
	if s.Hedges != 1 || s.HedgeWins != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", s.Hedges, s.HedgeWins)
	}
	if n := refuserSends.Load(); n != 0 {
		t.Fatalf("hedge dispatched %d sends to the tripped backend, want 0", n)
	}
	holder.fail(errors.New("late teardown")) // drain the parked primary
}

// Remove drops a member: the view shrinks, the ring rebuilds, and
// keyed traffic keeps routing over the survivors.
func TestClusterRemove(t *testing.T) {
	cl := New(Config{
		Policy:   JSQ,
		Replicas: 2,
		KeyFunc: func(method uint16, payload []byte) ([]byte, bool, bool) {
			return payload, false, true
		},
	})
	for _, n := range []string{"a", "b", "c"} {
		cl.Add(n, &fakeCaller{name: n, autoReply: []byte(n)})
	}
	defer cl.Close()

	if rb := cl.Remove("b"); rb == nil || rb.name != "b" {
		t.Fatalf("Remove(b) = %v", rb)
	}
	if rb := cl.Remove("nope"); rb != nil {
		t.Fatalf("Remove of an absent member returned %v", rb)
	}
	if bs := cl.Backends(); len(bs) != 2 {
		t.Fatalf("Backends() has %d members after Remove, want 2", len(bs))
	}
	mv := cl.view.Load().(*membership)
	owners := mv.ring.owners([]byte("key"), 2, mv.bs)
	if len(owners) != 2 {
		t.Fatalf("ring yields %d owners over 2 survivors, want 2", len(owners))
	}
	for _, o := range owners {
		if o.name == "b" {
			t.Fatal("removed backend still owns keys on the ring")
		}
	}
	resp, err := cl.CallMethod(5, []byte("key"))
	if err != nil || (string(resp) != "a" && string(resp) != "c") {
		t.Fatalf("keyed call after Remove: resp=%q err=%v", resp, err)
	}
}

// Close must settle an op whose hedge timer is still armed: the
// callback fires promptly with ErrClusterClosed and the cancelled timer
// never hedges into the dead cluster.
func TestCloseSettlesArmedHedge(t *testing.T) {
	holder := &fakeCaller{name: "holder"}
	cl := New(Config{
		Policy: JSQ,
		Hedge:  HedgeConfig{Enabled: true, MaxDelay: time.Hour}, // armed, never fires
	})
	cl.Add("holder", holder)

	var fires atomic.Int32
	done := make(chan error, 1)
	if err := cl.SendMethodAsync(1, []byte("x"), func(_ []byte, err error) {
		fires.Add(1)
		done <- err
	}); err != nil {
		t.Fatalf("SendMethodAsync: %v", err)
	}

	cl.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClusterClosed) {
			t.Fatalf("op settled with %v, want ErrClusterClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close left the op hanging behind its armed hedge timer")
	}

	time.Sleep(10 * time.Millisecond)
	if n := fires.Load(); n != 1 {
		t.Fatalf("callback fired %d times, want exactly 1", n)
	}
	if s := cl.Stats(); s.Hedges != 0 {
		t.Fatalf("hedge fired after Close: Hedges = %d, want 0", s.Hedges)
	}
	if err := cl.SendMethodAsync(1, []byte("x"), func([]byte, error) {}); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("send after Close returned %v, want ErrClusterClosed", err)
	}
	holder.fail(errors.New("late teardown")) // the late verdict must be a no-op
	time.Sleep(time.Millisecond)
	if n := fires.Load(); n != 1 {
		t.Fatalf("late transport verdict re-fired the callback: %d fires", n)
	}
}

// A call against a backend that swallows the request must return within
// its deadline budget, and the late verdict must be discarded.
func TestCallDeadlineExpires(t *testing.T) {
	blackhole := &fakeCaller{name: "blackhole"} // parks every send forever
	cl := New(Config{
		Policy:      JSQ,
		CallTimeout: 30 * time.Millisecond,
	})
	cl.Add("blackhole", blackhole)
	defer cl.Close()

	start := time.Now()
	_, err := cl.CallMethod(1, []byte("x"))
	if !errors.Is(err, proto.ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("deadline took %v to fire", el)
	}
	if s := cl.Stats(); s.DeadlinesExpired != 1 {
		t.Fatalf("DeadlinesExpired = %d, want 1", s.DeadlinesExpired)
	}

	// Per-call override beats the config default.
	start = time.Now()
	if _, err := cl.CallMethodTimeout(1, []byte("x"), 5*time.Millisecond); !errors.Is(err, proto.ErrCallTimeout) {
		t.Fatalf("override err = %v, want ErrCallTimeout", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("override deadline took %v", el)
	}
	blackhole.fail(errors.New("late teardown")) // late verdicts into settled ops
	if s := cl.Stats(); s.DeadlinesExpired != 2 {
		t.Fatalf("DeadlinesExpired = %d, want 2", s.DeadlinesExpired)
	}
}

// effTimeout resolves the per-call override against the configured
// default: positive wins, zero inherits, negative disables.
func TestEffTimeout(t *testing.T) {
	cl := New(Config{CallTimeout: 7 * time.Second})
	defer cl.Close()
	if got := cl.effTimeout(time.Second); got != time.Second {
		t.Fatalf("effTimeout(1s) = %v", got)
	}
	if got := cl.effTimeout(0); got != 7*time.Second {
		t.Fatalf("effTimeout(0) = %v, want config default", got)
	}
	if got := cl.effTimeout(-1); got != 0 {
		t.Fatalf("effTimeout(-1) = %v, want 0 (disabled)", got)
	}
}

// When every ring owner is Down, a keyed read escapes to a healthy
// non-owner — unless NoReadFallback pins it to the owner set.
func TestKeyedReadFallback(t *testing.T) {
	keyed := func(method uint16, payload []byte) ([]byte, bool, bool) {
		return payload, false, true
	}
	build := func(noFallback bool) (*Cluster, *Backend, *Backend) {
		cl := New(Config{
			Policy:         JSQ,
			Replicas:       1,
			KeyFunc:        keyed,
			NoReadFallback: noFallback,
			Breaker:        BreakerConfig{Cooldown: time.Hour},
		})
		cl.Add("a", &fakeCaller{name: "a", autoReply: []byte("a")})
		cl.Add("b", &fakeCaller{name: "b", autoReply: []byte("b")})
		mv := cl.view.Load().(*membership)
		owner := mv.ring.owners([]byte("key"), 1, mv.bs)[0]
		other := mv.bs[0]
		if other == owner {
			other = mv.bs[1]
		}
		return cl, owner, other
	}

	cl, owner, other := build(false)
	trip(owner)
	resp, err := cl.CallMethod(5, []byte("key"))
	if err != nil || string(resp) != other.name {
		t.Fatalf("fallback read: resp=%q err=%v, want %q", resp, err, other.name)
	}
	if s := cl.Stats(); s.ReadFallbacks != 1 {
		t.Fatalf("ReadFallbacks = %d, want 1", s.ReadFallbacks)
	}
	cl.Close()

	// NoReadFallback: the read stays on the owner set even when it is
	// Down — the health-blind last resort doubles as an early probe.
	cl, owner, _ = build(true)
	trip(owner)
	resp, err = cl.CallMethod(5, []byte("key"))
	if err != nil || string(resp) != owner.name {
		t.Fatalf("pinned read: resp=%q err=%v, want owner %q", resp, err, owner.name)
	}
	if s := cl.Stats(); s.ReadFallbacks != 0 {
		t.Fatalf("NoReadFallback still counted %d fallbacks", s.ReadFallbacks)
	}
	cl.Close()
}

// Keyed writes never fall back off the ring: a write landing on a
// non-owner is silent data misplacement.
func TestKeyedWriteNeverFallsBack(t *testing.T) {
	cl := New(Config{
		Policy:   JSQ,
		Replicas: 1,
		KeyFunc: func(method uint16, payload []byte) ([]byte, bool, bool) {
			return payload, true, true
		},
		Breaker: BreakerConfig{Cooldown: time.Hour},
	})
	cl.Add("a", &fakeCaller{name: "a", autoReply: []byte("a")})
	cl.Add("b", &fakeCaller{name: "b", autoReply: []byte("b")})
	defer cl.Close()
	mv := cl.view.Load().(*membership)
	owner := mv.ring.owners([]byte("key"), 1, mv.bs)[0]
	trip(owner)

	resp, err := cl.CallMethod(5, []byte("key"))
	if err != nil || string(resp) != owner.name {
		t.Fatalf("write resp=%q err=%v, want owner %q (never off-ring)", resp, err, owner.name)
	}
	if s := cl.Stats(); s.ReadFallbacks != 0 {
		t.Fatalf("write counted %d read fallbacks", s.ReadFallbacks)
	}
}
