package cluster

import (
	"sync/atomic"
	"time"
)

// Breaker states. A backend starts Up (the zero value, so Backends
// constructed anywhere are healthy by default). Consecutive transport
// failures — or a single synchronous dispatch refusal, which means the
// transport already knows the peer is unreachable (dial backoff, closed
// manager) — trip it Down. Down backends are excluded from balancer,
// hedge, failover, and replica picks. After Cooldown one primary request
// claims the backend as its half-open Probe; the probe's outcome either
// readmits the backend or re-arms the cooldown.
const (
	brUp int32 = iota
	brDown
	brProbe
)

// breaker is the per-backend circuit state. All fields are atomics:
// health decisions ride the data path (every pick, every completion), so
// they must not contend on a lock.
type breaker struct {
	state atomic.Int32
	// fails counts consecutive transport failures since the last success.
	fails atomic.Int32
	// retryAt is the nanotime after which a Down backend may be probed.
	retryAt atomic.Int64
	// probeAt is when the current half-open probe was claimed, so a probe
	// lost to a blackholed peer cannot wedge the backend in Probe forever.
	probeAt atomic.Int64
}

// BreakerConfig parameterizes the per-backend circuit breaker. The zero
// value enables it with defaults; set Disabled to opt out.
type BreakerConfig struct {
	// Disabled turns the breaker off: every backend is always eligible.
	Disabled bool
	// Threshold is the consecutive transport-failure count that trips a
	// backend Down; defaults to 5. Synchronous dispatch refusals trip
	// immediately regardless.
	Threshold int
	// Cooldown is how long a tripped backend stays Down before a probe
	// may be claimed; defaults to 50ms.
	Cooldown time.Duration
	// ProbeTimeout bounds how long a claimed probe may stay unresolved
	// (e.g. lost to a blackholed peer) before another request may
	// re-probe; defaults to 1s.
	ProbeTimeout time.Duration
}

const (
	defaultBrThreshold    = 5
	defaultBrCooldown     = 50 * time.Millisecond
	defaultBrProbeTimeout = time.Second
)

// brUnhealthy is the balancer skip predicate: only Up backends take
// normally-routed traffic (a Probe backend serves exactly its claimed
// probe request).
func brUnhealthy(b *Backend) bool { return b.br.state.Load() != brUp }

// State names the backend's breaker state for stats and logs.
func (b *Backend) State() string {
	switch b.br.state.Load() {
	case brDown:
		return "down"
	case brProbe:
		return "probe"
	default:
		return "up"
	}
}

// tryClaimProbe attempts to claim b for a half-open probe: a Down
// backend past its cooldown, or a Probe backend whose outstanding probe
// went stale. The CAS guarantees one claimant per window.
func (c *Cluster) tryClaimProbe(b *Backend, now int64) bool {
	switch b.br.state.Load() {
	case brDown:
		if now >= b.br.retryAt.Load() && b.br.state.CompareAndSwap(brDown, brProbe) {
			b.br.probeAt.Store(now)
			c.nBrProbes.Add(1)
			return true
		}
	case brProbe:
		at := b.br.probeAt.Load()
		if now-at > int64(c.cfg.Breaker.ProbeTimeout) && b.br.probeAt.CompareAndSwap(at, now) {
			c.nBrProbes.Add(1)
			return true
		}
	}
	return false
}

// noteBackendFailure records a transport-level failure against b's
// breaker. refused marks a synchronous dispatch refusal — the transport
// already knows the peer is unreachable (ErrDialBackoff, closed
// manager) — which trips immediately instead of burning Threshold
// requests on a known-dead backend. A failed probe also re-trips
// immediately.
func (c *Cluster) noteBackendFailure(b *Backend, refused bool) {
	if c.cfg.Breaker.Disabled {
		return
	}
	f := b.br.fails.Add(1)
	st := b.br.state.Load()
	if refused || st == brProbe || int(f) >= c.cfg.Breaker.Threshold {
		b.br.retryAt.Store(nanotime() + int64(c.cfg.Breaker.Cooldown))
		if b.br.state.Swap(brDown) != brDown {
			c.nBrTrips.Add(1)
		}
	}
}

// noteBackendSuccess records a final reply from b: the failure streak
// resets and a Down/Probe backend is readmitted. An application-level
// StatusError counts — the transport works; the verdict is the app's.
func (c *Cluster) noteBackendSuccess(b *Backend) {
	if c.cfg.Breaker.Disabled {
		return
	}
	if b.br.fails.Load() != 0 {
		b.br.fails.Store(0)
	}
	if b.br.state.Load() != brUp && b.br.state.Swap(brUp) != brUp {
		c.nBrReadmits.Add(1)
	}
}
