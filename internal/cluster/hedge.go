package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// hedgeWindow is the per-route latency reservoir size: big enough that
// the P99 estimate has a tail sample or two, small enough that the
// deadline adapts within a couple hundred requests of a load shift.
const hedgeWindow = 128

// recomputeEvery bounds how often the P99 is re-derived from the
// window: sorting 128 samples every record would dominate the hot
// path, every 32 records it is noise.
const recomputeEvery = 32

// minSamples is how much history a route needs before the adaptive
// deadline replaces the conservative MaxDelay default.
const minSamples = 8

// tracker maintains one route's adaptive hedge deadline: a ring of
// recent winning-attempt latencies whose clamped P99 is cached in an
// atomic for lock-free reads on the send path.
type tracker struct {
	mu     sync.Mutex
	window [hedgeWindow]int64
	n      int // samples stored (≤ hedgeWindow)
	idx    int // next write position
	since  int // records since the last recompute

	cached atomic.Int64 // current deadline, ns; 0 = no history yet
}

// trackerKey identifies one route's latency window. Legacy
// (method-less v2) traffic gets its own bit above the 16-bit method
// space: it shares the wire method value 0 with routed method-0 calls
// but can have an unrelated latency profile, and folding the two into
// one window would skew both adaptive deadlines.
func trackerKey(method uint16, legacy bool) uint32 {
	k := uint32(method)
	if legacy {
		k |= 1 << 16
	}
	return k
}

// trackerFor returns the route's tracker, creating it on first use.
func (c *Cluster) trackerFor(method uint16, legacy bool) *tracker {
	key := trackerKey(method, legacy)
	if t, ok := c.trackers.Load(key); ok {
		return t.(*tracker)
	}
	t, _ := c.trackers.LoadOrStore(key, &tracker{})
	return t.(*tracker)
}

// record folds one winning attempt's latency into the window and
// periodically refreshes the cached deadline.
func (t *tracker) record(d time.Duration, cfg HedgeConfig) {
	ns := d.Nanoseconds()
	t.mu.Lock()
	t.window[t.idx] = ns
	t.idx = (t.idx + 1) % hedgeWindow
	if t.n < hedgeWindow {
		t.n++
	}
	t.since++
	if t.since >= recomputeEvery || (t.cached.Load() == 0 && t.n >= minSamples) {
		t.since = 0
		t.recomputeLocked(cfg)
	}
	t.mu.Unlock()
}

// recomputeLocked re-derives the cached deadline: the window's P99,
// clamped to [MinDelay, MaxDelay]. Caller holds t.mu.
func (t *tracker) recomputeLocked(cfg HedgeConfig) {
	if t.n < minSamples {
		return
	}
	scratch := make([]int64, t.n)
	copy(scratch, t.window[:t.n])
	sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
	rank := (99*t.n + 99) / 100 // ceil(0.99 * n)
	if rank > t.n {
		rank = t.n
	}
	p99 := scratch[rank-1]
	if min := cfg.MinDelay.Nanoseconds(); p99 < min {
		p99 = min
	}
	if max := cfg.MaxDelay.Nanoseconds(); p99 > max {
		p99 = max
	}
	t.cached.Store(p99)
}

// delay returns the route's current hedge deadline: the cached adaptive
// P99, or MaxDelay while the route has no history (hedge conservatively
// until the latency profile is known).
func (t *tracker) delay(cfg HedgeConfig) time.Duration {
	if d := t.cached.Load(); d > 0 {
		return time.Duration(d)
	}
	return cfg.MaxDelay
}
