package dist

import (
	"fmt"
	"math/rand"
)

// Bimodal is a two-point distribution: V1 with probability P1, else V2.
// The paper's Figure 2 uses two calibrated instances (NewBimodal1,
// NewBimodal2) to show how tail latency degrades with dispersion.
type Bimodal struct {
	V1, V2 int64
	P1     float64
	name   string
}

// NewBimodal returns a two-point distribution taking v1 with probability
// p1 and v2 otherwise. It panics if p1 is outside [0, 1].
func NewBimodal(v1, v2 int64, p1 float64) Bimodal {
	if p1 < 0 || p1 > 1 {
		panic(fmt.Sprintf("dist: bimodal p1 %v outside [0, 1]", p1))
	}
	return Bimodal{V1: v1, V2: v2, P1: p1, name: "bimodal"}
}

// NewBimodal1 returns the paper's Bimodal-1 service-time distribution for
// target mean S̄: 90% of tasks take ½·S̄ and 10% take 5.5·S̄ (CV² ≈ 2.25).
func NewBimodal1(mean int64) Bimodal {
	b := NewBimodal(mean/2, 11*mean/2, 0.9)
	b.name = "bimodal-1"
	return b
}

// NewBimodal2 returns the paper's Bimodal-2 distribution for target mean
// S̄: 99.9% of tasks take ½·S̄ and 0.1% take 500·S̄ — the very-high
// dispersion case (CV² ≈ 250) where processor sharing beats FCFS.
func NewBimodal2(mean int64) Bimodal {
	b := NewBimodal(mean/2, 500*mean, 0.999)
	b.name = "bimodal-2"
	return b
}

// Sample implements Dist.
func (b Bimodal) Sample(rng *rand.Rand) int64 {
	if rng.Float64() < b.P1 {
		return b.V1
	}
	return b.V2
}

// Mean implements Dist.
func (b Bimodal) Mean() float64 {
	return b.P1*float64(b.V1) + (1-b.P1)*float64(b.V2)
}

// Name implements Dist.
func (b Bimodal) Name() string {
	if b.name == "" {
		return "bimodal"
	}
	return b.name
}

// SecondMoment implements Moments: E[X²] = p1·v1² + (1−p1)·v2².
func (b Bimodal) SecondMoment() float64 {
	return b.P1*float64(b.V1)*float64(b.V1) + (1-b.P1)*float64(b.V2)*float64(b.V2)
}

// CDF returns P(X ≤ x) for the two-point distribution.
func (b Bimodal) CDF(x float64) float64 {
	lo, hi := float64(b.V1), float64(b.V2)
	pLo := b.P1
	if lo > hi {
		lo, hi = hi, lo
		pLo = 1 - b.P1
	}
	switch {
	case x < lo:
		return 0
	case x < hi:
		return pLo
	default:
		return 1
	}
}

// Quantile returns the p-quantile (the lower mode for p up to its mass,
// the higher mode beyond).
func (b Bimodal) Quantile(p float64) float64 {
	lo, hi := float64(b.V1), float64(b.V2)
	pLo := b.P1
	if lo > hi {
		lo, hi = hi, lo
		pLo = 1 - b.P1
	}
	if p <= pLo {
		return lo
	}
	return hi
}
