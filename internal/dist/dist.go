// Package dist provides the random-variate distributions that drive every
// simulation and load generator in this repository: service-time models
// (deterministic, exponential, the paper's two bimodals, lognormal,
// mixtures), the generalized-Pareto value-size model of the Facebook ETC
// trace, and Poisson inter-arrival gaps.
//
// Service-time distributions implement Dist and sample in integer
// nanoseconds. The paper's tail-latency results (§2.3, Figure 2) are a
// function of service-time dispersion, so each distribution also exposes
// its analytic second moment and squared coefficient of variation
// (CV² = Var/Mean²), which the M/G/1 bounds in internal/queueing consume,
// plus CDF/quantile helpers where a closed form exists.
//
// All sampling is driven by an explicit *rand.Rand so simulations remain
// a pure function of their seed.
package dist

import (
	"math"
	"math/rand"
)

// Dist is a non-negative random variate measured in nanoseconds.
type Dist interface {
	// Sample draws one variate using rng.
	Sample(rng *rand.Rand) int64
	// Mean returns the analytic mean in nanoseconds.
	Mean() float64
	// Name identifies the distribution (e.g. in figure titles).
	Name() string
}

// Moments is implemented by distributions with an analytic second moment.
type Moments interface {
	// SecondMoment returns E[X²] in ns².
	SecondMoment() float64
}

// SecondMoment returns E[X²] for d, or NaN if d does not expose one.
func SecondMoment(d Dist) float64 {
	if m, ok := d.(Moments); ok {
		return m.SecondMoment()
	}
	return math.NaN()
}

// CV2 returns the squared coefficient of variation Var(X)/E[X]², the
// dispersion measure the paper's model comparison is organized around
// (CV²=0 deterministic, 1 exponential, ≫1 heavy-tailed), or NaN if d has
// no analytic second moment.
func CV2(d Dist) float64 {
	m2 := SecondMoment(d)
	mean := d.Mean()
	if math.IsNaN(m2) || mean <= 0 {
		return math.NaN()
	}
	return m2/(mean*mean) - 1
}

// Deterministic is a point mass: every task takes exactly V nanoseconds.
type Deterministic struct {
	V int64
}

// Sample implements Dist.
func (d Deterministic) Sample(rng *rand.Rand) int64 { return d.V }

// Mean implements Dist.
func (d Deterministic) Mean() float64 { return float64(d.V) }

// Name implements Dist.
func (d Deterministic) Name() string { return "deterministic" }

// SecondMoment implements Moments: E[X²] = V².
func (d Deterministic) SecondMoment() float64 { return float64(d.V) * float64(d.V) }

// CDF returns P(X ≤ x).
func (d Deterministic) CDF(x float64) float64 {
	if x < float64(d.V) {
		return 0
	}
	return 1
}

// Quantile returns the p-quantile, which is V for every p in (0, 1].
func (d Deterministic) Quantile(p float64) float64 { return float64(d.V) }

// Exponential is the memoryless distribution with mean MeanNS (CV² = 1).
type Exponential struct {
	MeanNS float64
}

// Sample implements Dist.
func (e Exponential) Sample(rng *rand.Rand) int64 {
	return int64(rng.ExpFloat64() * e.MeanNS)
}

// Mean implements Dist.
func (e Exponential) Mean() float64 { return e.MeanNS }

// Name implements Dist.
func (e Exponential) Name() string { return "exponential" }

// SecondMoment implements Moments: E[X²] = 2·mean².
func (e Exponential) SecondMoment() float64 { return 2 * e.MeanNS * e.MeanNS }

// CDF returns P(X ≤ x) = 1 − e^(−x/mean).
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-x/e.MeanNS)
}

// Quantile returns the p-quantile −mean·ln(1−p).
func (e Exponential) Quantile(p float64) float64 {
	return -e.MeanNS * math.Log1p(-p)
}
