package dist

import (
	"math"
	"math/rand"
)

// GeneralizedPareto is the three-parameter GPD(μ, σ, ξ), sampled by CDF
// inversion. mutilate uses it for the value sizes of the Facebook ETC
// trace (Atikoglu et al.): μ=15, σ=214.476, ξ=0.348238 — which is how
// internal/mutilate consumes it, with samples interpreted as bytes.
type GeneralizedPareto struct {
	MuLoc float64 // location μ
	Scale float64 // scale σ > 0
	Shape float64 // shape ξ (ξ < 1 for a finite mean)
}

// Sample implements Dist: μ + σ·((1−U)^(−ξ) − 1)/ξ, degenerating to the
// shifted exponential μ − σ·ln(1−U) at ξ = 0.
func (g GeneralizedPareto) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	if g.Shape == 0 {
		return int64(g.MuLoc - g.Scale*math.Log1p(-u))
	}
	return int64(g.MuLoc + g.Scale*(math.Pow(1-u, -g.Shape)-1)/g.Shape)
}

// Mean implements Dist: μ + σ/(1−ξ) for ξ < 1, +Inf otherwise.
func (g GeneralizedPareto) Mean() float64 {
	if g.Shape >= 1 {
		return math.Inf(1)
	}
	return g.MuLoc + g.Scale/(1-g.Shape)
}

// Name implements Dist.
func (g GeneralizedPareto) Name() string { return "generalized-pareto" }

// SecondMoment implements Moments; it is +Inf for ξ ≥ ½.
func (g GeneralizedPareto) SecondMoment() float64 {
	if g.Shape >= 0.5 {
		return math.Inf(1)
	}
	mean := g.Mean()
	variance := g.Scale * g.Scale / ((1 - g.Shape) * (1 - g.Shape) * (1 - 2*g.Shape))
	return variance + mean*mean
}

// CDF returns P(X ≤ x).
func (g GeneralizedPareto) CDF(x float64) float64 {
	z := (x - g.MuLoc) / g.Scale
	if z <= 0 {
		return 0
	}
	if g.Shape == 0 {
		return 1 - math.Exp(-z)
	}
	if g.Shape < 0 && z >= -1/g.Shape {
		return 1
	}
	return 1 - math.Pow(1+g.Shape*z, -1/g.Shape)
}

// Quantile returns the p-quantile μ + σ·((1−p)^(−ξ) − 1)/ξ.
func (g GeneralizedPareto) Quantile(p float64) float64 {
	if g.Shape == 0 {
		return g.MuLoc - g.Scale*math.Log1p(-p)
	}
	return g.MuLoc + g.Scale*(math.Pow(1-p, -g.Shape)-1)/g.Shape
}
