package dist

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultLognormalSigma is the underlying-normal sigma used when a
// lognormal is requested by name with only a mean (CV² = e^σ² − 1 ≈ 0.28,
// between deterministic and exponential dispersion).
const DefaultLognormalSigma = 0.5

// registry maps the CLI-facing distribution names to constructors taking
// the target mean in nanoseconds.
var registry = map[string]func(meanNS int64) Dist{
	"deterministic": func(meanNS int64) Dist { return Deterministic{V: meanNS} },
	"exponential":   func(meanNS int64) Dist { return Exponential{MeanNS: float64(meanNS)} },
	"bimodal-1":     func(meanNS int64) Dist { return NewBimodal1(meanNS) },
	"bimodal-2":     func(meanNS int64) Dist { return NewBimodal2(meanNS) },
	"lognormal":     func(meanNS int64) Dist { return NewLognormalMean(float64(meanNS), DefaultLognormalSigma) },
}

// Names returns the registered distribution names, sorted, for CLI help
// and error messages.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ByName builds the named service-time distribution with the given target
// mean in nanoseconds. Unknown names yield an error listing the valid
// ones.
func ByName(name string, meanNS int64) (Dist, error) {
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("dist: unknown distribution %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
	if meanNS <= 0 {
		return nil, fmt.Errorf("dist: %s mean %dns must be positive", name, meanNS)
	}
	return mk(meanNS), nil
}
