package dist

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

const us = int64(1000)

// sampleStats draws n variates and returns their empirical mean and
// second moment.
func sampleStats(t *testing.T, d Dist, seed int64, n int) (mean, m2 float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := float64(d.Sample(rng))
		if x < 0 {
			t.Fatalf("%s: negative sample %v", d.Name(), x)
		}
		sum += x
		sumSq += x * x
	}
	return sum / float64(n), sumSq / float64(n)
}

// testDists enumerates one calibrated instance of every distribution,
// with a sample count large enough that the seeded empirical mean lands
// within 2% of the analytic mean (bimodal-2's rare 500·S̄ mode needs the
// biggest sample).
func testDists() []struct {
	d Dist
	n int
} {
	mix, err := NewMixture("test-mix",
		[]Dist{Exponential{MeanNS: 10000}, Deterministic{V: 50000}},
		[]float64{0.75, 0.25})
	if err != nil {
		panic(err)
	}
	return []struct {
		d Dist
		n int
	}{
		{Deterministic{V: 10 * us}, 1000},
		{Exponential{MeanNS: float64(10 * us)}, 400000},
		{NewBimodal(5*us, 55*us, 0.5), 400000},
		{NewBimodal1(10 * us), 400000},
		{NewBimodal2(10 * us), 4000000},
		{NewLognormalMean(33000, 0.55), 400000},
		{GeneralizedPareto{MuLoc: 15, Scale: 214.476, Shape: 0.348238}, 1000000},
		{mix, 400000},
	}
}

func TestSampledMeanMatchesAnalytic(t *testing.T) {
	for _, tc := range testDists() {
		mean, _ := sampleStats(t, tc.d, 42, tc.n)
		want := tc.d.Mean()
		if rel := math.Abs(mean-want) / want; rel > 0.02 {
			t.Errorf("%s: sampled mean %v vs analytic %v (%.1f%% off)",
				tc.d.Name(), mean, want, rel*100)
		}
	}
}

func TestSampledSecondMomentMatchesAnalytic(t *testing.T) {
	for _, tc := range testDists() {
		want := SecondMoment(tc.d)
		if math.IsNaN(want) || math.IsInf(want, 0) {
			t.Errorf("%s: second moment should be finite, got %v", tc.d.Name(), want)
			continue
		}
		_, m2 := sampleStats(t, tc.d, 43, tc.n)
		// Second moments converge slower than means; 10% is comfortable
		// at these sample sizes for every instance above.
		if rel := math.Abs(m2-want) / want; rel > 0.10 {
			t.Errorf("%s: sampled E[X²] %v vs analytic %v (%.1f%% off)",
				tc.d.Name(), m2, want, rel*100)
		}
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	for _, tc := range testDists() {
		a := rand.New(rand.NewSource(7))
		b := rand.New(rand.NewSource(7))
		for i := 0; i < 1000; i++ {
			if x, y := tc.d.Sample(a), tc.d.Sample(b); x != y {
				t.Fatalf("%s: same-seed draw %d diverged: %d vs %d", tc.d.Name(), i, x, y)
			}
		}
	}
}

func TestCV2(t *testing.T) {
	cases := []struct {
		d    Dist
		want float64
		tol  float64
	}{
		{Deterministic{V: 10 * us}, 0, 1e-12},
		{Exponential{MeanNS: float64(10 * us)}, 1, 1e-12},
		// Bimodal-1: E[X]=S̄, E[X²]=0.9·0.25+0.1·30.25 = 3.25·S̄².
		{NewBimodal1(10 * us), 2.25, 1e-12},
		// Lognormal: CV² = e^σ² − 1.
		{NewLognormalMean(10000, 0.5), math.Exp(0.25) - 1, 1e-12},
	}
	for _, tc := range cases {
		if got := CV2(tc.d); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%s: CV² = %v, want %v", tc.d.Name(), got, tc.want)
		}
	}
	// Bimodal-2 is the paper's very-high-dispersion case: CV² ≈ 250.
	if got := CV2(NewBimodal2(10 * us)); got < 200 || got > 300 {
		t.Errorf("bimodal-2 CV² = %v, want ≈250", got)
	}
}

func TestBimodalModeProbabilities(t *testing.T) {
	b := NewBimodal1(10 * us)
	rng := rand.New(rand.NewSource(11))
	n := 200000
	var low, high int
	for i := 0; i < n; i++ {
		switch b.Sample(rng) {
		case b.V1:
			low++
		case b.V2:
			high++
		default:
			t.Fatal("bimodal sample outside its two modes")
		}
	}
	if p := float64(low) / float64(n); math.Abs(p-0.9) > 0.005 {
		t.Errorf("low-mode fraction %v, want 0.9", p)
	}
	if low+high != n {
		t.Error("samples must split across exactly the two modes")
	}
}

func TestBimodalPresetModes(t *testing.T) {
	b1 := NewBimodal1(10 * us)
	if b1.V1 != 5*us || b1.V2 != 55*us || b1.P1 != 0.9 {
		t.Errorf("bimodal-1 = %+v, want ½S̄/5.5S̄ at 90/10", b1)
	}
	b2 := NewBimodal2(10 * us)
	if b2.V1 != 5*us || b2.V2 != 5000*us || b2.P1 != 0.999 {
		t.Errorf("bimodal-2 = %+v, want ½S̄/500S̄ at 99.9/0.1", b2)
	}
	// Figure 2's low-load anchor: bimodal-2's p99 is the low mode.
	if q := b2.Quantile(0.99); q != float64(5*us) {
		t.Errorf("bimodal-2 p99 = %v, want the ½S̄ mode", q)
	}
	if q := b1.Quantile(0.99); q != float64(55*us) {
		t.Errorf("bimodal-1 p99 = %v, want the 5.5S̄ mode", q)
	}
}

func TestNewBimodalValidatesP1(t *testing.T) {
	for _, p1 := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBimodal with p1=%v must panic", p1)
				}
			}()
			NewBimodal(1, 2, p1)
		}()
	}
}

func TestPoissonGapMean(t *testing.T) {
	for _, rate := range []float64{1000, 50000, 2e6} {
		p := PoissonArrivals{RatePerSec: rate}
		want := 1e9 / rate
		if got := p.MeanGap(); got != want {
			t.Errorf("rate %v: MeanGap %v, want %v", rate, got, want)
		}
		rng := rand.New(rand.NewSource(3))
		n := 400000
		var sum float64
		for i := 0; i < n; i++ {
			g := p.NextGap(rng)
			if g < 0 {
				t.Fatal("negative gap")
			}
			sum += float64(g)
		}
		if got := sum / float64(n); math.Abs(got-want)/want > 0.02 {
			t.Errorf("rate %v: sampled mean gap %v, want %v", rate, got, want)
		}
	}
}

func TestPoissonGapRequiresPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-rate NextGap must panic")
		}
	}()
	PoissonArrivals{}.NextGap(rand.New(rand.NewSource(1)))
}

func TestLognormalMeanParameterization(t *testing.T) {
	l := NewLognormalMean(33000, 0.55)
	if math.Abs(l.Mean()-33000) > 1e-6 {
		t.Errorf("Mean %v, want exactly 33000", l.Mean())
	}
	wantMedian := 33000 * math.Exp(-0.55*0.55/2)
	if math.Abs(l.Median()-wantMedian) > 1e-6 {
		t.Errorf("Median %v, want %v", l.Median(), wantMedian)
	}
	if math.Abs(l.Quantile(0.5)-wantMedian) > 1e-6 {
		t.Errorf("Quantile(0.5) %v, want the median %v", l.Quantile(0.5), wantMedian)
	}
}

func TestCDFQuantileRoundTrip(t *testing.T) {
	type cq interface {
		CDF(x float64) float64
		Quantile(p float64) float64
	}
	dists := []Dist{
		Exponential{MeanNS: float64(10 * us)},
		NewLognormalMean(33000, 0.55),
		GeneralizedPareto{MuLoc: 15, Scale: 214.476, Shape: 0.348238},
	}
	for _, d := range dists {
		c, ok := d.(cq)
		if !ok {
			t.Fatalf("%s lacks CDF/Quantile", d.Name())
		}
		for _, p := range []float64{0.01, 0.5, 0.9, 0.99, 0.999} {
			x := c.Quantile(p)
			if got := c.CDF(x); math.Abs(got-p) > 1e-9 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v", d.Name(), p, got)
			}
		}
	}
	// Exponential p99 closed form: −mean·ln(0.01).
	e := Exponential{MeanNS: 1000}
	if got, want := e.Quantile(0.99), -1000*math.Log(0.01); math.Abs(got-want) > 1e-9 {
		t.Errorf("exponential p99 %v, want %v", got, want)
	}
}

func TestGeneralizedParetoETCShape(t *testing.T) {
	// mutilate's Facebook ETC value-size parameters: mean ≈ 344 bytes.
	g := GeneralizedPareto{MuLoc: 15, Scale: 214.476, Shape: 0.348238}
	if m := g.Mean(); math.Abs(m-(15+214.476/(1-0.348238))) > 1e-9 {
		t.Errorf("ETC mean %v", m)
	}
	if g.CDF(15) != 0 {
		t.Error("CDF at the location must be 0")
	}
	if inf := (GeneralizedPareto{Scale: 1, Shape: 1}).Mean(); !math.IsInf(inf, 1) {
		t.Error("shape ≥ 1 must have infinite mean")
	}
	if inf := (GeneralizedPareto{Scale: 1, Shape: 0.6}).SecondMoment(); !math.IsInf(inf, 1) {
		t.Error("shape ≥ ½ must have infinite second moment")
	}
	// ξ=0 degenerates to a shifted exponential.
	z := GeneralizedPareto{MuLoc: 10, Scale: 100, Shape: 0}
	if got, want := z.Quantile(0.5), 10-100*math.Log(0.5); math.Abs(got-want) > 1e-9 {
		t.Errorf("ξ=0 median %v, want %v", got, want)
	}
}

func TestMixtureValidation(t *testing.T) {
	ds := []Dist{Exponential{MeanNS: 1000}, Deterministic{V: 5000}}
	cases := []struct {
		name string
		ds   []Dist
		ws   []float64
	}{
		{"empty", nil, nil},
		{"length mismatch", ds, []float64{1}},
		{"negative weight", ds, []float64{1.5, -0.5}},
		{"sum below 1", ds, []float64{0.5, 0.4}},
		{"sum above 1", ds, []float64{30, 1}},
	}
	for _, tc := range cases {
		if _, err := NewMixture("bad", tc.ds, tc.ws); err == nil {
			t.Errorf("%s: NewMixture must reject", tc.name)
		}
	}
	m, err := NewMixture("ok", ds, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.25*1000 + 0.75*5000; math.Abs(m.Mean()-want) > 1e-9 {
		t.Errorf("mixture mean %v, want %v", m.Mean(), want)
	}
	if want := 0.25*2e6 + 0.75*25e6; math.Abs(m.SecondMoment()-want) > 1e-9 {
		t.Errorf("mixture E[X²] %v, want %v", m.SecondMoment(), want)
	}
	if m.Components() != 2 || m.Name() != "ok" {
		t.Error("mixture metadata")
	}
}

func TestByNameRoundTrip(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no registered names")
	}
	for _, name := range names {
		d, err := ByName(name, 10*us)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if d.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, d.Name())
		}
		// Every registered constructor targets the requested mean;
		// bimodal-2's modes make it 0.9995·S̄ by construction.
		wantMean := float64(10 * us)
		if name == "bimodal-2" {
			wantMean = 0.9995 * wantMean
		}
		if math.Abs(d.Mean()-wantMean)/wantMean > 1e-9 {
			t.Errorf("ByName(%q).Mean() = %v, want %v", name, d.Mean(), wantMean)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	_, err := ByName("zipf", 1000)
	if err == nil {
		t.Fatal("unknown name must error")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q should list valid name %q", err, name)
		}
	}
	if _, err := ByName("exponential", 0); err == nil {
		t.Error("non-positive mean must error")
	}
}
