package dist

import (
	"math"
	"math/rand"
)

// Lognormal is the distribution of e^N where N ~ Normal(Mu, Sigma²). It
// models the multiplicative service-time profiles of real applications
// (the TPC-C transaction types of §6.3, memcached request costs of §6.2).
type Lognormal struct {
	Mu    float64 // location of the underlying normal (ln ns)
	Sigma float64 // scale of the underlying normal
}

// NewLognormalMean returns the lognormal with the given mean (ns) and
// underlying-normal sigma, i.e. μ = ln(mean) − σ²/2 so that
// E[X] = e^(μ+σ²/2) = mean exactly.
func NewLognormalMean(meanNS, sigma float64) Lognormal {
	if meanNS <= 0 {
		panic("dist: lognormal mean must be positive")
	}
	if sigma < 0 {
		panic("dist: lognormal sigma must be non-negative")
	}
	return Lognormal{Mu: math.Log(meanNS) - sigma*sigma/2, Sigma: sigma}
}

// Sample implements Dist.
func (l Lognormal) Sample(rng *rand.Rand) int64 {
	return int64(math.Exp(l.Mu + l.Sigma*rng.NormFloat64()))
}

// Mean implements Dist: E[X] = e^(μ+σ²/2).
func (l Lognormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Name implements Dist.
func (l Lognormal) Name() string { return "lognormal" }

// SecondMoment implements Moments: E[X²] = e^(2μ+2σ²).
func (l Lognormal) SecondMoment() float64 {
	return math.Exp(2*l.Mu + 2*l.Sigma*l.Sigma)
}

// Median returns the distribution's median e^μ.
func (l Lognormal) Median() float64 { return math.Exp(l.Mu) }

// CDF returns P(X ≤ x) = Φ((ln x − μ)/σ).
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if l.Sigma == 0 {
		if math.Log(x) < l.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2)))
}

// Quantile returns the p-quantile e^(μ+σ·Φ⁻¹(p)).
func (l Lognormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*math.Sqrt2*math.Erfinv(2*p-1))
}
