package dist

import (
	"math/rand"

	"zygos/internal/sim"
)

// PoissonArrivals generates the inter-arrival gaps of a Poisson process:
// independent exponential gaps with mean 1e9/RatePerSec nanoseconds. All
// open-loop generators in the repository (the queueing models, the
// dataplane simulator, the mutilate-style load generator) draw their
// arrival times from it.
type PoissonArrivals struct {
	RatePerSec float64
}

// NextGap draws the nanoseconds until the next arrival.
func (p PoissonArrivals) NextGap(rng *rand.Rand) sim.Time {
	if p.RatePerSec <= 0 {
		panic("dist: PoissonArrivals rate must be positive")
	}
	return sim.Time(rng.ExpFloat64() * 1e9 / p.RatePerSec)
}

// MeanGap returns the expected gap 1e9/RatePerSec in nanoseconds.
func (p PoissonArrivals) MeanGap() float64 { return 1e9 / p.RatePerSec }
