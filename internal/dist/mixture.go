package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Mixture draws from one of several component distributions chosen by
// fixed weights. It composes per-class service-time models into one
// workload profile (e.g. the TPC-C transaction mix of §6.3.2).
type Mixture struct {
	name string
	ds   []Dist
	ws   []float64
	cum  []float64 // cumulative weights, cum[len-1] == 1
}

// weightTolerance is how far from 1.0 a weight vector's sum may be before
// NewMixture rejects it; generous enough for decimal rounding of a few
// hand-written weights, strict enough to catch unnormalized vectors.
const weightTolerance = 1e-6

// NewMixture returns a mixture of ds with the given probability weights.
// It rejects empty or length-mismatched inputs, negative weights, and
// weight vectors that do not sum to 1 (within a small tolerance).
func NewMixture(name string, ds []Dist, ws []float64) (Mixture, error) {
	if len(ds) == 0 {
		return Mixture{}, fmt.Errorf("dist: mixture %q has no components", name)
	}
	if len(ds) != len(ws) {
		return Mixture{}, fmt.Errorf("dist: mixture %q has %d components but %d weights",
			name, len(ds), len(ws))
	}
	sum := 0.0
	for i, w := range ws {
		if w < 0 || math.IsNaN(w) {
			return Mixture{}, fmt.Errorf("dist: mixture %q weight %d is %v, must be non-negative",
				name, i, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > weightTolerance {
		return Mixture{}, fmt.Errorf("dist: mixture %q weights sum to %v, must sum to 1",
			name, sum)
	}
	m := Mixture{
		name: name,
		ds:   append([]Dist(nil), ds...),
		ws:   append([]float64(nil), ws...),
		cum:  make([]float64, len(ws)),
	}
	c := 0.0
	for i, w := range m.ws {
		c += w / sum // normalize away the residual rounding error
		m.cum[i] = c
	}
	m.cum[len(m.cum)-1] = 1
	return m, nil
}

// Sample implements Dist.
func (m Mixture) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	for i, c := range m.cum {
		if u < c {
			return m.ds[i].Sample(rng)
		}
	}
	return m.ds[len(m.ds)-1].Sample(rng)
}

// Mean implements Dist: Σ wᵢ·E[Xᵢ].
func (m Mixture) Mean() float64 {
	mean := 0.0
	for i, d := range m.ds {
		mean += m.ws[i] * d.Mean()
	}
	return mean
}

// Name implements Dist.
func (m Mixture) Name() string { return m.name }

// SecondMoment implements Moments: Σ wᵢ·E[Xᵢ²]. It is NaN if any
// component lacks an analytic second moment.
func (m Mixture) SecondMoment() float64 {
	m2 := 0.0
	for i, d := range m.ds {
		m2 += m.ws[i] * SecondMoment(d)
	}
	return m2
}

// Components returns the mixture's component count.
func (m Mixture) Components() int { return len(m.ds) }
