//go:build !linux

package tcpnet

import "net"

// ListenShards degrades to a single listener off Linux: without
// SO_REUSEPORT wiring, one accept loop serves the address. Callers
// already iterate over the returned slice, so the degradation is
// transparent.
func ListenShards(addr string, n int) ([]net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return []net.Listener{l}, nil
}
