package tcpnet

import (
	"net"
	"testing"
	"time"

	"zygos/internal/core"
	"zygos/internal/proto"
)

// startReapServer runs an echo server with aggressive idle reaping and
// fast sweeps, returning the runtime, server, and address.
func startReapServer(t *testing.T, idle time.Duration, h core.HandlerFunc) (*core.Runtime, *Server, string) {
	t.Helper()
	rt, err := core.New(core.Config{Cores: 2, Handler: h})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(rt,
		WithIdleTimeout(idle),
		WithSweepInterval(5*time.Millisecond),
		WithIdleThreshold(idle/2),
	)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		srv.Close()
		rt.Close()
	})
	return rt, srv, l.Addr().String()
}

func echoHandler(ctx *core.Ctx, c *core.Conn, m proto.Message) {
	ctx.Reply(m.Payload)
}

// A connection quiet past the idle timeout must be reaped: closed by the
// server, counted, and its pooled segments returned.
func TestIdleReaping(t *testing.T) {
	rt, srv, addr := startReapServer(t, 80*time.Millisecond, echoHandler)

	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call([]byte("warm")); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.NetStats()
		if st.Open == 0 && st.Reaped >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("connection not reaped: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The client side observes the close.
	failAt := time.Now().Add(5 * time.Second)
	observed := false
	for time.Now().Before(failAt) {
		if _, err := c.Call([]byte("x")); err != nil {
			observed = true
			break
		}
	}
	if !observed {
		t.Fatal("calls kept succeeding after the server reaped the connection")
	}
	// Pollers retain one read-scratch segment each while running; after
	// Close everything pooled must be home.
	srv.Close()
	if live := rt.SegmentsLive(); live != 0 {
		t.Fatalf("%d live segments after reap and close", live)
	}
}

// Reaping must never race WriteReply teardown: handlers detach and
// complete replies from foreign goroutines exactly when the reaper is
// closing their idle-looking connections. Run under -race, the test
// fails on any teardown/WriteReply race; the runtime must still
// quiesce (every detached completion resolves, reply or not).
func TestReapingDoesNotRaceWriteReply(t *testing.T) {
	const replyDelay = 30 * time.Millisecond
	rt, srv, addr := startReapServer(t, 10*time.Millisecond,
		func(ctx *core.Ctx, c *core.Conn, m proto.Message) {
			co := ctx.Detach()
			payload := append([]byte(nil), m.Payload...)
			go func() {
				// By the time this fires the connection has been quiet
				// longer than the idle timeout and is being reaped.
				time.Sleep(replyDelay)
				co.Reply(payload)
			}()
		})

	for i := 0; i < 20; i++ {
		c, err := Dial(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SendAsync([]byte("doomed"), func([]byte, error) {}); err != nil {
			c.Close()
			t.Fatal(err)
		}
		defer c.Close()
	}
	if !rt.Flush(10 * time.Second) {
		t.Fatal("runtime did not quiesce with reaping racing detached replies")
	}
	srv.Close() // returns the pollers' read-scratch segments
	if live := rt.SegmentsLive(); live != 0 {
		t.Fatalf("%d live segments after churn", live)
	}
}

// The sweeper's idle accounting must show up in NetStats: a quiet
// connection's retained egress memory is parked and the connection is
// counted idle.
func TestIdleAccountingParksBuffers(t *testing.T) {
	rt2, err := core.New(core.Config{Cores: 1, Handler: core.HandlerFunc(echoHandler)})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(rt2,
		WithSweepInterval(5*time.Millisecond),
		WithIdleThreshold(20*time.Millisecond),
	)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(l)
	t.Cleanup(func() {
		srv2.Close()
		rt2.Close()
	})
	addr := l.Addr().String()

	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call([]byte("traffic")); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv2.NetStats()
		if st.Open == 1 && st.Idle == 1 && st.EgressBytesResident == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle accounting never settled: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The parked connection still works.
	if resp, err := c.Call([]byte("wake")); err != nil || string(resp) != "wake" {
		t.Fatalf("parked connection broken: %q %v", resp, err)
	}
}
