package tcpnet

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"zygos/internal/proto"
)

// A pre-redesign client speaking the legacy v1 framing must round-trip
// against the new server: v1 requests are parsed, executed, and answered
// with v1-framed replies (no magic byte, no status channel).
func TestV1ClientCompatRoundTrip(t *testing.T) {
	_, _, addr := startServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Pipeline a few v1 frames exactly as the old wire format encoded
	// them: 4-byte LE length, 8-byte LE ID, payload.
	const n = 5
	var stream []byte
	for i := uint64(1); i <= n; i++ {
		stream = proto.AppendFrame(stream, proto.Message{ID: i, Payload: []byte{byte('a' + i)}})
	}
	if _, err := nc.Write(stream); err != nil {
		t.Fatal(err)
	}

	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := uint64(1); i <= n; i++ {
		var hdr [proto.HeaderSize]byte
		if _, err := io.ReadFull(nc, hdr[:]); err != nil {
			t.Fatalf("reply %d header: %v", i, err)
		}
		if hdr[3] == proto.Magic2 {
			t.Fatalf("reply %d is v2-framed; a v1 client cannot parse it", i)
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		id := binary.LittleEndian.Uint64(hdr[4:12])
		if id != i || size != 1 {
			t.Fatalf("reply %d: id=%d size=%d", i, id, size)
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(nc, body); err != nil {
			t.Fatal(err)
		}
		if body[0] != byte('a'+i) {
			t.Fatalf("reply %d payload %q", i, body)
		}
	}
}

// readUntilClosed drains nc until the peer closes it, or fails the test
// after a deadline.
func readUntilClosed(t *testing.T, nc net.Conn) {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1024)
	for {
		if _, err := nc.Read(buf); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("server never closed the malformed connection")
			}
			return
		}
	}
}

// A peer announcing an oversized frame must have its connection closed,
// without wedging the worker or leaking the parser error to other
// connections on the same server.
func TestOversizedHeaderClosesConn(t *testing.T) {
	rt, _, addr := startServer(t)

	bad, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	hdr := make([]byte, proto.HeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], proto.MaxPayload+1)
	if _, err := bad.Write(hdr); err != nil {
		t.Fatal(err)
	}
	readUntilClosed(t, bad)

	// The worker must not be wedged: a well-formed connection keeps
	// round-tripping, and the runtime still quiesces.
	good, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	for i := 0; i < 10; i++ {
		resp, err := good.Call([]byte("still alive"))
		if err != nil {
			t.Fatalf("call %d after poison: %v", i, err)
		}
		if string(resp) != "still alive" {
			t.Fatalf("call %d corrupted: %q", i, resp)
		}
	}
	if !rt.Flush(5 * time.Second) {
		t.Fatal("runtime did not quiesce after poisoned connection")
	}
}

// A truncated header (peer dies mid-frame) must tear the connection down
// without affecting the worker or other connections.
func TestTruncatedHeaderTeardown(t *testing.T) {
	rt, _, addr := startServer(t)

	half, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// 5 of 12 header bytes, then a hard close.
	if _, err := half.Write([]byte{9, 0, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	half.Close()

	good, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	resp, err := good.Call([]byte("unaffected"))
	if err != nil || string(resp) != "unaffected" {
		t.Fatalf("neighbour connection broken: %q %v", resp, err)
	}
	if !rt.Flush(5 * time.Second) {
		t.Fatal("runtime did not quiesce after truncated peer")
	}
}

// An oversized frame on one connection of a worker must not poison a
// sibling connection homed on the same worker mid-pipeline.
func TestPoisonDoesNotLeakAcrossConns(t *testing.T) {
	_, _, addr := startServer(t)
	good, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	done := make(chan error, 64)
	for i := 0; i < 64; i++ {
		if err := good.SendAsync([]byte("burst"), func(_ []byte, err error) { done <- err }); err != nil {
			t.Fatal(err)
		}
	}
	bad, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	hdr := make([]byte, proto.HeaderSize)
	hdr[3] = 0x7f
	if _, err := bad.Write(hdr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("pipelined call %d failed: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out after %d replies", i)
		}
	}
}
