//go:build linux

package tcpnet

import (
	"syscall"
	"unsafe"
)

// kernelOutq returns the bytes queued in the socket's kernel send
// buffer and not yet acknowledged by the peer (SIOCOUTQ). The push
// flusher's fairness gate adds it to the staged backlog: without it,
// nonblocking writes hide megabytes of queued push traffic inside the
// send buffer, where an RPC reply would wait behind all of it.
// Best-effort — 0 on any error or when no raw fd is available.
func kernelOutq(rc syscall.RawConn) int {
	if rc == nil {
		return 0
	}
	var q int32
	_ = rc.Control(func(fd uintptr) {
		_, _, _ = syscall.Syscall(syscall.SYS_IOCTL, fd, syscall.TIOCOUTQ, uintptr(unsafe.Pointer(&q)))
	})
	if q < 0 {
		return 0
	}
	return int(q)
}
