//go:build linux

package tcpnet

import (
	"net"
	"sync"
	"syscall"
)

// newPollerSet builds the platform poller pool: epoll pollers on Linux,
// degrading to the portable scan poller if epoll setup fails (or the
// server forces portable mode).
func newPollerSet(s *Server, n int) []poller {
	if s.opt.forcePortable {
		return newPortableSet(s, n)
	}
	out := make([]poller, 0, n)
	for i := 0; i < n; i++ {
		p, err := newEpollPoller(s)
		if err != nil {
			for _, q := range out {
				q.close()
			}
			return newPortableSet(s, n)
		}
		out = append(out, p)
	}
	return out
}

// rawFD extracts the integer fd behind a RawConn; the value is used only
// as an epoll registration key — every syscall on it goes through a
// SyscallConn callback, which pins the fd against close/reuse.
func rawFD(rc syscall.RawConn) (int, bool) {
	fd := -1
	if err := rc.Control(func(f uintptr) { fd = int(f) }); err != nil || fd < 0 {
		return -1, false
	}
	return fd, true
}

// sysWriteStep performs one nonblocking write on the raw fd (Go marks
// its socket fds O_NONBLOCK). It reports bytes written and whether the
// socket would block.
func sysWriteStep(rc syscall.RawConn, buf []byte) (int, bool, error) {
	var n int
	var werr error
	if cerr := rc.Control(func(fd uintptr) { n, werr = syscall.Write(int(fd), buf) }); cerr != nil {
		return 0, false, cerr
	}
	if n < 0 {
		n = 0
	}
	switch werr {
	case nil:
		return n, false, nil
	case syscall.EAGAIN, syscall.EINTR:
		// EINTR rides the readiness path too: the socket is still
		// writable, so the armed poller retries immediately.
		return n, true, nil
	default:
		return n, false, werr
	}
}

// epollPoller multiplexes its connections' readiness through one epoll
// instance, level-triggered. It coexists with Go's netpoller — the fds
// remain registered there, but nothing blocks on that side. One read is
// issued per readiness event so a firehose connection cannot starve its
// poller siblings; remaining data simply re-arms the level-triggered
// event.
type epollPoller struct {
	s            *Server
	epfd         int
	wakeR, wakeW int

	mu     sync.Mutex
	conns  map[int32]*serverConn // keyed by fd (the epoll event payload)
	closed bool

	done chan struct{}
	buf  []byte // leased read scratch, handed off on big reads
}

func newEpollPoller(s *Server) (*epollPoller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var pipe [2]int
	if err := syscall.Pipe2(pipe[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	p := &epollPoller{
		s:     s,
		epfd:  epfd,
		wakeR: pipe[0],
		wakeW: pipe[1],
		conns: make(map[int32]*serverConn),
		done:  make(chan struct{}),
	}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(p.wakeR)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p.wakeR, &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(pipe[0])
		syscall.Close(pipe[1])
		return nil, err
	}
	go p.run()
	return p, nil
}

func (p *epollPoller) addConn(sc *serverConn) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return net.ErrClosed
	}
	// Register in the lookup table before epoll so an event firing
	// between the two finds its connection. A previous tenant of the same
	// fd number has necessarily been torn down (the fd was closed to be
	// reused), so overwriting is correct.
	p.conns[int32(sc.fd)] = sc
	p.mu.Unlock()
	var ctlErr error
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(sc.fd)}
	err := sc.rc.Control(func(fd uintptr) {
		ctlErr = syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, int(fd), &ev)
	})
	if err == nil {
		err = ctlErr
	}
	if err != nil {
		p.delConn(sc)
		return err
	}
	return nil
}

// armWrite adds EPOLLOUT to the connection's event mask; called with
// sc.mu held, which serializes it against disarm and teardown.
func (p *epollPoller) armWrite(sc *serverConn) {
	if sc.armed {
		return
	}
	p.ctlMod(sc, syscall.EPOLLIN|syscall.EPOLLOUT)
	sc.armed = true
}

func (p *epollPoller) disarmWrite(sc *serverConn) {
	if !sc.armed {
		return
	}
	p.ctlMod(sc, syscall.EPOLLIN)
	sc.armed = false
}

func (p *epollPoller) ctlMod(sc *serverConn, events uint32) {
	ev := syscall.EpollEvent{Events: events, Fd: int32(sc.fd)}
	_ = sc.rc.Control(func(fd uintptr) {
		_ = syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, int(fd), &ev)
	})
}

func (p *epollPoller) delConn(sc *serverConn) {
	p.mu.Lock()
	if cur, ok := p.conns[int32(sc.fd)]; ok && cur == sc {
		delete(p.conns, int32(sc.fd))
	}
	p.mu.Unlock()
	// Best effort: closing the fd deregisters it anyway.
	_ = sc.rc.Control(func(fd uintptr) {
		_ = syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, int(fd), nil)
	})
}

func (p *epollPoller) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	var one = [1]byte{1}
	_, _ = syscall.Write(p.wakeW, one[:])
	<-p.done
}

func (p *epollPoller) run() {
	defer close(p.done)
	defer func() {
		if p.buf != nil {
			p.s.rt.PutSegment(p.buf)
			p.buf = nil
		}
		syscall.Close(p.epfd)
		syscall.Close(p.wakeR)
		syscall.Close(p.wakeW)
	}()
	events := make([]syscall.EpollEvent, 128)
	for {
		n, err := syscall.EpollWait(p.epfd, events, -1)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			return
		}
		for i := 0; i < n; i++ {
			ev := &events[i]
			if int(ev.Fd) == p.wakeR {
				return
			}
			p.mu.Lock()
			sc := p.conns[ev.Fd]
			p.mu.Unlock()
			if sc == nil {
				continue
			}
			if ev.Events&syscall.EPOLLOUT != 0 {
				sc.pollWritable()
			}
			if ev.Events&(syscall.EPOLLIN|syscall.EPOLLHUP|syscall.EPOLLERR) != 0 {
				p.readConn(sc)
			}
		}
	}
}

// readConn issues one nonblocking read and routes the result: data to
// the runtime (zero-copy for big reads), EOF or error to teardown,
// EAGAIN onward. The read rides a SyscallConn callback so a concurrent
// teardown cannot recycle the fd mid-syscall.
func (p *epollPoller) readConn(sc *serverConn) {
	if p.buf == nil {
		b := p.s.rt.GetSegment(readBufSize)
		p.buf = b[:cap(b)]
	}
	var n int
	var rerr error
	cerr := sc.rc.Control(func(fd uintptr) { n, rerr = syscall.Read(int(fd), p.buf) })
	if cerr != nil {
		sc.teardown()
		return
	}
	if rerr == syscall.EAGAIN || rerr == syscall.EINTR {
		return
	}
	if n > 0 {
		var ok bool
		p.buf, ok = sc.ingest(p.buf, n)
		if !ok {
			sc.teardown()
		}
		return
	}
	// Zero-byte read (EOF) or a hard error: the peer is gone.
	sc.teardown()
}
