// Package tcpnet adapts the runtime to real TCP sockets using only the
// standard library: an accept loop registers each connection with the
// runtime (RSS hashing picks its home worker), a per-connection reader
// goroutine feeds raw stream bytes into the ingress path, and replies are
// written back by the runtime's home-core TX path through a batching
// egress writer.
//
// The Go net poller stands in for the NIC driver here; what the package
// preserves from the paper is everything above it — flow-consistent home
// assignment, the shuffle layer, stealing, and ordered replies. Two
// batching layers keep syscall counts down: the runtime coalesces every
// in-order completion into one reply batch, and the per-connection
// egress writer aggregates batches that complete while a previous write
// syscall is still in flight (a writev-style gather), preserving the
// per-connection ordering guarantee because a single flusher drains the
// pending buffer in append order.
package tcpnet

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"

	"zygos/internal/bufpool"
	"zygos/internal/core"
	"zygos/internal/proto"
)

// readBufSize is the per-connection read buffer leased from the segment
// pool and handed to the kernel.
const readBufSize = 64 << 10

// readHandoffSize is the read size at which the reader hands its whole
// buffer to the runtime zero-copy instead of copying into a right-sized
// pooled segment; below it the copy is cheaper than churning another
// readBufSize lease through the pool.
const readHandoffSize = 8 << 10

// closeDrainTimeout bounds how long Server.Close waits for egress
// writers to drain pending replies before severing their sockets.
const closeDrainTimeout = 500 * time.Millisecond

// Server accepts TCP connections and feeds them to a runtime.
type Server struct {
	rt *core.Runtime

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]*connWriter
	closed bool
	wg     sync.WaitGroup
}

// NewServer binds a server to a runtime.
func NewServer(rt *core.Runtime) *Server {
	return &Server{rt: rt, conns: make(map[net.Conn]*connWriter)}
}

// Serve accepts connections on l until l is closed or Close is called.
// It always returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.lis = l
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return net.ErrClosed
		}
		w := newConnWriter(nc)
		s.conns[nc] = w
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(nc, w)
	}
}

// Close stops accepting, drains egress writers briefly so already
// completed replies reach the wire, then closes all connections and
// waits for readers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.lis != nil {
		s.lis.Close()
	}
	writers := make([]*connWriter, 0, len(s.conns))
	for _, w := range s.conns {
		writers = append(writers, w)
	}
	s.mu.Unlock()
	deadline := time.Now().Add(closeDrainTimeout)
	for _, w := range writers {
		w.drain(deadline)
	}
	s.mu.Lock()
	for _, w := range s.conns {
		w.close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) handle(nc net.Conn, w *connWriter) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		// Let in-flight replies reach the wire before severing the
		// socket; a dead peer fails the pending write promptly.
		w.drain(time.Now().Add(closeDrainTimeout))
		w.close()
	}()
	if tc, ok := nc.(*net.TCPConn); ok {
		// Microsecond-scale RPC cannot afford Nagle delays.
		_ = tc.SetNoDelay(true)
	}
	conn := s.rt.NewConn(w)
	defer s.rt.CloseConn(conn)
	// The connection leases one large read buffer and keeps reusing it:
	// small reads (the common case at microsecond RPC sizes) are copied
	// into a right-sized pooled segment, while a read big enough to be
	// worth a zero-copy handoff transfers the whole buffer's ownership to
	// the runtime and the next iteration leases a fresh one. This keeps
	// per-connection memory at one buffer regardless of connection count
	// instead of churning 64KB leases through the pool on every read.
	// The parting buffer goes back through PutSegment so the runtime's
	// live-segment accounting stays exact. When the ingress ring fills,
	// IngressOwned blocks this reader (spin-then-park on the ring's
	// eventcount) — the same backpressure the old condvar provided,
	// without a lock on the fast path.
	var buf []byte
	defer func() {
		if buf != nil {
			s.rt.PutSegment(buf)
		}
	}()
	for {
		if buf == nil {
			buf = s.rt.GetSegment(readBufSize)
			buf = buf[:cap(buf)]
		}
		n, err := nc.Read(buf)
		if n >= readHandoffSize {
			if ierr := s.rt.IngressOwned(conn, buf[:n]); ierr != nil {
				buf = nil
				return
			}
			buf = nil
		} else if n > 0 {
			if ierr := s.rt.Ingress(conn, buf[:n]); ierr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// connWriter is the per-connection batching egress path. WriteReply
// appends the (runtime-owned, call-scoped) frame batch to a pending
// buffer and returns; a dedicated flusher goroutine gathers everything
// appended while its previous write syscall was in flight into the next
// write. All state, including teardown, is guarded by one mutex — the
// socket is never closed while a writer holds the lock.
type connWriter struct {
	mu      sync.Mutex
	cond    *sync.Cond
	nc      net.Conn
	pending []byte
	spare   []byte
	writing bool // flusher is inside nc.Write
	closed  bool
	err     error
}

// maxPendingEgress is the high-water mark on staged reply bytes per
// connection. A peer that pipelines requests but stalls its read side
// would otherwise grow pending without bound; at the mark, WriteReply
// blocks until the flusher makes progress — the same backpressure a
// synchronous socket write used to provide, now engaged only when the
// socket is actually backed up.
const maxPendingEgress = 4 << 20

func newConnWriter(nc net.Conn) *connWriter {
	w := &connWriter{nc: nc}
	w.cond = sync.NewCond(&w.mu)
	go w.flushLoop()
	return w
}

// WriteReply implements core.ReplyWriter: it stages the batch for the
// flusher and returns without blocking on the socket — unless the peer
// has let maxPendingEgress bytes pile up, in which case it blocks for
// flusher progress (transport backpressure).
func (w *connWriter) WriteReply(frame []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.pending) >= maxPendingEgress && !w.closed && w.err == nil {
		w.cond.Wait()
	}
	if w.closed {
		return net.ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	if w.pending == nil {
		w.pending = bufpool.Get(len(frame))
	}
	w.pending = append(w.pending, frame...)
	w.cond.Signal()
	return nil
}

// flushLoop is the single drainer: it swaps the pending buffer for the
// spare, writes the batch outside the lock, and repeats. Append order is
// write order, so the runtime's per-connection reply ordering survives.
func (w *connWriter) flushLoop() {
	w.mu.Lock()
	for {
		for len(w.pending) == 0 && !w.closed && w.err == nil {
			w.cond.Wait()
		}
		if w.closed || w.err != nil {
			w.releaseBuffersLocked()
			w.mu.Unlock()
			return
		}
		buf := w.pending
		w.pending = w.spare
		w.spare = nil
		w.writing = true
		// The staging buffer just emptied; writers blocked at the
		// high-water mark can refill it while the syscall is in flight.
		w.cond.Broadcast()
		w.mu.Unlock()
		_, err := w.nc.Write(buf)
		w.mu.Lock()
		w.writing = false
		w.spare = buf[:0]
		if err != nil {
			w.err = err
		}
		// Wake anyone draining: the staged bytes reached the socket (or
		// the writer died and never will).
		w.cond.Broadcast()
	}
}

// releaseBuffersLocked returns the scratch buffers to the pool; the
// caller holds mu and the flusher is exiting.
func (w *connWriter) releaseBuffersLocked() {
	bufpool.Put(w.pending)
	bufpool.Put(w.spare)
	w.pending, w.spare = nil, nil
}

// drain waits until staged replies have reached the socket, the writer
// has failed, or the deadline passes. The timeout is a flag flipped
// under the mutex before the broadcast, so the wakeup cannot be lost in
// the window before Wait parks.
func (w *connWriter) drain(deadline time.Time) {
	timedOut := false
	timer := time.AfterFunc(time.Until(deadline), func() {
		w.mu.Lock()
		timedOut = true
		w.mu.Unlock()
		w.cond.Broadcast()
	})
	defer timer.Stop()
	w.mu.Lock()
	for (len(w.pending) > 0 || w.writing) && !w.closed && w.err == nil && !timedOut {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// close tears the writer down and closes the socket under the same
// mutex every writer takes, so teardown cannot race a write.
func (w *connWriter) close() {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		w.nc.Close()
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

// CloseTransport implements core.TransportCloser: a peer whose stream is
// malformed is disconnected immediately — its reader unblocks, the
// connection is torn down, and no other connection is affected. Pending
// output is dropped; the peer is hostile by definition here.
func (w *connWriter) CloseTransport() {
	w.close()
}

// Client is a TCP RPC client speaking the proto framing. It supports
// pipelined concurrent requests over one connection.
type Client struct {
	nc   net.Conn
	disp *proto.Dispatcher

	wmu    sync.Mutex
	wr     *bufio.Writer
	closed bool
}

// Dial connects to a tcpnet server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	c := &Client{nc: nc, disp: proto.NewDispatcher(), wr: bufio.NewWriterSize(nc, 32<<10)}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	buf := make([]byte, readBufSize)
	for {
		n, err := c.nc.Read(buf)
		if n > 0 {
			if derr := c.disp.Feed(buf[:n]); derr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	c.disp.Close()
}

// sendFrame encodes m into a pooled buffer, writes and flushes it.
// Legacy (method-less) sends travel as v2 frames, method-routed sends
// as v3. The write is flushed immediately (open-loop latency
// measurement cannot tolerate client-side batching).
func (c *Client) sendFrame(m proto.Message) error {
	frame := proto.AppendMessage(bufpool.Get(proto.FrameSizeV3(len(m.Payload))), m)
	err := c.write(frame)
	bufpool.Put(frame)
	return err
}

// SendAsync issues a request; cb runs exactly once with the reply or an
// error. Replies carrying a non-OK wire status surface as
// *proto.StatusError. The resp slice is valid only for the duration of
// the callback; retain a copy.
func (c *Client) SendAsync(payload []byte, cb func(resp []byte, err error)) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	id, err := c.disp.Register(cb)
	if err != nil {
		return err
	}
	return c.sendFrame(proto.Message{ID: id, Payload: payload, V2: true})
}

// SendMethodAsync is SendAsync with a method identifier: the request
// travels as a v3 frame and the server routes it by method.
func (c *Client) SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	id, err := c.disp.Register(cb)
	if err != nil {
		return err
	}
	return c.sendFrame(proto.Message{ID: id, Method: method, Payload: payload, V3: true})
}

// SendOneWay issues a fire-and-forget request: the server executes it
// but sends no reply, and no client-side state is kept.
func (c *Client) SendOneWay(payload []byte) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	return c.sendFrame(proto.Message{Flags: proto.FlagOneWay, Payload: payload, V2: true})
}

// SendMethodOneWay is SendOneWay with a method identifier (v3 frame).
func (c *Client) SendMethodOneWay(method uint16, payload []byte) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	return c.sendFrame(proto.Message{Flags: proto.FlagOneWay, Method: method, Payload: payload, V3: true})
}

func (c *Client) write(frame []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return errors.New("tcpnet: client closed")
	}
	if _, err := c.wr.Write(frame); err != nil {
		return err
	}
	return c.wr.Flush()
}

// Call issues a request and blocks for the reply. The returned slice is
// owned by the caller.
func (c *Client) Call(payload []byte) ([]byte, error) {
	return c.CallInto(payload, nil)
}

// CallInto issues a request, blocks for its reply, and appends the reply
// payload to buf, returning the extended slice. Passing a reused buffer
// makes the client side of the round trip allocation-free at steady
// state.
func (c *Client) CallInto(payload, buf []byte) ([]byte, error) {
	w := proto.GetWaiter(buf)
	if err := c.SendAsync(payload, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.Wait()
}

// CallMethod issues a method-routed request and blocks for its reply.
func (c *Client) CallMethod(method uint16, payload []byte) ([]byte, error) {
	return c.CallMethodInto(method, payload, nil)
}

// CallMethodInto is CallMethod with a caller-owned reply buffer, the
// allocation-free closed-loop form.
func (c *Client) CallMethodInto(method uint16, payload, buf []byte) ([]byte, error) {
	w := proto.GetWaiter(buf)
	if err := c.SendMethodAsync(method, payload, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.Wait()
}

// Close shuts the connection down; outstanding calls fail.
func (c *Client) Close() {
	c.wmu.Lock()
	c.closed = true
	c.wmu.Unlock()
	c.nc.Close()
	c.disp.Close()
}
