// Package tcpnet adapts the runtime to real TCP sockets using only the
// standard library, with a connection-scalable data plane: instead of a
// reader goroutine and a flusher goroutine per connection, a small fixed
// pool of poller goroutines multiplexes every connection's readiness.
// The goroutine budget is O(pollers + accept shards), independent of the
// connection count — the property the ROADMAP's "millions of users"
// north star needs and the goroutine-per-connection design could not
// deliver (2M goroutines, gigabytes of stacks, scheduler thrash).
//
// On Linux each poller owns an epoll instance (via the stdlib syscall
// package; the sockets stay registered with Go's netpoller too, but
// nobody waits on that side) and performs nonblocking reads and writes
// directly on the connection fds, always inside SyscallConn callbacks so
// teardown can never race an in-flight syscall onto a recycled fd.
// Everywhere else — and on Linux when a listener yields connections
// without syscall access, or when WithPortablePoller forces it for test
// coverage — a portable poller scans its connections with short read
// deadlines; same state machine, worse constants.
//
// Ingress: pollers lease read segments from the runtime's pool and hand
// large reads to Runtime.IngressOwned zero-copy (ownership transfers,
// the poller leases a fresh segment); small reads are copied so the
// retained scratch is per-poller, not per-connection — an idle
// connection pins no read-buffer memory at all, by construction.
//
// Egress: the runtime coalesces in-order completions into one
// WriteReply batch; WriteReply stages the batch in the connection's
// pending buffer and the calling goroutine becomes the writer if none
// is active, draining with nonblocking writes. A stalled peer parks the
// connection's egress — write readiness is armed with the poller
// (EPOLLOUT on Linux) and the poller resumes the drain — instead of
// pinning a flusher goroutine. Append order is transmit order, so the
// per-connection reply ordering guarantee survives, and the staging
// buffer is bounded by a high-water mark that blocks WriteReply (the
// same backpressure a synchronous socket write used to provide).
//
// The server also keeps a connection registry with idle-memory
// accounting: a sweeper shrinks quiet connections' retained egress
// scratch (transport staging and the runtime's TX batch buffer) back to
// the shared pool, and — when an idle timeout is configured — reaps
// connections quiet past the deadline.
package tcpnet

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"zygos/internal/core"
)

// readBufSize is the poller-owned read buffer leased from the segment
// pool and handed to the kernel.
const readBufSize = 64 << 10

// readHandoffSize is the read size at which a poller hands its whole
// buffer to the runtime zero-copy instead of copying into a right-sized
// pooled segment; below it the copy is cheaper than churning another
// readBufSize lease through the pool.
const readHandoffSize = 8 << 10

// closeDrainTimeout bounds how long Server.Close waits for staged
// egress to drain before severing the sockets.
const closeDrainTimeout = 500 * time.Millisecond

// maxPollers caps the default poller pool; readiness polling wants few
// busy pollers, not one per core on large machines.
const maxPollers = 4

// poller multiplexes read and write readiness for a set of server
// connections. addConn registers a connection; armWrite (called with the
// connection's mutex held) asks for write-readiness notification after a
// short write; delConn removes a connection during teardown (idempotent,
// called without the connection's mutex); close stops the poller and
// waits for its goroutine.
type poller interface {
	addConn(sc *serverConn) error
	armWrite(sc *serverConn)
	disarmWrite(sc *serverConn)
	delConn(sc *serverConn)
	close()
}

// options collects Server construction knobs.
type options struct {
	pollers       int
	forcePortable bool
	idleTimeout   time.Duration
	idleAfter     time.Duration
	sweepInterval time.Duration
}

// Option configures a Server.
type Option func(*options)

func defaultOptions() options {
	n := runtime.GOMAXPROCS(0)
	if n > maxPollers {
		n = maxPollers
	}
	if n < 1 {
		n = 1
	}
	return options{
		pollers:       n,
		idleAfter:     5 * time.Second,
		sweepInterval: time.Second,
	}
}

// NetStats is a snapshot of the transport's connection registry.
type NetStats struct {
	// Open is the number of currently open connections.
	Open int
	// Idle is how many open connections have been quiet past the idle
	// threshold (WithIdleThreshold, default 5s).
	Idle int
	// Accepted counts connections ever accepted.
	Accepted uint64
	// Reaped counts connections closed by the idle-timeout reaper.
	Reaped uint64
	// Pollers is the number of poller goroutines.
	Pollers int
	// AcceptShards is the number of listeners currently being served
	// (one accept-loop goroutine each).
	AcceptShards int
	// EgressBytesResident is the total capacity of per-connection egress
	// staging buffers currently retained — the transport's idle-memory
	// accounting figure.
	EgressBytesResident int64
}

// Server accepts TCP connections and feeds them to a runtime.
type Server struct {
	rt  *core.Runtime
	opt options

	mu         sync.Mutex
	listeners  map[net.Listener]struct{}
	conns      map[*serverConn]struct{}
	pollers    []poller
	fallback   poller // portable poller for fd-less conns on Linux, lazily created
	nextPoller uint64
	started    bool
	closed     bool
	sweepStop  chan struct{}
	sweepDone  chan struct{}

	accepted atomic.Uint64
	reaped   atomic.Uint64
}

// NewServer binds a server to a runtime. No goroutines start until the
// first Serve call.
func NewServer(rt *core.Runtime, opts ...Option) *Server {
	s := &Server{
		rt:        rt,
		opt:       defaultOptions(),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*serverConn]struct{}),
	}
	for _, o := range opts {
		o(&s.opt)
	}
	return s
}

// WithPollers overrides the poller goroutine count (default
// min(GOMAXPROCS, 4)).
func WithPollers(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.pollers = n
		}
	}
}

// WithPortablePoller forces the portable deadline-scan poller even where
// an OS readiness facility is available; tests use it to cover the
// fallback path on Linux.
func WithPortablePoller() Option {
	return func(o *options) { o.forcePortable = true }
}

// WithIdleTimeout enables idle-connection reaping: connections with no
// wire activity for d are closed by the sweeper and their pooled
// buffers returned. Zero (the default) disables reaping.
func WithIdleTimeout(d time.Duration) Option {
	return func(o *options) { o.idleTimeout = d }
}

// WithIdleThreshold sets how long a connection must be quiet before the
// sweeper counts it idle and parks its retained buffers (default 5s).
func WithIdleThreshold(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.idleAfter = d
		}
	}
}

// WithSweepInterval sets the registry sweeper's scan period (default
// 1s). Tests shorten it to exercise reaping quickly.
func WithSweepInterval(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.sweepInterval = d
		}
	}
}

// startLocked brings up the poller pool and the registry sweeper on
// first use. Caller holds s.mu.
func (s *Server) startLocked() {
	if s.started {
		return
	}
	s.started = true
	s.pollers = newPollerSet(s, s.opt.pollers)
	s.sweepStop = make(chan struct{})
	s.sweepDone = make(chan struct{})
	go s.sweep()
}

// Serve accepts connections on l until l is closed or Close is called.
// It always returns a non-nil error (net.ErrClosed after Close). Serve
// may be called concurrently with different listeners — that is how
// accept sharding works: one Serve loop per ListenShards listener.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.startLocked()
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return net.ErrClosed
			}
			return err
		}
		if err := s.addConn(nc); err != nil {
			nc.Close()
			if err == net.ErrClosed {
				return err
			}
		}
	}
}

// addConn registers an accepted connection with the runtime, the
// registry, and a poller.
func (s *Server) addConn(nc net.Conn) error {
	if tc, ok := nc.(*net.TCPConn); ok {
		// Microsecond-scale RPC cannot afford Nagle delays.
		_ = tc.SetNoDelay(true)
	}
	sc := &serverConn{srv: s, nc: nc, fd: -1}
	sc.cond = sync.NewCond(&sc.mu)
	sc.touch()
	if !s.opt.forcePortable {
		if scc, ok := nc.(syscall.Conn); ok {
			if rc, err := scc.SyscallConn(); err == nil {
				if fd, ok := rawFD(rc); ok {
					sc.rc, sc.fd = rc, fd
				}
			}
		}
	}
	// The core connection must exist before the poller can deliver the
	// first read AND before the conn is published to the registry: the
	// sweeper walks the registry and dereferences sc.cc, so assigning it
	// after publication races (a fast sweep tick could even see nil).
	// NewConn only allocates — on the closed path below the orphan holds
	// no runtime references and is simply collected.
	sc.cc = s.rt.NewConn(sc)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	p := s.pollerForLocked(sc)
	if p == nil {
		s.mu.Unlock()
		return net.ErrClosed
	}
	sc.p = p
	s.conns[sc] = struct{}{}
	s.accepted.Add(1)
	s.mu.Unlock()
	if err := p.addConn(sc); err != nil {
		sc.teardown()
	}
	return nil
}

// pollerForLocked assigns a connection to a poller: round-robin over the
// pool when the connection supports the platform poller, the shared
// portable fallback otherwise. Caller holds s.mu.
func (s *Server) pollerForLocked(sc *serverConn) poller {
	if len(s.pollers) == 0 {
		return nil
	}
	if sc.fd >= 0 || s.pollersArePortable() {
		i := s.nextPoller
		s.nextPoller++
		return s.pollers[i%uint64(len(s.pollers))]
	}
	if s.fallback == nil {
		s.fallback = newPortablePoller(s)
	}
	return s.fallback
}

// pollersArePortable reports whether the main poller pool is the
// portable implementation (non-Linux builds, forced portable mode, or
// epoll setup failure).
func (s *Server) pollersArePortable() bool {
	if len(s.pollers) == 0 {
		return true
	}
	_, ok := s.pollers[0].(*portablePoller)
	return ok
}

// removeConn deletes a connection from the registry; teardown calls it
// exactly once per connection.
func (s *Server) removeConn(sc *serverConn) {
	s.mu.Lock()
	delete(s.conns, sc)
	s.mu.Unlock()
}

// snapshotConns returns the current connection set.
func (s *Server) snapshotConns() []*serverConn {
	s.mu.Lock()
	out := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		out = append(out, sc)
	}
	s.mu.Unlock()
	return out
}

// sweep is the registry sweeper: every sweepInterval it parks idle
// connections' retained buffers, and — when an idle timeout is
// configured — reaps connections quiet past the deadline.
func (s *Server) sweep() {
	defer close(s.sweepDone)
	t := time.NewTicker(s.opt.sweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-t.C:
		}
		now := time.Now().UnixNano()
		for _, sc := range s.snapshotConns() {
			quiet := time.Duration(now - sc.lastActive.Load())
			if s.opt.idleTimeout > 0 && quiet > s.opt.idleTimeout {
				s.reaped.Add(1)
				sc.teardown()
				continue
			}
			if quiet > s.opt.idleAfter {
				sc.shrinkIdle()
			}
		}
	}
}

// NetStats snapshots the connection registry.
func (s *Server) NetStats() NetStats {
	s.mu.Lock()
	st := NetStats{
		Open:         len(s.conns),
		Accepted:     s.accepted.Load(),
		Reaped:       s.reaped.Load(),
		Pollers:      len(s.pollers),
		AcceptShards: len(s.listeners),
	}
	if s.fallback != nil {
		st.Pollers++
	}
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	now := time.Now().UnixNano()
	for _, sc := range conns {
		if time.Duration(now-sc.lastActive.Load()) > s.opt.idleAfter {
			st.Idle++
		}
		sc.mu.Lock()
		st.EgressBytesResident += int64(cap(sc.pending))
		sc.mu.Unlock()
	}
	return st
}

// Close stops accepting, drains staged egress briefly so already
// completed replies reach the wire, then tears down all connections,
// the sweeper, and the pollers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	started := s.started
	pollers := s.pollers
	fallback := s.fallback
	s.mu.Unlock()

	conns := s.snapshotConns()
	deadline := time.Now().Add(closeDrainTimeout)
	for _, sc := range conns {
		sc.drainEgress(deadline)
	}
	for _, sc := range conns {
		sc.teardown()
	}
	if started {
		close(s.sweepStop)
		<-s.sweepDone
		for _, p := range pollers {
			p.close()
		}
		if fallback != nil {
			fallback.close()
		}
	}
}
