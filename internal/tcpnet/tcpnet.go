// Package tcpnet adapts the runtime to real TCP sockets using only the
// standard library: an accept loop registers each connection with the
// runtime (RSS hashing picks its home worker), a per-connection reader
// goroutine feeds raw stream bytes into the ingress path, and replies are
// written back by the runtime's home-core TX path.
//
// The Go net poller stands in for the NIC driver here; what the package
// preserves from the paper is everything above it — flow-consistent home
// assignment, the shuffle layer, stealing, and ordered replies.
package tcpnet

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"

	"zygos/internal/core"
	"zygos/internal/proto"
)

// readBufSize is the per-connection read buffer handed to the kernel.
const readBufSize = 64 << 10

// Server accepts TCP connections and feeds them to a runtime.
type Server struct {
	rt *core.Runtime

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer binds a server to a runtime.
func NewServer(rt *core.Runtime) *Server {
	return &Server{rt: rt, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on l until l is closed or Close is called.
// It always returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.lis = l
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return net.ErrClosed
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(nc)
	}
}

// Close stops accepting, closes all connections and waits for readers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.lis != nil {
		s.lis.Close()
	}
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) handle(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		nc.Close()
	}()
	if tc, ok := nc.(*net.TCPConn); ok {
		// Microsecond-scale RPC cannot afford Nagle delays.
		_ = tc.SetNoDelay(true)
	}
	conn := s.rt.NewConn(&connWriter{nc: nc})
	defer s.rt.CloseConn(conn)
	buf := make([]byte, readBufSize)
	for {
		n, err := nc.Read(buf)
		if n > 0 {
			if ierr := s.rt.Ingress(conn, buf[:n]); ierr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// connWriter serializes reply writes onto the socket. The runtime already
// orders reply batches per connection; the mutex only guards against
// teardown races.
type connWriter struct {
	mu sync.Mutex
	nc net.Conn
}

// WriteReply implements core.ReplyWriter.
func (w *connWriter) WriteReply(frame []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err := w.nc.Write(frame)
	return err
}

// CloseTransport implements core.TransportCloser: a peer whose stream is
// malformed is disconnected — its reader unblocks, the connection is torn
// down, and no other connection is affected.
func (w *connWriter) CloseTransport() {
	w.nc.Close()
}

// Client is a TCP RPC client speaking the proto framing. It supports
// pipelined concurrent requests over one connection.
type Client struct {
	nc   net.Conn
	disp *proto.Dispatcher

	wmu    sync.Mutex
	wr     *bufio.Writer
	closed bool
}

// Dial connects to a tcpnet server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	c := &Client{nc: nc, disp: proto.NewDispatcher(), wr: bufio.NewWriterSize(nc, 32<<10)}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	buf := make([]byte, readBufSize)
	for {
		n, err := c.nc.Read(buf)
		if n > 0 {
			if derr := c.disp.Feed(buf[:n]); derr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	c.disp.Close()
}

// SendAsync issues a request; cb runs exactly once with the reply or an
// error. Replies carrying a non-OK wire status surface as
// *proto.StatusError. The write is flushed immediately (open-loop latency
// measurement cannot tolerate client-side batching).
func (c *Client) SendAsync(payload []byte, cb func(resp []byte, err error)) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	id, err := c.disp.Register(proto.ReplyCallback(cb))
	if err != nil {
		return err
	}
	return c.write(proto.AppendFrameV2(nil, proto.Message{ID: id, Payload: payload}))
}

// SendOneWay issues a fire-and-forget request: the server executes it
// but sends no reply, and no client-side state is kept.
func (c *Client) SendOneWay(payload []byte) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	return c.write(proto.AppendFrameV2(nil, proto.Message{Flags: proto.FlagOneWay, Payload: payload}))
}

func (c *Client) write(frame []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return errors.New("tcpnet: client closed")
	}
	if _, err := c.wr.Write(frame); err != nil {
		return err
	}
	return c.wr.Flush()
}

// Call issues a request and blocks for the reply.
func (c *Client) Call(payload []byte) ([]byte, error) {
	type result struct {
		resp []byte
		err  error
	}
	ch := make(chan result, 1)
	if err := c.SendAsync(payload, func(resp []byte, err error) {
		ch <- result{resp, err}
	}); err != nil {
		return nil, err
	}
	r := <-ch
	return r.resp, r.err
}

// Close shuts the connection down; outstanding calls fail.
func (c *Client) Close() {
	c.wmu.Lock()
	c.closed = true
	c.wmu.Unlock()
	c.nc.Close()
	c.disp.Close()
}
