package tcpnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"zygos/internal/bufpool"
	"zygos/internal/proto"
)

// ErrManagerClosed is returned by ConnManager and ManagedCaller
// operations after the manager shuts down.
var ErrManagerClosed = errors.New("tcpnet: conn manager closed")

// ErrDialBackoff is wrapped into errors returned while a socket is
// sitting out its redial backoff after a failed dial: the send fails
// fast instead of re-dialing a known-dead backend on every request.
var ErrDialBackoff = errors.New("tcpnet: redial backing off")

// Redial backoff bounds: the first retry waits about dialBackoffBase
// (jittered ±50% so a dead backend's callers don't redial in
// lockstep), doubling per consecutive failure up to dialBackoffMax.
const (
	dialBackoffBase = 20 * time.Millisecond
	dialBackoffMax  = 2 * time.Second
)

// ConnManager multiplexes many logical callers onto a small fixed set
// of TCP connections. A load generator (or an application tier) with
// thousands of logical clients would otherwise hold thousands of
// sockets and reader goroutines; the manager holds at most `sockets` of
// each, assigns callers round-robin, and coalesces small concurrent
// requests from co-located callers into single write syscalls.
//
// Reply matching is per socket: each physical connection owns a
// Dispatcher, request IDs are allocated from it, and every caller on
// that socket shares it — the v1/v2/v3 reply-matching semantics are
// exactly those of a dedicated Client.
//
// Ownership rules: NewCaller hands out a view, not a connection —
// closing a ManagedCaller only fails that caller's future sends and
// never closes the shared socket (other callers keep using it). Closing
// the manager closes every socket and fails every outstanding request.
// Sockets are dialed lazily on a caller's first send and redialed on a
// later send after a socket-level failure.
type ConnManager struct {
	addr    string
	timeout time.Duration
	socks   []*managedSock
	next    atomic.Uint64
	closed  atomic.Bool
	dials   atomic.Uint64
}

// NewConnManager creates a manager holding at most sockets physical
// connections to addr. Sockets are dialed lazily.
func NewConnManager(addr string, sockets int, timeout time.Duration) *ConnManager {
	if sockets < 1 {
		sockets = 1
	}
	m := &ConnManager{addr: addr, timeout: timeout, socks: make([]*managedSock, sockets)}
	for i := range m.socks {
		m.socks[i] = &managedSock{m: m}
	}
	return m
}

// NewCaller returns a logical caller multiplexed onto one of the
// manager's sockets (round-robin assignment).
func (m *ConnManager) NewCaller() (*ManagedCaller, error) {
	if m.closed.Load() {
		return nil, ErrManagerClosed
	}
	i := m.next.Add(1) - 1
	return &ManagedCaller{sock: m.socks[i%uint64(len(m.socks))]}, nil
}

// Dials reports how many TCP dial attempts the manager has made over
// its lifetime — successful or not. Tests use it to prove redial
// backoff is rate-limiting dial storms against a dead backend.
func (m *ConnManager) Dials() uint64 { return m.dials.Load() }

// OnDepth installs f on every socket to receive the server's scheduling
// depth from piggybacked health frames; the hook survives redials.
// Passing nil uninstalls. f must be cheap — it runs on read loops.
func (m *ConnManager) OnDepth(f func(depth uint32)) {
	for _, ms := range m.socks {
		ms.mu.Lock()
		ms.onDepth = f
		if ms.disp != nil {
			ms.disp.SetDepthFunc(f)
		}
		ms.mu.Unlock()
	}
}

// Sockets reports how many physical connections are currently dialed.
func (m *ConnManager) Sockets() int {
	n := 0
	for _, ms := range m.socks {
		ms.mu.Lock()
		if ms.nc != nil {
			n++
		}
		ms.mu.Unlock()
	}
	return n
}

// Close tears down every socket; outstanding requests fail and future
// operations return ErrManagerClosed.
func (m *ConnManager) Close() {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	for _, ms := range m.socks {
		ms.close(ErrManagerClosed)
	}
}

// managedSock is one physical connection: a lazily dialed socket, its
// reply dispatcher, and the write-coalescing stage. The first sender
// becomes the flusher and keeps writing while co-located callers append
// — many small concurrent requests leave in one syscall, the gather
// batching a per-caller socket could never provide.
type managedSock struct {
	m *ConnManager

	mu       sync.Mutex
	nc       net.Conn
	disp     *proto.Dispatcher
	pending  []byte
	spare    []byte
	flushing bool
	err      error

	// onDepth is the depth hook re-installed on each redial's fresh
	// dispatcher.
	onDepth func(depth uint32)

	// Redial backoff: after a failed dial, sends before nextDial fail
	// fast with the sticky dial error instead of dialing again. The
	// window grows exponentially with consecutive failures and is
	// jittered so a fleet of callers doesn't synchronize its redials
	// into a dial storm when the backend comes back.
	dialFails int
	nextDial  time.Time
	dialErr   error
}

// ensureDialedLocked dials the socket on first use (and redials after a
// failure). Caller holds ms.mu; the dial happens under it, which only
// ever stalls co-located callers during connection setup. While a
// failed dial's backoff window is open, sends fail fast with the sticky
// dial error — a dead backend costs its callers one jittered dial per
// window, not one per request.
func (ms *managedSock) ensureDialedLocked() error {
	if ms.m.closed.Load() {
		return ErrManagerClosed
	}
	if ms.nc != nil {
		return nil
	}
	if !ms.nextDial.IsZero() && time.Now().Before(ms.nextDial) {
		return fmt.Errorf("%w (until %s): %w",
			ErrDialBackoff, ms.nextDial.Format("15:04:05.000"), ms.dialErr)
	}
	ms.m.dials.Add(1)
	nc, err := net.DialTimeout("tcp", ms.m.addr, ms.m.timeout)
	if err != nil {
		// Exponential backoff with ±50% jitter: window = base<<fails,
		// capped, then scaled by a uniform factor in [0.5, 1.5).
		ms.dialFails++
		window := dialBackoffBase << (ms.dialFails - 1)
		if window > dialBackoffMax || window <= 0 {
			window = dialBackoffMax
		}
		window = time.Duration(float64(window) * (0.5 + rand.Float64()))
		ms.nextDial = time.Now().Add(window)
		ms.dialErr = err
		return err
	}
	ms.dialFails = 0
	ms.nextDial = time.Time{}
	ms.dialErr = nil
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	ms.nc = nc
	ms.disp = proto.NewDispatcher()
	ms.disp.SetDepthFunc(ms.onDepth)
	ms.err = nil
	go ms.readLoop(nc, ms.disp)
	return nil
}

// readLoop feeds one socket's replies to its dispatcher; it is the only
// per-socket goroutine, shared by every caller on the socket.
func (ms *managedSock) readLoop(nc net.Conn, disp *proto.Dispatcher) {
	buf := make([]byte, readBufSize)
	for {
		n, err := nc.Read(buf)
		if n > 0 {
			if derr := disp.Feed(buf[:n]); derr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	ms.mu.Lock()
	if ms.nc == nc {
		ms.failLocked(net.ErrClosed)
	}
	ms.mu.Unlock()
	disp.Close()
	disp.ReleaseParser()
}

// failLocked marks the socket dead and closes it; a later send redials.
// Staged bytes are dropped — they carry the dead dispatcher's request
// IDs and must not leak onto a redialed socket. Caller holds ms.mu.
func (ms *managedSock) failLocked(err error) {
	if ms.nc != nil {
		ms.nc.Close()
		ms.nc = nil
	}
	ms.pending = ms.pending[:0]
	if ms.err == nil {
		ms.err = err
	}
}

// close tears the socket down for good (manager shutdown).
func (ms *managedSock) close(err error) {
	ms.mu.Lock()
	disp := ms.disp
	ms.failLocked(err)
	ms.mu.Unlock()
	if disp != nil {
		disp.Close()
	}
}

// register allocates a request ID on the socket's dispatcher, dialing
// first if needed.
func (ms *managedSock) register(cb func(resp []byte, err error)) (uint64, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if err := ms.ensureDialedLocked(); err != nil {
		return 0, err
	}
	return ms.disp.Register(cb)
}

// registerPush installs a push handler on the socket's dispatcher,
// dialing first if needed. The subscription ID is unique per socket —
// exactly the scope PUSH frames demultiplex in.
func (ms *managedSock) registerPush(h func(frameID uint32, payload []byte)) (uint32, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if err := ms.ensureDialedLocked(); err != nil {
		return 0, err
	}
	return ms.disp.RegisterPush(h)
}

// unregisterPush removes a push handler if the socket still holds its
// dispatcher (a redial already dropped it otherwise).
func (ms *managedSock) unregisterPush(id uint32) {
	ms.mu.Lock()
	if ms.disp != nil {
		ms.disp.UnregisterPush(id)
	}
	ms.mu.Unlock()
}

// send stages frame and flushes the socket: if a flusher is already
// active the bytes ride its next write; otherwise the caller becomes
// the flusher and loops until co-located callers stop appending.
func (ms *managedSock) send(frame []byte) error {
	ms.mu.Lock()
	if err := ms.ensureDialedLocked(); err != nil {
		ms.mu.Unlock()
		return err
	}
	ms.pending = append(ms.pending, frame...)
	if ms.flushing {
		ms.mu.Unlock()
		return nil
	}
	ms.flushing = true
	nc := ms.nc
	for ms.err == nil && len(ms.pending) > 0 {
		buf := ms.pending
		ms.pending = ms.spare[:0]
		ms.spare = nil
		ms.mu.Unlock()
		_, werr := nc.Write(buf)
		ms.mu.Lock()
		ms.spare = buf[:0]
		if werr != nil {
			disp := ms.disp
			ms.disp = nil
			ms.failLocked(werr)
			ms.flushing = false
			ms.mu.Unlock()
			if disp != nil {
				disp.Close()
			}
			return werr
		}
	}
	err := ms.err
	ms.flushing = false
	ms.mu.Unlock()
	return err
}

// sendMessage encodes m into a pooled buffer and stages it; the bytes
// are copied into the coalescing buffer, so the frame can return to the
// pool immediately.
func (ms *managedSock) sendMessage(m proto.Message) error {
	frame := proto.AppendMessage(bufpool.Get(proto.FrameSizeMsg(m)), m)
	err := ms.send(frame)
	bufpool.Put(frame)
	return err
}

// ManagedCaller is one logical caller multiplexed over a ConnManager
// socket. It implements the same calling conventions as Client; see
// ConnManager for the ownership rules.
type ManagedCaller struct {
	sock   *managedSock
	closed atomic.Bool
}

// OnDepth installs f on this caller's socket to receive the server's
// scheduling depth from piggybacked health frames; the hook survives
// redials and is shared by every caller on the socket (last installer
// wins). Passing nil uninstalls.
func (c *ManagedCaller) OnDepth(f func(depth uint32)) {
	ms := c.sock
	ms.mu.Lock()
	ms.onDepth = f
	if ms.disp != nil {
		ms.disp.SetDepthFunc(f)
	}
	ms.mu.Unlock()
}

// SendAsync issues a request; cb runs exactly once with the reply or an
// error. The resp slice is valid only for the duration of the callback.
func (c *ManagedCaller) SendAsync(payload []byte, cb func(resp []byte, err error)) error {
	return c.sendAsync(proto.Message{Payload: payload, V2: true}, cb)
}

// SendMethodAsync is SendAsync with a method identifier (v3 frame).
func (c *ManagedCaller) SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error {
	return c.sendAsync(proto.Message{Method: method, Payload: payload, V3: true}, cb)
}

// SendMethodBudgetAsync is SendMethodAsync with a deadline budget
// stamped on the wire (FlagDeadline extension); d <= 0 sends no budget.
func (c *ManagedCaller) SendMethodBudgetAsync(method uint16, payload []byte, d time.Duration, cb func(resp []byte, err error)) error {
	return c.sendAsync(proto.Message{Method: method, Payload: payload, V3: true, Budget: proto.BudgetMicros(d)}, cb)
}

func (c *ManagedCaller) sendAsync(m proto.Message, cb func(resp []byte, err error)) error {
	if c.closed.Load() {
		return net.ErrClosed
	}
	if len(m.Payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	id, err := c.sock.register(cb)
	if err != nil {
		return err
	}
	m.ID = id
	return c.sock.sendMessage(m)
}

// SendOneWay issues a fire-and-forget request: the server executes it
// but sends no reply, and no client-side state is kept.
func (c *ManagedCaller) SendOneWay(payload []byte) error {
	return c.sendOneWay(proto.Message{Flags: proto.FlagOneWay, Payload: payload, V2: true})
}

// SendMethodOneWay is SendOneWay with a method identifier (v3 frame).
func (c *ManagedCaller) SendMethodOneWay(method uint16, payload []byte) error {
	return c.sendOneWay(proto.Message{Flags: proto.FlagOneWay, Method: method, Payload: payload, V3: true})
}

func (c *ManagedCaller) sendOneWay(m proto.Message) error {
	if c.closed.Load() {
		return net.ErrClosed
	}
	if len(m.Payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	return c.sock.sendMessage(m)
}

// Call issues a request and blocks for the reply. The returned slice is
// owned by the caller.
func (c *ManagedCaller) Call(payload []byte) ([]byte, error) {
	return c.CallInto(payload, nil)
}

// CallInto is Call with a caller-owned reply buffer, the
// allocation-free closed-loop form.
func (c *ManagedCaller) CallInto(payload, buf []byte) ([]byte, error) {
	w := proto.GetWaiter(buf)
	if err := c.SendAsync(payload, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.Wait()
}

// CallMethod issues a method-routed request and blocks for its reply.
func (c *ManagedCaller) CallMethod(method uint16, payload []byte) ([]byte, error) {
	return c.CallMethodInto(method, payload, nil)
}

// CallMethodInto is CallMethod with a caller-owned reply buffer.
func (c *ManagedCaller) CallMethodInto(method uint16, payload, buf []byte) ([]byte, error) {
	w := proto.GetWaiter(buf)
	if err := c.SendMethodAsync(method, payload, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.Wait()
}

// CallTimeout is Call bounded by d: on expiry it returns
// proto.ErrCallTimeout promptly and the late reply, if it ever arrives,
// is discarded at the waiter. d <= 0 means no deadline.
func (c *ManagedCaller) CallTimeout(payload []byte, d time.Duration) ([]byte, error) {
	w := proto.GetWaiter(nil)
	// The deadline doubles as the wire budget (see SendMethodBudgetAsync).
	if err := c.sendAsync(proto.Message{Payload: payload, V2: true, Budget: proto.BudgetMicros(d)}, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.WaitTimeout(d)
}

// CallMethodTimeout is CallMethod bounded by d (see CallTimeout).
func (c *ManagedCaller) CallMethodTimeout(method uint16, payload []byte, d time.Duration) ([]byte, error) {
	w := proto.GetWaiter(nil)
	if err := c.SendMethodBudgetAsync(method, payload, d, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.WaitTimeout(d)
}

// Subscribe sends a v4 SUBSCRIBE for topic carrying spec (an encoded
// pubsub subscription spec), installs h to receive matching PUSH
// frames, and blocks for the server's ack. The subscription ID is
// allocated from the caller's socket dispatcher — PUSH frames
// demultiplex by it alongside reply IDs on the shared socket.
// Subscriptions do not survive a redial: a socket-level failure drops
// the dispatcher and with it every push handler, so subscribers must
// re-subscribe after transport errors.
func (c *ManagedCaller) Subscribe(topic uint16, spec []byte, h func(frameID uint32, payload []byte)) (uint32, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	subID, err := c.sock.registerPush(h)
	if err != nil {
		return 0, err
	}
	w := proto.GetWaiter(nil)
	id, err := c.sock.register(w.Callback())
	if err != nil {
		c.sock.unregisterPush(subID)
		w.Abandon()
		return 0, err
	}
	if err := c.sock.sendMessage(proto.Message{ID: id, Method: topic, SubID: subID, Kind: proto.KindSubscribe, V4: true, Payload: spec}); err != nil {
		c.sock.unregisterPush(subID)
		w.Abandon()
		return 0, err
	}
	if _, err := w.Wait(); err != nil {
		c.sock.unregisterPush(subID)
		return 0, err
	}
	return subID, nil
}

// Unsubscribe retires subscription subID on topic: the push handler is
// removed immediately and the server acks the v4 UNSUBSCRIBE.
func (c *ManagedCaller) Unsubscribe(topic uint16, subID uint32) error {
	if c.closed.Load() {
		return net.ErrClosed
	}
	c.sock.unregisterPush(subID)
	w := proto.GetWaiter(nil)
	id, err := c.sock.register(w.Callback())
	if err != nil {
		w.Abandon()
		return err
	}
	if err := c.sock.sendMessage(proto.Message{ID: id, Method: topic, SubID: subID, Kind: proto.KindUnsubscribe, V4: true}); err != nil {
		w.Abandon()
		return err
	}
	_, err = w.Wait()
	return err
}

// Close retires the logical caller: its future sends fail. The shared
// socket stays open for the manager's other callers; replies to this
// caller's still-outstanding requests are delivered normally.
func (c *ManagedCaller) Close() {
	c.closed.Store(true)
}
