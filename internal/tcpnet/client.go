package tcpnet

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"

	"zygos/internal/bufpool"
	"zygos/internal/proto"
)

// Client is a TCP RPC client speaking the proto framing. It supports
// pipelined concurrent requests over one connection. Applications with
// many logical callers should multiplex them over a ConnManager instead
// of dialing one Client each.
type Client struct {
	nc   net.Conn
	disp *proto.Dispatcher

	wmu    sync.Mutex
	wr     *bufio.Writer
	closed bool
}

// Dial connects to a tcpnet server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return NewClientOn(nc), nil
}

// NewClientOn builds a client over an already-established connection —
// the seam where a fault-injecting or otherwise-wrapped net.Conn slots
// under the RPC stack. The client owns nc and closes it on Close.
func NewClientOn(nc net.Conn) *Client {
	c := &Client{nc: nc, disp: proto.NewDispatcher(), wr: bufio.NewWriterSize(nc, 32<<10)}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	buf := make([]byte, readBufSize)
	for {
		n, err := c.nc.Read(buf)
		if n > 0 {
			if derr := c.disp.Feed(buf[:n]); derr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	c.disp.Close()
	c.disp.ReleaseParser()
}

// OnDepth installs f to receive the server's scheduling depth from
// piggybacked health frames (servers started with depth reporting
// append one to each reply batch). Passing nil uninstalls. f must be
// cheap — it runs on the read loop.
func (c *Client) OnDepth(f func(depth uint32)) {
	c.disp.SetDepthFunc(f)
}

// sendFrame encodes m into a pooled buffer, writes and flushes it.
// Legacy (method-less) sends travel as v2 frames, method-routed sends
// as v3. The write is flushed immediately (open-loop latency
// measurement cannot tolerate client-side batching).
func (c *Client) sendFrame(m proto.Message) error {
	frame := proto.AppendMessage(bufpool.Get(proto.FrameSizeMsg(m)), m)
	err := c.write(frame)
	bufpool.Put(frame)
	return err
}

// SendAsync issues a request; cb runs exactly once with the reply or an
// error. Replies carrying a non-OK wire status surface as
// *proto.StatusError. The resp slice is valid only for the duration of
// the callback; retain a copy.
func (c *Client) SendAsync(payload []byte, cb func(resp []byte, err error)) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	id, err := c.disp.Register(cb)
	if err != nil {
		return err
	}
	return c.sendFrame(proto.Message{ID: id, Payload: payload, V2: true})
}

// SendMethodAsync is SendAsync with a method identifier: the request
// travels as a v3 frame and the server routes it by method.
func (c *Client) SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	id, err := c.disp.Register(cb)
	if err != nil {
		return err
	}
	return c.sendFrame(proto.Message{ID: id, Method: method, Payload: payload, V3: true})
}

// SendMethodBudgetAsync is SendMethodAsync with a deadline budget
// stamped on the wire (FlagDeadline extension): the server sees the
// remaining time the caller will wait and sheds or EDF-schedules the
// request accordingly. d <= 0 sends no budget.
func (c *Client) SendMethodBudgetAsync(method uint16, payload []byte, d time.Duration, cb func(resp []byte, err error)) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	id, err := c.disp.Register(cb)
	if err != nil {
		return err
	}
	return c.sendFrame(proto.Message{ID: id, Method: method, Payload: payload, V3: true, Budget: proto.BudgetMicros(d)})
}

// SendOneWay issues a fire-and-forget request: the server executes it
// but sends no reply, and no client-side state is kept.
func (c *Client) SendOneWay(payload []byte) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	return c.sendFrame(proto.Message{Flags: proto.FlagOneWay, Payload: payload, V2: true})
}

// SendMethodOneWay is SendOneWay with a method identifier (v3 frame).
func (c *Client) SendMethodOneWay(method uint16, payload []byte) error {
	if len(payload) > proto.MaxPayloadV2 {
		return proto.ErrPayloadTooLarge
	}
	return c.sendFrame(proto.Message{Flags: proto.FlagOneWay, Method: method, Payload: payload, V3: true})
}

func (c *Client) write(frame []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return errors.New("tcpnet: client closed")
	}
	if _, err := c.wr.Write(frame); err != nil {
		return err
	}
	return c.wr.Flush()
}

// Call issues a request and blocks for the reply. The returned slice is
// owned by the caller.
func (c *Client) Call(payload []byte) ([]byte, error) {
	return c.CallInto(payload, nil)
}

// CallInto issues a request, blocks for its reply, and appends the reply
// payload to buf, returning the extended slice. Passing a reused buffer
// makes the client side of the round trip allocation-free at steady
// state.
func (c *Client) CallInto(payload, buf []byte) ([]byte, error) {
	w := proto.GetWaiter(buf)
	if err := c.SendAsync(payload, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.Wait()
}

// CallMethod issues a method-routed request and blocks for its reply.
func (c *Client) CallMethod(method uint16, payload []byte) ([]byte, error) {
	return c.CallMethodInto(method, payload, nil)
}

// CallMethodInto is CallMethod with a caller-owned reply buffer, the
// allocation-free closed-loop form.
func (c *Client) CallMethodInto(method uint16, payload, buf []byte) ([]byte, error) {
	w := proto.GetWaiter(buf)
	if err := c.SendMethodAsync(method, payload, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.Wait()
}

// CallTimeout is Call bounded by d: on expiry it returns
// proto.ErrCallTimeout promptly and the late reply, if it ever arrives,
// is discarded at the waiter. d <= 0 means no deadline.
func (c *Client) CallTimeout(payload []byte, d time.Duration) ([]byte, error) {
	if len(payload) > proto.MaxPayloadV2 {
		return nil, proto.ErrPayloadTooLarge
	}
	w := proto.GetWaiter(nil)
	id, err := c.disp.Register(w.Callback())
	if err != nil {
		w.Abandon()
		return nil, err
	}
	// The deadline doubles as the wire budget (see SendMethodBudgetAsync).
	if err := c.sendFrame(proto.Message{ID: id, Payload: payload, V2: true, Budget: proto.BudgetMicros(d)}); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.WaitTimeout(d)
}

// CallMethodTimeout is CallMethod bounded by d (see CallTimeout).
func (c *Client) CallMethodTimeout(method uint16, payload []byte, d time.Duration) ([]byte, error) {
	w := proto.GetWaiter(nil)
	if err := c.SendMethodBudgetAsync(method, payload, d, w.Callback()); err != nil {
		w.Abandon()
		return nil, err
	}
	return w.WaitTimeout(d)
}

// Subscribe sends a v4 SUBSCRIBE for topic carrying spec (an encoded
// pubsub subscription spec: policy, queue capacity, filter), installs h
// to receive matching PUSH frames, and blocks for the server's ack.
// Returns the client-chosen subscription ID that demultiplexes the
// pushes. h runs on the read loop and must not block; the payload slice
// is valid only for the duration of the call.
func (c *Client) Subscribe(topic uint16, spec []byte, h func(frameID uint32, payload []byte)) (uint32, error) {
	subID, err := c.disp.RegisterPush(h)
	if err != nil {
		return 0, err
	}
	w := proto.GetWaiter(nil)
	id, err := c.disp.Register(w.Callback())
	if err != nil {
		c.disp.UnregisterPush(subID)
		w.Abandon()
		return 0, err
	}
	if err := c.sendFrame(proto.Message{ID: id, Method: topic, SubID: subID, Kind: proto.KindSubscribe, V4: true, Payload: spec}); err != nil {
		c.disp.UnregisterPush(subID)
		w.Abandon()
		return 0, err
	}
	if _, err := w.Wait(); err != nil {
		c.disp.UnregisterPush(subID)
		return 0, err
	}
	return subID, nil
}

// Unsubscribe retires subscription subID on topic: the push handler is
// removed immediately (pushes already in flight may deliver once) and
// the server acks the v4 UNSUBSCRIBE.
func (c *Client) Unsubscribe(topic uint16, subID uint32) error {
	c.disp.UnregisterPush(subID)
	w := proto.GetWaiter(nil)
	id, err := c.disp.Register(w.Callback())
	if err != nil {
		w.Abandon()
		return err
	}
	if err := c.sendFrame(proto.Message{ID: id, Method: topic, SubID: subID, Kind: proto.KindUnsubscribe, V4: true}); err != nil {
		w.Abandon()
		return err
	}
	_, err = w.Wait()
	return err
}

// Close shuts the connection down; outstanding calls fail.
func (c *Client) Close() {
	c.wmu.Lock()
	c.closed = true
	c.wmu.Unlock()
	c.nc.Close()
	c.disp.Close()
}
