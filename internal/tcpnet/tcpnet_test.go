package tcpnet

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"zygos/internal/core"
	"zygos/internal/proto"
)

func startServer(t *testing.T) (*core.Runtime, *Server, string) {
	t.Helper()
	rt, err := core.New(core.Config{
		Cores: 2,
		Handler: core.HandlerFunc(func(ctx *core.Ctx, c *core.Conn, m proto.Message) {
			ctx.Reply(m.Payload)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(rt)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		srv.Close()
		rt.Close()
	})
	return rt, srv, l.Addr().String()
}

func TestTCPRoundTrip(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call([]byte("over-tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "over-tcp" {
		t.Fatalf("got %q", resp)
	}
}

func TestTCPManyClients(t *testing.T) {
	_, _, addr := startServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr, time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				want := fmt.Sprintf("c%d-%d", g, i)
				resp, err := c.Call([]byte(want))
				if err != nil {
					t.Error(err)
					return
				}
				if string(resp) != want {
					t.Errorf("got %q want %q", resp, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestTCPPipelining(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 300
	done := make(chan struct{}, n)
	var mu sync.Mutex
	got := map[string]bool{}
	for i := 0; i < n; i++ {
		payload := fmt.Sprintf("p%d", i)
		if err := c.SendAsync([]byte(payload), func(resp []byte, err error) {
			if err == nil {
				mu.Lock()
				got[string(resp)] = true
				mu.Unlock()
			}
			done <- struct{}{}
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out after %d replies", i)
		}
	}
	for i := 0; i < n; i++ {
		if !got[fmt.Sprintf("p%d", i)] {
			t.Fatalf("missing reply %d", i)
		}
	}
}

func TestClientCloseFailsOutstanding(t *testing.T) {
	rt, srv, addr := startServer(t)
	_ = rt
	_ = srv
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Call([]byte("x")); err == nil {
		t.Fatal("call on closed client must fail")
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	_, srv, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Call([]byte("x")); err != nil {
			return // disconnected as expected
		}
	}
	t.Fatal("client calls kept succeeding after server close")
}

func TestServeAfterCloseFails(t *testing.T) {
	rt, err := core.New(core.Config{Cores: 1, Handler: core.HandlerFunc(func(ctx *core.Ctx, c *core.Conn, m proto.Message) {})})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv := NewServer(rt)
	srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := srv.Serve(l); err == nil {
		t.Fatal("Serve after Close must fail")
	}
}
