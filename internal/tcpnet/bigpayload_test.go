package tcpnet

import (
	"bytes"
	"testing"
	"time"
)

// Large payloads span many TCP segments and many Ingress calls; the
// incremental parser must reassemble them and the reply path must carry
// them back intact.
func TestLargePayloadRoundTrip(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, size := range []int{1, 1000, 64 << 10, 1 << 20} {
		payload := bytes.Repeat([]byte{0xAB}, size)
		for i := 0; i < size && i < 256; i++ {
			payload[i] = byte(i)
		}
		resp, err := c.Call(payload)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(resp, payload) {
			t.Fatalf("size %d: corrupted round trip", size)
		}
	}
}

// Interleaved large and small pipelined requests on one connection must
// come back in order despite multi-segment reassembly.
func TestMixedSizePipelineOrdering(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 40
	type reply struct {
		idx  int
		size int
	}
	done := make(chan reply, n)
	for i := 0; i < n; i++ {
		size := 16
		if i%3 == 0 {
			size = 128 << 10
		}
		payload := bytes.Repeat([]byte{byte(i)}, size)
		idx := i
		if err := c.SendAsync(payload, func(resp []byte, err error) {
			if err != nil {
				done <- reply{idx, -1}
				return
			}
			done <- reply{idx, len(resp)}
		}); err != nil {
			t.Fatal(err)
		}
	}
	sizes := map[int]int{}
	for i := 0; i < n; i++ {
		select {
		case r := <-done:
			sizes[r.idx] = r.size
		case <-time.After(20 * time.Second):
			t.Fatalf("timed out after %d replies", i)
		}
	}
	for i := 0; i < n; i++ {
		want := 16
		if i%3 == 0 {
			want = 128 << 10
		}
		if sizes[i] != want {
			t.Fatalf("reply %d size %d, want %d", i, sizes[i], want)
		}
	}
}
