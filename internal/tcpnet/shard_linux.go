//go:build linux

package tcpnet

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT on Linux; the frozen stdlib syscall
// package predates the constant, so it is spelled out here.
const soReusePort = 0xf

// reusePortConfig sets SO_REUSEPORT before bind, letting several
// listeners share one port with the kernel load-balancing accepts
// across them — the paper's RSS analogue for the accept path.
func reusePortConfig() net.ListenConfig {
	return net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
}

// ListenShards opens n TCP listeners sharing one address via
// SO_REUSEPORT, so each can be served by its own accept loop (one
// Server.Serve call per listener) and the kernel spreads incoming
// connections across them. With addr ending in ":0" the first listener
// picks the port and the rest join it. On error, already opened
// listeners are closed.
func ListenShards(addr string, n int) ([]net.Listener, error) {
	if n < 1 {
		n = 1
	}
	lc := reusePortConfig()
	ctx := context.Background()
	out := make([]net.Listener, 0, n)
	first, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	out = append(out, first)
	for len(out) < n {
		l, err := lc.Listen(ctx, "tcp", first.Addr().String())
		if err != nil {
			for _, o := range out {
				o.Close()
			}
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}
