package tcpnet

import (
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"zygos/internal/bufpool"
	"zygos/internal/core"
)

// maxPendingEgress is the high-water mark on staged reply bytes per
// connection. A peer that pipelines requests but stalls its read side
// would otherwise grow pending without bound; at the mark, WriteReply
// blocks until the drain makes progress — the same backpressure a
// synchronous socket write used to provide, now engaged only when the
// socket is actually backed up.
const maxPendingEgress = 4 << 20

// maxEgressRetain bounds the staging buffer a connection keeps after a
// full drain; a burst that grew it larger returns it to the shared pool.
const maxEgressRetain = 64 << 10

// portableWriteSlice is the write deadline the portable write step uses
// to approximate a nonblocking write on plain net.Conns.
const portableWriteSlice = 5 * time.Millisecond

// serverConn is one accepted connection: the runtime's ReplyWriter, the
// poller's readiness target, and the registry's accounting unit. It owns
// no goroutine.
//
// Egress is a single staging buffer with a drain offset. WriteReply
// appends and, if no writer is active and the egress is not parked on
// write readiness, becomes the writer: it captures the unflushed slice,
// drops the lock for the write syscall, and reacquires it to advance the
// offset. Concurrent appends may grow (and reallocate) pending while a
// write is in flight — append preserves the prefix, so the bytes the
// writer captured are identical to the new array's prefix and the
// offset stays meaningful. A short write parks the connection: waitWrite
// is set, the poller arms write readiness, and the poller's writable
// event resumes the drain. Teardown takes the same mutex, so the socket
// is never closed between a writer's capture and its syscall — fd
// syscalls additionally ride SyscallConn callbacks, which pin the fd.
type serverConn struct {
	srv *Server
	nc  net.Conn
	rc  syscall.RawConn // nil when the conn exposes no raw fd
	fd  int             // -1 when portable; >= 0 means platform poller I/O
	p   poller
	cc  *core.Conn

	lastActive atomic.Int64 // unix nanos of last wire activity

	mu        sync.Mutex
	cond      *sync.Cond
	pending   []byte // staged egress (pooled); [woff:] is unflushed
	woff      int    // bytes of pending already on the wire
	writing   bool   // a goroutine is inside the drain loop
	waitWrite bool   // parked: poller owns resuming the drain
	armed     bool   // platform write-readiness is armed
	closed    bool
	err       error
	tornDown  bool
}

// touch records wire activity for the idle accounting.
func (sc *serverConn) touch() {
	sc.lastActive.Store(time.Now().UnixNano())
}

// unflushedLocked is the staged byte count not yet on the wire.
func (sc *serverConn) unflushedLocked() int { return len(sc.pending) - sc.woff }

// WriteReply implements core.ReplyWriter: it stages the batch and
// drains it with nonblocking writes unless another goroutine already is
// or the egress is parked awaiting write readiness. It blocks only at
// the per-connection high-water mark (transport backpressure).
func (sc *serverConn) WriteReply(frame []byte) error {
	sc.mu.Lock()
	for sc.unflushedLocked() >= maxPendingEgress && !sc.closed && sc.err == nil {
		sc.cond.Wait()
	}
	if sc.closed {
		sc.mu.Unlock()
		return net.ErrClosed
	}
	if sc.err != nil {
		err := sc.err
		sc.mu.Unlock()
		return err
	}
	if sc.pending == nil {
		sc.pending = bufpool.Get(len(frame))
	}
	sc.pending = append(sc.pending, frame...)
	sc.touch()
	if !sc.writing && !sc.waitWrite {
		sc.drainLocked()
	}
	sc.mu.Unlock()
	return nil
}

// EgressBacklog implements core.EgressBacklogger: the staged reply
// bytes not yet on the wire plus the kernel send queue's unacked bytes
// (SIOCOUTQ, Linux). The runtime's push flusher reads it before adding
// push traffic behind staged replies, so a firehose subscriber's frames
// wait in their droppable subscription rings instead of queueing ahead
// of RPC replies in transport or kernel memory.
func (sc *serverConn) EgressBacklog() int {
	sc.mu.Lock()
	staged := sc.unflushedLocked()
	closed := sc.closed
	sc.mu.Unlock()
	if closed {
		return staged
	}
	return staged + kernelOutq(sc.rc)
}

// drainLocked writes staged bytes until the buffer empties, the socket
// would block (park on write readiness), or the connection dies. Caller
// holds sc.mu; the lock is dropped around each write syscall.
func (sc *serverConn) drainLocked() {
	sc.writing = true
	for sc.err == nil && !sc.closed && sc.unflushedLocked() > 0 {
		buf := sc.pending[sc.woff:]
		sc.mu.Unlock()
		n, again, err := sc.writeStep(buf)
		sc.mu.Lock()
		if n > 0 {
			sc.woff += n
			sc.touch()
		}
		if err != nil {
			if sc.err == nil {
				sc.err = err
			}
			break
		}
		if again {
			sc.writing = false
			sc.waitWrite = true
			sc.p.armWrite(sc)
			sc.cond.Broadcast()
			return
		}
	}
	sc.writing = false
	sc.resetEgressLocked()
	sc.cond.Broadcast()
}

// pollWritable resumes a parked drain; the poller calls it when the
// socket reports write readiness (or on every portable scan pass).
func (sc *serverConn) pollWritable() {
	sc.mu.Lock()
	if sc.closed || sc.err != nil || !sc.waitWrite {
		if sc.armed && !sc.waitWrite {
			sc.p.disarmWrite(sc)
		}
		sc.mu.Unlock()
		return
	}
	sc.waitWrite = false
	sc.drainLocked()
	if !sc.waitWrite && sc.armed {
		sc.p.disarmWrite(sc)
	}
	sc.mu.Unlock()
}

// writeStep performs one bounded write: nonblocking via the raw fd on
// platform-polled connections, a short-deadline net.Conn write on
// portable ones. It reports bytes written and whether the socket would
// block.
func (sc *serverConn) writeStep(buf []byte) (int, bool, error) {
	if sc.fd >= 0 {
		return sysWriteStep(sc.rc, buf)
	}
	_ = sc.nc.SetWriteDeadline(time.Now().Add(portableWriteSlice))
	n, err := sc.nc.Write(buf)
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return n, true, nil
	}
	return n, false, err
}

// resetEgressLocked recycles the staging buffer after a full drain (or
// on death): fully drained buffers rewind in place, oversized or dead
// ones return to the pool. Caller holds sc.mu and sc.writing is false.
func (sc *serverConn) resetEgressLocked() {
	if sc.pending == nil {
		return
	}
	dead := sc.closed || sc.err != nil
	if sc.unflushedLocked() == 0 {
		if dead || cap(sc.pending) > maxEgressRetain {
			bufpool.Put(sc.pending)
			sc.pending = nil
		} else {
			sc.pending = sc.pending[:0]
		}
		sc.woff = 0
	} else if dead {
		// Undrained bytes on a dead connection have nowhere to go.
		bufpool.Put(sc.pending)
		sc.pending = nil
		sc.woff = 0
	}
}

// shrinkIdle parks a quiet connection's retained memory: the egress
// staging buffer (when fully drained) and the runtime's per-connection
// TX scratch go back to the shared pool. The next burst re-leases.
func (sc *serverConn) shrinkIdle() {
	sc.mu.Lock()
	if !sc.writing && !sc.waitWrite && sc.pending != nil && sc.unflushedLocked() == 0 {
		bufpool.Put(sc.pending)
		sc.pending = nil
		sc.woff = 0
	}
	sc.mu.Unlock()
	sc.cc.ShrinkIdle()
}

// drainEgress waits until staged replies have reached the socket, the
// connection has died, or the deadline passes. The timeout is a flag
// flipped under the mutex before the broadcast, so the wakeup cannot be
// lost in the window before Wait parks.
func (sc *serverConn) drainEgress(deadline time.Time) {
	timedOut := false
	timer := time.AfterFunc(time.Until(deadline), func() {
		sc.mu.Lock()
		timedOut = true
		sc.mu.Unlock()
		sc.cond.Broadcast()
	})
	defer timer.Stop()
	sc.mu.Lock()
	for (sc.unflushedLocked() > 0 || sc.writing) && !sc.closed && sc.err == nil && !timedOut {
		sc.cond.Wait()
	}
	sc.mu.Unlock()
}

// teardown closes the connection exactly once: it is called by the
// poller on EOF or error, by the runtime's poison path (CloseTransport),
// by the idle reaper, and by Server.Close — any subset, concurrently.
// The closed flag flips under sc.mu, so an in-flight drain observes it
// on reacquire and releases the staging buffer itself.
func (sc *serverConn) teardown() {
	sc.mu.Lock()
	if sc.tornDown {
		sc.mu.Unlock()
		return
	}
	sc.tornDown = true
	sc.closed = true
	sc.cond.Broadcast()
	sc.mu.Unlock()
	sc.p.delConn(sc)
	sc.nc.Close()
	sc.srv.removeConn(sc)
	sc.srv.rt.CloseConn(sc.cc)
	sc.mu.Lock()
	if !sc.writing {
		sc.resetEgressLocked()
	}
	sc.mu.Unlock()
}

// CloseTransport implements core.TransportCloser: a peer whose stream is
// malformed is disconnected immediately — the connection is torn down
// and no other connection is affected. Pending output is dropped; the
// peer is hostile by definition here.
func (sc *serverConn) CloseTransport() {
	sc.teardown()
}

// ingest hands one read's bytes to the runtime: big reads transfer the
// poller's whole buffer zero-copy (the poller leases a fresh one), small
// reads are copied so the retained scratch stays per-poller. It returns
// the buffer to keep using (nil after a handoff) and whether the
// connection survived.
func (sc *serverConn) ingest(buf []byte, n int) ([]byte, bool) {
	sc.touch()
	if n >= readHandoffSize {
		if err := sc.srv.rt.IngressOwned(sc.cc, buf[:n]); err != nil {
			return nil, false
		}
		return nil, true
	}
	if err := sc.srv.rt.Ingress(sc.cc, buf[:n]); err != nil {
		return buf, false
	}
	return buf, true
}
