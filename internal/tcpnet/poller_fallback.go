//go:build !linux

package tcpnet

import "syscall"

// newPollerSet builds the poller pool on platforms without a raw-fd
// readiness facility wired up: every poller is the portable scan loop.
func newPollerSet(s *Server, n int) []poller {
	return newPortableSet(s, n)
}

// rawFD reports no raw-fd access off Linux, steering every connection to
// the portable poller.
func rawFD(rc syscall.RawConn) (int, bool) { return -1, false }

// sysWriteStep is unreachable off Linux: connections never carry a raw
// fd there, so writeStep always takes the portable path.
func sysWriteStep(rc syscall.RawConn, buf []byte) (int, bool, error) {
	panic("tcpnet: sysWriteStep without platform poller")
}
