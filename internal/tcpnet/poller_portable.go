package tcpnet

import (
	"net"
	"sync"
	"time"
)

// portableReadSlice is the per-connection read deadline one scan pass
// spends waiting for data. Small enough that a handful of connections
// stay responsive, long enough that an idle scan parks in the netpoller
// instead of spinning.
const portableReadSlice = time.Millisecond

// portableIdleSleep is how long an empty poller sleeps between scans.
const portableIdleSleep = 2 * time.Millisecond

// portablePoller is the fallback readiness loop for platforms (or
// connections) without raw-fd polling: one goroutine scans its
// connection set, giving each a short-deadline read and resuming any
// parked egress drains. Latency degrades linearly with the set size —
// the portable poller exists so the full test suite runs everywhere,
// not to hit the scalability targets; those belong to the platform
// pollers.
type portablePoller struct {
	s *Server

	mu     sync.Mutex
	conns  map[*serverConn]struct{}
	closed bool

	stop chan struct{}
	done chan struct{}
	buf  []byte // leased read scratch, handed off on big reads
}

// newPortableSet builds a pool of n portable pollers.
func newPortableSet(s *Server, n int) []poller {
	out := make([]poller, n)
	for i := range out {
		out[i] = newPortablePoller(s)
	}
	return out
}

func newPortablePoller(s *Server) *portablePoller {
	p := &portablePoller{
		s:     s,
		conns: make(map[*serverConn]struct{}),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *portablePoller) addConn(sc *serverConn) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return net.ErrClosed
	}
	p.conns[sc] = struct{}{}
	return nil
}

// armWrite is a no-op: every scan pass checks waitWrite directly.
func (p *portablePoller) armWrite(sc *serverConn) {}

func (p *portablePoller) disarmWrite(sc *serverConn) {}

func (p *portablePoller) delConn(sc *serverConn) {
	p.mu.Lock()
	delete(p.conns, sc)
	p.mu.Unlock()
}

func (p *portablePoller) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	<-p.done
}

func (p *portablePoller) run() {
	defer close(p.done)
	defer func() {
		if p.buf != nil {
			p.s.rt.PutSegment(p.buf)
			p.buf = nil
		}
	}()
	var scratch []*serverConn
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		p.mu.Lock()
		scratch = scratch[:0]
		for sc := range p.conns {
			scratch = append(scratch, sc)
		}
		p.mu.Unlock()
		if len(scratch) == 0 {
			select {
			case <-p.stop:
				return
			case <-time.After(portableIdleSleep):
			}
			continue
		}
		for _, sc := range scratch {
			sc.pollWritable()
			p.readConn(sc)
		}
	}
}

// readConn gives one connection a short-deadline read and routes the
// result: data to the runtime, EOF/error to teardown, timeout onward.
func (p *portablePoller) readConn(sc *serverConn) {
	if p.buf == nil {
		b := p.s.rt.GetSegment(readBufSize)
		p.buf = b[:cap(b)]
	}
	_ = sc.nc.SetReadDeadline(time.Now().Add(portableReadSlice))
	n, err := sc.nc.Read(p.buf)
	if n > 0 {
		var ok bool
		p.buf, ok = sc.ingest(p.buf, n)
		if !ok {
			sc.teardown()
			return
		}
	}
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return
		}
		sc.teardown()
		return
	}
	if n == 0 {
		// A deadline-less zero-byte read without error is EOF on some
		// net.Conn implementations.
		sc.teardown()
	}
}
