package tcpnet

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"zygos/internal/core"
)

// Many callers over a two-socket manager: every call answers correctly
// and the manager never dials more than its socket budget.
func TestConnManagerMultiplexes(t *testing.T) {
	_, _, addr := startReapServer(t, 0, echoHandler)

	m := NewConnManager(addr, 2, time.Second)
	defer m.Close()

	const callers = 8
	const callsPer = 50
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		c, err := m.NewCaller()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id int, c *ManagedCaller) {
			defer wg.Done()
			for j := 0; j < callsPer; j++ {
				want := []byte(fmt.Sprintf("caller-%d-call-%d", id, j))
				got, err := c.Call(want)
				if err != nil {
					errs <- fmt.Errorf("caller %d call %d: %w", id, j, err)
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("caller %d call %d: got %q want %q", id, j, got, want)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := m.Sockets(); n > 2 {
		t.Fatalf("manager dialed %d sockets, budget is 2", n)
	}
}

// Closing one caller must not disturb its siblings on the shared
// socket: the closed caller fails fast, the others keep working.
func TestConnManagerCallerCloseLeavesSocket(t *testing.T) {
	_, _, addr := startReapServer(t, 0, echoHandler)

	m := NewConnManager(addr, 1, time.Second)
	defer m.Close()

	a, err := m.NewCaller()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.NewCaller()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call([]byte("a")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	if _, err := a.Call([]byte("dead")); err == nil {
		t.Fatal("call on closed caller succeeded")
	}
	if got, err := b.Call([]byte("still-here")); err != nil || string(got) != "still-here" {
		t.Fatalf("sibling caller broken after Close: %q %v", got, err)
	}
}

// Closing the manager fails subsequent calls on every caller.
func TestConnManagerCloseFailsCallers(t *testing.T) {
	_, _, addr := startReapServer(t, 0, echoHandler)

	m := NewConnManager(addr, 2, time.Second)
	c, err := m.NewCaller()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := c.Call([]byte("x")); err == nil {
		t.Fatal("call succeeded after manager close")
	}
	if _, err := m.NewCaller(); err == nil {
		t.Fatal("NewCaller succeeded after manager close")
	}
}

// When the server drops a managed socket (here via idle reaping), the
// next call redials transparently instead of failing forever.
func TestConnManagerRedialsAfterServerClose(t *testing.T) {
	_, srv, addr := startReapServer(t, 50*time.Millisecond, echoHandler)

	m := NewConnManager(addr, 1, time.Second)
	defer m.Close()
	c, err := m.NewCaller()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call([]byte("first")); err != nil {
		t.Fatal(err)
	}

	// Wait for the server to reap the idle socket.
	deadline := time.Now().Add(5 * time.Second)
	for srv.NetStats().Open != 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never reaped the managed socket")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A call may race the client noticing the close; it must succeed
	// within a couple of attempts once the redial lands.
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		got, err := c.Call([]byte("again"))
		if err == nil {
			if string(got) != "again" {
				t.Fatalf("redial echo mismatch: %q", got)
			}
			return
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("calls never recovered after server-side close: %v", lastErr)
}

// Rapid calls against a dead address must not hammer the network: the
// first failure opens a jittered backoff window during which calls fail
// fast with ErrDialBackoff and no dial happens; when the window expires
// the manager tries the network again, and once the server returns the
// same caller recovers without intervention.
func TestConnManagerDialBackoff(t *testing.T) {
	// A port that refuses connections: bind, note the address, close.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	m := NewConnManager(addr, 1, 200*time.Millisecond)
	defer m.Close()
	c, err := m.NewCaller()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call([]byte("x")); err == nil {
		t.Fatal("call to dead address succeeded")
	}
	if got := m.Dials(); got != 1 {
		t.Fatalf("dials = %d after first failing call, want 1", got)
	}

	backoffs := 0
	for i := 0; i < 20; i++ {
		_, err := c.Call([]byte("x"))
		if err == nil {
			t.Fatal("call to dead address succeeded")
		}
		if errors.Is(err, ErrDialBackoff) {
			backoffs++
		}
	}
	// The 20 calls take microseconds against a >=10ms window; at most
	// one expiry could race in.
	if got := m.Dials(); got > 2 {
		t.Fatalf("dials = %d during backoff window, want <=2", got)
	}
	if backoffs == 0 {
		t.Fatal("no call failed fast with ErrDialBackoff")
	}

	// Past the first window (<=30ms jittered) the manager must try the
	// network again rather than backing off forever.
	time.Sleep(80 * time.Millisecond)
	before := m.Dials()
	if _, err := c.Call([]byte("x")); err == nil || errors.Is(err, ErrDialBackoff) {
		t.Fatalf("want a fresh dial attempt after window expiry, got err=%v", err)
	}
	if got := m.Dials(); got != before+1 {
		t.Fatalf("dials = %d after window expiry, want %d", got, before+1)
	}

	// Recovery: the server comes back on the same address; once the
	// current window expires the same caller succeeds again.
	rt, err := core.New(core.Config{Cores: 2, Handler: core.HandlerFunc(echoHandler)})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(rt)
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	go srv.Serve(l2)
	t.Cleanup(func() {
		srv.Close()
		rt.Close()
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := c.Call([]byte("back"))
		if err == nil {
			if string(got) != "back" {
				t.Fatalf("recovered echo mismatch: %q", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("caller never recovered after server restart: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
