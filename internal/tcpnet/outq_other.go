//go:build !linux

package tcpnet

import "syscall"

// kernelOutq is unavailable off Linux; the fairness gate sees only the
// staged backlog there.
func kernelOutq(rc syscall.RawConn) int { return 0 }
