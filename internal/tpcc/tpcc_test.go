package tpcc

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"zygos/internal/silo"
)

// smallCfg keeps load time short while exercising all code paths.
func smallCfg() Config {
	return Config{
		Warehouses:           2,
		DistrictsPerWH:       4,
		CustomersPerDistrict: 120,
		Items:                500,
		InitialOrders:        60,
	}
}

func newStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	db := silo.NewDB(time.Millisecond)
	t.Cleanup(db.Close)
	s, err := Load(db, cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadPopulation(t *testing.T) {
	cfg := smallCfg()
	s := newStore(t, cfg)
	if got := s.warehouse.Len(); got != cfg.Warehouses {
		t.Errorf("warehouses: %d", got)
	}
	if got := s.district.Len(); got != cfg.Warehouses*cfg.DistrictsPerWH {
		t.Errorf("districts: %d", got)
	}
	wantCust := cfg.Warehouses * cfg.DistrictsPerWH * cfg.CustomersPerDistrict
	if got := s.customer.Len(); got != wantCust {
		t.Errorf("customers: %d want %d", got, wantCust)
	}
	if got := s.customerName.Len(); got != wantCust {
		t.Errorf("customer-name index: %d want %d", got, wantCust)
	}
	if got := s.item.Len(); got != cfg.Items {
		t.Errorf("items: %d", got)
	}
	if got := s.stock.Len(); got != cfg.Warehouses*cfg.Items {
		t.Errorf("stock: %d", got)
	}
	wantOrders := cfg.Warehouses * cfg.DistrictsPerWH * cfg.InitialOrders
	if got := s.order.Len(); got != wantOrders {
		t.Errorf("orders: %d want %d", got, wantOrders)
	}
	// 30% of initial orders are undelivered.
	wantNO := cfg.Warehouses * cfg.DistrictsPerWH * (cfg.InitialOrders * 3 / 10)
	if got := s.newOrder.Len(); got != wantNO {
		t.Errorf("new-orders: %d want %d", got, wantNO)
	}
}

func TestFreshLoadIsConsistent(t *testing.T) {
	s := newStore(t, smallCfg())
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestLastName(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Errorf("LastName(0) = %q", LastName(0))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Errorf("LastName(999) = %q", LastName(999))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Errorf("LastName(371) = %q", LastName(371))
	}
}

func TestNURandInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := nuRand(rng, 1023, 1, 3000, cRun)
		if v < 1 || v > 3000 {
			t.Fatalf("nuRand out of range: %d", v)
		}
	}
}

func TestNewOrderCommitsAndAdvancesDistrict(t *testing.T) {
	s := newStore(t, smallCfg())
	rng := rand.New(rand.NewSource(2))
	before := map[string]uint32{}
	s.DB.Run(0, 0, func(tx *silo.Txn) error {
		for d := uint32(1); d <= uint32(s.Cfg.DistrictsPerWH); d++ {
			dv, _ := tx.Get(s.district, DistrictKey(1, d))
			before[string(DistrictKey(1, d))] = dv.(*District).NextOID
		}
		return nil
	})
	committed := 0
	for i := 0; i < 50; i++ {
		err := s.NewOrder(0, rng, 1)
		if err == nil {
			committed++
		} else if !errors.Is(err, silo.ErrUserAbort) {
			t.Fatal(err)
		}
	}
	if committed == 0 {
		t.Fatal("no NewOrder committed")
	}
	total := uint32(0)
	s.DB.Run(0, 0, func(tx *silo.Txn) error {
		total = 0
		for d := uint32(1); d <= uint32(s.Cfg.DistrictsPerWH); d++ {
			dv, _ := tx.Get(s.district, DistrictKey(1, d))
			total += dv.(*District).NextOID - before[string(DistrictKey(1, d))]
		}
		return nil
	})
	if int(total) != committed {
		t.Fatalf("district counters advanced %d, committed %d", total, committed)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestNewOrderRollbackRate(t *testing.T) {
	s := newStore(t, smallCfg())
	rng := rand.New(rand.NewSource(3))
	aborts := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if err := s.NewOrder(0, rng, 1); errors.Is(err, silo.ErrUserAbort) {
			aborts++
		}
	}
	// Spec: 1% intentional rollbacks. Allow 0.3%..3% at this sample size.
	if aborts < n/333 || aborts > n*3/100 {
		t.Errorf("rollback rate %d/%d outside ~1%%", aborts, n)
	}
}

func TestPaymentUpdatesBalances(t *testing.T) {
	s := newStore(t, smallCfg())
	rng := rand.New(rand.NewSource(4))
	var wBefore float64
	s.DB.Run(0, 0, func(tx *silo.Txn) error {
		wv, _ := tx.Get(s.warehouse, WarehouseKey(1))
		wBefore = wv.(*Warehouse).YTD
		return nil
	})
	for i := 0; i < 100; i++ {
		if err := s.Payment(0, rng, 1); err != nil {
			t.Fatal(err)
		}
	}
	var wAfter float64
	s.DB.Run(0, 0, func(tx *silo.Txn) error {
		wv, _ := tx.Get(s.warehouse, WarehouseKey(1))
		wAfter = wv.(*Warehouse).YTD
		return nil
	})
	if wAfter <= wBefore {
		t.Fatal("warehouse YTD did not grow")
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderStatusAndStockLevelReadOnly(t *testing.T) {
	s := newStore(t, smallCfg())
	rng := rand.New(rand.NewSource(5))
	c0, _ := s.DB.Stats()
	for i := 0; i < 50; i++ {
		if err := s.OrderStatus(0, rng, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.StockLevel(0, rng, 1, uint32(1+rng.Intn(s.Cfg.DistrictsPerWH))); err != nil {
			t.Fatal(err)
		}
	}
	c1, _ := s.DB.Stats()
	if c1-c0 != 100 {
		t.Fatalf("committed %d read-only transactions, want 100", c1-c0)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryConsumesNewOrders(t *testing.T) {
	s := newStore(t, smallCfg())
	rng := rand.New(rand.NewSource(6))
	before := s.newOrder.Len()
	if err := s.Delivery(0, rng, 1); err != nil {
		t.Fatal(err)
	}
	after := s.newOrder.Len()
	if after >= before {
		t.Fatalf("delivery consumed nothing: %d -> %d", before, after)
	}
	// One order per district at most.
	if before-after > s.Cfg.DistrictsPerWH {
		t.Fatalf("delivery consumed %d orders, max %d", before-after, s.Cfg.DistrictsPerWH)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPickMix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	counts := map[TxType]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[Pick(rng)]++
	}
	within := func(tt TxType, want, tol float64) {
		got := float64(counts[tt]) / n
		if got < want-tol || got > want+tol {
			t.Errorf("%v rate %.3f, want %.2f±%.2f", tt, got, want, tol)
		}
	}
	within(TxNewOrder, 0.45, 0.01)
	within(TxPayment, 0.43, 0.01)
	within(TxOrderStatus, 0.04, 0.005)
	within(TxDelivery, 0.04, 0.005)
	within(TxStockLevel, 0.04, 0.005)
}

func TestTxTypeString(t *testing.T) {
	names := []string{"NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"}
	for i, want := range names {
		if TxType(i).String() != want {
			t.Errorf("TxType(%d) = %q", i, TxType(i).String())
		}
	}
	if TxType(99).String() == "" {
		t.Error("unknown type must render")
	}
}

// The headline integration test: hammer the full mix concurrently, then
// verify all four consistency conditions.
func TestConcurrentMixConsistency(t *testing.T) {
	s := newStore(t, smallCfg())
	const workers = 4
	const perWorker = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perWorker; i++ {
				tt := Pick(rng)
				if err := s.Run(w, rng, tt); err != nil && !errors.Is(err, silo.ErrUserAbort) {
					t.Errorf("worker %d %v: %v", w, tt, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	c, a := s.DB.Stats()
	t.Logf("commits=%d aborts=%d", c, a)
	if c < workers*perWorker/2 {
		t.Fatalf("too few commits: %d", c)
	}
}

func TestRunUnknownType(t *testing.T) {
	s := newStore(t, smallCfg())
	if err := s.Run(0, rand.New(rand.NewSource(1)), TxType(42)); err == nil {
		t.Fatal("unknown tx type must error")
	}
}
