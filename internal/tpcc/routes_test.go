package tpcc

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"zygos"
	"zygos/internal/silo"
)

func TestMethodTxRoundTrip(t *testing.T) {
	for tt := TxNewOrder; tt < numTxTypes; tt++ {
		got, ok := MethodTx(tt.Method())
		if !ok || got != tt {
			t.Fatalf("MethodTx(%v.Method()) = %v %v", tt, got, ok)
		}
	}
	if _, ok := MethodTx(0); ok {
		t.Fatal("method 0 is the legacy mix, not a transaction")
	}
	if _, ok := MethodTx(uint16(numTxTypes) + 1); ok {
		t.Fatal("out-of-range method must not map")
	}
}

func TestPickMethodMix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	counts := map[uint16]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[PickMethod(rng)]++
	}
	frac := float64(counts[TxNewOrder.Method()]) / n
	if frac < 0.40 || frac > 0.50 {
		t.Fatalf("NewOrder fraction %.3f, want ~0.45", frac)
	}
	for tt := TxNewOrder; tt < numTxTypes; tt++ {
		if counts[tt.Method()] == 0 {
			t.Fatalf("%v never drawn", tt)
		}
	}
}

// The routed server executes each transaction type on its own method,
// answers the legacy method-0 mix, and rejects unknown methods with
// StatusNoMethod — TPC-C over RPC without the server-side opcode
// switch.
func TestRoutedTransactions(t *testing.T) {
	db := silo.NewDB(time.Millisecond)
	defer db.Close()
	store, err := Load(db, smallCfg(), 42)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := zygos.NewServer(zygos.Config{Cores: 2, Handler: store.NewMux(7).Handler()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := srv.NewClient()
	defer c.Close()

	for tt := TxNewOrder; tt < numTxTypes; tt++ {
		for i := 0; i < 5; i++ {
			resp, err := c.CallMethod(tt.Method(), nil)
			if err != nil {
				t.Fatalf("%v: %v", tt, err)
			}
			if len(resp) != 1 || resp[0] != 0 {
				t.Fatalf("%v reply %v", tt, resp)
			}
		}
	}
	// Legacy clients draw the mix server-side on method 0.
	if resp, err := c.Call([]byte{0}); err != nil || len(resp) != 1 || resp[0] != 0 {
		t.Fatalf("legacy mix: %v %v", resp, err)
	}
	var se *zygos.StatusError
	if _, err := c.CallMethod(99, nil); !errors.As(err, &se) || se.Code != zygos.StatusNoMethod {
		t.Fatalf("unknown method: %v", err)
	}
	commits, _ := db.Stats()
	if commits == 0 {
		t.Fatal("no transactions committed")
	}
	if err := store.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
