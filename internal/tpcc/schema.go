// Package tpcc implements the TPC-C transaction mix over the Silo-style
// engine, as the ZygOS paper's §6.3 evaluation does: the nine standard
// tables, two secondary indexes (customer-by-name, order-by-customer),
// data population per the specification's distributions, and the five
// transactions (NewOrder, Payment, OrderStatus, Delivery, StockLevel)
// with the standard 45/43/4/4/4 mix.
package tpcc

import (
	"encoding/binary"
	"time"
)

// Row types mirror the TPC-C schema. Rows are immutable once installed;
// transactions copy-and-replace (the engine's write model).

// Warehouse is one row of the WAREHOUSE table.
type Warehouse struct {
	ID      uint32
	Name    string
	Street1 string
	City    string
	State   string
	Zip     string
	Tax     float64
	YTD     float64
}

// District is one row of the DISTRICT table.
type District struct {
	WID     uint32
	ID      uint32
	Name    string
	Street1 string
	City    string
	Tax     float64
	YTD     float64
	NextOID uint32
}

// Customer is one row of the CUSTOMER table.
type Customer struct {
	WID         uint32
	DID         uint32
	ID          uint32
	First       string
	Middle      string
	Last        string
	Street1     string
	City        string
	State       string
	Zip         string
	Phone       string
	Since       time.Time
	Credit      string // "GC" or "BC"
	CreditLim   float64
	Discount    float64
	Balance     float64
	YTDPayment  float64
	PaymentCnt  uint32
	DeliveryCnt uint32
	Data        string
}

// History is one row of the HISTORY table.
type History struct {
	CID    uint32
	CDID   uint32
	CWID   uint32
	DID    uint32
	WID    uint32
	Date   time.Time
	Amount float64
	Data   string
}

// NewOrderRow is one row of the NEW-ORDER table.
type NewOrderRow struct {
	OID uint32
	DID uint32
	WID uint32
}

// Order is one row of the ORDER table.
type Order struct {
	ID        uint32
	DID       uint32
	WID       uint32
	CID       uint32
	EntryDate time.Time
	Carrier   uint32 // 0 means not yet delivered
	OLCount   uint32
	AllLocal  bool
}

// OrderLine is one row of the ORDER-LINE table.
type OrderLine struct {
	OID       uint32
	DID       uint32
	WID       uint32
	Number    uint32
	IID       uint32
	SupplyWID uint32
	Delivery  time.Time // zero until delivered
	Quantity  uint32
	Amount    float64
	DistInfo  string
}

// Item is one row of the ITEM table.
type Item struct {
	ID    uint32
	ImID  uint32
	Name  string
	Price float64
	Data  string
}

// Stock is one row of the STOCK table.
type Stock struct {
	WID       uint32
	IID       uint32
	Quantity  int32
	Dists     [10]string
	YTD       float64
	OrderCnt  uint32
	RemoteCnt uint32
	Data      string
}

// Table names.
const (
	TabWarehouse    = "warehouse"
	TabDistrict     = "district"
	TabCustomer     = "customer"
	TabCustomerName = "customer_name" // secondary: (w,d,last,first,c) -> c
	TabHistory      = "history"
	TabNewOrder     = "new_order"
	TabOrder        = "order"
	TabOrderCust    = "order_cust" // secondary: (w,d,c,^o) -> o
	TabOrderLine    = "order_line"
	TabItem         = "item"
	TabStock        = "stock"
)

// Tables lists every table the workload creates.
var Tables = []string{
	TabWarehouse, TabDistrict, TabCustomer, TabCustomerName, TabHistory,
	TabNewOrder, TabOrder, TabOrderCust, TabOrderLine, TabItem, TabStock,
}

// Key encoders. All composite keys are big-endian so byte order equals
// numeric order in the B+-tree.

func u32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

// padStr right-pads (or truncates) s to n bytes so string fields compare
// with fixed width inside composite keys.
func padStr(b []byte, s string, n int) []byte {
	for i := 0; i < n; i++ {
		if i < len(s) {
			b = append(b, s[i])
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// WarehouseKey encodes (w).
func WarehouseKey(w uint32) []byte { return u32(nil, w) }

// DistrictKey encodes (w, d).
func DistrictKey(w, d uint32) []byte { return u32(u32(nil, w), d) }

// CustomerKey encodes (w, d, c).
func CustomerKey(w, d, c uint32) []byte { return u32(u32(u32(nil, w), d), c) }

// CustomerNameKey encodes (w, d, last, first, c) for the by-name index.
func CustomerNameKey(w, d uint32, last, first string, c uint32) []byte {
	b := u32(u32(nil, w), d)
	b = padStr(b, last, 16)
	b = padStr(b, first, 16)
	return u32(b, c)
}

// CustomerNamePrefix encodes the scan prefix (w, d, last).
func CustomerNamePrefix(w, d uint32, last string) []byte {
	b := u32(u32(nil, w), d)
	return padStr(b, last, 16)
}

// HistoryKey encodes (w, d, c, seq); seq disambiguates multiple payments.
func HistoryKey(w, d, c, seq uint32) []byte {
	return u32(u32(u32(u32(nil, w), d), c), seq)
}

// NewOrderKey encodes (w, d, o); ascending scans find the oldest
// undelivered order first.
func NewOrderKey(w, d, o uint32) []byte { return u32(u32(u32(nil, w), d), o) }

// OrderKey encodes (w, d, o).
func OrderKey(w, d, o uint32) []byte { return u32(u32(u32(nil, w), d), o) }

// OrderCustKey encodes (w, d, c, ^o): the order id is bit-inverted so an
// ascending scan yields the most recent order first (OrderStatus needs
// the newest order; the tree only scans ascending).
func OrderCustKey(w, d, c, o uint32) []byte {
	return u32(u32(u32(u32(nil, w), d), c), ^o)
}

// OrderCustPrefix encodes the scan prefix (w, d, c).
func OrderCustPrefix(w, d, c uint32) []byte {
	return u32(u32(u32(nil, w), d), c)
}

// OrderLineKey encodes (w, d, o, n).
func OrderLineKey(w, d, o, n uint32) []byte {
	return u32(u32(u32(u32(nil, w), d), o), n)
}

// OrderLinePrefix encodes the scan prefix (w, d, o).
func OrderLinePrefix(w, d, o uint32) []byte {
	return u32(u32(u32(nil, w), d), o)
}

// ItemKey encodes (i).
func ItemKey(i uint32) []byte { return u32(nil, i) }

// StockKey encodes (w, i).
func StockKey(w, i uint32) []byte { return u32(u32(nil, w), i) }

// PrefixEnd returns the exclusive upper bound for scanning all keys with
// the given prefix: the prefix with its last byte "incremented" with
// carry. A nil return means scan to the end of the table.
func PrefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xff {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
