package tpcc

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"zygos/internal/silo"
)

// TxType identifies one of the five TPC-C transactions.
type TxType int

// The five transactions.
const (
	TxNewOrder TxType = iota
	TxPayment
	TxOrderStatus
	TxDelivery
	TxStockLevel
	numTxTypes
)

// String implements fmt.Stringer.
func (t TxType) String() string {
	switch t {
	case TxNewOrder:
		return "NewOrder"
	case TxPayment:
		return "Payment"
	case TxOrderStatus:
		return "OrderStatus"
	case TxDelivery:
		return "Delivery"
	case TxStockLevel:
		return "StockLevel"
	}
	return fmt.Sprintf("TxType(%d)", int(t))
}

// nuRand is the specification's non-uniform random function (2.1.6).
func nuRand(rng *rand.Rand, a, x, y int, c uint32) int {
	return ((rng.Intn(a+1)|(x+rng.Intn(y-x+1)))+int(c))%(y-x+1) + x
}

// cRun is the NURand C constant used at run time (valid per spec 2.1.6.1
// relative to the load-time constant).
const cRun = 97

func (s *Store) randCustomerID(rng *rand.Rand) uint32 {
	return uint32(nuRand(rng, 1023, 1, s.Cfg.CustomersPerDistrict, cRun))
}

func (s *Store) randItemID(rng *rand.Rand) uint32 {
	return uint32(nuRand(rng, 8191, 1, s.Cfg.Items, cRun))
}

func (s *Store) randLastName(rng *rand.Rand) string {
	max := 999
	if s.Cfg.CustomersPerDistrict < 1000 {
		max = s.Cfg.CustomersPerDistrict - 1
	}
	return LastName(nuRand(rng, 255, 0, max, cRun))
}

// Pick selects the next transaction type with the standard 45/43/4/4/4
// mix.
func Pick(rng *rand.Rand) TxType {
	r := rng.Intn(100)
	switch {
	case r < 45:
		return TxNewOrder
	case r < 88:
		return TxPayment
	case r < 92:
		return TxOrderStatus
	case r < 96:
		return TxDelivery
	default:
		return TxStockLevel
	}
}

// Run executes one transaction of the given type against a uniformly
// chosen home warehouse, retrying on conflicts. It returns ErrUserAbort
// for the 1% of NewOrder transactions the spec rolls back.
func (s *Store) Run(worker int, rng *rand.Rand, tt TxType) error {
	w := uint32(1 + rng.Intn(s.Cfg.Warehouses))
	switch tt {
	case TxNewOrder:
		return s.NewOrder(worker, rng, w)
	case TxPayment:
		return s.Payment(worker, rng, w)
	case TxOrderStatus:
		return s.OrderStatus(worker, rng, w)
	case TxDelivery:
		return s.Delivery(worker, rng, w)
	case TxStockLevel:
		return s.StockLevel(worker, rng, w, uint32(1+rng.Intn(s.Cfg.DistrictsPerWH)))
	}
	return fmt.Errorf("tpcc: unknown transaction %v", tt)
}

// NewOrder implements TPC-C §2.4. 1% of invocations roll back on an
// unused item id, per the specification.
func (s *Store) NewOrder(worker int, rng *rand.Rand, w uint32) error {
	d := uint32(1 + rng.Intn(s.Cfg.DistrictsPerWH))
	c := s.randCustomerID(rng)
	olCnt := 5 + rng.Intn(11)
	rollback := rng.Intn(100) == 0

	type line struct {
		iid    uint32
		supply uint32
		qty    uint32
	}
	lines := make([]line, olCnt)
	allLocal := true
	for i := range lines {
		lines[i].iid = s.randItemID(rng)
		if rollback && i == olCnt-1 {
			lines[i].iid = uint32(s.Cfg.Items) + 1 // unused item id
		}
		lines[i].supply = w
		if s.Cfg.Warehouses > 1 && rng.Intn(100) == 0 {
			for {
				r := uint32(1 + rng.Intn(s.Cfg.Warehouses))
				if r != w {
					lines[i].supply = r
					allLocal = false
					break
				}
			}
		}
		lines[i].qty = uint32(1 + rng.Intn(10))
	}

	return s.DB.Run(worker, 0, func(tx *silo.Txn) error {
		wv, ok := tx.Get(s.warehouse, WarehouseKey(w))
		if !ok {
			return fmt.Errorf("tpcc: warehouse %d missing", w)
		}
		wh := wv.(*Warehouse)

		dv, ok := tx.Get(s.district, DistrictKey(w, d))
		if !ok {
			return fmt.Errorf("tpcc: district %d/%d missing", w, d)
		}
		dist := *dv.(*District)
		oid := dist.NextOID
		dist.NextOID++
		tx.Put(s.district, DistrictKey(w, d), &dist)

		cv, ok := tx.Get(s.customer, CustomerKey(w, d, c))
		if !ok {
			return fmt.Errorf("tpcc: customer %d/%d/%d missing", w, d, c)
		}
		cust := cv.(*Customer)

		total := 0.0
		for i, ln := range lines {
			iv, ok := tx.Get(s.item, ItemKey(ln.iid))
			if !ok {
				// Unused item: the spec's intentional rollback path.
				return silo.ErrUserAbort
			}
			item := iv.(*Item)

			sv, ok := tx.Get(s.stock, StockKey(ln.supply, ln.iid))
			if !ok {
				return fmt.Errorf("tpcc: stock %d/%d missing", ln.supply, ln.iid)
			}
			st := *sv.(*Stock)
			if st.Quantity >= int32(ln.qty)+10 {
				st.Quantity -= int32(ln.qty)
			} else {
				st.Quantity = st.Quantity - int32(ln.qty) + 91
			}
			st.YTD += float64(ln.qty)
			st.OrderCnt++
			if ln.supply != w {
				st.RemoteCnt++
			}
			tx.Put(s.stock, StockKey(ln.supply, ln.iid), &st)

			amount := float64(ln.qty) * item.Price
			total += amount
			tx.Insert(s.orderLine, OrderLineKey(w, d, oid, uint32(i+1)), &OrderLine{
				OID: oid, DID: d, WID: w, Number: uint32(i + 1),
				IID: ln.iid, SupplyWID: ln.supply,
				Quantity: ln.qty, Amount: amount,
				DistInfo: st.Dists[d-1],
			})
		}
		total *= (1 - cust.Discount) * (1 + wh.Tax + dist.Tax)

		tx.Insert(s.order, OrderKey(w, d, oid), &Order{
			ID: oid, DID: d, WID: w, CID: c,
			EntryDate: time.Now(), OLCount: uint32(olCnt), AllLocal: allLocal,
		})
		tx.Insert(s.orderCust, OrderCustKey(w, d, c, oid), oid)
		tx.Insert(s.newOrder, NewOrderKey(w, d, oid), &NewOrderRow{OID: oid, DID: d, WID: w})
		return nil
	})
}

// lookupCustomer resolves a customer by id (40%) or by last name (60%),
// per §2.5.1.2/§2.6.1.2: by-name picks the ceil(n/2)-th customer in
// first-name order.
func (s *Store) lookupCustomer(tx *silo.Txn, rng *rand.Rand, w, d uint32, byName bool) (*Customer, error) {
	if !byName {
		c := s.randCustomerID(rng)
		cv, ok := tx.Get(s.customer, CustomerKey(w, d, c))
		if !ok {
			return nil, fmt.Errorf("tpcc: customer %d/%d/%d missing", w, d, c)
		}
		return cv.(*Customer), nil
	}
	last := s.randLastName(rng)
	prefix := CustomerNamePrefix(w, d, last)
	var ids []uint32
	tx.Scan(s.customerName, prefix, PrefixEnd(prefix), func(key []byte, row any) bool {
		ids = append(ids, row.(uint32))
		return true
	})
	if len(ids) == 0 {
		// The run-time C constant can generate names with no customers at
		// small scale factors; treat as a skippable transaction.
		return nil, errNoSuchCustomer
	}
	c := ids[(len(ids)-1)/2] // ceil(n/2)-th, 1-based
	cv, ok := tx.Get(s.customer, CustomerKey(w, d, c))
	if !ok {
		return nil, fmt.Errorf("tpcc: named customer %d/%d/%d missing", w, d, c)
	}
	return cv.(*Customer), nil
}

var errNoSuchCustomer = errors.New("tpcc: no customer with generated last name")

// Payment implements TPC-C §2.5.
func (s *Store) Payment(worker int, rng *rand.Rand, w uint32) error {
	d := uint32(1 + rng.Intn(s.Cfg.DistrictsPerWH))
	amount := 1 + rng.Float64()*4999
	byName := rng.Intn(100) < 60

	// 15% of payments are for a customer of a remote warehouse.
	cw, cd := w, d
	if s.Cfg.Warehouses > 1 && rng.Intn(100) < 15 {
		for {
			r := uint32(1 + rng.Intn(s.Cfg.Warehouses))
			if r != w {
				cw = r
				cd = uint32(1 + rng.Intn(s.Cfg.DistrictsPerWH))
				break
			}
		}
	}

	err := s.DB.Run(worker, 0, func(tx *silo.Txn) error {
		wv, ok := tx.Get(s.warehouse, WarehouseKey(w))
		if !ok {
			return fmt.Errorf("tpcc: warehouse %d missing", w)
		}
		wh := *wv.(*Warehouse)
		wh.YTD += amount
		tx.Put(s.warehouse, WarehouseKey(w), &wh)

		dv, ok := tx.Get(s.district, DistrictKey(w, d))
		if !ok {
			return fmt.Errorf("tpcc: district %d/%d missing", w, d)
		}
		dist := *dv.(*District)
		dist.YTD += amount
		tx.Put(s.district, DistrictKey(w, d), &dist)

		custPtr, err := s.lookupCustomer(tx, rng, cw, cd, byName)
		if err != nil {
			return err
		}
		cust := *custPtr
		cust.Balance -= amount
		cust.YTDPayment += amount
		cust.PaymentCnt++
		if cust.Credit == "BC" {
			data := fmt.Sprintf("%d %d %d %d %d %.2f|%s", cust.ID, cd, cw, d, w, amount, cust.Data)
			if len(data) > 500 {
				data = data[:500]
			}
			cust.Data = data
		}
		tx.Put(s.customer, CustomerKey(cw, cd, cust.ID), &cust)

		tx.Insert(s.history, HistoryKey(w, d, cust.ID, s.histSeq.Add(1)), &History{
			CID: cust.ID, CDID: cd, CWID: cw, DID: d, WID: w,
			Date: time.Now(), Amount: amount,
			Data: wh.Name + "    " + dist.Name,
		})
		return nil
	})
	if errors.Is(err, errNoSuchCustomer) {
		return nil // skipped, counts as a no-op rather than a failure
	}
	return err
}

// OrderStatus implements TPC-C §2.6 (read-only).
func (s *Store) OrderStatus(worker int, rng *rand.Rand, w uint32) error {
	d := uint32(1 + rng.Intn(s.Cfg.DistrictsPerWH))
	byName := rng.Intn(100) < 60
	err := s.DB.Run(worker, 0, func(tx *silo.Txn) error {
		cust, err := s.lookupCustomer(tx, rng, w, d, byName)
		if err != nil {
			return err
		}
		// Most recent order: the order-by-customer index stores ^o, so
		// the first entry of an ascending scan is the newest order.
		var oid uint32
		found := false
		prefix := OrderCustPrefix(w, d, cust.ID)
		tx.Scan(s.orderCust, prefix, PrefixEnd(prefix), func(key []byte, row any) bool {
			oid = row.(uint32)
			found = true
			return false
		})
		if !found {
			return nil // customer has no orders (possible at small scale)
		}
		ov, ok := tx.Get(s.order, OrderKey(w, d, oid))
		if !ok {
			return fmt.Errorf("tpcc: order %d/%d/%d missing", w, d, oid)
		}
		order := ov.(*Order)
		n := uint32(0)
		lp := OrderLinePrefix(w, d, oid)
		tx.Scan(s.orderLine, lp, PrefixEnd(lp), func(key []byte, row any) bool {
			n++
			return true
		})
		if n != order.OLCount {
			return fmt.Errorf("tpcc: order %d has %d lines, expected %d", oid, n, order.OLCount)
		}
		return nil
	})
	if errors.Is(err, errNoSuchCustomer) {
		return nil
	}
	return err
}

// Delivery implements TPC-C §2.7: one batch delivering the oldest
// undelivered order of every district.
func (s *Store) Delivery(worker int, rng *rand.Rand, w uint32) error {
	carrier := uint32(1 + rng.Intn(10))
	now := time.Now()
	return s.DB.Run(worker, 0, func(tx *silo.Txn) error {
		for d := uint32(1); d <= uint32(s.Cfg.DistrictsPerWH); d++ {
			// Oldest undelivered order.
			var oid uint32
			found := false
			prefix := NewOrderKey(w, d, 0)[:8] // (w, d) prefix
			tx.Scan(s.newOrder, prefix, PrefixEnd(prefix), func(key []byte, row any) bool {
				oid = row.(*NewOrderRow).OID
				found = true
				return false
			})
			if !found {
				continue
			}
			tx.Delete(s.newOrder, NewOrderKey(w, d, oid))

			ov, ok := tx.Get(s.order, OrderKey(w, d, oid))
			if !ok {
				return fmt.Errorf("tpcc: undelivered order %d/%d/%d missing", w, d, oid)
			}
			order := *ov.(*Order)
			order.Carrier = carrier
			tx.Put(s.order, OrderKey(w, d, oid), &order)

			total := 0.0
			lp := OrderLinePrefix(w, d, oid)
			type olUpd struct {
				key []byte
				row OrderLine
			}
			var upds []olUpd
			tx.Scan(s.orderLine, lp, PrefixEnd(lp), func(key []byte, row any) bool {
				ol := *row.(*OrderLine)
				total += ol.Amount
				ol.Delivery = now
				upds = append(upds, olUpd{key: append([]byte(nil), key...), row: ol})
				return true
			})
			for i := range upds {
				tx.Put(s.orderLine, upds[i].key, &upds[i].row)
			}

			cv, ok := tx.Get(s.customer, CustomerKey(w, d, order.CID))
			if !ok {
				return fmt.Errorf("tpcc: customer %d/%d/%d missing", w, d, order.CID)
			}
			cust := *cv.(*Customer)
			cust.Balance += total
			cust.DeliveryCnt++
			tx.Put(s.customer, CustomerKey(w, d, order.CID), &cust)
		}
		return nil
	})
}

// StockLevel implements TPC-C §2.8 (read-only): count distinct items from
// the district's last 20 orders with stock below a threshold.
func (s *Store) StockLevel(worker int, rng *rand.Rand, w, d uint32) error {
	threshold := int32(10 + rng.Intn(11))
	return s.DB.Run(worker, 0, func(tx *silo.Txn) error {
		dv, ok := tx.Get(s.district, DistrictKey(w, d))
		if !ok {
			return fmt.Errorf("tpcc: district %d/%d missing", w, d)
		}
		next := dv.(*District).NextOID
		lo := uint32(1)
		if next > 20 {
			lo = next - 20
		}
		seen := make(map[uint32]struct{})
		from := OrderLineKey(w, d, lo, 0)
		to := OrderLineKey(w, d, next, 0)
		tx.Scan(s.orderLine, from, to, func(key []byte, row any) bool {
			seen[row.(*OrderLine).IID] = struct{}{}
			return true
		})
		low := 0
		for iid := range seen {
			sv, ok := tx.Get(s.stock, StockKey(w, iid))
			if !ok {
				continue
			}
			if sv.(*Stock).Quantity < threshold {
				low++
			}
		}
		_ = low
		return nil
	})
}
