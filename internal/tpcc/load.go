package tpcc

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"zygos/internal/silo"
)

// Config scales the TPC-C population. The specification's values are the
// defaults; tests shrink Items/CustomersPerDistrict to keep load times
// short — the transaction logic is scale-independent.
type Config struct {
	Warehouses           int
	DistrictsPerWH       int // spec: 10
	CustomersPerDistrict int // spec: 3000
	Items                int // spec: 100000
	InitialOrders        int // orders pre-loaded per district; spec: 3000
}

func (c *Config) fillDefaults() {
	if c.Warehouses <= 0 {
		c.Warehouses = 1
	}
	if c.DistrictsPerWH <= 0 {
		c.DistrictsPerWH = 10
	}
	if c.CustomersPerDistrict <= 0 {
		c.CustomersPerDistrict = 3000
	}
	if c.Items <= 0 {
		c.Items = 100000
	}
	if c.InitialOrders < 0 || c.InitialOrders > c.CustomersPerDistrict {
		c.InitialOrders = c.CustomersPerDistrict
	}
	if c.InitialOrders == 0 {
		c.InitialOrders = min(c.CustomersPerDistrict, 100)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Store binds a populated TPC-C database to its configuration.
type Store struct {
	DB  *silo.DB
	Cfg Config

	warehouse, district, customer, customerName *silo.Table
	history, newOrder, order, orderCust         *silo.Table
	orderLine, item, stock                      *silo.Table

	histSeq atomic.Uint32
	cLoad   uint32 // NURand C constant used at load time for C_LAST
}

// Syllables builds TPC-C customer last names (spec 4.3.2.3).
var Syllables = [10]string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// LastName composes the spec last name for a number in [0, 999].
func LastName(num int) string {
	return Syllables[num/100%10] + Syllables[num/10%10] + Syllables[num%10]
}

// Load creates the schema and populates it per the specification's
// distributions. It must run before any transactions.
func Load(db *silo.DB, cfg Config, seed int64) (*Store, error) {
	cfg.fillDefaults()
	s := &Store{DB: db, Cfg: cfg, cLoad: 123}
	for _, name := range Tables {
		if _, err := db.CreateTable(name); err != nil {
			return nil, fmt.Errorf("tpcc: %w", err)
		}
	}
	s.warehouse = db.MustTable(TabWarehouse)
	s.district = db.MustTable(TabDistrict)
	s.customer = db.MustTable(TabCustomer)
	s.customerName = db.MustTable(TabCustomerName)
	s.history = db.MustTable(TabHistory)
	s.newOrder = db.MustTable(TabNewOrder)
	s.order = db.MustTable(TabOrder)
	s.orderCust = db.MustTable(TabOrderCust)
	s.orderLine = db.MustTable(TabOrderLine)
	s.item = db.MustTable(TabItem)
	s.stock = db.MustTable(TabStock)

	rng := rand.New(rand.NewSource(seed))
	s.loadItems(rng)
	for w := 1; w <= cfg.Warehouses; w++ {
		s.loadWarehouse(rng, uint32(w))
	}
	return s, nil
}

func randAString(rng *rand.Rand, lo, hi int) string {
	n := lo + rng.Intn(hi-lo+1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func randZip(rng *rand.Rand) string {
	return fmt.Sprintf("%04d11111", rng.Intn(10000))
}

func (s *Store) loadItems(rng *rand.Rand) {
	for i := 1; i <= s.Cfg.Items; i++ {
		data := randAString(rng, 26, 50)
		if rng.Intn(10) == 0 {
			data = data[:len(data)/2] + "ORIGINAL" + data[len(data)/2:]
		}
		s.item.LoadInsert(ItemKey(uint32(i)), &Item{
			ID:    uint32(i),
			ImID:  uint32(1 + rng.Intn(10000)),
			Name:  randAString(rng, 14, 24),
			Price: 1 + rng.Float64()*99,
			Data:  data,
		})
	}
}

func (s *Store) loadWarehouse(rng *rand.Rand, w uint32) {
	s.warehouse.LoadInsert(WarehouseKey(w), &Warehouse{
		ID:      w,
		Name:    randAString(rng, 6, 10),
		Street1: randAString(rng, 10, 20),
		City:    randAString(rng, 10, 20),
		State:   randAString(rng, 2, 2),
		Zip:     randZip(rng),
		Tax:     rng.Float64() * 0.2,
		// Consistency condition 1 requires W_YTD = Σ D_YTD at load time;
		// the spec's 300000 assumes exactly 10 districts.
		YTD: 30000 * float64(s.Cfg.DistrictsPerWH),
	})
	for i := 1; i <= s.Cfg.Items; i++ {
		var dists [10]string
		for d := range dists {
			dists[d] = randAString(rng, 24, 24)
		}
		data := randAString(rng, 26, 50)
		if rng.Intn(10) == 0 {
			data = data[:len(data)/2] + "ORIGINAL" + data[len(data)/2:]
		}
		s.stock.LoadInsert(StockKey(w, uint32(i)), &Stock{
			WID:      w,
			IID:      uint32(i),
			Quantity: int32(10 + rng.Intn(91)),
			Dists:    dists,
			Data:     data,
		})
	}
	for d := 1; d <= s.Cfg.DistrictsPerWH; d++ {
		s.loadDistrict(rng, w, uint32(d))
	}
}

func (s *Store) loadDistrict(rng *rand.Rand, w, d uint32) {
	nCust := s.Cfg.CustomersPerDistrict
	nOrders := s.Cfg.InitialOrders
	s.district.LoadInsert(DistrictKey(w, d), &District{
		WID:     w,
		ID:      d,
		Name:    randAString(rng, 6, 10),
		Street1: randAString(rng, 10, 20),
		City:    randAString(rng, 10, 20),
		Tax:     rng.Float64() * 0.2,
		YTD:     30000,
		NextOID: uint32(nOrders + 1),
	})
	for c := 1; c <= nCust; c++ {
		s.loadCustomer(rng, w, d, uint32(c))
	}
	// Initial orders: a random permutation of customers, per spec.
	perm := rng.Perm(nCust)
	for o := 1; o <= nOrders; o++ {
		s.loadOrder(rng, w, d, uint32(o), uint32(perm[o-1]+1), o > nOrders*7/10)
	}
}

func (s *Store) loadCustomer(rng *rand.Rand, w, d, c uint32) {
	var last string
	if int(c) <= 1000 {
		last = LastName(int(c) - 1)
	} else {
		last = LastName(nuRand(rng, 255, 0, 999, s.cLoad))
	}
	credit := "GC"
	if rng.Intn(10) == 0 {
		credit = "BC"
	}
	cust := &Customer{
		WID:       w,
		DID:       d,
		ID:        c,
		First:     randAString(rng, 8, 16),
		Middle:    "OE",
		Last:      last,
		Street1:   randAString(rng, 10, 20),
		City:      randAString(rng, 10, 20),
		State:     randAString(rng, 2, 2),
		Zip:       randZip(rng),
		Phone:     randAString(rng, 16, 16),
		Since:     time.Now(),
		Credit:    credit,
		CreditLim: 50000,
		Discount:  rng.Float64() * 0.5,
		Balance:   -10,
		Data:      randAString(rng, 300, 500),
	}
	s.customer.LoadInsert(CustomerKey(w, d, c), cust)
	s.customerName.LoadInsert(CustomerNameKey(w, d, last, cust.First, c), c)
	s.history.LoadInsert(HistoryKey(w, d, c, s.histSeq.Add(1)), &History{
		CID: c, CDID: d, CWID: w, DID: d, WID: w,
		Date: time.Now(), Amount: 10, Data: randAString(rng, 12, 24),
	})
}

func (s *Store) loadOrder(rng *rand.Rand, w, d, o, c uint32, undelivered bool) {
	olCnt := uint32(5 + rng.Intn(11))
	carrier := uint32(1 + rng.Intn(10))
	if undelivered {
		carrier = 0
	}
	s.order.LoadInsert(OrderKey(w, d, o), &Order{
		ID: o, DID: d, WID: w, CID: c,
		EntryDate: time.Now(), Carrier: carrier,
		OLCount: olCnt, AllLocal: true,
	})
	s.orderCust.LoadInsert(OrderCustKey(w, d, c, o), o)
	if undelivered {
		s.newOrder.LoadInsert(NewOrderKey(w, d, o), &NewOrderRow{OID: o, DID: d, WID: w})
	}
	for n := uint32(1); n <= olCnt; n++ {
		amount := 0.0
		deliv := time.Now()
		if undelivered {
			amount = 0.01 + rng.Float64()*9999.98
			deliv = time.Time{}
		}
		s.orderLine.LoadInsert(OrderLineKey(w, d, o, n), &OrderLine{
			OID: o, DID: d, WID: w, Number: n,
			IID:       uint32(1 + rng.Intn(s.Cfg.Items)),
			SupplyWID: w,
			Delivery:  deliv,
			Quantity:  5,
			Amount:    amount,
			DistInfo:  randAString(rng, 24, 24),
		})
	}
}
