package tpcc

import (
	"fmt"
	"math"

	"zygos/internal/silo"
)

// CheckConsistency runs the TPC-C consistency conditions (spec §3.3.2)
// that remain invariant under the transaction mix:
//
//  1. W_YTD = Σ D_YTD over the warehouse's districts;
//  2. D_NEXT_O_ID - 1 = max(O_ID) = max(NO_O_ID) per district (when
//     undelivered orders exist);
//  3. NEW-ORDER rows per district are contiguous:
//     count = max(NO_O_ID) - min(NO_O_ID) + 1;
//  4. Σ O_OL_CNT = count of ORDER-LINE rows per district.
//
// It runs as one big read-only transaction and is meant for tests and
// post-benchmark verification, not steady-state use.
func (s *Store) CheckConsistency() error {
	var problem error
	err := s.DB.Run(0, 5, func(tx *silo.Txn) error {
		problem = nil
		for w := uint32(1); w <= uint32(s.Cfg.Warehouses); w++ {
			wv, ok := tx.Get(s.warehouse, WarehouseKey(w))
			if !ok {
				problem = fmt.Errorf("warehouse %d missing", w)
				return nil
			}
			var dYTD float64
			for d := uint32(1); d <= uint32(s.Cfg.DistrictsPerWH); d++ {
				dv, ok := tx.Get(s.district, DistrictKey(w, d))
				if !ok {
					problem = fmt.Errorf("district %d/%d missing", w, d)
					return nil
				}
				dist := dv.(*District)
				dYTD += dist.YTD
				if err := s.checkDistrict(tx, w, dist); err != nil {
					problem = err
					return nil
				}
			}
			if diff := math.Abs(wv.(*Warehouse).YTD - dYTD); diff > 0.01 {
				problem = fmt.Errorf("consistency 1: W%d YTD %.2f != sum(D_YTD) %.2f",
					w, wv.(*Warehouse).YTD, dYTD)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("tpcc: consistency check transaction failed: %w", err)
	}
	return problem
}

func (s *Store) checkDistrict(tx *silo.Txn, w uint32, dist *District) error {
	d := dist.ID

	// Max order id.
	var maxO uint32
	op := OrderKey(w, d, 0)[:8]
	tx.Scan(s.order, op, PrefixEnd(op), func(key []byte, row any) bool {
		if o := row.(*Order).ID; o > maxO {
			maxO = o
		}
		return true
	})
	if maxO != dist.NextOID-1 {
		return fmt.Errorf("consistency 2: D%d/%d next_o_id-1=%d but max(o_id)=%d",
			w, d, dist.NextOID-1, maxO)
	}

	// New-order contiguity and max.
	var noCount, minNO, maxNO uint32
	minNO = math.MaxUint32
	np := NewOrderKey(w, d, 0)[:8]
	tx.Scan(s.newOrder, np, PrefixEnd(np), func(key []byte, row any) bool {
		o := row.(*NewOrderRow).OID
		noCount++
		if o < minNO {
			minNO = o
		}
		if o > maxNO {
			maxNO = o
		}
		return true
	})
	if noCount > 0 {
		if maxNO != dist.NextOID-1 {
			return fmt.Errorf("consistency 2: D%d/%d max(no_o_id)=%d, want %d",
				w, d, maxNO, dist.NextOID-1)
		}
		if noCount != maxNO-minNO+1 {
			return fmt.Errorf("consistency 3: D%d/%d %d new-orders span [%d,%d]",
				w, d, noCount, minNO, maxNO)
		}
	}

	// Order-line counts.
	var olWant uint64
	tx.Scan(s.order, op, PrefixEnd(op), func(key []byte, row any) bool {
		olWant += uint64(row.(*Order).OLCount)
		return true
	})
	var olGot uint64
	lp := OrderLineKey(w, d, 0, 0)[:8]
	tx.Scan(s.orderLine, lp, PrefixEnd(lp), func(key []byte, row any) bool {
		olGot++
		return true
	})
	if olGot != olWant {
		return fmt.Errorf("consistency 4: D%d/%d has %d order lines, want %d",
			w, d, olGot, olWant)
	}
	return nil
}
