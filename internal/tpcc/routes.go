package tpcc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"zygos"
	"zygos/internal/silo"
)

// Method IDs: one wire method per TPC-C transaction type, so the client
// (not the server) draws the transaction mix and the scheduler can
// observe per-transaction tail latency — the §6.3 request-type view.
// Method 0 remains the legacy route: one transaction drawn server-side
// from the standard mix, which is what pre-routing clients sent.
func (t TxType) Method() uint16 { return uint16(t) + 1 }

// MethodTx maps a wire method back to its transaction type.
func MethodTx(m uint16) (TxType, bool) {
	if m < 1 || m > uint16(numTxTypes) {
		return 0, false
	}
	return TxType(m - 1), true
}

// PickMethod draws a wire method with the standard 45/43/4/4/4 mix —
// the client-side generator counterpart of Pick.
func PickMethod(rng *rand.Rand) uint16 { return Pick(rng).Method() }

// txOK is the single-byte success reply shared by every transaction
// route.
var txOK = []byte{0}

// workerRNGs hands each scheduler worker a private rand.Rand: a worker
// runs one handler at a time, so indexing by req.Worker is race-free.
// The slice is published as an atomic snapshot so the steady-state read
// is lock-free (this sits on every transaction's hot path); the mutex
// serializes only the one-time grows when a new worker index appears.
type workerRNGs struct {
	mu   sync.Mutex
	seed int64
	rngs atomic.Value // []*rand.Rand
}

func (w *workerRNGs) get(worker int) *rand.Rand {
	if rngs, _ := w.rngs.Load().([]*rand.Rand); worker < len(rngs) {
		return rngs[worker]
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	rngs, _ := w.rngs.Load().([]*rand.Rand)
	if worker < len(rngs) {
		return rngs[worker]
	}
	grown := make([]*rand.Rand, worker+1)
	copy(grown, rngs)
	for i := len(rngs); i < len(grown); i++ {
		grown[i] = rand.New(rand.NewSource(w.seed + int64(i)*7919))
	}
	w.rngs.Store(grown)
	return grown[worker]
}

// RegisterRoutes mounts the store on mux: one route per transaction
// type (method = TxType.Method()) and the legacy mix handler on method
// 0. seed feeds the per-worker RNGs that draw transaction parameters.
// The returned mux is the one passed in, for chaining.
func (s *Store) RegisterRoutes(mux *zygos.Mux, seed int64) *zygos.Mux {
	rngs := &workerRNGs{seed: seed}
	for tt := TxNewOrder; tt < numTxTypes; tt++ {
		mux.Handle(tt.Method(), s.txHandler(rngs, tt))
	}
	mux.HandleFunc(0, func(w zygos.ResponseWriter, req *zygos.Request) {
		rng := rngs.get(req.Worker)
		s.serveTx(w, req.Worker, rng, Pick(rng))
	})
	// Declared SLOs — the overload controller's route policy. The hints
	// are passive until the server installs SLO-aware middleware
	// (RouteAwareAdmission / SLOEnforcement). NewOrder and Payment, 88%
	// of the mix and the transactions TPC-C's response-time requirements
	// bind, shed last; the 4% read-only StockLevel scan sheds first, so
	// under overload its queue room drains to the routes that matter.
	mux.Route(TxNewOrder.Method()).SLO(5*time.Millisecond, 500*time.Microsecond)
	mux.Route(TxPayment.Method()).SLO(5*time.Millisecond, 200*time.Microsecond)
	mux.Route(TxOrderStatus.Method()).SLO(10*time.Millisecond, 200*time.Microsecond).ShedPriority(1)
	mux.Route(TxDelivery.Method()).SLO(20*time.Millisecond, 2*time.Millisecond).ShedPriority(1)
	mux.Route(TxStockLevel.Method()).SLO(20*time.Millisecond, 2*time.Millisecond).ShedPriority(2)
	return mux
}

// NewMux returns a fresh Mux with the store's routes registered.
func (s *Store) NewMux(seed int64) *zygos.Mux {
	return s.RegisterRoutes(zygos.NewMux(), seed)
}

// txHandler builds the route handler executing one fixed transaction
// type.
func (s *Store) txHandler(rngs *workerRNGs, tt TxType) zygos.Handler {
	return func(w zygos.ResponseWriter, req *zygos.Request) {
		s.serveTx(w, req.Worker, rngs.get(req.Worker), tt)
	}
}

// serveTx runs one transaction and completes the request: success (and
// the spec's intentional 1% NewOrder rollbacks) replies a single OK
// byte, anything else surfaces as StatusAppError.
func (s *Store) serveTx(w zygos.ResponseWriter, worker int, rng *rand.Rand, tt TxType) {
	if err := s.Run(worker, rng, tt); err != nil && !errors.Is(err, silo.ErrUserAbort) {
		w.Error(zygos.StatusAppError, fmt.Sprintf("tpcc %v: %v", tt, err))
		return
	}
	w.Reply(txOK)
}
