package queueing

import (
	"math"
	"testing"

	"zygos/internal/dist"
)

const us = int64(1000)

func run(t *testing.T, pol Policy, arr Arrangement, d dist.Dist, load float64, n int) Result {
	t.Helper()
	return Run(Config{
		Servers:     n,
		Policy:      pol,
		Arrangement: arr,
		Service:     d,
		Load:        load,
		Requests:    60000,
		Warmup:      5000,
		Seed:        12345,
	})
}

// M/M/1 sanity: simulated mean sojourn must match 1/(mu-lambda).
func TestMM1MeanSojourn(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(10 * us)}
	for _, load := range []float64{0.3, 0.6, 0.8} {
		res := run(t, FCFS, Centralized, d, load, 1)
		mu := 1.0 / float64(10*us)
		lambda := load * mu
		want := MM1MeanSojourn(lambda, mu)
		got := res.Latencies.Mean()
		if math.Abs(got-want)/want > 0.08 {
			t.Errorf("load %.1f: mean sojourn %v, want ~%v", load, got, want)
		}
	}
}

// M/M/1 p99 must match the closed form -ln(0.01)/(mu-lambda).
// p99 estimates need a large sample: 60k observations carry ~±10% seed noise
// at this quantile, so this test uses 300k.
func TestMM1P99(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(10 * us)}
	load := 0.7
	res := Run(Config{
		Servers: 1, Policy: FCFS, Arrangement: Centralized,
		Service: d, Load: load, Requests: 300000, Warmup: 5000, Seed: 12345,
	})
	mu := 1.0 / float64(10*us)
	want := MM1SojournQuantile(load*mu, mu, 0.99)
	got := float64(res.Latencies.P99())
	if math.Abs(got-want)/want > 0.06 {
		t.Errorf("p99 %v, want ~%v", got, want)
	}
}

// M/M/16 mean wait must match Erlang-C.
func TestMM16MeanWaitErlangC(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(10 * us)}
	load := 0.8
	res := run(t, FCFS, Centralized, d, load, 16)
	mu := 1.0 / float64(10*us)
	lambda := load * 16 * mu
	wantSojourn := MMcMeanWait(16, lambda, mu) + 1/mu
	got := res.Latencies.Mean()
	if math.Abs(got-wantSojourn)/wantSojourn > 0.08 {
		t.Errorf("mean sojourn %v, want ~%v", got, wantSojourn)
	}
}

func TestErlangCBounds(t *testing.T) {
	if p := ErlangC(16, 15.99); p < 0.9 {
		t.Errorf("near saturation ErlangC should approach 1, got %v", p)
	}
	if p := ErlangC(16, 0.1); p > 1e-10 {
		t.Errorf("light load ErlangC should be ~0, got %v", p)
	}
	if p := ErlangC(16, 17); p != 1 {
		t.Errorf("overload ErlangC must be 1, got %v", p)
	}
	if p := ErlangC(1, 0.5); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("ErlangC(1, a) must equal a (=rho), got %v", p)
	}
}

func TestMMcWaitTail(t *testing.T) {
	if MMcWaitTail(4, 5, 1, 1) != 1 {
		t.Error("overloaded tail must be 1")
	}
	got := MMcWaitTail(2, 1, 1, 0)
	if math.Abs(got-ErlangC(2, 1)) > 1e-12 {
		t.Error("tail at 0 must equal ErlangC")
	}
}

// The paper's anchor (§3.1): for exponential service and SLO p99 <= 10·S̄,
// the partitioned model maxes at ~53.7% and the centralized at ~96.3%.
func TestPaperAnchorPartitioned(t *testing.T) {
	if got := MM1MaxLoadAtSLO(0.99, 10); math.Abs(got-0.5395) > 0.005 {
		t.Fatalf("analytic M/M/1 max load = %v, want ~0.5395", got)
	}
	d := dist.Exponential{MeanNS: float64(10 * us)}
	eval := func(load float64) int64 {
		return run(t, FCFS, Partitioned, d, load, 16).Latencies.P99()
	}
	got := MaxLoadAtSLO(eval, 100*us, 0.05, 0.99, 7)
	if math.Abs(got-0.537) > 0.05 {
		t.Errorf("simulated partitioned max load = %v, want ~0.537", got)
	}
}

func TestPaperAnchorCentralized(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(10 * us)}
	eval := func(load float64) int64 {
		return run(t, FCFS, Centralized, d, load, 16).Latencies.P99()
	}
	got := MaxLoadAtSLO(eval, 100*us, 0.5, 0.995, 7)
	if math.Abs(got-0.963) > 0.04 {
		t.Errorf("simulated centralized max load = %v, want ~0.963", got)
	}
}

// Observation 1 (§2.3): single-queue beats multi-queue at the tail.
func TestCentralizedBeatsPartitioned(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(10 * us)}
	for _, pol := range []Policy{FCFS, PS} {
		c := run(t, pol, Centralized, d, 0.7, 16).Latencies.P99()
		p := run(t, pol, Partitioned, d, 0.7, 16).Latencies.P99()
		if c >= p {
			t.Errorf("%v: centralized p99 %d should beat partitioned %d", pol, c, p)
		}
	}
}

// Observation 2 (§2.3): FCFS beats PS for low-dispersion distributions,
// PS wins for bimodal-2 (very high dispersion).
func TestFCFSvsPSByDispersion(t *testing.T) {
	low := dist.Deterministic{V: 10 * us}
	fc := run(t, FCFS, Centralized, low, 0.8, 16).Latencies.P99()
	ps := run(t, PS, Centralized, low, 0.8, 16).Latencies.P99()
	if fc >= ps {
		t.Errorf("deterministic: FCFS p99 %d should beat PS %d", fc, ps)
	}

	high := dist.NewBimodal2(10 * us)
	fc = run(t, FCFS, Centralized, high, 0.7, 16).Latencies.P99()
	ps = run(t, PS, Centralized, high, 0.7, 16).Latencies.P99()
	if ps >= fc {
		t.Errorf("bimodal-2: PS p99 %d should beat FCFS %d", ps, fc)
	}
}

// Deterministic service at n=16: minimum p99 is the service time itself and
// latency grows with load.
func TestDeterministicFloor(t *testing.T) {
	d := dist.Deterministic{V: 10 * us}
	lo := run(t, FCFS, Centralized, d, 0.2, 16)
	if lo.Latencies.Min() < 10*us {
		t.Fatal("sojourn cannot be below service time")
	}
	if p := lo.Latencies.P99(); p > 12*us {
		t.Errorf("light-load p99 %d should be near 10us", p)
	}
	hi := run(t, FCFS, Centralized, d, 0.95, 16)
	if hi.Latencies.P99() <= lo.Latencies.P99() {
		t.Error("p99 must increase with load")
	}
}

// PS with a single job must behave like dedicated service.
func TestPSSingleJob(t *testing.T) {
	d := dist.Deterministic{V: 10 * us}
	res := run(t, PS, Centralized, d, 0.05, 16)
	// At 5% load on 16 servers collisions are rare: p50 equals service time.
	if p := res.Latencies.Percentile(0.5); p != 10*us {
		t.Errorf("p50 %d, want exactly 10us", p)
	}
}

// PS fairness: two equal jobs arriving together on one server finish at ~2x.
func TestPSSharing(t *testing.T) {
	// Build a tiny deterministic scenario via the exported Run interface:
	// 1 server, high load, deterministic service. Mean sojourn under PS-1
	// must exceed FCFS-1 mean (PS delays everything under determinism).
	d := dist.Deterministic{V: 10 * us}
	ps := run(t, PS, Centralized, d, 0.8, 1).Latencies.Mean()
	fc := run(t, FCFS, Centralized, d, 0.8, 1).Latencies.Mean()
	if ps <= fc {
		t.Errorf("PS mean %v should exceed FCFS mean %v for deterministic work", ps, fc)
	}
}

func TestModelName(t *testing.T) {
	if got := ModelName(16, FCFS, Centralized); got != "M/G/16/FCFS" {
		t.Errorf("got %q", got)
	}
	if got := ModelName(16, PS, Partitioned); got != "16xM/G/1/PS" {
		t.Errorf("got %q", got)
	}
}

func TestPolicyArrangementStrings(t *testing.T) {
	if FCFS.String() != "FCFS" || PS.String() != "PS" {
		t.Error("policy strings")
	}
	if Centralized.String() != "centralized" || Partitioned.String() != "partitioned" {
		t.Error("arrangement strings")
	}
	if Policy(9).String() == "" || Arrangement(9).String() == "" {
		t.Error("unknown values must still render")
	}
}

func TestRunValidation(t *testing.T) {
	d := dist.Deterministic{V: 10}
	mustPanic := func(cfg Config) {
		defer func() {
			if recover() == nil {
				t.Errorf("config %+v must panic", cfg)
			}
		}()
		Run(cfg)
	}
	mustPanic(Config{Servers: 0, Service: d, Load: 0.5})
	mustPanic(Config{Servers: 1, Service: d, Load: 0})
	mustPanic(Config{Servers: 1, Service: d, Load: 2})
}

func TestSeedDeterminism(t *testing.T) {
	d := dist.Exponential{MeanNS: float64(10 * us)}
	a := run(t, FCFS, Centralized, d, 0.5, 4).Latencies.P99()
	b := run(t, FCFS, Centralized, d, 0.5, 4).Latencies.P99()
	if a != b {
		t.Fatal("same-seed runs must be identical")
	}
}

func TestMaxLoadAtSLOEdges(t *testing.T) {
	// eval below slo everywhere -> hi.
	got := MaxLoadAtSLO(func(float64) int64 { return 1 }, 10, 0.1, 0.9, 5)
	if got != 0.9 {
		t.Errorf("always-ok eval should return hi, got %v", got)
	}
	// eval above slo everywhere -> lo.
	got = MaxLoadAtSLO(func(float64) int64 { return 100 }, 10, 0.1, 0.9, 5)
	if got != 0.1 {
		t.Errorf("never-ok eval should return lo, got %v", got)
	}
	// threshold at 0.5.
	got = MaxLoadAtSLO(func(l float64) int64 {
		if l <= 0.5 {
			return 5
		}
		return 50
	}, 10, 0, 1, 20)
	if math.Abs(got-0.5) > 1e-3 {
		t.Errorf("threshold search got %v, want 0.5", got)
	}
}

func TestMM1Infinite(t *testing.T) {
	if !math.IsInf(MM1SojournQuantile(2, 1, 0.99), 1) {
		t.Error("overload quantile must be +Inf")
	}
	if !math.IsInf(MM1MeanSojourn(1, 1), 1) {
		t.Error("critical load mean must be +Inf")
	}
	if !math.IsInf(MMcMeanWait(2, 3, 1), 1) {
		t.Error("overload MMc wait must be +Inf")
	}
	if MM1MaxLoadAtSLO(0.99, 1) != 0 {
		t.Error("impossible SLO must give 0 load")
	}
}
