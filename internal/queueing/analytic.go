package queueing

import "math"

// Analytic formulas for Markovian systems, used to validate the simulated
// models and to compute the paper's theoretical anchors (e.g., the 53.7% /
// 96.3% maximum loads at the 10×S̄ SLO for exponential service, §3.1).

// MM1SojournP quantile: for an M/M/1 FCFS queue with service rate mu and
// arrival rate lambda, sojourn time T is exponential with rate mu-lambda, so
// P[T > t] = exp(-(mu-lambda)t) and the p-quantile is -ln(1-p)/(mu-lambda).
// Rates are per nanosecond; the result is in nanoseconds.
func MM1SojournQuantile(lambda, mu, p float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	return -math.Log(1-p) / (mu - lambda)
}

// MM1MeanSojourn returns 1/(mu-lambda).
func MM1MeanSojourn(lambda, mu float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}

// ErlangC returns the probability that an arriving job must wait in an
// M/M/c queue with offered load a = lambda/mu (in Erlangs).
func ErlangC(c int, a float64) float64 {
	if a >= float64(c) {
		return 1
	}
	// Compute iteratively to avoid overflow: inv = B(c,a) Erlang-B first.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho + rho*b)
}

// MMcMeanWait returns the mean queueing delay (excluding service) of an
// M/M/c queue, rates per nanosecond.
func MMcMeanWait(c int, lambda, mu float64) float64 {
	a := lambda / mu
	if a >= float64(c) {
		return math.Inf(1)
	}
	pw := ErlangC(c, a)
	return pw / (float64(c)*mu - lambda)
}

// MMcWaitTail returns P[W > t] for the M/M/c FCFS queue: the waiting time is
// 0 with probability 1-ErlangC and exponential with rate c·mu−lambda
// otherwise.
func MMcWaitTail(c int, lambda, mu float64, t float64) float64 {
	a := lambda / mu
	if a >= float64(c) {
		return 1
	}
	return ErlangC(c, a) * math.Exp(-(float64(c)*mu-lambda)*t)
}

// MM1MaxLoadAtSLO returns the exact maximum load of an M/M/1 queue meeting
// "p-quantile of sojourn ≤ slo·S̄": from the quantile formula,
// load = 1 + ln(1-p)/(slo) when positive. For p=0.99, slo=10 this is
// 1 - ln(100)/10 ≈ 0.5395, the paper's ≈53.7% partitioned-FCFS anchor.
func MM1MaxLoadAtSLO(p, sloMultiple float64) float64 {
	l := 1 + math.Log(1-p)/sloMultiple
	if l < 0 {
		return 0
	}
	return l
}

// MaxLoadAtSLO finds, by bisection, the largest load in (lo, hi) for which
// p99 (as computed by eval) does not exceed slo. eval must be monotone in
// load up to simulation noise. It returns lo if even that violates the SLO.
func MaxLoadAtSLO(eval func(load float64) int64, slo int64, lo, hi float64, iters int) float64 {
	if eval(hi) <= slo {
		return hi
	}
	if eval(lo) > slo {
		return lo
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		if eval(mid) <= slo {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
