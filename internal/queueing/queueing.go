// Package queueing implements the paper's four idealized open-loop queueing
// models (§2.3, Figure 1) on top of the discrete-event kernel:
//
//   - centralized-FCFS  (M/G/n/FCFS):  one queue, n servers, FCFS
//   - partitioned-FCFS  (n×M/G/1/FCFS): n queues, random assignment, FCFS
//   - centralized-PS    (M/G/n/PS):    all jobs share n processors equally
//   - partitioned-PS    (n×M/G/1/PS):  n independent PS-1 queues
//
// All models assume Poisson arrivals and are zero-overhead: they are the
// theoretical upper bounds against which the dataplane models are compared
// (the grey lines of Figures 3 and 7).
package queueing

import (
	"fmt"

	"zygos/internal/dist"
	"zygos/internal/sim"
	"zygos/internal/stats"
)

// Policy selects the scheduling discipline of a model.
type Policy int

// Scheduling disciplines.
const (
	FCFS Policy = iota // first-come-first-served
	PS                 // processor sharing
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "FCFS"
	case PS:
		return "PS"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Arrangement selects how arrivals map to servers.
type Arrangement int

// Queue arrangements.
const (
	// Centralized uses a single queue feeding all n servers (M/G/n/*).
	Centralized Arrangement = iota
	// Partitioned assigns each arrival uniformly at random to one of n
	// single-server queues (n×M/G/1/*), modeling RSS flow hashing over a
	// high connection count.
	Partitioned
)

// String implements fmt.Stringer.
func (a Arrangement) String() string {
	switch a {
	case Centralized:
		return "centralized"
	case Partitioned:
		return "partitioned"
	}
	return fmt.Sprintf("Arrangement(%d)", int(a))
}

// Config parameterizes one queueing-model run.
type Config struct {
	Servers     int         // n, number of processors
	Policy      Policy      // FCFS or PS
	Arrangement Arrangement // Centralized or Partitioned
	Service     dist.Dist   // service-time distribution
	Load        float64     // offered load in (0, 1): λ = Load·n/S̄
	Requests    int         // measured requests (after warmup)
	Warmup      int         // requests discarded before measurement
	Seed        int64
}

// Result holds the outcome of a run.
type Result struct {
	Latencies *stats.Sample // sojourn times (queueing + service), ns
	Completed int
}

// ModelName renders the Kendall-style name used in the paper's figures,
// e.g. "M/G/16/FCFS" or "16xM/G/1/PS".
func ModelName(n int, p Policy, a Arrangement) string {
	if a == Centralized {
		return fmt.Sprintf("M/G/%d/%s", n, p)
	}
	return fmt.Sprintf("%dxM/G/1/%s", n, p)
}

// Run simulates the configured model and returns measured sojourn times.
func Run(cfg Config) Result {
	if cfg.Servers <= 0 {
		panic("queueing: Servers must be positive")
	}
	if cfg.Load <= 0 || cfg.Load >= 1.05 {
		panic(fmt.Sprintf("queueing: Load %v out of range", cfg.Load))
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 100000
	}
	if cfg.Warmup < 0 {
		cfg.Warmup = 0
	}
	s := sim.New(cfg.Seed)
	mean := cfg.Service.Mean()
	lambda := cfg.Load * float64(cfg.Servers) / mean * 1e9 // req/s
	arrivals := dist.PoissonArrivals{RatePerSec: lambda}

	total := cfg.Requests + cfg.Warmup
	res := Result{Latencies: stats.NewSample(cfg.Requests)}
	record := func(idx int, sojourn sim.Time) {
		if idx >= cfg.Warmup {
			res.Latencies.Add(sojourn)
			res.Completed++
		}
	}

	var station interface {
		arrive(now sim.Time, size int64, done func(sim.Time))
	}
	switch {
	case cfg.Policy == FCFS && cfg.Arrangement == Centralized:
		station = newFCFSCentral(s, cfg.Servers)
	case cfg.Policy == FCFS && cfg.Arrangement == Partitioned:
		station = newFCFSPartitioned(s, cfg.Servers)
	case cfg.Policy == PS && cfg.Arrangement == Centralized:
		station = newPSCentral(s, cfg.Servers)
	default:
		station = newPSPartitioned(s, cfg.Servers)
	}

	idx := 0
	var schedule func(at sim.Time)
	schedule = func(at sim.Time) {
		if idx >= total {
			return
		}
		myIdx := idx
		idx++
		s.At(at, func(now sim.Time) {
			size := cfg.Service.Sample(s.Rand)
			if size < 1 {
				size = 1
			}
			start := now
			station.arrive(now, size, func(end sim.Time) {
				record(myIdx, end-start)
			})
		})
		schedule(at + arrivals.NextGap(s.Rand))
	}
	schedule(0)
	s.Run()
	return res
}

// fcfsCentral is a single FCFS queue with n servers.
type fcfsCentral struct {
	s    *sim.Sim
	idle int
	q    []job
}

type job struct {
	size int64
	done func(sim.Time)
}

func newFCFSCentral(s *sim.Sim, n int) *fcfsCentral {
	return &fcfsCentral{s: s, idle: n}
}

func (f *fcfsCentral) arrive(now sim.Time, size int64, done func(sim.Time)) {
	if f.idle > 0 {
		f.idle--
		f.start(now, job{size, done})
		return
	}
	f.q = append(f.q, job{size, done})
}

func (f *fcfsCentral) start(now sim.Time, j job) {
	f.s.At(now+j.size, func(end sim.Time) {
		j.done(end)
		if len(f.q) > 0 {
			next := f.q[0]
			f.q = f.q[1:]
			f.start(end, next)
			return
		}
		f.idle++
	})
}

// fcfsPartitioned is n independent single-server FCFS queues with uniform
// random assignment.
type fcfsPartitioned struct {
	s     *sim.Sim
	units []*fcfsCentral
}

func newFCFSPartitioned(s *sim.Sim, n int) *fcfsPartitioned {
	p := &fcfsPartitioned{s: s}
	for i := 0; i < n; i++ {
		p.units = append(p.units, newFCFSCentral(s, 1))
	}
	return p
}

func (p *fcfsPartitioned) arrive(now sim.Time, size int64, done func(sim.Time)) {
	p.units[p.s.Rand.Intn(len(p.units))].arrive(now, size, done)
}

// psCentral implements M/G/n/PS: with k jobs in the system each receives
// service at rate min(1, n/k). Because every job always progresses at the
// same rate, completion order equals remaining-work order; we track a
// virtual drained-work clock and keep jobs keyed by (virtual arrival work +
// size).
type psCentral struct {
	s       *sim.Sim
	n       int
	virtual float64  // cumulative per-job drained work, ns
	lastUpd sim.Time // when virtual was last advanced
	jobs    psHeap
	pending sim.Handle
	haveEv  bool
}

type psJob struct {
	key  float64 // virtual + size at arrival
	done func(sim.Time)
	idx  int
}

type psHeap []*psJob

func (h psHeap) Len() int           { return len(h) }
func (h psHeap) Less(i, j int) bool { return h[i].key < h[j].key }
func (h psHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *psHeap) Push(x any)        { j := x.(*psJob); j.idx = len(*h); *h = append(*h, j) }
func (h *psHeap) Pop() any          { old := *h; n := len(old); j := old[n-1]; *h = old[:n-1]; return j }
func (h psHeap) peek() *psJob       { return h[0] }

func newPSCentral(s *sim.Sim, n int) *psCentral {
	return &psCentral{s: s, n: n}
}

// rate returns the per-job service rate given k jobs in system.
func (p *psCentral) rate() float64 {
	k := len(p.jobs)
	if k == 0 {
		return 0
	}
	if k <= p.n {
		return 1
	}
	return float64(p.n) / float64(k)
}

func (p *psCentral) advance(now sim.Time) {
	if now > p.lastUpd {
		p.virtual += float64(now-p.lastUpd) * p.rate()
		p.lastUpd = now
	}
}

func (p *psCentral) arrive(now sim.Time, size int64, done func(sim.Time)) {
	p.advance(now)
	j := &psJob{key: p.virtual + float64(size), done: done}
	pushPS(&p.jobs, j)
	p.resched(now)
}

func pushPS(h *psHeap, j *psJob) {
	*h = append(*h, j)
	j.idx = len(*h) - 1
	up(*h, j.idx)
}

func up(h psHeap, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].key <= h[i].key {
			break
		}
		h.Swap(i, parent)
		i = parent
	}
}

func popPS(h *psHeap) *psJob {
	old := *h
	n := len(old)
	j := old[0]
	old.Swap(0, n-1)
	*h = old[:n-1]
	if len(*h) > 0 {
		down(*h, 0)
	}
	return j
}

func down(h psHeap, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h[l].key < h[small].key {
			small = l
		}
		if r < n && h[r].key < h[small].key {
			small = r
		}
		if small == i {
			return
		}
		h.Swap(i, small)
		i = small
	}
}

func (p *psCentral) resched(now sim.Time) {
	if p.haveEv {
		p.s.Cancel(p.pending)
		p.haveEv = false
	}
	if len(p.jobs) == 0 {
		return
	}
	head := p.jobs.peek()
	remaining := head.key - p.virtual
	if remaining < 0 {
		remaining = 0
	}
	dt := sim.Time(remaining / p.rate())
	p.pending = p.s.At(now+dt, func(end sim.Time) {
		p.haveEv = false
		p.advance(end)
		j := popPS(&p.jobs)
		j.done(end)
		p.resched(end)
	})
	p.haveEv = true
}

// psPartitioned is n independent single-server PS queues.
type psPartitioned struct {
	s     *sim.Sim
	units []*psCentral
}

func newPSPartitioned(s *sim.Sim, n int) *psPartitioned {
	p := &psPartitioned{s: s}
	for i := 0; i < n; i++ {
		p.units = append(p.units, newPSCentral(s, 1))
	}
	return p
}

func (p *psPartitioned) arrive(now sim.Time, size int64, done func(sim.Time)) {
	p.units[p.s.Rand.Intn(len(p.units))].arrive(now, size, done)
}
