// Package experiments regenerates every table and figure of the ZygOS
// paper's evaluation (§2.3 Figure 2; §3.4 Figure 3; §6.1 Figures 6-8;
// §6.2 Figure 9; §6.3 Figures 10a/10b and Table 1; §7 Figure 11) from
// this repository's simulators and applications. Each generator returns
// structured series that print as aligned tables; EXPERIMENTS.md records
// the paper-vs-measured comparison.
//
// Two parameter sets exist: the default "quick" set keeps a full
// reproduction under a few minutes on a laptop; Options.Full selects the
// dense grids and larger sample counts (set ZYGOS_FULL=1 for the CLI and
// benchmarks).
package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Options control experiment fidelity.
type Options struct {
	// Full selects dense sweeps and large sample counts.
	Full bool
	// Tiny shrinks grids and sample counts to smoke-test size; meant for
	// unit tests, not for producing meaningful numbers.
	Tiny bool
	// Seed makes every experiment deterministic.
	Seed int64
}

func (o Options) requests(quick, full int) int {
	switch {
	case o.Tiny:
		// Tail estimation and saturation detection need a floor: shorter
		// runs make overloaded systems look healthy (the queue never has
		// time to build).
		n := quick / 2
		if n < 20000 {
			n = 20000
		}
		return n
	case o.Full:
		return full
	default:
		return quick
	}
}

// grid picks a sweep grid by fidelity.
func gridF(o Options, tiny, quick, full []float64) []float64 {
	switch {
	case o.Tiny:
		return tiny
	case o.Full:
		return full
	default:
		return quick
	}
}

func gridI(o Options, tiny, quick, full []int64) []int64 {
	switch {
	case o.Tiny:
		return tiny
	case o.Full:
		return full
	default:
		return quick
	}
}

// bisectIters is the bisection depth for max-load solvers.
func (o Options) bisectIters() int {
	if o.Tiny {
		return 4
	}
	return 7
}

// Table is one printable result table (one figure panel or table).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Result is the output of one experiment.
type Result struct {
	ID     string
	Title  string
	Tables []Table
	Notes  []string
}

// Render writes the result as aligned text.
func (r Result) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		fmt.Fprintf(w, "\n--- %s ---\n", t.Title)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
		for _, row := range t.Rows {
			fmt.Fprintln(tw, strings.Join(row, "\t"))
		}
		tw.Flush()
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Generator runs one experiment.
type Generator func(Options) Result

// Registry maps experiment ids to their generators, in paper order.
var Registry = []struct {
	ID  string
	Gen Generator
}{
	{"fig2", Fig2},
	{"fig3", Fig3},
	{"fig6", Fig6},
	{"fig7", Fig7},
	{"fig8", Fig8},
	{"fig9", Fig9},
	{"fig10a", Fig10a},
	{"fig10b", Fig10b},
	{"table1", Table1},
	{"fig11", Fig11},
	{"ablation", AblationSteal},
}

// ByID returns the generator for an experiment id.
func ByID(id string) (Generator, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e.Gen, true
		}
	}
	return nil, false
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// usToStr renders nanoseconds as microseconds.
func usToStr(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1e3) }
