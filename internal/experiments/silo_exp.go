package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"zygos/internal/dataplane"
	"zygos/internal/dist"
	"zygos/internal/silo"
	"zygos/internal/stats"
	"zygos/internal/tpcc"
)

// PaperSiloMix returns the paper-calibrated TPC-C service-time
// distribution: a mixture of per-transaction-type lognormals whose
// composite statistics match Silo's measured profile in §6.3.2 — mix
// mean ≈ 33µs, median ≈ 20µs, p99 ≈ 203µs — with the standard
// 45/43/4/4/4 type weights. It drives the Figure 10b/Table 1 dataplane
// comparison at the paper's operating point regardless of how fast this
// machine runs the Go Silo.
func PaperSiloMix() dist.Dist {
	mk := func(meanUS float64, sigma float64) dist.Dist {
		return dist.NewLognormalMean(meanUS*1000, sigma)
	}
	m, err := dist.NewMixture("tpcc-paper",
		[]dist.Dist{
			mk(34, 0.55),  // NewOrder
			mk(14, 0.60),  // Payment
			mk(14, 0.60),  // OrderStatus
			mk(160, 0.45), // Delivery
			mk(110, 0.50), // StockLevel
		},
		[]float64{0.45, 0.43, 0.04, 0.04, 0.04})
	if err != nil {
		panic(err)
	}
	return m
}

// MeasureSilo runs the Go Silo+TPC-C closed-loop on this machine (as the
// paper does with GC disabled and no network, §6.3.2) and returns
// per-transaction-type service-time samples plus the mix.
func MeasureSilo(opt Options) (perType map[tpcc.TxType]*stats.Sample, mix *stats.Sample, tps float64) {
	cfg := tpcc.Config{
		Warehouses:           1,
		DistrictsPerWH:       10,
		CustomersPerDistrict: 300,
		Items:                2000,
		InitialOrders:        150,
	}
	iters := opt.requests(4000, 40000)
	if opt.Full {
		cfg.CustomersPerDistrict = 3000
		cfg.Items = 100000
		cfg.InitialOrders = 3000
	}
	db := silo.NewDB(10 * time.Millisecond)
	defer db.Close()
	store, err := tpcc.Load(db, cfg, opt.Seed+9)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(opt.Seed + 10))
	perType = make(map[tpcc.TxType]*stats.Sample)
	mix = stats.NewSample(iters)
	begin := time.Now()
	for i := 0; i < iters; i++ {
		tt := tpcc.Pick(rng)
		start := time.Now()
		err := store.Run(0, rng, tt)
		lat := time.Since(start).Nanoseconds()
		if err != nil && !errors.Is(err, silo.ErrUserAbort) {
			panic(err)
		}
		s := perType[tt]
		if s == nil {
			s = stats.NewSample(1024)
			perType[tt] = s
		}
		s.Add(lat)
		mix.Add(lat)
	}
	tps = float64(iters) / time.Since(begin).Seconds()
	return perType, mix, tps
}

// Fig10a reproduces Figure 10a: the service-time distribution of the
// TPC-C transaction types, both measured from this repository's Go Silo
// and from the paper-calibrated mixture used to drive Figure 10b.
func Fig10a(opt Options) Result {
	res := Result{
		ID:    "fig10a",
		Title: "TPC-C service time CCDF per transaction type",
	}
	perType, mix, tps := MeasureSilo(opt)

	t := Table{
		Title:  "measured on this machine (Go Silo, closed loop, GC-by-epoch disabled)",
		Header: []string{"txn", "count", "mean(µs)", "p50(µs)", "p90(µs)", "p99(µs)", "max(µs)"},
	}
	order := []tpcc.TxType{tpcc.TxOrderStatus, tpcc.TxPayment, tpcc.TxNewOrder, tpcc.TxStockLevel, tpcc.TxDelivery}
	for _, tt := range order {
		s := perType[tt]
		if s == nil {
			continue
		}
		sum := s.Summarize()
		t.Rows = append(t.Rows, []string{
			tt.String(), fmt.Sprint(sum.Count), f2(sum.Mean / 1e3),
			usToStr(sum.P50), usToStr(sum.P90), usToStr(sum.P99), usToStr(sum.Max),
		})
	}
	msum := mix.Summarize()
	t.Rows = append(t.Rows, []string{
		"Mix", fmt.Sprint(msum.Count), f2(msum.Mean / 1e3),
		usToStr(msum.P50), usToStr(msum.P90), usToStr(msum.P99), usToStr(msum.Max),
	})
	res.Tables = append(res.Tables, t)

	// The calibrated mixture, sampled, against the paper's numbers.
	paper := PaperSiloMix()
	rng := rand.New(rand.NewSource(opt.Seed + 11))
	samples := opt.requests(200000, 1000000)
	ps := stats.NewSample(samples)
	for i := 0; i < samples; i++ {
		ps.Add(paper.Sample(rng))
	}
	sum := ps.Summarize()
	t2 := Table{
		Title:  "paper-calibrated mixture (drives fig10b/table1)",
		Header: []string{"source", "mean(µs)", "p50(µs)", "p99(µs)"},
		Rows: [][]string{
			{"mixture", f2(sum.Mean / 1e3), usToStr(sum.P50), usToStr(sum.P99)},
			{"paper (§6.3.2)", "33.0", "20.0", "203.0"},
		},
	}
	res.Tables = append(res.Tables, t2)
	res.Notes = append(res.Notes,
		fmt.Sprintf("Go Silo closed-loop rate on this machine: %.0f TPS single-worker (paper: 460 KTPS on 16 hyperthreads)", tps),
		"shape anchor: Delivery and StockLevel are the slow modes; Payment/OrderStatus the fast ones; the mix is multi-modal")
	return res
}

// tpccCosts is the cost model at the TPC-C operating point. TPC-C RPCs
// are hundreds of bytes (multi-packet, marshalled rows), so per-event
// protocol and dispatch work is an order of magnitude above the tiny
// synthetic RPCs of §6.1. The anchors are the paper's own Table 1
// light-load tails: Linux p99 at 50% of its max load is already 310µs
// against a 203µs service p99 — roughly 100µs of non-queueing tail noise
// — and ZygOS's 344 KTPS ceiling implies ~13µs of per-transaction
// overhead plus residual imbalance on 16 cores.
func tpccCosts() dataplane.CostModel {
	c := dataplane.DefaultCosts()
	c.NetStackFixed = 1200
	c.NetStackPerPkt = 1500
	c.TXPerPkt = 1200
	c.AppDispatch = 3000
	c.ZygosInterleave = 800
	c.StealCost = 800

	// The paper's Linux ceiling (211 KTPS on 16 cores with a 33µs mix)
	// implies ~40µs of kernel-path work per RPC at TPC-C message sizes:
	// epoll_wait + read + write, multi-segment TCP RX/TX in softirq,
	// wakeups and shared-pool contention.
	c.SyscallFixed = 18000
	c.SyscallJitter = 8000
	c.SyscallSigma = 1.0
	c.WakeLatency = 4000
	c.FloatingContention = 6000
	c.HiccupProb = 0.008
	c.HiccupCost = 100000
	return c
}

// fig10bSystems is the shared system list for Figure 10b and Table 1.
func fig10bSystems() []struct {
	name  string
	sys   dataplane.System
	batch int
} {
	return []struct {
		name  string
		sys   dataplane.System
		batch int
	}{
		{"linux", dataplane.LinuxFloating, 64},
		{"ix", dataplane.IX, 1},
		{"zygos", dataplane.Zygos, 64},
	}
}

// Fig10b reproduces Figure 10b: p99 end-to-end latency versus throughput
// for Silo/TPC-C served by Linux, IX and ZygOS, driven by the calibrated
// service-time mixture, with the paper's 1000µs SLO.
func Fig10b(opt Options) Result {
	res := Result{
		ID:    "fig10b",
		Title: "Silo TPC-C: p99 latency vs throughput (SLO 1000µs at p99)",
	}
	service := PaperSiloMix()
	satRate := 16.0 / service.Mean() * 1e9 // ≈485 KTPS zero-overhead
	loads := gridF(opt,
		[]float64{0.35, 0.7},
		[]float64{0.2, 0.35, 0.5, 0.6, 0.7, 0.8, 0.9},
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9})
	requests := opt.requests(40000, 200000)

	t := Table{
		Title:  "curves (achieved-KRPS/p99-µs; * marks drops)",
		Header: []string{"load", "linux", "ix", "zygos"},
	}
	curves := map[string][]curvePoint{}
	for _, sc := range fig10bSystems() {
		var pts []curvePoint
		for _, load := range loads {
			r := dataplane.Run(dataplane.Config{
				System:     sc.sys,
				Service:    service,
				RatePerSec: load * satRate,
				Requests:   requests,
				Warmup:     requests / 10,
				Seed:       opt.Seed + 12,
				Batch:      sc.batch,
				Interrupts: true,
				Costs:      tpccCosts(),
			})
			pts = append(pts, curvePoint{mrps: r.AchievedRPS / 1e6, p99: r.Latencies.P99(), ok: r.Dropped == 0})
		}
		curves[sc.name] = pts
	}
	for i, load := range loads {
		row := []string{f2(load)}
		for _, sc := range fig10bSystems() {
			p := curves[sc.name][i]
			s := fmt.Sprintf("%.0f/%s", p.mrps*1e3, usToStr(p.p99))
			if !p.ok {
				s += "*"
			}
			row = append(row, s)
		}
		t.Rows = append(t.Rows, row)
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"paper anchors: ZygOS sustains the SLO nearly to saturation; IX's tail detaches early (partitioned queues); Linux saturates first (syscall overheads)")
	return res
}

// Table1 reproduces Table 1: maximum throughput under the 1000µs SLO with
// speedups over Linux, and tail latency at ~50/75/90% of each system's
// own maximum load (ratios are to the 203µs service-time p99).
func Table1(opt Options) Result {
	res := Result{
		ID:    "table1",
		Title: "Silo TPC-C maximum load @ SLO(1000µs) and tail at fractional loads",
	}
	service := PaperSiloMix()
	satRate := 16.0 / service.Mean() * 1e9
	requests := opt.requests(40000, 150000)
	const sloNS = 1000 * 1000
	const serviceP99US = 203.0

	type rowData struct {
		name    string
		maxLoad float64
		ktps    float64
		tails   [3]int64 // p99 at 50/75/90% of own max load
	}
	var rows []rowData
	for _, sc := range fig10bSystems() {
		cfg := dataplane.Config{
			System:     sc.sys,
			Service:    service,
			RatePerSec: 1,
			Requests:   requests,
			Warmup:     requests / 10,
			Seed:       opt.Seed + 13,
			Batch:      sc.batch,
			Interrupts: true,
			Costs:      tpccCosts(),
		}
		maxLoad := dataplane.MaxLoadAtSLO(cfg, sloNS, 0.05, 0.99, opt.bisectIters())
		rd := rowData{name: sc.name, maxLoad: maxLoad, ktps: maxLoad * satRate / 1e3}
		for i, frac := range []float64{0.5, 0.75, 0.9} {
			cfg.RatePerSec = frac * maxLoad * satRate
			r := dataplane.Run(cfg)
			rd.tails[i] = r.Latencies.P99()
		}
		rows = append(rows, rd)
	}

	linuxKTPS := rows[0].ktps
	t := Table{
		Title: "summary",
		Header: []string{"system", "max load@SLO (KTPS)", "speedup",
			"p99@50% (µs, ×svc-p99)", "p99@75%", "p99@90%"},
	}
	for _, rd := range rows {
		cell := func(i int) string {
			us := float64(rd.tails[i]) / 1e3
			return fmt.Sprintf("%.0f (%.1fx)", us, us/serviceP99US)
		}
		t.Rows = append(t.Rows, []string{
			rd.name,
			fmt.Sprintf("%.0f", rd.ktps),
			fmt.Sprintf("%.2fx", rd.ktps/linuxKTPS),
			cell(0), cell(1), cell(2),
		})
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"paper: Linux 211 KTPS (1.00x), IX 267 KTPS (1.26x), ZygOS 344 KTPS (1.63x)",
		"paper tails: ZygOS 1.3x/1.4x/1.6x of the 203µs service p99; IX 1.9x/2.6x/3.8x; Linux 1.5x/1.6x/1.8x")
	return res
}
