package experiments

import (
	"zygos/internal/dataplane"
)

// Fig8 reproduces Figure 8: the normalized steal rate (steals per
// application event) versus throughput for exponential service with
// S̄ = 25µs, with and without inter-processor interrupts.
func Fig8(opt Options) Result {
	res := Result{
		ID:    "fig8",
		Title: "steals per event vs throughput (exponential, S̄=25µs)",
	}
	loads := gridF(opt,
		[]float64{0.25, 0.7, 0.98},
		[]float64{0.1, 0.25, 0.4, 0.55, 0.7, 0.8, 0.9, 0.98},
		[]float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.77, 0.85, 0.9, 0.95, 0.99})
	requests := opt.requests(40000, 200000)
	const mean = 25000
	d := distByName("exponential", mean)
	satRate := 16.0 / d.Mean() * 1e9

	t := Table{
		Title:  "steal rate",
		Header: []string{"load", "MRPS", "zygos steals/event %", "zygos IPIs/event", "no-int steals/event %"},
	}
	for _, load := range loads {
		mk := func(interrupts bool) dataplane.Result {
			return dataplane.Run(dataplane.Config{
				System:     dataplane.Zygos,
				Service:    d,
				RatePerSec: load * satRate,
				Requests:   requests,
				Warmup:     requests / 10,
				Seed:       opt.Seed + 8,
				Interrupts: interrupts,
			})
		}
		with := mk(true)
		without := mk(false)
		ipiPerEvent := 0.0
		if with.Events > 0 {
			ipiPerEvent = float64(with.IPIs) / float64(with.Events)
		}
		t.Rows = append(t.Rows, []string{
			f2(load),
			f3(with.AchievedRPS / 1e6),
			f2(with.StealFraction() * 100),
			f2(ipiPerEvent),
			f2(without.StealFraction() * 100),
		})
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"paper anchors: cooperative (no-interrupt) steal rate peaks at ~33-35%; interrupts raise the peak substantially",
		"steals vanish at saturation as every core stays busy with its own queue")
	return res
}
