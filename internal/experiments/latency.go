package experiments

import (
	"fmt"

	"zygos/internal/dataplane"
	"zygos/internal/queueing"
)

// latencyCurve sweeps offered load and reports (achieved MRPS, p99 µs)
// pairs for one system configuration.
type curvePoint struct {
	mrps float64
	p99  int64
	ok   bool // completed without saturation/drops
}

func sweepSystem(sys dataplane.System, d string, meanNS int64, batch int, interrupts bool, loads []float64, requests int, seed int64) []curvePoint {
	var out []curvePoint
	dd := distByName(d, meanNS)
	satRate := 16.0 / dd.Mean() * 1e9
	for _, load := range loads {
		cfg := dataplane.Config{
			System:     sys,
			Service:    dd,
			RatePerSec: load * satRate,
			Requests:   requests,
			Warmup:     requests / 10,
			Seed:       seed,
			Batch:      batch,
			Interrupts: interrupts,
		}
		r := dataplane.Run(cfg)
		out = append(out, curvePoint{
			mrps: r.AchievedRPS / 1e6,
			p99:  r.Latencies.P99(),
			ok:   r.Dropped == 0,
		})
	}
	return out
}

func sweepIdeal(d string, meanNS int64, loads []float64, requests int, seed int64) []curvePoint {
	var out []curvePoint
	dd := distByName(d, meanNS)
	satRate := 16.0 / dd.Mean() * 1e9
	for _, load := range loads {
		r := queueing.Run(queueing.Config{
			Servers:     16,
			Policy:      queueing.FCFS,
			Arrangement: queueing.Centralized,
			Service:     dd,
			Load:        load,
			Requests:    requests,
			Warmup:      requests / 10,
			Seed:        seed,
		})
		out = append(out, curvePoint{mrps: load * satRate / 1e6, p99: r.Latencies.P99(), ok: true})
	}
	return out
}

func fmtPoint(p curvePoint) string {
	s := fmt.Sprintf("%.3f/%s", p.mrps, usToStr(p.p99))
	if !p.ok {
		s += "*"
	}
	return s
}

// Fig6 reproduces Figure 6: p99 latency versus throughput for the three
// distributions at S̄ = 10µs and 25µs, comparing ZygOS, ZygOS without
// interrupts, IX (B=1, as the paper configures its latency experiments),
// Linux-floating, and the zero-overhead M/G/16/FCFS model.
func Fig6(opt Options) Result {
	res := Result{
		ID:    "fig6",
		Title: "p99 latency vs throughput (columns are achieved-MRPS/p99-µs; * marks drops)",
	}
	loads := gridF(opt,
		[]float64{0.4, 0.8},
		[]float64{0.2, 0.4, 0.55, 0.7, 0.8, 0.9},
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95})
	requests := opt.requests(40000, 200000)

	meansUS := []int64{10, 25}
	dists := []string{"deterministic", "exponential", "bimodal-1"}
	if opt.Tiny {
		meansUS = meansUS[:1]
		dists = dists[1:2]
	}
	for _, meanUS := range meansUS {
		mean := meanUS * 1000
		for _, dn := range dists {
			t := Table{
				Title:  fmt.Sprintf("%s S̄=%dµs (SLO p99 ≤ %dµs)", dn, meanUS, 10*meanUS),
				Header: []string{"load", "M/G/16/FCFS", "zygos", "zygos-noint", "ix(B=1)", "linux-floating"},
			}
			ideal := sweepIdeal(dn, mean, loads, requests, opt.Seed+4)
			zy := sweepSystem(dataplane.Zygos, dn, mean, 64, true, loads, requests, opt.Seed+5)
			zn := sweepSystem(dataplane.Zygos, dn, mean, 64, false, loads, requests, opt.Seed+5)
			ix := sweepSystem(dataplane.IX, dn, mean, 1, true, loads, requests, opt.Seed+5)
			lf := sweepSystem(dataplane.LinuxFloating, dn, mean, 64, true, loads, requests, opt.Seed+5)
			for i, load := range loads {
				t.Rows = append(t.Rows, []string{
					f2(load), fmtPoint(ideal[i]), fmtPoint(zy[i]), fmtPoint(zn[i]),
					fmtPoint(ix[i]), fmtPoint(lf[i]),
				})
			}
			res.Tables = append(res.Tables, t)
		}
	}
	res.Notes = append(res.Notes,
		"paper anchors: ZygOS tracks the theoretical model; IX's tail detaches first (partitioned FCFS)",
		"no-interrupt ZygOS visibly trails ZygOS for dispersive distributions (HOL blocking)")
	return res
}

// Fig11 reproduces Figure 11: the same sweep under two SLOs shows the
// winner flipping — ZygOS wins the stringent 100µs SLO, IX with adaptive
// batching (B=64) squeezes out more throughput under the lenient 1000µs
// SLO.
func Fig11(opt Options) Result {
	res := Result{
		ID:    "fig11",
		Title: "SLO choice decides the system: exp S̄=10µs under 100µs and 1000µs SLOs",
	}
	const mean = 10000
	loads := gridF(opt,
		[]float64{0.5, 0.9},
		[]float64{0.3, 0.5, 0.65, 0.8, 0.9, 0.95},
		[]float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95})
	requests := opt.requests(40000, 200000)

	t := Table{
		Title:  "curves (achieved-MRPS/p99-µs; * marks drops)",
		Header: []string{"load", "zygos", "ix(B=1)", "ix(B=64)"},
	}
	zy := sweepSystem(dataplane.Zygos, "exponential", mean, 64, true, loads, requests, opt.Seed+6)
	ix1 := sweepSystem(dataplane.IX, "exponential", mean, 1, true, loads, requests, opt.Seed+6)
	ix64 := sweepSystem(dataplane.IX, "exponential", mean, 64, true, loads, requests, opt.Seed+6)
	for i, load := range loads {
		t.Rows = append(t.Rows, []string{f2(load), fmtPoint(zy[i]), fmtPoint(ix1[i]), fmtPoint(ix64[i])})
	}
	res.Tables = append(res.Tables, t)

	requests = opt.requests(30000, 120000)
	sloT := Table{
		Title:  "max load @ SLO",
		Header: []string{"SLO", "zygos", "ix(B=1)", "ix(B=64)"},
	}
	for _, sloUS := range []int64{100, 1000} {
		row := []string{fmt.Sprintf("%dµs", sloUS)}
		for _, c := range []struct {
			sys   dataplane.System
			batch int
		}{{dataplane.Zygos, 64}, {dataplane.IX, 1}, {dataplane.IX, 64}} {
			cfg := dataplane.Config{
				System:     c.sys,
				Service:    distByName("exponential", mean),
				RatePerSec: 1,
				Requests:   requests,
				Warmup:     requests / 10,
				Seed:       opt.Seed + 7,
				Batch:      c.batch,
				Interrupts: true,
			}
			row = append(row, f3(dataplane.MaxLoadAtSLO(cfg, sloUS*1000, 0.05, 0.99, opt.bisectIters())))
		}
		sloT.Rows = append(sloT.Rows, row)
	}
	res.Tables = append(res.Tables, sloT)
	res.Notes = append(res.Notes,
		"paper anchor: ZygOS wins at the 100µs SLO; IX B=64 edges ahead under the 1000µs SLO")
	return res
}
