package experiments

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"zygos/internal/stats"
	"zygos/internal/tpcc"
)

func tiny() Options { return Options{Tiny: true, Seed: 1} }

// Every generator must produce a well-formed result that renders.
func TestAllGeneratorsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	for _, e := range Registry {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Gen(tiny())
			if res.ID != e.ID {
				t.Fatalf("result ID %q, want %q", res.ID, e.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range res.Tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("table %q has no rows", tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Fatalf("table %q row width %d != header %d", tb.Title, len(row), len(tb.Header))
					}
				}
			}
			var buf bytes.Buffer
			res.Render(&buf)
			if buf.Len() == 0 {
				t.Fatal("Render produced nothing")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig2"); !ok {
		t.Fatal("fig2 must be registered")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id must not resolve")
	}
}

// The paper-calibrated mixture must land on the paper's Silo profile
// (§6.3.2: mean 33µs, median 20µs, p99 203µs).
func TestPaperSiloMixCalibration(t *testing.T) {
	d := PaperSiloMix()
	rng := rand.New(rand.NewSource(7))
	s := stats.NewSample(400000)
	for i := 0; i < 400000; i++ {
		s.Add(d.Sample(rng))
	}
	mean := s.Mean() / 1e3
	p50 := float64(s.Percentile(0.5)) / 1e3
	p99 := float64(s.Percentile(0.99)) / 1e3
	if math.Abs(mean-33) > 3 {
		t.Errorf("mixture mean %.1fµs, want 33±3", mean)
	}
	if math.Abs(p50-20) > 3 {
		t.Errorf("mixture p50 %.1fµs, want 20±3", p50)
	}
	if math.Abs(p99-203) > 40 {
		t.Errorf("mixture p99 %.1fµs, want 203±40", p99)
	}
}

// The measured Go Silo must show the paper's qualitative shape: Delivery
// and StockLevel are the slow transaction types.
func TestMeasuredSiloShape(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement is slow")
	}
	perType, mix, tps := MeasureSilo(tiny())
	if tps <= 0 {
		t.Fatal("no throughput measured")
	}
	if mix.Len() < 1000 {
		t.Fatalf("only %d samples", mix.Len())
	}
	fast := perType[tpcc.TxPayment].Percentile(0.5)
	slow := perType[tpcc.TxDelivery].Percentile(0.5)
	if slow <= fast {
		t.Errorf("Delivery median %dns should exceed Payment median %dns", slow, fast)
	}
}

// Table 1 must reproduce the paper's ordering: zygos > ix > linux in max
// load, with zygos's 90%-load tail under ix's.
func TestTable1Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 is slow")
	}
	res := Table1(Options{Tiny: true, Seed: 3})
	tb := res.Tables[0]
	get := func(row int) float64 {
		v, err := strconv.ParseFloat(tb.Rows[row][1], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	linux, ix, zygos := get(0), get(1), get(2)
	if !(zygos > ix && ix > linux) {
		t.Errorf("max loads linux=%v ix=%v zygos=%v: want zygos > ix > linux", linux, ix, zygos)
	}
	speedup := zygos / linux
	if speedup < 1.2 || speedup > 2.6 {
		t.Errorf("zygos speedup over linux %.2fx outside plausible band (paper: 1.63x)", speedup)
	}
}

func TestFig8StealShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 is slow")
	}
	res := Fig8(tiny())
	rows := res.Tables[0].Rows
	// Tiny grid is [0.25, 0.7, 0.98]: mid must exceed both ends for the
	// with-interrupt series (column 2).
	parse := func(r int) float64 {
		v, err := strconv.ParseFloat(rows[r][2], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	low, mid, high := parse(0), parse(1), parse(2)
	if mid <= low || mid <= high {
		t.Errorf("steal rate not inverted-U: %.1f %.1f %.1f", low, mid, high)
	}
}
