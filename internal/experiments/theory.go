package experiments

import (
	"fmt"

	"zygos/internal/dist"
	"zygos/internal/queueing"
)

// theoryMean is the unit service time used for Figure 2 (S̄ = 1 in the
// paper; 1 µs here, with latencies reported normalized to S̄).
const theoryMean = 1000 // ns

// Fig2 reproduces Figure 2: 99th-percentile tail latency (normalized to
// S̄) versus load for the four queueing models and four service-time
// distributions, n = 16.
func Fig2(opt Options) Result {
	res := Result{
		ID:    "fig2",
		Title: "p99 latency vs load for four queueing models (n=16, S̄=1)",
	}
	var fullLoads []float64
	for l := 0.05; l < 0.99; l += 0.025 {
		fullLoads = append(fullLoads, l)
	}
	loads := gridF(opt,
		[]float64{0.3, 0.7, 0.9},
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95},
		fullLoads)
	requests := opt.requests(60000, 400000)

	models := []struct {
		name string
		pol  queueing.Policy
		arr  queueing.Arrangement
	}{
		{"16xM/G/1/PS", queueing.PS, queueing.Partitioned},
		{"16xM/G/1/FCFS", queueing.FCFS, queueing.Partitioned},
		{"M/G/16/FCFS", queueing.FCFS, queueing.Centralized},
		{"M/G/16/PS", queueing.PS, queueing.Centralized},
	}
	for _, d := range fig2Dists() {
		t := Table{
			Title:  d.Name(),
			Header: []string{"load", models[0].name, models[1].name, models[2].name, models[3].name},
		}
		for _, load := range loads {
			row := []string{f2(load)}
			for _, m := range models {
				r := queueing.Run(queueing.Config{
					Servers:     16,
					Policy:      m.pol,
					Arrangement: m.arr,
					Service:     d,
					Load:        load,
					Requests:    requests,
					Warmup:      requests / 10,
					Seed:        opt.Seed + 1,
				})
				row = append(row, f2(float64(r.Latencies.P99())/theoryMean))
			}
			t.Rows = append(t.Rows, row)
		}
		res.Tables = append(res.Tables, t)
	}
	res.Notes = append(res.Notes,
		"latencies are normalized to S̄; compare against paper Figure 2 panels (a)-(d)",
		"expected floors: det=1.0, exp≈4.6, bimodal-1≈5.5, bimodal-2≈0.5 at low load")
	return res
}

func fig2Dists() []dist.Dist {
	return []dist.Dist{
		dist.Deterministic{V: theoryMean},
		dist.Exponential{MeanNS: theoryMean},
		dist.NewBimodal1(theoryMean),
		dist.NewBimodal2(theoryMean),
	}
}

// idealMaxLoad computes the zero-overhead bound on max load at the
// "p99 ≤ slo×S̄" SLO for the centralized or partitioned FCFS model, by
// bisection over the simulated queueing model (the grey lines of Figures
// 3 and 7).
func idealMaxLoad(d dist.Dist, arrangement queueing.Arrangement, sloMult float64, requests, iters int, seed int64) float64 {
	slo := int64(sloMult * d.Mean())
	eval := func(load float64) int64 {
		r := queueing.Run(queueing.Config{
			Servers:     16,
			Policy:      queueing.FCFS,
			Arrangement: arrangement,
			Service:     d,
			Load:        load,
			Requests:    requests,
			Warmup:      requests / 10,
			Seed:        seed,
		})
		return r.Latencies.P99()
	}
	return queueing.MaxLoadAtSLO(eval, slo, 0.05, 0.99, iters)
}

func distByName(name string, meanNS int64) dist.Dist {
	d, err := dist.ByName(name, meanNS)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return d
}
