package experiments

import (
	"fmt"

	"zygos/internal/dataplane"
)

// AblationSteal quantifies the design-space sensitivity DESIGN.md §6
// calls out: how ZygOS's max load @ SLO(10×S̄) for exponential 10µs tasks
// degrades as the stealing and interrupt machinery gets more expensive.
// It answers "how cheap do steals/IPIs have to be for work conservation
// to pay off?" — the tradeoff §7 of the paper discusses qualitatively.
func AblationSteal(opt Options) Result {
	res := Result{
		ID:    "ablation",
		Title: "ZygOS sensitivity to steal and IPI costs (exp, S̄=10µs, SLO 100µs)",
	}
	const mean = 10000
	requests := opt.requests(40000, 150000)
	d := distByName("exponential", mean)

	maxLoad := func(costs dataplane.CostModel, interrupts bool) float64 {
		cfg := dataplane.Config{
			System:     dataplane.Zygos,
			Service:    d,
			RatePerSec: 1,
			Requests:   requests,
			Warmup:     requests / 10,
			Seed:       opt.Seed + 20,
			Interrupts: interrupts,
			Costs:      costs,
		}
		return dataplane.MaxLoadAtSLO(cfg, 10*mean, 0.05, 0.99, opt.bisectIters())
	}

	stealCosts := gridI(opt,
		[]int64{400, 3200},
		[]int64{100, 400, 800, 1600, 3200},
		[]int64{100, 200, 400, 800, 1600, 3200, 6400})
	t1 := Table{
		Title:  "steal cost sweep (IPIs on, default IPI costs)",
		Header: []string{"steal cost (ns)", "max load @ SLO"},
	}
	for _, sc := range stealCosts {
		c := dataplane.DefaultCosts()
		c.StealCost = sc
		t1.Rows = append(t1.Rows, []string{fmt.Sprint(sc), f3(maxLoad(c, true))})
	}
	res.Tables = append(res.Tables, t1)

	ipiLats := gridI(opt,
		[]int64{800, 6400},
		[]int64{200, 800, 1600, 3200, 6400},
		[]int64{200, 400, 800, 1600, 3200, 6400, 12800})
	t2 := Table{
		Title:  "IPI delivery latency sweep (default steal cost)",
		Header: []string{"IPI latency (ns)", "max load @ SLO"},
	}
	for _, il := range ipiLats {
		c := dataplane.DefaultCosts()
		c.IPILatency = il
		t2.Rows = append(t2.Rows, []string{fmt.Sprint(il), f3(maxLoad(c, true))})
	}
	res.Tables = append(res.Tables, t2)

	// The architecture-level ablations for reference: interrupts off, and
	// the partitioned baseline (IX B=1) as the "no shuffle layer" floor.
	t3 := Table{
		Title:  "architecture ablations (default costs)",
		Header: []string{"variant", "max load @ SLO"},
	}
	t3.Rows = append(t3.Rows, []string{"zygos", f3(maxLoad(dataplane.DefaultCosts(), true))})
	t3.Rows = append(t3.Rows, []string{"zygos-no-interrupts", f3(maxLoad(dataplane.DefaultCosts(), false))})
	ixCfg := dataplane.Config{
		System:     dataplane.IX,
		Service:    d,
		RatePerSec: 1,
		Requests:   requests,
		Warmup:     requests / 10,
		Seed:       opt.Seed + 20,
		Batch:      1,
		Interrupts: true,
	}
	t3.Rows = append(t3.Rows, []string{"no stealing (ix B=1)",
		f3(dataplane.MaxLoadAtSLO(ixCfg, 10*mean, 0.05, 0.99, opt.bisectIters()))})
	res.Tables = append(res.Tables, t3)

	res.Notes = append(res.Notes,
		"expected: max load degrades smoothly with steal cost and IPI latency, and collapses toward the partitioned floor when stealing machinery costs approach the task size")
	return res
}
