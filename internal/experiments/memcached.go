package experiments

import (
	"fmt"

	"zygos/internal/dataplane"
	"zygos/internal/dist"
)

// Figure 9 service-time models. memcached tasks are tiny (<2µs mean,
// §6.2) with low dispersion: USR (tiny fixed values) is nearly
// deterministic; ETC (Pareto value sizes) carries slightly more variance
// from the value-copy path.
func etcService() dist.Dist {
	m, err := dist.NewMixture("memcached-etc",
		[]dist.Dist{
			dist.NewLognormalMean(1900, 0.25), // GETs with varying value sizes
			dist.NewLognormalMean(2600, 0.35), // SETs (allocation + copy)
		},
		[]float64{30.0 / 31, 1.0 / 31}) // 30:1 GET:SET
	if err != nil {
		panic(err)
	}
	return m
}

func usrService() dist.Dist {
	return dist.NewLognormalMean(1300, 0.10) // near-deterministic tiny GETs
}

// Fig9 reproduces Figure 9: p99 latency versus throughput for the
// memcached ETC and USR workloads under Linux, IX with batching disabled
// (B=1), IX with adaptive batching (B=64), and ZygOS; SLO 500µs.
func Fig9(opt Options) Result {
	res := Result{
		ID:    "fig9",
		Title: "memcached ETC/USR: p99 latency vs throughput (SLO 500µs)",
	}
	loads := gridF(opt,
		[]float64{0.35, 0.6},
		[]float64{0.2, 0.35, 0.5, 0.6, 0.7, 0.8},
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85})
	requests := opt.requests(60000, 300000)

	for _, wl := range []struct {
		name    string
		service dist.Dist
	}{{"ETC", etcService()}, {"USR", usrService()}} {
		t := Table{
			Title:  fmt.Sprintf("%s (S̄=%.1fµs): achieved-MRPS/p99-µs; * marks drops", wl.name, wl.service.Mean()/1e3),
			Header: []string{"load", "linux", "ix(B=1)", "zygos", "ix(B=64)"},
		}
		satRate := 16.0 / wl.service.Mean() * 1e9
		sysCfgs := []struct {
			sys   dataplane.System
			batch int
		}{
			{dataplane.LinuxFloating, 64},
			{dataplane.IX, 1},
			{dataplane.Zygos, 64},
			{dataplane.IX, 64},
		}
		curves := make([][]curvePoint, len(sysCfgs))
		for i, sc := range sysCfgs {
			for _, load := range loads {
				r := dataplane.Run(dataplane.Config{
					System:     sc.sys,
					Service:    wl.service,
					RatePerSec: load * satRate,
					Requests:   requests,
					Warmup:     requests / 10,
					Seed:       opt.Seed + 14,
					Batch:      sc.batch,
					Interrupts: true,
				})
				curves[i] = append(curves[i], curvePoint{
					mrps: r.AchievedRPS / 1e6,
					p99:  r.Latencies.P99(),
					ok:   r.Dropped == 0,
				})
			}
		}
		for li, load := range loads {
			row := []string{f2(load)}
			for i := range sysCfgs {
				row = append(row, fmtPoint(curves[i][li]))
			}
			t.Rows = append(t.Rows, row)
		}
		res.Tables = append(res.Tables, t)
	}
	res.Notes = append(res.Notes,
		"paper anchors: ZygOS and IX both clearly beat Linux; ZygOS beats IX B=1; IX B=64's batch amortization wins peak throughput on these tiny tasks",
		"ZygOS's same-flow implicit batching (pipelined requests on one connection) trades tail for throughput, §6.2")
	return res
}
