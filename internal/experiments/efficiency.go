package experiments

import (
	"zygos/internal/dataplane"
	"zygos/internal/queueing"
)

// systemMaxLoad bisects the dataplane simulation for the max load meeting
// the p99 ≤ 10×S̄ SLO.
func systemMaxLoad(sys dataplane.System, distName string, meanNS int64, batch int, interrupts bool, requests, iters int, seed int64) float64 {
	d := distByName(distName, meanNS)
	cfg := dataplane.Config{
		System:     sys,
		Service:    d,
		RatePerSec: 1, // replaced by the solver
		Requests:   requests,
		Warmup:     requests / 10,
		Seed:       seed,
		Batch:      batch,
		Interrupts: interrupts,
	}
	return dataplane.MaxLoadAtSLO(cfg, 10*meanNS, 0.05, 0.99, iters)
}

// efficiencyTable builds one panel of Figures 3/7: max load @ SLO versus
// mean service time for the given systems plus the two ideal bounds.
func efficiencyTable(opt Options, distName string, meansUS []int64, withZygos bool) Table {
	requests := opt.requests(40000, 150000)
	idealReq := opt.requests(60000, 300000)
	iters := opt.bisectIters()

	header := []string{"S̄(µs)", "M/G/16/FCFS", "16xM/G/1/FCFS"}
	if withZygos {
		header = append(header, "zygos")
	}
	header = append(header, "linux-floating", "ix(B=1)", "linux-partitioned")

	t := Table{Title: distName, Header: header}
	for _, us := range meansUS {
		mean := us * 1000
		d := distByName(distName, mean)
		row := []string{f2(float64(us))}
		row = append(row,
			f3(idealMaxLoad(d, queueing.Centralized, 10, idealReq, iters, opt.Seed+2)),
			f3(idealMaxLoad(d, queueing.Partitioned, 10, idealReq, iters, opt.Seed+2)))
		if withZygos {
			row = append(row, f3(systemMaxLoad(dataplane.Zygos, distName, mean, 64, true, requests, iters, opt.Seed+3)))
		}
		row = append(row,
			f3(systemMaxLoad(dataplane.LinuxFloating, distName, mean, 64, true, requests, iters, opt.Seed+3)),
			f3(systemMaxLoad(dataplane.IX, distName, mean, 1, true, requests, iters, opt.Seed+3)),
			f3(systemMaxLoad(dataplane.LinuxPartitioned, distName, mean, 64, true, requests, iters, opt.Seed+3)))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig3 reproduces Figure 3: maximum load meeting the p99 ≤ 10×S̄ SLO as
// a function of S̄ for the three baseline configurations (IX runs with
// batching disabled, as in the paper's synthetic experiments).
func Fig3(opt Options) Result {
	res := Result{
		ID:    "fig3",
		Title: "baseline max load @ SLO(10×S̄) vs service time",
	}
	means := gridI(opt,
		[]int64{10, 100},
		[]int64{5, 10, 25, 50, 100, 200},
		[]int64{2, 5, 10, 15, 25, 40, 60, 90, 120, 160, 200})
	dists := []string{"deterministic", "exponential", "bimodal-1"}
	if opt.Tiny {
		dists = dists[:1]
	}
	for _, dn := range dists {
		res.Tables = append(res.Tables, efficiencyTable(opt, dn, means, false))
	}
	res.Notes = append(res.Notes,
		"paper anchors: IX reaches 90% of the partitioned ideal at ≥25µs (det/exp); Linux-partitioned needs ≥120µs",
		"Linux-floating overtakes IX between 10 and 25µs for exponential service (paper: ≥20µs)")
	return res
}

// Fig7 reproduces Figure 7: Figure 3 plus ZygOS, over the small-task
// range where the schedulers separate.
func Fig7(opt Options) Result {
	res := Result{
		ID:    "fig7",
		Title: "max load @ SLO(10×S̄) vs service time, including ZygOS",
	}
	means := gridI(opt,
		[]int64{10, 25},
		[]int64{5, 10, 25, 50},
		[]int64{2, 5, 10, 15, 20, 25, 30, 40, 50})
	dists := []string{"deterministic", "exponential", "bimodal-1"}
	if opt.Tiny {
		dists = dists[1:2]
	}
	for _, dn := range dists {
		res.Tables = append(res.Tables, efficiencyTable(opt, dn, means, true))
	}
	res.Notes = append(res.Notes,
		"paper anchors: ZygOS at 75% of the centralized ideal for exp S̄=10µs and 88% for 25µs",
		"ZygOS reaches 90% of the centralized ideal at ≥30µs (det) / ≥40µs (exp, bimodal-1)")
	return res
}
