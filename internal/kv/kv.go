// Package kv is a memcached-like in-memory key-value store: a sharded
// hash table with per-shard LRU eviction under a byte budget, served
// over the runtime as method-routed operations. It is the "tiny task"
// application of the paper's §6.2 (memcached ETC/USR), where
// per-request work is <2µs and dataplane overheads dominate.
//
// # Wire encodings
//
// Routed requests (the v3 frame's method ID names the operation, so no
// opcode travels in the payload):
//
//	MethodGet:    payload = key
//	MethodDelete: payload = key
//	MethodSet:    payload = [klen:2 LE][key][value]
//
// The legacy method-0 encoding keeps one opcode byte in front:
// [op:1][klen:2][key][value]; v1/v2 clients land there unchanged.
// Replies carry a one-byte code ([code:1][value]) in both schemes;
// malformed payloads and unknown opcodes surface as wire statuses
// (StatusAppError / StatusNoMethod), not in-band bytes.
package kv

import (
	"container/list"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"zygos"
	"zygos/internal/bufpool"
)

// Method IDs of the routed operations. Method 0 stays the legacy
// opcode-in-payload route.
const (
	MethodGet    uint16 = 1
	MethodSet    uint16 = 2
	MethodDelete uint16 = 3
	// MethodInvalidate is the pub-sub topic invalidation events are
	// published on (see PublishInvalidations); it is a topic, not a
	// request route, and registers no handler.
	MethodInvalidate uint16 = 4
)

// Invalidation event ops, the first byte of an invalidation payload.
const (
	// InvalSet reports that a key was written (created or updated).
	InvalSet byte = iota
	// InvalDelete reports that a key was removed.
	InvalDelete
)

// Op codes of the legacy method-0 encoding: [op:1][klen:2][key][value].
const (
	OpGet byte = iota
	OpSet
	OpDelete
)

// Reply codes: [code:1][value].
const (
	ReplyHit byte = iota
	ReplyMiss
	ReplyStored
	ReplyDeleted
	ReplyNotFound
)

// ErrBadRequest reports a malformed request payload.
var ErrBadRequest = errors.New("kv: malformed request")

// EncodeGet builds a GET request payload.
func EncodeGet(buf []byte, key []byte) []byte {
	buf = append(buf, OpGet)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	return append(buf, key...)
}

// EncodeSet builds a SET request payload.
func EncodeSet(buf []byte, key, value []byte) []byte {
	buf = append(buf, OpSet)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	return append(buf, value...)
}

// EncodeDelete builds a DELETE request payload.
func EncodeDelete(buf []byte, key []byte) []byte {
	buf = append(buf, OpDelete)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	return append(buf, key...)
}

// DecodeRequest splits a legacy request payload into op, key and value.
func DecodeRequest(p []byte) (op byte, key, value []byte, err error) {
	if len(p) < 3 {
		return 0, nil, nil, ErrBadRequest
	}
	op = p[0]
	klen := int(binary.LittleEndian.Uint16(p[1:3]))
	if len(p) < 3+klen {
		return 0, nil, nil, ErrBadRequest
	}
	return op, p[3 : 3+klen], p[3+klen:], nil
}

// EncodeSetPayload builds a routed MethodSet payload: [klen:2][key][value].
// Routed GET and DELETE payloads are the bare key and need no encoder.
func EncodeSetPayload(buf []byte, key, value []byte) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	return append(buf, value...)
}

// DecodeSetPayload splits a routed MethodSet payload into key and value.
func DecodeSetPayload(p []byte) (key, value []byte, err error) {
	if len(p) < 2 {
		return nil, nil, ErrBadRequest
	}
	klen := int(binary.LittleEndian.Uint16(p[0:2]))
	if len(p) < 2+klen {
		return nil, nil, ErrBadRequest
	}
	return p[2 : 2+klen], p[2+klen:], nil
}

// Store is a sharded LRU cache.
type Store struct {
	shards []*shard
	mask   uint32

	// pub, when set, receives an invalidation event on MethodInvalidate
	// for every mutation served by the wire handlers. atomic.Value of
	// zygos.Publisher; nil until PublishInvalidations.
	pub atomic.Value
}

type entry struct {
	key   string
	value []byte
}

type shard struct {
	mu       sync.Mutex
	items    map[string]*list.Element
	lru      *list.List // front = most recent
	bytes    int
	maxBytes int
	hits     uint64
	misses   uint64
	evicts   uint64
}

// NewStore creates a store with the given shard count (rounded up to a
// power of two) and per-shard byte budget.
func NewStore(shards, maxBytesPerShard int) *Store {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n *= 2
	}
	if maxBytesPerShard <= 0 {
		maxBytesPerShard = 64 << 20
	}
	s := &Store{mask: uint32(n - 1)}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, &shard{
			items:    make(map[string]*list.Element),
			lru:      list.New(),
			maxBytes: maxBytesPerShard,
		})
	}
	return s
}

func (s *Store) shardFor(key []byte) *shard {
	h := fnv.New32a()
	h.Write(key)
	return s.shards[h.Sum32()&s.mask]
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	v, ok := s.AppendGet(nil, key)
	if !ok {
		return nil, false
	}
	return v, true
}

// AppendGet appends the value stored under key to dst and returns the
// extended slice — the single-copy form callers with their own buffers
// use.
func (s *Store) AppendGet(dst []byte, key []byte) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[string(key)]
	if !ok {
		sh.misses++
		return dst, false
	}
	sh.hits++
	sh.lru.MoveToFront(el)
	return append(dst, el.Value.(*entry).value...), true
}

// getReply builds the [ReplyHit][value] reply for key in a pooled
// buffer sized exactly for the value — the size is only known under the
// shard lock, which is why the pool checkout happens here rather than
// in the handler. The caller must bufpool.Put the reply once it is
// encoded on the wire. Returns nil, false on a miss.
func (s *Store) getReply(key []byte) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[string(key)]
	if !ok {
		sh.misses++
		return nil, false
	}
	sh.hits++
	sh.lru.MoveToFront(el)
	v := el.Value.(*entry).value
	buf := bufpool.Get(1 + len(v))
	return append(append(buf, ReplyHit), v...), true
}

// Set stores a copy of value under key, evicting LRU entries as needed.
func (s *Store) Set(key, value []byte) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	vcopy := append([]byte(nil), value...)
	if el, ok := sh.items[string(key)]; ok {
		e := el.Value.(*entry)
		sh.bytes += len(vcopy) - len(e.value)
		e.value = vcopy
		sh.lru.MoveToFront(el)
	} else {
		e := &entry{key: string(key), value: vcopy}
		sh.items[e.key] = sh.lru.PushFront(e)
		sh.bytes += len(e.key) + len(vcopy)
	}
	for sh.bytes > sh.maxBytes && sh.lru.Len() > 1 {
		oldest := sh.lru.Back()
		e := oldest.Value.(*entry)
		sh.lru.Remove(oldest)
		delete(sh.items, e.key)
		sh.bytes -= len(e.key) + len(e.value)
		sh.evicts++
	}
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(key []byte) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[string(key)]
	if !ok {
		return false
	}
	e := el.Value.(*entry)
	sh.lru.Remove(el)
	delete(sh.items, e.key)
	sh.bytes -= len(e.key) + len(e.value)
	return true
}

// Len returns the total number of stored entries.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// CacheStats aggregates hit/miss/eviction counters.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Bytes                   int
}

// Stats returns aggregate counters across shards.
func (s *Store) Stats() CacheStats {
	var cs CacheStats
	for _, sh := range s.shards {
		sh.mu.Lock()
		cs.Hits += sh.hits
		cs.Misses += sh.misses
		cs.Evictions += sh.evicts
		cs.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return cs
}

// PublishInvalidations wires the store's wire handlers to publish an
// invalidation event on topic MethodInvalidate for every SET and every
// effective DELETE they serve: caches layered in front of the store
// subscribe and evict on sight instead of polling. The event's frame ID
// is InvalidationID(key) — FilterExact/FilterMask/FilterRange narrow a
// subscription to a key or an ID-space slice — and its payload is
// [op:1][key]. Passing nil stops publishing. Direct Set/Delete calls on
// the Store (not via the handlers) do not publish; they are local
// mutations, not served traffic.
func (s *Store) PublishInvalidations(pub zygos.Publisher) {
	if pub == nil {
		s.pub.Store(pubBox{})
		return
	}
	s.pub.Store(pubBox{p: pub})
}

// pubBox wraps the Publisher so atomic.Value tolerates differing
// concrete types (and nil) across Store calls.
type pubBox struct{ p zygos.Publisher }

// InvalidationID maps a key to the 32-bit frame identifier its
// invalidation events carry (FNV-1a), letting subscribers filter the
// invalidation stream by key without decoding payloads.
func InvalidationID(key []byte) uint32 {
	h := fnv.New32a()
	h.Write(key)
	return h.Sum32()
}

// EncodeInvalidation builds an invalidation event payload: [op:1][key].
func EncodeInvalidation(buf []byte, op byte, key []byte) []byte {
	return append(append(buf, op), key...)
}

// DecodeInvalidation splits an invalidation event payload.
func DecodeInvalidation(p []byte) (op byte, key []byte, err error) {
	if len(p) < 1 {
		return 0, nil, ErrBadRequest
	}
	return p[0], p[1:], nil
}

// invalidate publishes one invalidation event if a publisher is wired.
func (s *Store) invalidate(op byte, key []byte) {
	box, _ := s.pub.Load().(pubBox)
	if box.p == nil {
		return
	}
	payload := EncodeInvalidation(bufpool.Get(1+len(key)), op, key)
	box.p.Publish(MethodInvalidate, InvalidationID(key), payload)
	bufpool.Put(payload)
}

// RegisterRoutes mounts the store on mux: one route per operation
// (MethodGet/MethodSet/MethodDelete) plus the legacy opcode-in-payload
// handler on method 0, so v1/v2 clients keep round-tripping against a
// routed server. The returned mux is the one passed in, for chaining.
func (s *Store) RegisterRoutes(mux *zygos.Mux) *zygos.Mux {
	mux.HandleFunc(MethodGet, s.HandleGet)
	mux.HandleFunc(MethodSet, s.HandleSet)
	mux.HandleFunc(MethodDelete, s.HandleDelete)
	mux.HandleFunc(0, s.ServeLegacy)
	return mux
}

// NewMux returns a fresh Mux with the store's routes registered — the
// one-liner servers mount as Config.Handler.
func (s *Store) NewMux() *zygos.Mux {
	return s.RegisterRoutes(zygos.NewMux())
}

// replyBytes holds the single-byte replies so answering with one does
// not allocate; index by reply code.
var replyBytes = [...][1]byte{
	{ReplyHit}, {ReplyMiss}, {ReplyStored}, {ReplyDeleted}, {ReplyNotFound},
}

// replyGet answers a GET for key: [ReplyHit][value] or [ReplyMiss].
// The hit reply lives in a pooled buffer sized to the value, returned
// once Reply has encoded it into the wire frame (Reply copies
// synchronously), so the GET hot path allocates nothing at steady state
// regardless of value size.
func (s *Store) replyGet(w zygos.ResponseWriter, key []byte) {
	v, ok := s.getReply(key)
	if !ok {
		w.Reply(replyBytes[ReplyMiss][:])
		return
	}
	w.Reply(v)
	bufpool.Put(v)
}

// HandleGet serves MethodGet: the payload is the key, the reply is
// [ReplyHit][value] or [ReplyMiss].
func (s *Store) HandleGet(w zygos.ResponseWriter, req *zygos.Request) {
	s.replyGet(w, req.Payload)
}

// HandleSet serves MethodSet: the payload is [klen:2][key][value]; a
// malformed payload is a StatusAppError on the wire.
func (s *Store) HandleSet(w zygos.ResponseWriter, req *zygos.Request) {
	key, value, err := DecodeSetPayload(req.Payload)
	if err != nil {
		w.Error(zygos.StatusAppError, err.Error())
		return
	}
	s.Set(key, value)
	s.invalidate(InvalSet, key)
	w.Reply(replyBytes[ReplyStored][:])
}

// HandleDelete serves MethodDelete: the payload is the key.
func (s *Store) HandleDelete(w zygos.ResponseWriter, req *zygos.Request) {
	if s.Delete(req.Payload) {
		s.invalidate(InvalDelete, req.Payload)
		w.Reply(replyBytes[ReplyDeleted][:])
		return
	}
	w.Reply(replyBytes[ReplyNotFound][:])
}

// ServeLegacy serves the method-0 route: the pre-routing encoding with
// an opcode byte in the payload. Malformed payloads surface as
// StatusAppError and unknown opcodes as StatusNoMethod — wire statuses
// a client can type-switch on, where the old Serve hid both behind an
// in-band error byte indistinguishable from data.
func (s *Store) ServeLegacy(w zygos.ResponseWriter, req *zygos.Request) {
	op, key, value, err := DecodeRequest(req.Payload)
	if err != nil {
		w.Error(zygos.StatusAppError, err.Error())
		return
	}
	switch op {
	case OpGet:
		s.replyGet(w, key)
	case OpSet:
		s.Set(key, value)
		s.invalidate(InvalSet, key)
		w.Reply(replyBytes[ReplyStored][:])
	case OpDelete:
		if s.Delete(key) {
			s.invalidate(InvalDelete, key)
			w.Reply(replyBytes[ReplyDeleted][:])
			return
		}
		w.Reply(replyBytes[ReplyNotFound][:])
	default:
		w.Error(zygos.StatusNoMethod, "kv: unknown opcode")
	}
}
