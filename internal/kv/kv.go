// Package kv is a memcached-like in-memory key-value store: a sharded
// hash table with per-shard LRU eviction under a byte budget, plus the
// compact request/reply encoding served over the runtime. It is the
// "tiny task" application of the paper's §6.2 (memcached ETC/USR), where
// per-request work is <2µs and dataplane overheads dominate.
package kv

import (
	"container/list"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"sync"
)

// Op codes of the wire encoding: [op:1][klen:2][key][value].
const (
	OpGet byte = iota
	OpSet
	OpDelete
)

// Reply codes: [code:1][value].
const (
	ReplyHit byte = iota
	ReplyMiss
	ReplyStored
	ReplyDeleted
	ReplyNotFound
	ReplyError
)

// ErrBadRequest reports a malformed request payload.
var ErrBadRequest = errors.New("kv: malformed request")

// EncodeGet builds a GET request payload.
func EncodeGet(buf []byte, key []byte) []byte {
	buf = append(buf, OpGet)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	return append(buf, key...)
}

// EncodeSet builds a SET request payload.
func EncodeSet(buf []byte, key, value []byte) []byte {
	buf = append(buf, OpSet)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	return append(buf, value...)
}

// EncodeDelete builds a DELETE request payload.
func EncodeDelete(buf []byte, key []byte) []byte {
	buf = append(buf, OpDelete)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	return append(buf, key...)
}

// DecodeRequest splits a request payload into op, key and value.
func DecodeRequest(p []byte) (op byte, key, value []byte, err error) {
	if len(p) < 3 {
		return 0, nil, nil, ErrBadRequest
	}
	op = p[0]
	klen := int(binary.LittleEndian.Uint16(p[1:3]))
	if len(p) < 3+klen {
		return 0, nil, nil, ErrBadRequest
	}
	return op, p[3 : 3+klen], p[3+klen:], nil
}

// Store is a sharded LRU cache.
type Store struct {
	shards []*shard
	mask   uint32
}

type entry struct {
	key   string
	value []byte
}

type shard struct {
	mu       sync.Mutex
	items    map[string]*list.Element
	lru      *list.List // front = most recent
	bytes    int
	maxBytes int
	hits     uint64
	misses   uint64
	evicts   uint64
}

// NewStore creates a store with the given shard count (rounded up to a
// power of two) and per-shard byte budget.
func NewStore(shards, maxBytesPerShard int) *Store {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n *= 2
	}
	if maxBytesPerShard <= 0 {
		maxBytesPerShard = 64 << 20
	}
	s := &Store{mask: uint32(n - 1)}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, &shard{
			items:    make(map[string]*list.Element),
			lru:      list.New(),
			maxBytes: maxBytesPerShard,
		})
	}
	return s
}

func (s *Store) shardFor(key []byte) *shard {
	h := fnv.New32a()
	h.Write(key)
	return s.shards[h.Sum32()&s.mask]
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[string(key)]
	if !ok {
		sh.misses++
		return nil, false
	}
	sh.hits++
	sh.lru.MoveToFront(el)
	v := el.Value.(*entry).value
	return append([]byte(nil), v...), true
}

// Set stores a copy of value under key, evicting LRU entries as needed.
func (s *Store) Set(key, value []byte) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	vcopy := append([]byte(nil), value...)
	if el, ok := sh.items[string(key)]; ok {
		e := el.Value.(*entry)
		sh.bytes += len(vcopy) - len(e.value)
		e.value = vcopy
		sh.lru.MoveToFront(el)
	} else {
		e := &entry{key: string(key), value: vcopy}
		sh.items[e.key] = sh.lru.PushFront(e)
		sh.bytes += len(e.key) + len(vcopy)
	}
	for sh.bytes > sh.maxBytes && sh.lru.Len() > 1 {
		oldest := sh.lru.Back()
		e := oldest.Value.(*entry)
		sh.lru.Remove(oldest)
		delete(sh.items, e.key)
		sh.bytes -= len(e.key) + len(e.value)
		sh.evicts++
	}
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(key []byte) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[string(key)]
	if !ok {
		return false
	}
	e := el.Value.(*entry)
	sh.lru.Remove(el)
	delete(sh.items, e.key)
	sh.bytes -= len(e.key) + len(e.value)
	return true
}

// Len returns the total number of stored entries.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// CacheStats aggregates hit/miss/eviction counters.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Bytes                   int
}

// Stats returns aggregate counters across shards.
func (s *Store) Stats() CacheStats {
	var cs CacheStats
	for _, sh := range s.shards {
		sh.mu.Lock()
		cs.Hits += sh.hits
		cs.Misses += sh.misses
		cs.Evictions += sh.evicts
		cs.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return cs
}

// Serve handles one encoded request and returns the encoded reply. It is
// the application handler mounted on the runtime.
func (s *Store) Serve(req []byte) []byte {
	op, key, value, err := DecodeRequest(req)
	if err != nil {
		return []byte{ReplyError}
	}
	switch op {
	case OpGet:
		v, ok := s.Get(key)
		if !ok {
			return []byte{ReplyMiss}
		}
		return append([]byte{ReplyHit}, v...)
	case OpSet:
		s.Set(key, value)
		return []byte{ReplyStored}
	case OpDelete:
		if s.Delete(key) {
			return []byte{ReplyDeleted}
		}
		return []byte{ReplyNotFound}
	default:
		return []byte{ReplyError}
	}
}
