package kv

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"zygos"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(key, value []byte) bool {
		if len(key) > 65535 {
			key = key[:65535]
		}
		p := EncodeSet(nil, key, value)
		op, k, v, err := DecodeRequest(p)
		return err == nil && op == OpSet && bytes.Equal(k, key) && bytes.Equal(v, value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	for _, p := range [][]byte{nil, {OpGet}, {OpGet, 10, 0, 'a'}} {
		if _, _, _, err := DecodeRequest(p); err == nil {
			t.Errorf("payload %v must fail to decode", p)
		}
	}
}

func TestGetSetDelete(t *testing.T) {
	s := NewStore(4, 1<<20)
	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("empty store must miss")
	}
	s.Set([]byte("k"), []byte("v1"))
	v, ok := s.Get([]byte("k"))
	if !ok || string(v) != "v1" {
		t.Fatalf("got %q %v", v, ok)
	}
	s.Set([]byte("k"), []byte("v2"))
	if v, _ := s.Get([]byte("k")); string(v) != "v2" {
		t.Fatal("update did not take")
	}
	if !s.Delete([]byte("k")) || s.Delete([]byte("k")) {
		t.Fatal("delete semantics broken")
	}
	if s.Len() != 0 {
		t.Fatal("Len after delete")
	}
}

func TestValueCopied(t *testing.T) {
	s := NewStore(1, 1<<20)
	val := []byte("abc")
	s.Set([]byte("k"), val)
	val[0] = 'z'
	got, _ := s.Get([]byte("k"))
	if string(got) != "abc" {
		t.Fatal("store must copy values on Set")
	}
	got[0] = 'q'
	got2, _ := s.Get([]byte("k"))
	if string(got2) != "abc" {
		t.Fatal("store must copy values on Get")
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard, tiny budget: inserting beyond the budget evicts the
	// least recently used entries.
	s := NewStore(1, 64)
	for i := 0; i < 10; i++ {
		s.Set([]byte(fmt.Sprintf("key%02d", i)), bytes.Repeat([]byte{'v'}, 10))
	}
	if s.Len() >= 10 {
		t.Fatalf("no eviction happened: %d entries", s.Len())
	}
	// The most recent key survives.
	if _, ok := s.Get([]byte("key09")); !ok {
		t.Fatal("most recent key evicted")
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatal("eviction counter not incremented")
	}
}

func TestLRUOrderRespectsAccess(t *testing.T) {
	s := NewStore(1, 40)
	s.Set([]byte("a"), bytes.Repeat([]byte{'x'}, 15))
	s.Set([]byte("b"), bytes.Repeat([]byte{'x'}, 15))
	s.Get([]byte("a")) // refresh a
	s.Set([]byte("c"), bytes.Repeat([]byte{'x'}, 15))
	if _, ok := s.Get([]byte("a")); !ok {
		t.Fatal("recently used key evicted")
	}
	if _, ok := s.Get([]byte("b")); ok {
		t.Fatal("LRU key survived")
	}
}

// newRoutedServer mounts the store's routes on a fresh in-process
// server and returns a connected client.
func newRoutedServer(t *testing.T, s *Store) *zygos.Client {
	t.Helper()
	srv, err := zygos.NewServer(zygos.Config{Cores: 2, Handler: s.NewMux().Handler()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := srv.NewClient()
	t.Cleanup(c.Close)
	return c
}

// The full routed GET/SET/DELETE cycle over the runtime: the method ID
// travels in the frame header, the payloads carry no opcode byte.
func TestRoutedServe(t *testing.T) {
	s := NewStore(4, 1<<20)
	c := newRoutedServer(t, s)
	call := func(method uint16, payload []byte) []byte {
		t.Helper()
		r, err := c.CallMethod(method, payload)
		if err != nil {
			t.Fatalf("method %d: %v", method, err)
		}
		return r
	}
	if r := call(MethodGet, []byte("k")); r[0] != ReplyMiss {
		t.Fatalf("miss reply %v", r)
	}
	if r := call(MethodSet, EncodeSetPayload(nil, []byte("k"), []byte("hello"))); r[0] != ReplyStored {
		t.Fatalf("set reply %v", r)
	}
	r := call(MethodGet, []byte("k"))
	if r[0] != ReplyHit || string(r[1:]) != "hello" {
		t.Fatalf("hit reply %v", r)
	}
	if r := call(MethodDelete, []byte("k")); r[0] != ReplyDeleted {
		t.Fatalf("delete reply %v", r)
	}
	if r := call(MethodDelete, []byte("k")); r[0] != ReplyNotFound {
		t.Fatalf("re-delete reply %v", r)
	}
}

// The method-0 legacy route keeps serving the opcode-in-payload
// encoding, so a client that predates method routing still works.
func TestLegacyRouteServes(t *testing.T) {
	s := NewStore(4, 1<<20)
	c := newRoutedServer(t, s)
	if r, err := c.Call(EncodeSet(nil, []byte("k"), []byte("v"))); err != nil || r[0] != ReplyStored {
		t.Fatalf("legacy set: %v %v", r, err)
	}
	r, err := c.Call(EncodeGet(nil, []byte("k")))
	if err != nil || r[0] != ReplyHit || string(r[1:]) != "v" {
		t.Fatalf("legacy get: %v %v", r, err)
	}
}

// Regression (wire-status error model): unknown opcodes must surface as
// a typed *StatusError with StatusNoMethod and malformed payloads as
// StatusAppError — never as an in-band error byte a client could
// mistake for data.
func TestErrorsSurfaceAsWireStatus(t *testing.T) {
	s := NewStore(4, 1<<20)
	c := newRoutedServer(t, s)

	statusOf := func(resp []byte, err error) uint8 {
		t.Helper()
		if resp != nil {
			t.Fatalf("error reply must carry no payload, got %q", resp)
		}
		var se *zygos.StatusError
		if !errors.As(err, &se) {
			t.Fatalf("want *StatusError, got %v", err)
		}
		return se.Code
	}

	// Unknown opcode on the legacy route.
	if code := statusOf(c.Call([]byte{99, 0, 0})); code != zygos.StatusNoMethod {
		t.Fatalf("unknown opcode: status %d, want StatusNoMethod", code)
	}
	// Malformed legacy payload (too short to carry a key length).
	if code := statusOf(c.Call([]byte{})); code != zygos.StatusAppError {
		t.Fatalf("malformed legacy payload: status %d, want StatusAppError", code)
	}
	// Malformed routed SET payload (klen pointing past the end).
	if code := statusOf(c.CallMethod(MethodSet, []byte{0xFF, 0xFF, 'x'})); code != zygos.StatusAppError {
		t.Fatalf("malformed routed SET: status %d, want StatusAppError", code)
	}
	// An unregistered method is the Mux's NotFound: StatusNoMethod.
	if code := statusOf(c.CallMethod(4242, []byte("x"))); code != zygos.StatusNoMethod {
		t.Fatalf("unregistered method: status %d, want StatusNoMethod", code)
	}
	// The connection survives all four errors.
	if r, err := c.CallMethod(MethodGet, []byte("k")); err != nil || r[0] != ReplyMiss {
		t.Fatalf("connection broken after status errors: %v %v", r, err)
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewStore(2, 1<<20)
	s.Set([]byte("k"), []byte("v"))
	s.Get([]byte("k"))
	s.Get([]byte("nope"))
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Bytes == 0 {
		t.Fatal("bytes accounting missing")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore(8, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := []byte(fmt.Sprintf("key-%d", i%100))
				switch i % 3 {
				case 0:
					s.Set(key, key)
				case 1:
					if v, ok := s.Get(key); ok && !bytes.Equal(v, key) {
						t.Error("corrupted value")
						return
					}
				default:
					s.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestEncodeDecodeSetPayload(t *testing.T) {
	f := func(key, value []byte) bool {
		if len(key) > 65535 {
			key = key[:65535]
		}
		p := EncodeSetPayload(nil, key, value)
		k, v, err := DecodeSetPayload(p)
		return err == nil && bytes.Equal(k, key) && bytes.Equal(v, value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range [][]byte{nil, {5}, {10, 0, 'a'}} {
		if _, _, err := DecodeSetPayload(p); err == nil {
			t.Errorf("payload %v must fail to decode", p)
		}
	}
}

func BenchmarkAppendGet(b *testing.B) {
	s := NewStore(16, 1<<20)
	s.Set([]byte("benchkey"), bytes.Repeat([]byte{'v'}, 100))
	key := []byte("benchkey")
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, ok := s.AppendGet(buf[:0], key)
		if !ok {
			b.Fatal("miss")
		}
		buf = r
	}
}

// Invalidation events: every SET and effective DELETE served by the
// wire handlers publishes [op][key] on MethodInvalidate with the key's
// FNV-derived frame ID, so front caches can subscribe — including to a
// single key via FilterExact — and evict on sight.
func TestInvalidationEvents(t *testing.T) {
	s := NewStore(4, 1<<20)
	srv, err := zygos.NewServer(zygos.Config{Cores: 2, Handler: s.NewMux().Handler()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	s.PublishInvalidations(srv)
	c := srv.NewClient()
	t.Cleanup(c.Close)

	type event struct {
		id  uint32
		op  byte
		key string
	}
	events := make(chan event, 16)
	if _, err := c.Subscribe(MethodInvalidate, zygos.FilterAll(), zygos.SubscribeOptions{}, func(id uint32, payload []byte) {
		op, key, err := DecodeInvalidation(payload)
		if err != nil {
			t.Errorf("bad invalidation payload: %v", err)
			return
		}
		events <- event{id: id, op: op, key: string(key)}
	}); err != nil {
		t.Fatal(err)
	}
	// A keyed subscription: only hot-key events.
	hotOnly := make(chan event, 16)
	if _, err := c.Subscribe(MethodInvalidate, zygos.FilterExact(InvalidationID([]byte("hot"))), zygos.SubscribeOptions{}, func(id uint32, payload []byte) {
		op, key, _ := DecodeInvalidation(payload)
		hotOnly <- event{id: id, op: op, key: string(key)}
	}); err != nil {
		t.Fatal(err)
	}

	next := func(ch chan event) event {
		t.Helper()
		select {
		case e := <-ch:
			return e
		case <-time.After(2 * time.Second):
			t.Fatal("no invalidation event arrived")
			return event{}
		}
	}

	if _, err := c.CallMethod(MethodSet, EncodeSetPayload(nil, []byte("cold"), []byte("v"))); err != nil {
		t.Fatal(err)
	}
	if e := next(events); e.op != InvalSet || e.key != "cold" || e.id != InvalidationID([]byte("cold")) {
		t.Fatalf("set event %+v", e)
	}
	if _, err := c.CallMethod(MethodSet, EncodeSetPayload(nil, []byte("hot"), []byte("v"))); err != nil {
		t.Fatal(err)
	}
	if e := next(events); e.key != "hot" {
		t.Fatalf("event %+v", e)
	}
	if e := next(hotOnly); e.op != InvalSet || e.key != "hot" {
		t.Fatalf("keyed subscription event %+v", e)
	}
	if _, err := c.CallMethod(MethodDelete, []byte("hot")); err != nil {
		t.Fatal(err)
	}
	if e := next(events); e.op != InvalDelete || e.key != "hot" {
		t.Fatalf("delete event %+v", e)
	}
	if e := next(hotOnly); e.op != InvalDelete {
		t.Fatalf("keyed delete event %+v", e)
	}
	// Deleting an absent key changes nothing and publishes nothing; the
	// legacy route publishes like the routed one.
	if _, err := c.CallMethod(MethodDelete, []byte("absent")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(EncodeSet(nil, []byte("legacy"), []byte("v"))); err != nil {
		t.Fatal(err)
	}
	if e := next(events); e.op != InvalSet || e.key != "legacy" {
		t.Fatalf("legacy set event %+v (absent-delete must publish nothing)", e)
	}
	select {
	case e := <-hotOnly:
		t.Fatalf("keyed subscription leaked %+v", e)
	default:
	}
	// Unwiring stops the stream.
	s.PublishInvalidations(nil)
	if _, err := c.CallMethod(MethodSet, EncodeSetPayload(nil, []byte("quiet"), []byte("v"))); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-events:
		t.Fatalf("event after unwire: %+v", e)
	case <-time.After(50 * time.Millisecond):
	}
}
