package kv

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(key, value []byte) bool {
		if len(key) > 65535 {
			key = key[:65535]
		}
		p := EncodeSet(nil, key, value)
		op, k, v, err := DecodeRequest(p)
		return err == nil && op == OpSet && bytes.Equal(k, key) && bytes.Equal(v, value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	for _, p := range [][]byte{nil, {OpGet}, {OpGet, 10, 0, 'a'}} {
		if _, _, _, err := DecodeRequest(p); err == nil {
			t.Errorf("payload %v must fail to decode", p)
		}
	}
}

func TestGetSetDelete(t *testing.T) {
	s := NewStore(4, 1<<20)
	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("empty store must miss")
	}
	s.Set([]byte("k"), []byte("v1"))
	v, ok := s.Get([]byte("k"))
	if !ok || string(v) != "v1" {
		t.Fatalf("got %q %v", v, ok)
	}
	s.Set([]byte("k"), []byte("v2"))
	if v, _ := s.Get([]byte("k")); string(v) != "v2" {
		t.Fatal("update did not take")
	}
	if !s.Delete([]byte("k")) || s.Delete([]byte("k")) {
		t.Fatal("delete semantics broken")
	}
	if s.Len() != 0 {
		t.Fatal("Len after delete")
	}
}

func TestValueCopied(t *testing.T) {
	s := NewStore(1, 1<<20)
	val := []byte("abc")
	s.Set([]byte("k"), val)
	val[0] = 'z'
	got, _ := s.Get([]byte("k"))
	if string(got) != "abc" {
		t.Fatal("store must copy values on Set")
	}
	got[0] = 'q'
	got2, _ := s.Get([]byte("k"))
	if string(got2) != "abc" {
		t.Fatal("store must copy values on Get")
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard, tiny budget: inserting beyond the budget evicts the
	// least recently used entries.
	s := NewStore(1, 64)
	for i := 0; i < 10; i++ {
		s.Set([]byte(fmt.Sprintf("key%02d", i)), bytes.Repeat([]byte{'v'}, 10))
	}
	if s.Len() >= 10 {
		t.Fatalf("no eviction happened: %d entries", s.Len())
	}
	// The most recent key survives.
	if _, ok := s.Get([]byte("key09")); !ok {
		t.Fatal("most recent key evicted")
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatal("eviction counter not incremented")
	}
}

func TestLRUOrderRespectsAccess(t *testing.T) {
	s := NewStore(1, 40)
	s.Set([]byte("a"), bytes.Repeat([]byte{'x'}, 15))
	s.Set([]byte("b"), bytes.Repeat([]byte{'x'}, 15))
	s.Get([]byte("a")) // refresh a
	s.Set([]byte("c"), bytes.Repeat([]byte{'x'}, 15))
	if _, ok := s.Get([]byte("a")); !ok {
		t.Fatal("recently used key evicted")
	}
	if _, ok := s.Get([]byte("b")); ok {
		t.Fatal("LRU key survived")
	}
}

func TestServe(t *testing.T) {
	s := NewStore(4, 1<<20)
	if r := s.Serve(EncodeGet(nil, []byte("k"))); r[0] != ReplyMiss {
		t.Fatalf("miss reply %v", r)
	}
	if r := s.Serve(EncodeSet(nil, []byte("k"), []byte("hello"))); r[0] != ReplyStored {
		t.Fatalf("set reply %v", r)
	}
	r := s.Serve(EncodeGet(nil, []byte("k")))
	if r[0] != ReplyHit || string(r[1:]) != "hello" {
		t.Fatalf("hit reply %v", r)
	}
	if r := s.Serve(EncodeDelete(nil, []byte("k"))); r[0] != ReplyDeleted {
		t.Fatalf("delete reply %v", r)
	}
	if r := s.Serve(EncodeDelete(nil, []byte("k"))); r[0] != ReplyNotFound {
		t.Fatalf("re-delete reply %v", r)
	}
	if r := s.Serve([]byte{}); r[0] != ReplyError {
		t.Fatalf("malformed reply %v", r)
	}
	if r := s.Serve([]byte{99, 0, 0}); r[0] != ReplyError {
		t.Fatalf("unknown op reply %v", r)
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewStore(2, 1<<20)
	s.Set([]byte("k"), []byte("v"))
	s.Get([]byte("k"))
	s.Get([]byte("nope"))
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Bytes == 0 {
		t.Fatal("bytes accounting missing")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore(8, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := []byte(fmt.Sprintf("key-%d", i%100))
				switch i % 3 {
				case 0:
					s.Set(key, key)
				case 1:
					if v, ok := s.Get(key); ok && !bytes.Equal(v, key) {
						t.Error("corrupted value")
						return
					}
				default:
					s.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkServeGet(b *testing.B) {
	s := NewStore(16, 1<<20)
	s.Set([]byte("benchkey"), bytes.Repeat([]byte{'v'}, 100))
	req := EncodeGet(nil, []byte("benchkey"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Serve(req)
	}
}
