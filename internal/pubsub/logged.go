package pubsub

import "sync"

// LoggedBus wraps a Publisher and records every published frame (with a
// copied payload, since the original is only valid during Publish) so
// tests can assert on the publication history or replay it into another
// bus.
type LoggedBus struct {
	inner Publisher

	mu  sync.Mutex
	log []Frame
}

// NewLoggedBus wraps inner. A nil inner records without forwarding,
// which makes LoggedBus usable as a bare frame recorder.
func NewLoggedBus(inner Publisher) *LoggedBus {
	return &LoggedBus{inner: inner}
}

// Publish records fr and forwards it to the wrapped publisher.
func (l *LoggedBus) Publish(fr Frame) int {
	cp := fr
	if fr.Payload != nil {
		cp.Payload = append([]byte(nil), fr.Payload...)
	}
	l.mu.Lock()
	l.log = append(l.log, cp)
	l.mu.Unlock()
	if l.inner == nil {
		return 0
	}
	return l.inner.Publish(fr)
}

// Log returns a snapshot of the recorded frames in publication order.
func (l *LoggedBus) Log() []Frame {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Frame(nil), l.log...)
}

// Len reports how many frames have been recorded.
func (l *LoggedBus) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.log)
}

// Reset discards the recorded history.
func (l *LoggedBus) Reset() {
	l.mu.Lock()
	l.log = nil
	l.mu.Unlock()
}

// Replay publishes the recorded frames, in order, into dst. Returns the
// total delivery count.
func (l *LoggedBus) Replay(dst Publisher) int {
	frames := l.Log()
	n := 0
	for _, fr := range frames {
		n += dst.Publish(fr)
	}
	return n
}
