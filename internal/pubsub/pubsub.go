// Package pubsub implements the server-side fan-out bus behind the v4
// streaming frames: a CAN-bus-style frame mux where subscribers register
// filter predicates over a topic's 32-bit frame identifiers — exact ID,
// masked ID, ID range, or an arbitrary func — and each published frame
// fans out to every matching subscription.
//
// The bus is deliberately transport-agnostic: a subscription's deliver
// function is just a callback. The runtime layer points it at a
// per-connection push queue (fair-queued behind the batching egress
// writer); tests point it at slices. Delivery is synchronous with
// Publish — the deliver callback must never block, which the runtime's
// queue-append (drop-oldest, never-blocking) guarantees — and the
// published Frame's payload is only valid for the duration of the
// callback; a deliverer that retains it must copy.
package pubsub

import (
	"sync"
	"sync/atomic"
)

// Frame is one published datum: a topic (sharing the wire method ID
// space), a 32-bit frame identifier filters match on, and an opaque
// payload. The payload is owned by the publisher and valid only for the
// duration of the Publish call.
type Frame struct {
	Topic   uint16
	ID      uint32
	Payload []byte
}

// Filter kinds. The numeric values travel on the wire in SUBSCRIBE
// payloads (see wire.go); FilterFunc is server-side only — a predicate
// func cannot be serialized, so it is rejected by the wire encoder and
// used directly against a Bus in-process.
const (
	// FilterAll matches every frame on the topic.
	FilterAll uint8 = 0
	// FilterExact matches frames whose ID equals the filter's ID.
	FilterExact uint8 = 1
	// FilterMask matches frames for which frame.ID & Mask == ID & Mask —
	// the classic CAN acceptance filter.
	FilterMask uint8 = 2
	// FilterRange matches frames with Lo <= ID <= Hi, inclusive.
	FilterRange uint8 = 3
	// FilterFunc matches frames for which Fn returns true. Not wire-
	// encodable.
	FilterFunc uint8 = 4
)

// Filter selects which of a topic's frames a subscription receives.
// The zero value is FilterAll.
type Filter struct {
	Kind uint8
	// ID is the exact identifier (FilterExact) or the reference the mask
	// applies to (FilterMask).
	ID uint32
	// Mask selects the ID bits that must match (FilterMask).
	Mask uint32
	// Lo and Hi bound the inclusive identifier range (FilterRange).
	Lo, Hi uint32
	// Fn is the arbitrary predicate (FilterFunc); it must be fast and
	// must not retain the frame's payload.
	Fn func(Frame) bool
}

// Exact returns a FilterExact for id.
func Exact(id uint32) Filter { return Filter{Kind: FilterExact, ID: id} }

// Mask returns a FilterMask accepting frames whose ID agrees with id on
// the bits selected by mask.
func Mask(id, mask uint32) Filter { return Filter{Kind: FilterMask, ID: id, Mask: mask} }

// Range returns a FilterRange accepting frame IDs in [lo, hi].
func Range(lo, hi uint32) Filter { return Filter{Kind: FilterRange, Lo: lo, Hi: hi} }

// Func returns a FilterFunc wrapping fn. Server-side only.
func Func(fn func(Frame) bool) Filter { return Filter{Kind: FilterFunc, Fn: fn} }

// Match reports whether the filter accepts fr. Unknown kinds match
// nothing.
func (f Filter) Match(fr Frame) bool {
	switch f.Kind {
	case FilterAll:
		return true
	case FilterExact:
		return fr.ID == f.ID
	case FilterMask:
		return fr.ID&f.Mask == f.ID&f.Mask
	case FilterRange:
		return fr.ID >= f.Lo && fr.ID <= f.Hi
	case FilterFunc:
		return f.Fn != nil && f.Fn(fr)
	}
	return false
}

// Publisher is anything frames can be published into: the Bus itself, or
// the LoggedBus wrapper tests replay from.
type Publisher interface {
	// Publish fans fr out to matching subscriptions and returns how many
	// received it.
	Publish(fr Frame) int
}

// Sub is one live subscription on a Bus.
type Sub struct {
	bus     *Bus
	topic   uint16
	filter  Filter
	deliver func(Frame)
	// closed flips once on Unsubscribe; a concurrent Publish that
	// already snapshotted the topic's subscriber list checks it before
	// delivering, so a retired subscription stops receiving promptly
	// even while the copy-on-write list still carries it.
	closed atomic.Bool

	delivered atomic.Uint64
}

// Topic returns the subscription's topic.
func (s *Sub) Topic() uint16 { return s.topic }

// Delivered reports how many frames matched and were handed to the
// deliver callback.
func (s *Sub) Delivered() uint64 { return s.delivered.Load() }

// Unsubscribe retires the subscription: no further frames are
// delivered, and the bus forgets it. Idempotent.
func (s *Sub) Unsubscribe() {
	if s.closed.Swap(true) {
		return
	}
	s.bus.remove(s)
}

// Bus is the filter-matching fan-out mux. Subscription lists are
// copy-on-write per topic: Publish snapshots the topic's list under a
// read lock and fans out lock-free, so a slow (or huge) fan-out never
// blocks subscribe/unsubscribe and vice versa.
type Bus struct {
	mu     sync.RWMutex
	topics map[uint16][]*Sub

	published atomic.Uint64
	delivered atomic.Uint64
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{topics: make(map[uint16][]*Sub)}
}

// Subscribe registers deliver to receive frames on topic accepted by
// filter. deliver runs synchronously inside Publish and must not block;
// the frame payload is valid only for the duration of the call.
func (b *Bus) Subscribe(topic uint16, filter Filter, deliver func(Frame)) *Sub {
	s := &Sub{bus: b, topic: topic, filter: filter, deliver: deliver}
	b.mu.Lock()
	old := b.topics[topic]
	subs := make([]*Sub, len(old)+1)
	copy(subs, old)
	subs[len(old)] = s
	b.topics[topic] = subs
	b.mu.Unlock()
	return s
}

// remove drops s from its topic's copy-on-write list.
func (b *Bus) remove(s *Sub) {
	b.mu.Lock()
	old := b.topics[s.topic]
	subs := make([]*Sub, 0, len(old))
	for _, o := range old {
		if o != s {
			subs = append(subs, o)
		}
	}
	if len(subs) == 0 {
		delete(b.topics, s.topic)
	} else {
		b.topics[s.topic] = subs
	}
	b.mu.Unlock()
}

// Publish fans fr out to every matching subscription on its topic and
// returns the number of deliveries. It never blocks on subscribers: the
// deliver callbacks are required to be non-blocking (the runtime's are
// bounded queue appends).
func (b *Bus) Publish(fr Frame) int {
	b.published.Add(1)
	b.mu.RLock()
	subs := b.topics[fr.Topic]
	b.mu.RUnlock()
	n := 0
	for _, s := range subs {
		if s.closed.Load() || !s.filter.Match(fr) {
			continue
		}
		s.deliver(fr)
		s.delivered.Add(1)
		n++
	}
	if n > 0 {
		b.delivered.Add(uint64(n))
	}
	return n
}

// Subscribers reports how many live subscriptions topic currently has.
func (b *Bus) Subscribers(topic uint16) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.topics[topic])
}

// Stats is a snapshot of the bus counters.
type Stats struct {
	// Published counts Publish calls.
	Published uint64
	// Delivered counts frame deliveries summed over subscriptions (one
	// frame fanned out to k subscribers counts k).
	Delivered uint64
	// Subscriptions is the current live subscription count.
	Subscriptions int
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() Stats {
	st := Stats{Published: b.published.Load(), Delivered: b.delivered.Load()}
	b.mu.RLock()
	for _, subs := range b.topics {
		st.Subscriptions += len(subs)
	}
	b.mu.RUnlock()
	return st
}
