package pubsub

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestFilterMatch(t *testing.T) {
	cases := []struct {
		name string
		f    Filter
		id   uint32
		want bool
	}{
		{"all", Filter{}, 12345, true},
		{"exact-hit", Exact(7), 7, true},
		{"exact-miss", Exact(7), 8, false},
		{"mask-hit", Mask(0x100, 0xF00), 0x1AB, true},
		{"mask-miss", Mask(0x100, 0xF00), 0x2AB, false},
		{"range-lo", Range(10, 20), 10, true},
		{"range-hi", Range(10, 20), 20, true},
		{"range-miss", Range(10, 20), 21, false},
		{"func-hit", Func(func(fr Frame) bool { return fr.ID%2 == 0 }), 4, true},
		{"func-miss", Func(func(fr Frame) bool { return fr.ID%2 == 0 }), 5, false},
		{"func-nil", Filter{Kind: FilterFunc}, 5, false},
		{"unknown-kind", Filter{Kind: 99}, 5, false},
	}
	for _, tc := range cases {
		if got := tc.f.Match(Frame{ID: tc.id}); got != tc.want {
			t.Errorf("%s: Match(ID=%d) = %v, want %v", tc.name, tc.id, got, tc.want)
		}
	}
}

func TestBusFanout(t *testing.T) {
	b := NewBus()
	var all, odd, ranged []uint32
	sAll := b.Subscribe(1, Filter{}, func(fr Frame) { all = append(all, fr.ID) })
	b.Subscribe(1, Func(func(fr Frame) bool { return fr.ID%2 == 1 }), func(fr Frame) { odd = append(odd, fr.ID) })
	b.Subscribe(1, Range(2, 3), func(fr Frame) { ranged = append(ranged, fr.ID) })
	b.Subscribe(2, Filter{}, func(fr Frame) { t.Errorf("topic 2 subscriber got frame %d", fr.ID) })

	for id := uint32(0); id < 5; id++ {
		b.Publish(Frame{Topic: 1, ID: id})
	}
	if want := []uint32{0, 1, 2, 3, 4}; !equalU32(all, want) {
		t.Errorf("all = %v, want %v", all, want)
	}
	if want := []uint32{1, 3}; !equalU32(odd, want) {
		t.Errorf("odd = %v, want %v", odd, want)
	}
	if want := []uint32{2, 3}; !equalU32(ranged, want) {
		t.Errorf("ranged = %v, want %v", ranged, want)
	}
	if got := sAll.Delivered(); got != 5 {
		t.Errorf("sAll.Delivered() = %d, want 5", got)
	}
	if n := b.Publish(Frame{Topic: 3, ID: 1}); n != 0 {
		t.Errorf("publish to empty topic delivered %d", n)
	}

	st := b.Stats()
	if st.Published != 6 || st.Subscriptions != 4 {
		t.Errorf("stats = %+v, want Published=6 Subscriptions=4", st)
	}
	// all(5) + odd(2) + ranged(2) = 9 deliveries.
	if st.Delivered != 9 {
		t.Errorf("Delivered = %d, want 9", st.Delivered)
	}

	sAll.Unsubscribe()
	sAll.Unsubscribe() // idempotent
	if got := b.Subscribers(1); got != 2 {
		t.Errorf("Subscribers(1) after unsubscribe = %d, want 2", got)
	}
	before := len(all)
	b.Publish(Frame{Topic: 1, ID: 9})
	if len(all) != before {
		t.Error("unsubscribed subscription still received a frame")
	}
}

func TestBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := b.Subscribe(1, Exact(1), func(Frame) {})
			s.Unsubscribe()
		}
	}()
	for i := 0; i < 10000; i++ {
		b.Publish(Frame{Topic: 1, ID: 1})
	}
	close(stop)
	wg.Wait()
	if got := b.Subscribers(1); got != 0 {
		t.Errorf("Subscribers(1) = %d after churn, want 0", got)
	}
}

func TestFilterWireRoundTrip(t *testing.T) {
	filters := []Filter{
		{Kind: FilterAll},
		Exact(0xDEADBEEF),
		Mask(0x100, 0xF00),
		Range(7, 0xFFFFFFFF),
	}
	for _, f := range filters {
		buf, err := AppendFilter(nil, f)
		if err != nil {
			t.Fatalf("AppendFilter(%+v): %v", f, err)
		}
		got, n, err := DecodeFilter(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("DecodeFilter(%+v): got n=%d err=%v, want n=%d", f, n, err, len(buf))
		}
		if got.Kind != f.Kind || got.ID != f.ID || got.Mask != f.Mask || got.Lo != f.Lo || got.Hi != f.Hi {
			t.Errorf("round trip %+v -> %+v", f, got)
		}
	}
	if _, err := AppendFilter(nil, Func(func(Frame) bool { return true })); !errors.Is(err, ErrFuncFilter) {
		t.Errorf("AppendFilter(func) err = %v, want ErrFuncFilter", err)
	}
	if _, err := AppendFilter(nil, Filter{Kind: 42}); !errors.Is(err, ErrBadFilter) {
		t.Errorf("AppendFilter(kind 42) err = %v, want ErrBadFilter", err)
	}
	for _, b := range [][]byte{nil, {FilterExact}, {FilterMask, 1, 2, 3}, {FilterRange, 1, 2, 3, 4, 5, 6, 7}, {77}} {
		if _, _, err := DecodeFilter(b); err == nil {
			t.Errorf("DecodeFilter(%v) succeeded on malformed input", b)
		}
	}
}

func TestSubSpecRoundTrip(t *testing.T) {
	s := SubSpec{Policy: PolicyDisconnect, QCap: 512, Filter: Mask(0xA0, 0xF0)}
	buf, err := AppendSubSpec(nil, s)
	if err != nil {
		t.Fatalf("AppendSubSpec: %v", err)
	}
	got, err := DecodeSubSpec(buf)
	if err != nil {
		t.Fatalf("DecodeSubSpec: %v", err)
	}
	f := got.Filter
	if got.Policy != s.Policy || got.QCap != s.QCap ||
		f.Kind != FilterMask || f.ID != 0xA0 || f.Mask != 0xF0 || f.Lo != 0 || f.Hi != 0 {
		t.Errorf("round trip %+v -> %+v", s, got)
	}
	// Malformed specs: short, bad policy, trailing bytes.
	for _, b := range [][]byte{nil, {0, 0}, {9, 0, 0, FilterAll}, append(buf, 0)} {
		if _, err := DecodeSubSpec(b); err == nil {
			t.Errorf("DecodeSubSpec(%v) succeeded on malformed input", b)
		}
	}
}

func TestLoggedBus(t *testing.T) {
	inner := NewBus()
	var got []Frame
	inner.Subscribe(1, Filter{}, func(fr Frame) {
		got = append(got, Frame{Topic: fr.Topic, ID: fr.ID, Payload: append([]byte(nil), fr.Payload...)})
	})

	lb := NewLoggedBus(inner)
	payload := []byte("hello")
	if n := lb.Publish(Frame{Topic: 1, ID: 42, Payload: payload}); n != 1 {
		t.Fatalf("Publish = %d, want 1", n)
	}
	// Mutating the publisher's buffer must not corrupt the log.
	payload[0] = 'X'
	log := lb.Log()
	if len(log) != 1 || lb.Len() != 1 {
		t.Fatalf("log len = %d/%d, want 1", len(log), lb.Len())
	}
	if !bytes.Equal(log[0].Payload, []byte("hello")) {
		t.Errorf("logged payload = %q, want %q (copy not taken)", log[0].Payload, "hello")
	}

	// Replay into a second bus reproduces the delivery.
	second := NewBus()
	var replayed []uint32
	second.Subscribe(1, Filter{}, func(fr Frame) { replayed = append(replayed, fr.ID) })
	if n := lb.Replay(second); n != 1 {
		t.Errorf("Replay = %d, want 1", n)
	}
	if len(replayed) != 1 || replayed[0] != 42 {
		t.Errorf("replayed = %v, want [42]", replayed)
	}

	lb.Reset()
	if lb.Len() != 0 {
		t.Errorf("Len after Reset = %d", lb.Len())
	}

	// Recorder-only mode: nil inner.
	rec := NewLoggedBus(nil)
	if n := rec.Publish(Frame{Topic: 9, ID: 1}); n != 0 {
		t.Errorf("recorder Publish = %d, want 0", n)
	}
	if rec.Len() != 1 {
		t.Errorf("recorder Len = %d, want 1", rec.Len())
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
