package pubsub

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// SUBSCRIBE payload layout (the payload of a v4 KindSubscribe frame):
//
//	[policy:1][qcap:2 LE][filter...]
//
// where filter is [kind:1] followed by kind-specific parameters:
//
//	FilterAll    — nothing
//	FilterExact  — [id:4 LE]
//	FilterMask   — [id:4 LE][mask:4 LE]
//	FilterRange  — [lo:4 LE][hi:4 LE]
//
// FilterFunc has no wire form: predicates only exist server-side.

// Backpressure policies carried in the SUBSCRIBE payload. They decide
// what happens when a subscription's push queue is full.
const (
	// PolicyDropOldest evicts the oldest queued push to admit the new
	// one, counting the drop. The publisher never blocks.
	PolicyDropOldest uint8 = 0
	// PolicyDisconnect reaps the subscriber's connection when its queue
	// overflows: a consumer that cannot keep up is cut off rather than
	// silently lossy.
	PolicyDisconnect uint8 = 1
)

var (
	// ErrBadFilter reports a malformed or truncated wire filter.
	ErrBadFilter = errors.New("pubsub: malformed filter encoding")
	// ErrFuncFilter reports an attempt to wire-encode a FilterFunc.
	ErrFuncFilter = errors.New("pubsub: func filters cannot be encoded")
)

// AppendFilter appends the wire encoding of f to buf. FilterFunc (and
// unknown kinds) return ErrFuncFilter / ErrBadFilter.
func AppendFilter(buf []byte, f Filter) ([]byte, error) {
	switch f.Kind {
	case FilterAll:
		return append(buf, FilterAll), nil
	case FilterExact:
		buf = append(buf, FilterExact)
		return binary.LittleEndian.AppendUint32(buf, f.ID), nil
	case FilterMask:
		buf = append(buf, FilterMask)
		buf = binary.LittleEndian.AppendUint32(buf, f.ID)
		return binary.LittleEndian.AppendUint32(buf, f.Mask), nil
	case FilterRange:
		buf = append(buf, FilterRange)
		buf = binary.LittleEndian.AppendUint32(buf, f.Lo)
		return binary.LittleEndian.AppendUint32(buf, f.Hi), nil
	case FilterFunc:
		return buf, ErrFuncFilter
	}
	return buf, fmt.Errorf("%w: unknown kind %d", ErrBadFilter, f.Kind)
}

// DecodeFilter parses one wire filter from b, returning the filter and
// the number of bytes consumed.
func DecodeFilter(b []byte) (Filter, int, error) {
	if len(b) < 1 {
		return Filter{}, 0, ErrBadFilter
	}
	switch kind := b[0]; kind {
	case FilterAll:
		return Filter{Kind: FilterAll}, 1, nil
	case FilterExact:
		if len(b) < 5 {
			return Filter{}, 0, ErrBadFilter
		}
		return Filter{Kind: FilterExact, ID: binary.LittleEndian.Uint32(b[1:5])}, 5, nil
	case FilterMask:
		if len(b) < 9 {
			return Filter{}, 0, ErrBadFilter
		}
		return Filter{
			Kind: FilterMask,
			ID:   binary.LittleEndian.Uint32(b[1:5]),
			Mask: binary.LittleEndian.Uint32(b[5:9]),
		}, 9, nil
	case FilterRange:
		if len(b) < 9 {
			return Filter{}, 0, ErrBadFilter
		}
		return Filter{
			Kind: FilterRange,
			Lo:   binary.LittleEndian.Uint32(b[1:5]),
			Hi:   binary.LittleEndian.Uint32(b[5:9]),
		}, 9, nil
	default:
		return Filter{}, 0, fmt.Errorf("%w: unknown kind %d", ErrBadFilter, kind)
	}
}

// SubSpec is the decoded SUBSCRIBE payload: backpressure policy, queue
// capacity (0 selects the server default), and the filter.
type SubSpec struct {
	Policy uint8
	QCap   uint16
	Filter Filter
}

// AppendSubSpec appends the wire encoding of s to buf.
func AppendSubSpec(buf []byte, s SubSpec) ([]byte, error) {
	buf = append(buf, s.Policy)
	buf = binary.LittleEndian.AppendUint16(buf, s.QCap)
	return AppendFilter(buf, s.Filter)
}

// DecodeSubSpec parses a SUBSCRIBE payload. Trailing bytes after the
// filter are rejected so corrupt subscriptions fail loudly.
func DecodeSubSpec(b []byte) (SubSpec, error) {
	if len(b) < 3 {
		return SubSpec{}, ErrBadFilter
	}
	s := SubSpec{Policy: b[0], QCap: binary.LittleEndian.Uint16(b[1:3])}
	if s.Policy > PolicyDisconnect {
		return SubSpec{}, fmt.Errorf("pubsub: unknown backpressure policy %d", s.Policy)
	}
	f, n, err := DecodeFilter(b[3:])
	if err != nil {
		return SubSpec{}, err
	}
	if 3+n != len(b) {
		return SubSpec{}, fmt.Errorf("%w: %d trailing bytes", ErrBadFilter, len(b)-3-n)
	}
	s.Filter = f
	return s, nil
}
