package core

import "sync/atomic"

// connArray is one generation of a readyRing's storage: a power-of-two
// circular buffer addressed by absolute position & mask. Grown arrays
// are immutable history — consumers racing a growth keep reading the old
// generation, whose entries for every still-unconsumed position are
// identical to the new one's.
type connArray struct {
	mask  uint64
	slots []atomic.Pointer[Conn]
}

// readyRing is the shuffle queue: the per-worker FIFO of ready
// connections, in the Chase-Lev work-stealing mold adapted to this
// runtime's invariants. The single producer is whoever holds the
// worker's kernel lock (every Idle→Ready transition happens there), so
// pushes are plain stores plus one release-store of the tail. Consumers
// — the home worker and stealing workers alike — claim entries by CAS on
// the shared head, singly (popOne) or in steal-half batches
// (stealBatch). No lock is taken on any path; a failed CAS means another
// consumer took the work, which is progress for the system.
//
// FIFO on both ends (unlike the LIFO owner end of a textbook Chase-Lev
// deque) is deliberate: the paper's shuffle queue drains oldest-first so
// a pipelining connection cannot starve its neighbours, and the home
// worker popping the same end thieves steal from keeps that property.
//
// The correctness argument for the unlocked reads: positions are
// absolute uint64s, so the head CAS has no ABA; a producer reuses a
// slot (position p+capacity) only after head has advanced past p, and
// any consumer that read slot p beforehand fails its CAS(p) and
// discards the read; a consumer that loads the array pointer after
// loading the tail is guaranteed an array generation containing every
// position it may claim.
type readyRing struct {
	head atomic.Uint64 // next position to consume (all consumers, CAS)
	tail atomic.Uint64 // next position to fill (producer only)
	arr  atomic.Pointer[connArray]
}

const readyRingInitial = 64

func (r *readyRing) init() {
	a := &connArray{mask: readyRingInitial - 1, slots: make([]atomic.Pointer[Conn], readyRingInitial)}
	r.arr.Store(a)
}

// push appends a connection. Caller holds the worker's kernel lock (the
// single-producer guarantee). A connection is pushed only on its
// Idle→Ready or Busy→Ready transition, so it is present at most once —
// the exactly-once shuffle-queue invariant.
func (r *readyRing) push(c *Conn) {
	t := r.tail.Load()
	h := r.head.Load()
	a := r.arr.Load()
	if t-h == a.mask+1 {
		a = r.grow(a, t)
	}
	a.slots[t&a.mask].Store(c)
	r.tail.Store(t + 1) // publish: release-pairs with consumers' tail load
}

// grow doubles the storage, copying every live position. Old arrays are
// left untouched for concurrent readers and reclaimed by the garbage
// collector once the last straggler drops them.
func (r *readyRing) grow(old *connArray, t uint64) *connArray {
	na := &connArray{
		mask:  old.mask*2 + 1,
		slots: make([]atomic.Pointer[Conn], (old.mask+1)*2),
	}
	for i := r.head.Load(); i != t; i++ {
		na.slots[i&na.mask].Store(old.slots[i&old.mask].Load())
	}
	r.arr.Store(na)
	return na
}

// popOne claims the oldest ready connection and transitions it to Busy,
// or returns nil when the ring is empty. Safe from any goroutine.
func (r *readyRing) popOne() *Conn {
	for {
		h := r.head.Load()
		t := r.tail.Load()
		if h >= t {
			return nil
		}
		a := r.arr.Load()
		c := a.slots[h&a.mask].Load()
		if r.head.CompareAndSwap(h, h+1) {
			// The CAS makes position h exclusively ours, which in turn
			// guarantees the read above saw its true occupant.
			c.state.Store(int32(StateBusy))
			return c
		}
	}
}

// stealBatch claims up to half the queued connections (capped by
// len(buf)), oldest first, transitioning each to Busy. Batching amortizes
// the steal CAS across several connections — the steal-half policy — and
// returns how many were taken.
func (r *readyRing) stealBatch(buf []*Conn) int {
	for {
		h := r.head.Load()
		t := r.tail.Load()
		if h >= t {
			return 0
		}
		n := (t - h + 1) / 2
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		a := r.arr.Load()
		for i := uint64(0); i < n; i++ {
			buf[i] = a.slots[(h+i)&a.mask].Load()
		}
		if r.head.CompareAndSwap(h, h+n) {
			for i := uint64(0); i < n; i++ {
				buf[i].state.Store(int32(StateBusy))
			}
			return int(n)
		}
	}
}

// Len is the depth counter idle workers scan (a snapshot, exact when
// quiescent).
func (r *readyRing) Len() int {
	h := r.head.Load()
	t := r.tail.Load()
	if t <= h {
		return 0
	}
	return int(t - h)
}
