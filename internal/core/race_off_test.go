//go:build !race

package core

// raceEnabled reports whether the race detector is active. The pool
// checkout-balance guard skips under it: sync.Pool deliberately drops
// Puts in race mode, stranding the parse-buffer accounting.
const raceEnabled = false
