package core

import (
	"sync"
	"sync/atomic"
)

// eventcount is the wake-on-demand primitive the scheduler's idle paths
// are built on: a waiter count plus a generation word. It replaces both
// the timer-polled park loop (idle workers) and the ingress condition
// variable (transport readers blocked on a full ring) with the classic
// prepare/recheck/commit protocol:
//
//	g := ec.prepare()          // announce intent to sleep
//	if workVisible() {         // recheck under the announcement
//	    ec.cancel()
//	    ... do the work
//	}
//	ec.wait(g)                 // sleep until a notify after prepare
//
// Publishers make their work visible (a counter increment, a ring slot
// publish) and then call notify. Because prepare increments the waiter
// count before the recheck, and notify bumps the generation before
// inspecting the waiter count, every interleaving either lets the
// recheck observe the work or lets wait observe the generation change —
// a wakeup can be spurious but never lost.
//
// The fast path costs publishers one atomic increment and one atomic
// load: when nobody is parked (the common case under load), notify never
// touches the mutex. The mutex+cond pair underneath exists only to give
// committed waiters something to block on; it is uncontended by design.
type eventcount struct {
	gen     atomic.Uint64 // bumped by every notify
	waiters atomic.Int32  // waiters between prepare and wait-return

	mu   sync.Mutex
	cond *sync.Cond
}

func (ec *eventcount) init() {
	ec.cond = sync.NewCond(&ec.mu)
}

// prepare announces this goroutine as a prospective waiter and returns
// the generation to pass to wait. The caller must recheck its wait
// condition between prepare and wait, and call exactly one of cancel or
// wait afterwards.
func (ec *eventcount) prepare() uint64 {
	ec.waiters.Add(1)
	return ec.gen.Load()
}

// cancel retracts a prepare without sleeping.
func (ec *eventcount) cancel() {
	ec.waiters.Add(-1)
}

// wait blocks until a notify lands after the prepare that returned g.
// Returns immediately if one already has.
func (ec *eventcount) wait(g uint64) {
	ec.mu.Lock()
	for ec.gen.Load() == g {
		ec.cond.Wait()
	}
	ec.mu.Unlock()
	ec.waiters.Add(-1)
}

// notify wakes every current waiter and reports whether there was at
// least one to wake. Publishers must make their work visible before
// calling it.
func (ec *eventcount) notify() bool {
	ec.gen.Add(1)
	if ec.waiters.Load() == 0 {
		return false
	}
	ec.mu.Lock()
	ec.cond.Broadcast()
	ec.mu.Unlock()
	return true
}

// parker is the single-waiter specialization of the eventcount, used for
// worker parking. The protocol is identical — prepare, recheck the work
// condition, then wait — but the sleep primitive is a one-token channel
// instead of a mutex+cond pair, which makes redundant notifies nearly
// free: once a wake token is pending, further notifies are a failed
// non-blocking send. That matters on the ingress fast path, where a
// burst of pushes lands while the just-woken worker is still waiting for
// a CPU.
type parker struct {
	gen     atomic.Uint64
	waiting atomic.Bool
	ch      chan struct{}
}

func (p *parker) init() {
	p.ch = make(chan struct{}, 1)
}

// prepare announces the owner as a prospective sleeper and returns the
// generation to pass to wait. Exactly one of cancel or wait must follow,
// after rechecking the wait condition.
func (p *parker) prepare() uint64 {
	p.waiting.Store(true)
	return p.gen.Load()
}

// cancel retracts a prepare without sleeping.
func (p *parker) cancel() {
	p.waiting.Store(false)
}

// wait blocks until a notify lands after the prepare that returned g.
// Stale wake tokens from earlier notifies cause a spurious pass through
// the recheck loop, never a missed sleep.
func (p *parker) wait(g uint64) {
	for p.gen.Load() == g {
		<-p.ch
	}
	p.waiting.Store(false)
}

// notify wakes the owner if it is (or is about to be) parked. It reports
// whether this call deposited the wake token — redundant notifies while
// a token is already pending return false and cost two atomic loads.
func (p *parker) notify() bool {
	p.gen.Add(1)
	if !p.waiting.Load() {
		return false
	}
	select {
	case p.ch <- struct{}{}:
		return true
	default:
		return false
	}
}
