package core

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zygos/internal/proto"
)

// errRuntimeClosed is returned to transport readers blocked on a full
// ingress ring when the runtime shuts down.
var errRuntimeClosed = errors.New("core: runtime is closed")

// segment is one chunk of raw stream bytes from a transport reader,
// queued on the home worker's ingress ring (the software NIC ring). The
// data buffer is owned by the runtime from enqueue until the kernel step
// has fed it to the parser, at which point it returns to the pool.
type segment struct {
	conn *Conn
	data []byte
}

// compsBuf is a pooled batch of completion tokens. Activations and
// detached resolvers fill one, the TX flush empties it, and it cycles
// back through the pool.
type compsBuf struct {
	s []completion
}

var compsPool = sync.Pool{New: func() any { return new(compsBuf) }}

func getComps() *compsBuf { return compsPool.Get().(*compsBuf) }

func putComps(cb *compsBuf) {
	for i := range cb.s {
		cb.s[i] = completion{}
	}
	cb.s = cb.s[:0]
	compsPool.Put(cb)
}

// ctxPool recycles per-event contexts. Detached contexts are never
// pooled: their Completion handle may outlive the activation
// arbitrarily, and a recycled Ctx under a live handle would complete
// someone else's event.
var ctxPool = sync.Pool{New: func() any { return new(Ctx) }}

// stealBatchMax caps how many connections one steal takes. Steal-half
// amortizes the victim's head CAS over a batch; the thief executes only
// the first and re-publishes the rest in its own ready ring, so the cap
// bounds transfer bookkeeping, not execution latency.
const stealBatchMax = 4

// Worker is one scheduling core. Its three queues are lock-free: the
// ingress ring (bounded MPSC), the ready ring (the shuffle queue — SPMC
// with batched stealing), and the remote stack (MPSC, swap-drained).
// kernelMu serializes this core's kernel step — it is the single-
// consumer guarantee for the ingress ring and the single-producer
// guarantee for the ready ring, and idle workers TryLock it to proxy
// the step (the IPI analogue). The worker parks on its eventcount when
// no work is visible anywhere and sleeps until a publisher wakes it.
type Worker struct {
	rt *Runtime
	id int

	// ingress: multi-producer (transport readers), drained by the kernel
	// step. Bounded; producers spin-then-park when full.
	ingress ingressRing

	// kernelMu serializes this core's kernel step (remote state-machine
	// advances + ingress parsing). Idle workers TryLock it to proxy the
	// step — the IPI analogue.
	kernelMu sync.Mutex

	// remote: state-machine advances shipped home by stolen activations
	// and lock-dodging home finalizes.
	remote remoteStack

	// ready is the shuffle queue: connections holding at least one
	// undelivered event, present exactly once while StateReady.
	ready readyRing

	// ec is what this worker parks on; parkTimer is the watchdog that
	// bounds how stale a parked worker's view can get if a wake is
	// somehow not warranted by the depth counters it rechecked. The
	// watchdog backs off exponentially across consecutive fruitless
	// fires (parkBackoff, reset whenever real work runs; timerFired
	// distinguishes watchdog wakes from demand wakes), so an idle server
	// converges to ~100 timer wakes per second per worker instead of
	// polling at the ParkInterval.
	ec          parker
	parkTimer   *time.Timer
	parkBackoff time.Duration
	timerFired  atomic.Bool

	rng        *rand.Rand
	order      []int
	stolen     [stealBatchMax]*Conn // stealBatch scratch
	drainBuf   [drainBatch]segment  // kernel-step ingress drain scratch (kernelMu-guarded)
	readyBatch []*Conn              // kernel-step EDF publication scratch (kernelMu-guarded)
	inApp      atomic.Bool          // executing application code (IPI-interruptible)
	active     atomic.Int32         // activations + kernel steps in flight (quiescence)
}

// drainBatch is how many ingress segments one kernel-step sweep takes at
// a time: large enough to amortize the ring's consume-index update,
// small enough to keep the step's working set and latency bounded.
const drainBatch = 256

func newWorker(rt *Runtime, id int) *Worker {
	w := &Worker{
		rt:  rt,
		id:  id,
		rng: rand.New(rand.NewSource(int64(id)*7919 + 1)),
	}
	w.ingress.init(rt.cfg.IngressCap)
	w.ready.init()
	w.ec.init()
	// Watchdog wake: not counted as a demand wake in Stats.
	w.parkTimer = time.AfterFunc(time.Hour, func() {
		w.timerFired.Store(true)
		w.ec.notify()
	})
	w.parkTimer.Stop()
	return w
}

func (w *Worker) run() {
	defer w.rt.wg.Done()
	if w.rt.cfg.LockOSThread {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	for w.rt.running.Load() {
		if w.homeWork() {
			w.parkBackoff = 0
			continue
		}
		if !w.rt.cfg.DisableStealing && w.stealWork() {
			w.parkBackoff = 0
			continue
		}
		w.park()
	}
	// Final drain: resolve state-machine advances shipped while this
	// worker was exiting and return queued buffers to their pools. Late
	// producers that observe the runtime closed after publishing run
	// this drain themselves, so nothing is stranded.
	w.kernelMu.Lock()
	w.shutdownDrain()
	w.kernelMu.Unlock()
}

// homeWork runs one iteration of the home loop: the kernel step (flush
// remote completions, parse ingress into the ready ring), then one
// activation from the local ready ring.
func (w *Worker) homeWork() bool {
	did := false
	if w.kernelMu.TryLock() {
		did = w.kernelStep()
		w.kernelMu.Unlock()
	}
	// The active bracket must open before the pop: from the instant a
	// connection leaves the ready ring its events are invisible to every
	// depth counter, and quiescence (Flush) must not be observable in
	// that window.
	w.active.Add(1)
	if c := w.ready.popOne(); c != nil {
		w.activate(c)
		w.active.Add(-1)
		return true
	}
	w.active.Add(-1)
	return did
}

// drainRemote detaches and processes every state-machine advance in the
// remote stack, reporting whether any was processed. Caller holds
// kernelMu (finalizeLocked may push to the ready ring). Nothing here can
// block — reply bytes never travel through this queue — so holding the
// kernel lock across the drain cannot wedge the core behind a stalled
// peer. Shared by the kernel step and the shutdown drain so op handling
// cannot diverge between them.
func (w *Worker) drainRemote() bool {
	did := false
	for op := w.remote.drain(); op != nil; {
		next := op.next
		did = true
		w.finalizeLocked(op.conn)
		putRemoteOp(op)
		op = next
	}
	return did
}

// kernelStep executes this core's bounded kernel work. The caller must
// hold kernelMu; the caller may be another worker proxying on this core's
// behalf. It reports whether it made progress.
func (w *Worker) kernelStep() bool {
	// Count the step as in-flight work: events drained from ingress are
	// invisible to the queue counters until they are republished in the
	// ready ring, and quiescence must not be observable in between.
	w.active.Add(1)
	defer w.active.Add(-1)
	did := false

	// Remote state-machine advances first (§4.5 handler duty 2): requeue
	// or idle the connections whose activations ended elsewhere. One
	// atomic swap detaches the whole stack.
	if w.drainRemote() {
		did = true
	}

	// Network stack: drain ingress, parse frames, enqueue ready
	// connections (§4.5 handler duty 1). The step is bounded to one lap
	// of the ring so a proxier cannot be pinned here by a fast producer.
	for budget := len(w.ingress.slots); budget > 0; {
		n := w.ingress.drainInto(w.drainBuf[:])
		if n == 0 {
			break
		}
		budget -= n
		did = true
		// The batch's slots are free from this moment: unpark producers
		// blocked on the full ring now, so they refill concurrently with
		// the parse below instead of sleeping out the whole step. Cheap
		// when nobody is parked (two atomic ops).
		w.ingress.notFull.notify()
		// One arrival timestamp per drained batch: segments pushed while
		// an earlier batch of this sweep was parsing must not inherit its
		// (older) snapshot, or their queue delay reads inflated.
		now := time.Now()
		for i := 0; i < n; i++ {
			sg := w.drainBuf[i]
			w.drainBuf[i] = segment{}
			c := sg.conn
			if sg.data == nil {
				// CloseConn's parser-release pill: the connection is
				// closed and this loop owns its parser, so the pooled
				// parse block goes home here. Payload views held by
				// still-queued events keep the block alive until those
				// messages are released.
				c.parser.ReleaseBuffer()
				continue
			}
			c.parser.Feed(sg.data)
			w.rt.putSegment(sg.data)
			events := 0
			for {
				m, ok, err := c.parser.Next()
				if err != nil {
					// Malformed stream: poison the connection and close its
					// transport. Events already queued still drain; the parse
					// buffer goes back to the pool. The parser's error stays
					// sticky, so segments still queued behind the malformed one
					// feed into a dead parser instead of being re-interpreted
					// from an arbitrary mid-stream offset.
					c.poison()
					c.parser.ReleaseBuffer()
					break
				}
				if !ok {
					break
				}
				if m.V3 && !c.sawV3.Load() {
					// The peer speaks v3: it may now be sent piggybacked
					// health frames. Check-then-set keeps the steady state
					// a read, not a contended store per frame.
					c.sawV3.Store(true)
				}
				// A frame-carried deadline budget becomes an absolute
				// deadline at arrival; the scheduler orders ready
				// connections by it and sheds events already past it.
				var dl int64
				if m.Budget != 0 {
					dl = now.Add(time.Duration(m.Budget) * time.Microsecond).UnixNano()
				}
				c.pcbMu.Lock()
				seq := c.seqAlloc
				c.seqAlloc++
				c.pcb = append(c.pcb, event{msg: m, seq: seq, at: now, deadline: dl})
				if dl != 0 {
					if cur := c.edfDeadline.Load(); cur == 0 || dl < cur {
						c.edfDeadline.Store(dl)
					}
				}
				c.pcbMu.Unlock()
				w.rt.parsedN.Add(1)
				events++
			}
			if c.closed.Load() {
				// Closed while bytes were still in flight (the pill may
				// have been dropped on a full ring): release here instead.
				// Parsed events above still deliver; only the partial
				// trailing frame, which can never complete, is dropped.
				c.parser.ReleaseBuffer()
			}
			if events > 0 && ConnState(c.state.Load()) == StateIdle {
				// Transition to Ready now (under kernelMu, which also
				// dedups a connection hit by several segments of this
				// batch) but defer the ring push: the whole batch publishes
				// together below, sorted earliest-deadline-first, so a µs
				// budget parsed behind an ms scan still dispatches first.
				c.state.Store(int32(StateReady))
				w.readyBatch = append(w.readyBatch, c)
			}
		}
		if len(w.readyBatch) > 0 {
			w.publishReady()
		}
	}
	return did
}

// publishReady pushes the kernel step's batch of newly-ready
// connections into the ready ring in earliest-deadline-first order.
// Within one drain batch every event shares an arrival timestamp, so
// deadline order IS budget order — the EDF sort is what lets a
// microsecond-budget GET overtake a millisecond-budget scan that
// arrived in the same sweep (the paper's bimodal-2 pathology).
// Connections without deadlines keep FIFO order after all
// deadline-carrying ones (stable insertion sort). Caller holds
// kernelMu; every connection in the batch is already StateReady.
func (w *Worker) publishReady() {
	batch := w.readyBatch
	if len(batch) > 1 {
		for i := 1; i < len(batch); i++ {
			c := batch[i]
			k := c.edfKey()
			j := i
			for j > 0 && batch[j-1].edfKey() > k {
				batch[j] = batch[j-1]
				j--
			}
			batch[j] = c
		}
	}
	for i, c := range batch {
		w.ready.push(c)
		batch[i] = nil
	}
	w.readyBatch = batch[:0]
	w.signal()
	if w.ready.Len() > 1 || w.inApp.Load() {
		// More work than the home worker can start right now (or it is
		// stuck in application code): wake one parked worker to steal or
		// proxy.
		w.rt.wakeOther(w.id)
	}
}

// finalizeLocked advances the Figure 5 state machine after an activation
// ends: back to ready (and re-queued) if events arrived meanwhile, else
// idle. Caller holds the home worker's kernelMu; w is the home worker.
func (w *Worker) finalizeLocked(c *Conn) {
	c.pcbMu.Lock()
	pend := len(c.pcb)
	c.pcbMu.Unlock()
	if pend > 0 {
		if !w.rt.running.Load() {
			// Shutdown: no executor will ever take this connection again;
			// release its queued events' buffer leases instead of
			// stranding them in the ring.
			w.discardConn(c)
			return
		}
		c.state.Store(int32(StateReady))
		w.ready.push(c)
		w.signal()
		w.rt.wakeOther(w.id)
		return
	}
	c.state.Store(int32(StateIdle))
}

// activate runs the handler over the events present at dequeue time with
// exclusive connection ownership (§4.3 ordering semantics). Each event
// carries a completion token; synchronous replies are batched and
// resolved through the TX sequencer at activation end — by the executing
// worker, home or thief alike — while detached events resolve later
// through their Completion handles. Per-event contexts and the
// completion batch come from pools; a synchronous event's parse-buffer
// lease is released here, after its handler has returned.
func (w *Worker) activate(c *Conn) {
	w.active.Add(1)
	defer w.active.Add(-1)

	home := w.rt.workers[c.home]
	stolen := w != home

	// Take the whole queue, leaving the previously drained backing array
	// in its place: the two slices ping-pong between producer and
	// consumer, so steady-state activations allocate nothing. The EDF
	// cache resets with it — events arriving after this point set it
	// afresh under the same lock.
	c.pcbMu.Lock()
	evs := c.pcb
	c.pcb = c.pcbSpare[:0]
	c.pcbSpare = nil
	c.edfDeadline.Store(0)
	c.pcbMu.Unlock()

	cb := getComps()
	// One timestamp serves the whole batch: a handler's queue delay is
	// measured to activation start, and another clock read per event
	// would cost more than the rest of the dispatch bookkeeping.
	started := time.Now()
	startedNanos := started.UnixNano()
	w.inApp.Store(true)
	clockStale := false
	for _, ev := range evs {
		w.rt.events.Add(1)
		if stolen {
			w.rt.steals.Add(1)
		}
		x := ctxPool.Get().(*Ctx)
		x.worker, x.conn, x.stolen, x.ev = w, c, stolen, ev
		x.started = started
		x.detached, x.done, x.frames = false, false, nil
		if ev.deadline != 0 && clockStale {
			// A handler already ran in this batch, so the batch-start
			// clock may be arbitrarily stale — a µs budget pipelined
			// behind a ms handler on the same connection must still
			// expire. One extra clock read per budgeted event that
			// follows real work is the price of honoring the budget.
			startedNanos = time.Now().UnixNano()
			clockStale = false
		}
		if ev.deadline != 0 && ev.deadline <= startedNanos {
			// Expired on arrival: the client has already given up on this
			// reply, so running the handler would burn service time on
			// dead work while live requests queue behind it. Complete
			// with StatusDeadlineExceeded without dispatching (one-way
			// events simply advance the sequencer).
			_ = x.Error(proto.StatusDeadlineExceeded, "deadline budget exhausted before dispatch")
			w.rt.expired.Add(1)
			if f := w.rt.cfg.OnExpired; f != nil {
				f(ev.msg.Method)
			}
		} else {
			w.rt.handler.Serve(x, c, ev.msg)
			clockStale = true
		}
		x.mu.Lock()
		if x.detached {
			// The Completion handle owns this token (and the Ctx) now; it
			// resolves straight through the TX sequencer whenever the
			// application completes it, releasing the payload lease then.
			x.mu.Unlock()
			continue
		}
		if !x.done {
			// A handler that never replied is a one-way event; count its
			// completion here (replied events were counted in complete).
			x.done = true
			w.rt.completedN.Add(1)
		}
		frames := x.frames
		x.frames = nil
		x.mu.Unlock()
		cb.s = append(cb.s, completion{seq: ev.seq, frames: frames})
		// The reply is encoded and the handler has returned: the event's
		// view into the parse buffer ends here.
		x.ev.msg.Release()
		x.worker, x.conn = nil, nil
		x.ev = event{}
		ctxPool.Put(x)
	}
	w.inApp.Store(false)

	// Hand the drained backing array back for the producer to refill.
	for i := range evs {
		evs[i] = event{}
	}
	c.pcbMu.Lock()
	if c.pcbSpare == nil {
		c.pcbSpare = evs[:0]
	}
	c.pcbMu.Unlock()

	if !stolen {
		// Home execution: eager TX on the home core, then the state
		// transition under our own kernel lock. If a proxier holds it,
		// ship a bare fin through the remote stack instead of blocking —
		// the lock holder (or our next loop iteration) resolves it.
		c.completeBatch(cb.s)
		putComps(cb)
		if w.kernelMu.TryLock() {
			w.finalizeLocked(c)
			w.kernelMu.Unlock()
		} else {
			shipRemote(w, c)
		}
		return
	}

	// Stolen execution. The paper ships the whole remote batched syscall
	// home because a stolen core cannot touch the home core's NIC TX
	// queue without coherence traffic (§4.2 step b); our TX sequencer
	// has no such ownership — txMu orders concurrent resolvers and
	// tokens fix the transmit order — so the thief transmits eagerly
	// right here, shaving a kernel-step round trip off every stolen
	// reply. Only the PCB state-machine advance still ships home: the
	// Busy→{Ready,Idle} transition and any re-queue must happen under
	// the home's kernel lock (the ready ring's single-producer side).
	c.completeBatch(cb.s)
	putComps(cb)
	shipRemote(home, c)
	if !w.rt.cfg.DisableProxy {
		w.rt.tryProxy(home)
	}
	// The runtime may have closed while we were executing, after the home
	// worker's final drain — in which case we just published into a dead
	// stack and must drain it ourselves.
	home.selfDrainIfClosed()
}

// stealWork is the idle loop (§5): scan other workers' depth counters —
// plain atomic loads, no locks — steal a batch from the first victim
// with queued connections, else proxy the kernel step of a stuck worker
// with undrained ingress or unflushed remote completions, in randomized
// victim order.
//
// The scan runs under the Runtime.spinning announcement, which throttles
// publishers' demand wakes while this worker is already looking. The
// announcement is strictly scoped to the scan itself: it drops (with a
// compensating wake — the wakep handoff) before any stolen handler or
// proxied kernel step runs, so a thief busy in application code never
// suppresses wakes for work it is not going to find.
func (w *Worker) stealWork() bool {
	w.rt.spinning.Add(1)
	w.order = w.rt.stealOrder(w.rng, w.id, w.order)
	for _, v := range w.order {
		victim := w.rt.workers[v]
		if victim.ready.Len() == 0 {
			continue
		}
		// Bracket the steal with the active counter before the batch
		// leaves the victim's ring: connections held in the local buffer
		// are invisible to every depth counter, and quiescence (Flush)
		// must not be observable while they are in transit.
		w.active.Add(1)
		n := victim.ready.stealBatch(w.stolen[:])
		if n == 0 {
			w.active.Add(-1)
			continue
		}
		w.doneSpinning()
		// EDF within the batch: execute the earliest-deadline connection
		// first. The batch left the victim's ring in FIFO order, but a
		// steal is exactly the moment a backlog exists — the moment
		// deadline order matters most.
		if n > 1 {
			min := 0
			for i := 1; i < n; i++ {
				if w.stolen[i].edfKey() < w.stolen[min].edfKey() {
					min = i
				}
			}
			w.stolen[0], w.stolen[min] = w.stolen[min], w.stolen[0]
		}
		// Re-publish everything beyond the first in our own ready ring
		// (Go's steal-half-into-own-runq pattern): the batch amortizes
		// the victim's head CAS, but connections pinned in this worker's
		// local buffer would be unreachable if the first activation
		// blocks — a stalled handler or a peer exerting egress
		// backpressure must not add its stall to unrelated stolen
		// connections. In our own ring they stay visible to the home
		// loop, to other thieves, and to quiescence accounting. Our
		// kernelMu guards our ring's producer side; if a proxier holds
		// it, fall back to executing the batch serially. The surplus is
		// pushed in EDF order too, so our ring's FIFO pop preserves it.
		if n > 1 && w.kernelMu.TryLock() {
			for i := 2; i < n; i++ {
				c := w.stolen[i]
				k := c.edfKey()
				j := i
				for j > 1 && w.stolen[j-1].edfKey() > k {
					w.stolen[j] = w.stolen[j-1]
					j--
				}
				w.stolen[j] = c
			}
			for i := 1; i < n; i++ {
				w.stolen[i].state.Store(int32(StateReady))
				w.ready.push(w.stolen[i])
				w.stolen[i] = nil
			}
			w.kernelMu.Unlock()
			w.rt.wakeOther(w.id)
			n = 1
		}
		for i := 0; i < n; i++ {
			w.activate(w.stolen[i])
			w.stolen[i] = nil
		}
		w.active.Add(-1)
		return true
	}
	if !w.rt.cfg.DisableProxy {
		for _, v := range w.order {
			victim := w.rt.workers[v]
			if victim.ingress.Len() == 0 && !victim.remote.nonEmpty() {
				continue
			}
			// Retract the announcement before the victim's kernel step
			// runs: the step publishes ready connections whose demand
			// wakes must not be suppressed by our own scan gate.
			w.doneSpinning()
			if w.rt.tryProxy(victim) {
				return true
			}
			// Lost the TryLock race (the victim, or another worker, is
			// mid-step there); re-announce and keep scanning.
			w.rt.spinning.Add(1)
		}
	}
	w.rt.spinning.Add(-1)
	return false
}

// doneSpinning retracts this worker's scan announcement because it found
// work to run, and issues a compensating wake: anything published while
// the announcement suppressed demand wakes — including leftovers of the
// batch just stolen — is handed to another parked worker instead of
// waiting out its watchdog. (wakeOther re-checks the gate, so if another
// scanner is still out there the wake is skipped and they inherit the
// obligation.)
func (w *Worker) doneSpinning() {
	w.rt.spinning.Add(-1)
	w.rt.wakeOther(w.id)
}

// pushIngress queues a raw segment, blocking while the ring is full
// (transport backpressure). It fails once the runtime closes. Ownership
// of the segment's buffer passes to the runtime either way: on error it
// is returned to the pool here.
func (w *Worker) pushIngress(sg segment) error {
	if err := w.ingress.push(w, sg.conn, sg.data); err != nil {
		w.rt.putSegment(sg.data)
		return err
	}
	w.signal()
	if w.inApp.Load() {
		// The home core is busy in application code; wake a parked worker
		// so an idle one can steal or proxy promptly.
		w.rt.wakeOther(w.id)
	}
	// If close raced the publish, the worker's final drain may have run
	// before our segment landed; drain it ourselves rather than strand
	// the buffer.
	w.selfDrainIfClosed()
	return nil
}

// signal wakes the worker if it is parked; it never blocks. Wakes are
// counted only when a parked worker was actually woken.
func (w *Worker) signal() {
	if w.ec.notify() {
		w.rt.wakes.Add(1)
	}
}

// maxParkBackoff caps the watchdog interval an idle worker backs off
// to; demand wakes carry all real work, so the watchdog only guards
// against protocol bugs and can be this lazy.
const maxParkBackoff = 10 * time.Millisecond

// park sleeps until a publisher's wake. The eventcount protocol makes
// the sleep race-free: prepare announces the waiter, the work recheck
// runs under that announcement, and every publisher makes its work
// visible in a depth counter before notifying — so either the recheck
// sees the work or the wait observes the generation change. ParkInterval
// survives as a watchdog rescan bound, not the wake mechanism, and a
// watchdog fire that found nothing doubles the next interval (up to
// maxParkBackoff) so idle workers go quiet instead of polling.
func (w *Worker) park() {
	g := w.ec.prepare()
	if w.parkWorkVisible() || !w.rt.running.Load() {
		w.ec.cancel()
		return
	}
	if w.parkBackoff < w.rt.cfg.ParkInterval {
		w.parkBackoff = w.rt.cfg.ParkInterval
	}
	w.rt.parks.Add(1)
	w.timerFired.Store(false)
	w.parkTimer.Reset(w.parkBackoff)
	w.ec.wait(g)
	w.parkTimer.Stop()
	if w.timerFired.Swap(false) {
		// Watchdog wake, not demand: nothing arrived while we slept, so
		// the next fruitless sleep may be longer. (parkBackoff resets in
		// the run loop the moment any work executes.)
		w.parkBackoff *= 2
		if limit := max(maxParkBackoff, w.rt.cfg.ParkInterval); w.parkBackoff > limit {
			w.parkBackoff = limit
		}
	}
}

// parkWorkVisible scans the depth counters a parked worker could act on:
// its own three queues, other workers' ready rings (stealable), and —
// when proxying is enabled — the undrained ingress/remote queues of
// workers stuck in application code.
func (w *Worker) parkWorkVisible() bool {
	if w.ingress.Len() > 0 || w.remote.nonEmpty() || w.ready.Len() > 0 {
		return true
	}
	if w.rt.cfg.DisableStealing {
		return false
	}
	for _, v := range w.rt.workers {
		if v == w {
			continue
		}
		if v.ready.Len() > 0 {
			return true
		}
		// Proxyable work keeps us awake only when the victim is stuck in
		// application code. A transient backlog on a healthy worker must
		// NOT count — it would busy-spin every idle worker against the
		// victim's own in-progress kernel step. A victim wedged outside
		// both app code and its kernel step (blocked on a stalled peer's
		// egress backpressure) is instead reached by the watchdog, whose
		// backed-off rescans run the depth-gated proxy scan within
		// maxParkBackoff.
		if !w.rt.cfg.DisableProxy && v.inApp.Load() &&
			(v.ingress.Len() > 0 || v.remote.nonEmpty()) {
			return true
		}
	}
	return false
}

// selfDrainIfClosed runs this worker's shutdown drain when the runtime
// has closed. It is the late-publisher handoff every post-close race
// resolves through: whichever goroutine observes the closed runtime
// after publishing (a transport reader's segment, a stolen activation's
// fin, a detached completion) drains the queues itself, so nothing is
// stranded behind a worker that already ran its final drain.
func (w *Worker) selfDrainIfClosed() {
	if w.rt.running.Load() {
		return
	}
	w.kernelMu.Lock()
	w.shutdownDrain()
	w.kernelMu.Unlock()
}

// shutdownDrain returns every queued resource once the runtime has
// closed: remote completions resolve (their replies are already
// encoded), undrained ingress segments go back to the segment pool
// unparsed, and ready connections' undelivered events release their
// parse-buffer leases. Caller holds kernelMu. It is idempotent and may
// be run by the exiting worker, by a late producer, or by a detached
// resolver — whoever observes the closed runtime last.
func (w *Worker) shutdownDrain() {
	w.drainRemote()
	for {
		sg, ok := w.ingress.pop()
		if !ok {
			break
		}
		if sg.data == nil {
			// CloseConn's parser-release pill; it owns no segment.
			sg.conn.parser.ReleaseBuffer()
			continue
		}
		w.rt.putSegment(sg.data)
	}
	// Unblock any producers still parked on the full ring; they will
	// observe the closed runtime and fail their push.
	w.ingress.notFull.notify()
	for {
		c := w.ready.popOne()
		if c == nil {
			break
		}
		w.discardConn(c)
	}
}

// discardConn drops a connection's undelivered events at shutdown,
// releasing their parse-buffer leases and settling the backlog
// accounting, and parks the state machine at Idle.
func (w *Worker) discardConn(c *Conn) {
	c.pcbMu.Lock()
	evs := c.pcb
	c.pcb = nil
	c.pcbMu.Unlock()
	for i := range evs {
		evs[i].msg.Release()
		evs[i] = event{}
		w.rt.completedN.Add(1)
	}
	c.state.Store(int32(StateIdle))
}

// quiescent reports whether this worker has no queued or in-flight work.
func (w *Worker) quiescent() bool {
	return w.ingress.Len() == 0 &&
		!w.remote.nonEmpty() &&
		w.ready.Len() == 0 &&
		w.active.Load() == 0
}
