package core

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zygos/internal/bufpool"
)

// errRuntimeClosed is returned to transport readers blocked on a full
// ingress queue when the runtime shuts down.
var errRuntimeClosed = errors.New("core: runtime is closed")

// segment is one chunk of raw stream bytes from a transport reader,
// queued on the home worker's ingress queue (the software NIC ring).
// The data buffer is owned by the runtime from enqueue until the kernel
// step has fed it to the parser, at which point it returns to the pool.
type segment struct {
	conn *Conn
	data []byte
}

// compsBuf is a pooled batch of completion tokens. Activations and
// detached resolvers fill one, the TX flush empties it, and it cycles
// back through the pool.
type compsBuf struct {
	s []completion
}

var compsPool = sync.Pool{New: func() any { return new(compsBuf) }}

func getComps() *compsBuf { return compsPool.Get().(*compsBuf) }

func putComps(cb *compsBuf) {
	for i := range cb.s {
		cb.s[i] = completion{}
	}
	cb.s = cb.s[:0]
	compsPool.Put(cb)
}

// remoteOp is a batch of completion tokens shipped to the home core: the
// "remote batched syscall" of §4.2. Stolen activations ship their
// synchronous completions this way (fin advances the connection state
// machine afterwards); detached replies travel the same path with just
// their one token.
type remoteOp struct {
	conn  *Conn
	comps *compsBuf
	fin   bool
}

// ctxPool recycles per-event contexts. Detached contexts are never
// pooled: their Completion handle may outlive the activation
// arbitrarily, and a recycled Ctx under a live handle would complete
// someone else's event.
var ctxPool = sync.Pool{New: func() any { return new(Ctx) }}

// Worker is one scheduling core: ingress queue, shuffle queue, remote
// syscall queue, and the kernel lock serializing this core's network
// stack.
type Worker struct {
	rt *Runtime
	id int

	// ingress: multi-producer (transport readers), drained by the kernel
	// step. Bounded; producers block when full. ingressSpare is the
	// drained slice of the previous kernel step, swapped back in so the
	// queue's backing array is reused (it is touched only under
	// kernelMu).
	ingressMu    sync.Mutex
	ingressCond  *sync.Cond
	ingress      []segment
	ingressSpare []segment
	ingressN     atomic.Int32

	// kernelMu serializes this core's kernel step (parse + TX flush).
	// Idle workers TryLock it to proxy the step — the IPI analogue.
	kernelMu sync.Mutex

	// remote: completions shipped home by stolen activations and
	// detached replies. remoteSpare mirrors ingressSpare.
	remoteMu    sync.Mutex
	remote      []remoteOp
	remoteSpare []remoteOp
	remoteN     atomic.Int32

	// shuffle: ready connections, guarded by shuffleMu (the paper's
	// per-core spinlock protecting the queue and state transitions). The
	// slice is used as a ring with shufHead as the consume index, so
	// popping does not slide the backing array out from under appends.
	shuffleMu sync.Mutex
	shuffle   []*Conn
	shufHead  int
	shuffleN  atomic.Int32

	wake      chan struct{}
	parkTimer *time.Timer
	rng       *rand.Rand
	order     []int
	inApp     atomic.Bool  // executing application code (IPI-interruptible)
	active    atomic.Int32 // activations in flight (quiescence accounting)
}

func newWorker(rt *Runtime, id int) *Worker {
	w := &Worker{
		rt:   rt,
		id:   id,
		wake: make(chan struct{}, 1),
		rng:  rand.New(rand.NewSource(int64(id)*7919 + 1)),
	}
	w.ingressCond = sync.NewCond(&w.ingressMu)
	w.parkTimer = time.NewTimer(time.Hour)
	w.parkTimer.Stop()
	return w
}

func (w *Worker) run() {
	defer w.rt.wg.Done()
	if w.rt.cfg.LockOSThread {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	for w.rt.running.Load() {
		if w.homeWork() {
			continue
		}
		if !w.rt.cfg.DisableStealing && w.stealWork() {
			continue
		}
		w.park()
	}
	// Final drain: resolve completion tokens shipped while this worker
	// was exiting, so detached replies racing Close are not lost (their
	// resolvers only drain the queue themselves if they observe the
	// runtime closed after pushing).
	w.kernelMu.Lock()
	w.kernelStep()
	w.kernelMu.Unlock()
	// Unblock any transport readers waiting on a full ingress queue.
	w.ingressMu.Lock()
	w.ingressCond.Broadcast()
	w.ingressMu.Unlock()
}

// homeWork runs one iteration of the home loop: the kernel step (flush
// remote completions, parse ingress into the shuffle queue), then one
// activation from the local shuffle queue.
func (w *Worker) homeWork() bool {
	did := false
	if w.kernelMu.TryLock() {
		did = w.kernelStep()
		w.kernelMu.Unlock()
	}
	if c := w.tryPopShuffle(); c != nil {
		w.activate(c)
		return true
	}
	return did
}

// kernelStep executes this core's bounded kernel work. The caller must
// hold kernelMu; the caller may be another worker proxying on this core's
// behalf. It reports whether it made progress.
func (w *Worker) kernelStep() bool {
	// Count the step as in-flight work: events drained from ingress are
	// invisible to the queue counters until they are republished in the
	// shuffle queue, and quiescence must not be observable in between.
	w.active.Add(1)
	defer w.active.Add(-1)
	did := false

	// Remote batched syscalls first: resolve shipped completion tokens —
	// the sequencer transmits whatever is now in order — and advance the
	// connection state machine (§4.5 handler duty 2).
	w.remoteMu.Lock()
	ops := w.remote
	w.remote = w.remoteSpare
	w.remoteSpare = nil
	w.remoteN.Store(0)
	w.remoteMu.Unlock()
	for _, op := range ops {
		did = true
		op.conn.completeBatch(op.comps.s)
		putComps(op.comps)
		if op.fin {
			w.finalize(op.conn)
		}
	}
	for i := range ops {
		ops[i] = remoteOp{}
	}
	w.remoteSpare = ops[:0] // kernelMu-protected hand-back

	// Network stack: drain ingress, parse frames, enqueue ready
	// connections (§4.5 handler duty 1).
	w.ingressMu.Lock()
	segs := w.ingress
	w.ingress = w.ingressSpare
	w.ingressSpare = nil
	w.ingressN.Store(0)
	w.ingressCond.Broadcast()
	w.ingressMu.Unlock()
	now := time.Now()
	for _, sg := range segs {
		did = true
		c := sg.conn
		c.parser.Feed(sg.data)
		bufpool.Put(sg.data)
		events := 0
		for {
			m, ok, err := c.parser.Next()
			if err != nil {
				// Malformed stream: poison the connection and close its
				// transport. Events already queued still drain; the parse
				// buffer goes back to the pool. The parser's error stays
				// sticky, so segments still queued behind the malformed one
				// feed into a dead parser instead of being re-interpreted
				// from an arbitrary mid-stream offset.
				c.poison()
				c.parser.ReleaseBuffer()
				break
			}
			if !ok {
				break
			}
			c.pcbMu.Lock()
			seq := c.seqAlloc
			c.seqAlloc++
			c.pcb = append(c.pcb, event{msg: m, seq: seq, at: now})
			c.pcbMu.Unlock()
			w.rt.parsedN.Add(1)
			events++
		}
		if events > 0 {
			w.markReady(c)
		}
	}
	for i := range segs {
		segs[i] = segment{}
	}
	w.ingressSpare = segs[:0] // kernelMu-protected hand-back
	return did
}

// markReady moves an idle connection to ready and publishes it in the
// shuffle queue (exactly-once: ready connections are already queued, busy
// ones re-queue themselves in finalize).
func (w *Worker) markReady(c *Conn) {
	w.shuffleMu.Lock()
	if c.state == StateIdle {
		c.state = StateReady
		w.pushShuffleLocked(c)
	}
	w.shuffleMu.Unlock()
	w.signal()
	w.rt.signalOther(w.id)
}

// pushShuffleLocked appends to the shuffle ring; the caller holds
// shuffleMu. When the backing array is full but has consumed headroom,
// it compacts in place instead of growing.
func (w *Worker) pushShuffleLocked(c *Conn) {
	if w.shufHead > 0 && len(w.shuffle) == cap(w.shuffle) {
		n := copy(w.shuffle, w.shuffle[w.shufHead:])
		for i := n; i < len(w.shuffle); i++ {
			w.shuffle[i] = nil
		}
		w.shuffle = w.shuffle[:n]
		w.shufHead = 0
	}
	w.shuffle = append(w.shuffle, c)
	w.shuffleN.Add(1)
}

// finalize advances the Figure 5 state machine after an activation ends:
// back to ready (and re-queued) if events arrived meanwhile, else idle.
// Must run on the connection's home worker's structures (w is the home
// worker).
func (w *Worker) finalize(c *Conn) {
	w.shuffleMu.Lock()
	c.pcbMu.Lock()
	pend := len(c.pcb)
	c.pcbMu.Unlock()
	if pend > 0 {
		c.state = StateReady
		w.pushShuffleLocked(c)
		w.shuffleMu.Unlock()
		w.signal()
		w.rt.signalOther(w.id)
		return
	}
	c.state = StateIdle
	w.shuffleMu.Unlock()
}

// tryPopShuffle removes the oldest ready connection, transitioning it to
// busy. Remote workers use the same entry point (their TryLock makes steal
// attempts contention-friendly, as in the paper).
func (w *Worker) tryPopShuffle() *Conn {
	if w.shuffleN.Load() == 0 {
		return nil
	}
	if !w.shuffleMu.TryLock() {
		return nil
	}
	var c *Conn
	if w.shufHead < len(w.shuffle) {
		c = w.shuffle[w.shufHead]
		w.shuffle[w.shufHead] = nil
		w.shufHead++
		if w.shufHead == len(w.shuffle) {
			w.shuffle = w.shuffle[:0]
			w.shufHead = 0
		}
		w.shuffleN.Add(-1)
		c.state = StateBusy
	}
	w.shuffleMu.Unlock()
	return c
}

// activate runs the handler over the events present at dequeue time with
// exclusive connection ownership (§4.3 ordering semantics). Each event
// carries a completion token; synchronous replies are batched and
// resolved at activation end (eagerly on the home core, via the remote
// syscall queue for stolen work), while detached events resolve later
// through their Completion handles. Per-event contexts and the
// completion batch come from pools; a synchronous event's parse-buffer
// lease is released here, after its handler has returned.
func (w *Worker) activate(c *Conn) {
	w.active.Add(1)
	defer w.active.Add(-1)

	home := w.rt.workers[c.home]
	stolen := w != home

	// Take the whole queue, leaving the previously drained backing array
	// in its place: the two slices ping-pong between producer and
	// consumer, so steady-state activations allocate nothing.
	c.pcbMu.Lock()
	evs := c.pcb
	c.pcb = c.pcbSpare[:0]
	c.pcbSpare = nil
	c.pcbMu.Unlock()

	cb := getComps()
	w.inApp.Store(true)
	for _, ev := range evs {
		w.rt.events.Add(1)
		if stolen {
			w.rt.steals.Add(1)
		}
		x := ctxPool.Get().(*Ctx)
		x.worker, x.conn, x.stolen, x.ev = w, c, stolen, ev
		x.detached, x.done, x.frames = false, false, nil
		w.rt.handler.Serve(x, c, ev.msg)
		x.mu.Lock()
		if x.detached {
			// The Completion handle owns this token (and the Ctx) now; it
			// resolves through the remote-syscall path whenever the
			// application completes it, releasing the payload lease then.
			x.mu.Unlock()
			continue
		}
		if !x.done {
			// A handler that never replied is a one-way event; count its
			// completion here (replied events were counted in complete).
			x.done = true
			w.rt.completedN.Add(1)
		}
		frames := x.frames
		x.frames = nil
		x.mu.Unlock()
		cb.s = append(cb.s, completion{seq: ev.seq, frames: frames})
		// The reply is encoded and the handler has returned: the event's
		// view into the parse buffer ends here.
		x.ev.msg.Release()
		x.worker, x.conn = nil, nil
		x.ev = event{}
		ctxPool.Put(x)
	}
	w.inApp.Store(false)

	// Hand the drained backing array back for the producer to refill.
	for i := range evs {
		evs[i] = event{}
	}
	c.pcbMu.Lock()
	if c.pcbSpare == nil {
		c.pcbSpare = evs[:0]
	}
	c.pcbMu.Unlock()

	if !stolen {
		// Home execution: eager TX on the home core.
		c.completeBatch(cb.s)
		putComps(cb)
		w.finalize(c)
		return
	}

	// Stolen execution: ship the batched syscalls home (§4.2 step b).
	home.pushRemote(remoteOp{conn: c, comps: cb, fin: true})
	home.signal()
	if !w.rt.cfg.DisableProxy {
		w.rt.tryProxy(home)
	}
}

// stealWork is the idle loop (§5): scan other workers' shuffle queues
// first, then proxy the kernel step of workers with undrained ingress or
// unflushed remote completions, in randomized victim order.
func (w *Worker) stealWork() bool {
	w.order = w.rt.stealOrder(w.rng, w.id, w.order)
	for _, v := range w.order {
		if c := w.rt.workers[v].tryPopShuffle(); c != nil {
			w.activate(c)
			return true
		}
	}
	if !w.rt.cfg.DisableProxy {
		for _, v := range w.order {
			victim := w.rt.workers[v]
			if victim.ingressN.Load() == 0 && victim.remoteN.Load() == 0 {
				continue
			}
			if w.rt.tryProxy(victim) {
				return true
			}
		}
	}
	return false
}

// pushIngress queues a raw segment, blocking while the queue is full
// (transport backpressure). It fails once the runtime closes. Ownership
// of the segment's buffer passes to the runtime either way: on error it
// is returned to the pool here.
func (w *Worker) pushIngress(sg segment) error {
	w.ingressMu.Lock()
	for len(w.ingress) >= w.rt.cfg.IngressCap {
		if !w.rt.running.Load() {
			w.ingressMu.Unlock()
			bufpool.Put(sg.data)
			return errRuntimeClosed
		}
		w.ingressCond.Wait()
	}
	w.ingress = append(w.ingress, sg)
	w.ingressN.Add(1)
	w.ingressMu.Unlock()
	w.signal()
	if w.inApp.Load() {
		// The home core is busy in application code; nudge another worker
		// so an idle one can steal or proxy promptly.
		w.rt.signalOther(w.id)
	}
	return nil
}

func (w *Worker) pushRemote(op remoteOp) {
	w.remoteMu.Lock()
	w.remote = append(w.remote, op)
	w.remoteN.Add(1)
	w.remoteMu.Unlock()
}

// signal wakes the worker if it is parked; it never blocks.
func (w *Worker) signal() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// park sleeps until signalled or until the park interval elapses; the
// interval bounds how stale an idle worker's view of stealable work can
// get (the polling idle loop of §5, without burning a host CPU). The
// timer is owned by this worker and reused across parks — Go 1.23+
// timer semantics make the bare Reset/Stop pattern race-free.
func (w *Worker) park() {
	w.parkTimer.Reset(w.rt.cfg.ParkInterval)
	select {
	case <-w.wake:
		w.parkTimer.Stop()
	case <-w.parkTimer.C:
	}
}

// quiescent reports whether this worker has no queued or in-flight work.
func (w *Worker) quiescent() bool {
	return w.ingressN.Load() == 0 &&
		w.remoteN.Load() == 0 &&
		w.shuffleN.Load() == 0 &&
		w.active.Load() == 0
}
