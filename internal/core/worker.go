package core

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// errRuntimeClosed is returned to transport readers blocked on a full
// ingress queue when the runtime shuts down.
var errRuntimeClosed = errors.New("core: runtime is closed")

// segment is one chunk of raw stream bytes from a transport reader,
// queued on the home worker's ingress queue (the software NIC ring).
type segment struct {
	conn *Conn
	data []byte
}

// remoteOp is a batch of completion tokens shipped to the home core: the
// "remote batched syscall" of §4.2. Stolen activations ship their
// synchronous completions this way (fin advances the connection state
// machine afterwards); detached replies travel the same path with just
// their one token.
type remoteOp struct {
	conn  *Conn
	comps []completion
	fin   bool
}

// Worker is one scheduling core: ingress queue, shuffle queue, remote
// syscall queue, and the kernel lock serializing this core's network
// stack.
type Worker struct {
	rt *Runtime
	id int

	// ingress: multi-producer (transport readers), drained by the kernel
	// step. Bounded; producers block when full.
	ingressMu   sync.Mutex
	ingressCond *sync.Cond
	ingress     []segment
	ingressN    atomic.Int32

	// kernelMu serializes this core's kernel step (parse + TX flush).
	// Idle workers TryLock it to proxy the step — the IPI analogue.
	kernelMu sync.Mutex

	// remote: completions shipped home by stolen activations and
	// detached replies.
	remoteMu sync.Mutex
	remote   []remoteOp
	remoteN  atomic.Int32

	// shuffle: ready connections, guarded by shuffleMu (the paper's
	// per-core spinlock protecting the queue and state transitions).
	shuffleMu sync.Mutex
	shuffle   []*Conn
	shuffleN  atomic.Int32

	wake   chan struct{}
	rng    *rand.Rand
	order  []int
	inApp  atomic.Bool  // executing application code (IPI-interruptible)
	active atomic.Int32 // activations in flight (quiescence accounting)
}

func newWorker(rt *Runtime, id int) *Worker {
	w := &Worker{
		rt:   rt,
		id:   id,
		wake: make(chan struct{}, 1),
		rng:  rand.New(rand.NewSource(int64(id)*7919 + 1)),
	}
	w.ingressCond = sync.NewCond(&w.ingressMu)
	return w
}

func (w *Worker) run() {
	defer w.rt.wg.Done()
	if w.rt.cfg.LockOSThread {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	for w.rt.running.Load() {
		if w.homeWork() {
			continue
		}
		if !w.rt.cfg.DisableStealing && w.stealWork() {
			continue
		}
		w.park()
	}
	// Final drain: resolve completion tokens shipped while this worker
	// was exiting, so detached replies racing Close are not lost (their
	// resolvers only drain the queue themselves if they observe the
	// runtime closed after pushing).
	w.kernelMu.Lock()
	w.kernelStep()
	w.kernelMu.Unlock()
	// Unblock any transport readers waiting on a full ingress queue.
	w.ingressMu.Lock()
	w.ingressCond.Broadcast()
	w.ingressMu.Unlock()
}

// homeWork runs one iteration of the home loop: the kernel step (flush
// remote completions, parse ingress into the shuffle queue), then one
// activation from the local shuffle queue.
func (w *Worker) homeWork() bool {
	did := false
	if w.kernelMu.TryLock() {
		did = w.kernelStep()
		w.kernelMu.Unlock()
	}
	if c := w.tryPopShuffle(); c != nil {
		w.activate(c)
		return true
	}
	return did
}

// kernelStep executes this core's bounded kernel work. The caller must
// hold kernelMu; the caller may be another worker proxying on this core's
// behalf. It reports whether it made progress.
func (w *Worker) kernelStep() bool {
	// Count the step as in-flight work: events drained from ingress are
	// invisible to the queue counters until they are republished in the
	// shuffle queue, and quiescence must not be observable in between.
	w.active.Add(1)
	defer w.active.Add(-1)
	did := false

	// Remote batched syscalls first: resolve shipped completion tokens —
	// the sequencer transmits whatever is now in order — and advance the
	// connection state machine (§4.5 handler duty 2).
	w.remoteMu.Lock()
	ops := w.remote
	w.remote = nil
	w.remoteN.Store(0)
	w.remoteMu.Unlock()
	for _, op := range ops {
		did = true
		op.conn.completeBatch(op.comps)
		if op.fin {
			w.finalize(op.conn)
		}
	}

	// Network stack: drain ingress, parse frames, enqueue ready
	// connections (§4.5 handler duty 1).
	w.ingressMu.Lock()
	segs := w.ingress
	w.ingress = nil
	w.ingressN.Store(0)
	w.ingressCond.Broadcast()
	w.ingressMu.Unlock()
	now := time.Now()
	for _, sg := range segs {
		did = true
		c := sg.conn
		c.parser.Feed(sg.data)
		events := 0
		for {
			m, ok, err := c.parser.Next()
			if err != nil {
				// Malformed stream: poison the connection and close its
				// transport. Events already queued still drain.
				c.poison()
				break
			}
			if !ok {
				break
			}
			c.pcbMu.Lock()
			seq := c.seqAlloc
			c.seqAlloc++
			c.pcb = append(c.pcb, event{msg: m, seq: seq, at: now})
			c.pcbMu.Unlock()
			w.rt.parsedN.Add(1)
			events++
		}
		if events > 0 {
			w.markReady(c)
		}
	}
	return did
}

// markReady moves an idle connection to ready and publishes it in the
// shuffle queue (exactly-once: ready connections are already queued, busy
// ones re-queue themselves in finalize).
func (w *Worker) markReady(c *Conn) {
	w.shuffleMu.Lock()
	if c.state == StateIdle {
		c.state = StateReady
		w.shuffle = append(w.shuffle, c)
		w.shuffleN.Add(1)
	}
	w.shuffleMu.Unlock()
	w.signal()
	w.rt.signalOther(w.id)
}

// finalize advances the Figure 5 state machine after an activation ends:
// back to ready (and re-queued) if events arrived meanwhile, else idle.
// Must run on the connection's home worker's structures (w is the home
// worker).
func (w *Worker) finalize(c *Conn) {
	w.shuffleMu.Lock()
	c.pcbMu.Lock()
	pend := len(c.pcb)
	c.pcbMu.Unlock()
	if pend > 0 {
		c.state = StateReady
		w.shuffle = append(w.shuffle, c)
		w.shuffleN.Add(1)
		w.shuffleMu.Unlock()
		w.signal()
		w.rt.signalOther(w.id)
		return
	}
	c.state = StateIdle
	w.shuffleMu.Unlock()
}

// tryPopShuffle removes the oldest ready connection, transitioning it to
// busy. Remote workers use the same entry point (their TryLock makes steal
// attempts contention-friendly, as in the paper).
func (w *Worker) tryPopShuffle() *Conn {
	if w.shuffleN.Load() == 0 {
		return nil
	}
	if !w.shuffleMu.TryLock() {
		return nil
	}
	var c *Conn
	if len(w.shuffle) > 0 {
		c = w.shuffle[0]
		w.shuffle[0] = nil
		w.shuffle = w.shuffle[1:]
		w.shuffleN.Add(-1)
		c.state = StateBusy
	}
	w.shuffleMu.Unlock()
	return c
}

// activate runs the handler over the events present at dequeue time with
// exclusive connection ownership (§4.3 ordering semantics). Each event
// carries a completion token; synchronous replies are batched and
// resolved at activation end (eagerly on the home core, via the remote
// syscall queue for stolen work), while detached events resolve later
// through their Completion handles.
func (w *Worker) activate(c *Conn) {
	w.active.Add(1)
	defer w.active.Add(-1)

	home := w.rt.workers[c.home]
	stolen := w != home

	c.pcbMu.Lock()
	n := len(c.pcb)
	evs := append([]event(nil), c.pcb[:n]...)
	c.pcb = c.pcb[n:]
	c.pcbMu.Unlock()

	comps := make([]completion, 0, len(evs))
	w.inApp.Store(true)
	for _, ev := range evs {
		w.rt.events.Add(1)
		if stolen {
			w.rt.steals.Add(1)
		}
		x := &Ctx{worker: w, conn: c, stolen: stolen, ev: ev}
		w.rt.handler.Serve(x, c, ev.msg)
		x.mu.Lock()
		if x.detached {
			// The Completion handle owns this token now; it resolves
			// through the remote-syscall path whenever the application
			// completes it.
			x.mu.Unlock()
			continue
		}
		if !x.done {
			// A handler that never replied is a one-way event; count its
			// completion here (replied events were counted in complete).
			x.done = true
			w.rt.completedN.Add(1)
		}
		frames := x.frames
		x.frames = nil
		x.mu.Unlock()
		comps = append(comps, completion{seq: ev.seq, frames: frames})
	}
	w.inApp.Store(false)

	if !stolen {
		// Home execution: eager TX on the home core.
		c.completeBatch(comps)
		w.finalize(c)
		return
	}

	// Stolen execution: ship the batched syscalls home (§4.2 step b).
	home.pushRemote(remoteOp{conn: c, comps: comps, fin: true})
	home.signal()
	if !w.rt.cfg.DisableProxy {
		w.rt.tryProxy(home)
	}
}

// stealWork is the idle loop (§5): scan other workers' shuffle queues
// first, then proxy the kernel step of workers with undrained ingress or
// unflushed remote completions, in randomized victim order.
func (w *Worker) stealWork() bool {
	w.order = w.rt.stealOrder(w.rng, w.id, w.order)
	for _, v := range w.order {
		if c := w.rt.workers[v].tryPopShuffle(); c != nil {
			w.activate(c)
			return true
		}
	}
	if !w.rt.cfg.DisableProxy {
		for _, v := range w.order {
			victim := w.rt.workers[v]
			if victim.ingressN.Load() == 0 && victim.remoteN.Load() == 0 {
				continue
			}
			if w.rt.tryProxy(victim) {
				return true
			}
		}
	}
	return false
}

// pushIngress queues a raw segment, blocking while the queue is full
// (transport backpressure). It fails once the runtime closes.
func (w *Worker) pushIngress(sg segment) error {
	w.ingressMu.Lock()
	for len(w.ingress) >= w.rt.cfg.IngressCap {
		if !w.rt.running.Load() {
			w.ingressMu.Unlock()
			return errRuntimeClosed
		}
		w.ingressCond.Wait()
	}
	w.ingress = append(w.ingress, sg)
	w.ingressN.Add(1)
	w.ingressMu.Unlock()
	w.signal()
	if w.inApp.Load() {
		// The home core is busy in application code; nudge another worker
		// so an idle one can steal or proxy promptly.
		w.rt.signalOther(w.id)
	}
	return nil
}

func (w *Worker) pushRemote(op remoteOp) {
	w.remoteMu.Lock()
	w.remote = append(w.remote, op)
	w.remoteN.Add(1)
	w.remoteMu.Unlock()
}

// signal wakes the worker if it is parked; it never blocks.
func (w *Worker) signal() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// park sleeps until signalled or until the park interval elapses; the
// interval bounds how stale an idle worker's view of stealable work can
// get (the polling idle loop of §5, without burning a host CPU).
func (w *Worker) park() {
	timer := time.NewTimer(w.rt.cfg.ParkInterval)
	select {
	case <-w.wake:
		timer.Stop()
	case <-timer.C:
	}
}

// quiescent reports whether this worker has no queued or in-flight work.
func (w *Worker) quiescent() bool {
	return w.ingressN.Load() == 0 &&
		w.remoteN.Load() == 0 &&
		w.shuffleN.Load() == 0 &&
		w.active.Load() == 0
}
