package core
