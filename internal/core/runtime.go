// Package core implements the ZygOS execution model as a real Go runtime:
// a fixed pool of per-core workers, each owning an ingress queue (the "NIC
// ring"), a single-producer/multi-consumer shuffle queue of ready
// connections, and a remote-syscall queue through which stolen work ships
// its replies back to the home core for ordered transmission.
//
// Architecture (mirroring §4 of the paper):
//
//   - The lower networking layer is the per-connection frame parser, run
//     under the home worker's kernel lock (coherency-free in the paper; a
//     single-threaded critical section here).
//   - The shuffle layer is Worker.shuffle: connections holding at least
//     one undelivered event, present exactly once while in StateReady.
//     The home worker consumes it; idle remote workers steal from it.
//   - The execution layer runs the application Handler with exclusive
//     connection ownership, so back-to-back requests on one connection
//     are handled — and answered — in order without app-level locking.
//
// Go cannot deliver preemptive IPIs to a goroutine, so the paper's
// exit-less IPI is substituted by kernel proxying: when the home worker is
// stuck in a long application handler, any idle worker may acquire the
// home's kernel lock and run its bounded kernel step (parse ingress,
// replenish the shuffle queue, flush remote replies) on its behalf. The
// schedule this produces is the one the IPI produces in the paper: pending
// kernel work on a busy core happens promptly instead of waiting for the
// handler to finish. Setting Config.DisableProxy reproduces the paper's
// cooperative "no interrupts" variant.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zygos/internal/bufpool"
	"zygos/internal/nicsim"
	"zygos/internal/proto"
)

// Handler processes one request event. Implementations complete each
// event through Ctx.Reply or Ctx.Error — synchronously, or later via
// Ctx.Detach — and replies are transmitted in event order per connection
// regardless of which worker or goroutine completed them.
type Handler interface {
	Serve(ctx *Ctx, conn *Conn, msg proto.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx *Ctx, conn *Conn, msg proto.Message)

// Serve implements Handler.
func (f HandlerFunc) Serve(ctx *Ctx, conn *Conn, msg proto.Message) { f(ctx, conn, msg) }

// Config parameterizes a Runtime.
type Config struct {
	// Cores is the number of worker goroutines (the paper's dataplane
	// cores). Defaults to runtime.GOMAXPROCS(0).
	Cores int
	// Handler is the application; required.
	Handler Handler
	// DisableStealing turns off the shuffle layer's work stealing,
	// degenerating into a shared-nothing, IX-style partitioned dataplane
	// (used as an ablation and baseline).
	DisableStealing bool
	// DisableProxy turns off the IPI-analogue kernel proxying, giving the
	// paper's cooperative "ZygOS (no interrupts)" variant.
	DisableProxy bool
	// ParkInterval bounds how long an idle worker sleeps before rescanning
	// for stealable work; defaults to 100µs.
	ParkInterval time.Duration
	// IngressCap bounds each worker's ingress queue (segments); pushes
	// beyond it block the transport reader, providing backpressure.
	// Defaults to 4096.
	IngressCap int
	// LockOSThread pins each worker goroutine to an OS thread.
	LockOSThread bool
}

// Stats is a snapshot of runtime counters.
type Stats struct {
	Events   uint64 // application events executed
	Steals   uint64 // events executed by a non-home worker
	Proxies  uint64 // kernel steps run on another worker's behalf (IPI analogue)
	Conns    uint64 // connections created over the runtime's lifetime
	Detached uint64 // events whose handlers detached their reply
}

// Runtime is a ZygOS-style work-conserving scheduler instance.
type Runtime struct {
	cfg     Config
	rss     *nicsim.RSS
	workers []*Worker
	handler Handler

	events      atomic.Uint64
	steals      atomic.Uint64
	proxies     atomic.Uint64
	connSeq     atomic.Uint64
	sigSeq      atomic.Uint64
	detachTotal atomic.Uint64
	// detachedN counts detached events whose Completion has not resolved
	// yet; quiescence (and therefore Flush) waits for them.
	detachedN atomic.Int64
	// parsedN/completedN count events parsed off the wire and completion
	// tokens resolved; their difference is the runtime-wide backlog of
	// admitted-but-unanswered requests (queued, executing, or detached),
	// the signal admission control sheds on.
	parsedN    atomic.Int64
	completedN atomic.Int64

	running atomic.Bool
	wg      sync.WaitGroup
}

// New creates and starts a runtime. Callers must Close it.
func New(cfg Config) (*Runtime, error) {
	if cfg.Handler == nil {
		return nil, errors.New("core: Config.Handler is required")
	}
	if cfg.Cores <= 0 {
		cfg.Cores = runtime.GOMAXPROCS(0)
	}
	if cfg.ParkInterval <= 0 {
		cfg.ParkInterval = 100 * time.Microsecond
	}
	if cfg.IngressCap <= 0 {
		cfg.IngressCap = 4096
	}
	rt := &Runtime{
		cfg:     cfg,
		rss:     nicsim.NewRSS(cfg.Cores),
		handler: cfg.Handler,
	}
	for i := 0; i < cfg.Cores; i++ {
		rt.workers = append(rt.workers, newWorker(rt, i))
	}
	rt.running.Store(true)
	for _, w := range rt.workers {
		rt.wg.Add(1)
		go w.run()
	}
	return rt, nil
}

// Close stops all workers and waits for them to exit. In-flight handler
// invocations complete; undelivered events are discarded.
func (rt *Runtime) Close() {
	if !rt.running.CompareAndSwap(true, false) {
		return
	}
	for _, w := range rt.workers {
		w.signal()
	}
	rt.wg.Wait()
}

// Cores returns the number of workers.
func (rt *Runtime) Cores() int { return len(rt.workers) }

// Backlog returns the number of events parsed off the wire whose reply
// has not completed yet — queued in per-connection event queues,
// executing in handlers, or detached. It is the queue depth admission
// control sheds on.
func (rt *Runtime) Backlog() int64 {
	b := rt.parsedN.Load() - rt.completedN.Load()
	if b < 0 {
		return 0
	}
	return b
}

// Stats returns a snapshot of the runtime counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		Events:   rt.events.Load(),
		Steals:   rt.steals.Load(),
		Proxies:  rt.proxies.Load(),
		Conns:    rt.connSeq.Load(),
		Detached: rt.detachTotal.Load(),
	}
}

// NewConn registers a connection whose replies are written to wr. The
// connection's home worker is chosen by RSS hashing of its identifier,
// exactly as the NIC steers a flow in the paper.
func (rt *Runtime) NewConn(wr ReplyWriter) *Conn {
	id := rt.connSeq.Add(1)
	c := &Conn{
		id:     id,
		home:   rt.rss.Queue(id),
		wr:     wr,
		rt:     rt,
		txWait: make(map[uint64][]byte),
	}
	return c
}

// Ingress delivers raw stream bytes from a transport reader into the
// connection's home ingress queue. The bytes are copied (into a pooled
// segment buffer), so callers may reuse their read buffer immediately.
// It blocks when the queue is full (transport backpressure) and returns
// an error after Close.
func (rt *Runtime) Ingress(c *Conn, data []byte) error {
	return rt.IngressOwned(c, append(bufpool.Get(len(data)), data...))
}

// GetSegment returns a pooled, zero-length buffer with capacity at least
// n, suitable for handing to IngressOwned. Transport readers use it to
// read directly into runtime-owned memory, eliminating the ingress copy.
func (rt *Runtime) GetSegment(n int) []byte { return bufpool.Get(n) }

// IngressOwned is Ingress without the copy: ownership of data (which
// must come from GetSegment) transfers to the runtime unconditionally —
// even on error — and the buffer returns to the segment pool once the
// kernel step has parsed it. It blocks when the home ingress queue is
// full and returns an error after Close.
func (rt *Runtime) IngressOwned(c *Conn, data []byte) error {
	if !rt.running.Load() {
		bufpool.Put(data)
		return errors.New("core: runtime is closed")
	}
	if c.closed.Load() {
		bufpool.Put(data)
		return fmt.Errorf("core: conn %d is closed", c.id)
	}
	w := rt.workers[c.home]
	return w.pushIngress(segment{conn: c, data: data})
}

// CloseConn marks the connection closed. Events already queued are still
// delivered; subsequent Ingress calls fail. Safe to call multiple times.
func (rt *Runtime) CloseConn(c *Conn) {
	c.closed.Store(true)
}

// Flush blocks until every event ingressed before the call has been
// executed and its replies written, or the timeout elapses. It is a
// testing/shutdown aid, not a fast path.
func (rt *Runtime) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if rt.quiescent() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func (rt *Runtime) quiescent() bool {
	if rt.detachedN.Load() != 0 {
		return false
	}
	for _, w := range rt.workers {
		if !w.quiescent() {
			return false
		}
	}
	return true
}

// tryProxy is the IPI analogue: if the target worker is stuck in
// application code, run its kernel step on its behalf so pending TX and
// shuffle replenishment do not wait for the handler to return. It is
// safe from any goroutine — idle workers and detached-reply resolvers
// both use it.
func (rt *Runtime) tryProxy(target *Worker) bool {
	if !target.inApp.Load() {
		return false
	}
	if !target.kernelMu.TryLock() {
		return false
	}
	rt.proxies.Add(1)
	did := target.kernelStep()
	target.kernelMu.Unlock()
	return did
}

// signalOther nudges one worker other than self, round-robin, so that an
// idle worker notices freshly stealable or proxyable work without waiting
// out its park interval.
func (rt *Runtime) signalOther(self int) {
	n := len(rt.workers)
	if n <= 1 {
		return
	}
	k := int(rt.sigSeq.Add(1)) % n
	if k == self {
		k = (k + 1) % n
	}
	rt.workers[k].signal()
}

// stealOrder fills order with a random permutation of worker indexes,
// excluding self, using the worker-local source.
func (rt *Runtime) stealOrder(rng *rand.Rand, self int, order []int) []int {
	order = order[:0]
	for i := range rt.workers {
		if i != self {
			order = append(order, i)
		}
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}
