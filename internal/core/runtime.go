// Package core implements the ZygOS execution model as a real Go runtime:
// a fixed pool of per-core workers, each owning an ingress ring (the "NIC
// ring"), a single-producer/multi-consumer ready ring of ready
// connections (the shuffle queue), and a remote-syscall stack through
// which work executed elsewhere ships the connection's state-machine
// advance back to the home core. Replies themselves transmit eagerly
// from whichever worker produced them: the per-connection TX sequencer
// (completion tokens, transmitted strictly in order) has no core
// affinity, so ordered transmission needs no trip home.
//
// Architecture (mirroring §4 of the paper):
//
//   - The lower networking layer is the per-connection frame parser, run
//     under the home worker's kernel lock (coherency-free in the paper; a
//     single-threaded critical section here).
//   - The shuffle layer is Worker.ready: connections holding at least
//     one undelivered event, present exactly once while in StateReady.
//     The home worker consumes it; idle remote workers steal from it in
//     batches.
//   - The execution layer runs the application Handler with exclusive
//     connection ownership, so back-to-back requests on one connection
//     are handled — and answered — in order without app-level locking.
//
// The scheduling fabric is lock-free on every hot edge: the ingress ring
// is a bounded MPSC ring with spin-then-park producers, the shuffle
// queue is a Chase-Lev-style stealing ring with steal-half batching, the
// remote-syscall queue is an intrusive MPSC stack drained in one atomic
// swap, and idle workers park on an eventcount — they sleep until work
// actually arrives instead of polling on a timer.
//
// Go cannot deliver preemptive IPIs to a goroutine, so the paper's
// exit-less IPI is substituted by kernel proxying: when the home worker is
// stuck in a long application handler, any idle worker may acquire the
// home's kernel lock and run its bounded kernel step (parse ingress,
// replenish the shuffle queue, advance connection state machines) on its
// behalf. The
// schedule this produces is the one the IPI produces in the paper: pending
// kernel work on a busy core happens promptly instead of waiting for the
// handler to finish. Setting Config.DisableProxy reproduces the paper's
// cooperative "no interrupts" variant.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zygos/internal/bufpool"
	"zygos/internal/nicsim"
	"zygos/internal/proto"
)

// Handler processes one request event. Implementations complete each
// event through Ctx.Reply or Ctx.Error — synchronously, or later via
// Ctx.Detach — and replies are transmitted in event order per connection
// regardless of which worker or goroutine completed them.
type Handler interface {
	Serve(ctx *Ctx, conn *Conn, msg proto.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx *Ctx, conn *Conn, msg proto.Message)

// Serve implements Handler.
func (f HandlerFunc) Serve(ctx *Ctx, conn *Conn, msg proto.Message) { f(ctx, conn, msg) }

// Config parameterizes a Runtime.
type Config struct {
	// Cores is the number of worker goroutines (the paper's dataplane
	// cores). Defaults to runtime.GOMAXPROCS(0).
	Cores int
	// Handler is the application; required.
	Handler Handler
	// DisableStealing turns off the shuffle layer's work stealing,
	// degenerating into a shared-nothing, IX-style partitioned dataplane
	// (used as an ablation and baseline).
	DisableStealing bool
	// DisableProxy turns off the IPI-analogue kernel proxying, giving the
	// paper's cooperative "ZygOS (no interrupts)" variant.
	DisableProxy bool
	// ParkInterval is the idle watchdog: parked workers are woken on
	// demand by the eventcount when work arrives, and this bounds how
	// long one sleeps before a defensive rescan regardless. Defaults to
	// 100µs.
	ParkInterval time.Duration
	// IngressCap bounds each worker's ingress ring (segments, rounded up
	// to a power of two); pushes beyond it block the transport reader,
	// providing backpressure. Defaults to 4096.
	IngressCap int
	// LockOSThread pins each worker goroutine to an OS thread.
	LockOSThread bool
	// DepthFrames piggybacks a health frame carrying the runtime's
	// current scheduling depth (Depths().Load()) onto every egress reply
	// batch bound for a v3-speaking peer. Clients without a depth hook
	// drop the frame for free; a cluster tier's balancer routes on it.
	DepthFrames bool
	// OnExpired, when set, is invoked with the wire method of every
	// event shed at dispatch because its deadline budget had already
	// expired (StatusDeadlineExceeded). It runs on the activation hot
	// path and must be cheap — the server layer uses it for per-route
	// expiry accounting.
	OnExpired func(method uint16)
	// OnConnClosed, when set, is invoked once with the connection's ID
	// when it closes (transport teardown, poison, or explicit
	// CloseConn). The server layer uses it to unhook the connection's
	// pub-sub subscriptions from the fan-out bus. May be called from
	// any goroutine; must not block.
	OnConnClosed func(id uint64)
}

// Stats is a snapshot of runtime counters.
type Stats struct {
	Events   uint64 // application events executed
	Steals   uint64 // events executed by a non-home worker
	Proxies  uint64 // kernel steps run on another worker's behalf (IPI analogue)
	Conns    uint64 // connections created over the runtime's lifetime
	Detached uint64 // events whose handlers detached their reply
	Parks    uint64 // times a worker committed to an eventcount sleep
	Wakes    uint64 // demand wakes delivered to parked workers
	Expired  uint64 // events shed at dispatch with an already-expired deadline budget

	PushQueued  uint64 // v4 PUSH frames accepted into subscription rings
	PushSent    uint64 // v4 PUSH frames handed to transport writers
	PushDropped uint64 // v4 PUSH frames evicted (drop-oldest) or refused (disconnect/oversize)
	Subs        int64  // live push subscriptions (gauge)
}

// Runtime is a ZygOS-style work-conserving scheduler instance.
type Runtime struct {
	cfg     Config
	rss     *nicsim.RSS
	workers []*Worker
	handler Handler

	events      atomic.Uint64
	steals      atomic.Uint64
	proxies     atomic.Uint64
	connSeq     atomic.Uint64
	sigSeq      atomic.Uint64
	detachTotal atomic.Uint64
	parks       atomic.Uint64
	wakes       atomic.Uint64
	expired     atomic.Uint64
	// detachedN counts detached events whose Completion has not resolved
	// yet; quiescence (and therefore Flush) waits for them.
	detachedN atomic.Int64
	// parsedN/completedN count events parsed off the wire and completion
	// tokens resolved; their difference is the runtime-wide backlog of
	// admitted-but-unanswered requests (queued, executing, or detached),
	// the signal admission control sheds on.
	parsedN    atomic.Int64
	completedN atomic.Int64
	// segsLive counts pooled segment buffers currently owned by the
	// runtime or leased to transports — the alloc-guard teardown tests
	// assert it returns to zero after Close.
	segsLive atomic.Int64
	// Push-egress counters (see push.go).
	pushQueued  atomic.Uint64
	pushSent    atomic.Uint64
	pushDropped atomic.Uint64
	subsLive    atomic.Int64
	// spinning counts workers currently awake in the steal scan. It
	// throttles demand wakes the way Go's own scheduler throttles wakep:
	// while somebody is already scanning, freshly published work will be
	// found by them — waking a second worker just burns context
	// switches. Lost-wakeup safe because a scanner that gives up
	// decrements spinning before its park-time recheck of every depth
	// counter: a publisher that skipped the wake after seeing
	// spinning>0 published its depth first, so the recheck sees it.
	spinning atomic.Int32

	running atomic.Bool
	wg      sync.WaitGroup
}

// New creates and starts a runtime. Callers must Close it.
func New(cfg Config) (*Runtime, error) {
	if cfg.Handler == nil {
		return nil, errors.New("core: Config.Handler is required")
	}
	if cfg.Cores <= 0 {
		cfg.Cores = runtime.GOMAXPROCS(0)
	}
	if cfg.ParkInterval <= 0 {
		cfg.ParkInterval = 100 * time.Microsecond
	}
	if cfg.IngressCap <= 0 {
		cfg.IngressCap = 4096
	}
	rt := &Runtime{
		cfg:     cfg,
		rss:     nicsim.NewRSS(cfg.Cores),
		handler: cfg.Handler,
	}
	for i := 0; i < cfg.Cores; i++ {
		rt.workers = append(rt.workers, newWorker(rt, i))
	}
	rt.running.Store(true)
	for _, w := range rt.workers {
		rt.wg.Add(1)
		go w.run()
	}
	return rt, nil
}

// Close stops all workers and waits for them to exit. In-flight handler
// invocations complete; undelivered events are discarded and their
// pooled buffers returned.
func (rt *Runtime) Close() {
	if !rt.running.CompareAndSwap(true, false) {
		return
	}
	for _, w := range rt.workers {
		w.ec.notify()
		w.ingress.notFull.notify()
	}
	rt.wg.Wait()
}

// Cores returns the number of workers.
func (rt *Runtime) Cores() int { return len(rt.workers) }

// Backlog returns the number of events parsed off the wire whose reply
// has not completed yet — queued in per-connection event queues,
// executing in handlers, or detached. It is the queue depth admission
// control sheds on.
func (rt *Runtime) Backlog() int64 {
	b := rt.parsedN.Load() - rt.completedN.Load()
	if b < 0 {
		return 0
	}
	return b
}

// DepthSnapshot is the cheap load signal the health piggyback stamps on
// the wire: a handful of atomic reads, no locks taken and nothing
// allocated, safe on the TX hot path where a full Stats() (which builds
// per-route maps at the server layer) would not be.
type DepthSnapshot struct {
	// Backlog is the number of admitted-but-unanswered requests: parsed
	// off the wire, not yet replied (queued, executing, or detached).
	Backlog int64
	// Ingress is the number of raw stream segments sitting in worker
	// ingress rings, not yet parsed — arrivals the Backlog cannot see
	// yet.
	Ingress int
	// Ready is the number of connections currently queued in ready
	// rings awaiting an executor.
	Ready int
}

// Load flattens the snapshot into the single wire-friendly depth figure
// the health frame carries: admitted backlog plus not-yet-parsed
// ingress, clamped to uint32.
func (d DepthSnapshot) Load() uint32 {
	l := d.Backlog + int64(d.Ingress)
	if l < 0 {
		return 0
	}
	if l > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(l)
}

// Depths returns the runtime's instantaneous scheduling depths. Unlike
// Stats it is allocation-free and touches only atomic counters, so the
// reply hot path (the depth piggyback) and polling balancers can call
// it per batch without perturbing the workload being measured.
func (rt *Runtime) Depths() DepthSnapshot {
	d := DepthSnapshot{Backlog: rt.Backlog()}
	for _, w := range rt.workers {
		d.Ingress += w.ingress.Len()
		d.Ready += w.ready.Len()
	}
	return d
}

// Stats returns a snapshot of the runtime counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		Events:   rt.events.Load(),
		Steals:   rt.steals.Load(),
		Proxies:  rt.proxies.Load(),
		Conns:    rt.connSeq.Load(),
		Detached: rt.detachTotal.Load(),
		Parks:    rt.parks.Load(),
		Wakes:    rt.wakes.Load(),
		Expired:  rt.expired.Load(),

		PushQueued:  rt.pushQueued.Load(),
		PushSent:    rt.pushSent.Load(),
		PushDropped: rt.pushDropped.Load(),
		Subs:        rt.subsLive.Load(),
	}
}

// SegmentsLive reports how many pooled segment buffers the runtime
// currently owns (queued in ingress rings or leased to transports via
// GetSegment). The teardown stress tests assert it returns to zero after
// Close — a nonzero residue means a buffer leaked out of the pool cycle.
func (rt *Runtime) SegmentsLive() int64 { return rt.segsLive.Load() }

// NewConn registers a connection whose replies are written to wr. The
// connection's home worker is chosen by RSS hashing of its identifier,
// exactly as the NIC steers a flow in the paper.
func (rt *Runtime) NewConn(wr ReplyWriter) *Conn {
	id := rt.connSeq.Add(1)
	c := &Conn{
		id:     id,
		home:   rt.rss.Queue(id),
		wr:     wr,
		rt:     rt,
		txWait: make(map[uint64][]byte),
	}
	return c
}

// Ingress delivers raw stream bytes from a transport reader into the
// connection's home ingress ring. The bytes are copied (into a pooled
// segment buffer), so callers may reuse their read buffer immediately.
// It blocks when the ring is full (transport backpressure) and returns
// an error after Close.
func (rt *Runtime) Ingress(c *Conn, data []byte) error {
	return rt.IngressOwned(c, append(rt.GetSegment(len(data)), data...))
}

// GetSegment returns a pooled, zero-length buffer with capacity at least
// n, suitable for handing to IngressOwned. Transport readers use it to
// read directly into runtime-owned memory, eliminating the ingress copy.
// A segment that ends up not being ingressed must go back through
// PutSegment.
func (rt *Runtime) GetSegment(n int) []byte {
	rt.segsLive.Add(1)
	return bufpool.Get(n)
}

// PutSegment returns a segment obtained from GetSegment that was never
// handed to IngressOwned (a transport reader's parting buffer, say) to
// the pool.
func (rt *Runtime) PutSegment(b []byte) { rt.putSegment(b) }

// putSegment is the single return path for segment buffers; it keeps the
// live-segment accounting exact.
func (rt *Runtime) putSegment(b []byte) {
	rt.segsLive.Add(-1)
	bufpool.Put(b)
}

// IngressOwned is Ingress without the copy: ownership of data (which
// must come from GetSegment) transfers to the runtime unconditionally —
// even on error — and the buffer returns to the segment pool once the
// kernel step has parsed it. It blocks when the home ingress ring is
// full and returns an error after Close.
func (rt *Runtime) IngressOwned(c *Conn, data []byte) error {
	if !rt.running.Load() {
		rt.putSegment(data)
		return errors.New("core: runtime is closed")
	}
	if c.closed.Load() {
		rt.putSegment(data)
		return fmt.Errorf("core: conn %d is closed", c.id)
	}
	w := rt.workers[c.home]
	return w.pushIngress(segment{conn: c, data: data})
}

// CloseConn marks the connection closed. Events already queued are still
// delivered; subsequent Ingress calls fail. Safe to call multiple times.
//
// Closing also returns the connection's pooled memory: the TX scratch
// immediately (txMu serializes against an in-flight completeBatch, and
// a batch that observes the closed flag frees its own buffer), and the
// parse buffer via a nil-data pill through the home ingress ring — the
// parser is owned by the home worker's drain loop, so the release must
// ride the same ring as every other parser touch rather than race it.
func (rt *Runtime) CloseConn(c *Conn) {
	if c.closed.Swap(true) {
		return
	}
	c.ShrinkIdle()
	c.teardownPush()
	if f := rt.cfg.OnConnClosed; f != nil {
		f(c.id)
	}
	w := rt.workers[c.home]
	for i := 0; i < 8; i++ {
		if w.ingress.tryPush(c, nil) {
			w.signal()
			w.selfDrainIfClosed()
			return
		}
		// Ring momentarily full: yield to the draining worker and retry.
		// If every retry fails the pill is dropped — the drain loop also
		// releases a closed connection's parse buffer when any later
		// segment of it drains, so at worst one pooled block stays out
		// for a connection that went quiet with a full home ring.
		runtime.Gosched()
	}
}

// Flush blocks until every event ingressed before the call has been
// executed and its replies written, or the timeout elapses. It is a
// testing/shutdown aid, not a fast path.
func (rt *Runtime) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if rt.quiescent() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func (rt *Runtime) quiescent() bool {
	if rt.detachedN.Load() != 0 {
		return false
	}
	// The per-worker scan below is not atomic: an executor can pick work
	// up from a worker the scan has not reached yet after the scan read
	// its own counters as zero. The parse/completion ledger closes that
	// window — an admitted event keeps parsedN ahead of completedN from
	// the kernel step that parsed it until its reply (or discard) is
	// produced, no matter which queues or local buffers carry it in
	// between — so in-flight application work is visible here even when
	// the scan races it.
	if rt.parsedN.Load() != rt.completedN.Load() {
		return false
	}
	for _, w := range rt.workers {
		if !w.quiescent() {
			return false
		}
	}
	return true
}

// tryProxy is the IPI analogue: run the target worker's kernel step on
// its behalf so pending ingress parsing, shuffle replenishment, and
// remote completions do not wait for it. The kernel lock is the only
// safety requirement — it serializes the step no matter who runs it —
// so the proxy is not restricted to targets stuck in application code:
// a home worker wedged outside the handler (say, blocked on a stalled
// peer's egress backpressure) can be proxied too, keeping its other
// connections live. A healthy target parses under its own kernel lock,
// so the TryLock naturally fails instead of duelling with it. Safe from
// any goroutine — idle workers and detached-reply resolvers both use it.
func (rt *Runtime) tryProxy(target *Worker) bool {
	if !target.kernelMu.TryLock() {
		return false
	}
	rt.proxies.Add(1)
	did := target.kernelStep()
	target.kernelMu.Unlock()
	return did
}

// wakeOther delivers a demand wake to one parked worker other than self,
// round-robin, so freshly published stealable or proxyable work is
// picked up without any worker polling. Workers that are awake are
// skipped — they will find the work on their own loop — and if nobody is
// parked there is nobody to wake.
func (rt *Runtime) wakeOther(self int) {
	n := len(rt.workers)
	if n <= 1 {
		return
	}
	if rt.cfg.DisableStealing {
		// A woken worker could not act: stealing is off, and proxying is
		// only reachable through the steal scan. Let it sleep.
		return
	}
	if rt.spinning.Load() > 0 {
		// A worker is already awake and scanning; it will find the work.
		return
	}
	start := int(rt.sigSeq.Add(1)) % n
	for i := 0; i < n; i++ {
		k := (start + i) % n
		if k == self {
			continue
		}
		w := rt.workers[k]
		if !w.ec.waiting.Load() {
			continue
		}
		if w.ec.notify() {
			rt.wakes.Add(1)
			return
		}
	}
}

// stealOrder fills order with a random permutation of worker indexes,
// excluding self, using the worker-local source.
func (rt *Runtime) stealOrder(rng *rand.Rand, self int, order []int) []int {
	order = order[:0]
	for i := range rt.workers {
		if i != self {
			order = append(order, i)
		}
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}
