package core

import (
	"sync"
	"sync/atomic"
)

// remoteOp is a connection state-machine advance shipped to the home
// core — the runtime's residue of the paper's §4.2 remote batched
// syscall. Reply bytes never travel here (stolen activations and
// detached resolvers transmit eagerly under the TX sequencer, so no
// kernel step can block on a peer's backpressure); what must reach the
// home core is only the Busy→{Ready,Idle} transition, which has to run
// under the home kernel lock. Stolen activations ship one per
// activation, and a home activation whose kernel lock was held by a
// proxier ships one instead of blocking. Ops are intrusive stack nodes,
// recycled through a pool so the steady-state remote path allocates
// nothing.
type remoteOp struct {
	next *remoteOp
	conn *Conn
}

var remoteOpPool = sync.Pool{New: func() any { return new(remoteOp) }}

func getRemoteOp() *remoteOp { return remoteOpPool.Get().(*remoteOp) }

func putRemoteOp(op *remoteOp) {
	*op = remoteOp{}
	remoteOpPool.Put(op)
}

// shipRemote publishes a state-machine advance for c on target's stack,
// then signals target. Both ship-home sites (stolen activation end, home
// activation dodging a held kernel lock) go through here: the
// push-before-signal order is what the lost-wakeup argument relies on.
func shipRemote(target *Worker, c *Conn) {
	op := getRemoteOp()
	op.conn = c
	target.remote.push(op)
	target.signal()
}

// remoteStack is the remote-syscall queue: an intrusive lock-free MPSC
// Treiber stack. Producers (stolen activations, home activations dodging
// a held kernel lock) push with a CAS loop; the consumer — the kernel
// step — takes the entire stack in a single atomic swap and walks it. It
// replaces the former mutex-guarded slice: the push is wait-free against
// the consumer and lock-free against other producers, and the drain is
// exactly one atomic operation regardless of depth.
type remoteStack struct {
	head atomic.Pointer[remoteOp]
}

// push publishes one op. Safe from any goroutine.
func (s *remoteStack) push(op *remoteOp) {
	for {
		old := s.head.Load()
		op.next = old
		if s.head.CompareAndSwap(old, op) {
			return
		}
	}
}

// drain detaches the whole stack in one swap and returns it oldest-first
// (the LIFO chain is reversed so advances resolve in rough arrival
// order; per-connection reply order never depends on this queue at all —
// the TX sequencer orders by token).
func (s *remoteStack) drain() *remoteOp {
	top := s.head.Swap(nil)
	var rev *remoteOp
	for top != nil {
		next := top.next
		top.next = rev
		rev = top
		top = next
	}
	return rev
}

// nonEmpty is the depth signal idle workers scan when deciding whether a
// victim's kernel step is worth proxying.
func (s *remoteStack) nonEmpty() bool {
	return s.head.Load() != nil
}
