package core

import (
	"runtime"
	"sync/atomic"
)

// ingressSlot is one cell of the ingress ring. seq is the slot's turn
// number in the Vyukov protocol: equal to the enqueue position when the
// slot is free, position+1 once the segment is published, and it gains a
// full lap (+capacity) when the consumer empties it again.
type ingressSlot struct {
	seq  atomic.Uint64
	conn *Conn
	data []byte
}

// ingressRing is the software NIC ring: a bounded multi-producer,
// single-consumer queue of raw stream segments. Producers are transport
// reader goroutines; the single consumer is whoever holds the worker's
// kernel lock (the home worker, or an idle worker proxying its kernel
// step). It replaces the former mutex+condvar ingress queue: the
// uncontended enqueue is one CAS on the tail plus one release-store on
// the slot, and the dequeue is two loads and two stores, with no lock in
// either direction.
//
// A full ring makes tryPush fail; pushIngress then spins briefly and
// parks the producer on notFull, which the consumer notifies after
// draining — transport backpressure without a wakeup poll.
type ingressRing struct {
	mask    uint64
	slots   []ingressSlot
	_       [40]byte      // keep enq off the slots header's cache line
	enq     atomic.Uint64 // next position to reserve (producers, CAS)
	_       [56]byte      // and deq off enq's: producer CAS traffic must
	deq     atomic.Uint64 // not false-share with the consumer's advance
	notFull eventcount
}

// init sizes the ring to at least capacity slots (rounded up to a power
// of two).
func (r *ingressRing) init(capacity int) {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r.slots = make([]ingressSlot, n)
	r.mask = uint64(n - 1)
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	r.notFull.init()
}

// tryPush publishes one segment; it fails (without blocking) when the
// ring is full.
func (r *ingressRing) tryPush(c *Conn, data []byte) bool {
	pos := r.enq.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.conn = c
				s.data = data
				s.seq.Store(pos + 1) // publish: release-pairs with pop's load
				return true
			}
			pos = r.enq.Load()
		case seq < pos:
			// The slot has not completed its previous lap: full.
			return false
		default:
			// Another producer claimed pos; chase the tail.
			pos = r.enq.Load()
		}
	}
}

// pop removes the oldest published segment. Single consumer: callers are
// serialized by the worker's kernel lock. A reservation whose publish
// store has not landed yet reads as empty; the ring's Len stays nonzero,
// so the kernel loop retries rather than parking.
func (r *ingressRing) pop() (segment, bool) {
	pos := r.deq.Load()
	s := &r.slots[pos&r.mask]
	if s.seq.Load() != pos+1 {
		return segment{}, false
	}
	sg := segment{conn: s.conn, data: s.data}
	s.conn = nil
	s.data = nil
	s.seq.Store(pos + r.mask + 1) // free the slot for its next lap
	r.deq.Store(pos + 1)
	return sg, true
}

// drainInto pops up to len(buf) published segments in one sweep,
// amortizing the consume-index update over the batch: two atomic ops per
// segment (the slot's publish check and its lap release) plus two per
// batch, against four per segment for repeated pop calls. Single
// consumer, like pop.
func (r *ingressRing) drainInto(buf []segment) int {
	pos := r.deq.Load()
	n := uint64(0)
	for int(n) < len(buf) {
		s := &r.slots[(pos+n)&r.mask]
		if s.seq.Load() != pos+n+1 {
			break
		}
		buf[n] = segment{conn: s.conn, data: s.data}
		s.conn = nil
		s.data = nil
		s.seq.Store(pos + n + r.mask + 1)
		n++
	}
	if n > 0 {
		r.deq.Store(pos + n)
	}
	return int(n)
}

// Len reports the number of reserved-or-published segments. It counts a
// producer's reservation from the moment of its tail CAS, so a parked
// worker deciding whether ingress work exists never undercounts.
func (r *ingressRing) Len() int {
	d := r.deq.Load()
	e := r.enq.Load()
	if e <= d {
		return 0
	}
	return int(e - d)
}

// ingressSpin bounds how many yield-spins a producer burns on a full
// ring before parking on notFull. The consumer's drain is bounded work,
// so a short spin usually wins; past it, sleeping is cheaper than
// fighting the (single) CPU the consumer needs.
const ingressSpin = 4

// push publishes a segment, blocking while the ring is full (transport
// backpressure) with a spin-then-park producer protocol. It fails only
// once the runtime has closed; ownership of data stays with the caller
// on error.
func (r *ingressRing) push(w *Worker, c *Conn, data []byte) error {
	spins := 0
	for {
		if !w.rt.running.Load() {
			return errRuntimeClosed
		}
		if r.tryPush(c, data) {
			return nil
		}
		if spins < ingressSpin {
			spins++
			// The consumer may just need the CPU; nudge it and yield.
			w.signal()
			runtime.Gosched()
			continue
		}
		g := r.notFull.prepare()
		if r.tryPush(c, data) {
			r.notFull.cancel()
			return nil
		}
		if !w.rt.running.Load() {
			r.notFull.cancel()
			return errRuntimeClosed
		}
		// Make sure the consumer is awake before committing to sleep:
		// its drain is what will notify us.
		w.signal()
		r.notFull.wait(g)
	}
}
