package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"zygos/internal/proto"
)

// v2frame builds a v2 request frame.
func v2frame(id uint64, payload string) []byte {
	return proto.AppendFrameV2(nil, proto.Message{ID: id, Payload: []byte(payload), V2: true})
}

// Detached completions resolved out of order must still be transmitted
// in request order: the TX sequencer holds them until their token's turn.
func TestDetachReplyOrdering(t *testing.T) {
	const n = 64
	var mu sync.Mutex
	pending := make(map[uint64]*Completion) // request ID -> handle
	handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
		if m.ID%2 == 0 {
			co := ctx.Detach()
			mu.Lock()
			pending[m.ID] = co
			mu.Unlock()
			return
		}
		ctx.Reply(m.Payload)
	})
	rt := newTestRuntime(t, Config{Cores: 4, Handler: handler})
	wr := &captureWriter{}
	c := rt.NewConn(wr)
	var stream []byte
	for i := uint64(0); i < n; i++ {
		stream = proto.AppendFrameV2(stream, proto.Message{ID: i, Payload: []byte{byte(i)}, V2: true})
	}
	if err := rt.Ingress(c, stream); err != nil {
		t.Fatal(err)
	}
	// Wait for every even request to detach.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		got := len(pending)
		mu.Unlock()
		if got == n/2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d detaches arrived", got, n/2)
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Complete the detached ones in reverse order, from foreign
	// goroutines: maximum reordering pressure on the sequencer.
	var wg sync.WaitGroup
	for id := uint64(0); id < n; id += 2 {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			time.Sleep(time.Duration(n-id) * 100 * time.Microsecond)
			mu.Lock()
			co := pending[id]
			mu.Unlock()
			if err := co.Reply([]byte{byte(id)}); err != nil {
				t.Errorf("complete %d: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	if !rt.Flush(10 * time.Second) {
		t.Fatal("flush timed out")
	}
	msgs := wr.messages()
	if len(msgs) != n {
		t.Fatalf("got %d replies, want %d", len(msgs), n)
	}
	for i, m := range msgs {
		if m.ID != uint64(i) {
			t.Fatalf("reply %d has ID %d: detached replies reordered", i, m.ID)
		}
		if !m.V2 {
			t.Fatalf("reply %d not v2-framed for a v2 request", i)
		}
	}
}

// Flush must wait for detached completions, and Stats must count them.
func TestFlushWaitsForDetached(t *testing.T) {
	release := make(chan *Completion, 1)
	handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
		release <- ctx.Detach()
	})
	rt := newTestRuntime(t, Config{Cores: 2, Handler: handler})
	wr := &captureWriter{}
	c := rt.NewConn(wr)
	if err := rt.Ingress(c, v2frame(1, "detach")); err != nil {
		t.Fatal(err)
	}
	co := <-release
	if rt.Flush(50 * time.Millisecond) {
		t.Fatal("flush must not succeed while a detached reply is pending")
	}
	if err := co.Reply([]byte("late")); err != nil {
		t.Fatal(err)
	}
	if !rt.Flush(5 * time.Second) {
		t.Fatal("flush timed out after completion")
	}
	msgs := wr.messages()
	if len(msgs) != 1 || string(msgs[0].Payload) != "late" {
		t.Fatalf("got %+v", msgs)
	}
	if rt.Stats().Detached != 1 {
		t.Fatalf("Detached counter = %d, want 1", rt.Stats().Detached)
	}
}

// Exactly one completion wins; every later Reply/Error returns
// ErrCompleted, from the handler path and the detached path alike.
func TestCompletionExactlyOnce(t *testing.T) {
	type outcome struct {
		co   *Completion
		errs []error
	}
	got := make(chan outcome, 1)
	handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
		var o outcome
		switch string(m.Payload) {
		case "sync":
			o.errs = append(o.errs, ctx.Reply([]byte("first")))
			o.errs = append(o.errs, ctx.Reply([]byte("second")))
			o.errs = append(o.errs, ctx.Error(proto.StatusAppError, "late error"))
			// Detach after completion: the handle must refuse to fire.
			co := ctx.Detach()
			o.errs = append(o.errs, co.Reply([]byte("zombie")))
		case "detach":
			o.co = ctx.Detach()
		}
		got <- o
	})
	rt := newTestRuntime(t, Config{Cores: 1, Handler: handler})
	wr := &captureWriter{}
	c := rt.NewConn(wr)

	if err := rt.Ingress(c, v2frame(1, "sync")); err != nil {
		t.Fatal(err)
	}
	o := <-got
	if o.errs[0] != nil {
		t.Fatalf("first reply failed: %v", o.errs[0])
	}
	for i, err := range o.errs[1:] {
		if err != ErrCompleted {
			t.Fatalf("duplicate completion %d: got %v, want ErrCompleted", i, err)
		}
	}

	if err := rt.Ingress(c, v2frame(2, "detach")); err != nil {
		t.Fatal(err)
	}
	o = <-got
	if err := o.co.Error(proto.StatusShed, "busy"); err != nil {
		t.Fatal(err)
	}
	if err := o.co.Reply([]byte("again")); err != ErrCompleted {
		t.Fatalf("second detached completion: got %v, want ErrCompleted", err)
	}
	if !rt.Flush(5 * time.Second) {
		t.Fatal("flush timed out")
	}
	msgs := wr.messages()
	if len(msgs) != 2 {
		t.Fatalf("got %d replies, want 2: %+v", len(msgs), msgs)
	}
	if string(msgs[0].Payload) != "first" || msgs[0].Status != proto.StatusOK {
		t.Fatalf("sync reply wrong: %+v", msgs[0])
	}
	if msgs[1].Status != proto.StatusShed || string(msgs[1].Payload) != "busy" {
		t.Fatalf("detached error reply wrong: %+v", msgs[1])
	}
}

// A one-way request must advance the sequencer without transmitting, so
// later replies are not held hostage by a reply that never comes.
func TestOneWayAdvancesSequencer(t *testing.T) {
	handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
		ctx.Reply(m.Payload) // runtime suppresses it for one-way events
	})
	rt := newTestRuntime(t, Config{Cores: 2, Handler: handler})
	wr := &captureWriter{}
	c := rt.NewConn(wr)
	var stream []byte
	stream = proto.AppendFrameV2(stream, proto.Message{ID: 1, Flags: proto.FlagOneWay, Payload: []byte("fire-and-forget"), V2: true})
	stream = proto.AppendFrameV2(stream, proto.Message{ID: 2, Payload: []byte("normal"), V2: true})
	if err := rt.Ingress(c, stream); err != nil {
		t.Fatal(err)
	}
	if !rt.Flush(5 * time.Second) {
		t.Fatal("flush timed out")
	}
	msgs := wr.messages()
	if len(msgs) != 1 || msgs[0].ID != 2 || string(msgs[0].Payload) != "normal" {
		t.Fatalf("got %+v, want only the reply to request 2", msgs)
	}
}

// Error replies carry their wire status; v1 requests get v1 replies and
// v2 requests get v2 replies on the same connection.
func TestReplyVersionMirrorsRequest(t *testing.T) {
	handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
		if string(m.Payload) == "fail" {
			ctx.Error(proto.StatusAppError, "nope")
			return
		}
		ctx.Reply(m.Payload)
	})
	rt := newTestRuntime(t, Config{Cores: 1, Handler: handler})
	wr := &captureWriter{}
	c := rt.NewConn(wr)
	var stream []byte
	stream = proto.AppendFrame(stream, proto.Message{ID: 1, Payload: []byte("v1-ok")})
	stream = proto.AppendFrameV2(stream, proto.Message{ID: 2, Payload: []byte("fail"), V2: true})
	stream = proto.AppendFrame(stream, proto.Message{ID: 3, Payload: []byte("fail")})
	if err := rt.Ingress(c, stream); err != nil {
		t.Fatal(err)
	}
	if !rt.Flush(5 * time.Second) {
		t.Fatal("flush timed out")
	}
	msgs := wr.messages()
	if len(msgs) != 3 {
		t.Fatalf("got %d replies, want 3", len(msgs))
	}
	if msgs[0].V2 || msgs[0].Status != proto.StatusOK {
		t.Fatalf("v1 request must get a v1 reply: %+v", msgs[0])
	}
	if !msgs[1].V2 || msgs[1].Status != proto.StatusAppError || string(msgs[1].Payload) != "nope" {
		t.Fatalf("v2 error reply wrong: %+v", msgs[1])
	}
	// A v1 peer has no status channel: the error arrives as a plain v1
	// reply whose payload is the message.
	if msgs[2].V2 || string(msgs[2].Payload) != "nope" {
		t.Fatalf("v1 error fallback wrong: %+v", msgs[2])
	}
}

// Stress the sequencer: many connections, every handler detaches, and a
// herd of completer goroutines resolves them in scrambled order while
// stealing is active. Run with -race in CI.
func TestDetachStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const conns = 8
	const per = 100
	type item struct {
		co *Completion
		id uint64
	}
	work := make(chan item, conns*per)
	handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
		work <- item{co: ctx.Detach(), id: m.ID}
	})
	rt := newTestRuntime(t, Config{Cores: 4, Handler: handler, ParkInterval: 50 * time.Microsecond})
	writers := make([]*captureWriter, conns)
	for i := 0; i < conns; i++ {
		writers[i] = &captureWriter{}
		c := rt.NewConn(writers[i])
		go func() {
			for k := uint64(0); k < per; k++ {
				var p [8]byte
				binary.LittleEndian.PutUint64(p[:], k)
				if err := rt.Ingress(c, proto.AppendFrameV2(nil, proto.Message{ID: k, Payload: p[:], V2: true})); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := range work {
				if g%2 == 0 {
					time.Sleep(time.Duration(it.id%5) * 10 * time.Microsecond)
				}
				if err := it.co.Reply([]byte(fmt.Sprint(it.id))); err != nil {
					t.Errorf("complete %d: %v", it.id, err)
				}
			}
		}(g)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		total := 0
		for _, wr := range writers {
			total += len(wr.messages())
		}
		if total == conns*per {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d replies arrived", total, conns*per)
		}
		time.Sleep(time.Millisecond)
	}
	close(work)
	wg.Wait()
	for i, wr := range writers {
		msgs := wr.messages()
		for k, m := range msgs {
			if m.ID != uint64(k) {
				t.Fatalf("conn %d reply %d has ID %d: reordered", i, k, m.ID)
			}
		}
	}
	if !rt.Flush(10 * time.Second) {
		t.Fatal("flush timed out")
	}
}

// Backlog must return to exactly zero after traffic drains — each event
// counted parsed exactly once and completed exactly once, whatever mix
// of sync replies, one-way silences, and detached completions produced
// it. A drift here silently disables admission control.
func TestBacklogDrainsToZero(t *testing.T) {
	pending := make(chan *Completion, 64)
	handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
		switch m.ID % 3 {
		case 0:
			ctx.Reply(m.Payload)
		case 1:
			// never reply: one-way
		case 2:
			pending <- ctx.Detach()
		}
	})
	rt := newTestRuntime(t, Config{Cores: 2, Handler: handler})
	c := rt.NewConn(&captureWriter{})
	const n = 60
	var stream []byte
	for i := uint64(0); i < n; i++ {
		stream = proto.AppendFrameV2(stream, proto.Message{ID: i, Payload: []byte{1}, V2: true})
	}
	if err := rt.Ingress(c, stream); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n/3; i++ {
		co := <-pending
		if err := co.Reply([]byte{2}); err != nil {
			t.Fatal(err)
		}
	}
	if !rt.Flush(10 * time.Second) {
		t.Fatal("flush timed out")
	}
	if got := rt.Backlog(); got != 0 {
		t.Fatalf("Backlog() = %d after drain, want 0 (parsed/completed accounting drifted)", got)
	}
	if got := rt.parsedN.Load(); got != n {
		t.Fatalf("parsedN = %d, want %d", got, n)
	}
	if got := rt.completedN.Load(); got != n {
		t.Fatalf("completedN = %d, want %d (double counting)", got, n)
	}
}
