package core

import (
	"runtime"
	"sync"
	"time"

	"zygos/internal/bufpool"
	"zygos/internal/proto"
)

// Push egress: server-initiated v4 PUSH frames ride a per-connection
// fair queue *behind* the batching reply writer. Each subscription owns
// a bounded ring of pre-encoded frames; publishers append without ever
// blocking (drop-oldest evicts, disconnect reaps), and an on-demand
// flusher goroutine drains the connection's subscriptions round-robin
// in bounded chunks, holding txMu only per chunk so RPC reply batches
// interleave freely. Before each chunk the flusher defers to the
// transport's egress backlog, so push traffic queues here — where it
// can be dropped per policy — instead of filling the transport's
// staging buffer ahead of RPC replies.

// Backpressure policies (mirroring pubsub wire values; duplicated here
// so core does not import pubsub).
const (
	// PushDropOldest evicts the oldest queued frame to admit a new one
	// when the subscription's ring is full, counting the drop.
	PushDropOldest uint8 = 0
	// PushDisconnect closes the subscriber's connection when its ring
	// overflows.
	PushDisconnect uint8 = 1
)

const (
	// defaultPushQueue is the per-subscription ring capacity (frames)
	// when the subscriber does not request one.
	defaultPushQueue = 256
	// maxPushQueue caps what a subscriber may request.
	maxPushQueue = 1 << 15
	// pushChunk bounds the bytes coalesced per flusher write — one txMu
	// hold transmits at most this much push traffic before RPC replies
	// get a turn at the lock.
	pushChunk = 32 << 10
	// pushWindow is the transport egress backlog above which the
	// flusher waits (without holding txMu) before writing more push
	// traffic: replies already staged drain first, and a stalled peer's
	// push frames pile up in the droppable rings rather than in
	// transport memory.
	pushWindow = 128 << 10
)

// EgressBacklogger is optionally implemented by ReplyWriters that can
// report how many bytes are staged but not yet on the wire. The push
// flusher uses it to keep push traffic from racing ahead of RPC replies
// into the transport buffer.
type EgressBacklogger interface {
	EgressBacklog() int
}

// PushSub is one live subscription's egress ring on a connection:
// bounded, never blocking the publisher, drained by the connection's
// push flusher in round-robin turns.
type PushSub struct {
	conn   *Conn
	id     uint32
	topic  uint16
	policy uint8

	mu     sync.Mutex
	q      [][]byte // pre-encoded v4 PUSH frames, ring over q[head:head+n]
	head   int
	n      int
	drops  uint64
	closed bool
}

// ID returns the subscription's wire identifier.
func (s *PushSub) ID() uint32 { return s.id }

// Topic returns the subscription's topic (the v4 method field).
func (s *PushSub) Topic() uint16 { return s.topic }

// Drops reports how many frames this subscription has evicted under the
// drop-oldest policy.
func (s *PushSub) Drops() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drops
}

// Queued reports how many frames are waiting in the ring.
func (s *PushSub) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Push encodes one published frame as a v4 PUSH and queues it for
// egress. It never blocks: a full ring either evicts its oldest frame
// (drop-oldest, counted) or reaps the connection (disconnect). Returns
// false if the frame was not queued (closed subscription, dropped
// frame under disconnect policy).
func (s *PushSub) Push(frameID uint32, payload []byte) bool {
	if len(payload) > proto.MaxPayloadV2 {
		// Unrepresentable in the v4 length field; count as a drop rather
		// than corrupt the stream.
		s.mu.Lock()
		s.drops++
		s.mu.Unlock()
		s.conn.rt.pushDropped.Add(1)
		return false
	}
	frame := proto.AppendFrameV4(bufpool.Get(proto.FrameSizeV4(len(payload))), proto.Message{
		ID:      uint64(frameID),
		Method:  s.topic,
		SubID:   s.id,
		Kind:    proto.KindPush,
		Payload: payload,
	})
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		bufpool.Put(frame)
		return false
	}
	disconnect := false
	if s.n == len(s.q) {
		if s.policy == PushDisconnect {
			s.closed = true
			disconnect = true
			bufpool.Put(frame)
		} else {
			// Evict the oldest queued frame to admit the new one.
			old := s.q[s.head]
			s.q[s.head] = nil
			s.head = (s.head + 1) % len(s.q)
			s.n--
			s.drops++
			bufpool.Put(old)
			s.conn.rt.pushDropped.Add(1)
		}
	}
	if !disconnect {
		s.q[(s.head+s.n)%len(s.q)] = frame
		s.n++
	}
	s.mu.Unlock()
	if disconnect {
		// The consumer cannot keep up and asked to be cut off rather
		// than be lossy. Reap outside the ring lock: CloseConn runs the
		// full teardown (flusher exit, queue release, bus cleanup hook).
		s.conn.rt.pushDropped.Add(1)
		if tc, ok := s.conn.wr.(TransportCloser); ok {
			tc.CloseTransport()
		}
		s.conn.rt.CloseConn(s.conn)
		return false
	}
	s.conn.rt.pushQueued.Add(1)
	s.conn.kickPushFlusher()
	return true
}

// teardown empties the ring and marks the subscription closed,
// returning its frames to the pool. Called with the conn's subMu held.
func (s *PushSub) teardown() {
	s.mu.Lock()
	s.closed = true
	for i := 0; i < s.n; i++ {
		idx := (s.head + i) % len(s.q)
		bufpool.Put(s.q[idx])
		s.q[idx] = nil
	}
	s.n = 0
	s.head = 0
	s.mu.Unlock()
}

// popInto moves up to budget bytes of queued frames into out, returning
// the extended buffer and whether the ring still has frames.
func (s *PushSub) popInto(out []byte, budget int) ([]byte, bool) {
	s.mu.Lock()
	for s.n > 0 {
		f := s.q[s.head]
		// Always move at least one frame per turn, even oversized ones;
		// otherwise a frame larger than the budget would wedge the ring.
		if len(out) > 0 && len(out)+len(f) > budget {
			break
		}
		out = append(out, f...)
		bufpool.Put(f)
		s.q[s.head] = nil
		s.head = (s.head + 1) % len(s.q)
		s.n--
		s.conn.rt.pushSent.Add(1)
		if len(out) >= budget {
			break
		}
	}
	more := s.n > 0
	s.mu.Unlock()
	return out, more
}

// Subscribe registers a push subscription on the connection. The id is
// chosen by the subscriber (it demultiplexes PUSH frames client-side)
// and must be unique per connection; a duplicate returns nil.
func (c *Conn) Subscribe(id uint32, topic uint16, policy uint8, qcap int) *PushSub {
	if qcap <= 0 {
		qcap = defaultPushQueue
	}
	if qcap > maxPushQueue {
		qcap = maxPushQueue
	}
	s := &PushSub{
		conn:   c,
		id:     id,
		topic:  topic,
		policy: policy,
		q:      make([][]byte, qcap),
	}
	c.subMu.Lock()
	if c.closed.Load() || c.subsDown {
		c.subMu.Unlock()
		return nil
	}
	if c.subs == nil {
		c.subs = make(map[uint32]*PushSub)
	}
	if _, dup := c.subs[id]; dup {
		c.subMu.Unlock()
		return nil
	}
	c.subs[id] = s
	c.subList = append(c.subList, s)
	c.subMu.Unlock()
	c.rt.subsLive.Add(1)
	return s
}

// Unsubscribe retires the subscription with the given id, discarding
// any queued frames. Returns the retired subscription, or nil if none
// matched.
func (c *Conn) Unsubscribe(id uint32) *PushSub {
	c.subMu.Lock()
	s := c.subs[id]
	if s == nil {
		c.subMu.Unlock()
		return nil
	}
	delete(c.subs, id)
	for i, o := range c.subList {
		if o == s {
			c.subList = append(c.subList[:i], c.subList[i+1:]...)
			break
		}
	}
	s.teardown()
	c.subMu.Unlock()
	c.rt.subsLive.Add(-1)
	return s
}

// Subscription returns the live subscription with the given id, if any.
func (c *Conn) Subscription(id uint32) *PushSub {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	return c.subs[id]
}

// teardownPush retires every subscription and releases queued frames;
// called once from the connection close paths.
func (c *Conn) teardownPush() {
	c.subMu.Lock()
	if c.subsDown {
		c.subMu.Unlock()
		return
	}
	c.subsDown = true
	n := len(c.subList)
	for _, s := range c.subList {
		s.teardown()
	}
	c.subs = nil
	c.subList = nil
	c.subMu.Unlock()
	if n > 0 {
		c.rt.subsLive.Add(-int64(n))
	}
}

// kickPushFlusher starts the connection's push flusher if it is not
// already running: the classic CAS-guarded on-demand drainer — at most
// one flusher goroutine per connection, existing only while there is
// push traffic to move.
func (c *Conn) kickPushFlusher() {
	if c.pushFlushing.CompareAndSwap(false, true) {
		go c.pushFlushLoop()
	}
}

// hasQueuedPush reports whether any subscription ring holds frames.
func (c *Conn) hasQueuedPush() bool {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	for _, s := range c.subList {
		s.mu.Lock()
		n := s.n
		s.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// gatherPushChunk coalesces up to pushChunk bytes of queued frames into
// a pooled buffer, taking from the connection's subscriptions in
// round-robin order so one firehose topic cannot monopolize the egress
// quota. Returns nil when every ring is empty.
func (c *Conn) gatherPushChunk() []byte {
	c.subMu.Lock()
	if len(c.subList) == 0 {
		c.subMu.Unlock()
		return nil
	}
	var out []byte
	n := len(c.subList)
	start := c.subRR % n
	for i := 0; i < n && len(out) < pushChunk; i++ {
		s := c.subList[(start+i)%n]
		if out == nil {
			out = bufpool.Get(pushChunk)[:0]
		}
		var more bool
		out, more = s.popInto(out, pushChunk)
		if len(out) >= pushChunk {
			// This subscription used up the chunk; the next one starts
			// after it unless it still has traffic (then it keeps its
			// turn position — round-robin advances by whole rings).
			_ = more
			c.subRR = (start + i + 1) % n
			break
		}
		c.subRR = (start + i + 1) % n
	}
	c.subMu.Unlock()
	if len(out) == 0 {
		if out != nil {
			bufpool.Put(out)
		}
		return nil
	}
	return out
}

// pushFlushLoop drains queued push frames until every ring is empty,
// then exits; kickPushFlusher restarts it on the next enqueue. Each
// iteration writes at most pushChunk bytes under txMu — RPC reply
// batches from completeBatch interleave between chunks — and defers to
// the transport's staged backlog before taking the lock, so push bytes
// wait in their droppable rings instead of ahead of replies in
// transport memory.
func (c *Conn) pushFlushLoop() {
	for {
		if c.closed.Load() || !c.rt.running.Load() {
			c.pushFlushing.Store(false)
			return
		}
		chunk := c.gatherPushChunk()
		if chunk == nil {
			c.pushFlushing.Store(false)
			// Recheck–re-CAS: an enqueue that raced the empty gather saw
			// flushing still true and skipped its kick; claim the flag
			// back if so.
			if !c.hasQueuedPush() || !c.pushFlushing.CompareAndSwap(false, true) {
				return
			}
			continue
		}
		// Fair-queuing gate: let staged RPC replies drain below the push
		// window before adding push bytes behind them. Waiting here holds
		// no locks — publishers keep appending (or dropping) and
		// completeBatch keeps transmitting.
		if bl, ok := c.wr.(EgressBacklogger); ok {
			for bl.EgressBacklog() > pushWindow {
				if c.closed.Load() || !c.rt.running.Load() {
					bufpool.Put(chunk)
					c.pushFlushing.Store(false)
					return
				}
				time.Sleep(20 * time.Microsecond)
				runtime.Gosched()
			}
		}
		c.txMu.Lock()
		if !c.closed.Load() {
			_ = c.wr.WriteReply(chunk)
		}
		c.txMu.Unlock()
		bufpool.Put(chunk)
	}
}
