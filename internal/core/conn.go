package core

import (
	"sync"
	"sync/atomic"

	"zygos/internal/proto"
)

// ConnState is the Figure 5 connection state machine.
type ConnState int32

// Connection states. A connection is present in its home worker's shuffle
// queue exactly once when StateReady, and never otherwise.
const (
	StateIdle  ConnState = iota // no pending events, not being processed
	StateReady                  // pending events, awaiting an executor
	StateBusy                   // exclusively owned by an executing worker
)

// String implements fmt.Stringer.
func (s ConnState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateReady:
		return "ready"
	case StateBusy:
		return "busy"
	}
	return "invalid"
}

// ReplyWriter is where a connection's framed replies are written. Writes
// are serialized by the runtime (home-core TX ordering), so implementations
// need not be concurrency-safe against the runtime's own calls, only
// against Close.
type ReplyWriter interface {
	WriteReply(frame []byte) error
}

// Conn is the runtime's view of one client connection: the protocol
// control block of the paper, holding the parser, the per-connection event
// queue, and the state machine.
type Conn struct {
	id   uint64
	home int
	rt   *Runtime
	wr   ReplyWriter

	closed atomic.Bool

	// parser is touched only under the home worker's kernel lock.
	parser proto.Parser

	// pcb is the per-connection event queue (single producer: the home
	// kernel step; single consumer: the owning activation), guarded by
	// pcbMu exactly like the paper's per-PCB spinlock.
	pcbMu sync.Mutex
	pcb   []proto.Message

	// state is guarded by the home worker's shuffle lock.
	state ConnState
}

// ID returns the connection identifier.
func (c *Conn) ID() uint64 { return c.id }

// Home returns the index of the connection's home worker (its RSS queue).
func (c *Conn) Home() int { return c.home }

// Closed reports whether the connection has been closed.
func (c *Conn) Closed() bool { return c.closed.Load() }

// pending reports the current event-queue depth.
func (c *Conn) pending() int {
	c.pcbMu.Lock()
	defer c.pcbMu.Unlock()
	return len(c.pcb)
}

// State returns the connection's current scheduling state. It acquires the
// home worker's shuffle lock, the lock that guards all state transitions.
func (c *Conn) State() ConnState {
	w := c.rt.workers[c.home]
	w.shuffleMu.Lock()
	defer w.shuffleMu.Unlock()
	return c.state
}

// Ctx is the per-activation context handed to the Handler. It buffers the
// handler's replies; the runtime transmits them afterwards in event order
// through the home worker (or the kernel proxy standing in for an IPI).
type Ctx struct {
	worker *Worker // executing worker
	stolen bool
	// replies collects frames produced during this activation.
	replies []byte
	// sendErr remembers the first transport write error.
	sendErr error
}

// Send queues a reply message for the current connection. For handlers
// executing on the home worker the frame is written at activation end; for
// stolen activations it is shipped to the home worker first (the remote
// batched syscall of §4.2).
func (x *Ctx) Send(id uint64, payload []byte) {
	x.replies = proto.AppendFrame(x.replies, proto.Message{ID: id, Payload: payload})
}

// Worker returns the index of the worker executing this activation; useful
// for per-core sharding inside applications.
func (x *Ctx) Worker() int { return x.worker.id }

// Stolen reports whether this activation runs on a non-home worker.
func (x *Ctx) Stolen() bool { return x.stolen }
