package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"zygos/internal/bufpool"
	"zygos/internal/proto"
)

// ErrCompleted is returned by Ctx and Completion reply methods when the
// event's reply has already been produced.
var ErrCompleted = errors.New("core: reply already completed")

// ConnState is the Figure 5 connection state machine.
type ConnState int32

// Connection states. A connection is present in its home worker's shuffle
// queue exactly once when StateReady, and never otherwise.
const (
	StateIdle  ConnState = iota // no pending events, not being processed
	StateReady                  // pending events, awaiting an executor
	StateBusy                   // exclusively owned by an executing worker
)

// String implements fmt.Stringer.
func (s ConnState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateReady:
		return "ready"
	case StateBusy:
		return "busy"
	}
	return "invalid"
}

// ReplyWriter is where a connection's framed replies are written. Writes
// are serialized by the connection's TX sequencer, so implementations
// need not be concurrency-safe against the runtime's own calls, only
// against Close. The frame slice is a reused batch buffer valid only for
// the duration of the call: implementations that cannot transmit
// synchronously must copy it before returning.
type ReplyWriter interface {
	WriteReply(frame []byte) error
}

// TransportCloser is optionally implemented by ReplyWriters that can
// tear down their underlying transport. The runtime invokes it when a
// malformed stream poisons the connection, so a hostile or broken peer
// is disconnected instead of silently ignored.
type TransportCloser interface {
	CloseTransport()
}

// event is one parsed request together with its completion token: the
// per-connection sequence number that fixes its reply's transmit order,
// and the arrival timestamp middleware uses for queue-delay accounting.
type event struct {
	msg proto.Message
	seq uint64
	at  time.Time
	// deadline is the event's absolute deadline in unixNanos form (zero =
	// none), derived at parse time from the frame's FlagDeadline budget:
	// arrival + budget. The scheduler orders ready connections by it
	// (earliest first) and sheds events already past it at dispatch.
	deadline int64
}

// completion is one resolved token: the frames to transmit when seq's
// turn comes. Nil frames advance the sequencer without transmitting
// (one-way requests and handlers that never reply).
type completion struct {
	seq    uint64
	frames []byte
}

// Conn is the runtime's view of one client connection: the protocol
// control block of the paper, holding the parser, the per-connection event
// queue, the state machine, and the reply sequencer.
type Conn struct {
	id   uint64
	home int
	rt   *Runtime
	wr   ReplyWriter

	closed atomic.Bool

	// sawV3 latches once the peer has sent a v3 frame, proving it parses
	// v3 headers: only such peers may be sent piggybacked health frames
	// (a v1/v2-only peer would choke on the Magic3 header).
	sawV3 atomic.Bool

	// parser is touched only under the home worker's kernel lock.
	parser proto.Parser

	// pcb is the per-connection event queue (single producer: the home
	// kernel step; single consumer: the owning activation), guarded by
	// pcbMu exactly like the paper's per-PCB spinlock. seqAlloc assigns
	// completion tokens in parse order under the same lock. pcbSpare is
	// the drained slice of the previous activation, swapped back in so
	// the queue's backing array is reused instead of reallocated.
	pcbMu    sync.Mutex
	pcb      []event
	pcbSpare []event
	seqAlloc uint64

	// edfDeadline caches the earliest absolute deadline (unixNanos) among
	// the connection's queued events — zero when none carries one (zero
	// sorts last: "no deadline" is the most patient class). Written under
	// pcbMu alongside the queue; read lock-free by the scheduler to order
	// ready connections earliest-deadline-first. It is advisory (a stale
	// read only costs ordering quality, never correctness), so the
	// relaxed read is safe.
	edfDeadline atomic.Int64

	// state is the Figure 5 state machine, stored atomically. Every
	// transition to Ready accompanies a ready-ring push and runs under
	// that ring's kernel lock (the home worker's for parse/finalize, a
	// thief's own for re-published steal-batch surplus); the Ready→Busy
	// transition is owned by whichever consumer won the ring's head CAS,
	// and Busy connections are owned exclusively by their executor. That
	// split is what lets reads — and the steal path — skip locks
	// entirely.
	state atomic.Int32

	// The TX sequencer: replies may complete out of order (stolen
	// activations, detached handlers), but are transmitted strictly in
	// token order. txWait holds completed-but-blocked reply frames;
	// txNext is the next token allowed on the wire. Writes to wr happen
	// under txMu, which serializes and orders them. txBuf is the reused
	// per-connection egress scratch all in-order frames coalesce into.
	txMu   sync.Mutex
	txNext uint64
	txWait map[uint64][]byte
	txBuf  []byte

	// Push-subscription state (see push.go): the subscription table,
	// the round-robin cursor the flusher fair-queues with, and the
	// CAS-guarded on-demand flusher flag. subsDown latches once
	// teardownPush has run so late Subscribe calls can't resurrect
	// state on a closing connection.
	subMu        sync.Mutex
	subs         map[uint32]*PushSub
	subList      []*PushSub
	subRR        int
	subsDown     bool
	pushFlushing atomic.Bool
}

// ID returns the connection identifier.
func (c *Conn) ID() uint64 { return c.id }

// Home returns the index of the connection's home worker (its RSS queue).
func (c *Conn) Home() int { return c.home }

// Closed reports whether the connection has been closed.
func (c *Conn) Closed() bool { return c.closed.Load() }

// pending reports the current event-queue depth.
func (c *Conn) pending() int {
	c.pcbMu.Lock()
	defer c.pcbMu.Unlock()
	return len(c.pcb)
}

// edfKey is the connection's scheduling key for earliest-deadline-first
// ordering: its cached earliest deadline, with "no deadline" mapped to
// the far future so deadline-free traffic yields to deadline-carrying
// traffic but keeps FIFO order among itself.
func (c *Conn) edfKey() int64 {
	if d := c.edfDeadline.Load(); d != 0 {
		return d
	}
	return 1<<63 - 1
}

// State returns the connection's current scheduling state (an atomic
// snapshot; transitions are ordered by the home worker's kernel lock and
// the ready ring's head CAS).
func (c *Conn) State() ConnState {
	return ConnState(c.state.Load())
}

// maxTxRetain bounds the egress scratch a connection keeps between
// flushes; a burst that grew it larger returns it to the shared pool.
const maxTxRetain = 64 << 10

// completeBatch resolves a batch of completion tokens and transmits every
// reply the sequencer now allows, coalesced into a single frame batch in
// token order. It is safe to call from any goroutine; txMu orders
// concurrent resolvers. Frame buffers are returned to the pool once
// their bytes are in the batch.
func (c *Conn) completeBatch(comps []completion) {
	if len(comps) == 0 {
		return
	}
	c.txMu.Lock()
	defer c.txMu.Unlock()
	if c.txBuf == nil {
		c.txBuf = bufpool.Get(256)
	}
	out := c.txBuf[:0]
	// Fast path: with nothing parked out of order, a batch whose tokens
	// are exactly the next expected sequence numbers (the overwhelmingly
	// common case — synchronous activations complete in event order)
	// coalesces straight into the egress batch without touching the map.
	i := 0
	if len(c.txWait) == 0 {
		for ; i < len(comps) && comps[i].seq == c.txNext; i++ {
			c.txNext++
			if f := comps[i].frames; f != nil {
				out = append(out, f...)
				bufpool.Put(f)
			}
		}
	}
	for _, e := range comps[i:] {
		c.txWait[e.seq] = e.frames
	}
	for len(c.txWait) > 0 {
		f, ok := c.txWait[c.txNext]
		if !ok {
			break
		}
		delete(c.txWait, c.txNext)
		c.txNext++
		if f != nil {
			out = append(out, f...)
			bufpool.Put(f)
		}
	}
	closed := c.closed.Load()
	if len(out) > 0 && !closed {
		if c.rt.cfg.DepthFrames && c.sawV3.Load() {
			// Piggyback the runtime's current scheduling depth on the
			// tail of the batch — one fixed 20-byte frame per flush, read
			// from atomic counters, so a tail-aware balancer on the other
			// end routes on live queue depth without a polling RPC.
			out = proto.AppendHealthFrame(out, c.rt.Depths().Load())
		}
		_ = c.wr.WriteReply(out) // teardown races are benign
	}
	if cap(out) <= maxTxRetain && !closed && c.rt.running.Load() {
		c.txBuf = out[:0]
	} else {
		// Oversized burst, closed connection, or closing runtime: no
		// point retaining per-connection scratch any longer.
		bufpool.Put(out)
		c.txBuf = nil
	}
}

// ShrinkIdle releases the connection's retained TX scratch back to the
// shared pool. Transports call it for connections quiet past an idle
// threshold, so a million parked connections pin no per-connection
// egress memory; the next burst simply re-leases from the pool.
func (c *Conn) ShrinkIdle() {
	c.txMu.Lock()
	if c.txBuf != nil {
		bufpool.Put(c.txBuf)
		c.txBuf = nil
	}
	c.txMu.Unlock()
}

// poison marks the connection's stream malformed: no further ingress is
// accepted and, when the transport supports it, the underlying connection
// is closed so the peer sees the rejection instead of a stall. Events
// already queued still drain.
func (c *Conn) poison() {
	if c.closed.CompareAndSwap(false, true) {
		if tc, ok := c.wr.(TransportCloser); ok {
			tc.CloseTransport()
		}
		// Return the retained TX scratch: the last completeBatch ran
		// before closed was set and kept it for reuse. A batch racing
		// this release re-leases and then frees it itself on seeing
		// closed, so the buffer goes home on every interleaving.
		c.ShrinkIdle()
		c.teardownPush()
		if f := c.rt.cfg.OnConnClosed; f != nil {
			f(c.id)
		}
	}
}

// Ctx is the per-event context handed to the Handler: the completion
// token's reply side. Exactly one reply is produced per event — through
// Reply or Error, synchronously or after Detach — and the runtime
// transmits it in event order through the connection's TX sequencer,
// regardless of which worker or goroutine completes it.
type Ctx struct {
	worker  *Worker
	conn    *Conn
	stolen  bool
	ev      event
	started time.Time // activation start, shared by the batch

	// mu guards the completion state: a detached event may be completed
	// from any goroutine, concurrently with the activation loop.
	mu       sync.Mutex
	detached bool
	done     bool
	frames   []byte // stashed sync reply, consumed by the activation loop
}

// Reply completes the event with a successful (StatusOK) reply carrying
// payload. It returns ErrCompleted if a reply was already produced.
func (x *Ctx) Reply(payload []byte) error {
	return x.complete(proto.StatusOK, payload)
}

// Error completes the event with a wire-level error status; msg travels
// as the reply payload. A code of StatusOK is coerced to StatusAppError
// so an error reply is always distinguishable from success. For peers
// still speaking the v1 framing the status byte cannot travel; they see
// a v1 reply whose payload is msg.
func (x *Ctx) Error(code uint8, msg string) error {
	if code == proto.StatusOK {
		code = proto.StatusAppError
	}
	return x.complete(code, []byte(msg))
}

// Detach releases the event from its activation: the handler may return
// immediately — freeing the worker to run or steal other events — and the
// returned Completion completes the reply later, from any goroutine. The
// reply is still delivered in request order through the connection's TX
// sequencer. Detach must be called from within the handler invocation;
// calling it after the reply was produced yields a Completion whose
// methods return ErrCompleted.
func (x *Ctx) Detach() *Completion {
	x.mu.Lock()
	if x.done && !x.detached {
		// Too late to detach: the reply exists and the activation loop
		// will recycle this Ctx, so the handle must not reference it.
		x.mu.Unlock()
		return &completedHandle
	}
	if !x.detached {
		x.detached = true
		x.worker.rt.detachedN.Add(1)
		x.worker.rt.detachTotal.Add(1)
	}
	x.mu.Unlock()
	return &Completion{x: x}
}

// completedHandle is the shared dead Completion returned when Detach is
// called after the reply was already produced.
var completedHandle = Completion{}

// Detached reports whether the event has been detached from its
// activation. The server glue uses it to decide whether per-request
// state may be recycled when the handler returns.
func (x *Ctx) Detached() bool {
	x.mu.Lock()
	d := x.detached
	x.mu.Unlock()
	return d
}

// Worker returns the index of the worker executing this activation; useful
// for per-core sharding inside applications.
func (x *Ctx) Worker() int { return x.worker.id }

// Stolen reports whether this activation runs on a non-home worker.
func (x *Ctx) Stolen() bool { return x.stolen }

// ArrivedAt returns when the event was parsed off the wire on the home
// core — the timestamp queue-delay middleware measures from.
func (x *Ctx) ArrivedAt() time.Time { return x.ev.at }

// QueueDelay returns how long the event waited between arrival and the
// start of its activation — the paper's scheduling-delay metric. The
// activation timestamp is taken once per batch, so reading it here costs
// no clock call; events pipelined behind earlier ones in the same batch
// report the shared batch start, deliberately excluding predecessors'
// handler time (service order, not scheduling — end-to-end latency
// middleware captures it).
func (x *Ctx) QueueDelay() time.Duration { return x.started.Sub(x.ev.at) }

// Seq returns the event's completion token: its per-connection sequence
// number, which is also its guaranteed reply position.
func (x *Ctx) Seq() uint64 { return x.ev.seq }

// Deadline returns the event's absolute deadline — derived at parse
// time from the frame's deadline budget — and whether one was carried.
func (x *Ctx) Deadline() (time.Time, bool) {
	if x.ev.deadline == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, x.ev.deadline), true
}

// complete produces the event's reply exactly once and routes it to the
// TX sequencer: synchronous completions are stashed for the activation
// loop to batch, detached completions resolve inline through the
// sequencer from whatever goroutine completed them.
// The reply frame is encoded into a pooled buffer that the TX sequencer
// returns to the pool after coalescing it into the egress batch.
func (x *Ctx) complete(status uint8, payload []byte) error {
	x.mu.Lock()
	if x.done {
		x.mu.Unlock()
		return ErrCompleted
	}
	x.done = true
	// The event's reply exists from this moment; count it out of the
	// admission backlog per event, not per activation batch, so a long
	// pipelined activation releases depth as it progresses.
	x.worker.rt.completedN.Add(1)
	detached := x.detached
	var frames []byte
	if x.ev.msg.Flags&proto.FlagOneWay == 0 {
		// A reply that cannot be represented in the frame's length field
		// would corrupt the whole connection; degrade it to a wire error
		// the client can at least diagnose.
		limit := proto.MaxPayload
		if x.ev.msg.V2 || x.ev.msg.V3 || x.ev.msg.V4 {
			limit = proto.MaxPayloadV2
		}
		if len(payload) > limit {
			status = proto.StatusInternal
			payload = []byte(proto.ErrPayloadTooLarge.Error())
		}
		// The reply mirrors the request's frame version and echoes its
		// method, so a client can attribute replies per operation without
		// tracking IDs. v4 control frames (SUBSCRIBE/UNSUBSCRIBE) get
		// their kind and subscription ID echoed the same way.
		frames = proto.AppendMessage(bufpool.Get(proto.FrameSizeV4(len(payload))), proto.Message{
			ID:      x.ev.msg.ID,
			Payload: payload,
			Status:  status,
			Method:  x.ev.msg.Method,
			V2:      x.ev.msg.V2,
			V3:      x.ev.msg.V3,
			V4:      x.ev.msg.V4,
			Kind:    x.ev.msg.Kind,
			SubID:   x.ev.msg.SubID,
		})
	}
	if !detached {
		x.frames = frames
		x.mu.Unlock()
		return nil
	}
	// The frame is encoded (the request payload has been copied into it),
	// so the detached event's hold on the parse buffer can end here. The
	// activation loop releases synchronous events itself: their payload
	// stays valid for the whole handler invocation.
	x.ev.msg.Release()
	x.mu.Unlock()
	x.resolveDetached(frames)
	return nil
}

// resolveDetached resolves a detached completion token directly through
// the connection's TX sequencer. No trip through the scheduler is
// needed: txMu orders concurrent resolvers and the token fixes the
// transmit position, the connection's state machine advanced when its
// activation ended, and if the transport exerts backpressure it blocks
// this resolver goroutine — the producer of the reply — rather than a
// scheduler worker. detachedN (which Flush waits on) drops only after
// the reply is on its way.
func (x *Ctx) resolveDetached(frames []byte) {
	rt := x.worker.rt
	c := x.conn
	cb := getComps()
	cb.s = append(cb.s, completion{seq: x.ev.seq, frames: frames})
	c.completeBatch(cb.s)
	putComps(cb)
	rt.detachedN.Add(-1)
}

// Completion is a detached event's reply handle. It is safe to use from
// any goroutine; exactly one Reply or Error wins, later calls return
// ErrCompleted. A handle with no context (Detach after the reply was
// already produced) always returns ErrCompleted.
type Completion struct {
	x *Ctx
}

// Reply completes the detached event with a successful reply.
func (co *Completion) Reply(payload []byte) error {
	if co.x == nil {
		return ErrCompleted
	}
	return co.x.Reply(payload)
}

// Error completes the detached event with a wire-level error status.
func (co *Completion) Error(code uint8, msg string) error {
	if co.x == nil {
		return ErrCompleted
	}
	return co.x.Error(code, msg)
}
