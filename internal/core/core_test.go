package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zygos/internal/proto"
)

// captureWriter collects reply frames and decodes them back to messages.
type captureWriter struct {
	mu   sync.Mutex
	p    proto.Parser
	msgs []proto.Message
}

func (w *captureWriter) WriteReply(frame []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.p.Feed(frame)
	for {
		m, ok, err := w.p.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		w.msgs = append(w.msgs, m)
	}
}

func (w *captureWriter) messages() []proto.Message {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]proto.Message(nil), w.msgs...)
}

// echoHandler replies with the request payload.
func echoHandler() Handler {
	return HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
		ctx.Reply(m.Payload)
	})
}

func frame(id uint64, payload string) []byte {
	return proto.AppendFrame(nil, proto.Message{ID: id, Payload: []byte(payload)})
}

func newTestRuntime(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestEchoRoundTrip(t *testing.T) {
	rt := newTestRuntime(t, Config{Cores: 2, Handler: echoHandler()})
	wr := &captureWriter{}
	c := rt.NewConn(wr)
	if err := rt.Ingress(c, frame(1, "ping")); err != nil {
		t.Fatal(err)
	}
	if !rt.Flush(2 * time.Second) {
		t.Fatal("flush timed out")
	}
	msgs := wr.messages()
	if len(msgs) != 1 || msgs[0].ID != 1 || string(msgs[0].Payload) != "ping" {
		t.Fatalf("got %+v", msgs)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil handler must error")
	}
}

func TestDefaults(t *testing.T) {
	rt := newTestRuntime(t, Config{Handler: echoHandler()})
	if rt.Cores() <= 0 {
		t.Fatal("default cores must be positive")
	}
}

// Pipelined requests on one connection must be answered in order (§4.3) —
// the runtime's ordering guarantee, with no app-level synchronization.
func TestPerConnectionOrdering(t *testing.T) {
	rt := newTestRuntime(t, Config{Cores: 4, Handler: echoHandler()})
	wr := &captureWriter{}
	c := rt.NewConn(wr)
	const n = 500
	var stream []byte
	for i := uint64(0); i < n; i++ {
		stream = proto.AppendFrame(stream, proto.Message{ID: i})
	}
	// Feed in awkward chunks to exercise the parser under pipelining.
	for off := 0; off < len(stream); {
		end := off + 97
		if end > len(stream) {
			end = len(stream)
		}
		if err := rt.Ingress(c, stream[off:end]); err != nil {
			t.Fatal(err)
		}
		off = end
	}
	if !rt.Flush(5 * time.Second) {
		t.Fatal("flush timed out")
	}
	msgs := wr.messages()
	if len(msgs) != n {
		t.Fatalf("got %d replies, want %d", len(msgs), n)
	}
	for i, m := range msgs {
		if m.ID != uint64(i) {
			t.Fatalf("reply %d has ID %d: replies reordered", i, m.ID)
		}
	}
}

// Ordering must hold even when handlers yield and many connections compete
// (stolen activations ship replies through the home worker).
func TestOrderingUnderConcurrency(t *testing.T) {
	handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
		time.Sleep(time.Duration(m.ID%3) * time.Microsecond)
		ctx.Reply(nil)
	})
	rt := newTestRuntime(t, Config{Cores: 4, Handler: handler})
	const conns = 16
	const per = 200
	writers := make([]*captureWriter, conns)
	cs := make([]*Conn, conns)
	for i := range cs {
		writers[i] = &captureWriter{}
		cs[i] = rt.NewConn(writers[i])
	}
	var wg sync.WaitGroup
	for i := range cs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := uint64(0); k < per; k++ {
				if err := rt.Ingress(cs[i], frame(k, "x")); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if !rt.Flush(10 * time.Second) {
		t.Fatal("flush timed out")
	}
	for i, wr := range writers {
		msgs := wr.messages()
		if len(msgs) != per {
			t.Fatalf("conn %d: %d replies, want %d", i, len(msgs), per)
		}
		for k, m := range msgs {
			if m.ID != uint64(k) {
				t.Fatalf("conn %d reply %d has ID %d: reordered", i, k, m.ID)
			}
		}
	}
}

// connsWithHome returns nconns connections whose home worker is the given
// index (the RSS steering makes home assignment implicit).
func connsWithHome(rt *Runtime, home, nconns int) []*Conn {
	var out []*Conn
	for len(out) < nconns {
		c := rt.NewConn(&captureWriter{})
		if c.Home() == home {
			out = append(out, c)
		}
	}
	return out
}

// Work stealing: pile work onto one home worker; other workers must steal
// it and finish much faster than serial execution.
func TestStealingBalancesSkew(t *testing.T) {
	const spin = 3 * time.Millisecond
	handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
		time.Sleep(spin)
		ctx.Reply(nil)
	})
	rt := newTestRuntime(t, Config{Cores: 4, Handler: handler, ParkInterval: 50 * time.Microsecond})
	conns := connsWithHome(rt, 0, 8)
	start := time.Now()
	for i, c := range conns {
		if err := rt.Ingress(c, frame(uint64(i), "w")); err != nil {
			t.Fatal(err)
		}
	}
	if !rt.Flush(10 * time.Second) {
		t.Fatal("flush timed out")
	}
	elapsed := time.Since(start)
	serial := time.Duration(len(conns)) * spin
	if elapsed > serial*3/4 {
		t.Errorf("8 tasks on one home took %v; stealing should beat 3/4 of serial %v", elapsed, serial)
	}
	if rt.Stats().Steals == 0 {
		t.Error("expected steals under skewed load")
	}
}

func TestDisableStealing(t *testing.T) {
	handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
		time.Sleep(time.Millisecond)
		ctx.Reply(nil)
	})
	rt := newTestRuntime(t, Config{Cores: 4, Handler: handler, DisableStealing: true})
	conns := connsWithHome(rt, 0, 6)
	for i, c := range conns {
		if err := rt.Ingress(c, frame(uint64(i), "w")); err != nil {
			t.Fatal(err)
		}
	}
	if !rt.Flush(10 * time.Second) {
		t.Fatal("flush timed out")
	}
	if s := rt.Stats().Steals; s != 0 {
		t.Errorf("partitioned mode stole %d events", s)
	}
}

// Head-of-line blocking elimination (§4.5): while the home worker is stuck
// in a long handler, events for *other* connections of the same home must
// still be parsed (kernel proxying = the IPI analogue) and stolen by idle
// workers. Without proxying they wait for the stuck handler.
func TestProxyEliminatesHOLBlocking(t *testing.T) {
	run := func(disableProxy bool) time.Duration {
		block := make(chan struct{})
		var blocked sync.WaitGroup
		blocked.Add(1)
		var once sync.Once
		handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
			if string(m.Payload) == "long" {
				once.Do(blocked.Done)
				<-block // simulates a very long request
			}
			ctx.Reply(nil)
		})
		rt, err := New(Config{
			Cores:        3,
			Handler:      handler,
			DisableProxy: disableProxy,
			ParkInterval: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		defer close(block)

		conns := connsWithHome(rt, 0, 5)
		// Stick the home worker in application code.
		if err := rt.Ingress(conns[0], frame(0, "long")); err != nil {
			t.Fatal(err)
		}
		blocked.Wait()
		// Now send short requests for other connections of the same home.
		start := time.Now()
		var done atomic.Int32
		wrs := make([]*captureWriter, 0, 4)
		for i, c := range conns[1:] {
			wrs = append(wrs, c.wr.(*captureWriter))
			if err := rt.Ingress(c, frame(uint64(i+1), "short")); err != nil {
				t.Fatal(err)
			}
		}
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			n := 0
			for _, wr := range wrs {
				n += len(wr.messages())
			}
			if n == 4 {
				done.Store(int32(n))
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
		if done.Load() != 4 && !disableProxy {
			t.Fatal("short requests never completed with proxying enabled")
		}
		return time.Since(start)
	}

	withProxy := run(false)
	if withProxy > 500*time.Millisecond {
		t.Errorf("with proxying, short requests took %v; want fast completion", withProxy)
	}
	withoutProxy := run(true)
	if withoutProxy < 1*time.Second {
		t.Errorf("without proxying, short requests finished in %v; they should be HOL-blocked", withoutProxy)
	}
}

func TestExactlyOnceDelivery(t *testing.T) {
	var count atomic.Uint64
	handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
		count.Add(1)
		ctx.Reply(nil)
	})
	rt := newTestRuntime(t, Config{Cores: 4, Handler: handler})
	const conns = 8
	const per = 500
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		c := rt.NewConn(&captureWriter{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				if err := rt.Ingress(c, frame(uint64(k), "x")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if !rt.Flush(10 * time.Second) {
		t.Fatal("flush timed out")
	}
	if got := count.Load(); got != conns*per {
		t.Fatalf("handler ran %d times, want %d", got, conns*per)
	}
	if got := rt.Stats().Events; got != conns*per {
		t.Fatalf("events counter %d, want %d", got, conns*per)
	}
}

func TestClosedConnRejectsIngress(t *testing.T) {
	rt := newTestRuntime(t, Config{Cores: 1, Handler: echoHandler()})
	c := rt.NewConn(&captureWriter{})
	rt.CloseConn(c)
	if err := rt.Ingress(c, frame(1, "x")); err == nil {
		t.Fatal("ingress on closed conn must error")
	}
	if !c.Closed() {
		t.Fatal("Closed() must report true")
	}
}

func TestMalformedStreamPoisonsConn(t *testing.T) {
	rt := newTestRuntime(t, Config{Cores: 1, Handler: echoHandler()})
	wr := &captureWriter{}
	c := rt.NewConn(wr)
	bad := make([]byte, proto.HeaderSize)
	bad[3] = 0x7f // enormous length
	if err := rt.Ingress(c, bad); err != nil {
		t.Fatal(err)
	}
	if !rt.Flush(2 * time.Second) {
		t.Fatal("flush timed out")
	}
	if !c.Closed() {
		t.Fatal("malformed stream must poison the connection")
	}
}

func TestRuntimeCloseRejectsIngress(t *testing.T) {
	rt, err := New(Config{Cores: 1, Handler: echoHandler()})
	if err != nil {
		t.Fatal(err)
	}
	c := rt.NewConn(&captureWriter{})
	rt.Close()
	rt.Close() // double close is safe
	if err := rt.Ingress(c, frame(1, "x")); err == nil {
		t.Fatal("ingress after close must error")
	}
}

func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
		<-release
	})
	rt := newTestRuntime(t, Config{Cores: 1, Handler: handler, IngressCap: 4})
	c := rt.NewConn(&captureWriter{})
	doneSending := make(chan struct{})
	go func() {
		defer close(doneSending)
		for i := 0; i < 64; i++ {
			if err := rt.Ingress(c, frame(uint64(i), "x")); err != nil {
				return
			}
		}
	}()
	select {
	case <-doneSending:
		t.Fatal("64 sends into a cap-4 ingress with a blocked handler should backpressure")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	select {
	case <-doneSending:
	case <-time.After(5 * time.Second):
		t.Fatal("sender never unblocked after handler released")
	}
}

func TestStateMachineQuiescesIdle(t *testing.T) {
	rt := newTestRuntime(t, Config{Cores: 4, Handler: echoHandler()})
	var conns []*Conn
	for i := 0; i < 32; i++ {
		conns = append(conns, rt.NewConn(&captureWriter{}))
	}
	for round := 0; round < 20; round++ {
		for i, c := range conns {
			if err := rt.Ingress(c, frame(uint64(round), fmt.Sprintf("r%d-%d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !rt.Flush(10 * time.Second) {
		t.Fatal("flush timed out")
	}
	for i, c := range conns {
		if c.pending() != 0 {
			t.Errorf("conn %d has %d pending events after quiesce", i, c.pending())
		}
		if st := c.State(); st != StateIdle {
			t.Errorf("conn %d in state %v after quiesce", i, st)
		}
	}
}

func TestConnStateString(t *testing.T) {
	if StateIdle.String() != "idle" || StateReady.String() != "ready" || StateBusy.String() != "busy" {
		t.Fatal("state strings wrong")
	}
	if ConnState(9).String() != "invalid" {
		t.Fatal("invalid state must render")
	}
}

func TestCtxWorkerAndStolen(t *testing.T) {
	seen := make(chan int, 1)
	handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
		select {
		case seen <- ctx.Worker():
		default:
		}
		_ = ctx.Stolen()
		ctx.Reply(nil)
	})
	rt := newTestRuntime(t, Config{Cores: 2, Handler: handler})
	c := rt.NewConn(&captureWriter{})
	if err := rt.Ingress(c, frame(1, "x")); err != nil {
		t.Fatal(err)
	}
	if !rt.Flush(2 * time.Second) {
		t.Fatal("flush timed out")
	}
	w := <-seen
	if w < 0 || w >= 2 {
		t.Fatalf("worker index %d out of range", w)
	}
}

// Stress: hammer the runtime from many producers while handlers reply,
// verifying no replies are lost and all connections quiesce. Run with
// -race in CI to validate the locking protocol.
func TestStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rt := newTestRuntime(t, Config{Cores: 8, Handler: echoHandler(), ParkInterval: 50 * time.Microsecond})
	const conns = 64
	const per = 300
	writers := make([]*captureWriter, conns)
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		writers[i] = &captureWriter{}
		c := rt.NewConn(writers[i])
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []byte
			for k := 0; k < per; k++ {
				buf = proto.AppendFrame(buf[:0], proto.Message{ID: uint64(k)})
				if err := rt.Ingress(c, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if !rt.Flush(30 * time.Second) {
		t.Fatal("flush timed out")
	}
	total := 0
	for i, wr := range writers {
		n := len(wr.messages())
		total += n
		if n != per {
			t.Errorf("conn %d: %d replies, want %d", i, n, per)
		}
	}
	if total != conns*per {
		t.Fatalf("lost replies: %d of %d", total, conns*per)
	}
}

// blockingWriter blocks WriteReply until released, simulating a peer
// that stalls its read side past the transport's egress backpressure.
type blockingWriter struct {
	blocked chan struct{} // closed once WriteReply has parked
	release chan struct{}
	once    sync.Once
}

func (w *blockingWriter) WriteReply(frame []byte) error {
	w.once.Do(func() { close(w.blocked) })
	<-w.release
	return nil
}

// A worker wedged outside both application code and its kernel step —
// blocked writing a stalled peer's reply — must not take every other
// connection homed on it down with it: idle workers proxy its kernel
// step on queue depth alone, so the healthy connections' events are
// parsed, stolen, and answered while the write stays stuck.
func TestProxyUnwedgesBlockedEgress(t *testing.T) {
	rt := newTestRuntime(t, Config{Cores: 2, Handler: echoHandler(), ParkInterval: 50 * time.Microsecond})
	bw := &blockingWriter{blocked: make(chan struct{}), release: make(chan struct{})}
	defer close(bw.release)

	// Two connections with the same home: one whose replies wedge their
	// writer, one healthy.
	var stalled, healthy *Conn
	healthyWr := &captureWriter{}
	for stalled == nil || healthy == nil {
		if stalled == nil {
			if c := rt.NewConn(bw); c.Home() == 0 {
				stalled = c
			}
		} else {
			if c := rt.NewConn(healthyWr); c.Home() == 0 {
				healthy = c
			}
		}
	}

	if err := rt.Ingress(stalled, frame(1, "wedge")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-bw.blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled connection's reply write never started")
	}

	const n = 32
	for i := uint64(0); i < n; i++ {
		if err := rt.Ingress(healthy, frame(i, "alive")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(healthyWr.messages()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d replies while a sibling connection's write is wedged", len(healthyWr.messages()), n)
		}
		time.Sleep(200 * time.Microsecond)
	}
}
