package core

import (
	"sync"
	"testing"
	"time"

	"zygos/internal/bufpool"
	"zygos/internal/proto"
)

// nullWriter discards replies without retaining the frame batch, so the
// leak accounting below sees only the runtime's own buffer traffic.
type nullWriter struct{}

func (nullWriter) WriteReply(frame []byte) error { return nil }

// TestShutdownReleasesQueuedBuffers closes the runtime at the nastiest
// moment the teardown path has: transport readers parked on a full
// ingress ring, stolen activations mid-flight on remote workers, and
// ready connections queued with parsed-but-undelivered events. Every
// producer must unblock with errRuntimeClosed, Close must return, and
// the runtime's segment accounting must land on exactly zero — a
// residue means a pooled buffer was stranded in a ring, a remote op, or
// a blocked producer. Run under -race in CI: the whole close protocol is
// lock-free handoffs.
func TestShutdownReleasesQueuedBuffers(t *testing.T) {
	for round := 0; round < 3; round++ {
		// A slow handler keeps activations (many of them stolen — all
		// load is homed on one worker) in flight at close time and keeps
		// the tiny ingress ring full so producers park.
		handler := HandlerFunc(func(ctx *Ctx, c *Conn, m proto.Message) {
			time.Sleep(200 * time.Microsecond)
			ctx.Reply(m.Payload)
		})
		rt, err := New(Config{
			Cores:        4,
			Handler:      handler,
			IngressCap:   8,
			ParkInterval: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		conns := connsWithHomeWriter(rt, 0, 8, func() ReplyWriter { return nullWriter{} })

		const producers = 8
		var wg sync.WaitGroup
		started := make(chan struct{})
		var startedOnce sync.Once
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				c := conns[p%len(conns)]
				var enc []byte
				// Push until the push itself fails: the point is to be
				// blocked inside IngressOwned (ring full, producer parked)
				// when Close lands.
				for i := uint64(0); ; i++ {
					enc = proto.AppendFrameV2(enc[:0], proto.Message{ID: i, Payload: []byte("x"), V2: true})
					seg := append(rt.GetSegment(len(enc)), enc...)
					if err := rt.IngressOwned(c, seg); err != nil {
						// Only the close error is acceptable.
						if err.Error() != "core: runtime is closed" {
							t.Errorf("producer %d: %v", p, err)
						}
						return
					}
					startedOnce.Do(func() { close(started) })
				}
			}(p)
		}

		// Let the ring fill and activations pile up, then pull the plug
		// mid-traffic.
		<-started
		time.Sleep(2 * time.Millisecond)
		rt.Close()
		wg.Wait()

		if live := rt.SegmentsLive(); live != 0 {
			t.Fatalf("round %d: %d segment buffers still live after Close (leaked in a ring, remote op, or blocked producer)", round, live)
		}
		for i, w := range rt.workers {
			if !w.quiescent() {
				t.Fatalf("round %d: worker %d not quiescent after Close", round, i)
			}
		}
		for i, c := range conns {
			if got := c.State(); got != StateIdle {
				t.Fatalf("round %d: conn %d in state %v after Close", round, i, got)
			}
			if n := c.pending(); n != 0 {
				t.Fatalf("round %d: conn %d still holds %d undiscarded events", round, i, n)
			}
		}
	}
}

// TestShutdownCycleDoesNotAccumulateBuffers runs full open/traffic/close
// cycles and checks the buffer accounting reaches a steady state: the
// runtime-owned segment count must return to exactly zero every cycle,
// and the process-wide pool checkout balance must not grow with traffic
// volume. (It may grow by a small per-cycle constant — a dying
// connection legitimately holds its parser block and TX scratch, and GC
// of the parse-buffer sync.Pool strands their accounting — so the
// assertion separates a per-request leak, which scales with the 256
// requests per cycle, from that fixed residue.)
func TestShutdownCycleDoesNotAccumulateBuffers(t *testing.T) {
	const perCycle = 256
	cycle := func() {
		rt, err := New(Config{Cores: 2, Handler: echoHandler(), IngressCap: 16})
		if err != nil {
			t.Fatal(err)
		}
		c := rt.NewConn(nullWriter{})
		for i := uint64(0); i < perCycle; i++ {
			if err := rt.Ingress(c, frame(i, "payload")); err != nil {
				t.Fatal(err)
			}
		}
		rt.Flush(5 * time.Second)
		rt.Close()
		if live := rt.SegmentsLive(); live != 0 {
			t.Fatalf("%d segment buffers still live after a clean cycle", live)
		}
	}
	cycle() // warm pools and lazily created scratch
	if raceEnabled {
		// The segment assertion above still ran; the process-wide balance
		// below is meaningless when sync.Pool drops Puts (race mode).
		t.Skip("sync.Pool drops Puts under -race, stranding parse-buffer accounting")
	}
	base := bufpool.Outstanding()
	const cycles = 3
	for i := 0; i < cycles; i++ {
		cycle()
	}
	if grew := bufpool.Outstanding() - base; grew > perCycle/4*cycles {
		t.Fatalf("pool accounting grew by %d buffers over %d cycles of %d requests (per-request buffer leak)", grew, cycles, perCycle)
	}
}

// connsWithHomeWriter is connsWithHome with a caller-chosen ReplyWriter.
func connsWithHomeWriter(rt *Runtime, home, nconns int, wr func() ReplyWriter) []*Conn {
	var out []*Conn
	for len(out) < nconns {
		c := rt.NewConn(wr())
		if c.Home() == home {
			out = append(out, c)
		}
	}
	return out
}
