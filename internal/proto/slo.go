package proto

import (
	"math"
	"strconv"
	"strings"
	"time"
)

// Budget/deadline helpers shared by every transport: the wire carries
// budgets as 32-bit microsecond counts (see FlagDeadline), the API
// speaks time.Duration.

// BudgetMicros converts a deadline budget to its wire encoding,
// clamping to the representable range. Non-positive durations encode as
// zero — "no deadline" — because a transport stamping an already-negative
// remaining budget should have shed the call instead.
func BudgetMicros(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	us := d / time.Microsecond
	if us == 0 {
		us = 1 // a sub-microsecond positive budget still means "now", not "none"
	}
	if us > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(us)
}

// BudgetDuration converts a wire budget back to a duration; zero means
// no deadline.
func BudgetDuration(us uint32) time.Duration {
	return time.Duration(us) * time.Microsecond
}

// retryAfterPrefix introduces the machine-readable backoff hint a shed
// payload may carry: "retry-after-us=<n>; <human message>". It rides
// the existing StatusShed payload (surfaced as StatusError.Msg) so no
// frame change is needed for it.
const retryAfterPrefix = "retry-after-us="

// FormatRetryAfter builds a shed-payload message carrying a
// retry-after hint followed by the human-readable reason.
func FormatRetryAfter(d time.Duration, msg string) string {
	us := int64(d / time.Microsecond)
	if us < 0 {
		us = 0
	}
	return retryAfterPrefix + strconv.FormatInt(us, 10) + "; " + msg
}

// ParseRetryAfter extracts the retry-after hint from a shed message, if
// present, returning the suggested backoff and the remaining
// human-readable part. ok is false when the message carries no hint.
func ParseRetryAfter(msg string) (d time.Duration, rest string, ok bool) {
	if !strings.HasPrefix(msg, retryAfterPrefix) {
		return 0, msg, false
	}
	body := msg[len(retryAfterPrefix):]
	numEnd := strings.IndexByte(body, ';')
	if numEnd < 0 {
		numEnd = len(body)
	}
	us, err := strconv.ParseInt(strings.TrimSpace(body[:numEnd]), 10, 64)
	if err != nil || us < 0 {
		return 0, msg, false
	}
	rest = ""
	if numEnd < len(body) {
		rest = strings.TrimSpace(body[numEnd+1:])
	}
	return time.Duration(us) * time.Microsecond, rest, true
}
