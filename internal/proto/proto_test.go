package proto

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var p Parser
	frame := AppendFrame(nil, Message{ID: 42, Payload: []byte("hello")})
	p.Feed(frame)
	m, ok, err := p.Next()
	if err != nil || !ok {
		t.Fatalf("Next: %v %v", ok, err)
	}
	if m.ID != 42 || string(m.Payload) != "hello" {
		t.Fatalf("got %+v", m)
	}
	if _, ok, _ := p.Next(); ok {
		t.Fatal("no more messages expected")
	}
	if p.Buffered() != 0 {
		t.Fatal("buffer should be empty")
	}
}

func TestEmptyPayload(t *testing.T) {
	var p Parser
	p.Feed(AppendFrame(nil, Message{ID: 7}))
	m, ok, err := p.Next()
	if err != nil || !ok || m.ID != 7 || len(m.Payload) != 0 {
		t.Fatalf("got %+v ok=%v err=%v", m, ok, err)
	}
}

func TestByteAtATime(t *testing.T) {
	var p Parser
	frame := AppendFrame(nil, Message{ID: 9, Payload: []byte("fragmented")})
	for _, b := range frame {
		if _, ok, _ := p.Next(); ok {
			t.Fatal("message completed early")
		}
		p.Feed([]byte{b})
	}
	m, ok, err := p.Next()
	if err != nil || !ok || string(m.Payload) != "fragmented" {
		t.Fatalf("got %+v ok=%v err=%v", m, ok, err)
	}
}

func TestPipelinedMessages(t *testing.T) {
	var p Parser
	var stream []byte
	for i := 0; i < 50; i++ {
		stream = AppendFrame(stream, Message{ID: uint64(i), Payload: bytes.Repeat([]byte{byte(i)}, i)})
	}
	p.Feed(stream)
	for i := 0; i < 50; i++ {
		m, ok, err := p.Next()
		if err != nil || !ok {
			t.Fatalf("message %d missing: %v", i, err)
		}
		if m.ID != uint64(i) || len(m.Payload) != i {
			t.Fatalf("message %d corrupted: %+v", i, m)
		}
	}
	if _, ok, _ := p.Next(); ok {
		t.Fatal("extra message")
	}
}

func TestFrameTooLarge(t *testing.T) {
	var p Parser
	bad := make([]byte, HeaderSize)
	bad[0] = 0xff
	bad[1] = 0xff
	bad[2] = 0xff
	bad[3] = 0x7f
	p.Feed(bad)
	_, _, err := p.Next()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// Error is sticky.
	p.Feed([]byte{0})
	if _, _, err := p.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("error must be sticky")
	}
	// Reset clears it.
	p.Reset()
	p.Feed(AppendFrame(nil, Message{ID: 1}))
	if _, ok, err := p.Next(); !ok || err != nil {
		t.Fatal("parser must recover after Reset")
	}
}

func TestPayloadCopied(t *testing.T) {
	var p Parser
	frame := AppendFrame(nil, Message{ID: 1, Payload: []byte("abc")})
	p.Feed(frame)
	m, _, _ := p.Next()
	p.Feed(bytes.Repeat([]byte{0xee}, 64)) // overwrite internal buffer
	if string(m.Payload) != "abc" {
		t.Fatal("payload must be stable after further feeds")
	}
}

func TestFrameSize(t *testing.T) {
	if FrameSize(100) != HeaderSize+100 {
		t.Fatal("FrameSize wrong")
	}
	f := AppendFrame(nil, Message{ID: 3, Payload: make([]byte, 100)})
	if len(f) != FrameSize(100) {
		t.Fatal("encoded length mismatch")
	}
}

// Property: any sequence of messages encoded then fed in arbitrary chunk
// sizes decodes identically.
func TestRandomSplitRoundTrip(t *testing.T) {
	f := func(payloads [][]byte, seed int64) bool {
		var stream []byte
		for i, pl := range payloads {
			if len(pl) > 1024 {
				pl = pl[:1024]
				payloads[i] = pl
			}
			stream = AppendFrame(stream, Message{ID: uint64(i), Payload: pl})
		}
		rng := rand.New(rand.NewSource(seed))
		var p Parser
		var got []Message
		for off := 0; off < len(stream); {
			n := 1 + rng.Intn(37)
			if off+n > len(stream) {
				n = len(stream) - off
			}
			p.Feed(stream[off : off+n])
			off += n
			for {
				m, ok, err := p.Next()
				if err != nil {
					return false
				}
				if !ok {
					break
				}
				got = append(got, m)
			}
		}
		if len(got) != len(payloads) {
			return false
		}
		for i, m := range got {
			if m.ID != uint64(i) || !bytes.Equal(m.Payload, payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParse(b *testing.B) {
	frame := AppendFrame(nil, Message{ID: 1, Payload: make([]byte, 64)})
	var p Parser
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Feed(frame)
		m, ok, _ := p.Next()
		if !ok {
			b.Fatal("missing message")
		}
		m.Release()
	}
}
