package proto

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrDispatcherClosed is delivered to callbacks still pending when a
// Dispatcher shuts down.
var ErrDispatcherClosed = errors.New("proto: dispatcher closed")

// Dispatcher matches response messages to outstanding requests by ID. It
// is the client-side counterpart of the runtime: transports feed it raw
// response bytes and it invokes the callback registered for each ID,
// converting non-OK wire statuses into *StatusError so both client
// types surface typed errors identically.
//
// The resp slice passed to a callback is a view into the dispatcher's
// pooled parse buffer and is valid only for the duration of the
// callback; callbacks that retain it must copy. It is safe for
// concurrent use.
type Dispatcher struct {
	// feedMu serializes Feed (and with it the parser and the ready
	// scratch), so callbacks run without holding mu and the scratch list
	// is reused without allocation.
	feedMu sync.Mutex
	parser Parser
	ready  []readyReply

	mu      sync.Mutex
	pending map[uint64]func(resp []byte, err error)
	nextID  uint64
	closed  bool

	// push maps subscription IDs to handlers for server-initiated v4
	// PUSH frames, which carry no request ID and demultiplex by SubID
	// alongside the reply pending map. nextSub allocates the
	// client-chosen subscription IDs (unique per dispatcher, and so per
	// socket).
	push    map[uint32]func(frameID uint32, payload []byte)
	nextSub uint32

	// depthFn, when set, receives the queue depth carried by piggybacked
	// health frames (reserved MethodHealth, request ID 0) the server
	// appends to its reply batches. Without a hook the frames are
	// dropped like any other unknown-ID reply. Stored atomically so Feed
	// reads it without taking the registry lock.
	depthFn atomic.Pointer[func(depth uint32)]
}

// readyReply is one decoded response matched to its callback, staged so
// the callback can run outside the registry lock. Exactly one of cb and
// pushCB is set: replies resolve pending requests, pushes invoke the
// subscription handler.
type readyReply struct {
	cb     func(resp []byte, err error)
	pushCB func(frameID uint32, payload []byte)
	m      Message
}

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{pending: make(map[uint64]func(resp []byte, err error))}
}

// Register allocates a request ID and installs cb to receive its
// response payload. cb is invoked exactly once: with the response (or a
// *StatusError for non-OK wire statuses), or with an error if the
// dispatcher closes first. The resp slice is valid only during the
// callback.
func (d *Dispatcher) Register(cb func(resp []byte, err error)) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrDispatcherClosed
	}
	d.nextID++
	id := d.nextID
	d.pending[id] = cb
	return id, nil
}

// RegisterPush allocates a subscription ID and installs h to receive
// v4 PUSH frames carrying it. The payload slice is a view into the
// dispatcher's pooled parse buffer, valid only during the call;
// handlers that retain it must copy. h runs on the transport's read
// goroutine and must not block.
func (d *Dispatcher) RegisterPush(h func(frameID uint32, payload []byte)) (uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrDispatcherClosed
	}
	if d.push == nil {
		d.push = make(map[uint32]func(frameID uint32, payload []byte))
	}
	d.nextSub++
	id := d.nextSub
	d.push[id] = h
	return id, nil
}

// UnregisterPush removes the handler for subscription id. Pushes
// already staged in a concurrent Feed may still be delivered once.
func (d *Dispatcher) UnregisterPush(id uint32) {
	d.mu.Lock()
	delete(d.push, id)
	d.mu.Unlock()
}

// SetDepthFunc installs f to receive the server's queue depth from
// piggybacked health frames (one call per Feed that saw at least one,
// with the newest depth). Passing nil uninstalls. Safe to call
// concurrently with Feed; f must be cheap and must not call back into
// the dispatcher.
func (d *Dispatcher) SetDepthFunc(f func(depth uint32)) {
	if f == nil {
		d.depthFn.Store(nil)
		return
	}
	d.depthFn.Store(&f)
}

// Feed parses raw response bytes and dispatches completed messages.
// Responses with unknown IDs are dropped (late replies after timeout).
// After Close, Feed discards its input without touching the parser, so
// a straggling reply can never re-lease a pooled parse block that
// ReleaseParser already returned.
func (d *Dispatcher) Feed(data []byte) error {
	d.feedMu.Lock()
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		d.feedMu.Unlock()
		return nil
	}
	d.parser.Feed(data)
	ready := d.ready[:0]
	var err error
	var depth uint32
	sawDepth := false
	d.mu.Lock()
	for {
		m, ok, perr := d.parser.Next()
		if perr != nil {
			err = perr
			break
		}
		if !ok {
			break
		}
		if m.V3 && m.Method == MethodHealth && m.ID == 0 {
			// Piggybacked health frame: not a reply, never registered.
			// Keep only the newest depth in this batch.
			if dv, hok := DecodeHealthPayload(m.Payload); hok {
				depth, sawDepth = dv, true
			}
			m.Release()
			continue
		}
		if m.V4 && m.Kind == KindPush {
			// Server-initiated push: demultiplex by subscription ID, not
			// request ID (the v4 ID field carries the published frame's
			// identifier instead).
			if h, found := d.push[m.SubID]; found {
				ready = append(ready, readyReply{pushCB: h, m: m})
			} else {
				m.Release()
			}
			continue
		}
		if cb, found := d.pending[m.ID]; found {
			delete(d.pending, m.ID)
			ready = append(ready, readyReply{cb: cb, m: m})
		} else {
			m.Release()
		}
	}
	d.mu.Unlock()
	if sawDepth {
		if f := d.depthFn.Load(); f != nil {
			(*f)(depth)
		}
	}
	// Invoke outside the registry lock: callbacks may re-enter Register.
	for i := range ready {
		r := &ready[i]
		switch {
		case r.pushCB != nil:
			r.pushCB(uint32(r.m.ID), r.m.Payload)
		case r.m.Status != StatusOK:
			r.cb(nil, &StatusError{Code: r.m.Status, Msg: string(r.m.Payload)})
		default:
			r.cb(r.m.Payload, nil)
		}
		r.m.Release()
		*r = readyReply{}
	}
	d.ready = ready[:0]
	d.feedMu.Unlock()
	return err
}

// Pending reports the number of outstanding requests.
func (d *Dispatcher) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}

// Close fails all outstanding requests with ErrDispatcherClosed and
// rejects future registrations. It is idempotent.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	cbs := make([]func(resp []byte, err error), 0, len(d.pending))
	for id, cb := range d.pending {
		delete(d.pending, id)
		cbs = append(cbs, cb)
	}
	d.mu.Unlock()
	for _, cb := range cbs {
		cb(nil, ErrDispatcherClosed)
	}
}

// ReleaseParser returns the dispatcher's pooled parse block after
// Close; outstanding payload views keep the underlying memory alive
// until their messages are released. Call it from the transport's
// teardown path (read-loop exit, CloseTransport) once no more useful
// Feeds will happen — Close must already have been called, which is
// what stops a late Feed from re-leasing a block afterwards.
//
// A Feed may still be in flight on another goroutine (or this call may
// sit inside one of that Feed's callbacks), so the release defers to a
// goroutine rather than block on the feed lock: the in-flight Feed
// finishes, then the block goes home.
func (d *Dispatcher) ReleaseParser() {
	if d.feedMu.TryLock() {
		d.parser.ReleaseBuffer()
		d.feedMu.Unlock()
		return
	}
	go func() {
		d.feedMu.Lock()
		d.parser.ReleaseBuffer()
		d.feedMu.Unlock()
	}()
}
