package proto

import (
	"errors"
	"sync"
)

// ErrDispatcherClosed is delivered to callbacks still pending when a
// Dispatcher shuts down.
var ErrDispatcherClosed = errors.New("proto: dispatcher closed")

// Dispatcher matches response messages to outstanding requests by ID. It
// is the client-side counterpart of the runtime: transports feed it raw
// response bytes and it invokes the callback registered for each ID.
// It is safe for concurrent use.
type Dispatcher struct {
	mu      sync.Mutex
	parser  Parser
	pending map[uint64]func(Message, error)
	nextID  uint64
	closed  bool
}

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{pending: make(map[uint64]func(Message, error))}
}

// Register allocates a request ID and installs cb to receive its response.
// cb is invoked exactly once: with the response, or with an error if the
// dispatcher closes first.
func (d *Dispatcher) Register(cb func(Message, error)) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrDispatcherClosed
	}
	d.nextID++
	id := d.nextID
	d.pending[id] = cb
	return id, nil
}

// Feed parses raw response bytes and dispatches completed messages.
// Responses with unknown IDs are dropped (late replies after timeout).
func (d *Dispatcher) Feed(data []byte) error {
	d.mu.Lock()
	d.parser.Feed(data)
	var ready []struct {
		cb func(Message, error)
		m  Message
	}
	var err error
	for {
		m, ok, perr := d.parser.Next()
		if perr != nil {
			err = perr
			break
		}
		if !ok {
			break
		}
		if cb, found := d.pending[m.ID]; found {
			delete(d.pending, m.ID)
			ready = append(ready, struct {
				cb func(Message, error)
				m  Message
			}{cb, m})
		}
	}
	d.mu.Unlock()
	// Invoke outside the lock: callbacks may re-enter Register.
	for _, r := range ready {
		r.cb(r.m, nil)
	}
	return err
}

// Pending reports the number of outstanding requests.
func (d *Dispatcher) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}

// Close fails all outstanding requests with ErrDispatcherClosed and
// rejects future registrations. It is idempotent.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	cbs := make([]func(Message, error), 0, len(d.pending))
	for id, cb := range d.pending {
		delete(d.pending, id)
		cbs = append(cbs, cb)
	}
	d.mu.Unlock()
	for _, cb := range cbs {
		cb(Message{}, ErrDispatcherClosed)
	}
}
