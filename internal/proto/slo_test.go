package proto

import (
	"math"
	"testing"
	"time"
)

func TestBudgetMicrosClamps(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want uint32
	}{
		{0, 0},
		{-time.Second, 0},
		{500 * time.Nanosecond, 1}, // sub-µs positive means "now", not "none"
		{3 * time.Microsecond, 3},
		{time.Second, 1e6},
		{200 * time.Hour, math.MaxUint32},
	}
	for _, c := range cases {
		if got := BudgetMicros(c.d); got != c.want {
			t.Errorf("BudgetMicros(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if got := BudgetDuration(250); got != 250*time.Microsecond {
		t.Errorf("BudgetDuration(250) = %v", got)
	}
	if got := BudgetDuration(0); got != 0 {
		t.Errorf("BudgetDuration(0) = %v", got)
	}
}

// A budget rides the deadline extension on both extended frame
// versions: the encoder sets FlagDeadline and emits the trailing bytes,
// the parser recovers the budget and strips the flag (framing metadata,
// not message state), and the length field keeps counting payload bytes
// only.
func TestBudgetRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    Message
	}{
		{"v2", Message{ID: 9, Payload: []byte("b2"), V2: true, Budget: 1500}},
		{"v3", Message{ID: 10, Method: 7, Payload: []byte("b3"), V3: true, Budget: 42}},
		{"v3-flags", Message{ID: 11, Method: 8, V3: true, Budget: 1, Flags: FlagOneWay}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			frame := AppendMessage(nil, tc.m)
			if len(frame) != FrameSizeMsg(tc.m) {
				t.Fatalf("encoded %d bytes, FrameSizeMsg says %d", len(frame), FrameSizeMsg(tc.m))
			}
			// The length field must exclude the extension, or a
			// FlagDeadline-blind length check would misframe the stream.
			if n := int(frame[0]) | int(frame[1])<<8 | int(frame[2])<<16; n != len(tc.m.Payload) {
				t.Fatalf("length field %d, want payload-only %d", n, len(tc.m.Payload))
			}
			if frame[4]&FlagDeadline == 0 {
				t.Fatal("budgeted frame missing FlagDeadline")
			}
			// Byte-at-a-time feed: the extension must not confuse
			// incremental framing.
			var p Parser
			for _, b := range frame {
				if _, ok, _ := p.Next(); ok {
					t.Fatal("message completed early")
				}
				p.Feed([]byte{b})
			}
			m, ok, err := p.Next()
			if err != nil || !ok {
				t.Fatalf("Next: %v %v", ok, err)
			}
			if m.Budget != tc.m.Budget {
				t.Fatalf("budget %d, want %d", m.Budget, tc.m.Budget)
			}
			if m.Flags&FlagDeadline != 0 {
				t.Fatal("parser leaked FlagDeadline into Flags")
			}
			if m.Flags != tc.m.Flags || m.ID != tc.m.ID || m.Method != tc.m.Method ||
				string(m.Payload) != string(tc.m.Payload) {
				t.Fatalf("got %+v, want %+v", m, tc.m)
			}
		})
	}
}

// An unbudgeted message must encode without the flag or the extension —
// zero means "no deadline", never "deadline of zero".
func TestNoBudgetNoExtension(t *testing.T) {
	m := Message{ID: 1, Method: 2, Payload: []byte("x"), V3: true}
	frame := AppendMessage(nil, m)
	if len(frame) != FrameSizeV3(1) {
		t.Fatalf("unbudgeted frame %d bytes, want %d", len(frame), FrameSizeV3(1))
	}
	if frame[4]&FlagDeadline != 0 {
		t.Fatal("unbudgeted frame carries FlagDeadline")
	}
}

func TestRetryAfterRoundTrip(t *testing.T) {
	msg := FormatRetryAfter(750*time.Microsecond, "queue depth exceeded")
	d, rest, ok := ParseRetryAfter(msg)
	if !ok || d != 750*time.Microsecond || rest != "queue depth exceeded" {
		t.Fatalf("ParseRetryAfter(%q) = %v %q %v", msg, d, rest, ok)
	}
	// Negative hints clamp to zero on format.
	d, _, ok = ParseRetryAfter(FormatRetryAfter(-time.Second, "x"))
	if !ok || d != 0 {
		t.Fatalf("negative hint: %v %v", d, ok)
	}
	// Messages without the prefix (or with a garbled number) carry no
	// hint and come back verbatim.
	for _, s := range []string{"plain shed message", "retry-after-us=nope; x", ""} {
		if d, rest, ok := ParseRetryAfter(s); ok || rest != s || d != 0 {
			t.Fatalf("ParseRetryAfter(%q) = %v %q %v, want no hint", s, d, rest, ok)
		}
	}
}
