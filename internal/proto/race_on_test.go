//go:build race

package proto

// raceEnabled reports whether the race detector is active; allocation
// accounting tests skip under it (instrumentation allocates, and
// sync.Pool deliberately drops Puts in race mode).
const raceEnabled = true
