package proto

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestWaiterDeliverThenWait(t *testing.T) {
	w := GetWaiter(nil)
	cb := w.Callback()
	cb([]byte("pong"), nil)
	resp, err := w.Wait()
	if err != nil || string(resp) != "pong" {
		t.Fatalf("Wait = %q, %v", resp, err)
	}
}

func TestWaiterTimeoutReturnsPromptly(t *testing.T) {
	w := GetWaiter(nil)
	_ = w.Callback()
	start := time.Now()
	resp, err := w.WaitTimeout(10 * time.Millisecond)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if resp != nil {
		t.Fatalf("resp = %q, want nil", resp)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("WaitTimeout took %v", el)
	}
}

func TestWaiterReplyBeforeDeadline(t *testing.T) {
	w := GetWaiter(nil)
	cb := w.Callback()
	go func() {
		time.Sleep(time.Millisecond)
		cb([]byte("ok"), nil)
	}()
	resp, err := w.WaitTimeout(5 * time.Second)
	if err != nil || string(resp) != "ok" {
		t.Fatalf("WaitTimeout = %q, %v", resp, err)
	}
}

// A late delivery after timeout must be dropped without corrupting any
// pooled waiter that a subsequent call might be using.
func TestWaiterLateDeliveryDropped(t *testing.T) {
	for i := 0; i < 200; i++ {
		w := GetWaiter(nil)
		cb := w.Callback()
		if _, err := w.WaitTimeout(time.Nanosecond); !errors.Is(err, ErrCallTimeout) {
			// The nanosecond deadline may occasionally lose to the
			// scheduler if a deliver raced in; only a timeout result
			// exercises the late path below.
			continue
		}
		// Fresh waiters from the pool must not observe the straggler.
		w2 := GetWaiter(nil)
		cb([]byte("stale"), nil) // late reply into the timed-out instance
		cb2 := w2.Callback()
		cb2([]byte("fresh"), nil)
		resp, err := w2.Wait()
		if err != nil || string(resp) != "fresh" {
			t.Fatalf("cycle %d: pooled waiter got %q, %v", i, resp, err)
		}
	}
}

func TestWaiterAbandonDropsDelivery(t *testing.T) {
	w := GetWaiter(nil)
	cb := w.Callback()
	w.Abandon()
	cb([]byte("ignored"), nil) // must not panic or block
}

func TestWaiterDeliverError(t *testing.T) {
	boom := errors.New("boom")
	w := GetWaiter(nil)
	w.Callback()(nil, boom)
	resp, err := w.WaitTimeout(time.Second)
	if !errors.Is(err, boom) || resp != nil {
		t.Fatalf("WaitTimeout = %q, %v", resp, err)
	}
}

// Hammer the deliver/timeout race under -race: whichever side wins the
// CAS, the caller observes exactly one coherent outcome.
func TestWaiterDeliverTimeoutRace(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 500; i++ {
		w := GetWaiter(nil)
		cb := w.Callback()
		wg.Add(1)
		go func() {
			defer wg.Done()
			cb([]byte("r"), nil)
		}()
		resp, err := w.WaitTimeout(time.Microsecond)
		if err == nil {
			if string(resp) != "r" {
				t.Fatalf("delivered resp = %q", resp)
			}
		} else if !errors.Is(err, ErrCallTimeout) {
			t.Fatalf("err = %v", err)
		}
		wg.Wait()
	}
}
