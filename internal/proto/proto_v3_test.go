package proto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestV3RoundTrip(t *testing.T) {
	var p Parser
	frame := AppendFrameV3(nil, Message{
		ID:      77,
		Method:  0xBEEF,
		Payload: []byte("v3 body"),
		Flags:   FlagOneWay,
		Status:  StatusNoMethod,
	})
	if len(frame) != FrameSizeV3(7) {
		t.Fatalf("encoded length %d, want %d", len(frame), FrameSizeV3(7))
	}
	p.Feed(frame)
	m, ok, err := p.Next()
	if err != nil || !ok {
		t.Fatalf("Next: %v %v", ok, err)
	}
	if m.ID != 77 || m.Method != 0xBEEF || string(m.Payload) != "v3 body" ||
		m.Flags != FlagOneWay || m.Status != StatusNoMethod || !m.V3 || m.V2 {
		t.Fatalf("got %+v", m)
	}
	if p.Buffered() != 0 {
		t.Fatal("buffer should be empty")
	}
}

func TestV3ByteAtATime(t *testing.T) {
	var p Parser
	frame := AppendFrameV3(nil, Message{ID: 5, Method: 3, Payload: []byte("fragmented-v3")})
	for _, b := range frame {
		if _, ok, _ := p.Next(); ok {
			t.Fatal("message completed early")
		}
		p.Feed([]byte{b})
	}
	m, ok, err := p.Next()
	if err != nil || !ok || string(m.Payload) != "fragmented-v3" || m.Method != 3 {
		t.Fatalf("got %+v ok=%v err=%v", m, ok, err)
	}
}

// No valid v1 frame can alias the v3 magic, exactly as for v2.
func TestMagic3DoesNotAliasV1(t *testing.T) {
	aliased := uint32(Magic3) << 24
	if aliased <= MaxPayload {
		t.Fatalf("magic-aliased v1 length %d must exceed MaxPayload %d", aliased, MaxPayload)
	}
}

func TestV3EmptyPayloadAndMethodZero(t *testing.T) {
	var p Parser
	p.Feed(AppendFrameV3(nil, Message{ID: 9}))
	m, ok, err := p.Next()
	if err != nil || !ok || m.ID != 9 || m.Method != 0 || len(m.Payload) != 0 || !m.V3 {
		t.Fatalf("got %+v ok=%v err=%v", m, ok, err)
	}
}

// AppendMessage selects v3 over v2 when both are set (a reply mirroring
// a v3 request keeps its method on the wire).
func TestAppendMessageVersionSelection(t *testing.T) {
	m := Message{ID: 1, Method: 7, Payload: []byte("x"), V2: true, V3: true}
	f := AppendMessage(nil, m)
	if f[3] != Magic3 || len(f) != FrameSizeV3(1) {
		t.Fatalf("V3 must win the version selection, got magic %#x len %d", f[3], len(f))
	}
	var p Parser
	p.Feed(f)
	got, ok, err := p.Next()
	if err != nil || !ok || got.Method != 7 {
		t.Fatalf("got %+v ok=%v err=%v", got, ok, err)
	}
}

// Property: streams mixing all three frame versions, fed in arbitrary
// chunk sizes, decode in order with methods intact.
func TestV3RandomSplitRoundTrip(t *testing.T) {
	f := func(payloads [][]byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var stream []byte
		var want []Message
		for i, pl := range payloads {
			if len(pl) > 1024 {
				pl = pl[:1024]
			}
			m := Message{ID: uint64(i), Payload: pl}
			switch rng.Intn(3) {
			case 0:
				m.V3 = true
				m.Method = uint16(rng.Intn(1 << 16))
				m.Flags = uint8(rng.Intn(2))
				m.Status = uint8(rng.Intn(5))
			case 1:
				m.V2 = true
				m.Flags = uint8(rng.Intn(2))
				m.Status = uint8(rng.Intn(5))
			}
			want = append(want, m)
			stream = AppendMessage(stream, m)
		}
		var p Parser
		var got []Message
		for off := 0; off < len(stream); {
			n := 1 + rng.Intn(37)
			if off+n > len(stream) {
				n = len(stream) - off
			}
			p.Feed(stream[off : off+n])
			off += n
			for {
				m, ok, err := p.Next()
				if err != nil {
					return false
				}
				if !ok {
					break
				}
				got = append(got, m)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i, m := range got {
			w := want[i]
			if m.ID != w.ID || !bytes.Equal(m.Payload, w.Payload) ||
				m.V2 != w.V2 || m.V3 != w.V3 || m.Method != w.Method ||
				m.Flags != w.Flags || m.Status != w.Status {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseV3(b *testing.B) {
	frame := AppendFrameV3(nil, Message{ID: 1, Method: 2, Payload: make([]byte, 64)})
	var p Parser
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Feed(frame)
		if _, ok, _ := p.Next(); !ok {
			b.Fatal("missing message")
		}
	}
}
