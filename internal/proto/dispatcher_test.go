package proto

import (
	"errors"
	"sync"
	"testing"
)

func TestDispatcherRoundTrip(t *testing.T) {
	d := NewDispatcher()
	got := make(chan Message, 1)
	id, err := d.Register(func(m Message, err error) {
		if err != nil {
			t.Error(err)
		}
		got <- m
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Feed(AppendFrame(nil, Message{ID: id, Payload: []byte("pong")})); err != nil {
		t.Fatal(err)
	}
	m := <-got
	if m.ID != id || string(m.Payload) != "pong" {
		t.Fatalf("got %+v", m)
	}
	if d.Pending() != 0 {
		t.Fatal("request still pending after dispatch")
	}
}

func TestDispatcherUnknownIDDropped(t *testing.T) {
	d := NewDispatcher()
	if err := d.Feed(AppendFrame(nil, Message{ID: 999, Payload: []byte("late")})); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 0 {
		t.Fatal("no pending expected")
	}
}

func TestDispatcherCloseFailsPending(t *testing.T) {
	d := NewDispatcher()
	errCh := make(chan error, 2)
	for i := 0; i < 2; i++ {
		if _, err := d.Register(func(_ Message, err error) { errCh <- err }); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	d.Close() // idempotent
	for i := 0; i < 2; i++ {
		if err := <-errCh; !errors.Is(err, ErrDispatcherClosed) {
			t.Fatalf("want ErrDispatcherClosed, got %v", err)
		}
	}
	if _, err := d.Register(func(Message, error) {}); !errors.Is(err, ErrDispatcherClosed) {
		t.Fatal("register after close must fail")
	}
}

func TestDispatcherPartialFrames(t *testing.T) {
	d := NewDispatcher()
	got := make(chan Message, 1)
	id, _ := d.Register(func(m Message, err error) { got <- m })
	frame := AppendFrame(nil, Message{ID: id, Payload: []byte("split")})
	for _, b := range frame {
		if err := d.Feed([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	if m := <-got; string(m.Payload) != "split" {
		t.Fatalf("got %+v", m)
	}
}

func TestDispatcherMalformedStream(t *testing.T) {
	d := NewDispatcher()
	bad := make([]byte, HeaderSize)
	bad[3] = 0x7f
	if err := d.Feed(bad); err == nil {
		t.Fatal("malformed stream must error")
	}
}

// Callbacks may re-enter Register (pipelined request chains) without
// deadlocking.
func TestDispatcherReentrantCallback(t *testing.T) {
	d := NewDispatcher()
	done := make(chan struct{})
	id1, _ := d.Register(func(m Message, err error) {
		if _, err := d.Register(func(Message, error) {}); err != nil {
			t.Error(err)
		}
		close(done)
	})
	if err := d.Feed(AppendFrame(nil, Message{ID: id1})); err != nil {
		t.Fatal(err)
	}
	<-done
	if d.Pending() != 1 {
		t.Fatalf("pending %d, want the re-registered request", d.Pending())
	}
}

func TestDispatcherConcurrent(t *testing.T) {
	d := NewDispatcher()
	const n = 200
	var wg sync.WaitGroup
	ids := make(chan uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		id, err := d.Register(func(m Message, err error) {
			if err == nil {
				wg.Done()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		ids <- id
	}
	close(ids)
	var feeders sync.WaitGroup
	for g := 0; g < 4; g++ {
		feeders.Add(1)
		go func() {
			defer feeders.Done()
			for id := range ids {
				if err := d.Feed(AppendFrame(nil, Message{ID: id})); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	feeders.Wait()
	wg.Wait()
	if d.Pending() != 0 {
		t.Fatalf("pending %d after all responses", d.Pending())
	}
}
