package proto

import (
	"errors"
	"sync"
	"testing"
)

func TestDispatcherRoundTrip(t *testing.T) {
	d := NewDispatcher()
	got := make(chan string, 1)
	id, err := d.Register(func(resp []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		// resp is only valid during the callback; copy out.
		got <- string(resp)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Feed(AppendFrame(nil, Message{ID: id, Payload: []byte("pong")})); err != nil {
		t.Fatal(err)
	}
	if r := <-got; r != "pong" {
		t.Fatalf("got %q", r)
	}
	if d.Pending() != 0 {
		t.Fatal("request still pending after dispatch")
	}
}

// Non-OK v2 statuses surface as typed *StatusError.
func TestDispatcherStatusError(t *testing.T) {
	d := NewDispatcher()
	got := make(chan error, 1)
	id, err := d.Register(func(resp []byte, err error) { got <- err })
	if err != nil {
		t.Fatal(err)
	}
	frame := AppendFrameV2(nil, Message{ID: id, Status: StatusShed, Payload: []byte("busy"), V2: true})
	if err := d.Feed(frame); err != nil {
		t.Fatal(err)
	}
	var se *StatusError
	if err := <-got; !errors.As(err, &se) || se.Code != StatusShed || se.Msg != "busy" {
		t.Fatalf("want StatusShed StatusError, got %v", err)
	}
}

func TestDispatcherUnknownIDDropped(t *testing.T) {
	d := NewDispatcher()
	if err := d.Feed(AppendFrame(nil, Message{ID: 999, Payload: []byte("late")})); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 0 {
		t.Fatal("no pending expected")
	}
}

func TestDispatcherCloseFailsPending(t *testing.T) {
	d := NewDispatcher()
	errCh := make(chan error, 2)
	for i := 0; i < 2; i++ {
		if _, err := d.Register(func(_ []byte, err error) { errCh <- err }); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	d.Close() // idempotent
	for i := 0; i < 2; i++ {
		if err := <-errCh; !errors.Is(err, ErrDispatcherClosed) {
			t.Fatalf("want ErrDispatcherClosed, got %v", err)
		}
	}
	if _, err := d.Register(func([]byte, error) {}); !errors.Is(err, ErrDispatcherClosed) {
		t.Fatal("register after close must fail")
	}
}

func TestDispatcherPartialFrames(t *testing.T) {
	d := NewDispatcher()
	got := make(chan string, 1)
	id, _ := d.Register(func(resp []byte, err error) { got <- string(resp) })
	frame := AppendFrame(nil, Message{ID: id, Payload: []byte("split")})
	for _, b := range frame {
		if err := d.Feed([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	if r := <-got; r != "split" {
		t.Fatalf("got %q", r)
	}
}

func TestDispatcherMalformedStream(t *testing.T) {
	d := NewDispatcher()
	bad := make([]byte, HeaderSize)
	bad[3] = 0x7f
	if err := d.Feed(bad); err == nil {
		t.Fatal("malformed stream must error")
	}
}

// Callbacks may re-enter Register (pipelined request chains) without
// deadlocking.
func TestDispatcherReentrantCallback(t *testing.T) {
	d := NewDispatcher()
	done := make(chan struct{})
	id1, _ := d.Register(func(resp []byte, err error) {
		if _, err := d.Register(func([]byte, error) {}); err != nil {
			t.Error(err)
		}
		close(done)
	})
	if err := d.Feed(AppendFrame(nil, Message{ID: id1})); err != nil {
		t.Fatal(err)
	}
	<-done
	if d.Pending() != 1 {
		t.Fatalf("pending %d, want the re-registered request", d.Pending())
	}
}

func TestDispatcherConcurrent(t *testing.T) {
	d := NewDispatcher()
	const n = 200
	var wg sync.WaitGroup
	ids := make(chan uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		id, err := d.Register(func(resp []byte, err error) {
			if err == nil {
				wg.Done()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		ids <- id
	}
	close(ids)
	var feeders sync.WaitGroup
	for g := 0; g < 4; g++ {
		feeders.Add(1)
		go func() {
			defer feeders.Done()
			for id := range ids {
				if err := d.Feed(AppendFrame(nil, Message{ID: id})); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	feeders.Wait()
	wg.Wait()
	if d.Pending() != 0 {
		t.Fatalf("pending %d after all responses", d.Pending())
	}
}
