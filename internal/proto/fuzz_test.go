package proto

import (
	"encoding/binary"
	"testing"
)

// FuzzParser throws arbitrary byte streams at the Parser — seeded with
// well-formed v1/v2/v3/v4 frames, deadline extensions, truncations, and
// corrupt header bytes — and checks the invariants that matter for a
// server parsing hostile input: no panics, errors are sticky, and every
// yielded message respects the version's payload bound.
func FuzzParser(f *testing.F) {
	// Well-formed single frames of each version.
	f.Add(AppendFrame(nil, Message{ID: 1, Payload: []byte("v1")}))
	f.Add(AppendFrameV2(nil, Message{ID: 2, Status: StatusAppError, Payload: []byte("v2")}))
	f.Add(AppendFrameV3(nil, Message{ID: 3, Method: 7, Payload: []byte("v3")}))
	f.Add(AppendFrameV4(nil, Message{ID: 4, Method: 7, SubID: 9, Kind: KindSubscribe, Payload: []byte("v4")}))
	f.Add(AppendFrameV4(nil, Message{ID: 5, SubID: 1, Kind: KindPush, Payload: []byte("push")}))
	// A deadline-budget frame (trailing 4-byte extension on v3).
	f.Add(AppendMessage(nil, Message{ID: 6, Method: 1, V3: true, Flags: FlagDeadline, Budget: 1500, Payload: []byte("dl")}))
	// Mixed-version stream.
	mixed := AppendFrame(nil, Message{ID: 7, Payload: []byte("a")})
	mixed = AppendFrameV2(mixed, Message{ID: 8, Payload: []byte("b")})
	mixed = AppendFrameV3(mixed, Message{ID: 9, Method: 2, Payload: []byte("c")})
	mixed = AppendFrameV4(mixed, Message{ID: 10, SubID: 2, Kind: KindUnsubscribe})
	f.Add(mixed)
	// Truncated v4 header, corrupt kind byte, corrupt deadline ext.
	f.Add(AppendFrameV4(nil, Message{ID: 11, Kind: KindPush, Payload: []byte("tr")})[:13])
	bad := AppendFrameV4(nil, Message{ID: 12, Kind: KindPush})
	bad[4] = 0xEE
	f.Add(bad)
	short := AppendMessage(nil, Message{ID: 13, V2: true, Flags: FlagDeadline, Budget: 99})
	f.Add(short[:len(short)-2])
	// Oversized v1 length prefix.
	huge := make([]byte, HeaderSize)
	binary.LittleEndian.PutUint32(huge, MaxPayload+1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Parser
		defer p.Reset()
		sawErr := false
		// Feed in two chunks to exercise the compaction/migration path,
		// then drain.
		half := len(data) / 2
		for _, chunk := range [][]byte{data[:half], data[half:]} {
			p.Feed(chunk)
			for {
				m, ok, err := p.Next()
				if err != nil {
					sawErr = true
					// Errors must be sticky: a poisoned stream never
					// yields another message.
					if _, ok2, err2 := p.Next(); ok2 || err2 == nil {
						t.Fatalf("error not sticky: ok=%v err=%v after %v", ok2, err2, err)
					}
					break
				}
				if !ok {
					break
				}
				if m.V2 || m.V3 || m.V4 {
					if len(m.Payload) > MaxPayloadV2 {
						t.Fatalf("payload %d exceeds MaxPayloadV2", len(m.Payload))
					}
				} else if len(m.Payload) > MaxPayload {
					t.Fatalf("payload %d exceeds MaxPayload", len(m.Payload))
				}
				if m.V4 && (m.Kind < KindSubscribe || m.Kind > KindPush) {
					t.Fatalf("v4 message with invalid kind %d", m.Kind)
				}
				m.Release()
			}
			if sawErr {
				break
			}
		}
	})
}
