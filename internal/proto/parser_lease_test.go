package proto

import (
	"bytes"
	"testing"
)

// Regression test for the consume() growth pathology: the old parser
// copied the whole remaining buffer down after every frame, so a burst
// of pipelined frames in one segment caused O(n²) byte moves and
// repeated grow-copy cycles. The lease parser advances an offset and
// compacts at most once per buffer wrap; parsing a steady pipelined
// stream must therefore not allocate at all once the pools are warm.
func TestParserPipelinedBurstSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and sync.Pool drops Puts under -race")
	}
	var stream []byte
	for i := 0; i < 64; i++ {
		stream = AppendFrameV2(stream, Message{ID: uint64(i), Payload: bytes.Repeat([]byte{byte(i)}, 32), V2: true})
	}
	var p Parser
	cycle := func() {
		p.Feed(stream)
		n := 0
		for {
			m, ok, err := p.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			m.Release()
			n++
		}
		if n != 64 {
			t.Fatalf("parsed %d frames, want 64", n)
		}
	}
	cycle() // warm the pools
	if allocs := testing.AllocsPerRun(200, cycle); allocs >= 1 {
		t.Fatalf("pipelined burst parse allocates %.2f/op; want amortized zero", allocs)
	}
	if p.Buffered() != 0 {
		t.Fatalf("Buffered() = %d after full drain", p.Buffered())
	}
}

// An unreleased payload must pin its buffer: later feeds and parses may
// neither move nor overwrite it.
func TestUnreleasedPayloadStableAcrossFeeds(t *testing.T) {
	var p Parser
	p.Feed(AppendFrame(nil, Message{ID: 1, Payload: []byte("keep-me-around")}))
	m, ok, err := p.Next()
	if !ok || err != nil {
		t.Fatalf("Next: %v %v", ok, err)
	}
	// Hammer the parser with enough traffic to recycle pooled buffers
	// many times over.
	for i := 0; i < 100; i++ {
		p.Feed(AppendFrame(nil, Message{ID: uint64(i), Payload: bytes.Repeat([]byte{0xee}, 512)}))
		n, ok2, err2 := p.Next()
		if !ok2 || err2 != nil {
			t.Fatalf("feed %d: %v %v", i, ok2, err2)
		}
		n.Release()
	}
	if string(m.Payload) != "keep-me-around" {
		t.Fatalf("unreleased payload corrupted: %q", m.Payload)
	}
	m.Release()
}

// Release is per-message and idempotent on the zero value; double
// releases of distinct messages from one buffer must each count once.
func TestReleaseAccounting(t *testing.T) {
	var p Parser
	var stream []byte
	for i := 0; i < 3; i++ {
		stream = AppendFrame(stream, Message{ID: uint64(i), Payload: []byte{byte(i)}})
	}
	p.Feed(stream)
	var msgs []Message
	for {
		m, ok, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		msgs = append(msgs, m)
	}
	for i := range msgs {
		msgs[i].Release()
		msgs[i].Release() // second release of the same Message is a no-op
	}
	var zero Message
	zero.Release() // zero value is safe
}

// A frame split across many small feeds must still parse without
// corrupting the lease bookkeeping, including when the buffer grows
// while a previous payload is unreleased.
func TestSplitFeedWithPinnedPayload(t *testing.T) {
	var p Parser
	p.Feed(AppendFrame(nil, Message{ID: 1, Payload: []byte("pinned")}))
	pinned, ok, _ := p.Next()
	if !ok {
		t.Fatal("missing first message")
	}
	big := AppendFrameV2(nil, Message{ID: 2, Payload: bytes.Repeat([]byte{7}, 4096), V2: true})
	for off := 0; off < len(big); off += 13 {
		end := off + 13
		if end > len(big) {
			end = len(big)
		}
		p.Feed(big[off:end])
	}
	m, ok, err := p.Next()
	if !ok || err != nil {
		t.Fatalf("big frame: %v %v", ok, err)
	}
	if len(m.Payload) != 4096 || m.Payload[0] != 7 {
		t.Fatalf("big payload corrupted")
	}
	if string(pinned.Payload) != "pinned" {
		t.Fatalf("pinned payload corrupted: %q", pinned.Payload)
	}
	m.Release()
	pinned.Release()
}

// ReleaseBuffer (used when a connection is poisoned) must keep the
// parse error sticky: bytes fed afterwards — e.g. stream segments that
// were queued behind the malformed frame and could themselves encode
// valid-looking frames — must never be parsed as fresh requests.
func TestReleaseBufferKeepsErrorSticky(t *testing.T) {
	var p Parser
	bad := make([]byte, HeaderSize)
	bad[0], bad[1], bad[2], bad[3] = 0xff, 0xff, 0xff, 0x7f // oversized v1 length
	p.Feed(bad)
	if _, _, err := p.Next(); err == nil {
		t.Fatal("oversized frame must error")
	}
	p.ReleaseBuffer()
	if p.Buffered() != 0 {
		t.Fatalf("Buffered() = %d after ReleaseBuffer", p.Buffered())
	}
	// A perfectly valid frame arriving after the poison point must not
	// resurrect the stream.
	p.Feed(AppendFrame(nil, Message{ID: 9, Payload: []byte("smuggled")}))
	if m, ok, err := p.Next(); err == nil || ok {
		t.Fatalf("poisoned parser accepted a frame: %+v ok=%v err=%v", m, ok, err)
	}
	// Reset still clears the error for deliberate reuse.
	p.Reset()
	p.Feed(AppendFrame(nil, Message{ID: 1}))
	if _, ok, err := p.Next(); !ok || err != nil {
		t.Fatal("parser must recover after Reset")
	}
}

// The v2 reply encode path into a reused buffer must be allocation-free.
func TestAppendFrameV2NoAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{1}, 64)
	buf := make([]byte, 0, FrameSizeV2(len(payload)))
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendFrameV2(buf[:0], Message{ID: 7, Payload: payload, V2: true})
	})
	if allocs != 0 {
		t.Fatalf("AppendFrameV2 into reused buffer allocates %.2f/op", allocs)
	}
}
