// Package proto implements the wire framing used by the runtime's RPC
// transports. Four frame versions coexist on the same stream:
//
//   - v1 (legacy): a fixed 12-byte header — 4-byte little-endian payload
//     length, 8-byte request identifier — followed by the payload.
//   - v2: a fixed 14-byte header — 24-bit little-endian payload length,
//     a magic version byte, a flags byte, a status byte, and the 8-byte
//     request identifier — followed by the payload. The flags byte
//     carries one-way markers; the status byte carries wire-level error
//     codes, so a reply can be an error distinguishable from a payload.
//   - v3: a fixed 16-byte header — the v2 header with a 16-bit
//     little-endian method identifier inserted before the request ID.
//     The method names the operation (GET vs SET, NewOrder vs Payment)
//     at the wire layer, so servers route without inspecting payloads
//     and per-operation tail latency is observable per frame.
//   - v4: a fixed 21-byte header carrying the streaming/pub-sub frame
//     pair — SUBSCRIBE/UNSUBSCRIBE requests and server-initiated PUSH
//     frames. After the 24-bit length and Magic4 come a kind byte
//     (KindSubscribe/KindUnsubscribe/KindPush), the v2 flags and status
//     bytes, the 16-bit topic (reusing the v3 method space), a 32-bit
//     subscription identifier, and the 8-byte request identifier (which
//     a PUSH frame repurposes as the published frame's 32-bit ID). v4
//     frames never carry the deadline extension.
//
// The versions are distinguished by the fourth header byte: it is the
// most significant byte of the v1 length word, which any in-range v1
// frame leaves at 0x00 or 0x01, while every v2 frame sets it to Magic2,
// every v3 frame to Magic3, and every v4 frame to Magic4. A v1 peer
// therefore keeps round-tripping against a v2/v3/v4 server unchanged
// (though without a status channel its error replies degrade to plain
// payloads), and a malformed stream is detected exactly as before.
// Replies always mirror the request's frame version, so a peer never
// receives a header it cannot parse — and PUSH frames only ever flow to
// peers that sent a v4 SUBSCRIBE, proving they parse v4 headers.
//
// The Parser is incremental: it accepts arbitrary byte-stream fragments —
// including fragments that split a header or pipeline several back-to-back
// requests, the case §4.3 of the paper is about — and yields complete
// messages of either version in order.
//
// # Buffer ownership
//
// Parsed payloads are views into a pooled, reference-counted parse
// buffer, not copies. A Message obtained from Parser.Next (or a
// Dispatcher callback) pins its buffer until Message.Release is called;
// releasing the last reference returns the buffer to the pool for
// reuse. Consumers that never Release simply leave the buffer to the
// garbage collector — correct, just not allocation-free. A payload
// needed beyond Release must be copied first.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"zygos/internal/bufpool"
)

// HeaderSize is the fixed v1 frame-header length in bytes.
const HeaderSize = 12

// HeaderSizeV2 is the fixed v2 frame-header length in bytes.
const HeaderSizeV2 = 14

// HeaderSizeV3 is the fixed v3 frame-header length in bytes: the v2
// header plus the 16-bit method identifier.
const HeaderSizeV3 = 16

// Magic2 marks a v2 frame in the fourth header byte. Interpreted as the
// top byte of a v1 length it would announce a ~2.7 GB payload, far above
// MaxPayload, so no valid v1 frame can alias a v2 frame.
const Magic2 = 0xA2

// Magic3 marks a v3 (method-routed) frame in the fourth header byte;
// like Magic2 it can never alias an in-range v1 length word.
const Magic3 = 0xA3

// HeaderSizeV4 is the fixed v4 (streaming/pub-sub) frame-header length
// in bytes: length(3) + magic + kind + flags + status + topic(2) +
// subscription ID(4) + request/frame ID(8).
const HeaderSizeV4 = 21

// Magic4 marks a v4 (streaming/pub-sub) frame in the fourth header
// byte; like Magic2/Magic3 it can never alias an in-range v1 length
// word.
const Magic4 = 0xA4

// v4 frame kinds, carried in the fifth header byte. Zero is invalid so
// a v4 message is always distinguishable from the zero Message.
const (
	// KindSubscribe is a client request to register a subscription on a
	// topic: the payload carries the encoded backpressure options and
	// filter, the subscription ID names the client-chosen demux key for
	// future PUSH frames, and the request ID is acked by a mirrored v4
	// reply of the same kind.
	KindSubscribe uint8 = 1
	// KindUnsubscribe is a client request to retire a subscription; the
	// subscription ID names it and the request ID is acked as above.
	KindUnsubscribe uint8 = 2
	// KindPush is a server-initiated published frame: the topic and
	// subscription ID route it to the client-side handler, and the
	// request ID field carries the published frame's 32-bit ID (the
	// CAN-bus-style identifier filters match on).
	KindPush uint8 = 3
)

// MaxPayload bounds a single v1 frame's payload to keep a malformed or
// hostile peer from forcing unbounded buffering.
const MaxPayload = 16 << 20

// MethodHealth is the reserved v3 method ID of piggybacked health
// frames: a server configured for depth reporting appends one tiny
// unsolicited v3 frame (ID 0, this method, a HealthPayloadSize-byte
// payload carrying its current scheduling depth) to each egress reply
// batch bound for a v3-speaking peer. Clients that installed a depth
// hook (Dispatcher.SetDepthFunc) consume it; clients that did not drop
// it silently, since request ID 0 is never allocated. The cluster tier's
// tail-aware balancer routes on these — the in-network-scheduling
// analogue of polling Stats() queue depths, without a polling RPC.
// Application muxes must not register handlers on it.
const MethodHealth uint16 = 0xFFFF

// HealthPayloadSize is the fixed payload length of a health frame: a
// 32-bit little-endian queue depth.
const HealthPayloadSize = 4

// MaxPayloadV2 bounds a v2 frame's payload (the v2 length field is 24
// bits wide).
const MaxPayloadV2 = 1<<24 - 1

// ErrFrameTooLarge is returned when a header announces a payload larger
// than the version's maximum.
var ErrFrameTooLarge = errors.New("proto: frame exceeds maximum payload size")

// ErrPayloadTooLarge is returned by senders refusing to encode a payload
// that does not fit the frame version's length field. Encoding it anyway
// would corrupt the stream (the v2 length field is 24 bits wide).
var ErrPayloadTooLarge = errors.New("proto: payload exceeds maximum frame size")

// Frame flag bits (v2 only).
const (
	// FlagOneWay marks a request whose sender expects no reply; the
	// server executes it and sends nothing back.
	FlagOneWay uint8 = 1 << 0
	// FlagDeadline marks a v2/v3 frame carrying a trailing deadline
	// extension: a DeadlineExtSize-byte little-endian deadline budget in
	// microseconds immediately after the fixed header, before the
	// payload. The length field still counts payload bytes only, so a
	// peer that understands the flag skips the extension and an old peer
	// never sees it (the flag is only set toward servers that already
	// speak this framing — replies never carry it). The budget is the
	// *remaining* time the sender is willing to wait; each forwarding
	// tier re-stamps the frame with what is left, so downstream tiers
	// shed work the client has already given up on.
	FlagDeadline uint8 = 1 << 1
)

// DeadlineExtSize is the length of the deadline extension that follows
// the fixed v2/v3 header when FlagDeadline is set: a 32-bit
// little-endian budget in microseconds (~71 minutes max — far beyond
// any microsecond-scale SLO).
const DeadlineExtSize = 4

// Wire status codes (v2 only). A v1 reply has no status channel and is
// always implicitly StatusOK.
const (
	// StatusOK is a successful reply; the payload is the response body.
	StatusOK uint8 = 0
	// StatusAppError is an application-level error; the payload is a
	// human-readable message.
	StatusAppError uint8 = 1
	// StatusShed reports that admission control rejected the request
	// before it ran; the client may retry elsewhere or back off.
	StatusShed uint8 = 2
	// StatusInternal reports a server-side failure unrelated to the
	// request contents.
	StatusInternal uint8 = 3
	// StatusNoMethod reports that the request named a method no handler
	// is registered for (the Mux's NotFound reply).
	StatusNoMethod uint8 = 4
	// StatusDeadlineExceeded reports that the request's deadline budget
	// expired before a handler ran (shed at dispatch) or before a
	// forwarding tier was willing to send it on. The work was NOT
	// executed; the client had already given up, so the server spent
	// nothing on it.
	StatusDeadlineExceeded uint8 = 5
)

// StatusText returns a short human-readable name for a status code.
func StatusText(code uint8) string {
	switch code {
	case StatusOK:
		return "ok"
	case StatusAppError:
		return "application error"
	case StatusShed:
		return "shed by admission control"
	case StatusInternal:
		return "internal server error"
	case StatusNoMethod:
		return "no such method"
	case StatusDeadlineExceeded:
		return "deadline budget exceeded"
	}
	return fmt.Sprintf("status %d", code)
}

// ErrShed and ErrDeadlineExceeded are errors.Is targets for the two
// overload statuses, so callers can branch on "back off and retry"
// versus "the work is already useless" without unpacking *StatusError:
//
//	if errors.Is(err, proto.ErrShed) { backoff(RetryAfter(err)) }
var (
	ErrShed             = &StatusError{Code: StatusShed}
	ErrDeadlineExceeded = &StatusError{Code: StatusDeadlineExceeded}
)

// StatusError is the typed error surfaced to callers when a reply
// carries a non-OK wire status.
type StatusError struct {
	// Code is the wire status byte.
	Code uint8
	// Msg is the reply payload, by convention a human-readable message.
	Msg string
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("zygos: %s (status %d)", StatusText(e.Code), e.Code)
	}
	return fmt.Sprintf("zygos: %s (status %d): %s", StatusText(e.Code), e.Code, e.Msg)
}

// Is matches two StatusErrors by code alone, making
// errors.Is(err, ErrShed) work regardless of the message the server
// attached (e.g. the retry-after hint in a shed payload).
func (e *StatusError) Is(target error) bool {
	t, ok := target.(*StatusError)
	return ok && t.Code == e.Code
}

// Message is one framed request or response.
type Message struct {
	ID      uint64
	Payload []byte
	// Method is the v3 method identifier naming the operation the
	// request targets; zero on v1/v2 frames (the legacy route).
	Method uint16
	// Flags is the v2/v3 flags byte (FlagOneWay, ...); zero on v1 frames.
	Flags uint8
	// Status is the v2/v3 status byte; StatusOK on v1 frames.
	Status uint8
	// V2 records that the message arrived in a v2 frame, and selects the
	// version AppendMessage encodes. Replies mirror the request's
	// version so legacy peers never see a header they cannot parse.
	V2 bool
	// V3 records a v3 (method-carrying) frame; it takes precedence over
	// V2 when selecting the encoding.
	V3 bool
	// V4 records a v4 (streaming/pub-sub) frame; it takes precedence
	// over V3 and V2 when selecting the encoding. Kind and SubID are
	// meaningful only when set.
	V4 bool
	// Kind is the v4 frame kind (KindSubscribe/KindUnsubscribe/KindPush);
	// zero on non-v4 frames.
	Kind uint8
	// SubID is the v4 subscription identifier: the client-chosen demux
	// key PUSH frames are routed by, echoed on subscribe/unsubscribe
	// acks. Zero on non-v4 frames.
	SubID uint32
	// Budget is the request's remaining deadline budget in microseconds;
	// zero means no deadline. A nonzero budget on a v2/v3 message makes
	// the encoder set FlagDeadline and emit the trailing deadline
	// extension (v1 frames have no flags byte and silently drop it).
	Budget uint32

	// lease pins the parse buffer Payload points into; nil for messages
	// built by hand (whose payloads the caller owns).
	lease *parseBuf
}

// Release returns the payload's backing parse buffer to its pool once
// every message parsed from it has been released. Payload must not be
// used afterwards. Release is a no-op on hand-built messages and on the
// zero Message; call it exactly once per parsed message.
func (m *Message) Release() {
	if l := m.lease; l != nil {
		m.lease = nil
		l.release()
	}
}

// parseBuf is a pooled, reference-counted parse buffer block: the parser
// holds one reference while it is filling the block, and every Message
// whose payload views the block holds another.
type parseBuf struct {
	data []byte
	refs atomic.Int32
}

var parseBufPool = sync.Pool{New: func() any { return new(parseBuf) }}

// newParseBuf returns a block with capacity for at least n bytes and the
// caller's reference already counted.
func newParseBuf(n int) *parseBuf {
	pb := parseBufPool.Get().(*parseBuf)
	if cap(pb.data) < n {
		if pb.data != nil {
			bufpool.Put(pb.data)
		}
		pb.data = bufpool.Get(n)
	}
	pb.data = pb.data[:0]
	pb.refs.Store(1)
	return pb
}

func (pb *parseBuf) retain() { pb.refs.Add(1) }

func (pb *parseBuf) release() {
	if pb.refs.Add(-1) == 0 {
		pb.data = pb.data[:0]
		parseBufPool.Put(pb)
	}
}

// AppendFrame appends the encoded v1 frame for m to buf and returns the
// extended slice. Flags and Status do not travel in v1.
func AppendFrame(buf []byte, m Message) []byte {
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(m.Payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], m.ID)
	buf = append(buf, hdr[:]...)
	return append(buf, m.Payload...)
}

// AppendFrameV2 appends the encoded v2 frame for m to buf and returns
// the extended slice. The payload must not exceed MaxPayloadV2 — a
// longer one cannot be represented in the 24-bit length field and would
// corrupt the stream, so callers (transports, the reply path) reject it
// with ErrPayloadTooLarge before encoding; this function panics if they
// did not.
func AppendFrameV2(buf []byte, m Message) []byte {
	n := len(m.Payload)
	if n > MaxPayloadV2 {
		panic("proto: AppendFrameV2 payload exceeds MaxPayloadV2")
	}
	var hdr [HeaderSizeV2 + DeadlineExtSize]byte
	hdr[0] = byte(n)
	hdr[1] = byte(n >> 8)
	hdr[2] = byte(n >> 16)
	hdr[3] = Magic2
	hdr[4] = m.Flags
	hdr[5] = m.Status
	binary.LittleEndian.PutUint64(hdr[6:14], m.ID)
	h := HeaderSizeV2
	if m.Budget != 0 {
		hdr[4] |= FlagDeadline
		binary.LittleEndian.PutUint32(hdr[h:h+DeadlineExtSize], m.Budget)
		h += DeadlineExtSize
	}
	buf = append(buf, hdr[:h]...)
	return append(buf, m.Payload...)
}

// AppendFrameV3 appends the encoded v3 frame for m to buf and returns
// the extended slice. The same 24-bit length bound as v2 applies; see
// AppendFrameV2 for why exceeding it panics here.
func AppendFrameV3(buf []byte, m Message) []byte {
	n := len(m.Payload)
	if n > MaxPayloadV2 {
		panic("proto: AppendFrameV3 payload exceeds MaxPayloadV2")
	}
	var hdr [HeaderSizeV3 + DeadlineExtSize]byte
	hdr[0] = byte(n)
	hdr[1] = byte(n >> 8)
	hdr[2] = byte(n >> 16)
	hdr[3] = Magic3
	hdr[4] = m.Flags
	hdr[5] = m.Status
	binary.LittleEndian.PutUint16(hdr[6:8], m.Method)
	binary.LittleEndian.PutUint64(hdr[8:16], m.ID)
	h := HeaderSizeV3
	if m.Budget != 0 {
		hdr[4] |= FlagDeadline
		binary.LittleEndian.PutUint32(hdr[h:h+DeadlineExtSize], m.Budget)
		h += DeadlineExtSize
	}
	buf = append(buf, hdr[:h]...)
	return append(buf, m.Payload...)
}

// AppendFrameV4 appends the encoded v4 frame for m to buf and returns
// the extended slice. The same 24-bit length bound as v2 applies; see
// AppendFrameV2 for why exceeding it panics here. v4 frames never carry
// the deadline extension — a Budget on m is silently dropped (pushes
// and subscription control have no per-request deadline semantics).
func AppendFrameV4(buf []byte, m Message) []byte {
	n := len(m.Payload)
	if n > MaxPayloadV2 {
		panic("proto: AppendFrameV4 payload exceeds MaxPayloadV2")
	}
	var hdr [HeaderSizeV4]byte
	hdr[0] = byte(n)
	hdr[1] = byte(n >> 8)
	hdr[2] = byte(n >> 16)
	hdr[3] = Magic4
	hdr[4] = m.Kind
	hdr[5] = m.Flags
	hdr[6] = m.Status
	binary.LittleEndian.PutUint16(hdr[7:9], m.Method)
	binary.LittleEndian.PutUint32(hdr[9:13], m.SubID)
	binary.LittleEndian.PutUint64(hdr[13:21], m.ID)
	buf = append(buf, hdr[:]...)
	return append(buf, m.Payload...)
}

// AppendHealthFrame appends a piggybacked health frame carrying depth to
// buf and returns the extended slice: a v3 frame on the reserved
// MethodHealth route with request ID 0, which no dispatcher ever
// allocates, so peers without a depth hook drop it for free.
func AppendHealthFrame(buf []byte, depth uint32) []byte {
	var hdr [HeaderSizeV3 + HealthPayloadSize]byte
	hdr[0] = HealthPayloadSize
	hdr[3] = Magic3
	binary.LittleEndian.PutUint16(hdr[6:8], MethodHealth)
	binary.LittleEndian.PutUint32(hdr[16:20], depth)
	return append(buf, hdr[:]...)
}

// DecodeHealthPayload extracts the depth from a health frame's payload;
// ok is false if the payload is malformed.
func DecodeHealthPayload(p []byte) (depth uint32, ok bool) {
	if len(p) != HealthPayloadSize {
		return 0, false
	}
	return binary.LittleEndian.Uint32(p), true
}

// AppendMessage encodes m in the frame version indicated by
// m.V4/m.V3/m.V2 (newest wins; none selected means v1).
func AppendMessage(buf []byte, m Message) []byte {
	if m.V4 {
		return AppendFrameV4(buf, m)
	}
	if m.V3 {
		return AppendFrameV3(buf, m)
	}
	if m.V2 {
		return AppendFrameV2(buf, m)
	}
	return AppendFrame(buf, m)
}

// FrameSize returns the encoded size of a v1 frame carrying n payload
// bytes.
func FrameSize(n int) int { return HeaderSize + n }

// FrameSizeV2 returns the encoded size of a v2 frame carrying n payload
// bytes.
func FrameSizeV2(n int) int { return HeaderSizeV2 + n }

// FrameSizeV3 returns the encoded size of a v3 frame carrying n payload
// bytes.
func FrameSizeV3(n int) int { return HeaderSizeV3 + n }

// FrameSizeV4 returns the encoded size of a v4 frame carrying n payload
// bytes.
func FrameSizeV4(n int) int { return HeaderSizeV4 + n }

// FrameSizeMsg returns the exact encoded size of m under AppendMessage,
// including the deadline extension when m.Budget is set — transports
// size pooled encode buffers with it so a budget-stamped frame never
// reallocates out of its pool class mid-append.
func FrameSizeMsg(m Message) int {
	n := len(m.Payload)
	switch {
	case m.V4:
		return HeaderSizeV4 + n // v4 never carries the deadline extension
	case m.V3:
		n += HeaderSizeV3
	case m.V2:
		n += HeaderSizeV2
	default:
		return HeaderSize + n // v1 cannot carry a budget
	}
	if m.Budget != 0 {
		n += DeadlineExtSize
	}
	return n
}

// Parser incrementally decodes a frame stream carrying any mix of v1,
// v2 and v3 frames. The zero value is ready to use.
//
// Payloads returned by Next are views into the parser's pooled buffer;
// see the package comment for the ownership rules. The parser never
// moves or reuses bytes that an unreleased Message can still observe:
// in-place compaction and reuse happen only while the parser holds the
// buffer's sole reference, otherwise it migrates to a fresh block and
// leaves the old one pinned by its messages.
type Parser struct {
	pb    *parseBuf
	start int // offset of the first unparsed byte in pb.data
	err   error
}

// Feed appends stream bytes to the parser. Call Next until it reports no
// more messages.
func (p *Parser) Feed(data []byte) {
	if p.err != nil || len(data) == 0 {
		return
	}
	if p.pb == nil {
		p.pb = newParseBuf(len(data))
	}
	pb := p.pb
	if len(pb.data)+len(data) > cap(pb.data) {
		unparsed := len(pb.data) - p.start
		if p.start > 0 && pb.refs.Load() == 1 {
			// Sole owner: compact the unparsed tail in place. This is the
			// steady-state path under pipelining — one memmove per buffer
			// wrap instead of one per consumed frame.
			copy(pb.data, pb.data[p.start:])
			pb.data = pb.data[:unparsed]
			p.start = 0
		}
		if len(pb.data)+len(data) > cap(pb.data) {
			// Still too small (or outstanding payload views forbid moving
			// bytes): migrate the unparsed tail to a larger block. Old
			// blocks stay alive exactly as long as their messages do.
			npb := newParseBuf(unparsed + len(data))
			npb.data = append(npb.data, pb.data[p.start:]...)
			p.pb = npb
			p.start = 0
			pb.release()
			pb = npb
		}
	}
	pb.data = append(pb.data, data...)
}

// Next returns the next complete message, if any. The returned payload
// is a view into the parser's pooled buffer and is valid until
// Message.Release; it returns an error if the stream is malformed.
func (p *Parser) Next() (Message, bool, error) {
	if p.err != nil {
		return Message{}, false, p.err
	}
	if p.buffered() < HeaderSize {
		return Message{}, false, nil
	}
	buf := p.pb.data[p.start:]
	if buf[3] == Magic2 {
		return p.nextV2(buf)
	}
	if buf[3] == Magic3 {
		return p.nextV3(buf)
	}
	if buf[3] == Magic4 {
		return p.nextV4(buf)
	}
	n := int(binary.LittleEndian.Uint32(buf[0:4]))
	if n > MaxPayload {
		p.err = fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
		return Message{}, false, p.err
	}
	if len(buf) < HeaderSize+n {
		return Message{}, false, nil
	}
	m := Message{
		ID:      binary.LittleEndian.Uint64(buf[4:12]),
		Payload: p.view(buf, HeaderSize, n),
	}
	if m.Payload != nil {
		m.lease = p.pb
	}
	p.consume(HeaderSize+n, m.Payload != nil)
	return m, true, nil
}

// nextV2 decodes a v2 frame; the caller has verified the magic byte and
// that at least HeaderSize bytes are buffered. buf is pb.data[start:].
func (p *Parser) nextV2(buf []byte) (Message, bool, error) {
	// The flags byte is within the guaranteed HeaderSize prefix, so the
	// deadline extension's presence is decidable before the full header
	// has arrived.
	hdr := HeaderSizeV2
	if buf[4]&FlagDeadline != 0 {
		hdr += DeadlineExtSize
	}
	if len(buf) < hdr {
		return Message{}, false, nil
	}
	n := int(buf[0]) | int(buf[1])<<8 | int(buf[2])<<16
	if len(buf) < hdr+n {
		return Message{}, false, nil
	}
	m := Message{
		// FlagDeadline is framing metadata, not message state: Budget
		// carries the value, and the encoder re-derives the flag from it,
		// so a re-stamped forward never emits the flag without the bytes.
		Flags:   buf[4] &^ FlagDeadline,
		Status:  buf[5],
		ID:      binary.LittleEndian.Uint64(buf[6:14]),
		Payload: p.view(buf, hdr, n),
		V2:      true,
	}
	if hdr > HeaderSizeV2 {
		m.Budget = binary.LittleEndian.Uint32(buf[HeaderSizeV2 : HeaderSizeV2+DeadlineExtSize])
	}
	if m.Payload != nil {
		m.lease = p.pb
	}
	p.consume(hdr+n, m.Payload != nil)
	return m, true, nil
}

// nextV3 decodes a v3 frame; the caller has verified the magic byte and
// that at least HeaderSize bytes are buffered. buf is pb.data[start:].
func (p *Parser) nextV3(buf []byte) (Message, bool, error) {
	hdr := HeaderSizeV3
	if buf[4]&FlagDeadline != 0 {
		hdr += DeadlineExtSize
	}
	if len(buf) < hdr {
		return Message{}, false, nil
	}
	n := int(buf[0]) | int(buf[1])<<8 | int(buf[2])<<16
	if len(buf) < hdr+n {
		return Message{}, false, nil
	}
	m := Message{
		Flags:   buf[4] &^ FlagDeadline,
		Status:  buf[5],
		Method:  binary.LittleEndian.Uint16(buf[6:8]),
		ID:      binary.LittleEndian.Uint64(buf[8:16]),
		Payload: p.view(buf, hdr, n),
		V3:      true,
	}
	if hdr > HeaderSizeV3 {
		m.Budget = binary.LittleEndian.Uint32(buf[HeaderSizeV3 : HeaderSizeV3+DeadlineExtSize])
	}
	if m.Payload != nil {
		m.lease = p.pb
	}
	p.consume(hdr+n, m.Payload != nil)
	return m, true, nil
}

// nextV4 decodes a v4 (streaming/pub-sub) frame; the caller has
// verified the magic byte and that at least HeaderSize bytes are
// buffered. buf is pb.data[start:]. v4 has no deadline extension, so
// the header size is fixed.
func (p *Parser) nextV4(buf []byte) (Message, bool, error) {
	if len(buf) < HeaderSizeV4 {
		return Message{}, false, nil
	}
	kind := buf[4]
	if kind != KindSubscribe && kind != KindUnsubscribe && kind != KindPush {
		p.err = fmt.Errorf("proto: invalid v4 frame kind %d", kind)
		return Message{}, false, p.err
	}
	n := int(buf[0]) | int(buf[1])<<8 | int(buf[2])<<16
	if len(buf) < HeaderSizeV4+n {
		return Message{}, false, nil
	}
	m := Message{
		Kind:    kind,
		Flags:   buf[5] &^ FlagDeadline,
		Status:  buf[6],
		Method:  binary.LittleEndian.Uint16(buf[7:9]),
		SubID:   binary.LittleEndian.Uint32(buf[9:13]),
		ID:      binary.LittleEndian.Uint64(buf[13:21]),
		Payload: p.view(buf, HeaderSizeV4, n),
		V4:      true,
	}
	if m.Payload != nil {
		m.lease = p.pb
	}
	p.consume(HeaderSizeV4+n, m.Payload != nil)
	return m, true, nil
}

// view returns the n-byte payload at offset off of buf as a
// capacity-clamped slice so appends by the consumer can never scribble
// over neighbouring frames. Empty payloads take no buffer reference.
func (p *Parser) view(buf []byte, off, n int) []byte {
	if n == 0 {
		return nil
	}
	return buf[off : off+n : off+n]
}

// consume advances past one decoded frame of total size n; leased
// records whether the yielded message took a payload view (and must be
// handed a reference with it).
func (p *Parser) consume(n int, leased bool) {
	if leased {
		p.pb.retain()
	}
	p.start += n
	if p.start == len(p.pb.data) {
		// Fully parsed. If no payload views are outstanding, rewind the
		// block in place; otherwise drop our reference and start fresh on
		// the next Feed — the block returns to the pool when its last
		// message releases it.
		if p.pb.refs.Load() == 1 {
			p.pb.data = p.pb.data[:0]
		} else {
			p.pb.release()
			p.pb = nil
		}
		p.start = 0
	}
}

// buffered is Buffered without the nil check indirection.
func (p *Parser) buffered() int {
	if p.pb == nil {
		return 0
	}
	return len(p.pb.data) - p.start
}

// Buffered reports how many undecoded bytes the parser is holding.
func (p *Parser) Buffered() int { return p.buffered() }

// ReleaseBuffer discards buffered bytes and drops the parser's hold on
// its pooled block (outstanding payload views keep it alive), while
// preserving any sticky parse error. A poisoned connection uses it to
// give its memory back without reopening the stream: keeping the error
// sticky means bytes queued behind a malformed frame are never
// re-parsed from an arbitrary mid-stream offset.
func (p *Parser) ReleaseBuffer() {
	if p.pb != nil {
		p.pb.release()
		p.pb = nil
	}
	p.start = 0
}

// Reset discards buffered bytes and any sticky error, returning the
// parse buffer to its pool if no payload views are outstanding.
func (p *Parser) Reset() {
	p.ReleaseBuffer()
	p.err = nil
}
