// Package proto implements the wire framing used by the runtime's RPC
// transports: a fixed 12-byte header (4-byte little-endian payload length,
// 8-byte request identifier) followed by the payload.
//
// The Parser is incremental: it accepts arbitrary byte-stream fragments —
// including fragments that split a header or pipeline several back-to-back
// requests, the case §4.3 of the paper is about — and yields complete
// messages in order.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeaderSize is the fixed frame-header length in bytes.
const HeaderSize = 12

// MaxPayload bounds a single frame's payload to keep a malformed or
// hostile peer from forcing unbounded buffering.
const MaxPayload = 16 << 20

// ErrFrameTooLarge is returned when a header announces a payload larger
// than MaxPayload.
var ErrFrameTooLarge = errors.New("proto: frame exceeds maximum payload size")

// Message is one framed request or response.
type Message struct {
	ID      uint64
	Payload []byte
}

// AppendFrame appends the encoded frame for m to buf and returns the
// extended slice.
func AppendFrame(buf []byte, m Message) []byte {
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(m.Payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], m.ID)
	buf = append(buf, hdr[:]...)
	return append(buf, m.Payload...)
}

// FrameSize returns the encoded size of a frame carrying n payload bytes.
func FrameSize(n int) int { return HeaderSize + n }

// Parser incrementally decodes a frame stream. The zero value is ready to
// use.
type Parser struct {
	buf []byte
	err error
}

// Feed appends stream bytes to the parser. Call Next until it reports no
// more messages.
func (p *Parser) Feed(data []byte) {
	if p.err != nil {
		return
	}
	p.buf = append(p.buf, data...)
}

// Next returns the next complete message, if any. The returned payload is
// a copy and remains valid after further Feed calls. It returns an error
// if the stream is malformed.
func (p *Parser) Next() (Message, bool, error) {
	if p.err != nil {
		return Message{}, false, p.err
	}
	if len(p.buf) < HeaderSize {
		return Message{}, false, nil
	}
	n := int(binary.LittleEndian.Uint32(p.buf[0:4]))
	if n > MaxPayload {
		p.err = fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
		return Message{}, false, p.err
	}
	if len(p.buf) < HeaderSize+n {
		return Message{}, false, nil
	}
	m := Message{
		ID:      binary.LittleEndian.Uint64(p.buf[4:12]),
		Payload: append([]byte(nil), p.buf[HeaderSize:HeaderSize+n]...),
	}
	// Shift the consumed frame out. Copy-down keeps the buffer from
	// growing without bound under pipelining.
	rest := len(p.buf) - (HeaderSize + n)
	copy(p.buf, p.buf[HeaderSize+n:])
	p.buf = p.buf[:rest]
	return m, true, nil
}

// Buffered reports how many undecoded bytes the parser is holding.
func (p *Parser) Buffered() int { return len(p.buf) }

// Reset discards buffered bytes and any sticky error.
func (p *Parser) Reset() {
	p.buf = p.buf[:0]
	p.err = nil
}
