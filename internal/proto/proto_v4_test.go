package proto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestV4RoundTrip(t *testing.T) {
	var p Parser
	frame := AppendFrameV4(nil, Message{
		ID:      901,
		Method:  0x0CAF,
		SubID:   0xDEADBEEF,
		Kind:    KindPush,
		Payload: []byte("v4 body"),
		Status:  StatusOK,
	})
	if len(frame) != FrameSizeV4(7) {
		t.Fatalf("encoded length %d, want %d", len(frame), FrameSizeV4(7))
	}
	p.Feed(frame)
	m, ok, err := p.Next()
	if err != nil || !ok {
		t.Fatalf("Next: %v %v", ok, err)
	}
	if m.ID != 901 || m.Method != 0x0CAF || m.SubID != 0xDEADBEEF ||
		m.Kind != KindPush || string(m.Payload) != "v4 body" ||
		!m.V4 || m.V2 || m.V3 {
		t.Fatalf("got %+v", m)
	}
	if p.Buffered() != 0 {
		t.Fatal("buffer should be empty")
	}
}

func TestV4ByteAtATime(t *testing.T) {
	var p Parser
	frame := AppendFrameV4(nil, Message{ID: 5, Method: 3, SubID: 17, Kind: KindSubscribe, Payload: []byte("fragmented-v4")})
	for _, b := range frame {
		if _, ok, _ := p.Next(); ok {
			t.Fatal("message completed early")
		}
		p.Feed([]byte{b})
	}
	m, ok, err := p.Next()
	if err != nil || !ok || string(m.Payload) != "fragmented-v4" || m.SubID != 17 || m.Kind != KindSubscribe {
		t.Fatalf("got %+v ok=%v err=%v", m, ok, err)
	}
}

// No valid v1 frame can alias the v4 magic, exactly as for v2/v3.
func TestMagic4DoesNotAliasV1(t *testing.T) {
	aliased := uint32(Magic4) << 24
	if aliased <= MaxPayload {
		t.Fatalf("magic-aliased v1 length %d must exceed MaxPayload %d", aliased, MaxPayload)
	}
}

// An invalid v4 kind (0 or >3) poisons the stream: garbage can't be
// silently misrouted as control traffic.
func TestV4InvalidKindPoisons(t *testing.T) {
	for _, kind := range []uint8{0, 4, 0xFF} {
		var p Parser
		frame := AppendFrameV4(nil, Message{ID: 1, Kind: KindPush})
		frame[4] = kind
		p.Feed(frame)
		if _, _, err := p.Next(); err == nil {
			t.Errorf("kind %d: expected a parse error", kind)
		}
		// The error is sticky.
		if _, _, err := p.Next(); err == nil {
			t.Errorf("kind %d: error must be sticky", kind)
		}
	}
}

// AppendMessage prefers v4 over v3/v2 when set; FrameSizeMsg agrees and
// v4 never grows a deadline extension even with FlagDeadline set.
func TestV4VersionSelectionAndSize(t *testing.T) {
	m := Message{ID: 2, Method: 9, SubID: 3, Kind: KindUnsubscribe, Payload: []byte("xy"),
		V2: true, V3: true, V4: true, Flags: FlagDeadline, Budget: 1000}
	f := AppendMessage(nil, m)
	if f[3] != Magic4 || len(f) != FrameSizeV4(2) {
		t.Fatalf("V4 must win version selection, got magic %#x len %d", f[3], len(f))
	}
	if got := FrameSizeMsg(m); got != len(f) {
		t.Fatalf("FrameSizeMsg = %d, want %d", got, len(f))
	}
	var p Parser
	p.Feed(f)
	got, ok, err := p.Next()
	if err != nil || !ok {
		t.Fatalf("Next: %v %v", ok, err)
	}
	if !got.V4 || got.Kind != KindUnsubscribe || got.SubID != 3 || got.Method != 9 ||
		got.Flags&FlagDeadline != 0 || got.Budget != 0 {
		t.Fatalf("got %+v (v4 must not carry a deadline extension)", got)
	}
}

// Property: streams mixing all four frame versions, fed in arbitrary
// chunk sizes, decode in order with subscription IDs and kinds intact.
func TestV4RandomSplitRoundTrip(t *testing.T) {
	f := func(payloads [][]byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var stream []byte
		var want []Message
		for i, pl := range payloads {
			if len(pl) > 1024 {
				pl = pl[:1024]
			}
			m := Message{ID: uint64(i), Payload: pl}
			switch rng.Intn(4) {
			case 0:
				m.V4 = true
				m.Kind = uint8(1 + rng.Intn(3))
				m.SubID = rng.Uint32()
				m.Method = uint16(rng.Intn(1 << 16))
				m.Status = uint8(rng.Intn(5))
			case 1:
				m.V3 = true
				m.Method = uint16(rng.Intn(1 << 16))
				m.Flags = uint8(rng.Intn(2))
				m.Status = uint8(rng.Intn(5))
			case 2:
				m.V2 = true
				m.Flags = uint8(rng.Intn(2))
				m.Status = uint8(rng.Intn(5))
			}
			want = append(want, m)
			stream = AppendMessage(stream, m)
		}
		var p Parser
		var got []Message
		for off := 0; off < len(stream); {
			n := 1 + rng.Intn(37)
			if off+n > len(stream) {
				n = len(stream) - off
			}
			p.Feed(stream[off : off+n])
			off += n
			for {
				m, ok, err := p.Next()
				if err != nil {
					return false
				}
				if !ok {
					break
				}
				got = append(got, m)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i, m := range got {
			w := want[i]
			if m.ID != w.ID || !bytes.Equal(m.Payload, w.Payload) ||
				m.V2 != w.V2 || m.V3 != w.V3 || m.V4 != w.V4 ||
				m.Method != w.Method || m.SubID != w.SubID || m.Kind != w.Kind ||
				m.Flags != w.Flags || m.Status != w.Status {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseV4(b *testing.B) {
	frame := AppendFrameV4(nil, Message{ID: 1, Method: 2, SubID: 3, Kind: KindPush, Payload: make([]byte, 64)})
	var p Parser
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Feed(frame)
		if _, ok, _ := p.Next(); !ok {
			b.Fatal("missing message")
		}
	}
}
