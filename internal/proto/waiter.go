package proto

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCallTimeout is returned by deadline-bounded blocking calls whose
// reply did not arrive in time. The late reply, if it ever lands, is
// discarded at the waiter without touching the caller's buffer.
var ErrCallTimeout = errors.New("proto: call deadline exceeded")

// waitResult carries one reply from the dispatcher callback to the
// blocked caller.
type waitResult struct {
	resp []byte
	err  error
}

// Waiter lifecycle states. A waiter starts pending; the transport
// callback CASes pending→delivering to claim delivery, and Abandon or a
// deadline expiry CASes pending→abandoned to disclaim it. Exactly one
// side wins, which is what makes a timed-out call safe: the late
// callback loses the CAS and drops its reply (a view into a pooled
// parse buffer the dispatcher releases as usual) instead of appending
// into a buffer the caller has already taken back.
const (
	waitPending uint32 = iota
	waitDelivering
	waitAbandoned
)

// Waiter is a pooled rendezvous for blocking calls built on an async
// SendAsync primitive: it owns a reusable one-slot channel and a
// pre-bound callback, so a closed-loop Call/CallInto round trip performs
// no allocations at steady state.
//
// Usage: w := GetWaiter(buf); pass w.Callback() to SendAsync; if the
// send failed call w.Abandon(), otherwise return w.Wait() (or
// w.WaitTimeout(d) for a deadline-bounded call).
type Waiter struct {
	ch    chan waitResult
	buf   []byte
	cb    func(resp []byte, err error)
	state atomic.Uint32
}

var waiterPool = sync.Pool{New: func() any {
	w := &Waiter{ch: make(chan waitResult, 1)}
	// Bind the method value once; reusing it across calls keeps the
	// callback allocation out of the hot path.
	w.cb = w.deliver
	return w
}}

// GetWaiter returns a waiter that will append the reply payload to buf
// (which may be nil to allocate a fresh reply slice).
func GetWaiter(buf []byte) *Waiter {
	w := waiterPool.Get().(*Waiter)
	w.buf = buf
	w.state.Store(waitPending)
	return w
}

// Callback returns the function to hand to SendAsync. It copies the
// reply out of the transport's parse buffer, so the reply outlives the
// callback scope.
func (w *Waiter) Callback() func(resp []byte, err error) { return w.cb }

func (w *Waiter) deliver(resp []byte, err error) {
	if !w.state.CompareAndSwap(waitPending, waitDelivering) {
		// Abandoned (send failure or deadline expiry): the reply is
		// dropped here; the transport still owns and releases resp.
		return
	}
	if err != nil {
		w.ch <- waitResult{nil, err}
		return
	}
	w.ch <- waitResult{append(w.buf, resp...), nil}
}

// Wait blocks for the reply and returns the waiter to the pool.
func (w *Waiter) Wait() ([]byte, error) {
	r := <-w.ch
	w.buf = nil
	waiterPool.Put(w)
	return r.resp, r.err
}

// WaitTimeout blocks for the reply at most d; d <= 0 means no deadline.
// On expiry it returns ErrCallTimeout immediately and the waiter is
// retired unpooled — its callback stays bound to this dead instance, so
// a straggling reply can never be delivered into a recycled waiter
// serving some other call (the ID-demux corruption a naive pool reuse
// would invite).
func (w *Waiter) WaitTimeout(d time.Duration) ([]byte, error) {
	if d <= 0 {
		return w.Wait()
	}
	t := time.NewTimer(d)
	select {
	case r := <-w.ch:
		t.Stop()
		w.buf = nil
		waiterPool.Put(w)
		return r.resp, r.err
	case <-t.C:
	}
	if !w.state.CompareAndSwap(waitPending, waitAbandoned) {
		// The callback won the race and is committed to (or already done)
		// sending; take the reply rather than dropping a delivered result.
		r := <-w.ch
		w.buf = nil
		waiterPool.Put(w)
		return r.resp, r.err
	}
	w.buf = nil
	return nil, ErrCallTimeout
}

// Abandon discards a waiter whose callback may still fire (the send
// failed after registration). The waiter is intentionally NOT pooled: a
// late callback must land in this instance, not in a recycled one.
func (w *Waiter) Abandon() {
	if w.state.CompareAndSwap(waitPending, waitAbandoned) {
		w.buf = nil
	}
}
