package proto

import "sync"

// waitResult carries one reply from the dispatcher callback to the
// blocked caller.
type waitResult struct {
	resp []byte
	err  error
}

// Waiter is a pooled rendezvous for blocking calls built on an async
// SendAsync primitive: it owns a reusable one-slot channel and a
// pre-bound callback, so a closed-loop Call/CallInto round trip performs
// no allocations at steady state.
//
// Usage: w := GetWaiter(buf); pass w.Callback() to SendAsync; if the
// send failed call w.Abandon(), otherwise return w.Wait().
type Waiter struct {
	ch  chan waitResult
	buf []byte
	cb  func(resp []byte, err error)
}

var waiterPool = sync.Pool{New: func() any {
	w := &Waiter{ch: make(chan waitResult, 1)}
	// Bind the method value once; reusing it across calls keeps the
	// callback allocation out of the hot path.
	w.cb = w.deliver
	return w
}}

// GetWaiter returns a waiter that will append the reply payload to buf
// (which may be nil to allocate a fresh reply slice).
func GetWaiter(buf []byte) *Waiter {
	w := waiterPool.Get().(*Waiter)
	w.buf = buf
	return w
}

// Callback returns the function to hand to SendAsync. It copies the
// reply out of the transport's parse buffer, so the reply outlives the
// callback scope.
func (w *Waiter) Callback() func(resp []byte, err error) { return w.cb }

func (w *Waiter) deliver(resp []byte, err error) {
	if err != nil {
		w.ch <- waitResult{nil, err}
		return
	}
	w.ch <- waitResult{append(w.buf, resp...), nil}
}

// Wait blocks for the reply and returns the waiter to the pool.
func (w *Waiter) Wait() ([]byte, error) {
	r := <-w.ch
	w.buf = nil
	waiterPool.Put(w)
	return r.resp, r.err
}

// Abandon discards a waiter whose callback may still fire (the send
// failed after registration). The waiter is intentionally NOT pooled: a
// late callback must land in this instance, not in a recycled one.
func (w *Waiter) Abandon() {
	w.buf = nil
}
