package proto

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestV2RoundTrip(t *testing.T) {
	var p Parser
	frame := AppendFrameV2(nil, Message{
		ID:      99,
		Payload: []byte("v2 body"),
		Flags:   FlagOneWay,
		Status:  StatusShed,
	})
	if len(frame) != FrameSizeV2(7) {
		t.Fatalf("encoded length %d, want %d", len(frame), FrameSizeV2(7))
	}
	p.Feed(frame)
	m, ok, err := p.Next()
	if err != nil || !ok {
		t.Fatalf("Next: %v %v", ok, err)
	}
	if m.ID != 99 || string(m.Payload) != "v2 body" || m.Flags != FlagOneWay || m.Status != StatusShed || !m.V2 {
		t.Fatalf("got %+v", m)
	}
	if p.Buffered() != 0 {
		t.Fatal("buffer should be empty")
	}
}

func TestV2ByteAtATime(t *testing.T) {
	var p Parser
	frame := AppendFrameV2(nil, Message{ID: 5, Payload: []byte("fragmented-v2"), Status: StatusAppError})
	for _, b := range frame {
		if _, ok, _ := p.Next(); ok {
			t.Fatal("message completed early")
		}
		p.Feed([]byte{b})
	}
	m, ok, err := p.Next()
	if err != nil || !ok || string(m.Payload) != "fragmented-v2" || m.Status != StatusAppError {
		t.Fatalf("got %+v ok=%v err=%v", m, ok, err)
	}
}

// A stream may interleave v1 and v2 frames; the parser must decode both
// in order and tag each with its version.
func TestMixedVersionStream(t *testing.T) {
	var stream []byte
	for i := 0; i < 40; i++ {
		m := Message{ID: uint64(i), Payload: bytes.Repeat([]byte{byte(i)}, i%7), V2: i%2 == 0}
		if m.V2 {
			m.Status = uint8(i % 4)
		}
		stream = AppendMessage(stream, m)
	}
	var p Parser
	p.Feed(stream)
	for i := 0; i < 40; i++ {
		m, ok, err := p.Next()
		if err != nil || !ok {
			t.Fatalf("message %d missing: %v", i, err)
		}
		if m.ID != uint64(i) || len(m.Payload) != i%7 {
			t.Fatalf("message %d corrupted: %+v", i, m)
		}
		if m.V2 != (i%2 == 0) {
			t.Fatalf("message %d version tag wrong: %+v", i, m)
		}
		if m.V2 && m.Status != uint8(i%4) {
			t.Fatalf("message %d status lost: %+v", i, m)
		}
	}
}

// No valid v1 frame can alias the v2 magic: the fourth byte of a v1
// header is the top byte of the length, and any length whose top byte is
// Magic2 exceeds MaxPayload.
func TestMagicDoesNotAliasV1(t *testing.T) {
	aliased := uint32(Magic2) << 24
	if aliased <= MaxPayload {
		t.Fatalf("magic-aliased v1 length %d must exceed MaxPayload %d", aliased, MaxPayload)
	}
	f := AppendFrame(nil, Message{ID: 1, Payload: make([]byte, MaxPayload)})
	if f[3] == Magic2 {
		t.Fatal("maximum v1 frame must not carry the v2 magic byte")
	}
}

func TestV2EmptyPayloadAndOneWay(t *testing.T) {
	var p Parser
	p.Feed(AppendFrameV2(nil, Message{ID: 0, Flags: FlagOneWay}))
	m, ok, err := p.Next()
	if err != nil || !ok || m.ID != 0 || len(m.Payload) != 0 || m.Flags&FlagOneWay == 0 {
		t.Fatalf("got %+v ok=%v err=%v", m, ok, err)
	}
}

func TestStatusErrorAndText(t *testing.T) {
	e := &StatusError{Code: StatusShed, Msg: "queue full"}
	if e.Error() == "" || StatusText(StatusShed) == "" {
		t.Fatal("empty renderings")
	}
	var se *StatusError
	var err error = e
	if !errors.As(err, &se) || se.Code != StatusShed {
		t.Fatal("errors.As must match StatusError")
	}
	if StatusText(200) == "" {
		t.Fatal("unknown codes must still render")
	}
	if (&StatusError{Code: StatusInternal}).Error() == "" {
		t.Fatal("message-less errors must render")
	}
}

// Property: mixed-version streams fed in arbitrary chunk sizes decode
// identically (the v2 analogue of TestRandomSplitRoundTrip).
func TestV2RandomSplitRoundTrip(t *testing.T) {
	f := func(payloads [][]byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var stream []byte
		var want []Message
		for i, pl := range payloads {
			if len(pl) > 1024 {
				pl = pl[:1024]
			}
			m := Message{ID: uint64(i), Payload: pl, V2: rng.Intn(2) == 0}
			if m.V2 {
				m.Flags = uint8(rng.Intn(2))
				m.Status = uint8(rng.Intn(4))
			}
			want = append(want, m)
			stream = AppendMessage(stream, m)
		}
		var p Parser
		var got []Message
		for off := 0; off < len(stream); {
			n := 1 + rng.Intn(37)
			if off+n > len(stream) {
				n = len(stream) - off
			}
			p.Feed(stream[off : off+n])
			off += n
			for {
				m, ok, err := p.Next()
				if err != nil {
					return false
				}
				if !ok {
					break
				}
				got = append(got, m)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i, m := range got {
			w := want[i]
			if m.ID != w.ID || !bytes.Equal(m.Payload, w.Payload) || m.V2 != w.V2 || m.Flags != w.Flags || m.Status != w.Status {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseV2(b *testing.B) {
	frame := AppendFrameV2(nil, Message{ID: 1, Payload: make([]byte, 64)})
	var p Parser
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Feed(frame)
		if _, ok, _ := p.Next(); !ok {
			b.Fatal("missing message")
		}
	}
}
