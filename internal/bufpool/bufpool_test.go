package bufpool

import (
	"sync"
	"testing"
)

func TestGetCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 4096, 1 << 20, 1<<20 + 1, 32 << 20} {
		b := Get(n)
		if len(b) != 0 {
			t.Fatalf("Get(%d): len %d, want 0", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("Get(%d): cap %d too small", n, cap(b))
		}
		Put(b)
	}
}

func TestRecycle(t *testing.T) {
	b := Get(1000)
	b = append(b, 1, 2, 3)
	Put(b)
	c := Get(900)
	if cap(c) < 900 {
		t.Fatalf("recycled cap %d", cap(c))
	}
	if len(c) != 0 {
		t.Fatalf("recycled buffer has len %d", len(c))
	}
}

// A pooled buffer must never be handed to a Get that needs more capacity
// than it has.
func TestPutSmallerThanClassNeverServesBiggerGet(t *testing.T) {
	// A 300-cap buffer belongs to the 256 class; a Get(1024) must not
	// receive it.
	Put(make([]byte, 0, 300))
	b := Get(1024)
	if cap(b) < 1024 {
		t.Fatalf("Get(1024) got cap %d", cap(b))
	}
}

func TestSteadyStateNoAllocs(t *testing.T) {
	b := Get(512)
	Put(b)
	allocs := testing.AllocsPerRun(1000, func() {
		x := Get(512)
		Put(x)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f/op", allocs)
	}
}

func TestConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := Get(1 << (8 + i%8))
				b = append(b, byte(i))
				Put(b)
			}
		}()
	}
	wg.Wait()
}
