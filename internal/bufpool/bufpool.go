// Package bufpool provides size-classed pools of byte slices for the
// runtime's hot path. Every per-request buffer — ingress segments, frame
// encodes, parser blocks, TX batches — cycles through here, so a server
// in steady state performs no per-request heap allocations.
//
// The pools are plain locked freelists rather than sync.Pool: Put must
// not allocate (boxing a []byte in an interface does), and the freelists
// are bounded so an idle server does not pin a burst's worth of memory.
package bufpool

import "sync"

// Outstanding reports gets minus puts: how many pooled buffers are
// currently checked out across the process. The counters live inside
// each freelist, under the lock Get/Put already take, so the accounting
// adds no shared cache line to the hot path; oversized checkouts (beyond
// the largest class) are credited to the largest class, mirroring where
// Put credits their return. Components that legitimately retain buffers
// (per-connection parser blocks, TX scratch) keep it nonzero while
// alive; leak tests compare snapshots across a full setup/teardown cycle
// rather than asserting absolute zero.
func Outstanding() int64 {
	var n int64
	for i := range pools {
		p := &pools[i]
		p.mu.Lock()
		n += p.gets - p.puts
		p.mu.Unlock()
	}
	return n
}

// InventoryBytes reports the bytes currently retained by the freelists —
// pooled capacity sitting idle, the figure the transport's idle-memory
// accounting reports alongside per-connection residency. Checked-out
// buffers are not counted; see Outstanding for those.
func InventoryBytes() int64 {
	var n int64
	for i := range pools {
		p := &pools[i]
		p.mu.Lock()
		n += int64(len(p.bufs)) * int64(classes[i])
		p.mu.Unlock()
	}
	return n
}

// Trim discards all idle pooled buffers, handing their memory back to
// the garbage collector. Callers use it after a connection burst has
// drained, when the freelists hold a peak's worth of inventory a
// long-idle process should not pin. Checked-out buffers are unaffected
// and still return to the (now empty) freelists on Put.
func Trim() {
	for i := range pools {
		p := &pools[i]
		p.mu.Lock()
		for j := range p.bufs {
			p.bufs[j] = nil
		}
		p.bufs = p.bufs[:0]
		p.mu.Unlock()
	}
}

// classes are the pooled capacity classes. Get rounds requests up to the
// next class; larger requests are allocated exactly and never pooled.
var classes = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// classBudget bounds each freelist by retained bytes rather than buffer
// count: a pipelined window keeps hundreds of small buffers in flight at
// once, and dropping them on Put would turn every window into a fresh
// allocation burst. Small classes therefore hold many buffers, large
// classes few; the worst case across all classes is ~20 MB, reached
// only after traffic actually used that much at once.
const classBudget = 2 << 20

// maxPerClass and minPerClass clamp the per-class buffer count derived
// from the byte budget.
const (
	maxPerClass = 4096
	minPerClass = 8
)

type freelist struct {
	mu         sync.Mutex
	bufs       [][]byte
	max        int
	gets, puts int64 // checkout accounting, guarded by mu
}

var pools = func() (p [len(classes)]freelist) {
	for i, c := range classes {
		n := classBudget / c
		if n < minPerClass {
			n = minPerClass
		}
		if n > maxPerClass {
			n = maxPerClass
		}
		p[i].max = n
	}
	return
}()

// classFor returns the index of the smallest class with capacity >= n,
// or -1 when n exceeds the largest class.
func classFor(n int) int {
	for i, c := range classes {
		if n <= c {
			return i
		}
	}
	return -1
}

// Get returns a zero-length slice with capacity at least n. The buffer
// contents are unspecified beyond length zero.
func Get(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		// Oversized: allocated exactly, never pooled. Its checkout is
		// credited to the largest class because that is where Put will
		// credit its return (the capacity matches that class's test).
		p := &pools[len(pools)-1]
		p.mu.Lock()
		p.gets++
		p.mu.Unlock()
		return make([]byte, 0, n)
	}
	p := &pools[ci]
	p.mu.Lock()
	p.gets++
	if last := len(p.bufs) - 1; last >= 0 {
		b := p.bufs[last]
		p.bufs[last] = nil
		p.bufs = p.bufs[:last]
		p.mu.Unlock()
		return b[:0]
	}
	p.mu.Unlock()
	return make([]byte, 0, classes[ci])
}

// Put returns a buffer to its capacity class. Buffers smaller than the
// smallest class or larger than the largest are dropped. Put of a nil
// slice is a no-op. The caller must not use b afterwards.
func Put(b []byte) {
	c := cap(b)
	if c == 0 {
		return
	}
	// Find the largest class the capacity can serve: a pooled buffer must
	// satisfy any Get of its class's size.
	ci := -1
	for i, cl := range classes {
		if c >= cl {
			ci = i
		}
	}
	if ci < 0 {
		// Below the smallest class: not poolable, and (since Get never
		// hands such buffers out) not checked-out inventory either.
		return
	}
	p := &pools[ci]
	p.mu.Lock()
	p.puts++
	// Pool only class-sized buffers: an oversized one (beyond the largest
	// class) would pin an arbitrarily large array in the freelist and
	// blow the class byte budget, so its checkout is balanced here and
	// the buffer itself is left to the garbage collector.
	if c <= classes[len(classes)-1] && len(p.bufs) < p.max {
		p.bufs = append(p.bufs, b[:0])
	}
	p.mu.Unlock()
}
