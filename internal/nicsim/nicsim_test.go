package nicsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRSSDeterministic(t *testing.T) {
	r := NewRSS(16)
	for flow := uint64(0); flow < 1000; flow++ {
		a := r.Queue(flow)
		b := r.Queue(flow)
		if a != b {
			t.Fatalf("flow %d mapped to %d then %d", flow, a, b)
		}
		if a < 0 || a >= 16 {
			t.Fatalf("flow %d mapped out of range: %d", flow, a)
		}
	}
}

func TestRSSBalance(t *testing.T) {
	// With many flows, the spread across 16 queues should be roughly even.
	r := NewRSS(16)
	counts := make([]int, 16)
	const flows = 16000
	for flow := uint64(0); flow < flows; flow++ {
		counts[r.Queue(flow)]++
	}
	want := float64(flows) / 16
	for q, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.35 {
			t.Errorf("queue %d got %d flows, want ~%.0f", q, c, want)
		}
	}
}

func TestRSSRetarget(t *testing.T) {
	r := NewRSS(4)
	flow := uint64(1234)
	b := r.Bucket(flow)
	r.Retarget(b, 3)
	if r.Queue(flow) != 3 {
		t.Fatal("retargeted bucket did not take effect")
	}
	if r.Queues() != 4 {
		t.Fatal("Queues() wrong")
	}
}

func TestRSSPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("zero queues", func() { NewRSS(0) })
	r := NewRSS(2)
	mustPanic("bad bucket", func() { r.Retarget(-1, 0) })
	mustPanic("bad queue", func() { r.Retarget(0, 7) })
	mustPanic("zero ring", func() { NewRing[int](0) })
}

func TestHashAvalanche(t *testing.T) {
	// Nearby flow IDs must not collide systematically.
	seen := map[uint32]bool{}
	collisions := 0
	for i := uint64(0); i < 10000; i++ {
		h := Hash(i)
		if seen[h] {
			collisions++
		}
		seen[h] = true
	}
	if collisions > 3 {
		t.Fatalf("%d hash collisions in 10k sequential flows", collisions)
	}
}

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](4)
	for i := 1; i <= 4; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(5) {
		t.Fatal("push on full ring must fail")
	}
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r.Dropped())
	}
	for i := 1; i <= 4; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop on empty ring must fail")
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing[int](3)
	next := 0
	popped := 0
	for round := 0; round < 100; round++ {
		for r.Len() < r.Cap() {
			r.Push(next)
			next++
		}
		v, _ := r.Pop()
		if v != popped {
			t.Fatalf("wraparound broke FIFO: got %d want %d", v, popped)
		}
		popped++
	}
}

func TestRingPeek(t *testing.T) {
	r := NewRing[string](2)
	if _, ok := r.Peek(); ok {
		t.Fatal("peek on empty must fail")
	}
	r.Push("a")
	r.Push("b")
	v, ok := r.Peek()
	if !ok || v != "a" {
		t.Fatal("peek must return oldest without removing")
	}
	if r.Len() != 2 {
		t.Fatal("peek must not remove")
	}
}

// Property: a ring behaves exactly like a bounded queue.
func TestRingMatchesReference(t *testing.T) {
	f := func(ops []uint8) bool {
		r := NewRing[int](8)
		var ref []int
		next := 0
		for _, op := range ops {
			if op%2 == 0 {
				ok := r.Push(next)
				refOK := len(ref) < 8
				if ok != refOK {
					return false
				}
				if ok {
					ref = append(ref, next)
				}
				next++
			} else {
				v, ok := r.Pop()
				if ok != (len(ref) > 0) {
					return false
				}
				if ok {
					if v != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			}
			if r.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
