// Package nicsim models the pieces of a multi-queue NIC that the ZygOS
// scheduling experiments depend on: receive-side scaling (RSS) — the
// flow-consistent hashing of connections onto per-core hardware queues —
// and bounded descriptor rings with tail-drop semantics.
//
// The same RSS mapping is shared by the discrete-event dataplane models
// (internal/dataplane) and the real runtime (internal/core), so a
// connection's "home core" is computed identically everywhere.
package nicsim

// IndirectionSize is the number of entries in the RSS indirection table,
// matching the 128-entry table of the Intel 82599 NIC used in the paper.
const IndirectionSize = 128

// RSS maps flow identifiers to queues (cores) through a hash and an
// indirection table, as NIC hardware does. The zero value is not usable;
// construct with NewRSS.
type RSS struct {
	table [IndirectionSize]int
	n     int
}

// NewRSS returns an RSS steering flows onto n queues with the conventional
// round-robin-initialized indirection table.
func NewRSS(n int) *RSS {
	if n <= 0 {
		panic("nicsim: RSS needs at least one queue")
	}
	r := &RSS{n: n}
	for i := range r.table {
		r.table[i] = i % n
	}
	return r
}

// Queues returns the number of queues the table spreads over.
func (r *RSS) Queues() int { return r.n }

// Queue returns the queue (home core) for the given flow identifier.
func (r *RSS) Queue(flow uint64) int {
	return r.table[Hash(flow)%IndirectionSize]
}

// Retarget overwrites one indirection-table bucket, as a control plane
// would when rebalancing flow groups (§5, control plane interactions).
func (r *RSS) Retarget(bucket, queue int) {
	if bucket < 0 || bucket >= IndirectionSize {
		panic("nicsim: bucket out of range")
	}
	if queue < 0 || queue >= r.n {
		panic("nicsim: queue out of range")
	}
	r.table[bucket] = queue
}

// Bucket returns the indirection bucket a flow hashes into.
func (r *RSS) Bucket(flow uint64) int {
	return int(Hash(flow) % IndirectionSize)
}

// Hash is the flow hash: a 64-bit FNV-1a avalanche standing in for the
// Toeplitz hash real NICs use. It only needs to be deterministic and
// well-mixed; the scheduling results do not depend on the exact function.
func Hash(flow uint64) uint32 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= flow & 0xff
		h *= prime
		flow >>= 8
	}
	// Fold to 32 bits, mixing the halves.
	return uint32(h ^ (h >> 32))
}

// Ring is a bounded FIFO descriptor ring with tail-drop, standing in for a
// NIC hardware receive ring. Push on a full ring drops the descriptor and
// counts it, as hardware does when the host cannot keep up.
type Ring[T any] struct {
	buf     []T
	head    int
	size    int
	dropped uint64
}

// NewRing returns a ring with the given capacity (must be positive).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic("nicsim: ring capacity must be positive")
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Push appends a descriptor; it reports false (and counts a drop) if the
// ring is full.
func (r *Ring[T]) Push(v T) bool {
	if r.size == len(r.buf) {
		r.dropped++
		return false
	}
	r.buf[(r.head+r.size)%len(r.buf)] = v
	r.size++
	return true
}

// Pop removes and returns the oldest descriptor.
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	if r.size == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return v, true
}

// Len reports the number of queued descriptors.
func (r *Ring[T]) Len() int { return r.size }

// Cap reports the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Dropped reports how many descriptors were tail-dropped.
func (r *Ring[T]) Dropped() uint64 { return r.dropped }

// Peek returns the oldest descriptor without removing it.
func (r *Ring[T]) Peek() (T, bool) {
	var zero T
	if r.size == 0 {
		return zero, false
	}
	return r.buf[r.head], true
}
