// Cluster tail benchmarks: the tail-at-scale fan-out experiment behind
// BENCH_cluster.json (make bench-cluster). One of four backends is
// deliberately slow; a "request" fans out K calls through the cluster
// tier and waits for all of them, so its latency is the max over K —
// exactly the regime where one straggler owns the tail. The policies
// under test are the load-blind round-robin baseline, P2C on live
// queue-depth signals, and P2C with adaptive hedging; the committed
// trajectory must show hedging beating round-robin's P99 at K >= 8.
//
// ns/op is the mean fan-out latency; the P50/P99 fan-out latencies are
// reported as p50-ns and p99-ns extra metrics so the benchjson gate
// tracks the tail, not just the mean.
package zygos

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func BenchmarkClusterFanout(b *testing.B) {
	cases := []struct {
		name   string
		policy ClusterPolicy
		hedge  bool
	}{
		// No "-" in sub-benchmark names: benchjson truncates the key at
		// the first dash (the GOMAXPROCS suffix).
		{"rr", PolicyRoundRobin, false},
		{"p2c", PolicyP2C, false},
		{"p2c+hedge", PolicyP2C, true},
	}
	for _, c := range cases {
		for _, k := range []int{1, 8, 16} {
			b.Run(fmt.Sprintf("%s/K%d", c.name, k), func(b *testing.B) {
				benchClusterFanout(b, c.policy, c.hedge, k)
			})
		}
	}
}

func benchClusterFanout(b *testing.B, policy ClusterPolicy, hedge bool, fanout int) {
	const (
		method    = 21
		backends  = 4
		slowDelay = 3 * time.Millisecond
	)

	// Three fast echo backends and one straggler. The slow handler
	// detaches and sleeps — yielding the CPU, so the measurement works
	// on a single-core box — and replies a static byte slice because
	// the request buffer is recycled once the handler returns.
	mkBackend := func(delay time.Duration) *Server {
		mux := NewMux()
		mux.HandleFunc(method, func(w ResponseWriter, req *Request) {
			if delay == 0 {
				w.Reply(req.Payload)
				return
			}
			co := w.Detach()
			go func() {
				time.Sleep(delay)
				co.Reply([]byte("late"))
			}()
		})
		srv, err := NewServer(Config{Cores: 2, Handler: mux.Handler(), DepthFrames: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(srv.Close)
		return srv
	}

	cl := NewCluster(ClusterConfig{
		Policy: policy,
		Hedge:  HedgeConfig{Enabled: hedge, MinDelay: 200 * time.Microsecond, MaxDelay: time.Millisecond},
	})
	defer cl.Close()
	for i := 0; i < backends; i++ {
		delay := time.Duration(0)
		if i == backends-1 {
			delay = slowDelay
		}
		cl.Add(fmt.Sprintf("b%d", i), mkBackend(delay).NewClient())
	}

	payload := []byte("0123456789abcdef")
	var firstErr atomic.Pointer[error]
	fanOnce := func() time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		for j := 0; j < fanout; j++ {
			wg.Add(1)
			err := cl.SendMethodAsync(method, payload, func(_ []byte, err error) {
				if err != nil {
					firstErr.CompareAndSwap(nil, &err)
				}
				wg.Done()
			})
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				wg.Done()
			}
		}
		wg.Wait()
		return time.Since(start)
	}

	// Warm: populate pools and depth reports, and feed the hedge
	// tracker past its cold-start deadline.
	for i := 0; i < 20; i++ {
		fanOnce()
	}
	if ep := firstErr.Load(); ep != nil {
		b.Fatalf("warmup fan-out failed: %v", *ep)
	}

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lat = append(lat, fanOnce())
	}
	b.StopTimer()
	if ep := firstErr.Load(); ep != nil {
		b.Fatalf("fan-out failed: %v", *ep)
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p int) float64 {
		idx := len(lat) * p / 100
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return float64(lat[idx].Nanoseconds())
	}
	b.ReportMetric(pct(50), "p50-ns")
	b.ReportMetric(pct(99), "p99-ns")
}
